GO ?= go

.PHONY: all build test race vet check fuzz-smoke bench paperbench bench-json

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The CI gate: static analysis plus the full suite under the race
# detector (includes the concurrent-session stress tests, the budget
# suites, and the fault-injection convergence suite).
check: vet race

# Short coverage-guided runs of the fuzz targets: the batch-vs-incremental
# parse oracle, the recovery convergence invariant, the compiled-artifact
# codec (decode of arbitrary bytes must never panic; accepted artifacts must
# re-encode canonically), the error-isolation convergence contract
# (tier-1 recovery preserves text; repairing converges to the batch parse),
# and the session-snapshot codec plus its write-ahead journal framing
# (arbitrary bytes never panic; accepted snapshots restore and re-encode
# canonically), and the chunked-parallel-parse oracle (chunked parse ≡
# sequential parse under adversarial seam placement).
fuzz-smoke:
	$(GO) test -run FuzzParseOracle -fuzz FuzzParseOracle -fuzztime 30s ./internal/earley/
	$(GO) test -run FuzzRecoveryConverges -fuzz FuzzRecoveryConverges -fuzztime 30s ./internal/recovery/
	$(GO) test -run FuzzLangCodecRoundTrip -fuzz FuzzLangCodecRoundTrip -fuzztime 30s ./internal/langcodec/
	$(GO) test -run FuzzErrorIsolationConverges -fuzz FuzzErrorIsolationConverges -fuzztime 30s .
	$(GO) test -run FuzzSessCodecRoundTrip -fuzz FuzzSessCodecRoundTrip -fuzztime 30s ./internal/sesscodec/
	$(GO) test -run FuzzJournalDecode -fuzz FuzzJournalDecode -fuzztime 15s ./internal/sesscodec/
	$(GO) test -run FuzzChunkedParse -fuzz FuzzChunkedParse -fuzztime 30s .

bench:
	$(GO) test -bench=. -benchmem ./...

paperbench:
	$(GO) run ./cmd/paperbench

# Machine-readable compiled-artifact benchmark (cold vs cached language
# loads, lexer MB/s, table footprints). BENCH_parse.json in the repo is a
# committed reference run.
bench-json:
	$(GO) run ./cmd/paperbench -json BENCH_parse.json
