GO ?= go

.PHONY: all build test race vet check fuzz-smoke bench paperbench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The CI gate: static analysis plus the full suite under the race
# detector (includes the concurrent-session stress tests, the budget
# suites, and the fault-injection convergence suite).
check: vet race

# Short coverage-guided runs of the fuzz targets: the batch-vs-incremental
# parse oracle and the recovery convergence invariant.
fuzz-smoke:
	$(GO) test -run FuzzParseOracle -fuzz FuzzParseOracle -fuzztime 30s ./internal/earley/
	$(GO) test -run FuzzRecoveryConverges -fuzz FuzzRecoveryConverges -fuzztime 30s ./internal/recovery/

bench:
	$(GO) test -bench=. -benchmem ./...

paperbench:
	$(GO) run ./cmd/paperbench
