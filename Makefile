GO ?= go

.PHONY: all build test race vet check bench paperbench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The CI gate: static analysis plus the full suite under the race
# detector (includes the concurrent-session stress tests).
check: vet race

bench:
	$(GO) test -bench=. -benchmem ./...

paperbench:
	$(GO) run ./cmd/paperbench
