// Allocation guards for the flattened hot path: the arenas, epoch scratch
// tables, and persistent parser/document buffers are all reused across
// incremental rounds, so a steady-state reparse must not allocate beyond
// the structure it actually rebuilds. These tests pin that property so a
// regression shows up as a test failure, not a benchmark drift.
package incremental_test

import (
	"strings"
	"testing"

	incremental "iglr"
)

// TestDeterministicReparseAllocFree pins the strongest form: a clean
// reparse on the deterministic path (no pending edits — the committed root
// is offered, state-matched, and shifted whole) allocates nothing. Every
// structure it touches is persistent: the document's terminal buffer and
// stream, the parser's stack, and the committed tree itself.
func TestDeterministicReparseAllocFree(t *testing.T) {
	s := incremental.NewSession(incremental.Modula2Subset(),
		"MODULE M;\nVAR x : INTEGER;\nBEGIN\n  x := 1\nEND M.\n")
	if err := s.UseDeterministic(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Parse(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("clean deterministic reparse allocated %.1f objects/run, want 0", allocs)
	}
}

// TestDeterministicEditReparseAllocsBounded pins the edit case on the
// deterministic path: a one-token edit rebuilds only the damaged spine, so
// a reparse allocates O(damage) — fresh terminals, the handful of
// productions above them, and at most an arena chunk — never O(tree).
func TestDeterministicEditReparseAllocsBounded(t *testing.T) {
	src := "MODULE M;\nVAR x : INTEGER;\nBEGIN\n  x := 1\nEND M.\n"
	s := incremental.NewSession(incremental.Modula2Subset(), src)
	if err := s.UseDeterministic(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	off := strings.Index(src, "1")
	flip := false
	allocs := testing.AllocsPerRun(100, func() {
		flip = !flip
		repl := "1"
		if flip {
			repl = "2"
		}
		s.Edit(off, 1, repl)
		if _, err := s.Parse(); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("deterministic one-token reparse: %.1f allocs/run", allocs)
	const maxAllocs = 40
	if allocs > maxAllocs {
		t.Fatalf("one-token deterministic reparse allocated %.1f objects/run, want ≤ %d", allocs, maxAllocs)
	}
}

// TestIGLRReparseAllocsBounded pins the GLR path: the GSS arenas, sharer
// maps, and reduction scratch persist inside the parser, so a one-token
// incremental reparse is bounded by the damage region even though the
// parser must run its full fork/merge machinery.
func TestIGLRReparseAllocsBounded(t *testing.T) {
	src := "int x; int y; T * a; x = y + 1; a = x * y;"
	s := incremental.NewSession(incremental.CSubset(), src)
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	off := strings.Index(src, "y")
	flip := false
	allocs := testing.AllocsPerRun(100, func() {
		flip = !flip
		repl := "y"
		if flip {
			repl = "z"
		}
		s.Edit(off, 1, repl)
		if _, err := s.Parse(); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("IGLR one-token reparse: %.1f allocs/run", allocs)
	const maxAllocs = 120
	if allocs > maxAllocs {
		t.Fatalf("one-token IGLR reparse allocated %.1f objects/run, want ≤ %d", allocs, maxAllocs)
	}
}
