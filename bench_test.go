// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md's experiment index). Custom metrics carry the
// paper's observables; cmd/paperbench prints the same experiments as
// human-readable tables at full scale.
package incremental_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	incremental "iglr"
	"iglr/engine"
	"iglr/internal/corpus"
	"iglr/internal/experiments"
)

// BenchmarkTable1SpaceOverhead — paper Table 1: space overhead of explicit
// ambiguity per program (measured over the synthetic corpus at 10% of the
// paper's line counts per iteration; run cmd/paperbench for full scale).
func BenchmarkTable1SpaceOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(0.10)
		if err != nil {
			b.Fatal(err)
		}
		var sum, maxPct float64
		for _, r := range rows {
			sum += r.MeasuredPct
			if r.MeasuredPct > maxPct {
				maxPct = r.MeasuredPct
			}
		}
		b.ReportMetric(sum/float64(len(rows)), "mean-%ov")
		b.ReportMetric(maxPct, "max-%ov")
	}
}

// BenchmarkFigure4Histogram — paper Figure 4: distribution of per-file
// ambiguity overhead for a gcc-like corpus.
func BenchmarkFigure4Histogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(40, 600)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.MeanPct, "mean-%ov")
		b.ReportMetric(float64(res.Bins[0].Files), "files-in-lowest-bin")
	}
}

// BenchmarkFigure7 — paper Figures 5/7: dynamic lookahead via GLR forking
// on the LR(2) grammar.
func BenchmarkFigure7(b *testing.B) {
	lang := incremental.LR2Language()
	for i := 0; i < b.N; i++ {
		s := incremental.NewSession(lang, "x z c")
		tree, err := s.Parse()
		if err != nil {
			b.Fatal(err)
		}
		if incremental.CountParses(tree) != 1 {
			b.Fatal("figure 7 grammar must be unambiguous")
		}
		b.ReportMetric(float64(s.Stats().MaxActiveParsers), "max-parsers")
	}
}

// BenchmarkSection5BatchOverhead — §5: batch parse cost, deterministic
// state-matching parser vs IGLR (paper: 12% vs 15% parse-time share,
// ≈1.25× on the parser itself).
func BenchmarkSection5BatchOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSection5Batch(5000, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Ratio, "iglr/det-ratio")
		b.ReportMetric(r.IGLRNsPerTok, "iglr-ns/token")
		b.ReportMetric(r.DetNsPerTok, "det-ns/token")
	}
}

// BenchmarkSection5Incremental — §5: self-cancelling token edits; the
// paper found the difference between the parsers undetectable.
func BenchmarkSection5Incremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSection5Incremental(4000, 25)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Ratio, "iglr/det-ratio")
		b.ReportMetric(r.IGLRNsPerRe, "iglr-ns/reparse")
		b.ReportMetric(r.IGLRShiftsPerRe, "shifts/reparse")
	}
}

// BenchmarkSection5SpaceOverhead — §5: the extra word per node for parse
// states (paper: ≈5% over sentential-form nodes) and node-count parity.
func BenchmarkSection5SpaceOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSection5Space(2000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.StatePct, "state-field-%")
		b.ReportMetric(r.NodeCountRatio, "node-parity")
	}
}

// BenchmarkSection5AmbiguousReconstruction — §5: carrying ambiguous
// regions costs well under 1% additional reconstruction time.
func BenchmarkSection5AmbiguousReconstruction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunSection5Ambiguity(8000, 20)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OverheadPct, "overhead-%")
	}
}

// BenchmarkSection34Asymptotics — §3.4: list-shaped sequences degrade
// incremental reparsing to linear; balanced sequences restore O(lg N).
func BenchmarkSection34Asymptotics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunAsymptotics([]int{1000, 4000, 16000}, 4)
		if err != nil {
			b.Fatal(err)
		}
		first, last := pts[0], pts[len(pts)-1]
		b.ReportMetric(last.ListNsPerEdit/first.ListNsPerEdit, "list-growth")
		b.ReportMetric(last.BalancedNsPerEdit/first.BalancedNsPerEdit, "balanced-growth")
		b.ReportMetric(float64(last.BalancedDepth), "balanced-depth")
	}
}

// BenchmarkSection41FilterStaging — §4.1: static filters vs dynamic-only
// filtering (quadratic retained structure per expression).
func BenchmarkSection41FilterStaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFilterStaging([]int{8, 32}, 2)
		if err != nil {
			b.Fatal(err)
		}
		small, big := pts[0], pts[1]
		b.ReportMetric(float64(big.DynamicNodes)/float64(small.DynamicNodes), "dynamic-node-growth")
		b.ReportMetric(float64(big.StaticNodes)/float64(small.StaticNodes), "static-node-growth")
	}
}

// BenchmarkSection33TableAblation — LALR vs canonical LR(1) as the IGLR
// driver (the paper's §3.3 design choice).
func BenchmarkSection33TableAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunAblation(1500, 8)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.LR1Cells)/float64(r.LALRCells), "lr1/lalr-table-size")
		b.ReportMetric(float64(r.LR1Bytes)/float64(r.LALRBytes), "lr1/lalr-bytes")
		b.ReportMetric(r.LALRIncShifts, "lalr-shifts/reparse")
		b.ReportMetric(r.LR1IncShifts, "lr1-shifts/reparse")
	}
}

// BenchmarkFootnote4EarleyComparison — GLR vs Earley on a deterministic
// grammar (the comparison the paper cites to justify GLR's practicality).
func BenchmarkFootnote4EarleyComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunEarleyComparison([]int{500, 2000})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(pts[len(pts)-1].Speedup, "earley/glr-speedup")
	}
}

// BenchmarkBatchParseThroughput measures raw GLR parse throughput on the
// generated C corpus (tokens/op is reported for context).
func BenchmarkBatchParseThroughput(b *testing.B) {
	spec := corpus.Spec{Name: "bench", Lines: 5000, Lang: "c", AmbiguousPerKLoC: 5, Seed: 3}
	src, _ := corpus.Generate(spec)
	lang := incremental.CSubset()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := incremental.NewSession(lang, src)
		if _, err := s.Parse(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIncrementalReparse measures one incremental reparse after a
// single-token edit in a mid-sized program.
func BenchmarkIncrementalReparse(b *testing.B) {
	spec := corpus.Spec{Name: "bench", Lines: 5000, Lang: "c", AmbiguousPerKLoC: 5, Seed: 3}
	src, _ := corpus.Generate(spec)
	lang := incremental.CSubset()
	s := incremental.NewSession(lang, src)
	if _, err := s.Parse(); err != nil {
		b.Fatal(err)
	}
	off := strings.Index(src, "v7 =")
	if off < 0 {
		b.Fatal("edit site not found")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Edit(off, 2, "vq")
		if _, err := s.Parse(); err != nil {
			b.Fatal(err)
		}
		s.Edit(off, 2, "v7")
		if _, err := s.Parse(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSemanticResolution measures the Figure 8 semantic pass over a
// program with many typedef ambiguities.
func BenchmarkSemanticResolution(b *testing.B) {
	spec := corpus.Spec{Name: "bench", Lines: 3000, Lang: "c", AmbiguousPerKLoC: 30, Seed: 5}
	src, nAmb := corpus.Generate(spec)
	lang := incremental.CSubset()
	s := incremental.NewSession(lang, src)
	if _, err := s.Parse(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.Resolve()
		if res.ResolvedDecl != nAmb {
			b.Fatalf("resolved %d of %d", res.ResolvedDecl, nAmb)
		}
	}
}

// BenchmarkParallelCorpus sweeps the engine's worker count over a scaled
// Table 1 corpus parsed against one shared language — the multi-core axis
// the paper's single-stream §5 numbers leave open. bytes/op (via SetBytes)
// turns into MB/s per worker count; files-failed must stay 0.
func BenchmarkParallelCorpus(b *testing.B) {
	var inputs []engine.Input
	var total int64
	for i, spec := range corpus.Table1Specs() {
		spec.Lang = "c" // one shared language drives the whole batch
		spec.Lines = spec.Lines / 50
		if spec.Lines < 100 {
			spec.Lines = 100
		}
		src, _ := corpus.Generate(spec)
		inputs = append(inputs, engine.Input{Name: fmt.Sprintf("%s-%d", spec.Name, i), Source: src})
		total += int64(len(src))
	}
	lang := incremental.CSubset()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(total)
			for i := 0; i < b.N; i++ {
				batch, err := engine.ParseAll(context.Background(), lang, inputs, engine.WithWorkers(workers))
				if err != nil {
					b.Fatal(err)
				}
				if batch.Aggregate.Failed != 0 {
					b.Fatalf("%d files failed", batch.Aggregate.Failed)
				}
			}
		})
	}
}

var sinkStr string

// BenchmarkLexThroughput measures the incremental lexer's batch scan rate.
func BenchmarkLexThroughput(b *testing.B) {
	spec := corpus.Spec{Name: "bench", Lines: 10000, Lang: "c", AmbiguousPerKLoC: 0, Seed: 6}
	src, _ := corpus.Generate(spec)
	lang := incremental.CSubset()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := incremental.NewSession(lang, src)
		sinkStr = fmt.Sprint(s.LexErrors())
	}
}
