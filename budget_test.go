package incremental_test

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
	"time"

	incremental "iglr"
)

// pathologicalExpr returns the committed fixture: a 60-term expression
// over the raw ambiguous grammar, whose full forest is astronomically
// large (Catalan growth in the number of operators).
func pathologicalExpr(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile("testdata/pathological_expr.txt")
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(string(b))
}

// The headline degradation test: with an alternatives budget, the
// pathological input completes, the dag is marked BudgetPruned, and the
// forest collapses to a bounded parse count.
func TestPathologicalInputCompletesUnderAlternativesBudget(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	src := pathologicalExpr(t)

	s := incremental.NewSession(lang, src,
		incremental.WithBudget(incremental.Budget{MaxAlternatives: 2}))
	root, err := s.Parse()
	if err != nil {
		t.Fatalf("budgeted parse of the pathological fixture failed: %v", err)
	}
	if s.Stats().BudgetPruned == 0 {
		t.Fatal("the fixture must force ambiguity pruning")
	}
	ds := incremental.Measure(root)
	if ds.BudgetPruned == 0 {
		t.Fatal("pruned choice nodes must be marked BudgetPruned in the dag")
	}
	if ds.MaxAlternatives > 2 {
		t.Fatalf("widest choice node has %d alternatives, budget was 2", ds.MaxAlternatives)
	}
	// Pruning bounds the per-region fan-out, which collapses the forest
	// from the saturated cap (the unbudgeted count overflows 2^30) to
	// something enumerable.
	if got := incremental.CountParses(root); got >= 1<<30 {
		t.Fatalf("parse count %d not reduced by the budget", got)
	}
	if root.Yield() != src {
		t.Fatal("degraded tree must still yield the full input")
	}

	// The same input under MaxAlternatives=1 embeds a single parse.
	s1 := incremental.NewSession(lang, src,
		incremental.WithBudget(incremental.Budget{MaxAlternatives: 1}))
	root1, err := s1.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if got := incremental.CountParses(root1); got != 1 {
		t.Fatalf("MaxAlternatives=1 should leave exactly one parse, got %d", got)
	}
}

func TestGSSBudgetAbortsPathologicalInput(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	src := pathologicalExpr(t)

	for _, tc := range []struct {
		name   string
		budget incremental.Budget
	}{
		{"nodes", incremental.Budget{MaxGSSNodes: 16}},
		{"links", incremental.Budget{MaxGSSLinks: 16}},
		{"arena", incremental.Budget{MaxArenaNodes: 8}},
		{"deadline", incremental.Budget{MaxDuration: time.Nanosecond}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := incremental.NewSession(lang, src, incremental.WithBudget(tc.budget))
			_, err := s.Parse()
			if err == nil {
				t.Fatal("tiny budget must abort the pathological parse")
			}
			var be *incremental.BudgetError
			if !errors.As(err, &be) {
				t.Fatalf("err = %v (%T), want *BudgetError", err, err)
			}
			if !errors.Is(err, incremental.ErrBudget) {
				t.Fatal("budget errors must match ErrBudget")
			}
			if s.Tree() != nil {
				t.Fatal("an aborted first parse must not commit a tree")
			}
		})
	}
}

// An aborted reparse must leave the previously committed tree (and the
// ability to retry) intact: budgets bound work, they do not corrupt state.
func TestBudgetAbortLeavesCommittedTreeIntact(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	s := incremental.NewSession(lang, "1+2")
	root, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}

	// Grow the document into the pathological shape, under a budget too
	// small for it.
	s.SetBudget(incremental.Budget{MaxGSSLinks: 16})
	src := pathologicalExpr(t)
	s.Edit(s.Len(), 0, "+"+src)
	if _, err := s.Parse(); !errors.Is(err, incremental.ErrBudget) {
		t.Fatalf("err = %v, want a budget trip", err)
	}
	if s.Tree() != root {
		t.Fatal("failed reparse must keep the last committed tree")
	}

	// Lifting the budget makes the same pending edit parse fine.
	s.SetBudget(incremental.Budget{})
	root2, err := s.Parse()
	if err != nil {
		t.Fatalf("retry without budget failed: %v", err)
	}
	if root2.Yield() != "1+2+"+src {
		t.Fatal("retried parse must incorporate the pending edit")
	}
}

func TestDeterministicParserHonorsBudget(t *testing.T) {
	lang := incremental.ExprLanguage()
	src := strings.Repeat("1+", 400) + "1"

	s := incremental.NewSession(lang, src,
		incremental.WithBudget(incremental.Budget{MaxArenaNodes: 4}))
	if err := s.UseDeterministic(); err != nil {
		t.Fatal(err)
	}
	var be *incremental.BudgetError
	if _, err := s.Parse(); !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetError", err)
	}

	s.SetBudget(incremental.Budget{MaxDuration: time.Nanosecond})
	if _, err := s.Parse(); !errors.Is(err, incremental.ErrBudget) {
		t.Fatalf("err = %v, want a deadline trip", err)
	}

	s.SetBudget(incremental.Budget{})
	if _, err := s.Parse(); err != nil {
		t.Fatalf("unbudgeted parse failed: %v", err)
	}
}

// Ample budgets must be invisible: same tree, same stats, no prunes.
func TestAmpleBudgetDoesNotChangeResults(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	src := "1+2*3-4"

	plain := incremental.NewSession(lang, src)
	want, err := plain.Parse()
	if err != nil {
		t.Fatal(err)
	}
	budgeted := incremental.NewSession(lang, src, incremental.WithBudget(incremental.Budget{
		MaxGSSNodes: 1 << 20, MaxGSSLinks: 1 << 20, MaxArenaNodes: 1 << 20,
		MaxAlternatives: 64, MaxDuration: time.Minute,
	}))
	got, err := budgeted.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if budgeted.Stats().BudgetPruned != 0 {
		t.Fatal("ample budget must not prune")
	}
	if incremental.FormatDag(lang, got) != incremental.FormatDag(lang, want) {
		t.Fatal("ample budget changed the parse result")
	}
}

// Cancellation latency: even mid-round — deep in the reducer worklist of a
// pathologically ambiguous region — the parser notices a dead context.
func TestCancellationLatencyInsidePathologicalRound(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	// Much larger than the fixture so one parse takes long enough to
	// observe a mid-flight deadline.
	src := strings.Repeat(pathologicalExpr(t)+"+", 8) + "1"
	s := incremental.NewSession(lang, src,
		incremental.WithBudget(incremental.Budget{MaxDuration: 2 * time.Millisecond}))

	start := time.Now()
	_, err := s.Parse()
	elapsed := time.Since(start)
	if !errors.Is(err, incremental.ErrBudget) {
		t.Fatalf("err = %v, want a deadline trip", err)
	}
	// The worklist poll (checkEvery=64 steps) must notice the deadline
	// long before the parse would finish; allow generous scheduler slack.
	if elapsed > 2*time.Second {
		t.Fatalf("deadline noticed only after %v", elapsed)
	}
	if s.Tree() != nil {
		t.Fatal("cancelled parse must not commit")
	}
}

// The same latency bound for external cancellation: a context deadline is
// noticed inside the reducer's worklist loop, so one token with massive
// local ambiguity cannot stall cancellation until the next round.
func TestContextDeadlineInsidePathologicalRound(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	src := strings.Repeat(pathologicalExpr(t)+"+", 8) + "1"
	s := incremental.NewSession(lang, src)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := s.ParseContext(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation noticed only after %v", elapsed)
	}
	if s.Tree() != nil {
		t.Fatal("cancelled parse must not commit")
	}
	// The session is reusable: shrink the document to something tractable
	// and an un-cancelled retry succeeds.
	s.Edit(0, s.Len()-1, "")
	if _, err := s.ParseContext(context.Background()); err != nil {
		t.Fatalf("retry failed: %v", err)
	}
}
