package incremental

import (
	"fmt"
	"sync"
	"sync/atomic"

	"iglr/internal/langs"
	"iglr/internal/lr"
)

// The compiled-language cache. Building a language is the expensive part of
// DefineLanguage (LR table construction is super-linear in grammar size),
// while serving workloads call DefineLanguage with a handful of distinct
// definitions over and over. Compiled languages are immutable and safe to
// share (see the Concurrency model in DESIGN.md), so identical definitions
// can return the same underlying tables. Entries are keyed by a
// content hash of every field that influences compilation; the semantic
// configuration is attached per returned *Language and is not part of the
// key. Concurrent first definitions of the same language deduplicate: one
// goroutine builds, the rest wait for the result.
var langCache struct {
	entries    sync.Map // key string → *cacheEntry
	hits       atomic.Int64
	misses     atomic.Int64
	diskHits   atomic.Int64
	diskMisses atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	lang *langs.Language
	err  error
}

// CacheStats reports compiled-language cache effectiveness.
type CacheStats struct {
	// Entries is the number of distinct definitions compiled (including
	// failed ones, which are cached too — recompiling cannot fix them).
	Entries int
	// Hits counts DefineLanguage calls served from the cache; Misses
	// counts calls that compiled.
	Hits, Misses int64
	// DiskHits counts memory misses served by decoding a compiled artifact
	// from the disk cache; DiskMisses counts memory misses that fell through
	// to full compilation (no artifact, or a corrupt/stale/version-mismatched
	// one).
	DiskHits, DiskMisses int64
}

// LanguageCacheStats returns a snapshot of the compiled-language cache.
func LanguageCacheStats() CacheStats {
	var s CacheStats
	langCache.entries.Range(func(_, _ any) bool { s.Entries++; return true })
	s.Hits = langCache.hits.Load()
	s.Misses = langCache.misses.Load()
	s.DiskHits = langCache.diskHits.Load()
	s.DiskMisses = langCache.diskMisses.Load()
	return s
}

// ResetLanguageCache drops every cached compiled language and zeroes the
// counters. Existing *Language values remain valid; only future
// DefineLanguage calls are affected.
func ResetLanguageCache() {
	langCache.entries.Range(func(k, _ any) bool { langCache.entries.Delete(k); return true })
	langCache.hits.Store(0)
	langCache.misses.Store(0)
	langCache.diskHits.Store(0)
	langCache.diskMisses.Store(0)
}

// compileDef builds (or fetches) the compiled language for d through the
// two-level cache: memory first, then the compiled-artifact disk cache,
// then full compilation (which repopulates the disk layer).
func compileDef(d LanguageDef) (*langs.Language, error) {
	if d.noCache {
		return buildDef(d)
	}
	hash := defHash(d)
	key := string(hash[:])
	v, loaded := langCache.entries.Load(key)
	if !loaded {
		v, loaded = langCache.entries.LoadOrStore(key, &cacheEntry{})
	}
	e := v.(*cacheEntry)
	if loaded {
		langCache.hits.Add(1)
	} else {
		langCache.misses.Add(1)
	}
	e.once.Do(func() { e.lang, e.err = loadOrBuildDef(d, hash) })
	return e.lang, e.err
}

// loadOrBuildDef tries the disk cache, falling back to compilation; a fresh
// compile is written back to disk (best-effort) for the next process.
func loadOrBuildDef(d LanguageDef, hash [32]byte) (*langs.Language, error) {
	dir, ok := compiledCacheDir(d)
	if !ok {
		return buildDef(d)
	}
	if l := loadCompiledArtifact(dir, hash); l != nil {
		langCache.diskHits.Add(1)
		return l, nil
	}
	langCache.diskMisses.Add(1)
	l, err := buildDef(d)
	if err == nil {
		storeCompiledArtifact(dir, hash, l)
	}
	return l, err
}

// buildDef compiles a definition, converting staged build errors and any
// residual construction panic into *DefinitionError.
func buildDef(d LanguageDef) (l *langs.Language, err error) {
	defer func() {
		if r := recover(); r != nil {
			e, ok := r.(error)
			if !ok {
				e = fmt.Errorf("%v", r)
			}
			err = &DefinitionError{Language: d.Name, Stage: "internal", Err: e}
		}
	}()
	b := &langs.Builder{
		Name:      d.Name,
		GramSrc:   d.Grammar,
		LexRules:  d.Lexer,
		TokenSyms: d.TokenSyms,
		Keywords:  d.Keywords,
		IdentRule: d.IdentRule,
		Options:   defOptions(d),
	}
	lang, err := b.Build()
	if err != nil {
		return nil, newDefinitionError(d.Name, err)
	}
	return lang, nil
}

// defHash is the canonical content hash of every LanguageDef field that
// influences compilation (langs.HashDef). The memory cache keys on it, and
// compiled disk artifacts embed it for self-invalidation.
func defHash(d LanguageDef) [32]byte {
	return langs.HashDef(d.Name, d.Grammar, d.Lexer, d.TokenSyms, d.Keywords, d.IdentRule, defOptions(d))
}

// defOptions translates the public definition knobs into table options.
func defOptions(d LanguageDef) lr.Options {
	return lr.Options{
		Method:       d.Method,
		PreferShift:  d.PreferShift,
		NoPrecedence: d.NoPrecedence,
	}
}
