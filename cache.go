package incremental

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sort"
	"sync"
	"sync/atomic"

	"iglr/internal/langs"
	"iglr/internal/lr"
)

// The compiled-language cache. Building a language is the expensive part of
// DefineLanguage (LR table construction is super-linear in grammar size),
// while serving workloads call DefineLanguage with a handful of distinct
// definitions over and over. Compiled languages are immutable and safe to
// share (see the Concurrency model in DESIGN.md), so identical definitions
// can return the same underlying tables. Entries are keyed by a
// content hash of every field that influences compilation; the semantic
// configuration is attached per returned *Language and is not part of the
// key. Concurrent first definitions of the same language deduplicate: one
// goroutine builds, the rest wait for the result.
var langCache struct {
	entries sync.Map // key string → *cacheEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	lang *langs.Language
	err  error
}

// CacheStats reports compiled-language cache effectiveness.
type CacheStats struct {
	// Entries is the number of distinct definitions compiled (including
	// failed ones, which are cached too — recompiling cannot fix them).
	Entries int
	// Hits counts DefineLanguage calls served from the cache; Misses
	// counts calls that compiled.
	Hits, Misses int64
}

// LanguageCacheStats returns a snapshot of the compiled-language cache.
func LanguageCacheStats() CacheStats {
	var s CacheStats
	langCache.entries.Range(func(_, _ any) bool { s.Entries++; return true })
	s.Hits = langCache.hits.Load()
	s.Misses = langCache.misses.Load()
	return s
}

// ResetLanguageCache drops every cached compiled language and zeroes the
// counters. Existing *Language values remain valid; only future
// DefineLanguage calls are affected.
func ResetLanguageCache() {
	langCache.entries.Range(func(k, _ any) bool { langCache.entries.Delete(k); return true })
	langCache.hits.Store(0)
	langCache.misses.Store(0)
}

// compileDef builds (or fetches) the compiled language for d.
func compileDef(d LanguageDef) (*langs.Language, error) {
	if d.noCache {
		return buildDef(d)
	}
	key := defKey(d)
	v, loaded := langCache.entries.Load(key)
	if !loaded {
		v, loaded = langCache.entries.LoadOrStore(key, &cacheEntry{})
	}
	e := v.(*cacheEntry)
	if loaded {
		langCache.hits.Add(1)
	} else {
		langCache.misses.Add(1)
	}
	e.once.Do(func() { e.lang, e.err = buildDef(d) })
	return e.lang, e.err
}

// buildDef compiles a definition, converting staged build errors and any
// residual construction panic into *DefinitionError.
func buildDef(d LanguageDef) (l *langs.Language, err error) {
	defer func() {
		if r := recover(); r != nil {
			e, ok := r.(error)
			if !ok {
				e = fmt.Errorf("%v", r)
			}
			err = &DefinitionError{Language: d.Name, Stage: "internal", Err: e}
		}
	}()
	b := &langs.Builder{
		Name:      d.Name,
		GramSrc:   d.Grammar,
		LexRules:  d.Lexer,
		TokenSyms: d.TokenSyms,
		Keywords:  d.Keywords,
		IdentRule: d.IdentRule,
		Options: lr.Options{
			Method:       d.Method,
			PreferShift:  d.PreferShift,
			NoPrecedence: d.NoPrecedence,
		},
	}
	lang, err := b.Build()
	if err != nil {
		return nil, newDefinitionError(d.Name, err)
	}
	return lang, nil
}

// defKey hashes every LanguageDef field that influences compilation into a
// canonical content key. Map fields are serialized in sorted order; every
// string is length-prefixed so field boundaries cannot collide.
func defKey(d LanguageDef) string {
	h := sha256.New()
	hashStr(h, d.Name)
	hashStr(h, d.Grammar)
	hashInt(h, len(d.Lexer))
	for _, r := range d.Lexer {
		hashStr(h, r.Name)
		hashStr(h, r.Pattern)
		if r.Skip {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	hashMap(h, d.TokenSyms)
	hashMap(h, d.Keywords)
	hashStr(h, d.IdentRule)
	h.Write([]byte{byte(d.Method)})
	flags := byte(0)
	if d.PreferShift {
		flags |= 1
	}
	if d.NoPrecedence {
		flags |= 2
	}
	h.Write([]byte{flags})
	return string(h.Sum(nil))
}

func hashStr(h hash.Hash, s string) {
	hashInt(h, len(s))
	h.Write([]byte(s))
}

func hashInt(h hash.Hash, n int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
}

func hashMap(h hash.Hash, m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hashInt(h, len(keys))
	for _, k := range keys {
		hashStr(h, k)
		hashStr(h, m[k])
	}
}
