// Command iglrc is the grammar compiler: it reads a yacc-like grammar
// description, builds LR parse tables with conflicts retained (the
// "modified bison" of the paper's §5), and reports automaton size,
// conflicts, and static-filter resolutions.
//
// Usage:
//
//	iglrc [-method lalr|slr|lr1] [-prefer-shift] [-no-prec] [-v] grammar.y
package main

import (
	"flag"
	"fmt"
	"os"

	"iglr/internal/grammar"
	"iglr/internal/lr"
)

func main() {
	method := flag.String("method", "lalr", "table construction method: lalr, slr, lr1")
	preferShift := flag.Bool("prefer-shift", false, "resolve remaining shift/reduce conflicts by shifting")
	noPrec := flag.Bool("no-prec", false, "ignore precedence/associativity declarations")
	verbose := flag.Bool("v", false, "print the grammar and every resolution")
	out := flag.String("o", "", "write the compiled table (grammar + automaton) to this file")
	check := flag.String("check", "", "load a compiled table file and print its summary instead of compiling")
	flag.Parse()

	if *check != "" {
		data, err := os.ReadFile(*check)
		if err != nil {
			fatal(err)
		}
		tbl, err := lr.Decode(data)
		if err != nil {
			fatal(err)
		}
		g := tbl.Grammar()
		fmt.Printf("loaded %s: %d symbols, %d productions\n", *check, g.NumSymbols(), g.NumProductions())
		fmt.Print(tbl.String())
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: iglrc [flags] grammar.y")
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	g, err := grammar.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	var m lr.Method
	switch *method {
	case "lalr":
		m = lr.LALR
	case "slr":
		m = lr.SLR
	case "lr1":
		m = lr.LR1
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	tbl, err := lr.Build(g, lr.Options{
		Method:       m,
		PreferShift:  *preferShift,
		NoPrecedence: *noPrec,
	})
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := tbl.Encode(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote compiled table to %s\n", *out)
	}

	if *verbose {
		fmt.Print(g.String())
		fmt.Println()
	}
	fmt.Printf("grammar: %d terminals, %d nonterminals, %d productions\n",
		g.NumTerminals(), g.NumSymbols()-g.NumTerminals(), g.NumProductions())
	actions, gotos := tbl.TableSize()
	fmt.Printf("%v: %d states, %d action entries, %d gotos\n",
		tbl.Method(), tbl.NumStates(), actions, gotos)

	if n := len(tbl.Resolutions()); n > 0 {
		fmt.Printf("%d conflict(s) statically resolved", n)
		if *verbose {
			fmt.Println(":")
			for _, r := range tbl.Resolutions() {
				fmt.Printf("  state %d on %s: kept %v, dropped %v (%s)\n",
					r.State, g.Name(r.Term), r.Kept, r.Dropped, r.Rule)
			}
		} else {
			fmt.Println(" (use -v to list)")
		}
	}
	if tbl.Deterministic() {
		fmt.Println("table is deterministic: usable by both the deterministic and the GLR parser")
		return
	}
	fmt.Printf("%d conflict(s) retained for generalized LR parsing:\n", len(tbl.Conflicts()))
	fmt.Print(tbl.DescribeConflicts())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iglrc:", err)
	os.Exit(1)
}
