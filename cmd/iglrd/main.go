// Command iglrd is the incremental-analysis parse daemon: a long-lived
// HTTP/JSON service that holds editing sessions open across requests so
// every reparse is incremental (see package iglr/daemon).
//
// Usage:
//
//	iglrd -config iglrd.json
//	iglrd -bundled '*'                      # serve every compiled-in language
//	iglrd -langs dist/langs -listen :8520   # serve a langc artifact directory
//
// The data plane (sessions, edits, diagnostics, batch parses) listens on
// -listen; the admin plane (/healthz, /config, /reload, /metrics) on
// -admin, which should stay on loopback. SIGHUP re-reads -config and
// applies it with zero downtime, exactly like POST /reload; SIGINT/SIGTERM
// drain and exit.
//
// With -persist-dir the daemon is crash-safe: acknowledged edits are
// journaled to disk before they apply, sessions snapshot on eviction and
// shutdown, and a restart over the same directory restores each session
// on its first touch (see DESIGN.md, "Durability & crash recovery").
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"iglr/daemon"
)

func main() {
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)
	log.SetPrefix("iglrd: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("iglrd", flag.ExitOnError)
	var (
		configPath = fs.String("config", "", "JSON config file (reloaded on SIGHUP or POST /reload)")
		listen     = fs.String("listen", "", "data-plane address (overrides config)")
		admin      = fs.String("admin", "", "admin-plane address (overrides config; keep loopback)")
		langDirs   = fs.String("langs", "", "comma-separated *.cclang artifact directories (overrides config)")
		bundled    = fs.String("bundled", "", "comma-separated bundled language names, or '*' (overrides config)")
		ttl        = fs.Duration("session-ttl", 0, "evict sessions idle longer than this (overrides config)")
		persistDir = fs.String("persist-dir", "", "session durability directory: snapshots + write-ahead journals, crash-safe restarts (overrides config)")
	)
	fs.Parse(args)

	cfg, err := loadConfig(*configPath)
	if err != nil {
		return err
	}
	if *listen != "" {
		cfg.Listen = *listen
	}
	if *admin != "" {
		cfg.AdminListen = *admin
	}
	if *langDirs != "" {
		cfg.LanguageDirs = strings.Split(*langDirs, ",")
	}
	if *bundled != "" {
		cfg.Bundled = strings.Split(*bundled, ",")
	}
	if *ttl > 0 {
		cfg.SessionTTL = daemon.Duration(*ttl)
	}
	if *persistDir != "" {
		cfg.Persist.Dir = *persistDir
	}

	d, err := daemon.New(cfg)
	if err != nil {
		return err
	}
	d.ConfigPath = *configPath
	if err := d.Start(); err != nil {
		return err
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	for s := range sig {
		if s != syscall.SIGHUP {
			log.Printf("%v: draining", s)
			break
		}
		// SIGHUP: re-read the config file and hot-swap, like POST /reload.
		if *configPath == "" {
			log.Printf("SIGHUP ignored: no -config file to re-read")
			continue
		}
		next, err := loadConfig(*configPath)
		if err != nil {
			log.Printf("SIGHUP reload rejected: %v", err)
			continue
		}
		if _, err := d.Reload(next); err != nil {
			log.Printf("SIGHUP reload rejected: %v", err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return d.Shutdown(ctx)
}

// loadConfig reads a daemon config file, or returns the zero config when
// no path is given (flags must then supply a language source).
func loadConfig(path string) (daemon.Config, error) {
	var cfg daemon.Config
	if path == "" {
		return cfg, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("%s: %w", path, err)
	}
	return cfg, nil
}
