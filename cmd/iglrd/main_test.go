package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"iglr/daemon"
)

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "iglrd.json")
	if err := os.WriteFile(path, []byte(`{
		"listen": "127.0.0.1:9520",
		"bundled": ["expr"],
		"session_ttl": "90s",
		"tenants": {"ide": {"max_sessions": 32}}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := loadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Listen != "127.0.0.1:9520" || len(cfg.Bundled) != 1 ||
		time.Duration(cfg.SessionTTL) != 90*time.Second ||
		cfg.Tenants["ide"].MaxSessions != 32 {
		t.Fatalf("loadConfig: %+v", cfg)
	}
}

func TestLoadConfigRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "iglrd.json")
	if err := os.WriteFile(path, []byte(`{"bundled": ["expr"], "listn": ":1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadConfig(path); err == nil {
		t.Fatal("typo'd config field accepted")
	}
}

func TestLoadConfigEmptyPath(t *testing.T) {
	cfg, err := loadConfig("")
	if err != nil {
		t.Fatal(err)
	}
	if !jsonZero(cfg) {
		t.Fatalf("zero config expected, got %+v", cfg)
	}
}

func jsonZero(cfg daemon.Config) bool {
	a, _ := json.Marshal(cfg)
	b, _ := json.Marshal(daemon.Config{})
	return string(a) == string(b)
}
