// Command iglrparse parses a source file with one of the bundled languages
// and reports on the resulting abstract parse dag. It can print the dag,
// trace parser actions (the Appendix B facility), run semantic
// disambiguation, and replay edit scripts incrementally.
//
// Usage:
//
//	iglrparse -lang cpp [-dag] [-trace] [-resolve] [-edit off:rem:text]... file
//	iglrparse -lang expr -text '1+2*3' -dag
//
// Each -edit is applied after the initial parse, followed by an
// incremental reparse whose statistics are printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	incremental "iglr"
)

type editFlag []string

func (e *editFlag) String() string     { return strings.Join(*e, ",") }
func (e *editFlag) Set(s string) error { *e = append(*e, s); return nil }

func main() {
	langName := flag.String("lang", "c", "language: expr, exprdyn, c, cpp, java, lisp, mod2, lr2, scannerless")
	text := flag.String("text", "", "parse this text instead of a file")
	showDag := flag.Bool("dag", false, "print the abstract parse dag")
	trace := flag.Bool("trace", false, "trace parser actions")
	resolve := flag.Bool("resolve", false, "run semantic disambiguation after parsing")
	recover := flag.Bool("recover", false, "use history-based error recovery for edits")
	var edits editFlag
	flag.Var(&edits, "edit", "apply edit offset:removed:text and reparse (repeatable)")
	flag.Parse()

	var lang *incremental.Language
	switch *langName {
	case "expr":
		lang = incremental.ExprLanguage()
	case "exprdyn":
		lang = incremental.AmbiguousExprLanguage()
	case "c":
		lang = incremental.CSubset()
	case "cpp":
		lang = incremental.CPPSubset()
	case "lr2":
		lang = incremental.LR2Language()
	case "java":
		lang = incremental.JavaSubset()
	case "lisp":
		lang = incremental.LispSubset()
	case "mod2":
		lang = incremental.Modula2Subset()
	case "scannerless":
		lang = incremental.ScannerlessLanguage()
	default:
		fatal(fmt.Errorf("unknown language %q", *langName))
	}

	src := *text
	if src == "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: iglrparse [flags] file   (or -text '...')")
			os.Exit(2)
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	}

	s := incremental.NewSession(lang, src)
	if *trace {
		s.Trace(func(f string, args ...any) { fmt.Printf("  "+f+"\n", args...) })
	}

	ctx := context.Background()
	out := s.Do(ctx)
	if out.Err != nil {
		fatal(out.Err)
	}
	tree := out.Root
	report(s, tree, *showDag, *resolve, lang)

	for _, espec := range edits {
		off, rem, ins, err := parseEdit(espec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n== edit @%d -%d +%q ==\n", off, rem, ins)
		s.Edit(off, rem, ins)
		if *recover {
			out = s.Do(ctx, incremental.Tolerant())
			if out.Err != nil {
				fatal(out.Err)
			}
			if len(out.Unincorporated) > 0 {
				fmt.Printf("unincorporated edits: %d (reverted)\n", len(out.Unincorporated))
			}
		} else {
			out = s.Do(ctx)
			if out.Err != nil {
				fatal(out.Err)
			}
		}
		tree = out.Root
		fmt.Printf("relexed %d token(s)\n", s.Relexed())
		report(s, tree, *showDag, *resolve, lang)
	}
}

func report(s *incremental.Session, tree *incremental.Node, showDag, resolve bool, lang *incremental.Language) {
	st := incremental.Measure(tree)
	ps := s.Stats()
	fmt.Printf("parse ok: %d dag nodes, %d in embedded tree, %d ambiguous region(s), overhead %.3f%%\n",
		st.DagNodes, st.TreeNodes, st.AmbiguousRegions, st.SpaceOverheadPercent())
	fmt.Printf("parser: %d terminal shift(s), %d subtree shift(s), %d reduction(s), %d breakdown(s), max %d parser(s)\n",
		ps.TerminalShifts, ps.SubtreeShifts, ps.Reductions, ps.Breakdowns, ps.MaxActiveParsers)
	if resolve {
		r := s.Resolve()
		fmt.Printf("semantics: %d→declaration, %d→statement, %d unresolved; %d type / %d ordinary binding(s)\n",
			r.ResolvedDecl, r.ResolvedStmt, r.Unresolved, r.TypeBindings, r.OrdinaryBindings)
	}
	if showDag {
		fmt.Print(incremental.FormatDag(lang, tree))
	}
}

func parseEdit(spec string) (off, rem int, ins string, err error) {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) != 3 {
		return 0, 0, "", fmt.Errorf("edit %q: want offset:removed:text", spec)
	}
	off, err = strconv.Atoi(parts[0])
	if err != nil {
		return
	}
	rem, err = strconv.Atoi(parts[1])
	if err != nil {
		return
	}
	return off, rem, parts[2], nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "iglrparse:", err)
	os.Exit(1)
}
