// Command langc compiles bundled languages into .cclang artifacts — the
// off-line half of the compiled-language pipeline. Deployments run `langc
// compile -all -o dir` at build time, ship the directory, and load it with
// engine.LoadLanguages (or point WithCompiledCache at it) so serving
// processes never pay LR construction or lexer subset construction.
//
// Usage:
//
//	langc list
//	langc compile [-o dir] [-method lalr|slr|lr1] (-all | name...)
//	langc info file.cclang...
//	langc verify file.cclang...
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"iglr/internal/langcodec"
	"iglr/internal/langreg"
	"iglr/internal/langs"
	"iglr/internal/lr"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "list":
		for _, e := range langreg.All() {
			fmt.Println(e.Name)
		}
	case "compile":
		compile(os.Args[2:])
	case "info":
		forEachArtifact(os.Args[2:], info)
	case "verify":
		forEachArtifact(os.Args[2:], verify)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  langc list
  langc compile [-o dir] [-method lalr|slr|lr1] (-all | name...)
  langc info file.cclang...
  langc verify file.cclang...`)
	os.Exit(2)
}

func compile(args []string) {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	out := fs.String("o", ".", "output directory for .cclang artifacts")
	method := fs.String("method", "", "override table method: lalr, slr, lr1 (default: each language's own)")
	all := fs.Bool("all", false, "compile every bundled language")
	fs.Parse(args)

	var entries []langreg.Entry
	if *all {
		entries = langreg.All()
	} else {
		if fs.NArg() == 0 {
			fatal(fmt.Errorf("no languages named (or use -all)"))
		}
		for _, name := range fs.Args() {
			e, ok := langreg.Find(name)
			if !ok {
				fatal(fmt.Errorf("unknown language %q (see langc list)", name))
			}
			entries = append(entries, e)
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, e := range entries {
		b := e.Fresh()
		if *method != "" {
			m, err := parseMethod(*method)
			if err != nil {
				fatal(err)
			}
			b.Options.Method = m
		}
		l, err := b.Build()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.Name, err))
		}
		data := langcodec.Encode(l)
		path := filepath.Join(*out, e.Name+langcodec.FileExt)
		if err := writeFileAtomic(path, data); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d bytes (%v, %d states)\n",
			path, len(data), l.Table.Method(), l.Table.NumStates())
	}
}

// writeFileAtomic replaces path via temp-file-plus-rename, so a serving
// process loading the artifact directory (engine.LoadLanguages, an iglrd
// reload) can never observe a partially written artifact — the same
// discipline as the library's disk cache.
func writeFileAtomic(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*"+langcodec.FileExt)
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func parseMethod(s string) (lr.Method, error) {
	switch s {
	case "lalr":
		return lr.LALR, nil
	case "slr":
		return lr.SLR, nil
	case "lr1":
		return lr.LR1, nil
	}
	return 0, fmt.Errorf("unknown method %q", s)
}

func forEachArtifact(paths []string, fn func(path string, data []byte, l *langs.Language) error) {
	if len(paths) == 0 {
		usage()
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		l, err := langcodec.Decode(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		if err := fn(path, data, l); err != nil {
			fatal(err)
		}
	}
}

func info(path string, data []byte, l *langs.Language) error {
	g := l.Grammar
	actions, gotos := l.Table.TableSize()
	fmt.Printf("%s: language %q (def hash %x)\n", path, l.Name, l.Hash[:8])
	fmt.Printf("  %d bytes on disk, table footprint %d bytes in memory\n", len(data), l.Table.Footprint())
	fmt.Printf("  grammar: %d terminals, %d nonterminals, %d productions\n",
		g.NumTerminals(), g.NumSymbols()-g.NumTerminals(), g.NumProductions())
	fmt.Printf("  %v: %d states, %d action entries, %d gotos, %d conflicts\n",
		l.Table.Method(), l.Table.NumStates(), actions, gotos, len(l.Table.Conflicts()))
	fmt.Printf("  lexer: %d rules, %d DFA states, %d byte classes\n",
		l.Spec.NumRules(), l.Spec.NumStates(), l.Spec.NumClasses())
	return nil
}

func verify(path string, data []byte, l *langs.Language) error {
	if enc := langcodec.Encode(l); !bytes.Equal(enc, data) {
		return fmt.Errorf("%s: decode→encode is not byte-identical (%d vs %d bytes)", path, len(enc), len(data))
	}
	fmt.Printf("%s: ok (%q, %d bytes, canonical)\n", path, l.Name, len(data))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "langc:", err)
	os.Exit(1)
}
