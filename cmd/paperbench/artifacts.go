package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	incremental "iglr"
	"iglr/internal/langcodec"
	"iglr/internal/langreg"
)

// The -json mode: a machine-readable benchmark of the compiled-artifact
// pipeline, meant for CI artifact upload and regression tracking rather than
// human reading. For each bundled language it measures the cold build (full
// LR + lexer subset construction), artifact decode, the on-disk hit path
// (read + decode), parse cost over the language's samples, and lexer
// throughput, alongside static footprint numbers.

// LangBench is one language's row in the report.
type LangBench struct {
	Name          string `json:"name"`
	Method        string `json:"method"`
	ArtifactBytes int    `json:"artifact_bytes"`

	// Cold start: full construction from the definition.
	ColdBuildNsPerOp   int64 `json:"cold_build_ns_per_op"`
	ColdBuildAllocsPer int64 `json:"cold_build_allocs_per_op"`
	// Warm start: decoding an in-memory artifact.
	DecodeNsPerOp   int64 `json:"decode_ns_per_op"`
	DecodeAllocsPer int64 `json:"decode_allocs_per_op"`
	// Disk hit: reading + decoding the artifact file (the cache-hit path).
	DiskHitNsPerOp int64 `json:"disk_hit_ns_per_op"`
	// ColdBuild / Decode.
	Speedup float64 `json:"speedup"`

	TableStates         int `json:"table_states"`
	TableFootprintBytes int `json:"table_footprint_bytes"`
	ActionCells         int `json:"action_cells"`
	GotoCells           int `json:"goto_cells"`
	DFAStates           int `json:"dfa_states"`
	ByteClasses         int `json:"byte_classes"`

	// Dynamic costs over the language's bundled samples (zero when the
	// language has none).
	ParseNsPerOp     int64   `json:"parse_ns_per_op,omitempty"`
	ParseAllocsPerOp int64   `json:"parse_allocs_per_op,omitempty"`
	LexMBPerSec      float64 `json:"lex_mb_per_sec,omitempty"`
}

// SessionRestoreBench is one language's row in the session durability
// benchmark: the cost of serializing a parsed session to a .ccsess
// artifact, the cost of waking one back up with RestoreSession, and how
// that restore compares to paying the cold lex+parse again. Only
// languages with bundled samples appear.
type SessionRestoreBench struct {
	Name     string `json:"name"`
	Sessions int    `json:"sessions"`
	// Total artifact size across the language's sample sessions.
	SnapshotBytes int `json:"snapshot_bytes"`
	// One op = snapshotting / restoring every sample session.
	SnapshotNsPerOp    int64 `json:"snapshot_ns_per_op"`
	RestoreNsPerOp     int64 `json:"restore_ns_per_op"`
	RestoreAllocsPerOp int64 `json:"restore_allocs_per_op"`
	// The cold baseline: NewSession + Do over the same sources (the
	// parse_ns_per_op measured above).
	ColdParseNsPerOp int64 `json:"cold_parse_ns_per_op"`
	// ColdParse / Restore: how many times cheaper waking a session from
	// its artifact is than re-lexing and re-parsing its text.
	ColdOverRestore float64 `json:"cold_over_restore"`
}

// BenchReport is the top-level JSON document.
type BenchReport struct {
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	NumCPU    int         `json:"num_cpu"`
	Format    int         `json:"artifact_format_version"`
	Languages []LangBench `json:"languages"`
	// SessionRestore measures the durability path: session snapshot
	// serialization, RestoreSession wake-up, and restore vs cold reparse.
	SessionRestore []SessionRestoreBench `json:"session_restore"`
	// ErrorDensity measures tier-1 error isolation cost at increasing
	// numbers of seeded syntax errors per file (0 is the control).
	ErrorDensity []ErrorDensityBench `json:"error_density"`
	// Daemon is the iglrd parse-service workload: concurrent editing
	// sessions over loopback HTTP with a mid-load config reload.
	Daemon *DaemonBench `json:"daemon"`
	// ColdCorpus is the Table 1 batch-throughput sweep over lex-worker
	// counts (raw lexer MB/s and end-to-end engine MB/s).
	ColdCorpus *ColdCorpusBench `json:"cold_corpus"`
	// Overload is the backpressure workload: an undersized daemon under
	// more clients than it can admit — shed rate and codes, queue-wait
	// percentiles, and the admitted traffic's throughput.
	Overload *OverloadBench `json:"overload"`
}

func runArtifactBench(outPath string) error {
	tmp, err := os.MkdirTemp("", "paperbench-artifacts-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	report := BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Format:    langcodec.FormatVersion,
	}

	for _, e := range langreg.All() {
		l := e.Lang()
		data := langcodec.Encode(l)
		path := filepath.Join(tmp, e.Name+langcodec.FileExt)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}

		row := LangBench{
			Name:          e.Name,
			Method:        fmt.Sprint(l.Table.Method()),
			ArtifactBytes: len(data),
			TableStates:   l.Table.NumStates(),

			TableFootprintBytes: l.Table.Footprint(),
			DFAStates:           l.Spec.NumStates(),
			ByteClasses:         l.Spec.NumClasses(),
		}
		row.ActionCells, row.GotoCells = l.Table.TableSize()

		cold := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Fresh().Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
		row.ColdBuildNsPerOp = cold.NsPerOp()
		row.ColdBuildAllocsPer = cold.AllocsPerOp()

		dec := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := langcodec.Decode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
		row.DecodeNsPerOp = dec.NsPerOp()
		row.DecodeAllocsPer = dec.AllocsPerOp()
		if row.DecodeNsPerOp > 0 {
			row.Speedup = float64(row.ColdBuildNsPerOp) / float64(row.DecodeNsPerOp)
		}

		hit := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				raw, err := os.ReadFile(path)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := langcodec.Decode(raw); err != nil {
					b.Fatal(err)
				}
			}
		})
		row.DiskHitNsPerOp = hit.NsPerOp()

		if len(e.Samples) > 0 {
			pub, ok := incremental.BundledLanguage(e.Name)
			if !ok {
				return fmt.Errorf("%s: registered but not bundled", e.Name)
			}
			// Each sample is a complete program; parse them one per session.
			parse := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, src := range e.Samples {
						s := incremental.NewSession(pub, src)
						if out := s.Do(context.Background()); out.Err != nil {
							b.Fatal(out.Err)
						}
					}
				}
			})
			row.ParseNsPerOp = parse.NsPerOp()
			row.ParseAllocsPerOp = parse.AllocsPerOp()

			// Best of three: one testing.Benchmark pass lands wherever the
			// GC and scheduler put it, and the committed numbers flapped
			// run to run until the repeats took the fastest.
			lexSrc := strings.Repeat(strings.Join(e.Samples, "\n")+"\n", 256)
			for rep := 0; rep < 3; rep++ {
				lex := testing.Benchmark(func(b *testing.B) {
					b.SetBytes(int64(len(lexSrc)))
					for i := 0; i < b.N; i++ {
						l.Spec.Scan(lexSrc)
					}
				})
				if d := lex.T; d > 0 {
					lexed := float64(len(lexSrc)) * float64(lex.N)
					if mbs := lexed / d.Seconds() / 1e6; mbs > row.LexMBPerSec {
						row.LexMBPerSec = mbs
					}
				}
			}

			// Session durability: snapshot the parsed sample sessions,
			// then measure RestoreSession against the cold reparse above.
			// The ratio is the headline durability number — how much
			// cheaper waking a session from its artifact is than
			// re-lexing and re-parsing its text.
			sessions := make([]*incremental.Session, len(e.Samples))
			snaps := make([][]byte, len(e.Samples))
			snapBytes := 0
			for i, src := range e.Samples {
				s := incremental.NewSession(pub, src)
				if out := s.Do(context.Background()); out.Err != nil {
					return fmt.Errorf("%s sample %d: %w", e.Name, i, out.Err)
				}
				var buf bytes.Buffer
				if err := s.Snapshot(&buf); err != nil {
					return fmt.Errorf("%s sample %d snapshot: %w", e.Name, i, err)
				}
				sessions[i] = s
				snaps[i] = buf.Bytes()
				snapBytes += buf.Len()
			}
			snapBench := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, s := range sessions {
						if err := s.Snapshot(io.Discard); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			restBench := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, raw := range snaps {
						if _, err := incremental.RestoreSession(bytes.NewReader(raw), pub); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			sr := SessionRestoreBench{
				Name:               e.Name,
				Sessions:           len(e.Samples),
				SnapshotBytes:      snapBytes,
				SnapshotNsPerOp:    snapBench.NsPerOp(),
				RestoreNsPerOp:     restBench.NsPerOp(),
				RestoreAllocsPerOp: restBench.AllocsPerOp(),
				ColdParseNsPerOp:   row.ParseNsPerOp,
			}
			if sr.RestoreNsPerOp > 0 {
				sr.ColdOverRestore = float64(sr.ColdParseNsPerOp) / float64(sr.RestoreNsPerOp)
			}
			fmt.Fprintf(os.Stderr, "%-16s snapshot %s  restore %s  cold %s  %.1fx  %d B\n",
				e.Name+" (sess)",
				time.Duration(sr.SnapshotNsPerOp),
				time.Duration(sr.RestoreNsPerOp),
				time.Duration(sr.ColdParseNsPerOp),
				sr.ColdOverRestore, sr.SnapshotBytes)
			report.SessionRestore = append(report.SessionRestore, sr)
		}

		fmt.Fprintf(os.Stderr, "%-16s cold %s  decode %s  disk hit %s  %.0fx  %d B\n",
			e.Name,
			time.Duration(row.ColdBuildNsPerOp),
			time.Duration(row.DecodeNsPerOp),
			time.Duration(row.DiskHitNsPerOp),
			row.Speedup, row.ArtifactBytes)
		report.Languages = append(report.Languages, row)
	}

	density, err := runErrorDensity()
	if err != nil {
		return fmt.Errorf("error-density workload: %w", err)
	}
	report.ErrorDensity = density
	for _, r := range density {
		fmt.Fprintf(os.Stderr, "errors=%-3d recover %s  diagnostics %d  overhead %+.1f%%\n",
			r.SeededErrors, time.Duration(r.RecoverNsPerOp), r.Diagnostics, r.OverheadPct)
	}

	db, err := runDaemonBench(32, 8)
	if err != nil {
		return fmt.Errorf("daemon workload: %w", err)
	}
	report.Daemon = db
	fmt.Fprintf(os.Stderr, "daemon %d sessions x %d rounds: %.0f req/s  p50 %s  p99 %s\n",
		db.Sessions, db.EditRounds, db.RequestsPerSec,
		time.Duration(db.P50Micros)*time.Microsecond, time.Duration(db.P99Micros)*time.Microsecond)

	cc, err := runColdCorpus(0.05, []int{1, 2, 4, 8})
	if err != nil {
		return fmt.Errorf("cold-corpus workload: %w", err)
	}
	report.ColdCorpus = cc
	fmt.Fprint(os.Stderr, formatColdCorpus(cc))

	ob, err := runOverloadBench(16, 6)
	if err != nil {
		return fmt.Errorf("overload workload: %w", err)
	}
	report.Overload = ob
	fmt.Fprint(os.Stderr, formatOverload(ob))

	out, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	return os.WriteFile(outPath, out, 0o644)
}
