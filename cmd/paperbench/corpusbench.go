package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	incremental "iglr"
	"iglr/engine"
	"iglr/internal/corpus"
	"iglr/internal/langreg"
	"iglr/internal/lexer"
)

// The cold-corpus workload: lex and parse the (scaled) Table 1 corpus from
// a standing start, sweeping the worker count through both stages. This is
// the throughput axis of the batch path — raw lexer MB/s, parse-stage MB/s
// (pre-lexed sessions, Parse() alone on the clock; the number the 50×
// lex/parse gap tracks), and end-to-end engine MB/s with allocation
// pressure per file. The two stage microbenchmarks take the best of
// several passes: a single pass is at the mercy of a GC cycle or a
// scheduler hiccup, and the committed numbers flapped run to run before
// the repeats took the minimum. It runs standalone under -corpus (the CI
// race smoke) and as the cold_corpus section of the -json artifact report.

// ColdCorpusRow is one worker count's measurements. The sweep point drives
// both knobs at once: LexWorkers and ParseWorkers are the same value.
type ColdCorpusRow struct {
	LexWorkers   int `json:"lex_workers"`
	ParseWorkers int `json:"parse_workers"`
	// Raw lexer throughput over the corpus, best of five passes.
	LexMBPerSec float64 `json:"lex_mb_per_sec"`
	// Parse-stage throughput: sessions built (lexed) off the clock, then
	// every file's cold Parse() timed together, best of three passes. At
	// worker counts above one, qualifying files take the chunked parallel
	// path (§3.4 top-level sequences).
	ParseMBPerSec float64 `json:"parse_mb_per_sec"`
	// End-to-end engine throughput (lex + parse + commit) with file-level,
	// per-file lex, and per-file parse parallelism all at this worker count.
	EngineMBPerSec float64 `json:"engine_mb_per_sec"`
	// Heap allocations per file during the end-to-end run.
	AllocsPerFile int64 `json:"allocs_per_file"`
}

// ColdCorpusBench is the cold-corpus section of the benchmark report.
type ColdCorpusBench struct {
	Files      int             `json:"files"`
	Bytes      int64           `json:"bytes"`
	Scale      float64         `json:"scale"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Rows       []ColdCorpusRow `json:"rows"`
}

func runColdCorpus(scale float64, sweep []int) (*ColdCorpusBench, error) {
	type group struct {
		lang   *incremental.Language
		spec   *lexer.Spec
		inputs []engine.Input
	}
	groups := map[string]*group{}
	for lang, name := range map[string]string{"c": "c-subset", "c++": "cpp-subset"} {
		e, ok := langreg.Find(name)
		if !ok {
			return nil, fmt.Errorf("cold corpus: %s not registered", name)
		}
		pub, ok := incremental.BundledLanguage(name)
		if !ok {
			return nil, fmt.Errorf("cold corpus: %s registered but not bundled", name)
		}
		groups[lang] = &group{lang: pub, spec: e.Lang().Spec}
	}

	bench := &ColdCorpusBench{Scale: scale, GOMAXPROCS: runtime.GOMAXPROCS(0)}
	for _, spec := range corpus.Table1Specs() {
		spec.Lines = int(float64(spec.Lines) * scale)
		if spec.Lines < 100 {
			spec.Lines = 100
		}
		src, _ := corpus.Generate(spec)
		g := groups[spec.Lang]
		g.inputs = append(g.inputs, engine.Input{Name: spec.Name, Source: src})
		bench.Bytes += int64(len(src))
		bench.Files++
	}

	for _, workers := range sweep {
		row := ColdCorpusRow{LexWorkers: workers, ParseWorkers: workers}

		// Raw lex throughput: every corpus file through the chunked scanner,
		// best wall time of five passes. An untimed warmup pass grows the
		// shared token buffer and faults the corpus in so rep 0 measures
		// the same work as the rest.
		runtime.GC() // settle debt from the previous row's parse pass
		var buf []lexer.Token
		for _, g := range groups {
			for _, in := range g.inputs {
				buf = g.spec.ScanParallelInto(in.Source, workers, buf[:0])
			}
		}
		best := time.Duration(0)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			for _, g := range groups {
				for _, in := range g.inputs {
					buf = g.spec.ScanParallelInto(in.Source, workers, buf[:0])
				}
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		if best > 0 {
			row.LexMBPerSec = float64(bench.Bytes) / best.Seconds() / 1e6
		}

		// Parse stage alone: build every session (which lexes) off the
		// clock, then time the cold Parse() calls back to back, best of
		// three passes. Each rep builds fresh sessions so every timed parse
		// is cold; the GC runs between building and timing so the parses
		// don't pay down session-construction debt. A session is dropped as
		// soon as its parse finishes: this row measures parse throughput,
		// not residency, and holding every finished tree live would tax
		// each file's parse with GC scans of its predecessors' trees (the
		// engine row below does keep its whole batch and pays that rent).
		best = 0
		for rep := 0; rep < 3; rep++ {
			var sessions []*incremental.Session
			for _, g := range groups {
				for _, in := range g.inputs {
					sessions = append(sessions, incremental.NewSession(g.lang, in.Source,
						incremental.WithParseWorkers(workers)))
				}
			}
			runtime.GC()
			start := time.Now()
			for i, s := range sessions {
				if _, err := s.Parse(); err != nil {
					return nil, fmt.Errorf("cold corpus: parse stage at %d workers: %w", workers, err)
				}
				sessions[i] = nil
			}
			if d := time.Since(start); best == 0 || d < best {
				best = d
			}
		}
		if best > 0 {
			row.ParseMBPerSec = float64(bench.Bytes) / best.Seconds() / 1e6
		}

		// End to end: the engine's batch path, allocation pressure included.
		// One pass — ParseAll dominates the wall clock and its variance is
		// low next to the stage microbenchmarks'.
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for _, g := range groups {
			batch, err := engine.ParseAll(context.Background(), g.lang, g.inputs,
				engine.WithPolicy(engine.Policy{Workers: workers, LexWorkers: workers, ParseWorkers: workers}))
			if err != nil {
				return nil, err
			}
			if batch.Aggregate.Failed != 0 {
				return nil, fmt.Errorf("cold corpus: %d files failed at %d workers",
					batch.Aggregate.Failed, workers)
			}
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		row.EngineMBPerSec = float64(bench.Bytes) / wall.Seconds() / 1e6
		row.AllocsPerFile = int64(after.Mallocs-before.Mallocs) / int64(bench.Files)

		bench.Rows = append(bench.Rows, row)
	}
	return bench, nil
}

// runCorpusOnly is the -corpus entry point: the standalone sweep the CI
// race smoke runs. The table goes to stdout; jsonPath (when set) gets the
// machine-readable report.
func runCorpusOnly(scale float64, workers, jsonPath string) error {
	var sweep []int
	for _, f := range strings.Split(workers, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -corpus-workers entry %q", f)
		}
		sweep = append(sweep, n)
	}
	bench, err := runColdCorpus(scale, sweep)
	if err != nil {
		return err
	}
	fmt.Print(formatColdCorpus(bench))
	if jsonPath == "" {
		return nil
	}
	out, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(out, '\n'), 0o644)
}

func formatColdCorpus(b *ColdCorpusBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cold corpus: %d files, %.1f MB (Table 1 at %.0f%% scale), GOMAXPROCS=%d\n",
		b.Files, float64(b.Bytes)/1e6, 100*b.Scale, b.GOMAXPROCS)
	w := tabwriter.NewWriter(&sb, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "workers\tlex MB/s\tparse MB/s\tengine MB/s\tallocs/file")
	for _, r := range b.Rows {
		fmt.Fprintf(w, "%d\t%.1f\t%.2f\t%.2f\t%d\n",
			r.LexWorkers, r.LexMBPerSec, r.ParseMBPerSec, r.EngineMBPerSec, r.AllocsPerFile)
	}
	w.Flush()
	return sb.String()
}
