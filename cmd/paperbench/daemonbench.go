package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"iglr/daemon"
)

// DaemonBench is the parse-service workload's row in the report: an
// in-process iglrd serving concurrent editing sessions over real loopback
// sockets, each request one incremental edit + reparse round-trip. The
// latencies therefore include HTTP, JSON, and shard-scheduling overhead —
// the service cost on top of the raw reparse numbers elsewhere in the
// report.
type DaemonBench struct {
	Sessions   int   `json:"sessions"`
	EditRounds int   `json:"edit_rounds"`
	Shards     int   `json:"shards"`
	Requests   int64 `json:"requests"`
	WallMicros int64 `json:"wall_micros"`

	RequestsPerSec float64 `json:"requests_per_sec"`
	P50Micros      int64   `json:"p50_micros"`
	P95Micros      int64   `json:"p95_micros"`
	P99Micros      int64   `json:"p99_micros"`

	// MidLoadReloads counts config reloads swapped in while the fleet was
	// editing; the workload fails if any request fails, reload included.
	MidLoadReloads int `json:"mid_load_reloads"`
}

// runDaemonBench drives the daemon workload: sessions concurrent editors,
// editRounds append/revert cycles each, with one hot config reload in the
// middle of the load. Any non-2xx response fails the bench.
func runDaemonBench(sessions, editRounds int) (*DaemonBench, error) {
	d, err := daemon.New(daemon.Config{
		Listen:      "127.0.0.1:0",
		AdminListen: "127.0.0.1:0",
		Bundled:     []string{"expr", "c-subset"},
		Shards:      4, // pinned so the workload is machine-independent
	})
	if err != nil {
		return nil, err
	}
	d.Logf = func(string, ...any) {}
	if err := d.Start(); err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	}()

	client := &http.Client{Timeout: 30 * time.Second}
	post := func(host, path string, body any) ([]byte, error) {
		data, _ := json.Marshal(body)
		resp, err := client.Post("http://"+host+path, "application/json", bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode/100 != 2 {
			return nil, fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, out)
		}
		return out, nil
	}

	bench := &DaemonBench{
		Sessions:   sessions,
		EditRounds: editRounds,
		Shards:     func() int { cfg, _ := d.Snapshot(); return cfg.Shards }(),
	}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		firstErr  error
	)
	record := func(dur time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		latencies = append(latencies, dur)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lang, text, suffix := "expr", "1+2*3", "+41"
			if i%2 == 1 {
				lang, text, suffix = "c-subset", "int a; a = 1; int b;", " int c;"
			}
			t0 := time.Now()
			body, err := post(d.Addr().String(), "/sessions", map[string]any{
				"language": lang, "text": text,
			})
			record(time.Since(t0), err)
			if err != nil {
				return
			}
			var created struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal(body, &created); err != nil {
				record(0, err)
				return
			}
			for r := 0; r < editRounds; r++ {
				for _, edits := range []any{
					map[string]any{"edits": []map[string]any{{"offset": len(text), "insert": suffix}}},
					map[string]any{"edits": []map[string]any{{"offset": len(text), "remove": len(suffix)}}},
				} {
					t0 := time.Now()
					_, err := post(d.Addr().String(), "/sessions/"+created.ID+"/edits", edits)
					record(time.Since(t0), err)
					if err != nil {
						return
					}
				}
			}
		}(i)
	}

	// One hot reload mid-load: same languages, a new tenant budget.
	reloadErr := make(chan error, 1)
	go func() {
		time.Sleep(time.Millisecond)
		cfg, _ := d.Snapshot()
		cfg.MaxSessions = sessions * 2
		_, err := post(d.AdminAddr().String(), "/config", cfg)
		reloadErr <- err
	}()

	wg.Wait()
	if err := <-reloadErr; err != nil {
		return nil, fmt.Errorf("mid-load reload: %w", err)
	}
	bench.MidLoadReloads = 1
	if firstErr != nil {
		return nil, firstErr
	}

	wall := time.Since(start)
	bench.Requests = int64(len(latencies))
	bench.WallMicros = wall.Microseconds()
	if wall > 0 {
		bench.RequestsPerSec = float64(bench.Requests) / wall.Seconds()
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(p float64) int64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(p * float64(len(latencies)-1))
		return latencies[i].Microseconds()
	}
	bench.P50Micros = pct(0.50)
	bench.P95Micros = pct(0.95)
	bench.P99Micros = pct(0.99)
	return bench, nil
}
