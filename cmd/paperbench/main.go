// Command paperbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// paper-vs-measured record).
//
// Usage:
//
//	paperbench [-exp all|table1|figure4|figure7|section5|asymptotics|staging] [-scale 1.0]
//
// -scale shrinks the Table 1 / Figure 4 program sizes for quick runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"iglr/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, figure4, figure7, section5, asymptotics, staging, earley, ablation")
	scale := flag.Float64("scale", 1.0, "scale factor for program sizes")
	flag.Parse()

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		rows, err := experiments.Table1(*scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable1(rows))
		var sum float64
		for _, r := range rows {
			sum += r.MeasuredPct
		}
		fmt.Printf("mean measured overhead: %.3f%% (paper: all rows ≤ 0.52%%, ~0.5%% headline)\n",
			sum/float64(len(rows)))
		return nil
	})

	run("figure4", func() error {
		res, err := experiments.Figure4(int(120**scale)+10, 900)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure4(res))
		return nil
	})

	run("figure7", func() error {
		r, err := experiments.RunFigure7()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure7(r))
		return nil
	})

	run("section5", func() error {
		b, err := experiments.RunSection5Batch(int(20000**scale)+500, 5)
		if err != nil {
			return err
		}
		fmt.Printf("batch: det %.0f ns/token, IGLR %.0f ns/token, ratio %.2f (paper: 12%% vs 15%% parse share ≈ 1.25x)\n",
			b.DetNsPerTok, b.IGLRNsPerTok, b.Ratio)
		fmt.Printf("parse share of lex+parse: det %.0f%%, IGLR %.0f%% (paper: 12%% / 15%% of full analysis)\n",
			100*b.DetShare, 100*b.IGLRShare)

		inc, err := experiments.RunSection5Incremental(int(8000**scale)+500, 40)
		if err != nil {
			return err
		}
		fmt.Printf("incremental: det %.0f ns/reparse, IGLR %.0f ns/reparse, ratio %.2f (paper: undetectable difference)\n",
			inc.DetNsPerRe, inc.IGLRNsPerRe, inc.Ratio)
		fmt.Printf("IGLR work per reparse: %.1f shifts over %d statements\n",
			inc.IGLRShiftsPerRe, inc.Statements)

		sp, err := experiments.RunSection5Space(2000)
		if err != nil {
			return err
		}
		fmt.Printf("space: node %dB, state field %dB = %.1f%% of node (paper: ~5%% over sentential-form nodes); node-count parity %.3f\n",
			sp.NodeBytes, sp.StateBytes, sp.StatePct, sp.NodeCountRatio)

		amb, err := experiments.RunSection5Ambiguity(int(12000**scale)+1000, 30)
		if err != nil {
			return err
		}
		fmt.Printf("ambiguity carry cost: plain %.0f ns/reparse, with %d ambiguous regions %.0f ns/reparse → %.2f%% time overhead (paper: well under 1%%)\n",
			amb.PlainNsPerRe, amb.Ambiguous, amb.AmbNsPerRe, amb.OverheadPct)
		fmt.Printf("  parser work per reparse: plain %.1f, ambiguous %.1f → %.2f%% work overhead\n",
			amb.PlainWorkPerRe, amb.AmbWorkPerRe, amb.WorkOverheadPct)
		return nil
	})

	run("asymptotics", func() error {
		sizes := []int{1000, 4000, 16000, 64000}
		if *scale < 0.5 {
			sizes = []int{500, 2000, 8000}
		}
		pts, err := experiments.RunAsymptotics(sizes, 8)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAsymptotics(pts))
		fmt.Println("paper §3.4: list-shaped sequences degrade incremental parsing to linear;")
		fmt.Println("balanced sequences restore O(t + s·lg N) (depth column grows logarithmically).")
		return nil
	})

	run("ablation", func() error {
		r, err := experiments.RunAblation(int(4000**scale)+500, 12)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblation(r))
		fmt.Println("paper §3.3: LALR tables are significantly smaller than LR(1) and merge")
		fmt.Println("like-cored states, which improves incremental reuse; speeds are comparable.")
		return nil
	})

	run("earley", func() error {
		pts, err := experiments.RunEarleyComparison([]int{500, 2000, 8000})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatEarleyComparison(pts))
		fmt.Println("paper footnote 4 (Tomita/Rekers): programming-language grammars are near-LR(1),")
		fmt.Println("so GLR parses in linear time while Earley pays its general-case overhead.")
		return nil
	})

	run("staging", func() error {
		pts, err := experiments.RunFilterStaging([]int{4, 8, 16, 32, 64}, 3)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFilterStaging(pts))
		fmt.Println("paper §4.1: static filters keep expressions deterministic (linear nodes);")
		fmt.Println("dynamic-only filtering pays quadratic space per expression before filtering.")
		return nil
	})
}
