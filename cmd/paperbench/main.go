// Command paperbench regenerates every table and figure of the paper's
// evaluation (see DESIGN.md's experiment index and EXPERIMENTS.md for the
// paper-vs-measured record).
//
// Usage:
//
//	paperbench [-exp all|table1|figure4|figure7|section5|asymptotics|staging|parallel] [-scale 1.0]
//	           [-budget] [-json out.json] [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -scale shrinks the Table 1 / Figure 4 program sizes for quick runs.
// -budget runs the resource-governance sweep instead: a corpus salted
// with pathologically ambiguous files is driven through the engine under
// per-file budgets of decreasing strictness, reporting budget trips,
// degraded (pruned) completions, and failures at each level.
// -json runs the compiled-artifact benchmark suite instead — per bundled
// language: cold build vs artifact decode vs disk-hit load times, parse
// ns/op and allocs/op, lexer MB/s, and table/DFA footprints — and writes
// the machine-readable report to the given file (see BENCH_parse.json for
// a committed reference run).
// -cpuprofile and -memprofile write pprof profiles covering the selected
// experiments (the memory profile is a heap snapshot taken after they
// finish), for inspecting the hot path outside the go test harness.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"text/tabwriter"
	"time"

	incremental "iglr"
	"iglr/engine"
	"iglr/internal/corpus"
	"iglr/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, table1, figure4, figure7, section5, asymptotics, staging, earley, ablation, parallel")
	scale := flag.Float64("scale", 1.0, "scale factor for program sizes")
	budget := flag.Bool("budget", false, "run the resource-budget sweep (trips/degradations under per-file policies)")
	jsonOut := flag.String("json", "", "write the compiled-artifact benchmark suite (cold vs cached language loads, lexer MB/s, table footprints) as JSON to this file and exit")
	corpusOnly := flag.Bool("corpus", false, "run only the cold-corpus throughput workload (lex, parse-stage, and end-to-end MB/s per worker count) and exit; with -json, write its report there")
	corpusScale := flag.Float64("corpus-scale", 0.05, "fraction of Table 1 line counts for the cold-corpus workload")
	corpusWorkers := flag.String("corpus-workers", "1,2,4,8", "comma-separated worker counts (lex and parse) for the cold-corpus sweep")
	overloadOnly := flag.Bool("overload", false, "run only the overload/backpressure workload (shed rate, queue-wait percentiles, accepted throughput against an undersized daemon) and exit; with -json, write its report there")
	overloadWorkers := flag.Int("overload-workers", 16, "concurrent clients for the -overload workload")
	overloadRounds := flag.Int("overload-rounds", 6, "create/edit/read/close rounds per client for the -overload workload")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "paperbench: -memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	if *corpusOnly {
		if err := runCorpusOnly(*corpusScale, *corpusWorkers, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: -corpus: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *overloadOnly {
		if err := runOverloadOnly(*overloadWorkers, *overloadRounds, *jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: -overload: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *jsonOut != "" {
		if err := runArtifactBench(*jsonOut); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: -json: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *budget {
		if err := runBudget(*scale); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: -budget: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run := func(name string, f func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "paperbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	run("table1", func() error {
		rows, err := experiments.Table1(*scale)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTable1(rows))
		var sum float64
		for _, r := range rows {
			sum += r.MeasuredPct
		}
		fmt.Printf("mean measured overhead: %.3f%% (paper: all rows ≤ 0.52%%, ~0.5%% headline)\n",
			sum/float64(len(rows)))
		return nil
	})

	run("figure4", func() error {
		res, err := experiments.Figure4(int(120**scale)+10, 900)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure4(res))
		return nil
	})

	run("figure7", func() error {
		r, err := experiments.RunFigure7()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure7(r))
		return nil
	})

	run("section5", func() error {
		b, err := experiments.RunSection5Batch(int(20000**scale)+500, 5)
		if err != nil {
			return err
		}
		fmt.Printf("batch: det %.0f ns/token, IGLR %.0f ns/token, ratio %.2f (paper: 12%% vs 15%% parse share ≈ 1.25x)\n",
			b.DetNsPerTok, b.IGLRNsPerTok, b.Ratio)
		fmt.Printf("parse share of lex+parse: det %.0f%%, IGLR %.0f%% (paper: 12%% / 15%% of full analysis)\n",
			100*b.DetShare, 100*b.IGLRShare)

		inc, err := experiments.RunSection5Incremental(int(8000**scale)+500, 40)
		if err != nil {
			return err
		}
		fmt.Printf("incremental: det %.0f ns/reparse, IGLR %.0f ns/reparse, ratio %.2f (paper: undetectable difference)\n",
			inc.DetNsPerRe, inc.IGLRNsPerRe, inc.Ratio)
		fmt.Printf("IGLR work per reparse: %.1f shifts over %d statements\n",
			inc.IGLRShiftsPerRe, inc.Statements)

		sp, err := experiments.RunSection5Space(2000)
		if err != nil {
			return err
		}
		fmt.Printf("space: node %dB, state field %dB = %.1f%% of node (paper: ~5%% over sentential-form nodes); node-count parity %.3f\n",
			sp.NodeBytes, sp.StateBytes, sp.StatePct, sp.NodeCountRatio)

		amb, err := experiments.RunSection5Ambiguity(int(12000**scale)+1000, 30)
		if err != nil {
			return err
		}
		fmt.Printf("ambiguity carry cost: plain %.0f ns/reparse, with %d ambiguous regions %.0f ns/reparse → %.2f%% time overhead (paper: well under 1%%)\n",
			amb.PlainNsPerRe, amb.Ambiguous, amb.AmbNsPerRe, amb.OverheadPct)
		fmt.Printf("  parser work per reparse: plain %.1f, ambiguous %.1f → %.2f%% work overhead\n",
			amb.PlainWorkPerRe, amb.AmbWorkPerRe, amb.WorkOverheadPct)
		return nil
	})

	run("asymptotics", func() error {
		sizes := []int{1000, 4000, 16000, 64000}
		if *scale < 0.5 {
			sizes = []int{500, 2000, 8000}
		}
		pts, err := experiments.RunAsymptotics(sizes, 8)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAsymptotics(pts))
		fmt.Println("paper §3.4: list-shaped sequences degrade incremental parsing to linear;")
		fmt.Println("balanced sequences restore O(t + s·lg N) (depth column grows logarithmically).")
		return nil
	})

	run("ablation", func() error {
		r, err := experiments.RunAblation(int(4000**scale)+500, 12)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatAblation(r))
		fmt.Println("paper §3.3: LALR tables are significantly smaller than LR(1) and merge")
		fmt.Println("like-cored states, which improves incremental reuse; speeds are comparable.")
		return nil
	})

	run("earley", func() error {
		pts, err := experiments.RunEarleyComparison([]int{500, 2000, 8000})
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatEarleyComparison(pts))
		fmt.Println("paper footnote 4 (Tomita/Rekers): programming-language grammars are near-LR(1),")
		fmt.Println("so GLR parses in linear time while Earley pays its general-case overhead.")
		return nil
	})

	run("parallel", func() error {
		return runParallel(*scale)
	})

	run("staging", func() error {
		pts, err := experiments.RunFilterStaging([]int{4, 8, 16, 32, 64}, 3)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFilterStaging(pts))
		fmt.Println("paper §4.1: static filters keep expressions deterministic (linear nodes);")
		fmt.Println("dynamic-only filtering pays quadratic space per expression before filtering.")
		return nil
	})
}

// runBudget drives a corpus salted with pathologically ambiguous files
// through the engine under per-file budgets of decreasing strictness. Each
// row reports how the fleet fared: outright failures, files completed at
// reduced fidelity by the degraded retry (ambiguity pruned to the
// statically preferred reading), and the number of budget trips absorbed.
func runBudget(scale float64) error {
	lang := incremental.AmbiguousExprLanguage()

	// Healthy files: short expressions. Hostile files: long undisambiguated
	// operator chains whose forests grow like Catalan numbers.
	var inputs []engine.Input
	healthy, hostile := 24, 8
	if scale < 1 {
		healthy, hostile = 12, 4
	}
	for i := 0; i < healthy; i++ {
		inputs = append(inputs, engine.Input{
			Name: fmt.Sprintf("ok%d.expr", i), Source: mkExpr(6 + i%4),
		})
	}
	for i := 0; i < hostile; i++ {
		inputs = append(inputs, engine.Input{
			Name: fmt.Sprintf("hostile%d.expr", i), Source: mkExpr(40 + 10*i),
		})
	}

	degraded := incremental.Budget{MaxAlternatives: 2}
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "gss-link budget\tfailed\tdegraded\ttrips\twall")
	for _, links := range []int{64, 256, 1024, 8192, 0} {
		batch, err := engine.ParseAll(context.Background(), lang, inputs,
			engine.WithPolicy(engine.Policy{
				Budget:         incremental.Budget{MaxGSSLinks: links},
				Retries:        1,
				DegradedBudget: &degraded,
			}))
		if err != nil {
			return err
		}
		a := batch.Aggregate
		limit := "unlimited"
		if links > 0 {
			limit = fmt.Sprint(links)
		}
		fmt.Fprintf(w, "%s\t%d/%d\t%d\t%d\t%v\n",
			limit, a.Failed, a.Files, a.Degraded, a.BudgetTrips, a.Wall.Round(time.Millisecond))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("degraded files completed under MaxAlternatives=2 after the strict-budget attempt tripped;")
	fmt.Println("their dags are marked BudgetPruned where the forest was cut (see DESIGN.md, failure model).")
	return nil
}

// mkExpr builds an n-term expression over cycling operators with no
// precedence information — every operator is a fork for the raw grammar.
func mkExpr(n int) string {
	ops := []byte{'+', '*', '-', '/'}
	buf := make([]byte, 0, 2*n)
	for i := 0; i < n; i++ {
		if i > 0 {
			buf = append(buf, ops[i%len(ops)])
		}
		buf = append(buf, byte('1'+i%9))
	}
	return string(buf)
}

// runParallel sweeps the engine's worker count over the (scaled) Table 1
// corpus: C rows drive the shared C-subset language, C++ rows the shared
// C++-subset language, in one batch each per worker count. The paper's §5
// numbers are single-stream; this is the multi-core axis on top of them.
func runParallel(scale float64) error {
	type group struct {
		lang   *incremental.Language
		inputs []engine.Input
	}
	groups := map[string]*group{
		"c":   {lang: incremental.CSubset()},
		"c++": {lang: incremental.CPPSubset()},
	}
	var totalBytes int64
	files := 0
	for _, spec := range corpus.Table1Specs() {
		spec.Lines = int(float64(spec.Lines) * scale / 20)
		if spec.Lines < 100 {
			spec.Lines = 100
		}
		src, _ := corpus.Generate(spec)
		g := groups[spec.Lang]
		g.inputs = append(g.inputs, engine.Input{Name: spec.Name, Source: src})
		totalBytes += int64(len(src))
		files++
	}
	fmt.Printf("corpus: %d files, %.1f MB (Table 1 line counts at %.1f%%); GOMAXPROCS=%d\n",
		files, float64(totalBytes)/1e6, 100*scale/20, runtime.GOMAXPROCS(0))

	sweep := []int{1, 2, 4, 8}
	for w := 16; w <= 2*runtime.NumCPU(); w *= 2 {
		sweep = append(sweep, w)
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 0, 2, ' ', 0)
	fmt.Fprintln(w, "workers\twall\tMB/s\tspeedup\tfiles/s")
	var base float64
	for _, workers := range sweep {
		start := time.Now()
		for _, g := range groups {
			batch, err := engine.ParseAll(context.Background(), g.lang, g.inputs, engine.WithWorkers(workers))
			if err != nil {
				return err
			}
			if batch.Aggregate.Failed != 0 {
				return fmt.Errorf("%d files failed", batch.Aggregate.Failed)
			}
		}
		wall := time.Since(start)
		mbs := float64(totalBytes) / 1e6 / wall.Seconds()
		if base == 0 {
			base = wall.Seconds()
		}
		fmt.Fprintf(w, "%d\t%v\t%.2f\t%.2fx\t%.1f\n",
			workers, wall.Round(time.Millisecond), mbs, base/wall.Seconds(), float64(files)/wall.Seconds())
	}
	return w.Flush()
}
