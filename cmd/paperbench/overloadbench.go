package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	incremental "iglr"
	"iglr/daemon"
	"iglr/daemon/client"
)

// OverloadBench is the backpressure workload's row in the report: an
// undersized daemon — two shards with tiny queues, a global in-flight cap,
// low memory watermarks — hammered by more concurrent clients than it can
// admit. Retries are disabled so every refusal is observed; the point of
// the workload is that overload turns into fast, well-formed sheds while
// the admitted slice of traffic keeps its throughput and every shed
// carries a usable retry hint.
type OverloadBench struct {
	Workers     int `json:"workers"`
	PerWorker   int `json:"requests_per_worker"`
	Shards      int `json:"shards"`
	QueueDepth  int `json:"queue_depth"`
	MaxInflight int `json:"max_inflight"`

	// Requests counts client operations attempted (creates, edits,
	// subtree reads, closes); every one either succeeded or was shed.
	Requests int64 `json:"requests"`
	Accepted int64 `json:"accepted"`
	Shed     int64 `json:"shed"`
	// ShedRate = Shed / Requests.
	ShedRate float64 `json:"shed_rate"`
	// ShedByCode breaks the sheds down by the server's shed code
	// (queue_full, inflight_cap, memory_pressure, deadline, ...).
	ShedByCode map[string]int64 `json:"shed_by_code"`

	WallMicros int64 `json:"wall_micros"`
	// AcceptedPerSec is the throughput of the admitted traffic only.
	AcceptedPerSec float64 `json:"accepted_per_sec"`

	// Queue-wait percentiles come from the daemon's own
	// iglrd_queue_wait_seconds histogram (bucket upper bounds, so they are
	// conservative), covering every task a shard actually ran.
	QueueWaitP50Micros int64 `json:"queue_wait_p50_micros"`
	QueueWaitP95Micros int64 `json:"queue_wait_p95_micros"`
	QueueWaitP99Micros int64 `json:"queue_wait_p99_micros"`

	// PressureEvictions counts sessions the janitor parked to disk to get
	// back under the soft watermark during the storm.
	PressureEvictions int64 `json:"pressure_evictions"`
}

// runOverloadBench drives workers concurrent clients, perWorker rounds
// each, against a deliberately undersized daemon. Even workers are cheap
// expr editors; odd workers open ambiguity bombs that pile up live bytes
// and trip the memory governor. Any failure that is not a proper shed
// (429/503 with a code and a retry hint) fails the bench.
func runOverloadBench(workers, perWorker int) (*OverloadBench, error) {
	dir, err := os.MkdirTemp("", "paperbench-overload-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	bench := &OverloadBench{
		Workers:     workers,
		PerWorker:   perWorker,
		Shards:      2,
		QueueDepth:  4,
		MaxInflight: workers / 2,
		ShedByCode:  map[string]int64{},
	}
	d, err := daemon.New(daemon.Config{
		Listen:          "127.0.0.1:0",
		AdminListen:     "127.0.0.1:0",
		Bundled:         []string{"expr", "expr-ambiguous"},
		Persist:         daemon.Persist{Dir: dir},
		Shards:          bench.Shards,
		QueueDepth:      bench.QueueDepth,
		MaxInflight:     bench.MaxInflight,
		DefaultDeadline: daemon.Duration(2 * time.Second),
		MemorySoftBytes: 1 << 20,
		MemoryHardBytes: 24 << 20,
		DefaultTenant:   daemon.Tenant{Budget: incremental.Budget{MaxAlternatives: 2}},
		PressureBudget:  incremental.Budget{MaxAlternatives: 1},
	})
	if err != nil {
		return nil, err
	}
	d.Logf = func(string, ...any) {}
	if err := d.Start(); err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	}()

	// Ambiguity bomb: a long chain of same-precedence operators in the
	// deliberately ambiguous grammar, so each parse carries a dense DAG.
	bomb := "1" + strings.Repeat("+2*3-4/5", 12)

	var (
		accepted atomic.Int64
		requests atomic.Int64
		mu       sync.Mutex
		firstErr error
	)
	shed := func(err error) bool {
		var se *client.StatusError
		if !errors.As(err, &se) || !se.Shed() || se.Code == "" || se.RetryAfter <= 0 {
			return false
		}
		mu.Lock()
		bench.ShedByCode[se.Code]++
		mu.Unlock()
		return true
	}
	// op runs one client call: success and proper sheds both count; any
	// other failure aborts the bench. Returns true on success.
	op := func(err error) bool {
		requests.Add(1)
		if err == nil {
			accepted.Add(1)
			return true
		}
		if !shed(err) {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
		return false
	}

	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := client.New("http://"+d.Addr().String(), client.Options{NoRetry: true})
			lang, text := "expr", "1+2*3"
			if i%2 == 1 {
				lang, text = "expr-ambiguous", bomb
			}
			for r := 0; r < perWorker; r++ {
				s, err := cl.CreateSession(ctx, lang, text, "", false)
				if !op(err) {
					continue
				}
				// A shed edit changed nothing (the codes guarantee it), so
				// the committed text grows only when the edit was admitted.
				curLen := len(text)
				if _, err := cl.Edits(ctx, s.ID, []client.Edit{{Offset: len(text), Insert: "+9"}}); op(err) {
					curLen += 2
				}
				if _, err := cl.Subtree(ctx, s.ID, 0, curLen); err != nil {
					op(err)
				} else {
					op(nil)
				}
				op(cl.Close(ctx, s.ID))
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return nil, fmt.Errorf("non-shed failure under overload: %w", firstErr)
	}

	bench.Requests = requests.Load()
	bench.Accepted = accepted.Load()
	bench.Shed = bench.Requests - bench.Accepted
	if bench.Requests > 0 {
		bench.ShedRate = float64(bench.Shed) / float64(bench.Requests)
	}
	bench.WallMicros = wall.Microseconds()
	if wall > 0 {
		bench.AcceptedPerSec = float64(bench.Accepted) / wall.Seconds()
	}

	mets, err := scrapeDaemonMetrics(d.AdminAddr().String())
	if err != nil {
		return nil, fmt.Errorf("scrape metrics: %w", err)
	}
	bench.PressureEvictions = counterValue(mets, "iglrd_pressure_evictions_total")
	bench.QueueWaitP50Micros = histogramPercentileMicros(mets, "iglrd_queue_wait_seconds", 0.50)
	bench.QueueWaitP95Micros = histogramPercentileMicros(mets, "iglrd_queue_wait_seconds", 0.95)
	bench.QueueWaitP99Micros = histogramPercentileMicros(mets, "iglrd_queue_wait_seconds", 0.99)
	return bench, nil
}

// scrapeDaemonMetrics fetches the admin plane's Prometheus text exposition.
func scrapeDaemonMetrics(host string) (string, error) {
	resp, err := http.Get("http://" + host + "/metrics")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	return string(raw), nil
}

// counterValue extracts one plain counter/gauge sample from the exposition.
func counterValue(mets, name string) int64 {
	for _, line := range strings.Split(mets, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, _ := strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
			return v
		}
	}
	return 0
}

// histogramPercentileMicros estimates the p'th percentile of a cumulative
// Prometheus histogram as the upper bound (in microseconds) of the first
// bucket whose cumulative count reaches p of the total. The +Inf bucket
// reports the last finite bound — an underestimate, flagged by the caller
// comparing against it.
func histogramPercentileMicros(mets, name string, p float64) int64 {
	type bucket struct {
		le  float64
		cum int64
	}
	var (
		buckets []bucket
		total   int64
	)
	for _, line := range strings.Split(mets, "\n") {
		if rest, ok := strings.CutPrefix(line, name+"_bucket{le=\""); ok {
			bound, count, ok := strings.Cut(rest, "\"} ")
			if !ok {
				continue
			}
			cum, err := strconv.ParseInt(strings.TrimSpace(count), 10, 64)
			if err != nil {
				continue
			}
			le, err := strconv.ParseFloat(bound, 64)
			if err != nil { // "+Inf"
				le = -1
			}
			buckets = append(buckets, bucket{le: le, cum: cum})
		} else if rest, ok := strings.CutPrefix(line, name+"_count "); ok {
			total, _ = strconv.ParseInt(strings.TrimSpace(rest), 10, 64)
		}
	}
	if total == 0 || len(buckets) == 0 {
		return 0
	}
	want := int64(p*float64(total-1)) + 1
	lastFinite := float64(0)
	for _, b := range buckets {
		if b.le >= 0 {
			lastFinite = b.le
		}
		if b.cum >= want {
			if b.le < 0 {
				break // +Inf: fall through to the last finite bound
			}
			return int64(b.le * 1e6)
		}
	}
	return int64(lastFinite * 1e6)
}

func formatOverload(b *OverloadBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "overload: %d workers x %d rounds against %d shards (queue %d, inflight cap %d)\n",
		b.Workers, b.PerWorker, b.Shards, b.QueueDepth, b.MaxInflight)
	fmt.Fprintf(&sb, "  %d requests: %d accepted (%.0f/s), %d shed (%.1f%%)\n",
		b.Requests, b.Accepted, b.AcceptedPerSec, b.Shed, 100*b.ShedRate)
	if len(b.ShedByCode) > 0 {
		fmt.Fprintf(&sb, "  shed codes:")
		for code, n := range b.ShedByCode {
			fmt.Fprintf(&sb, " %s=%d", code, n)
		}
		fmt.Fprintln(&sb)
	}
	fmt.Fprintf(&sb, "  queue wait p50<=%s p95<=%s p99<=%s, %d pressure evictions\n",
		time.Duration(b.QueueWaitP50Micros)*time.Microsecond,
		time.Duration(b.QueueWaitP95Micros)*time.Microsecond,
		time.Duration(b.QueueWaitP99Micros)*time.Microsecond,
		b.PressureEvictions)
	return sb.String()
}

// runOverloadOnly is the -overload entry point: the standalone workload,
// table to stdout, jsonPath (when set) gets the machine-readable report.
func runOverloadOnly(workers, perWorker int, jsonPath string) error {
	bench, err := runOverloadBench(workers, perWorker)
	if err != nil {
		return err
	}
	fmt.Print(formatOverload(bench))
	if jsonPath == "" {
		return nil
	}
	out, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(jsonPath, append(out, '\n'), 0o644)
}
