package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	incremental "iglr"
)

// The error-density workload: how much does tier-1 error isolation cost as
// a file accumulates syntax errors? For each density the benchmark seeds
// that many broken statements into a C file, runs a tolerant reparse over a
// committed baseline, and reports the recovery pass alone (baseline parse
// and edits excluded from the timer). The zero-error row is the control:
// the same code path with nothing to isolate.

// ErrorDensityBench is one density's row in the report.
type ErrorDensityBench struct {
	SeededErrors   int   `json:"seeded_errors"`
	Statements     int   `json:"statements"`
	RecoverNsPerOp int64 `json:"recover_ns_per_op"`
	// Diagnostics per recovery pass; equals SeededErrors when every
	// seeded error was isolated into its own region.
	Diagnostics int `json:"diagnostics"`
	// Isolated reports that tier-1 isolation (not replay) handled the file.
	Isolated bool `json:"isolated"`
	// OverheadPct is the cost relative to the zero-error control row.
	OverheadPct float64 `json:"overhead_pct"`
}

// runErrorDensity measures the cost of recovery at 0/1/5/20 seeded errors
// per file over a fixed synthetic C corpus file.
func runErrorDensity() ([]ErrorDensityBench, error) {
	lang := incremental.CSubset()
	const stmts = 200

	var sb strings.Builder
	offsets := make([]int, stmts) // offset of each statement's identifier
	for i := 0; i < stmts; i++ {
		offsets[i] = sb.Len() + len("int ")
		fmt.Fprintf(&sb, "int v%d; ", i)
	}
	src := sb.String()

	var rows []ErrorDensityBench
	for _, density := range []int{0, 1, 5, 20} {
		// Spread the broken statements evenly across the file. Replacing
		// the identifier's first byte with '(' keeps every offset stable.
		var edits []int
		for i := 0; i < density; i++ {
			edits = append(edits, offsets[(i*stmts)/density+stmts/(2*density)])
		}

		row := ErrorDensityBench{SeededErrors: density, Statements: stmts}
		// Hand-rolled timing: the setup (baseline parse + edits) dwarfs the
		// measured recovery pass, so a fixed iteration count beats the
		// adaptive testing.Benchmark loop. Best-of-N for a stable floor.
		const iters = 5
		best := int64(-1)
		for i := 0; i < iters; i++ {
			s := incremental.NewSession(lang, src)
			if out := s.Do(context.Background()); out.Err != nil {
				return nil, out.Err
			}
			for _, off := range edits {
				s.Edit(off, 1, "(")
			}
			start := time.Now()
			out := s.Do(context.Background(), incremental.Tolerant())
			elapsed := time.Since(start).Nanoseconds()
			if out.Err != nil {
				return nil, out.Err
			}
			if density > 0 && !out.Isolated {
				return nil, fmt.Errorf("density %d: isolation did not engage", density)
			}
			row.Isolated = out.Isolated
			row.Diagnostics = len(s.Diagnostics())
			if best < 0 || elapsed < best {
				best = elapsed
			}
		}
		row.RecoverNsPerOp = best
		if base := rows; len(base) > 0 && base[0].RecoverNsPerOp > 0 {
			row.OverheadPct = 100 * float64(row.RecoverNsPerOp-base[0].RecoverNsPerOp) /
				float64(base[0].RecoverNsPerOp)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
