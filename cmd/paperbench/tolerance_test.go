package main

import "testing"

// A correctness smoke over the error-density workload: every density row
// must isolate all of its seeded errors.
func TestErrorDensityWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed")
	}
	rows, err := runErrorDensity()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Diagnostics != r.SeededErrors {
			t.Fatalf("density %d: diagnostics = %d", r.SeededErrors, r.Diagnostics)
		}
		if (r.SeededErrors > 0) != r.Isolated {
			t.Fatalf("density %d: isolated = %v", r.SeededErrors, r.Isolated)
		}
	}
}
