package incremental

import (
	"fmt"
	"io"
	"os"
	"sort"

	"iglr/internal/langcodec"
	"iglr/internal/langreg"
)

// Compiled language artifacts: the public face of internal/langcodec.
// SaveCompiled/LoadCompiled let deployments ship languages as .cclang files
// (produced by cmd/langc or programmatically) and start parsing without
// paying LR construction or lexer subset construction; the same format
// backs the transparent disk layer of the definition cache (diskcache.go).

// CompiledExt is the conventional artifact file extension.
const CompiledExt = langcodec.FileExt

// SaveCompiled writes the language as a compiled artifact to w. Semantic
// configurations are code, not data — they are not serialized; reattach one
// with WithSemantics after loading.
func (l *Language) SaveCompiled(w io.Writer) error {
	_, err := w.Write(langcodec.Encode(l.def))
	return err
}

// SaveCompiledFile writes the language as a compiled artifact file.
func (l *Language) SaveCompiledFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := l.SaveCompiled(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCompiled reconstructs a ready-to-parse language from artifact bytes.
// Unlike the transparent disk cache, an explicitly loaded artifact that is
// corrupt or version-mismatched is an error — the caller asked for this
// specific file and there is no source definition to fall back to.
func LoadCompiled(data []byte) (*Language, error) {
	def, err := langcodec.Decode(data)
	if err != nil {
		return nil, err
	}
	return &Language{def: def}, nil
}

// LoadCompiledFile is LoadCompiled over a file.
func LoadCompiledFile(path string) (*Language, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	l, err := LoadCompiled(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return l, nil
}

// BundledLanguageNames lists the names accepted by BundledLanguage, sorted.
func BundledLanguageNames() []string {
	entries := langreg.All()
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name
	}
	sort.Strings(names)
	return names
}

// BundledLanguage returns the bundled language with the given name (see
// BundledLanguageNames), or false. Languages with preconfigured semantics
// ("c-subset", "cpp-subset") come with them attached, exactly as their
// dedicated constructors return them.
func BundledLanguage(name string) (*Language, bool) {
	switch name {
	case "c-subset":
		return CSubset(), true
	case "cpp-subset":
		return CPPSubset(), true
	}
	e, ok := langreg.Find(name)
	if !ok {
		return nil, false
	}
	return &Language{def: e.Lang()}, true
}
