package incremental_test

// Concurrency contract tests (run with -race): one compiled *Language is
// shared by many Sessions on different goroutines; Sessions themselves are
// single-goroutine. Plus the context-aware parse path and the compiled-
// language cache.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	incremental "iglr"
	"iglr/internal/corpus"
)

// sharedLangCases lists every bundled language with a source that parses
// and an edit that keeps it parsing.
func sharedLangCases() []struct {
	name   string
	lang   *incremental.Language
	src    string
	oldTxt string
	newTxt string
} {
	return []struct {
		name   string
		lang   *incremental.Language
		src    string
		oldTxt string
		newTxt string
	}{
		{"expr", incremental.ExprLanguage(), "1 + 2 * x", "2", "9"},
		{"ambig-expr", incremental.AmbiguousExprLanguage(), "a+b*c", "b", "d"},
		{"csub", incremental.CSubset(), "typedef int t; t(a); int b; b = b + 1;", "1", "2"},
		{"cppsub", incremental.CPPSubset(), "typedef int a; a(b); c(q);", "q", "w"},
		{"javasub", incremental.JavaSubset(), "class A { int[] xs; void m() { xs[0] = 1; } }", "1", "2"},
		{"lispsub", incremental.LispSubset(), "(define (f x) (* x x)) (f 3)", "3", "9"},
		{"mod2sub", incremental.Modula2Subset(), "MODULE M;\nVAR x : INTEGER;\nBEGIN\n  x := 1\nEND M.\n", "1", "2"},
		{"scannerless", incremental.ScannerlessLanguage(), "if(cond)x=1;", "1", "2"},
		{"lr2", incremental.LR2Language(), "x z c", "c", "c"},
	}
}

// TestConcurrentSessionsSharedLanguage runs ≥8 concurrent sessions per
// bundled language against one shared *Language, each performing the full
// pipeline (parse, edit, incremental reparse, semantic resolution). Any
// hidden mutation of the compiled language shows up under -race.
func TestConcurrentSessionsSharedLanguage(t *testing.T) {
	const goroutines = 8
	for _, tc := range sharedLangCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for iter := 0; iter < 3; iter++ {
						s := incremental.NewSession(tc.lang, tc.src)
						if _, err := s.Parse(); err != nil {
							errs <- err
							return
						}
						s.Resolve()
						off := strings.Index(s.Text(), tc.oldTxt)
						s.Edit(off, len(tc.oldTxt), tc.newTxt)
						if _, err := s.Parse(); err != nil {
							errs <- err
							return
						}
						s.Resolve()
					}
				}()
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
		})
	}
}

// TestWithSemanticsDoesNotMutateReceiver pins the immutability fix: the
// original language keeps its configuration while the derived one gets the
// override, even when both are used concurrently.
func TestWithSemanticsDoesNotMutateReceiver(t *testing.T) {
	base := incremental.CSubset() // semantics preconfigured
	derived := base.WithSemantics(incremental.SemanticsConfig{
		IsScope:              func(n *incremental.Node) bool { return false },
		TypedefName:          func(n *incremental.Node) (string, bool) { return "", false },
		DeclaredName:         func(n *incremental.Node) (string, bool) { return "", false },
		IsDeclInterpretation: func(n *incremental.Node) bool { return false },
	})
	src := "typedef int t; t(a);"

	s := incremental.NewSession(base, src)
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	if res := s.Resolve(); res.ResolvedDecl != 1 {
		t.Fatalf("base language lost its semantics config: %+v", res)
	}

	d := incremental.NewSession(derived, src)
	if _, err := d.Parse(); err != nil {
		t.Fatal(err)
	}
	if res := d.Resolve(); res.Resolved() != 0 {
		t.Fatalf("derived language should use the no-op override: %+v", res)
	}
}

// TestParseContextPreCancelled: a done context aborts before any work, the
// committed tree survives, and the session remains usable.
func TestParseContextPreCancelled(t *testing.T) {
	lang := incremental.CSubset()
	s := incremental.NewSession(lang, "int a; int b;")
	tree, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Edit(4, 1, "x")
	if _, err := s.ParseContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Tree() != tree {
		t.Fatal("cancelled parse must not commit")
	}
	// The same session retries cleanly without the context.
	if tree2, err := s.Parse(); err != nil || tree2.Yield() != "intx;intb;" {
		t.Fatalf("retry: tree=%v err=%v", tree2, err)
	}
}

// TestParseContextCancelMidParse cancels while a large parse is running.
// Whichever side wins the race, the session must stay coherent: either the
// parse finished normally, or it returned the cancellation error without
// committing.
func TestParseContextCancelMidParse(t *testing.T) {
	src, _ := corpus.Generate(corpus.Spec{Name: "cancel", Lines: 20000, Lang: "c", AmbiguousPerKLoC: 5, Seed: 11})
	lang := incremental.CSubset()
	s := incremental.NewSession(lang, src)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { cancel(); close(done) }()
	tree, err := s.ParseContext(ctx)
	<-done
	if err != nil {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if s.Tree() != nil {
			t.Fatal("cancelled first parse must leave no committed tree")
		}
		if _, err := s.Parse(); err != nil {
			t.Fatalf("retry after cancellation: %v", err)
		}
	} else if tree == nil {
		t.Fatal("successful parse returned nil tree")
	}
}

// TestParseContextDeterministicParser covers the cancellation path of the
// deterministic state-matching parser.
func TestParseContextDeterministicParser(t *testing.T) {
	lang := incremental.Modula2Subset()
	s := incremental.NewSession(lang, "MODULE M;\nVAR x : INTEGER;\nBEGIN\n  x := 1\nEND M.\n")
	if err := s.UseDeterministic(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ParseContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := s.ParseContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestLanguageCache: identical definitions share one compiled language,
// including under concurrent first definition; WithoutCache opts out.
func TestLanguageCache(t *testing.T) {
	incremental.ResetLanguageCache()
	def := incremental.LanguageDef{
		Name:    "cache-lists",
		Grammar: "%token x ';'\n%start L\nL : Item* ;\nItem : x ';' ;",
		Lexer: []incremental.LexRule{
			{Name: "WS", Pattern: `[ \t\n]+`, Skip: true},
			{Name: "X", Pattern: `x`},
			{Name: "SEMI", Pattern: `;`},
		},
		TokenSyms: map[string]string{"X": "x", "SEMI": "';'"},
	}

	const goroutines = 8
	var wg sync.WaitGroup
	langs := make([]*incremental.Language, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			l, err := incremental.DefineLanguage(def)
			if err != nil {
				t.Error(err)
				return
			}
			langs[g] = l
		}(g)
	}
	wg.Wait()
	st := incremental.LanguageCacheStats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (concurrent builds must deduplicate)", st.Entries)
	}
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", st.Hits, st.Misses, goroutines-1)
	}
	for _, l := range langs {
		s := incremental.NewSession(l, "x; x;")
		if _, err := s.Parse(); err != nil {
			t.Fatal(err)
		}
	}

	// A definition differing in any compiled field is a new entry…
	if _, err := incremental.DefineLanguage(def, incremental.WithMethod(incremental.LR1)); err != nil {
		t.Fatal(err)
	}
	if st := incremental.LanguageCacheStats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 after method change", st.Entries)
	}
	// …while WithoutCache leaves the cache untouched.
	if _, err := incremental.DefineLanguage(def, incremental.WithoutCache()); err != nil {
		t.Fatal(err)
	}
	if st := incremental.LanguageCacheStats(); st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 after WithoutCache", st.Entries)
	}
}

// TestDefineGrammarOptions exercises the option-first spelling end to end.
func TestDefineGrammarOptions(t *testing.T) {
	lang, err := incremental.DefineGrammar(
		"%token x ';'\n%start L\nL : Item* ;\nItem : x ';' ;",
		incremental.WithName("opt-lists"),
		incremental.WithLexer(
			incremental.LexRule{Name: "WS", Pattern: `[ \t\n]+`, Skip: true},
			incremental.LexRule{Name: "X", Pattern: `x`},
			incremental.LexRule{Name: "SEMI", Pattern: `;`},
		),
		incremental.WithTokenSyms(map[string]string{"X": "x", "SEMI": "';'"}),
		incremental.WithMethod(incremental.LR1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if lang.Name() != "opt-lists" {
		t.Fatalf("name = %q", lang.Name())
	}
	s := incremental.NewSession(lang, "x; x; x;")
	tree, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Yield() != "x;x;x;" {
		t.Fatalf("yield = %q", tree.Yield())
	}
}

// TestDefinitionErrorTypes: rejected definitions surface as structured,
// errors.Is/As-compatible values.
func TestDefinitionErrorTypes(t *testing.T) {
	_, err := incremental.DefineGrammar(
		"%start S\nS : Undefined ;",
		incremental.WithName("broken"),
		incremental.WithLexer(incremental.LexRule{Name: "X", Pattern: "x"}),
		incremental.WithoutCache(),
	)
	if err == nil {
		t.Fatal("invalid grammar must be rejected")
	}
	if !errors.Is(err, incremental.ErrInvalidDefinition) {
		t.Fatalf("errors.Is(ErrInvalidDefinition) = false for %v", err)
	}
	var de *incremental.DefinitionError
	if !errors.As(err, &de) {
		t.Fatalf("errors.As(*DefinitionError) = false for %v", err)
	}
	if de.Language != "broken" || de.Stage != "grammar" {
		t.Fatalf("DefinitionError = %+v", de)
	}
	if !strings.Contains(de.Production, "S → Undefined") {
		t.Fatalf("offending production not reported: %+v", de)
	}

	// A bad token mapping is a "tokens"-stage error.
	_, err = incremental.DefineGrammar(
		"%token x\n%start S\nS : x ;",
		incremental.WithLexer(incremental.LexRule{Name: "X", Pattern: "x"}),
		incremental.WithTokenSyms(map[string]string{"X": "nope"}),
		incremental.WithoutCache(),
	)
	if !errors.As(err, &de) || de.Stage != "tokens" {
		t.Fatalf("want tokens-stage DefinitionError, got %v", err)
	}
}

// TestParseErrorStructure: syntax errors expose position and expectations
// through the exported type.
func TestParseErrorStructure(t *testing.T) {
	s := incremental.NewSession(incremental.ExprLanguage(), "1 +\n+ 2")
	_, err := s.Parse()
	if err == nil {
		t.Fatal("want syntax error")
	}
	var pe *incremental.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("errors.As(*ParseError) = false for %v", err)
	}
	if pe.Line != 2 || pe.Col != 1 {
		t.Fatalf("position = %d:%d, want 2:1", pe.Line, pe.Col)
	}
}
