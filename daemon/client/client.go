// Package client is a small HTTP client for the iglrd data plane that
// understands its load-shedding protocol: 429 and 503 responses carry a
// Retry-After header and a structured JSON body ({error, code,
// retry_after_ms}), and the client retries them with jittered exponential
// backoff, honoring the server's hint as the floor for each wait.
//
// Retry safety is decided by the shed code, not the status: admission-gate
// sheds (queue_full, inflight_cap, memory_pressure, quota, shutdown,
// deadline, stalled) mean the daemon acted on nothing, so they are retried
// for every method. The one exception is "parse_pending" — the edit batch
// was accepted and is durable, only its reparse failed — which is never
// auto-retried for a mutating request (re-sending would apply it twice);
// likewise sheds without a code, and transport-level errors, where the
// server may have acted without answering, are retried only for
// idempotent methods.
//
// The chaos/overload harness and paperbench drive the daemon through this
// package, so its backoff behavior is itself under test.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// StatusError is a non-2xx response: the status, the decoded error body
// when the server sent one, and the shed metadata when it was a shed.
type StatusError struct {
	Status int
	// Msg is the server's error message (the body's "error" field, or the
	// raw body when it was not the structured form).
	Msg string
	// Code is the shed code ("queue_full", "memory_pressure", ...) for
	// 429/503 shed responses, "" otherwise.
	Code string
	// RetryAfter is the server's retry hint (0 when none was sent).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("daemon/client: HTTP %d (%s): %s", e.Status, e.Code, e.Msg)
	}
	return fmt.Sprintf("daemon/client: HTTP %d: %s", e.Status, e.Msg)
}

// Shed reports whether the response was a load-shedding one — worth
// retrying after its hint.
func (e *StatusError) Shed() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// retrySafe reports whether replaying the request cannot double-apply it:
// the shed carries a code, and that code is not "parse_pending" (whose
// edit batch is already durable server-side).
func (e *StatusError) retrySafe() bool {
	return e.Code != "" && e.Code != "parse_pending"
}

// Options tunes a Client. The zero value gets sensible defaults.
type Options struct {
	// Timeout bounds each individual HTTP attempt (default 30s).
	Timeout time.Duration
	// MaxRetries is how many times a shed or retriable-transport attempt
	// is retried (default 4; 0 relies on the default — use NoRetry to
	// disable retries).
	MaxRetries int
	// NoRetry disables retries entirely: every shed surfaces to the
	// caller. Benchmarks measuring shed rate use this.
	NoRetry bool
	// BaseBackoff is the first retry's backoff before jitter (default
	// 100ms); each further retry doubles it, capped at MaxBackoff
	// (default 5s). A server Retry-After above the computed backoff
	// replaces it.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// HTTPClient overrides the underlying client (shared transports in
	// tests). Its own Timeout is left untouched; per-attempt timeouts come
	// from Options.Timeout via context.
	HTTPClient *http.Client
}

// Client talks to one iglrd data plane.
type Client struct {
	base string
	opt  Options
	hc   *http.Client

	mu  sync.Mutex
	rng *rand.Rand
}

// New creates a client for the daemon's data plane at base
// (e.g. "http://127.0.0.1:8520").
func New(base string, opt Options) *Client {
	if opt.Timeout <= 0 {
		opt.Timeout = 30 * time.Second
	}
	if opt.MaxRetries <= 0 {
		opt.MaxRetries = 4
	}
	if opt.BaseBackoff <= 0 {
		opt.BaseBackoff = 100 * time.Millisecond
	}
	if opt.MaxBackoff <= 0 {
		opt.MaxBackoff = 5 * time.Second
	}
	hc := opt.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{
		base: base,
		opt:  opt,
		hc:   hc,
		rng:  rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// Session is a server-side editing session handle.
type Session struct {
	ID       string  `json:"id"`
	Language string  `json:"language"`
	Tenant   string  `json:"tenant,omitempty"`
	Tolerant bool    `json:"tolerant,omitempty"`
	Outcome  Outcome `json:"outcome"`
}

// Outcome mirrors the daemon's parse-outcome wire form.
type Outcome struct {
	Clean        bool   `json:"clean"`
	Isolated     bool   `json:"isolated,omitempty"`
	ErrorRegions int    `json:"error_regions,omitempty"`
	Degraded     bool   `json:"degraded,omitempty"`
	BudgetTrip   bool   `json:"budget_trip,omitempty"`
	Error        string `json:"error,omitempty"`
	ParseMicros  int64  `json:"parse_micros"`
	TextLen      int    `json:"text_len"`
}

// Edit is one text edit in an edit batch.
type Edit struct {
	Offset int    `json:"offset"`
	Remove int    `json:"remove"`
	Insert string `json:"insert"`
}

// CreateSession opens a session and runs its first parse.
func (c *Client) CreateSession(ctx context.Context, language, text, tenant string, tolerant bool) (*Session, error) {
	var s Session
	err := c.do(ctx, http.MethodPost, "/sessions", map[string]any{
		"language": language, "text": text, "tenant": tenant, "tolerant": tolerant,
	}, &s)
	if err != nil {
		return nil, err
	}
	return &s, nil
}

// Edits applies an edit batch to a session and reparses.
func (c *Client) Edits(ctx context.Context, id string, edits []Edit) (*Outcome, error) {
	var o Outcome
	err := c.do(ctx, http.MethodPost, "/sessions/"+id+"/edits", map[string]any{"edits": edits}, &o)
	if err != nil {
		return nil, err
	}
	return &o, nil
}

// Subtree fetches the committed subtree covering [offset, offset+length).
func (c *Client) Subtree(ctx context.Context, id string, offset, length int) (map[string]any, error) {
	var out map[string]any
	q := fmt.Sprintf("/sessions/%s/subtree?offset=%d&length=%d", id, offset, length)
	if err := c.do(ctx, http.MethodGet, q, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Diagnostics fetches a session's current diagnostics.
func (c *Client) Diagnostics(ctx context.Context, id string) (map[string]any, error) {
	var out map[string]any
	if err := c.do(ctx, http.MethodGet, "/sessions/"+id+"/diagnostics", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Close deletes a session.
func (c *Client) Close(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/sessions/"+id, nil, nil)
}

// do runs one request with retry. Coded shed responses other than
// parse_pending (the daemon guarantees it acted on nothing) retry for
// every method; uncoded sheds and transport errors retry only for
// idempotent methods, since the server may have acted.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	idempotent := method == http.MethodGet || method == http.MethodDelete || method == http.MethodHead
	var lastErr error
	retries := c.opt.MaxRetries
	if c.opt.NoRetry {
		retries = 0
	}
	for attempt := 0; ; attempt++ {
		err := c.attempt(ctx, method, path, payload, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if attempt >= retries {
			return lastErr
		}
		var se *StatusError
		retriable := false
		wait := time.Duration(0)
		if ok := asStatusError(err, &se); ok {
			if !se.Shed() {
				return lastErr // a real 4xx/5xx answer, not backpressure
			}
			if !se.retrySafe() && !idempotent {
				return lastErr // the server may already hold this mutation
			}
			retriable = true
			wait = se.RetryAfter
		} else if idempotent && ctx.Err() == nil {
			retriable = true // transport error; safe to replay a GET/DELETE
		}
		if !retriable {
			return lastErr
		}
		if b := c.backoff(attempt); b > wait {
			wait = b
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
	}
}

func asStatusError(err error, out **StatusError) bool {
	se, ok := err.(*StatusError)
	if ok {
		*out = se
	}
	return ok
}

// backoff computes the attempt'th jittered exponential backoff: the base
// doubles each attempt (capped), then full jitter in [base/2, base).
func (c *Client) backoff(attempt int) time.Duration {
	b := c.opt.BaseBackoff << uint(attempt)
	if b > c.opt.MaxBackoff || b <= 0 {
		b = c.opt.MaxBackoff
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(b)/2 + 1))
	c.mu.Unlock()
	return b/2 + j
}

func (c *Client) attempt(ctx context.Context, method, path string, payload []byte, out any) error {
	actx, cancel := context.WithTimeout(ctx, c.opt.Timeout)
	defer cancel()
	var rd io.Reader
	if payload != nil {
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(actx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil || len(raw) == 0 {
			return nil
		}
		return json.Unmarshal(raw, out)
	}
	se := &StatusError{Status: resp.StatusCode, Msg: string(raw)}
	var body struct {
		Error        string `json:"error"`
		Code         string `json:"code"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if json.Unmarshal(raw, &body) == nil && body.Error != "" {
		se.Msg, se.Code = body.Error, body.Code
		se.RetryAfter = time.Duration(body.RetryAfterMS) * time.Millisecond
	}
	if se.RetryAfter == 0 {
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
			se.RetryAfter = time.Duration(s) * time.Second
		}
	}
	return se
}
