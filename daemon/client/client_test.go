package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func shed(w http.ResponseWriter, status int, code string, retryMS int64) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": "overloaded", "code": code, "retry_after_ms": retryMS,
	})
}

func TestRetriesShedThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			shed(w, http.StatusTooManyRequests, "queue_full", 5)
			return
		}
		json.NewEncoder(w).Encode(Session{ID: "s1", Language: "expr"})
	}))
	defer srv.Close()

	c := New(srv.URL, Options{BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond})
	s, err := c.CreateSession(context.Background(), "expr", "a+b", "", false)
	if err != nil {
		t.Fatalf("CreateSession: %v", err)
	}
	if s.ID != "s1" {
		t.Fatalf("got session %q, want s1", s.ID)
	}
	if n := hits.Load(); n != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 sheds + success)", n)
	}
}

func TestShedExhaustsRetriesWithStatusError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shed(w, http.StatusServiceUnavailable, "memory_pressure", 10)
	}))
	defer srv.Close()

	c := New(srv.URL, Options{MaxRetries: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	_, err := c.CreateSession(context.Background(), "expr", "a", "", false)
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want *StatusError, got %T: %v", err, err)
	}
	if se.Status != http.StatusServiceUnavailable || se.Code != "memory_pressure" {
		t.Fatalf("got status=%d code=%q", se.Status, se.Code)
	}
	if !se.Shed() {
		t.Fatal("503 with shed body should report Shed()")
	}
	if se.RetryAfter != 10*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 10ms (body hint preferred over header)", se.RetryAfter)
	}
}

func TestNonShedErrorNotRetried(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"no such session"}`, http.StatusNotFound)
	}))
	defer srv.Close()

	c := New(srv.URL, Options{BaseBackoff: time.Millisecond})
	_, err := c.Diagnostics(context.Background(), "nope")
	var se *StatusError
	if !errors.As(err, &se) || se.Status != http.StatusNotFound {
		t.Fatalf("want 404 StatusError, got %v", err)
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("404 was retried (%d hits); terminal errors must not be", n)
	}
}

func TestRetryAfterHeaderFallback(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "2")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("plain overload"))
	}))
	defer srv.Close()

	c := New(srv.URL, Options{NoRetry: true})
	err := c.Close(context.Background(), "s1")
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want *StatusError, got %v", err)
	}
	if se.RetryAfter != 2*time.Second {
		t.Fatalf("RetryAfter = %v, want 2s from header", se.RetryAfter)
	}
	if se.Code != "" || se.Msg != "plain overload" {
		t.Fatalf("unstructured body mis-parsed: code=%q msg=%q", se.Code, se.Msg)
	}
}

func TestNoRetryDisablesRetries(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		shed(w, http.StatusTooManyRequests, "queue_full", 1)
	}))
	defer srv.Close()

	c := New(srv.URL, Options{NoRetry: true})
	if _, err := c.CreateSession(context.Background(), "expr", "a", "", false); err == nil {
		t.Fatal("want shed error with NoRetry")
	}
	if n := hits.Load(); n != 1 {
		t.Fatalf("NoRetry client sent %d requests, want 1", n)
	}
}

func TestTransportErrorRetriedOnlyWhenIdempotent(t *testing.T) {
	// A server that drops connections: every attempt is a transport error.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, ok := w.(http.Hijacker)
		if !ok {
			t.Fatal("no hijacker")
		}
		conn, _, _ := hj.Hijack()
		conn.Close()
	}))
	defer srv.Close()

	var attempts atomic.Int64
	hc := &http.Client{Transport: countingTransport{n: &attempts}}
	c := New(srv.URL, Options{MaxRetries: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, HTTPClient: hc})

	// POST: the server may have acted, so a transport error is terminal.
	if _, err := c.CreateSession(context.Background(), "expr", "a", "", false); err == nil {
		t.Fatal("want transport error")
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("POST retried after transport error (%d attempts), must not be", n)
	}

	// DELETE: idempotent, retried up to MaxRetries.
	attempts.Store(0)
	if err := c.Close(context.Background(), "s1"); err == nil {
		t.Fatal("want transport error")
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("DELETE attempts = %d, want 3 (1 + 2 retries)", n)
	}
}

type countingTransport struct{ n *atomic.Int64 }

func (t countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	t.n.Add(1)
	return http.DefaultTransport.RoundTrip(r)
}

func TestContextCancelStopsBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shed(w, http.StatusServiceUnavailable, "memory_pressure", 60_000)
	}))
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	c := New(srv.URL, Options{MaxRetries: 5})
	start := time.Now()
	_, err := c.CreateSession(ctx, "expr", "a", "", false)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded while waiting out Retry-After, got %v", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancel took %v; the 60s Retry-After was not interruptible", el)
	}
}

func TestBackoffHonorsRetryAfterFloorAndCap(t *testing.T) {
	c := New("http://x", Options{BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond})
	for attempt := 0; attempt < 10; attempt++ {
		b := c.backoff(attempt)
		if b <= 0 || b > c.opt.MaxBackoff {
			t.Fatalf("backoff(%d) = %v out of (0, %v]", attempt, b, c.opt.MaxBackoff)
		}
	}
	// Deep attempts must saturate at the cap, not overflow.
	if b := c.backoff(62); b <= 0 || b > c.opt.MaxBackoff {
		t.Fatalf("backoff(62) = %v; overflow not clamped", b)
	}
}
