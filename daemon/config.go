// Package daemon promotes the incremental-analysis library into a
// long-lived parse service: concurrent editing sessions over HTTP/JSON,
// sharded across a fixed pool of worker goroutines, governed by per-tenant
// resource quotas, with a localhost admin plane for zero-downtime config
// reloads and Prometheus-style metrics. Command iglrd is the thin binary
// wrapper; everything testable lives here.
//
// The architecture follows the Caddy admin-API model: one versioned
// Config struct owns every knob (listeners, language artifact
// directories, shard count, tenant budgets, the batch-parse
// engine.Policy), and a reload builds a complete new snapshot — compiled
// language set included — then swaps it in atomically. In-flight requests
// finish against the snapshot they started with; new sessions see the new
// one; live sessions keep the budget and language they were created with.
// A reload that fails to build (missing artifact dir, corrupt artifact,
// duplicate language names) leaves the running config untouched.
package daemon

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	incremental "iglr"
	"iglr/engine"
)

// Duration is a time.Duration that marshals to/from JSON as a string
// ("90s", "5m") and also accepts integer nanoseconds, so config files
// stay human-writable.
type Duration time.Duration

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts both "5m" strings and integer nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	switch x := v.(type) {
	case float64:
		*d = Duration(time.Duration(x))
		return nil
	case string:
		dur, err := time.ParseDuration(x)
		if err != nil {
			return fmt.Errorf("daemon: bad duration %q: %w", x, err)
		}
		*d = Duration(dur)
		return nil
	default:
		return fmt.Errorf("daemon: bad duration %v", v)
	}
}

// Tenant is one tenant's resource quota. Sessions name their tenant at
// creation; requests without one use the config's default tenant.
type Tenant struct {
	// Budget bounds every parse any of the tenant's sessions runs (see
	// incremental.Budget; the zero value is unlimited). Applied to
	// sessions at creation — a reload changes the budget for sessions
	// created afterwards, never for live ones.
	Budget incremental.Budget `json:"budget,omitempty"`
	// MaxSessions caps the tenant's concurrently open sessions
	// (0 = unlimited). Enforced at session creation with 429.
	MaxSessions int `json:"max_sessions,omitempty"`
}

// Persist configures session durability. When Dir is set every session is
// continuously persisted: accepted edit batches are appended (and fsynced)
// to a per-session write-ahead journal before they are applied, the
// journal is periodically rolled into a snapshot artifact, idle evictions
// park the session on disk instead of destroying it, and a restart —
// graceful or kill -9 — transparently restores a session the next time it
// is touched. Unusable artifacts (corrupt, truncated, version-skewed)
// degrade to a 404 and the client re-creates the session from source; the
// daemon never serves a wrong tree and never fails to start because of
// persistence state.
type Persist struct {
	// Dir is the durability directory ("" disables persistence). Fixed at
	// startup, like Shards: a reload keeps the running store.
	Dir string `json:"dir,omitempty"`
	// JournalMaxBytes rolls a session's journal into a fresh snapshot once
	// it grows past this size (default 256 KiB).
	JournalMaxBytes int64 `json:"journal_max_bytes,omitempty"`
}

// Config is the daemon's complete, versioned configuration. It marshals
// to/from JSON; the admin plane serves the active config at GET /config
// and accepts a replacement at POST /config (or re-reads the config file
// on POST /reload).
type Config struct {
	// Listen is the data-plane address (default "127.0.0.1:8520").
	// Changing it requires a restart.
	Listen string `json:"listen,omitempty"`
	// AdminListen is the admin-plane address (default "127.0.0.1:8521").
	// Keep it loopback: the admin plane can reconfigure the daemon.
	// Changing it requires a restart.
	AdminListen string `json:"admin_listen,omitempty"`
	// Shards is the size of the fixed session-worker pool (default
	// runtime.GOMAXPROCS(0)). Sessions are routed to a shard by session-ID
	// hash and every operation on a session runs on its shard's goroutine,
	// so sessions need no locks. Fixed at startup: a reload with a
	// different value keeps the running pool (the active config reports
	// the effective count).
	Shards int `json:"shards,omitempty"`
	// LanguageDirs are directories of precompiled *.cclang artifacts
	// (see engine.LoadLanguages and cmd/langc). Reloadable: a reload
	// re-reads every directory and serves the new language set.
	LanguageDirs []string `json:"language_dirs,omitempty"`
	// Bundled names compiled-in languages to serve, or ["*"] for all of
	// them. Reloadable.
	Bundled []string `json:"bundled,omitempty"`
	// SessionTTL evicts sessions idle longer than this (0 = never).
	// Reloadable; the janitor reads the active value each sweep.
	SessionTTL Duration `json:"session_ttl,omitempty"`
	// MaxSessions caps open sessions daemon-wide (0 = unlimited).
	MaxSessions int `json:"max_sessions,omitempty"`
	// DefaultTenant is the quota for requests that name no tenant.
	DefaultTenant Tenant `json:"default_tenant,omitempty"`
	// Tenants maps tenant names to quotas. A request naming an unlisted
	// tenant gets the default quota.
	Tenants map[string]Tenant `json:"tenants,omitempty"`
	// Batch is the engine policy for POST /parse one-shot batches —
	// Policy.Workers bounds that pool independently of Shards.
	Batch engine.Policy `json:"batch,omitempty"`
	// Persist enables crash-safe session durability (see Persist). Fixed
	// at startup.
	Persist Persist `json:"persist,omitempty"`

	// MemorySoftBytes is the governor's soft watermark over the accounted
	// live bytes of all sessions (0 = none). At or above it the daemon is
	// under pressure: the janitor parks idle sessions to disk early and
	// new sessions are admitted under PressureBudget. Reloadable.
	MemorySoftBytes int64 `json:"memory_soft_bytes,omitempty"`
	// MemoryHardBytes is the hard watermark (0 = none): the accounting can
	// never pass it. Growth that would — new sessions, restores, a parse
	// that outgrew the headroom — is refused with 503 or sheds the session
	// to disk. Reloadable; must be >= MemorySoftBytes when both are set.
	MemoryHardBytes int64 `json:"memory_hard_bytes,omitempty"`
	// QueueDepth bounds each shard's task queue (default 1024). A full
	// queue sheds data-plane requests with 429 + Retry-After instead of
	// queueing unboundedly behind a slow parse. Fixed at startup, like
	// Shards.
	QueueDepth int `json:"queue_depth,omitempty"`
	// MaxInflight caps concurrently executing data-plane requests
	// (0 = unlimited). Excess requests shed with 429 + Retry-After before
	// touching any session. Reloadable.
	MaxInflight int `json:"max_inflight,omitempty"`
	// StallTimeout arms the shard watchdog (0 = disabled): a parse running
	// longer than this is cancelled via its context and the session is
	// closed as poisoned — the livelock extension of the panic-recovery
	// contract. Reloadable.
	StallTimeout Duration `json:"stall_timeout,omitempty"`
	// DefaultDeadline is applied to data-plane requests that carry no
	// deadline of their own (0 = none); queued work whose deadline expired
	// is dropped without parsing. Reloadable.
	DefaultDeadline Duration `json:"default_deadline,omitempty"`
	// PressureBudget, when non-zero, replaces the tenant budget for
	// sessions created while the daemon is under memory pressure, so new
	// admissions run degraded instead of deepening the overload.
	// Reloadable.
	PressureBudget incremental.Budget `json:"pressure_budget,omitempty"`
}

// withDefaults returns a copy of c with unset knobs resolved.
func (c Config) withDefaults() Config {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:8520"
	}
	if c.AdminListen == "" {
		c.AdminListen = "127.0.0.1:8521"
	}
	if c.Shards < 1 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 1024
	}
	return c
}

// snapshot is one immutable generation of daemon state: the config plus
// everything compiled from it. Handlers load the current snapshot once per
// request, so a concurrent reload never changes the rules mid-request.
type snapshot struct {
	version int64
	cfg     Config
	langs   map[string]*incremental.Language
}

// tenant resolves a tenant name against this snapshot.
func (sn *snapshot) tenant(name string) Tenant {
	if name != "" {
		if t, ok := sn.cfg.Tenants[name]; ok {
			return t
		}
	}
	return sn.cfg.DefaultTenant
}

// languageNames returns the served language names, sorted.
func (sn *snapshot) languageNames() []string {
	names := make([]string, 0, len(sn.langs))
	for name := range sn.langs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// buildSnapshot compiles a config into a serving snapshot: defaults
// resolved, every bundled language and artifact directory loaded. Any
// failure (missing dir, corrupt artifact, duplicate language name) fails
// the whole build — a daemon never starts or reloads half-configured.
func buildSnapshot(cfg Config, version int64) (*snapshot, error) {
	cfg = cfg.withDefaults()
	if cfg.MemorySoftBytes > 0 && cfg.MemoryHardBytes > 0 &&
		cfg.MemorySoftBytes > cfg.MemoryHardBytes {
		return nil, fmt.Errorf("daemon: memory_soft_bytes (%d) exceeds memory_hard_bytes (%d)",
			cfg.MemorySoftBytes, cfg.MemoryHardBytes)
	}
	langs := map[string]*incremental.Language{}
	for _, name := range cfg.Bundled {
		if name == "*" {
			for _, n := range incremental.BundledLanguageNames() {
				l, _ := incremental.BundledLanguage(n)
				langs[n] = l
			}
			continue
		}
		l, ok := incremental.BundledLanguage(name)
		if !ok {
			return nil, fmt.Errorf("daemon: no bundled language %q (have %v)",
				name, incremental.BundledLanguageNames())
		}
		langs[name] = l
	}
	for _, dir := range cfg.LanguageDirs {
		loaded, err := engine.LoadLanguages(dir)
		if err != nil {
			return nil, fmt.Errorf("daemon: language dir %s: %w", dir, err)
		}
		for name, l := range loaded {
			if _, dup := langs[name]; dup {
				return nil, fmt.Errorf("daemon: language %q configured twice (artifact dir %s collides with an earlier source)", name, dir)
			}
			langs[name] = l
		}
	}
	if len(langs) == 0 {
		return nil, fmt.Errorf("daemon: no languages configured (set language_dirs or bundled)")
	}
	return &snapshot{version: version, cfg: cfg, langs: langs}, nil
}
