package daemon

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"iglr/internal/govern"
)

// Daemon is the long-lived parse service. Create one with New, serve with
// Start (or mount Handler/AdminHandler yourself), reconfigure at runtime
// with Reload, and stop with Shutdown.
type Daemon struct {
	snap atomic.Pointer[snapshot]
	// reloadMu serializes snapshot publication (Reload from POST /config,
	// POST /reload, and SIGHUP race on different goroutines): snapshots
	// always publish in version order, so a slow build can never clobber
	// a config accepted after it.
	reloadMu sync.Mutex
	mets     metrics
	pool     *shardPool
	sessions *registry
	// persist is the session durability store (nil when persistence is
	// disabled). Fixed at startup, like the shard pool.
	persist *persistStore
	// gov accounts every session's memory footprint per shard and globally
	// against the config's soft/hard watermarks (see internal/govern).
	gov *govern.Governor
	// inflight counts concurrently executing data-plane requests for the
	// MaxInflight admission cap.
	inflight atomic.Int64
	// watch holds each shard's currently running parse, if any, for the
	// stall watchdog. The slot is written only by the shard's own
	// goroutine; the watchdog reads it and cancels through it.
	watch []atomic.Pointer[runningTask]

	// ConfigPath, when set, is the file POST /reload re-reads. The
	// command-line wrapper sets it; embedded daemons may leave it empty
	// and use POST /config (or Reload) instead.
	ConfigPath string

	// Logf receives daemon lifecycle lines (default log.Printf; set to a
	// no-op to silence tests).
	Logf func(format string, args ...any)

	dataSrv, adminSrv *http.Server
	dataLn, adminLn   net.Listener
	janitorStop       chan struct{}
	janitorDone       chan struct{}
	watchdogDone      chan struct{}
	stopJanitor       sync.Once
}

// runningTask is one parse in flight on a shard goroutine, registered so
// the watchdog can see how long it has been running and cancel it.
type runningTask struct {
	sessID  string
	started time.Time
	cancel  context.CancelFunc
	// byWatchdog is set (once) by the watchdog before cancelling; the
	// shard side reads it after the parse returns to tell a stall
	// cancellation from an ordinary client disconnect.
	byWatchdog atomic.Bool
}

// New builds a daemon from cfg: the config is compiled into the first
// snapshot (every language loaded) and the shard pool is started. No
// sockets are opened until Start.
func New(cfg Config) (*Daemon, error) {
	sn, err := buildSnapshot(cfg, 1)
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		pool:         newShardPool(sn.cfg.Shards, sn.cfg.QueueDepth),
		sessions:     newRegistry(),
		gov:          govern.New(sn.cfg.Shards),
		watch:        make([]atomic.Pointer[runningTask], sn.cfg.Shards),
		Logf:         log.Printf,
		janitorStop:  make(chan struct{}),
		janitorDone:  make(chan struct{}),
		watchdogDone: make(chan struct{}),
	}
	d.gov.SetWatermarks(sn.cfg.MemorySoftBytes, sn.cfg.MemoryHardBytes)
	d.pool.onWait = d.mets.queueWait.observe
	d.pool.onExpired = func() { d.mets.queueExpired.Add(1) }
	d.mets.configVersion.Store(1)
	d.snap.Store(sn)
	if d.persist, err = newPersistStore(sn.cfg.Persist); err != nil {
		return nil, err
	}
	if d.persist != nil {
		// Inventory what a previous process left behind: sessions restore
		// lazily on first touch, but the ID sequence must clear every
		// persisted ID now, or a new session could be issued one and
		// shadow (or be shadowed by) the artifacts on disk.
		floor, n := d.persist.scanSessions()
		d.sessions.floorSeq(floor)
		if n > 0 {
			d.Logf("daemon: %d persisted sessions available in %s", n, d.persist.dir)
		}
	}
	go d.janitor()
	go d.watchdog()
	return d, nil
}

// Snapshot returns the active configuration snapshot's config and version.
func (d *Daemon) Snapshot() (Config, int64) {
	sn := d.snap.Load()
	return sn.cfg, sn.version
}

// Reload swaps in a new configuration with zero downtime: the new config
// is compiled into a complete snapshot first (artifact directories
// re-read, bundled set re-resolved), and only a fully valid snapshot is
// published. Requests already running finish against the old snapshot;
// new sessions see the new budgets and languages; live sessions keep the
// language and budget they were created with. On error the active config
// is untouched.
//
// Reloads are serialized: concurrent callers (POST /config, POST /reload,
// SIGHUP) publish in version order, a later-accepted config always wins,
// and a rejected build consumes no version number.
//
// The shard pool is fixed at startup: a reload with a different Shards
// value keeps the running pool and reports the effective count in the
// active config.
func (d *Daemon) Reload(cfg Config) (int64, error) {
	d.reloadMu.Lock()
	defer d.reloadMu.Unlock()
	cur := d.snap.Load()
	version := cur.version + 1
	sn, err := buildSnapshot(cfg, version)
	if err != nil {
		d.mets.reloadErrors.Add(1)
		return cur.version, err
	}
	if sn.cfg.Shards != cur.cfg.Shards {
		d.Logf("daemon: shards fixed at %d until restart (config asked for %d)",
			cur.cfg.Shards, sn.cfg.Shards)
		sn.cfg.Shards = cur.cfg.Shards
	}
	if sn.cfg.Persist != cur.cfg.Persist {
		d.Logf("daemon: persistence fixed at startup (dir %q) until restart", cur.cfg.Persist.Dir)
		sn.cfg.Persist = cur.cfg.Persist
	}
	if sn.cfg.QueueDepth != cur.cfg.QueueDepth {
		d.Logf("daemon: queue depth fixed at %d until restart (config asked for %d)",
			cur.cfg.QueueDepth, sn.cfg.QueueDepth)
		sn.cfg.QueueDepth = cur.cfg.QueueDepth
	}
	// Listeners are bound once; keep the effective addresses visible.
	sn.cfg.Listen, sn.cfg.AdminListen = cur.cfg.Listen, cur.cfg.AdminListen
	d.gov.SetWatermarks(sn.cfg.MemorySoftBytes, sn.cfg.MemoryHardBytes)
	d.snap.Store(sn)
	d.mets.configVersion.Store(version)
	d.mets.reloads.Add(1)
	d.Logf("daemon: config v%d active (%d languages, ttl %v)",
		version, len(sn.langs), time.Duration(sn.cfg.SessionTTL))
	return version, nil
}

// Start opens the data-plane and admin-plane listeners and serves until
// Shutdown. It returns once both listeners are bound (so Addr/AdminAddr
// are valid), with serving continuing in background goroutines.
func (d *Daemon) Start() error {
	sn := d.snap.Load()
	dataLn, err := net.Listen("tcp", sn.cfg.Listen)
	if err != nil {
		return fmt.Errorf("daemon: data listener: %w", err)
	}
	adminLn, err := net.Listen("tcp", sn.cfg.AdminListen)
	if err != nil {
		dataLn.Close()
		return fmt.Errorf("daemon: admin listener: %w", err)
	}
	d.dataLn, d.adminLn = dataLn, adminLn

	// Publish the bound addresses (":0" resolves on bind) so /config
	// reports reality. Under reloadMu: this is a snapshot publication
	// like any other and must not clobber a concurrent Reload.
	d.reloadMu.Lock()
	bound := *d.snap.Load()
	bound.cfg.Listen = dataLn.Addr().String()
	bound.cfg.AdminListen = adminLn.Addr().String()
	d.snap.Store(&bound)
	d.reloadMu.Unlock()

	d.dataSrv = &http.Server{Handler: d.Handler()}
	d.adminSrv = &http.Server{Handler: d.AdminHandler()}
	go func() {
		if err := d.dataSrv.Serve(dataLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.Logf("daemon: data plane: %v", err)
		}
	}()
	go func() {
		if err := d.adminSrv.Serve(adminLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			d.Logf("daemon: admin plane: %v", err)
		}
	}()
	d.Logf("daemon: serving data on %s, admin on %s", bound.cfg.Listen, bound.cfg.AdminListen)
	return nil
}

// Addr returns the bound data-plane address (valid after Start).
func (d *Daemon) Addr() net.Addr { return d.dataLn.Addr() }

// AdminAddr returns the bound admin-plane address (valid after Start).
func (d *Daemon) AdminAddr() net.Addr { return d.adminLn.Addr() }

// Shutdown stops the daemon: listeners drain gracefully under ctx, the
// eviction janitor stops, and the shard pool exits once every in-flight
// task has finished. Safe to call whether or not Start was called, and
// safe to call more than once.
func (d *Daemon) Shutdown(ctx context.Context) error {
	var firstErr error
	for _, srv := range []*http.Server{d.dataSrv, d.adminSrv} {
		if srv == nil {
			continue
		}
		if err := srv.Shutdown(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	d.stopJanitor.Do(func() { close(d.janitorStop) })
	<-d.janitorDone
	<-d.watchdogDone
	// Park every live session on disk (bounded by the drain deadline) so
	// a graceful restart restores each one without journal replay.
	d.persistAll(ctx)
	// srv.Shutdown can return early (drain deadline expired) with
	// handlers still in flight — say, wedged on a long unbudgeted parse.
	// pool.close excludes concurrent producers itself (a straggler gets
	// errPoolClosed instead of a send on a closed channel), but that same
	// exclusion means it can block behind a wedged enqueue, so bound it
	// by the drain deadline too and leave the pool running if it expires:
	// the process is exiting anyway.
	closed := make(chan struct{})
	go func() {
		d.pool.close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-ctx.Done():
		if firstErr == nil {
			firstErr = ctx.Err()
		}
	}
	d.Logf("daemon: shut down (%d sessions open at exit)", d.sessions.len())
	return firstErr
}

// parkSession closes one session and releases its governor account. Runs
// on the session's shard goroutine. With persistence on, the session is
// parked on disk first (the next touch restores it); pressure is true for
// memory-pressure evictions, false for TTL ones (they count differently).
//
// A session with an uncommitted parse (fresh before its first parse, or
// an edit batch whose parse is still queued) is skipped: snapshotting it
// would persist work whose request may have been shed, and a client retry
// after the shed would then apply it twice. The tradeoff: such a session
// stays in RAM until a parse commits it; bounded, since the next touch or
// the request already in its queue runs that parse.
func (d *Daemon) parkSession(sess *session, when string, pressure bool) {
	if sess.pendingParse {
		return
	}
	toDisk := d.persistPark(sess, when)
	sess.closed = true
	sess.parked = toDisk
	if _, ok := d.sessions.remove(sess.id); ok {
		d.mets.sessionsOpen.Add(-1)
		if pressure {
			d.mets.pressureEvictions.Add(1)
		} else {
			d.mets.sessionsEvicted.Add(1)
		}
		if toDisk {
			d.mets.evictedToDisk.Add(1)
		}
	}
	d.gov.Release(sess.shard, sess.memBytes)
	sess.memBytes = 0
}

// pressureIdleMin is the minimum idle time before a session is eligible
// for a pressure eviction: sweeps under memory pressure park idle-first,
// but never a session something touched in the last beat.
const pressureIdleMin = 100 * time.Millisecond

// relieveShard parks shard i's idle sessions, oldest-idle first, until
// the governor has at least need bytes of headroom (or the shard runs out
// of candidates). Runs on shard i's goroutine; protect (the session being
// grown) is never parked here. Only sessions with their state safely on
// disk are parked — without persistence, relief would destroy user state,
// so the governor sheds new work instead.
func (d *Daemon) relieveShard(i int, need int64, protect *session) {
	if d.persist == nil {
		return
	}
	cands := d.sessions.byShard(i)
	sort.Slice(cands, func(a, b int) bool { return cands[a].lastUsed.Before(cands[b].lastUsed) })
	for _, c := range cands {
		if hr, ok := d.gov.Headroom(); !ok || hr >= need {
			return
		}
		if c == protect || c.closed {
			continue
		}
		d.parkSession(c, "pressure", true)
	}
}

// accountParse settles a session's governor account after a parse: the
// footprint delta is charged (or released) against the shard. A charge the
// hard watermark refuses triggers relief — idle neighbors are parked to
// disk — and if the shard still cannot absorb the growth, the grown
// session itself is parked (persistence on) or dropped (persistence off):
// the response the client is about to get is still correct, and the next
// touch restores or recreates. Runs on the session's shard goroutine.
func (d *Daemon) accountParse(sess *session) {
	fp := sess.s.MemoryFootprint()
	delta := fp - sess.memBytes
	if delta <= 0 {
		d.gov.Adjust(sess.shard, delta)
		sess.memBytes = fp
		return
	}
	if d.gov.TryCharge(sess.shard, delta) {
		sess.memBytes = fp
		return
	}
	d.relieveShard(sess.shard, delta, sess)
	if d.gov.TryCharge(sess.shard, delta) {
		sess.memBytes = fp
		return
	}
	// The fleet cannot absorb this session's growth: shed it. Its old
	// account is released inside parkSession; the unaccounted growth
	// leaves the process with the session.
	d.Logf("daemon: session %s grew past the memory hard watermark (%d bytes), shedding", sess.id, fp)
	if d.persist != nil {
		d.parkSession(sess, "pressure", true)
		return
	}
	sess.closed = true
	d.persistRemove(sess)
	if _, ok := d.sessions.remove(sess.id); ok {
		d.mets.sessionsOpen.Add(-1)
		d.mets.pressureEvictions.Add(1)
	}
	d.gov.Release(sess.shard, sess.memBytes)
	sess.memBytes = 0
}

// janitor periodically evicts idle sessions. Each sweep runs on the
// owning shard's goroutine, so it serializes with session operations and
// a session can never be evicted mid-parse. The TTL is read from the
// active snapshot every sweep, making it hot-reloadable. Under memory
// pressure (the governor at or above its soft watermark) the janitor
// additionally parks idle sessions to disk, oldest-idle first, until the
// fleet is back under the soft watermark.
func (d *Daemon) janitor() {
	defer close(d.janitorDone)
	tick := time.NewTicker(250 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-d.janitorStop:
			return
		case <-tick.C:
		}
		ttl := time.Duration(d.snap.Load().cfg.SessionTTL)
		if ttl > 0 {
			cutoff := time.Now().Add(-ttl)
			for i := range d.pool.tasks {
				candidates := d.sessions.byShard(i)
				if len(candidates) == 0 {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				d.pool.run(ctx, i, func() {
					for _, sess := range candidates {
						if sess.closed || sess.lastUsed.After(cutoff) {
							continue
						}
						// Park the session on disk before dropping it: with
						// persistence on, eviction demotes to cold storage
						// (the next touch restores) instead of destroying.
						d.parkSession(sess, "evict", false)
					}
				})
				cancel()
			}
		}
		// Pressure mode: idle-first eviction to disk until under the soft
		// watermark. Only parked-safely sessions are eligible, so this
		// never destroys state (relieveShard enforces both).
		if d.gov.OverSoft() && d.persist != nil {
			cutoff := time.Now().Add(-pressureIdleMin)
			for i := range d.pool.tasks {
				if !d.gov.OverSoft() {
					break
				}
				candidates := d.sessions.byShard(i)
				if len(candidates) == 0 {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				d.pool.run(ctx, i, func() {
					sort.Slice(candidates, func(a, b int) bool {
						return candidates[a].lastUsed.Before(candidates[b].lastUsed)
					})
					for _, sess := range candidates {
						if !d.gov.OverSoft() {
							return
						}
						if sess.closed || sess.lastUsed.After(cutoff) {
							continue
						}
						d.parkSession(sess, "pressure", true)
					}
				})
				cancel()
			}
		}
	}
}

// watchdog scans the shards for a parse stuck beyond the configured stall
// threshold — a runaway that escaped its budget, a pathological ambiguity
// blowup — and cancels it through its context. The parsers poll their
// context (every round in the GLR engine, every kernel block in the
// deterministic one), so cancellation actually unwedges the shard; the
// shard side then closes the poisoned session, extending the
// panic-containment contract to livelock. The tick adapts to the
// threshold so a short stall_timeout is enforced promptly.
func (d *Daemon) watchdog() {
	defer close(d.watchdogDone)
	for {
		stall := time.Duration(d.snap.Load().cfg.StallTimeout)
		tick := 250 * time.Millisecond
		if stall > 0 {
			tick = stall / 4
			if tick < 5*time.Millisecond {
				tick = 5 * time.Millisecond
			}
			if tick > 250*time.Millisecond {
				tick = 250 * time.Millisecond
			}
		}
		select {
		case <-d.janitorStop:
			return
		case <-time.After(tick):
		}
		if stall <= 0 {
			continue
		}
		for i := range d.watch {
			rt := d.watch[i].Load()
			if rt == nil || time.Since(rt.started) < stall {
				continue
			}
			if rt.byWatchdog.CompareAndSwap(false, true) {
				rt.cancel()
				d.mets.watchdogCancels.Add(1)
				d.Logf("daemon: watchdog cancelled stalled parse on shard %d (session %s, running %v > stall_timeout %v)",
					i, rt.sessID, time.Since(rt.started).Round(time.Millisecond), stall)
			}
		}
	}
}
