package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	incremental "iglr"
)

// testDaemon starts a daemon on ephemeral loopback ports and tears it down
// with the test.
func testDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.AdminListen == "" {
		cfg.AdminListen = "127.0.0.1:0"
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d.Logf = t.Logf
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(func() {
		// Drop the shared transport's idle keep-alive conns first: a spare
		// conn the Transport dialed but never sent a request on is StateNew
		// server-side, and net/http's graceful Shutdown refuses to treat
		// such a conn as idle until it is 5s old — long enough to trip the
		// drain deadline below.
		http.DefaultClient.CloseIdleConnections()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			buf := make([]byte, 1<<20)
			t.Errorf("Shutdown: %v\n%s", err, buf[:runtime.Stack(buf, true)])
		}
	})
	return d
}

func dataURL(d *Daemon, path string) string  { return "http://" + d.Addr().String() + path }
func adminURL(d *Daemon, path string) string { return "http://" + d.AdminAddr().String() + path }

// doJSON issues a request with a JSON body and decodes the JSON response,
// returning the status code.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad response %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func scrapeMetrics(t *testing.T, d *Daemon) string {
	t.Helper()
	resp, err := http.Get(adminURL(d, "/metrics"))
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return string(data)
}

// metricValue extracts the value of a plain (unlabelled) metric sample.
func metricValue(t *testing.T, text, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

func TestSessionRoundTrip(t *testing.T) {
	d := testDaemon(t, Config{Bundled: []string{"expr"}})

	var created sessionJSON
	status := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "1+2*3"}, &created)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d, want 201", status)
	}
	if created.ID == "" || !created.Outcome.Clean || created.Outcome.TextLen != 5 {
		t.Fatalf("create: bad outcome %+v", created)
	}

	// Edit "1+2*3" -> "1+(2*3)+4" and reparse.
	var out outcomeJSON
	status = doJSON(t, "POST", dataURL(d, "/sessions/"+created.ID+"/edits"),
		editsRequestJSON{Edits: []editJSON{
			{Offset: 2, Remove: 0, Insert: "("},
			{Offset: 6, Remove: 0, Insert: ")+4"},
		}}, &out)
	if status != http.StatusOK || !out.Clean || out.TextLen != len("1+(2*3)+4") {
		t.Fatalf("edits: status %d, outcome %+v", status, out)
	}

	var diag struct {
		Diagnostics []diagnosticJSON `json:"diagnostics"`
	}
	status = doJSON(t, "GET", dataURL(d, "/sessions/"+created.ID+"/diagnostics"), nil, &diag)
	if status != http.StatusOK || len(diag.Diagnostics) != 0 {
		t.Fatalf("diagnostics: status %d, %+v", status, diag)
	}

	// Subtree covering the parenthesized group.
	var sub subtreeJSON
	status = doJSON(t, "GET", dataURL(d, "/sessions/"+created.ID+"/subtree?offset=2&length=5"), nil, &sub)
	if status != http.StatusOK {
		t.Fatalf("subtree: status %d", status)
	}
	if sub.Offset > 2 || sub.Offset+sub.Length < 7 || sub.Outline == "" {
		t.Fatalf("subtree: %+v does not cover [2,7)", sub)
	}

	status = doJSON(t, "DELETE", dataURL(d, "/sessions/"+created.ID), nil, nil)
	if status != http.StatusNoContent {
		t.Fatalf("delete: status %d, want 204", status)
	}
	status = doJSON(t, "GET", dataURL(d, "/sessions/"+created.ID), nil, nil)
	if status != http.StatusNotFound {
		t.Fatalf("get after delete: status %d, want 404", status)
	}

	text := scrapeMetrics(t, d)
	if got := metricValue(t, text, "iglrd_sessions_open"); got != 0 {
		t.Errorf("sessions_open = %d after delete, want 0", got)
	}
	if got := metricValue(t, text, "iglrd_sessions_opened_total"); got != 1 {
		t.Errorf("sessions_opened_total = %d, want 1", got)
	}
	if got := metricValue(t, text, "iglrd_edits_total"); got != 2 {
		t.Errorf("edits_total = %d, want 2", got)
	}
	if got := metricValue(t, text, "iglrd_parse_seconds_count"); got < 2 {
		t.Errorf("parse_seconds_count = %d, want >= 2", got)
	}
}

func TestTolerantSessionQuarantinesAndRepairs(t *testing.T) {
	d := testDaemon(t, Config{Bundled: []string{"c-subset"}})

	src := "int a; a = 1; int b;"
	var created sessionJSON
	status := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "c-subset", Text: src, Tolerant: true}, &created)
	if status != http.StatusCreated || !created.Outcome.Clean {
		t.Fatalf("create: status %d, outcome %+v", status, created.Outcome)
	}

	// Corrupt the assignment's "=" into "@": a syntax error a tolerant
	// session must quarantine, not fail.
	off := strings.Index(src, "=")
	var out outcomeJSON
	status = doJSON(t, "POST", dataURL(d, "/sessions/"+created.ID+"/edits"),
		editsRequestJSON{Edits: []editJSON{{Offset: off, Remove: 1, Insert: "@"}}}, &out)
	if status != http.StatusOK {
		t.Fatalf("hostile edit: status %d", status)
	}
	if out.Error != "" {
		t.Fatalf("tolerant session surfaced hard error: %q", out.Error)
	}
	if out.Clean || len(out.Diagnostics) == 0 {
		t.Fatalf("hostile edit: want quarantined diagnostics, got %+v", out)
	}

	// Repair and verify diagnostics clear. Fresh struct: omitempty fields
	// from the previous response must not linger.
	var repaired outcomeJSON
	status = doJSON(t, "POST", dataURL(d, "/sessions/"+created.ID+"/edits"),
		editsRequestJSON{Edits: []editJSON{{Offset: off, Remove: 1, Insert: "="}}}, &repaired)
	if status != http.StatusOK || !repaired.Clean || len(repaired.Diagnostics) != 0 {
		t.Fatalf("repair: status %d, outcome %+v", status, repaired)
	}

	text := scrapeMetrics(t, d)
	if got := metricValue(t, text, "iglrd_isolated_parses_total"); got < 1 {
		t.Errorf("isolated_parses_total = %d, want >= 1", got)
	}
	if got := metricValue(t, text, "iglrd_diagnostics_total"); got < 1 {
		t.Errorf("diagnostics_total = %d, want >= 1", got)
	}
}

func TestUnknownLanguageAndBadEdits(t *testing.T) {
	d := testDaemon(t, Config{Bundled: []string{"expr"}})

	var e errorJSON
	status := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "cobol", Text: "x"}, &e)
	if status != http.StatusBadRequest || !strings.Contains(e.Error, "cobol") {
		t.Fatalf("unknown language: status %d, %+v", status, e)
	}

	var created sessionJSON
	doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "1+2"}, &created)
	status = doJSON(t, "POST", dataURL(d, "/sessions/"+created.ID+"/edits"),
		editsRequestJSON{Edits: []editJSON{{Offset: 99, Remove: 5}}}, &e)
	if status != http.StatusBadRequest {
		t.Fatalf("bad edit: status %d, want 400", status)
	}

	status = doJSON(t, "POST", dataURL(d, "/sessions/nope/edits"),
		editsRequestJSON{Edits: []editJSON{{Offset: 0}}}, &e)
	if status != http.StatusNotFound {
		t.Fatalf("edits on unknown session: status %d, want 404", status)
	}
}

func TestSessionQuotas(t *testing.T) {
	d := testDaemon(t, Config{
		Bundled:     []string{"expr"},
		MaxSessions: 3,
		Tenants:     map[string]Tenant{"small": {MaxSessions: 1}},
	})

	var first sessionJSON
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "1", Tenant: "small"}, &first); s != http.StatusCreated {
		t.Fatalf("first small session: status %d", s)
	}
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "2", Tenant: "small"}, nil); s != http.StatusTooManyRequests {
		t.Fatalf("second small session: status %d, want 429", s)
	}
	// Other tenants can still fill up to the global cap.
	for i := 0; i < 2; i++ {
		if s := doJSON(t, "POST", dataURL(d, "/sessions"),
			createSessionJSON{Language: "expr", Text: "3"}, nil); s != http.StatusCreated {
			t.Fatalf("default tenant session %d: status %d", i, s)
		}
	}
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "4"}, nil); s != http.StatusTooManyRequests {
		t.Fatalf("over global cap: status %d, want 429", s)
	}
	// Freeing the small tenant's session re-admits it.
	if s := doJSON(t, "DELETE", dataURL(d, "/sessions/"+first.ID), nil, nil); s != http.StatusNoContent {
		t.Fatalf("delete: status %d", s)
	}
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "5", Tenant: "small"}, nil); s != http.StatusCreated {
		t.Fatalf("small session after free: status %d", s)
	}

	text := scrapeMetrics(t, d)
	if got := metricValue(t, text, "iglrd_sessions_denied_total"); got != 2 {
		t.Errorf("sessions_denied_total = %d, want 2", got)
	}
}

func TestTenantBudgetTrips(t *testing.T) {
	d := testDaemon(t, Config{
		Bundled: []string{"expr"},
		Tenants: map[string]Tenant{
			"tiny": {Budget: incremental.Budget{MaxGSSLinks: 4}},
		},
	})
	var created sessionJSON
	status := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "1+2+3+4+5+6+7+8+9", Tenant: "tiny"}, &created)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	if created.Outcome.Error == "" || !created.Outcome.BudgetTrip {
		t.Fatalf("tiny budget should trip, got %+v", created.Outcome)
	}
	text := scrapeMetrics(t, d)
	if got := metricValue(t, text, "iglrd_budget_trips_total"); got != 1 {
		t.Errorf("budget_trips_total = %d, want 1", got)
	}
}

func TestBatchParse(t *testing.T) {
	d := testDaemon(t, Config{Bundled: []string{"c-subset"}})
	var resp batchResponseJSON
	status := doJSON(t, "POST", dataURL(d, "/parse"), batchRequestJSON{
		Language: "c-subset",
		Tolerant: true,
		Files: []batchFileJSON{
			{Name: "ok.c", Source: "int x; x = 1;"},
			{Name: "bad.c", Source: "int a; a @ 1; int b;"},
		},
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("batch: status %d", status)
	}
	if len(resp.Files) != 2 {
		t.Fatalf("batch: %d results, want 2", len(resp.Files))
	}
	byName := map[string]batchResultJSON{}
	for _, f := range resp.Files {
		byName[f.Name] = f
	}
	if !byName["ok.c"].OK {
		t.Errorf("ok.c failed: %+v", byName["ok.c"])
	}
	// Under a tolerant policy the bad file still lands, with diagnostics.
	if !byName["bad.c"].OK || len(byName["bad.c"].Diagnostics) == 0 {
		t.Errorf("bad.c: want tolerated with diagnostics, got %+v", byName["bad.c"])
	}

	text := scrapeMetrics(t, d)
	if got := metricValue(t, text, "iglrd_batch_files_total"); got != 2 {
		t.Errorf("batch_files_total = %d, want 2", got)
	}
}

func TestAdminConfigReload(t *testing.T) {
	d := testDaemon(t, Config{Bundled: []string{"expr"}})

	var got struct {
		Version int64  `json:"version"`
		Config  Config `json:"config"`
	}
	if s := doJSON(t, "GET", adminURL(d, "/config"), nil, &got); s != http.StatusOK {
		t.Fatalf("GET /config: status %d", s)
	}
	if got.Version != 1 || len(got.Config.Bundled) != 1 {
		t.Fatalf("GET /config: %+v", got)
	}

	// Successful reload: serve one more language.
	var rl struct {
		Version int64 `json:"version"`
	}
	if s := doJSON(t, "POST", adminURL(d, "/config"),
		Config{Bundled: []string{"expr", "c-subset"}}, &rl); s != http.StatusOK {
		t.Fatalf("POST /config: status %d", s)
	}
	if rl.Version != 2 {
		t.Fatalf("reload version = %d, want 2", rl.Version)
	}
	var langs struct {
		Languages []string `json:"languages"`
	}
	doJSON(t, "GET", dataURL(d, "/languages"), nil, &langs)
	if len(langs.Languages) != 2 {
		t.Fatalf("languages after reload: %v", langs.Languages)
	}

	// Rejected reload: unknown bundled language. Active config keeps serving.
	var e errorJSON
	if s := doJSON(t, "POST", adminURL(d, "/config"),
		Config{Bundled: []string{"fortran-77"}}, &e); s != http.StatusUnprocessableEntity {
		t.Fatalf("bad reload: status %d, want 422", s)
	}
	doJSON(t, "GET", adminURL(d, "/config"), nil, &got)
	if got.Version != 2 {
		t.Fatalf("version after rejected reload = %d, want 2", got.Version)
	}
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "c-subset", Text: "int x ;"}, nil); s != http.StatusCreated {
		t.Fatalf("data plane after rejected reload: status %d", s)
	}

	text := scrapeMetrics(t, d)
	if metricValue(t, text, "iglrd_config_version") != 2 ||
		metricValue(t, text, "iglrd_config_reloads_total") != 1 ||
		metricValue(t, text, "iglrd_config_reload_errors_total") != 1 {
		t.Errorf("reload metrics wrong:\n%s", text)
	}
}

func TestReloadFromConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "iglrd.json")
	write := func(cfg Config) {
		t.Helper()
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(Config{Bundled: []string{"expr"}})

	d := testDaemon(t, Config{Bundled: []string{"expr"}})
	d.ConfigPath = path

	write(Config{Bundled: []string{"expr", "java-subset"}})
	var rl struct {
		Version int64 `json:"version"`
	}
	if s := doJSON(t, "POST", adminURL(d, "/reload"), nil, &rl); s != http.StatusOK {
		t.Fatalf("POST /reload: status %d", s)
	}
	var langs struct {
		Languages []string `json:"languages"`
	}
	doJSON(t, "GET", dataURL(d, "/languages"), nil, &langs)
	if len(langs.Languages) != 2 || langs.Languages[1] != "java-subset" {
		t.Fatalf("languages after file reload: %v", langs.Languages)
	}

	// A config file that fails to build is rejected, daemon stays up.
	write(Config{Bundled: []string{"no-such-language"}})
	if s := doJSON(t, "POST", adminURL(d, "/reload"), nil, nil); s != http.StatusUnprocessableEntity {
		t.Fatalf("bad file reload: status %d, want 422", s)
	}
	var hz struct {
		OK bool `json:"ok"`
	}
	if s := doJSON(t, "GET", adminURL(d, "/healthz"), nil, &hz); s != http.StatusOK || !hz.OK {
		t.Fatalf("healthz after bad reload: status %d, %+v", s, hz)
	}
}

func TestLanguageDirArtifacts(t *testing.T) {
	dir := t.TempDir()
	lang := incremental.ExprLanguage()
	if err := lang.SaveCompiledFile(filepath.Join(dir, "expr"+incremental.CompiledExt)); err != nil {
		t.Fatal(err)
	}
	d := testDaemon(t, Config{LanguageDirs: []string{dir}})
	var created sessionJSON
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "1+2"}, &created); s != http.StatusCreated {
		t.Fatalf("session on artifact language: status %d", s)
	}
	if !created.Outcome.Clean {
		t.Fatalf("outcome: %+v", created.Outcome)
	}
}

func TestDuplicateLanguageRejected(t *testing.T) {
	dir := t.TempDir()
	lang := incremental.ExprLanguage()
	if err := lang.SaveCompiledFile(filepath.Join(dir, "expr"+incremental.CompiledExt)); err != nil {
		t.Fatal(err)
	}
	_, err := New(Config{Bundled: []string{"expr"}, LanguageDirs: []string{dir}})
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate language: err = %v, want 'configured twice'", err)
	}
}

func TestIdleSessionEviction(t *testing.T) {
	d := testDaemon(t, Config{
		Bundled:    []string{"expr"},
		SessionTTL: Duration(100 * time.Millisecond),
	})
	var created sessionJSON
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "1+2"}, &created); s != http.StatusCreated {
		t.Fatalf("create: status %d", s)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if s := doJSON(t, "GET", dataURL(d, "/sessions/"+created.ID), nil, nil); s == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session not evicted after 5s with a 100ms TTL")
		}
		// Note: polling GET touches lastUsed, so back off past the TTL.
		time.Sleep(300 * time.Millisecond)
	}

	text := scrapeMetrics(t, d)
	if got := metricValue(t, text, "iglrd_sessions_evicted_total"); got != 1 {
		t.Errorf("sessions_evicted_total = %d, want 1", got)
	}
	if got := metricValue(t, text, "iglrd_sessions_open"); got != 0 {
		t.Errorf("sessions_open = %d, want 0", got)
	}
}

func TestDurationJSON(t *testing.T) {
	var cfg Config
	if err := json.Unmarshal([]byte(`{"session_ttl":"90s"}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if time.Duration(cfg.SessionTTL) != 90*time.Second {
		t.Fatalf("session_ttl = %v", time.Duration(cfg.SessionTTL))
	}
	if err := json.Unmarshal([]byte(`{"session_ttl":1000000}`), &cfg); err != nil {
		t.Fatal(err)
	}
	if time.Duration(cfg.SessionTTL) != time.Millisecond {
		t.Fatalf("session_ttl = %v", time.Duration(cfg.SessionTTL))
	}
	data, err := json.Marshal(Config{SessionTTL: Duration(5 * time.Minute)})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"session_ttl":"5m0s"`) {
		t.Fatalf("marshal: %s", data)
	}
	if err := json.Unmarshal([]byte(`{"session_ttl":"fast"}`), &cfg); err == nil {
		t.Fatal("bad duration accepted")
	}
}

// TestOverflowEditRejected: an edit whose Offset+Remove wraps negative
// must be rejected with a 400, not slip past validation into a panic that
// takes the shard goroutine (and with it the daemon) down.
func TestOverflowEditRejected(t *testing.T) {
	d := testDaemon(t, Config{Bundled: []string{"expr"}})
	var created sessionJSON
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "1+2"}, &created); s != http.StatusCreated {
		t.Fatalf("create: status %d", s)
	}
	for _, e := range []editJSON{
		{Offset: 1, Remove: math.MaxInt - 1},
		{Offset: math.MaxInt - 1, Remove: 2},
		{Offset: math.MaxInt, Remove: math.MaxInt},
	} {
		if s := doJSON(t, "POST", dataURL(d, "/sessions/"+created.ID+"/edits"),
			editsRequestJSON{Edits: []editJSON{e}}, nil); s != http.StatusBadRequest {
			t.Fatalf("overflow edit %+v: status %d, want 400", e, s)
		}
	}
	// The daemon survived and the document is untouched.
	var out outcomeJSON
	if s := doJSON(t, "POST", dataURL(d, "/sessions/"+created.ID+"/edits"),
		editsRequestJSON{Edits: []editJSON{{Offset: 3, Insert: "*4"}}}, &out); s != http.StatusOK {
		t.Fatalf("edit after overflow attempts: status %d", s)
	}
	if !out.Clean || out.TextLen != len("1+2*4") {
		t.Fatalf("document diverged: %+v", out)
	}
}

// TestEditBatchAtomicOnInvalid: when any edit in a batch fails validation
// the whole batch must be a no-op — a 400 implies no mutation, so the
// client's view of the document never silently diverges.
func TestEditBatchAtomicOnInvalid(t *testing.T) {
	d := testDaemon(t, Config{Bundled: []string{"expr"}})
	var created sessionJSON
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "1+2"}, &created); s != http.StatusCreated {
		t.Fatalf("create: status %d", s)
	}
	// First edit valid, second out of range: neither may apply.
	if s := doJSON(t, "POST", dataURL(d, "/sessions/"+created.ID+"/edits"),
		editsRequestJSON{Edits: []editJSON{
			{Offset: 0, Insert: "("},
			{Offset: 99, Remove: 5},
		}}, nil); s != http.StatusBadRequest {
		t.Fatalf("mixed batch: status %d, want 400", s)
	}
	var info struct {
		TextLen int `json:"text_len"`
	}
	if s := doJSON(t, "GET", dataURL(d, "/sessions/"+created.ID), nil, &info); s != http.StatusOK {
		t.Fatalf("get: status %d", s)
	}
	if info.TextLen != len("1+2") {
		t.Fatalf("text_len = %d after rejected batch, want %d", info.TextLen, len("1+2"))
	}
	// A clean parse of "1+2*4" proves the stray "(" never landed.
	var out outcomeJSON
	if s := doJSON(t, "POST", dataURL(d, "/sessions/"+created.ID+"/edits"),
		editsRequestJSON{Edits: []editJSON{{Offset: 3, Insert: "*4"}}}, &out); s != http.StatusOK || !out.Clean {
		t.Fatalf("follow-up edit: status %d, outcome %+v", s, out)
	}
}

// TestShardPanicContained: a panic inside a shard task must fail that one
// request — the shard goroutine survives, the poisoned session is closed,
// and the daemon keeps serving.
func TestShardPanicContained(t *testing.T) {
	d := testDaemon(t, Config{Bundled: []string{"expr"}})
	var created sessionJSON
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "1+2"}, &created); s != http.StatusCreated {
		t.Fatalf("create: status %d", s)
	}
	sess, ok := d.sessions.get(created.ID)
	if !ok {
		t.Fatal("session not registered")
	}
	err := d.runSession(context.Background(), sess, func() { panic("poisoned parse state") })
	if !errors.Is(err, errShardPanic) {
		t.Fatalf("runSession after panic: err = %v, want errShardPanic", err)
	}
	// The poisoned session is gone; the daemon is not.
	if s := doJSON(t, "GET", dataURL(d, "/sessions/"+created.ID), nil, nil); s != http.StatusNotFound {
		t.Fatalf("poisoned session still served: status %d", s)
	}
	var next sessionJSON
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "3+4"}, &next); s != http.StatusCreated || !next.Outcome.Clean {
		t.Fatalf("daemon did not survive the panic: status %d", s)
	}
	text := scrapeMetrics(t, d)
	if got := metricValue(t, text, "iglrd_recovered_panics_total"); got != 1 {
		t.Errorf("recovered_panics_total = %d, want 1", got)
	}
	if got := metricValue(t, text, "iglrd_sessions_open"); got != 1 {
		t.Errorf("sessions_open = %d, want 1", got)
	}
}

func TestShardPoolPanicAndCloseSemantics(t *testing.T) {
	p := newShardPool(1, 16)
	if err := p.run(context.Background(), 0, func() { panic("boom") }); !errors.Is(err, errShardPanic) {
		t.Fatalf("panicking task: err = %v, want errShardPanic", err)
	}
	ran := false
	if err := p.run(context.Background(), 0, func() { ran = true }); err != nil || !ran {
		t.Fatalf("worker died: err = %v, ran = %v", err, ran)
	}
	p.close()
	p.close() // idempotent, must not re-close channels
	if err := p.run(context.Background(), 0, func() {}); !errors.Is(err, errPoolClosed) {
		t.Fatalf("run after close: err = %v, want errPoolClosed", err)
	}
}

// TestConcurrentReloadsSerialized: POST /config, POST /reload, and SIGHUP
// race on different goroutines; snapshots must publish in version order
// with no accepted config silently lost, and a rejected build must not
// consume a version.
func TestConcurrentReloadsSerialized(t *testing.T) {
	d := testDaemon(t, Config{Bundled: []string{"expr"}})
	const goroutines, per = 4, 4
	sets := [][]string{{"expr"}, {"expr", "c-subset"}}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := d.Reload(Config{Bundled: sets[(g+i)%2]}); err != nil {
					t.Errorf("reload: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	_, version := d.Snapshot()
	if want := int64(1 + goroutines*per); version != want {
		t.Fatalf("version after %d reloads = %d, want %d (a snapshot was lost or double-published)",
			goroutines*per, version, want)
	}
	if v, err := d.Reload(Config{Bundled: []string{"no-such-language"}}); err == nil || v != version {
		t.Fatalf("rejected reload: version %d, err %v; want %d and an error", v, err, version)
	}
	if _, again := d.Snapshot(); again != version {
		t.Fatalf("rejected reload moved the version: %d -> %d", version, again)
	}
	if got := metricValue(t, scrapeMetrics(t, d), "iglrd_config_version"); got != version {
		t.Errorf("config_version metric = %d, want %d", got, version)
	}
}

// TestAbortedCreateDoesNotLeakQuota: a client that disconnects before the
// initial parse is enqueued never learns the session ID, so the daemon
// must unregister the session itself or repeated aborted creates exhaust
// the quota forever (the default TTL of 0 never evicts).
func TestAbortedCreateDoesNotLeakQuota(t *testing.T) {
	d := testDaemon(t, Config{Bundled: []string{"expr"}, Shards: 1, MaxSessions: 1})

	// Wedge the only shard so the create's initial parse cannot enqueue.
	block := make(chan struct{})
	wedged := make(chan struct{})
	go d.pool.run(context.Background(), 0, func() { close(wedged); <-block })
	<-wedged

	body := `{"language":"expr","text":"1+2"}`
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", dataURL(d, "/sessions"), strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatalf("create on a wedged shard: status %d, want client timeout", resp.StatusCode)
	}

	// The handler notices the abort and must free the slot.
	deadline := time.Now().Add(5 * time.Second)
	for d.sessions.len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("aborted create leaked: %d sessions registered", d.sessions.len())
		}
		time.Sleep(20 * time.Millisecond)
	}
	close(block)

	// The single quota slot is usable again.
	var created sessionJSON
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "1+2"}, &created); s != http.StatusCreated {
		t.Fatalf("create after aborted create: status %d, want 201 (quota leaked)", s)
	}
	if got := metricValue(t, scrapeMetrics(t, d), "iglrd_sessions_open"); got != 1 {
		t.Errorf("sessions_open = %d, want 1", got)
	}
}

// TestShutdownExpiredDrainAndDoubleShutdown: when the drain deadline
// expires with a handler still wedged on a busy shard, Shutdown must
// report the deadline — not panic the handler on a closed task channel —
// and a second Shutdown must be safe.
func TestShutdownExpiredDrainAndDoubleShutdown(t *testing.T) {
	d, err := New(Config{
		Bundled: []string{"expr"}, Shards: 1,
		Listen: "127.0.0.1:0", AdminListen: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Logf = t.Logf
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	var created sessionJSON
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: "1+2"}, &created); s != http.StatusCreated {
		t.Fatalf("create: status %d", s)
	}

	// Wedge the only shard, then park a request in the enqueue select.
	block := make(chan struct{})
	wedged := make(chan struct{})
	go d.pool.run(context.Background(), 0, func() { close(wedged); <-block })
	<-wedged
	reqDone := make(chan struct{})
	go func() {
		defer close(reqDone)
		if resp, err := http.Get(dataURL(d, "/sessions/"+created.ID)); err == nil {
			resp.Body.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the handler block on the shard

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	err = d.Shutdown(ctx)
	cancel()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown with wedged handler: err = %v, want deadline exceeded", err)
	}

	close(block)
	<-reqDone
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := d.Shutdown(ctx2); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}
