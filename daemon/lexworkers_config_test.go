package daemon

import (
	"encoding/json"
	"testing"
)

// TestConfigThreadsLexWorkers: the batch policy's lex_workers knob rides
// the daemon's JSON config straight into engine.Policy, round-trip intact.
func TestConfigThreadsLexWorkers(t *testing.T) {
	raw := []byte(`{
		"bundled": ["expr"],
		"batch": {"workers": 2, "lex_workers": 4, "tolerant": true}
	}`)
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Batch.LexWorkers != 4 || cfg.Batch.Workers != 2 || !cfg.Batch.Tolerant {
		t.Fatalf("batch policy = %+v", cfg.Batch)
	}

	out, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.Batch.LexWorkers != 4 {
		t.Fatalf("lex_workers lost in round-trip: %+v", back.Batch)
	}
}
