package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	incremental "iglr"
)

// TestConcurrentSessionsSurviveReload is the daemon's acceptance test: at
// least 64 concurrent editing sessions hammer the data plane over a real
// socket while the admin plane swaps the config (new budgets, an extra
// language) mid-load. Every request must succeed — a reload is invisible to
// in-flight traffic. Run under -race this also exercises the shard
// pool's ownership discipline.
func TestConcurrentSessionsSurviveReload(t *testing.T) {
	const (
		nSessions = 64
		nRounds   = 12
	)
	d := testDaemon(t, Config{
		Bundled: []string{"expr", "c-subset"},
		Shards:  4, // force many sessions per shard
	})
	client := &http.Client{Timeout: 30 * time.Second}

	post := func(path string, body any) (int, []byte, error) {
		data, _ := json.Marshal(body)
		resp, err := client.Post(dataURL(d, path), "application/json", bytes.NewReader(data))
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, out, nil
	}

	var (
		failures atomic.Int64
		requests atomic.Int64
		start    = make(chan struct{})
		wg       sync.WaitGroup
	)
	fail := func(format string, args ...any) {
		failures.Add(1)
		t.Errorf(format, args...)
	}

	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			// Each round appends a valid suffix and then deletes it, so
			// every round is a genuine incremental reparse of valid text.
			lang, text, suffix := "expr", "1+2*3", "+41"
			if i%2 == 1 {
				lang, text, suffix = "c-subset", "int a; a = 1; int b;", " int c;"
			}
			status, body, err := post("/sessions", createSessionJSON{
				Language: lang, Text: text, Tolerant: true,
			})
			requests.Add(1)
			if err != nil || status != http.StatusCreated {
				fail("worker %d: create: status %d err %v (%s)", i, status, err, body)
				return
			}
			var created sessionJSON
			if err := json.Unmarshal(body, &created); err != nil {
				fail("worker %d: create: %v", i, err)
				return
			}
			for r := 0; r < nRounds; r++ {
				status, body, err := post("/sessions/"+created.ID+"/edits", editsRequestJSON{
					Edits: []editJSON{{Offset: len(text), Insert: suffix}},
				})
				requests.Add(1)
				if err != nil || status != http.StatusOK {
					fail("worker %d round %d: edits: status %d err %v (%s)", i, r, status, err, body)
					return
				}
				var out outcomeJSON
				if err := json.Unmarshal(body, &out); err != nil {
					fail("worker %d round %d: %v", i, r, err)
					return
				}
				if out.Error != "" || !out.Clean {
					fail("worker %d round %d: outcome %+v, want clean", i, r, out)
					return
				}
				status, body, err = post("/sessions/"+created.ID+"/edits", editsRequestJSON{
					Edits: []editJSON{{Offset: len(text), Remove: len(suffix)}},
				})
				requests.Add(1)
				if err != nil || status != http.StatusOK {
					fail("worker %d round %d: revert: status %d err %v (%s)", i, r, status, err, body)
					return
				}
			}
		}(i)
	}

	// Reloader: wait for the fleet to be mid-flight, then swap the config
	// twice — new tenant budgets and an extra language — and verify the
	// version advances.
	reloadDone := make(chan struct{})
	go func() {
		defer close(reloadDone)
		<-start
		for requests.Load() < nSessions { // let every session open first
			time.Sleep(time.Millisecond)
		}
		for k := 0; k < 2; k++ {
			cfg := Config{
				Bundled: []string{"expr", "c-subset", "java-subset"},
				Shards:  4,
				DefaultTenant: Tenant{
					Budget: incremental.Budget{MaxGSSNodes: 1 << (20 + k)},
				},
			}
			data, _ := json.Marshal(cfg)
			resp, err := client.Post(adminURL(d, "/config"), "application/json", bytes.NewReader(data))
			if err != nil {
				fail("reload %d: %v", k, err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fail("reload %d: status %d (%s)", k, resp.StatusCode, body)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	close(start)
	wg.Wait()
	<-reloadDone

	if got := failures.Load(); got != 0 {
		t.Fatalf("%d failed requests out of %d during reload-under-load", got, requests.Load())
	}
	wantReqs := int64(nSessions * (1 + 2*nRounds))
	if got := requests.Load(); got != wantReqs {
		t.Fatalf("request count = %d, want %d", got, wantReqs)
	}

	// The reloads must have landed and the fleet's parses must be visible.
	text := scrapeMetrics(t, d)
	if got := metricValue(t, text, "iglrd_config_version"); got != 3 {
		t.Errorf("config_version = %d, want 3", got)
	}
	if got := metricValue(t, text, "iglrd_sessions_open"); got != nSessions {
		t.Errorf("sessions_open = %d, want %d", got, nSessions)
	}
	if got := metricValue(t, text, "iglrd_parses_total"); got < wantReqs {
		t.Errorf("parses_total = %d, want >= %d", got, wantReqs)
	}
	if got := metricValue(t, text, "iglrd_parse_seconds_count"); got < wantReqs {
		t.Errorf("parse_seconds_count = %d, want >= %d", got, wantReqs)
	}
	// Histogram exposition shape: cumulative buckets ending at +Inf.
	if !strings.Contains(text, `iglrd_parse_seconds_bucket{le="+Inf"} `) {
		t.Errorf("metrics missing +Inf bucket:\n%s", text)
	}

	// Post-load sanity: new sessions see the reloaded language set.
	status, body, err := post("/sessions", createSessionJSON{Language: "java-subset", Text: "class A { }"})
	if err != nil || status != http.StatusCreated {
		t.Fatalf("post-reload java-subset session: status %d err %v (%s)", status, err, body)
	}
}

// TestShardDistribution sanity-checks that session IDs spread across
// shards rather than collapsing onto one goroutine.
func TestShardDistribution(t *testing.T) {
	p := newShardPool(8, 64)
	defer p.close()
	counts := make([]int, 8)
	for i := 0; i < 1024; i++ {
		counts[p.indexFor(fmt.Sprintf("s%08x", i))]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("shard %d got no sessions out of 1024", i)
		}
	}
}
