package daemon

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	incremental "iglr"
)

// latencyBuckets are the parse-latency histogram upper bounds, in seconds.
// They span sub-100µs incremental reparses up to multi-second pathological
// batches; everything above the last bound lands in +Inf.
var latencyBuckets = [numLatencyBuckets]float64{
	.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5,
}

const numLatencyBuckets = 14

// histogram is a fixed-bucket, lock-free latency histogram in the
// Prometheus cumulative exposition shape.
type histogram struct {
	counts   [numLatencyBuckets + 1]atomic.Int64 // +1 for +Inf
	count    atomic.Int64
	sumNanos atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	secs := d.Seconds()
	i := 0
	for ; i < len(latencyBuckets); i++ {
		if secs <= latencyBuckets[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

func (h *histogram) write(w io.Writer, name string) {
	cum := int64(0)
	for i, bound := range latencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum)
	}
	cum += h.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, float64(h.sumNanos.Load())/1e9)
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}

func formatBound(b float64) string { return fmt.Sprintf("%g", b) }

// metrics is the daemon's instrumentation: plain atomic counters and
// gauges fed by the session/engine outcome structs, rendered in the
// Prometheus text exposition format at GET /metrics on the admin plane.
type metrics struct {
	configVersion atomic.Int64
	reloads       atomic.Int64
	reloadErrors  atomic.Int64

	sessionsOpen    atomic.Int64
	sessionsOpened  atomic.Int64
	sessionsClosed  atomic.Int64
	sessionsEvicted atomic.Int64
	sessionsDenied  atomic.Int64

	panics atomic.Int64

	edits        atomic.Int64
	parses       atomic.Int64
	parseErrors  atomic.Int64
	budgetTrips  atomic.Int64
	degraded     atomic.Int64
	isolated     atomic.Int64
	diagnostics  atomic.Int64
	parseLatency histogram

	// Overload protection: load shedding, queue behavior, the watchdog,
	// and pressure-mode eviction.
	shedQueueFull     atomic.Int64
	shedInflight      atomic.Int64
	shedMemory        atomic.Int64
	shedParsePending  atomic.Int64
	queueExpired      atomic.Int64
	watchdogCancels   atomic.Int64
	pressureEvictions atomic.Int64
	degradedAdmits    atomic.Int64
	queueWait         histogram

	batchRequests atomic.Int64
	batchFiles    atomic.Int64
	batchFailed   atomic.Int64

	restoreHits      atomic.Int64
	restoreMisses    atomic.Int64
	evictedToDisk    atomic.Int64
	journalRecords   atomic.Int64
	journalReplayed  atomic.Int64
	journalTorn      atomic.Int64
	snapshotsWritten atomic.Int64
	persistErrors    atomic.Int64
}

// observeParse folds one session parse outcome into the counters.
func (m *metrics) observeParse(out *incremental.Outcome, dur time.Duration, diags int) {
	m.parses.Add(1)
	m.parseLatency.observe(dur)
	if out.Err != nil {
		if errors.Is(out.Err, incremental.ErrBudget) {
			m.budgetTrips.Add(1)
		} else {
			m.parseErrors.Add(1)
		}
	}
	if out.Isolated {
		m.isolated.Add(1)
	}
	if out.Stats.BudgetPruned > 0 {
		m.degraded.Add(1)
	}
	m.diagnostics.Add(int64(diags))
}

// write renders every metric. One writer, no registry: the inventory is
// small and fixed, and the daemon has no third-party metric dependencies.
func (m *metrics) write(w io.Writer) {
	g := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	c := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}

	g("iglrd_config_version", "Version of the active config (bumps on every successful reload).", m.configVersion.Load())
	c("iglrd_config_reloads_total", "Successful config reloads.", m.reloads.Load())
	c("iglrd_config_reload_errors_total", "Rejected config reloads (active config unchanged).", m.reloadErrors.Load())

	g("iglrd_sessions_open", "Editing sessions currently open.", m.sessionsOpen.Load())
	c("iglrd_sessions_opened_total", "Sessions ever opened.", m.sessionsOpened.Load())
	c("iglrd_sessions_closed_total", "Sessions closed by the client.", m.sessionsClosed.Load())
	c("iglrd_sessions_evicted_total", "Sessions evicted after exceeding the idle TTL.", m.sessionsEvicted.Load())
	c("iglrd_sessions_denied_total", "Session creations denied by a quota.", m.sessionsDenied.Load())

	c("iglrd_recovered_panics_total", "Shard tasks that panicked and were recovered (the offending session is closed).", m.panics.Load())

	c("iglrd_edits_total", "Text edits applied across all sessions.", m.edits.Load())
	c("iglrd_parses_total", "Parses run (incremental and initial).", m.parses.Load())
	c("iglrd_parse_errors_total", "Parses that failed with a syntax error (non-tolerant sessions).", m.parseErrors.Load())
	c("iglrd_budget_trips_total", "Parses aborted by a resource budget.", m.budgetTrips.Load())
	c("iglrd_degraded_parses_total", "Parses that pruned ambiguity under the alternatives budget.", m.degraded.Load())
	c("iglrd_isolated_parses_total", "Tolerant parses that quarantined syntax errors (tier-1 isolation).", m.isolated.Load())
	c("iglrd_diagnostics_total", "Diagnostics reported across all parses.", m.diagnostics.Load())

	fmt.Fprintf(w, "# HELP iglrd_parse_seconds Parse latency, per session parse.\n# TYPE iglrd_parse_seconds histogram\n")
	m.parseLatency.write(w, "iglrd_parse_seconds")

	c("iglrd_shed_queue_full_total", "Requests shed with 429 because their shard's queue was full.", m.shedQueueFull.Load())
	c("iglrd_shed_inflight_total", "Requests shed with 429 by the global in-flight cap.", m.shedInflight.Load())
	c("iglrd_shed_memory_total", "Creations and restores shed with 503 by the memory hard watermark.", m.shedMemory.Load())
	c("iglrd_shed_parse_pending_total", "Edit batches accepted and durable whose reparse failed (503 parse_pending; the batch must not be re-sent).", m.shedParsePending.Load())
	c("iglrd_queue_expired_total", "Queued tasks dropped because their request deadline expired before a shard could run them.", m.queueExpired.Load())
	c("iglrd_watchdog_cancels_total", "Stalled parses cancelled by the shard watchdog (the session is closed).", m.watchdogCancels.Load())
	c("iglrd_pressure_evictions_total", "Sessions parked to disk by memory-pressure eviction (soft-watermark sweeps and hard-watermark relief).", m.pressureEvictions.Load())
	c("iglrd_degraded_admits_total", "Sessions admitted under the degraded pressure budget.", m.degradedAdmits.Load())

	fmt.Fprintf(w, "# HELP iglrd_queue_wait_seconds Time tasks spent waiting in a shard queue before running.\n# TYPE iglrd_queue_wait_seconds histogram\n")
	m.queueWait.write(w, "iglrd_queue_wait_seconds")

	c("iglrd_batch_requests_total", "One-shot POST /parse batch requests.", m.batchRequests.Load())
	c("iglrd_batch_files_total", "Files parsed by batch requests.", m.batchFiles.Load())
	c("iglrd_batch_failed_files_total", "Batch files that failed.", m.batchFailed.Load())

	c("iglrd_sessions_restored_total", "Sessions restored from disk on first touch after an eviction or restart.", m.restoreHits.Load())
	c("iglrd_session_restore_misses_total", "Restore attempts that fell back to 404 (missing, corrupt, or unreplayable artifacts).", m.restoreMisses.Load())
	c("iglrd_sessions_evicted_to_disk_total", "Idle evictions whose full session state was made durable first.", m.evictedToDisk.Load())
	c("iglrd_journal_records_total", "Write-ahead journal records appended (one per accepted edit batch).", m.journalRecords.Load())
	c("iglrd_journal_replayed_total", "Journal records replayed while restoring sessions.", m.journalReplayed.Load())
	c("iglrd_journal_torn_total", "Torn journal tails detected on restore (the crash-mid-append signature); the intact prefix was replayed.", m.journalTorn.Load())
	c("iglrd_snapshots_written_total", "Session snapshots written (first parse, journal rotation, eviction, shutdown).", m.snapshotsWritten.Load())
	c("iglrd_persist_errors_total", "Disk failures that disabled persistence for one session (the live session is unaffected).", m.persistErrors.Load())
}
