package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	incremental "iglr"
	"iglr/daemon/client"
	"iglr/internal/faultinject"

	"context"
	"os"
)

// pathologicalSrc is the ambiguity fixture shared with the budget tests:
// 120 bytes of expr-ambiguous input whose unbudgeted forest saturates the
// parse counter.
func pathologicalSrc(t *testing.T) string {
	t.Helper()
	b, err := os.ReadFile("../testdata/pathological_expr.txt")
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimSpace(string(b))
}

// checkShed verifies a client error is a well-formed shed: 429/503 with a
// machine-readable code and a positive retry hint. Anything else is a
// protocol violation under overload.
func checkShed(err error) error {
	var se *client.StatusError
	if !errors.As(err, &se) {
		return fmt.Errorf("non-status error under load: %w", err)
	}
	if !se.Shed() {
		return fmt.Errorf("non-shed failure under load: %w", se)
	}
	if se.Code == "" {
		return fmt.Errorf("shed response missing code: %w", se)
	}
	if se.RetryAfter <= 0 {
		return fmt.Errorf("shed response missing retry hint: %w", se)
	}
	return nil
}

// exprOutline is the correctness oracle: the committed-dag rendering of
// text parsed by an independent in-process session. The expr grammar is
// unambiguous, so budgets (including the degraded pressure budget) cannot
// change its tree.
func exprOutline(t *testing.T, text string) string {
	t.Helper()
	lang, ok := incremental.BundledLanguage("expr")
	if !ok {
		t.Fatal("expr not bundled")
	}
	s := incremental.NewSession(lang, text)
	root, err := s.Parse()
	if err != nil {
		t.Fatalf("oracle parse of %q: %v", text, err)
	}
	return incremental.FormatDag(lang, root)
}

// pollMetric scrapes the admin plane until the metric reaches at least
// want, or the deadline passes.
func pollMetric(t *testing.T, d *Daemon, name string, want int64, timeout time.Duration) int64 {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := metricValue(t, scrapeMetrics(t, d), name)
		if v >= want || time.Now().After(deadline) {
			return v
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestOverloadChaos is the overload acceptance harness: a small-watermark,
// slow-disk daemon is hammered by concurrent clients — half well-behaved
// expr editors, half ambiguity bombs that pile up live bytes — while a
// sampler watches the governor. The invariants:
//
//   - the accounted memory never exceeds the hard watermark, at any instant;
//   - every refusal is a proper shed (429/503, code, Retry-After), never a
//     500 or a hang;
//   - accepted requests return correct trees (byte-identical to an
//     independent parse), even when their session was pressure-evicted and
//     lazily restored in between;
//   - after the storm drains and the daemon shuts down, no goroutines leak.
//
// Run with -race; the value of the harness is the interleavings it forces.
func TestOverloadChaos(t *testing.T) {
	// A small session's accounted footprint is ~60 KiB (pooled arenas, GSS
	// chunks, parser stacks) and a budget-2 ambiguity bomb runs to a few
	// hundred KiB — the watermarks sit a handful of sessions up, so the
	// storm crosses soft quickly and brushes hard without any single
	// session exceeding it.
	const (
		hardBytes   = 12 << 20
		softBytes   = 512 << 10
		workers     = 12
		iters       = 4
		maxInflight = 8
	)
	baseline := runtime.NumGoroutine()

	// Slow disk: every fsync in the persistence layer stalls 1ms, so
	// pressure evictions contend with the parse traffic they relieve.
	faultinject.Activate(faultinject.NewPlan(faultinject.Trigger{
		Point: faultinject.PersistSync, Do: faultinject.ActDelay,
		Sleep: time.Millisecond, Every: 1,
	}))
	defer faultinject.Deactivate()

	cfg := Config{
		Bundled:         []string{"expr", "expr-ambiguous"},
		Persist:         Persist{Dir: t.TempDir()},
		Shards:          4,
		QueueDepth:      16,
		MaxInflight:     maxInflight,
		DefaultDeadline: Duration(10 * time.Second),
		MemorySoftBytes: softBytes,
		MemoryHardBytes: hardBytes,
		DefaultTenant:   Tenant{Budget: incremental.Budget{MaxAlternatives: 2}},
		PressureBudget:  incremental.Budget{MaxAlternatives: 1},
	}
	d := crashableDaemon(t, cfg)

	// Governor sampler: the hard watermark is an instantaneous ceiling,
	// not a between-sweeps average.
	var peak atomic.Int64
	samplerStop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for {
			select {
			case <-samplerStop:
				return
			case <-time.After(time.Millisecond):
			}
			if g := d.gov.Global(); g > peak.Load() {
				peak.Store(g)
			}
		}
	}()

	cl := client.New("http://"+d.Addr().String(), client.Options{
		Timeout: 10 * time.Second, MaxRetries: 8,
		BaseBackoff: 2 * time.Millisecond, MaxBackoff: 40 * time.Millisecond,
	})
	patho := pathologicalSrc(t)

	var (
		mu            sync.Mutex
		failures      []string
		shedExhausted int                   // requests that stayed shed through all retries
		verified      int                   // correctness checks that ran to completion
		pressureIDs   []string              // ambiguity sessions left open to build pressure
		pressureTrees = map[string]string{} // id -> outline recorded at creation
	)
	fail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	shed := func(err error) {
		if perr := checkShed(err); perr != nil {
			fail("%v", perr)
			return
		}
		mu.Lock()
		shedExhausted++
		mu.Unlock()
	}

	ctx := context.Background()
	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for it := 0; it < iters; it++ {
				if w%2 == 0 {
					// Correctness lane: unambiguous sessions, verified
					// against the oracle, closed when done.
					text := fmt.Sprintf("%c+%d*(b-%d)/c", 'a'+byte(w%26), it+1, w+1)
					s, err := cl.CreateSession(ctx, "expr", text, "", false)
					if err != nil {
						shed(err)
						continue
					}
					final := text + "+9"
					out, err := cl.Edits(ctx, s.ID, []client.Edit{{Offset: len(text), Insert: "+9"}})
					if err != nil {
						shed(err)
						cl.Close(ctx, s.ID)
						continue
					}
					if !out.Clean || out.TextLen != len(final) {
						fail("edit outcome for %q: %+v", final, out)
					}
					sub, err := cl.Subtree(ctx, s.ID, 0, len(final))
					if err != nil {
						shed(err)
						cl.Close(ctx, s.ID)
						continue
					}
					got, _ := sub["outline"].(string)
					if want := exprOutline(t, final); got != want {
						fail("wrong tree for %q under load:\n got: %s\nwant: %s", final, got, want)
					}
					mu.Lock()
					verified++
					mu.Unlock()
					cl.Close(ctx, s.ID)
				} else {
					// Pressure lane: ambiguity bombs left open and idle, so
					// live bytes climb and the janitor must evict to disk.
					s, err := cl.CreateSession(ctx, "expr-ambiguous", patho, "", false)
					if err != nil {
						shed(err)
						continue
					}
					sub, err := cl.Subtree(ctx, s.ID, 0, len(patho))
					if err != nil {
						shed(err)
						continue
					}
					outline, _ := sub["outline"].(string)
					mu.Lock()
					pressureIDs = append(pressureIDs, s.ID)
					if outline != "" {
						pressureTrees[s.ID] = outline
					}
					mu.Unlock()
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()

	for _, f := range failures {
		t.Error(f)
	}
	if verified == 0 {
		t.Error("no correctness check completed; the harness only ever shed")
	}
	t.Logf("chaos: %d trees verified, %d requests shed through all retries, %d pressure sessions",
		verified, shedExhausted, len(pressureIDs))

	// The open ambiguity sessions hold the fleet over the soft watermark;
	// the janitor (or hard-watermark relief during the storm) must have
	// parked idle sessions to disk.
	if v := pollMetric(t, d, "iglrd_pressure_evictions_total", 1, 5*time.Second); v < 1 {
		t.Errorf("pressure_evictions_total = %d, want >= 1 (global=%d soft=%d)",
			v, d.gov.Global(), softBytes)
	}

	// Byte-identical across a pressure episode: sessions whose tree we
	// recorded before the storm peaked must serve the same bytes now, even
	// though some were evicted to disk and lazily restored.
	checked := 0
	for id, want := range pressureTrees {
		if checked == 3 {
			break
		}
		checked++
		sub, err := cl.Subtree(ctx, id, 0, len(patho))
		if err != nil {
			shedErr := checkShed(err)
			if shedErr != nil {
				t.Errorf("post-storm subtree of %s: %v", id, shedErr)
			}
			continue
		}
		if got, _ := sub["outline"].(string); got != want {
			t.Errorf("session %s tree changed across the pressure episode:\n got: %s\nwant: %s", id, got, want)
		}
	}

	// Deterministic shed probe: drop the hard watermark below the live
	// fleet, so the very next create must shed — fast, with full hints.
	probeCfg := cfg
	probeCfg.MemorySoftBytes, probeCfg.MemoryHardBytes = 0, 1
	if _, err := d.Reload(probeCfg); err != nil {
		t.Fatalf("probe reload: %v", err)
	}
	probeStart := time.Now()
	resp, err := http.Post(dataURL(d, "/sessions"), "application/json",
		strings.NewReader(`{"language":"expr","text":"1+2"}`))
	if err != nil {
		t.Fatalf("probe create: %v", err)
	}
	var sj shedJSON
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("probe create above hard watermark: status %d, body %s", resp.StatusCode, body)
	}
	if el := time.Since(probeStart); el > time.Second {
		t.Errorf("shed took %v; load shedding must fail fast", el)
	}
	if err := json.Unmarshal(body, &sj); err != nil || sj.Code != shedCodeMemory || sj.RetryAfterMS <= 0 {
		t.Errorf("probe shed body = %s (err %v), want code %q with a retry hint", body, err, shedCodeMemory)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("probe shed response missing Retry-After header")
	}
	if _, err := d.Reload(cfg); err != nil {
		t.Fatalf("restore reload: %v", err)
	}

	close(samplerStop)
	<-samplerDone
	if p := peak.Load(); p > hardBytes {
		t.Errorf("governor accounting peaked at %d bytes, above the hard watermark %d", p, hardBytes)
	}

	// Drain: delete what's left (parked sessions restore first; that's
	// fine), shut down, and verify the storm leaked no goroutines.
	for _, id := range pressureIDs {
		cl.Close(ctx, id)
	}
	// Idle keep-alive conns (especially spares the Transport dialed but
	// never used: StateNew server-side) stall graceful Shutdown, so drop
	// them first.
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := d.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutine leak: %d now vs %d at baseline", runtime.NumGoroutine(), baseline)
			pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestPressureEvictRestoreByteIdentical: a session parked by the janitor's
// pressure sweep (not the idle TTL) restores byte-identically — same
// committed tree, same diagnostics — on its next touch.
func TestPressureEvictRestoreByteIdentical(t *testing.T) {
	d := testDaemon(t, Config{
		Bundled: []string{"*"},
		Persist: Persist{Dir: t.TempDir()},
		// A 1 KiB soft watermark puts any live session over it, so the
		// first pressure sweep after the idle grace parks the session.
		MemorySoftBytes: 1 << 10,
		DefaultTenant:   Tenant{Budget: incremental.Budget{MaxAlternatives: 2}},
	})

	var created sessionJSON
	if s := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr-ambiguous", Text: pathologicalSrc(t)}, &created); s != http.StatusCreated {
		t.Fatalf("create: status %d", s)
	}
	out := editOnce(t, d, created.ID, editJSON{Offset: 0, Insert: "7*"})
	var wantSub subtreeJSON
	if err := json.Unmarshal([]byte(shedTolerantGET(t,
		dataURL(d, fmt.Sprintf("/sessions/%s/subtree?offset=0&length=%d", created.ID, out.TextLen)))), &wantSub); err != nil {
		t.Fatalf("subtree decode: %v", err)
	}
	want := wantSub.Outline
	wantDiags := shedTolerantGET(t, dataURL(d, "/sessions/"+created.ID+"/diagnostics"))

	if v := pollMetric(t, d, "iglrd_pressure_evictions_total", 1, 5*time.Second); v < 1 {
		t.Fatalf("pressure_evictions_total = %d, want >= 1 (global=%d)", v, d.gov.Global())
	}

	// The next touch restores from disk. Everything must match, byte for
	// byte. With a 1 KiB soft watermark the janitor may re-park the
	// session between its restore and the read task running — that answer
	// is the designed retryable 503, so read like a real client and retry.
	var gotSub subtreeJSON
	if err := json.Unmarshal([]byte(shedTolerantGET(t,
		dataURL(d, fmt.Sprintf("/sessions/%s/subtree?offset=0&length=%d", created.ID, out.TextLen)))), &gotSub); err != nil {
		t.Fatalf("subtree decode: %v", err)
	}
	if gotSub.Outline != want {
		t.Fatalf("pressure evict/restore diverged:\nlive:\n%s\nrestored:\n%s", want, gotSub.Outline)
	}
	if got := shedTolerantGET(t, dataURL(d, "/sessions/"+created.ID+"/diagnostics")); got != wantDiags {
		t.Fatalf("diagnostics diverged across pressure episode:\nlive: %s\nrestored: %s", wantDiags, got)
	}
	m := scrapeMetrics(t, d)
	if v := metricValue(t, m, "iglrd_sessions_restored_total"); v < 1 {
		t.Fatalf("restored_total = %d, want >= 1", v)
	}
}

// shedTolerantGET fetches url like a well-behaved client: 429/503 sheds
// (e.g. the janitor re-parking a just-restored session before its read
// task ran) are retried until the deadline; any other non-200 fails.
func shedTolerantGET(t *testing.T, url string) string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			return string(b)
		case resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable:
			if time.Now().After(deadline) {
				t.Fatalf("GET %s: still shedding at deadline: status %d, body %s", url, resp.StatusCode, b)
			}
			time.Sleep(20 * time.Millisecond)
		default:
			t.Fatalf("GET %s: status %d, body %s", url, resp.StatusCode, b)
		}
	}
}

// TestQueueDeadlineDrop: work whose deadline expires while queued behind a
// wedged shard is dropped — shed with code "deadline", counted, and never
// parsed — and a full queue sheds immediately with 429 queue_full.
func TestQueueDeadlineDrop(t *testing.T) {
	const depth = 8
	d := testDaemon(t, Config{
		Bundled:         []string{"expr"},
		Shards:          1,
		QueueDepth:      depth,
		DefaultDeadline: Duration(150 * time.Millisecond),
	})
	created := createExpr(t, d, "1+2")
	parsesBefore := metricValue(t, scrapeMetrics(t, d), "iglrd_parses_total")

	// Wedge the only shard: every further data-plane task queues behind
	// this until release.
	release := make(chan struct{})
	wedged := make(chan struct{})
	go d.pool.run(context.Background(), 0, func() { close(wedged); <-release })
	<-wedged
	defer close(release)

	// Phase 1: one edit, queued, never served — its deadline expires first.
	resp, err := http.Post(dataURL(d, "/sessions/"+created.ID+"/edits"), "application/json",
		strings.NewReader(`{"edits":[{"offset":3,"insert":"*4"}]}`))
	if err != nil {
		t.Fatalf("edit: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired-in-queue edit: status %d, body %s", resp.StatusCode, body)
	}
	var sj shedJSON
	if err := json.Unmarshal(body, &sj); err != nil || sj.Code != shedCodeDeadline || sj.RetryAfterMS <= 0 {
		t.Fatalf("expired-in-queue body = %s, want code %q with a retry hint", body, shedCodeDeadline)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("expired-in-queue response missing Retry-After")
	}
	m := scrapeMetrics(t, d)
	if v := metricValue(t, m, "iglrd_queue_expired_total"); v != 1 {
		t.Fatalf("queue_expired_total = %d, want 1", v)
	}
	if v := metricValue(t, m, "iglrd_parses_total"); v != parsesBefore {
		t.Fatalf("expired work was parsed anyway: parses %d -> %d", parsesBefore, v)
	}

	// Phase 2: fill the queue, then one more — shed with 429 queue_full.
	var fillers sync.WaitGroup
	for i := 0; i < depth; i++ {
		fillers.Add(1)
		go func() {
			defer fillers.Done()
			resp, err := http.Get(dataURL(d, "/sessions/"+created.ID))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	// Wait for all depth fillers to be sitting in the queue.
	deadline := time.Now().Add(2 * time.Second)
	for len(d.pool.tasks[0]) < depth && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := len(d.pool.tasks[0]); n < depth {
		t.Fatalf("queue filled to %d of %d", n, depth)
	}
	resp, err = http.Get(dataURL(d, "/sessions/"+created.ID))
	if err != nil {
		t.Fatalf("overflow request: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow past a full queue: status %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sj); err != nil || sj.Code != shedCodeQueueFull || sj.RetryAfterMS <= 0 {
		t.Fatalf("queue-full body = %s, want code %q with a retry hint", body, shedCodeQueueFull)
	}
	if v := metricValue(t, scrapeMetrics(t, d), "iglrd_shed_queue_full_total"); v < 1 {
		t.Fatalf("shed_queue_full_total = %d, want >= 1", v)
	}
	fillers.Wait()
}

// TestWatchdogCancelsStalledShard: a parse wedged mid-round (injected 3s
// stall, stall_timeout 40ms) is cancelled by the watchdog well before the
// stall would have ended; the poisoned session is closed, the caller gets
// a shed 503 "stalled", and the shard keeps serving.
func TestWatchdogCancelsStalledShard(t *testing.T) {
	d := testDaemon(t, Config{
		Bundled:      []string{"expr", "expr-ambiguous"},
		Shards:       1,
		StallTimeout: Duration(40 * time.Millisecond),
	})

	faultinject.Activate(faultinject.NewPlan(faultinject.Trigger{
		Point: faultinject.ParseRound, Do: faultinject.ActDelay,
		Sleep: 3 * time.Second, After: 1,
	}))
	defer faultinject.Deactivate()

	start := time.Now()
	resp, err := http.Post(dataURL(d, "/sessions"), "application/json",
		strings.NewReader(fmt.Sprintf(`{"language":"expr-ambiguous","text":%q}`, pathologicalSrc(t))))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stalled create: status %d, body %s", resp.StatusCode, body)
	}
	var sj shedJSON
	if err := json.Unmarshal(body, &sj); err != nil || sj.Code != shedCodeStalled {
		t.Fatalf("stalled body = %s, want code %q", body, shedCodeStalled)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("stalled parse answered after %v; the watchdog did not cancel it", elapsed)
	}
	m := scrapeMetrics(t, d)
	if v := metricValue(t, m, "iglrd_watchdog_cancels_total"); v != 1 {
		t.Fatalf("watchdog_cancels_total = %d, want 1", v)
	}
	if v := metricValue(t, m, "iglrd_sessions_open"); v != 0 {
		t.Fatalf("poisoned session still open: sessions_open = %d", v)
	}

	// The shard survives: with the stall plan cleared, parsing works.
	faultinject.Deactivate()
	created := createExpr(t, d, "1+2*3")
	if !created.Outcome.Clean {
		t.Fatalf("post-stall create not clean: %+v", created.Outcome)
	}
}

// TestQuotaRetryAfter: per-tenant session-quota refusals are proper sheds —
// 429 with code "quota", a Retry-After header, and the structured body.
func TestQuotaRetryAfter(t *testing.T) {
	d := testDaemon(t, Config{
		Bundled:       []string{"expr"},
		DefaultTenant: Tenant{MaxSessions: 1},
	})
	createExpr(t, d, "1+2")

	resp, err := http.Post(dataURL(d, "/sessions"), "application/json",
		strings.NewReader(`{"language":"expr","text":"3+4"}`))
	if err != nil {
		t.Fatalf("second create: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota create: status %d, body %s", resp.StatusCode, body)
	}
	var sj shedJSON
	if err := json.Unmarshal(body, &sj); err != nil || sj.Code != shedCodeQuota || sj.RetryAfterMS <= 0 {
		t.Fatalf("quota body = %s, want code %q with a retry hint", body, shedCodeQuota)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota response missing Retry-After")
	}
}

// TestHealthzDegradedAndOverloaded: /healthz tracks the governor — ready
// below the soft watermark, degraded (still 200, still ok) under pressure,
// 503 "overloaded" at the hard watermark; and an overloaded daemon refuses
// new sessions with a memory shed.
func TestHealthzDegradedAndOverloaded(t *testing.T) {
	base := Config{Bundled: []string{"expr"}}
	d := testDaemon(t, base)

	health := func() (int, map[string]any) {
		resp, err := http.Get(adminURL(d, "/healthz"))
		if err != nil {
			t.Fatalf("healthz: %v", err)
		}
		defer resp.Body.Close()
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	if st, body := health(); st != http.StatusOK || body["state"] != "ready" || body["ok"] != true {
		t.Fatalf("idle healthz = %d %v, want 200 ready", st, body)
	}

	createExpr(t, d, "1+2*3") // a few KB on the governor's books

	pressured := base
	pressured.MemorySoftBytes = 1
	if _, err := d.Reload(pressured); err != nil {
		t.Fatalf("reload soft=1: %v", err)
	}
	if st, body := health(); st != http.StatusOK || body["state"] != "degraded" || body["ok"] != true {
		t.Fatalf("pressure healthz = %d %v, want 200 degraded", st, body)
	}

	overloaded := base
	overloaded.MemorySoftBytes, overloaded.MemoryHardBytes = 1, 2
	if _, err := d.Reload(overloaded); err != nil {
		t.Fatalf("reload hard=2: %v", err)
	}
	st, body := health()
	if st != http.StatusServiceUnavailable || body["state"] != "overloaded" || body["ok"] != false {
		t.Fatalf("overloaded healthz = %d %v, want 503 overloaded", st, body)
	}
	if mb, _ := body["memory_bytes"].(float64); mb <= 0 {
		t.Fatalf("healthz memory_bytes = %v, want > 0", body["memory_bytes"])
	}

	// Above the hard watermark, session creation sheds.
	resp, err := http.Post(dataURL(d, "/sessions"), "application/json",
		strings.NewReader(`{"language":"expr","text":"3+4"}`))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var sj shedJSON
	if resp.StatusCode != http.StatusServiceUnavailable ||
		json.Unmarshal(raw, &sj) != nil || sj.Code != shedCodeMemory {
		t.Fatalf("overloaded create = %d %s, want 503 %q", resp.StatusCode, raw, shedCodeMemory)
	}

	if _, err := d.Reload(base); err != nil {
		t.Fatalf("reload back: %v", err)
	}
	if st, body := health(); st != http.StatusOK || body["state"] != "ready" {
		t.Fatalf("recovered healthz = %d %v, want 200 ready", st, body)
	}
}
