package daemon

import (
	"encoding/json"
	"testing"
)

// TestConfigThreadsParseWorkers: the batch policy's parse_workers knob
// rides the daemon's JSON config straight into engine.Policy, round-trip
// intact, alongside its lex_workers sibling.
func TestConfigThreadsParseWorkers(t *testing.T) {
	raw := []byte(`{
		"bundled": ["csub"],
		"batch": {"workers": 2, "lex_workers": 4, "parse_workers": 8}
	}`)
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Batch.ParseWorkers != 8 || cfg.Batch.LexWorkers != 4 {
		t.Fatalf("batch policy = %+v", cfg.Batch)
	}

	out, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.Batch.ParseWorkers != 8 {
		t.Fatalf("parse_workers lost in round-trip: %+v", back.Batch)
	}
}
