package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	incremental "iglr"
	"iglr/internal/faultinject"
	"iglr/internal/sesscodec"
)

// Session durability. When Config.Persist.Dir is set, every session is
// continuously persisted as three files named by its ID:
//
//	<id>.json    immutable metadata (language name, tenant, tolerance)
//	<id>.ccsess  the last snapshot artifact (incremental.Snapshot), tagged
//	             with the journal sequence it covers
//	<id>.wal     the write-ahead edit journal since that snapshot
//
// The protocol is journal-before-apply: an accepted edit batch is framed,
// appended, and fsynced before the first edit touches the document, so any
// state a client has seen acknowledged is on disk. Snapshots are written
// with temp-file-plus-rename (never a partial artifact under the final
// name) and carry the sequence of the last journal record they include;
// replay after a crash skips covered records, which makes the journal
// truncation that follows a snapshot an optimization rather than a
// correctness requirement.
//
// Every disk failure degrades, never corrupts: a persist error disables
// persistence for that one session and deletes its artifacts (a client may
// have to re-create it after a restart — stale-and-absent, never wrong),
// and an unreadable artifact at restore time is removed and reported as a
// 404. The daemon never fails to start because of persistence state.

// defaultJournalMaxBytes is the snapshot-rotation threshold when the
// config does not set one.
const defaultJournalMaxBytes = 256 << 10

// persistStore is the daemon-wide durability configuration: the directory
// and the journal rotation threshold. Per-session state lives in
// sessPersist on the session's shard.
type persistStore struct {
	dir        string
	journalMax int64
}

// newPersistStore builds the store, creating the directory; nil when
// persistence is disabled.
func newPersistStore(p Persist) (*persistStore, error) {
	if p.Dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(p.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: persist dir: %w", err)
	}
	max := p.JournalMaxBytes
	if max <= 0 {
		max = defaultJournalMaxBytes
	}
	return &persistStore{dir: p.Dir, journalMax: max}, nil
}

func (ps *persistStore) metaPath(id string) string { return filepath.Join(ps.dir, id+".json") }
func (ps *persistStore) snapPath(id string) string {
	return filepath.Join(ps.dir, id+sesscodec.FileExt)
}
func (ps *persistStore) walPath(id string) string { return filepath.Join(ps.dir, id+".wal") }

// removeArtifacts deletes all of a session's files, best-effort.
func (ps *persistStore) removeArtifacts(id string) {
	os.Remove(ps.walPath(id))
	os.Remove(ps.snapPath(id))
	os.Remove(ps.metaPath(id))
}

// writeFileAtomic writes data under path via temp-file-plus-rename, so a
// reader (or a crash) never observes a partial file. When sync is set the
// data is fsynced before the rename and the directory after it, making the
// replacement durable, not just atomic.
func (ps *persistStore) writeFileAtomic(path string, data []byte, sync bool) error {
	f, err := os.CreateTemp(ps.dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if sync {
		if err := persistFault(faultinject.PersistSync, path); err == nil {
			err = f.Sync()
		}
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if sync {
		if dir, err := os.Open(ps.dir); err == nil {
			dir.Sync()
			dir.Close()
		}
	}
	return nil
}

// scanSessions inventories the directory at startup: the highest numeric
// session ID on disk (the registry's ID floor, so restarted daemons never
// reissue a persisted ID to a new session) and how many session meta
// records exist.
func (ps *persistStore) scanSessions() (floor uint64, count int) {
	entries, err := os.ReadDir(ps.dir)
	if err != nil {
		return 0, 0
	}
	for _, e := range entries {
		id, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok {
			continue
		}
		n, ok := sessionSeqFromID(id)
		if !ok {
			continue
		}
		count++
		if n > floor {
			floor = n
		}
	}
	return floor, count
}

// validSessionID reports whether id has the registry's "s%08x" shape.
// Restore paths derive file names from request-supplied IDs; anything
// else (path separators, dots) must never reach the filesystem.
func validSessionID(id string) bool {
	if len(id) != 9 || id[0] != 's' {
		return false
	}
	for i := 1; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// sessionSeqFromID recovers the numeric sequence from a session ID.
func sessionSeqFromID(id string) (uint64, bool) {
	if !validSessionID(id) {
		return 0, false
	}
	n, err := strconv.ParseUint(id[1:], 16, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// sessPersist is one session's durability state. Shard-goroutine-owned,
// like the session fields it sits next to.
type sessPersist struct {
	store *persistStore
	// wal is the open journal, nil until the first append (and after the
	// session is parked or persistence breaks).
	wal      *os.File
	walBytes int64
	// seq is the sequence of the last journaled record; snapSeq is the
	// sequence the on-disk snapshot covers. seq == snapSeq means the
	// snapshot alone is complete.
	seq      uint64
	snapSeq  uint64
	haveSnap bool
	// broken latches a disk failure: persistence is off for this session,
	// its artifacts are gone, and the live session carries on.
	broken bool
}

// sessionMetaJSON is the immutable per-session metadata record.
type sessionMetaJSON struct {
	Language string `json:"language"`
	Tenant   string `json:"tenant,omitempty"`
	Tolerant bool   `json:"tolerant,omitempty"`
}

// persistFault consults the fault-injection plan for the persistence
// layer's points, turning ActError into an injected disk error and
// honoring ActDelay as slow disk I/O (the overload harness stalls parks
// this way to pile work up behind a shard).
func persistFault(p faultinject.Point, detail string) error {
	if !faultinject.Enabled() {
		return nil
	}
	switch act, sleep := faultinject.FireTimed(p, detail); act {
	case faultinject.ActError:
		return fmt.Errorf("faultinject: injected %s failure", p)
	case faultinject.ActDelay:
		time.Sleep(sleep)
	}
	return nil
}

// ---- shard-side operations ----------------------------------------------
//
// Everything below that touches a *session runs on its shard goroutine.

// persistFail disables persistence for sess after a disk failure and
// removes its artifacts: a half-durable session must never be restored
// stale after a restart. The live session is unaffected.
func (d *Daemon) persistFail(sess *session, op string, err error) {
	p := sess.p
	if p == nil || p.broken {
		return
	}
	p.broken = true
	d.mets.persistErrors.Add(1)
	d.Logf("daemon: session %s persistence disabled (%s: %v)", sess.id, op, err)
	if p.wal != nil {
		p.wal.Close()
		p.wal = nil
	}
	p.store.removeArtifacts(sess.id)
}

// persistAfterParse runs after every successful shard parse: it adopts a
// new session into the persistence layer (meta record + first snapshot)
// and rolls an oversized journal into a fresh snapshot.
func (d *Daemon) persistAfterParse(sess *session) {
	if d.persist == nil {
		return
	}
	if sess.p == nil {
		sess.p = &sessPersist{store: d.persist}
		meta, err := json.Marshal(sessionMetaJSON{
			Language: sess.langName, Tenant: sess.tenant, Tolerant: sess.tolerant,
		})
		if err == nil {
			err = d.persist.writeFileAtomic(d.persist.metaPath(sess.id), meta, true)
		}
		if err != nil {
			d.persistFail(sess, "meta", err)
			return
		}
	}
	p := sess.p
	if p.broken || (p.haveSnap && p.walBytes < p.store.journalMax) {
		return
	}
	if err := d.writeSnapshot(sess); err != nil {
		d.persistFail(sess, "snapshot", err)
	}
}

// persistAppend journals an accepted edit batch. Called after validation
// and before the first edit is applied: once applied, the client may see
// state the disk does not have. A failure degrades persistence for the
// session; the edits are still applied.
func (d *Daemon) persistAppend(sess *session, edits []editJSON) {
	p := sess.p
	if p == nil || p.broken {
		return
	}
	if err := d.appendRecord(sess, edits); err != nil {
		d.persistFail(sess, "journal append", err)
	}
}

func (d *Daemon) appendRecord(sess *session, edits []editJSON) error {
	p := sess.p
	if p.wal == nil {
		f, err := os.OpenFile(p.store.walPath(sess.id), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		p.wal = f
	}
	rec := sesscodec.JournalRecord{Seq: p.seq + 1, Edits: make([]sesscodec.JournalEdit, len(edits))}
	for i, e := range edits {
		rec.Edits[i] = sesscodec.JournalEdit{Offset: e.Offset, Remove: e.Remove, Insert: e.Insert}
	}
	frame := sesscodec.AppendJournalRecord(nil, rec)
	if err := persistFault(faultinject.PersistAppend, sess.id); err != nil {
		return err
	}
	if _, err := p.wal.Write(frame); err != nil {
		return err
	}
	if err := persistFault(faultinject.PersistSync, sess.id); err != nil {
		return err
	}
	if err := p.wal.Sync(); err != nil {
		return err
	}
	p.seq = rec.Seq
	p.walBytes += int64(len(frame))
	d.mets.journalRecords.Add(1)
	return nil
}

// writeSnapshot captures sess's full state (committed tree, pending
// edits) as the session's snapshot artifact, tagged with the journal
// sequence it covers, then truncates the now-covered journal.
func (d *Daemon) writeSnapshot(sess *session) error {
	p := sess.p
	if err := persistFault(faultinject.PersistSnapshot, sess.id); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := sess.s.SnapshotTagged(&buf, p.seq); err != nil {
		return err
	}
	if err := p.store.writeFileAtomic(p.store.snapPath(sess.id), buf.Bytes(), true); err != nil {
		return err
	}
	p.haveSnap = true
	p.snapSeq = p.seq
	d.mets.snapshotsWritten.Add(1)
	// The snapshot covers every journaled record, so dropping the journal
	// is an optimization; a crash between the rename above and the
	// truncate below double-applies nothing (replay skips by sequence).
	if p.wal != nil {
		if err := p.wal.Truncate(0); err == nil {
			p.walBytes = 0
		}
	} else if p.walBytes > 0 {
		if err := os.Remove(p.store.walPath(sess.id)); err == nil || os.IsNotExist(err) {
			p.walBytes = 0
		}
	}
	return nil
}

// persistPark makes sess fully durable and releases its file handles, so
// the in-memory session can be dropped (idle eviction, shutdown) and
// restored later. Reports whether the state is safely on disk.
func (d *Daemon) persistPark(sess *session, when string) bool {
	p := sess.p
	if p == nil || p.broken {
		return false
	}
	if !p.haveSnap || p.snapSeq != p.seq {
		if err := d.writeSnapshot(sess); err != nil {
			d.persistFail(sess, when+" snapshot", err)
			return false
		}
	}
	if p.wal != nil {
		p.wal.Close()
		p.wal = nil
	}
	return true
}

// persistRemove deletes sess's artifacts (client DELETE, panic
// containment): an explicitly closed or poisoned session must not
// resurrect after a restart.
func (d *Daemon) persistRemove(sess *session) {
	p := sess.p
	if p == nil {
		return
	}
	if p.wal != nil {
		p.wal.Close()
		p.wal = nil
	}
	if !p.broken {
		p.store.removeArtifacts(sess.id)
		p.broken = true
	}
}

// persistAll parks every live session at shutdown, shard by shard, so a
// graceful restart restores without journal replay.
func (d *Daemon) persistAll(ctx context.Context) {
	if d.persist == nil {
		return
	}
	for i := range d.pool.tasks {
		sessions := d.sessions.byShard(i)
		if len(sessions) == 0 {
			continue
		}
		d.pool.run(ctx, i, func() {
			for _, sess := range sessions {
				if sess.closed {
					continue
				}
				d.persistPark(sess, "shutdown")
			}
		})
	}
}

// ---- restore -------------------------------------------------------------

// restoreSession rebuilds a session from its on-disk artifacts: snapshot
// load, then replay of every journal record the snapshot does not cover,
// each batch applied and parsed exactly as the live daemon did. Any
// unusable state fails the restore, removes the artifacts, and reports a
// miss — the caller 404s and the client re-creates the session from
// source. shed is true when the rebuilt session's footprint would push
// the memory governor past its hard watermark: the artifacts stay intact
// and the caller 503s with a retry hint instead of 404ing. Runs on the
// request goroutine; the session is private until restoreAdd publishes it.
func (d *Daemon) restoreSession(id string) (sess *session, ok, shed bool) {
	ps := d.persist
	seqID, ok := sessionSeqFromID(id)
	if !ok {
		return nil, false, false
	}
	metaRaw, err := os.ReadFile(ps.metaPath(id))
	if err != nil {
		return nil, false, false // never persisted: a plain 404, not a miss
	}
	var meta sessionMetaJSON
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		d.restoreFailed(id, "meta", err)
		return nil, false, false
	}
	sn := d.snap.Load()
	lang, ok := sn.langs[meta.Language]
	if !ok {
		// Not an artifact problem: the language left the config. Keep the
		// files — a reload may bring it back.
		d.mets.restoreMisses.Add(1)
		d.Logf("daemon: session %s not restored: language %q not in active config", id, meta.Language)
		return nil, false, false
	}
	snapRaw, err := os.ReadFile(ps.snapPath(id))
	if err != nil {
		d.restoreFailed(id, "snapshot", err)
		return nil, false, false
	}
	ten := sn.tenant(meta.Tenant)
	s, tag, err := incremental.RestoreSessionTagged(bytes.NewReader(snapRaw), lang,
		incremental.WithBudget(ten.Budget))
	if err != nil {
		d.restoreFailed(id, "snapshot decode", err)
		return nil, false, false
	}

	seq := tag
	walBytes := int64(0)
	if walRaw, err := os.ReadFile(ps.walPath(id)); err == nil && len(walRaw) > 0 {
		recs, torn := sesscodec.DecodeJournal(walRaw)
		for _, rec := range recs {
			if rec.Seq <= tag {
				continue // already inside the snapshot
			}
			if err := replayRecord(s, rec, meta.Tolerant); err != nil {
				d.restoreFailed(id, "journal replay", err)
				return nil, false, false
			}
			seq = rec.Seq
			d.mets.journalReplayed.Add(1)
		}
		if torn {
			// The crash-mid-append signature: everything before the torn
			// tail was fsynced and is now replayed. Cut the tail off so
			// future appends extend an intact journal; the framing is
			// canonical, so re-encoding the intact records gives the exact
			// intact prefix length.
			d.mets.journalTorn.Add(1)
			var intact []byte
			for _, rec := range recs {
				intact = sesscodec.AppendJournalRecord(intact, rec)
			}
			if err := os.Truncate(ps.walPath(id), int64(len(intact))); err != nil {
				d.restoreFailed(id, "journal truncate", err)
				return nil, false, false
			}
			walBytes = int64(len(intact))
		} else {
			walBytes = int64(len(walRaw))
		}
	}

	sess = &session{
		id:       id,
		tenant:   meta.Tenant,
		langName: meta.Language,
		lang:     lang,
		shard:    d.pool.indexFor(id),
		tolerant: meta.Tolerant,
		s:        s,
		lastUsed: time.Now(),
		p: &sessPersist{
			store: ps, walBytes: walBytes, seq: seq, snapSeq: tag, haveSnap: true,
		},
	}
	// Reviving the session adds its full footprint back to the fleet; a
	// charge the hard watermark refuses keeps it parked (shed, not lost).
	fp := s.MemoryFootprint()
	if !d.gov.TryCharge(sess.shard, fp) {
		return nil, false, true
	}
	sess.memBytes = fp
	d.sessions.floorSeq(seqID)
	winner, inserted := d.sessions.restoreAdd(sess)
	if !inserted {
		// Two requests raced the restore; the published session wins and
		// this copy (which opened no files) is garbage-collected — and its
		// charge returned.
		d.gov.Release(sess.shard, fp)
		return winner, true, false
	}
	d.mets.sessionsOpen.Add(1)
	d.mets.restoreHits.Add(1)
	d.Logf("daemon: session %s restored from disk (%s, seq %d)", id, meta.Language, seq)
	return sess, true, false
}

// restoreFailed counts a failed restore and removes the artifacts so the
// unusable state is never retried: the client sees a 404 and re-creates
// the session from source — absent, never wrong.
func (d *Daemon) restoreFailed(id, op string, err error) {
	d.mets.restoreMisses.Add(1)
	d.Logf("daemon: session %s restore failed (%s), falling back: %v", id, op, err)
	d.persist.removeArtifacts(id)
}

// replayRecord re-applies one journaled edit batch exactly as the live
// daemon did: validate against the running length, apply, parse. A parse
// outcome error (syntax error, budget trip) is data, as it was live; only
// an edit that no longer fits the document fails the replay.
func replayRecord(s *incremental.Session, rec sesscodec.JournalRecord, tolerant bool) error {
	n := s.Len()
	for i, e := range rec.Edits {
		if e.Offset < 0 || e.Remove < 0 || e.Offset > n || e.Remove > n-e.Offset {
			return fmt.Errorf("record %d edit %d: range [%d,+%d) outside document of %d bytes",
				rec.Seq, i, e.Offset, e.Remove, n)
		}
		n += len(e.Insert) - e.Remove
	}
	for _, e := range rec.Edits {
		s.Edit(e.Offset, e.Remove, e.Insert)
	}
	if tolerant {
		s.Do(nil, incremental.Tolerant())
	} else {
		s.Do(nil)
	}
	return nil
}
