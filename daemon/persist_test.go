package daemon

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"iglr/internal/faultinject"
)

// persistConfig is the test daemon config with durability on: every
// bundled language served, persistence in a per-test temp dir.
func persistConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Bundled: []string{"*"},
		Persist: Persist{Dir: t.TempDir()},
	}
}

// crashDaemon kills a daemon the way kill -9 looks to the disk: listeners
// are closed hard and no shutdown snapshots are written. The persist
// directory is left exactly as the running daemon's fsyncs made it.
func crashDaemon(t *testing.T, d *Daemon) {
	t.Helper()
	if d.dataSrv != nil {
		d.dataSrv.Close()
		d.adminSrv.Close()
	}
	d.stopJanitor.Do(func() { close(d.janitorStop) })
	<-d.janitorDone
	d.pool.close()
}

// crashableDaemon is testDaemon without the graceful-shutdown cleanup;
// the caller crashes it (or it is leaked to the test's end, harmlessly).
func crashableDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.AdminListen == "" {
		cfg.AdminListen = "127.0.0.1:0"
	}
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	d.Logf = t.Logf
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return d
}

// outline fetches the committed-tree rendering of the session's whole
// document — the byte-identical recovery oracle.
func outline(t *testing.T, d *Daemon, id string, textLen int) string {
	t.Helper()
	var sub subtreeJSON
	url := dataURL(d, fmt.Sprintf("/sessions/%s/subtree?offset=0&length=%d", id, textLen))
	if status := doJSON(t, "GET", url, nil, &sub); status != http.StatusOK {
		t.Fatalf("subtree: status %d", status)
	}
	return sub.Outline
}

// createExpr opens an expr session and returns its creation response.
func createExpr(t *testing.T, d *Daemon, text string) sessionJSON {
	t.Helper()
	var created sessionJSON
	status := doJSON(t, "POST", dataURL(d, "/sessions"),
		createSessionJSON{Language: "expr", Text: text}, &created)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	return created
}

// editOnce applies one edit batch and returns the parse outcome.
func editOnce(t *testing.T, d *Daemon, id string, edits ...editJSON) outcomeJSON {
	t.Helper()
	var out outcomeJSON
	status := doJSON(t, "POST", dataURL(d, "/sessions/"+id+"/edits"),
		editsRequestJSON{Edits: edits}, &out)
	if status != http.StatusOK {
		t.Fatalf("edits: status %d", status)
	}
	return out
}

// TestPersistGracefulRestart: a clean shutdown parks every session; a new
// daemon over the same directory restores them byte-identically, with no
// journal replay needed.
func TestPersistGracefulRestart(t *testing.T) {
	cfg := persistConfig(t)
	d1 := crashableDaemon(t, cfg)
	created := createExpr(t, d1, "1+2*3")
	out := editOnce(t, d1, created.ID, editJSON{Offset: 5, Remove: 0, Insert: "+(4-5)"})
	want := outline(t, d1, created.ID, out.TextLen)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	d2 := testDaemon(t, cfg)
	if got := outline(t, d2, created.ID, out.TextLen); got != want {
		t.Fatalf("restored tree diverged:\nlive:\n%s\nrestored:\n%s", want, got)
	}
	m := scrapeMetrics(t, d2)
	if v := metricValue(t, m, "iglrd_sessions_restored_total"); v != 1 {
		t.Fatalf("restored_total = %d, want 1", v)
	}
	if v := metricValue(t, m, "iglrd_journal_replayed_total"); v != 0 {
		t.Fatalf("graceful restart replayed %d journal records, want 0", v)
	}
}

// TestPersistCrashRecovery: the tentpole property. The daemon dies without
// any shutdown path (kill -9 analog) after acknowledging several edit
// batches; a new daemon restores the session from its snapshot plus
// journal replay, and the committed tree is byte-identical to the one the
// dead daemon last served.
func TestPersistCrashRecovery(t *testing.T) {
	cfg := persistConfig(t)
	d1 := crashableDaemon(t, cfg)
	text := "1+2*3"
	created := createExpr(t, d1, text)
	var out outcomeJSON
	for i := 0; i < 4; i++ {
		pre := fmt.Sprintf("%d*(", i+1)
		out = editOnce(t, d1, created.ID,
			editJSON{Offset: 0, Remove: 0, Insert: pre},
			editJSON{Offset: len(pre) + len(text), Remove: 0, Insert: ")"})
		if out.Error != "" {
			t.Fatalf("edit %d: %s", i, out.Error)
		}
		text = pre + text + ")"
	}
	want := outline(t, d1, created.ID, out.TextLen)
	crashDaemon(t, d1)

	d2 := testDaemon(t, cfg)
	if got := outline(t, d2, created.ID, out.TextLen); got != want {
		t.Fatalf("recovered tree diverged:\nlive:\n%s\nrecovered:\n%s", want, got)
	}
	m := scrapeMetrics(t, d2)
	if v := metricValue(t, m, "iglrd_sessions_restored_total"); v != 1 {
		t.Fatalf("restored_total = %d, want 1", v)
	}
	if v := metricValue(t, m, "iglrd_journal_replayed_total"); v != 4 {
		t.Fatalf("journal_replayed_total = %d, want 4", v)
	}

	// The restored session keeps editing — and those edits are durable in
	// turn across a second crash.
	out = editOnce(t, d2, created.ID, editJSON{Offset: 0, Remove: 2, Insert: "9*"})
	if out.Error != "" {
		t.Fatalf("post-restore edit: %s", out.Error)
	}
	want = outline(t, d2, created.ID, out.TextLen)
	crashDaemon(t, d2)
	d3 := testDaemon(t, cfg)
	if got := outline(t, d3, created.ID, out.TextLen); got != want {
		t.Fatalf("second recovery diverged:\nlive:\n%s\nrecovered:\n%s", want, got)
	}
}

// TestPersistTornJournal: a crash mid-append leaves a torn record at the
// journal's tail. Recovery replays the intact prefix, counts the tear,
// truncates it, and the session stays consistent across further edits and
// another restart.
func TestPersistTornJournal(t *testing.T) {
	cfg := persistConfig(t)
	d1 := crashableDaemon(t, cfg)
	created := createExpr(t, d1, "1+2*3")
	out := editOnce(t, d1, created.ID, editJSON{Offset: 0, Remove: 0, Insert: "7+"})
	want := outline(t, d1, created.ID, out.TextLen)
	crashDaemon(t, d1)

	// Tear the tail: half a frame of a would-be next record.
	walPath := filepath.Join(cfg.Persist.Dir, created.ID+".wal")
	intact, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x20, 0x00, 0x00, 0x00, 0xde, 0xad})
	f.Close()

	d2 := testDaemon(t, cfg)
	if got := outline(t, d2, created.ID, out.TextLen); got != want {
		t.Fatalf("torn-tail recovery diverged:\nlive:\n%s\nrecovered:\n%s", want, got)
	}
	m := scrapeMetrics(t, d2)
	if v := metricValue(t, m, "iglrd_journal_torn_total"); v != 1 {
		t.Fatalf("journal_torn_total = %d, want 1", v)
	}
	// The tear was cut off, so the journal grows intact from here.
	if data, err := os.ReadFile(walPath); err != nil || len(data) != len(intact) {
		t.Fatalf("torn tail not truncated: %d bytes, want %d (err %v)", len(data), len(intact), err)
	}
	editOnce(t, d2, created.ID, editJSON{Offset: 0, Remove: 1, Insert: "8"})
}

// TestPersistCorruptSnapshot: an unusable snapshot artifact degrades to a
// 404 — the daemon neither fails nor serves a wrong tree — and the
// artifacts are removed so the corruption is never retried.
func TestPersistCorruptSnapshot(t *testing.T) {
	for name, corrupt := range map[string]func(t *testing.T, path string){
		"bitflip": func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0x40
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"truncated": func(t *testing.T, path string) {
			if err := os.Truncate(path, 10); err != nil {
				t.Fatal(err)
			}
		},
	} {
		t.Run(name, func(t *testing.T) {
			cfg := persistConfig(t)
			d1 := crashableDaemon(t, cfg)
			created := createExpr(t, d1, "1+2*3")
			crashDaemon(t, d1)
			corrupt(t, filepath.Join(cfg.Persist.Dir, created.ID+".ccsess"))

			d2 := testDaemon(t, cfg)
			status := doJSON(t, "GET", dataURL(d2, "/sessions/"+created.ID), nil, nil)
			if status != http.StatusNotFound {
				t.Fatalf("corrupt snapshot: status %d, want 404", status)
			}
			m := scrapeMetrics(t, d2)
			if v := metricValue(t, m, "iglrd_session_restore_misses_total"); v != 1 {
				t.Fatalf("restore_misses_total = %d, want 1", v)
			}
			if _, err := os.Stat(filepath.Join(cfg.Persist.Dir, created.ID+".json")); !os.IsNotExist(err) {
				t.Fatalf("unusable artifacts were not removed (err %v)", err)
			}
			// The daemon still serves: a replacement session works and gets
			// a fresh ID (the dead one is never reissued).
			repl := createExpr(t, d2, "1+2*3")
			if repl.ID == created.ID {
				t.Fatalf("persisted ID %s was reissued", created.ID)
			}
		})
	}
}

// TestPersistEvictRestore: idle eviction parks the session on disk and the
// next touch transparently restores it.
func TestPersistEvictRestore(t *testing.T) {
	cfg := persistConfig(t)
	cfg.SessionTTL = Duration(50 * time.Millisecond)
	d := testDaemon(t, cfg)
	created := createExpr(t, d, "1+2*3")
	out := editOnce(t, d, created.ID, editJSON{Offset: 0, Remove: 0, Insert: "7+"})
	want := outline(t, d, created.ID, out.TextLen)

	deadline := time.Now().Add(5 * time.Second)
	for {
		m := scrapeMetrics(t, d)
		if metricValue(t, m, "iglrd_sessions_evicted_to_disk_total") >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never evicted to disk")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := outline(t, d, created.ID, out.TextLen); got != want {
		t.Fatalf("evict/restore diverged:\nlive:\n%s\nrestored:\n%s", want, got)
	}
	m := scrapeMetrics(t, d)
	if v := metricValue(t, m, "iglrd_sessions_restored_total"); v < 1 {
		t.Fatalf("restored_total = %d, want >= 1", v)
	}
}

// TestPersistDelete: DELETE removes the artifacts; the session does not
// resurrect after a restart.
func TestPersistDelete(t *testing.T) {
	cfg := persistConfig(t)
	d1 := crashableDaemon(t, cfg)
	created := createExpr(t, d1, "1+2*3")
	if status := doJSON(t, "DELETE", dataURL(d1, "/sessions/"+created.ID), nil, nil); status != http.StatusNoContent {
		t.Fatalf("delete: status %d", status)
	}
	entries, _ := os.ReadDir(cfg.Persist.Dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), created.ID) {
			t.Fatalf("artifact %s survived DELETE", e.Name())
		}
	}
	crashDaemon(t, d1)
	d2 := testDaemon(t, cfg)
	if status := doJSON(t, "GET", dataURL(d2, "/sessions/"+created.ID), nil, nil); status != http.StatusNotFound {
		t.Fatalf("deleted session resurrected: status %d", status)
	}
}

// TestPersistTolerantSession: error-recovery sessions persist their
// quarantined error regions and diagnostics across a crash.
func TestPersistTolerantSession(t *testing.T) {
	cfg := persistConfig(t)
	d1 := crashableDaemon(t, cfg)
	var created sessionJSON
	status := doJSON(t, "POST", dataURL(d1, "/sessions"), createSessionJSON{
		Language: "c-subset", Text: "typedef int T; T x; x = f(x, 1) + 2; return x + 1;",
		Tolerant: true,
	}, &created)
	if status != http.StatusCreated {
		t.Fatalf("create: status %d", status)
	}
	out := editOnce(t, d1, created.ID, editJSON{Offset: 20, Remove: 0, Insert: "@#! "})
	if out.Clean || !out.Isolated || len(out.Diagnostics) == 0 {
		t.Fatalf("want isolated error outcome, got %+v", out)
	}
	want := outline(t, d1, created.ID, out.TextLen)
	crashDaemon(t, d1)

	d2 := testDaemon(t, cfg)
	if got := outline(t, d2, created.ID, out.TextLen); got != want {
		t.Fatalf("tolerant recovery diverged:\nlive:\n%s\nrecovered:\n%s", want, got)
	}
	var diag struct {
		Diagnostics []diagnosticJSON `json:"diagnostics"`
	}
	doJSON(t, "GET", dataURL(d2, "/sessions/"+created.ID+"/diagnostics"), nil, &diag)
	if len(diag.Diagnostics) == 0 {
		t.Fatal("diagnostics lost in recovery")
	}
	// Repair converges the restored session back to a clean tree.
	out = editOnce(t, d2, created.ID, editJSON{Offset: 20, Remove: 4, Insert: ""})
	if !out.Clean {
		t.Fatalf("repair did not converge: %+v", out)
	}
}

// TestPersistFaultInjection: injected disk failures (append, fsync,
// snapshot) disable persistence for the one session, never break the live
// session, and never let a later restart serve stale state.
func TestPersistFaultInjection(t *testing.T) {
	for name, point := range map[string]faultinject.Point{
		"append":   faultinject.PersistAppend,
		"sync":     faultinject.PersistSync,
		"snapshot": faultinject.PersistSnapshot,
	} {
		t.Run(name, func(t *testing.T) {
			cfg := persistConfig(t)
			// Rotate on every parse so the PersistSnapshot point is reached
			// by an ordinary edit, not only at session creation.
			cfg.Persist.JournalMaxBytes = 1
			d1 := crashableDaemon(t, cfg)
			created := createExpr(t, d1, "1+2*3")

			faultinject.Activate(faultinject.NewPlan(faultinject.Trigger{
				Point: point, Do: faultinject.ActError,
			}))
			out := editOnce(t, d1, created.ID, editJSON{Offset: 0, Remove: 0, Insert: "7+"})
			faultinject.Deactivate()
			if out.Error != "" || !out.Clean {
				t.Fatalf("live session broken by persist fault: %+v", out)
			}
			// The live session keeps working after the fault.
			out = editOnce(t, d1, created.ID, editJSON{Offset: 0, Remove: 1, Insert: "8"})
			if out.Error != "" || !out.Clean {
				t.Fatalf("live session broken after persist fault: %+v", out)
			}
			m := scrapeMetrics(t, d1)
			if v := metricValue(t, m, "iglrd_persist_errors_total"); v != 1 {
				t.Fatalf("persist_errors_total = %d, want 1", v)
			}
			crashDaemon(t, d1)

			// Half-durable state must not restore stale: the artifacts are
			// gone and the session is a clean 404.
			d2 := testDaemon(t, cfg)
			if status := doJSON(t, "GET", dataURL(d2, "/sessions/"+created.ID), nil, nil); status != http.StatusNotFound {
				t.Fatalf("half-durable session restored: status %d", status)
			}
		})
	}
}

// TestPersistSnapshotRotation: a journal past the threshold rolls into a
// fresh snapshot, and the journal is truncated.
func TestPersistSnapshotRotation(t *testing.T) {
	cfg := persistConfig(t)
	cfg.Persist.JournalMaxBytes = 64 // every batch crosses the threshold
	d := testDaemon(t, cfg)
	created := createExpr(t, d, "1+2*3")
	filler := strings.Repeat("+1", 40)
	out := editOnce(t, d, created.ID, editJSON{Offset: 5, Remove: 0, Insert: filler})
	want := outline(t, d, created.ID, out.TextLen)

	m := scrapeMetrics(t, d)
	// One snapshot at creation, one rotation after the oversized batch.
	if v := metricValue(t, m, "iglrd_snapshots_written_total"); v != 2 {
		t.Fatalf("snapshots_written_total = %d, want 2", v)
	}
	wal, err := os.ReadFile(filepath.Join(cfg.Persist.Dir, created.ID+".wal"))
	if err != nil || len(wal) != 0 {
		t.Fatalf("journal not truncated after rotation: %d bytes (err %v)", len(wal), err)
	}
	// The rotated snapshot alone reproduces the session.
	if got := outline(t, d, created.ID, out.TextLen); got != want {
		t.Fatalf("rotation diverged")
	}
}

// TestPersistForeignIDRejected: request IDs that are not registry-shaped
// never reach the filesystem.
func TestPersistForeignIDRejected(t *testing.T) {
	d := testDaemon(t, persistConfig(t))
	for _, id := range []string{"..%2fetc", "s0000000g", "sAAAAAAAA", "x00000001", "s000000001"} {
		if status := doJSON(t, "GET", dataURL(d, "/sessions/"+id), nil, nil); status != http.StatusNotFound {
			t.Fatalf("id %q: status %d, want 404", id, status)
		}
	}
}
