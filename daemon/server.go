package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	incremental "iglr"
	"iglr/engine"
	"iglr/internal/dag"
	"iglr/internal/govern"
)

// ---- wire types ----------------------------------------------------------

type errorJSON struct {
	Error string `json:"error"`
}

type editJSON struct {
	Offset int    `json:"offset"`
	Remove int    `json:"remove"`
	Insert string `json:"insert"`
}

type createSessionJSON struct {
	Language string `json:"language"`
	Text     string `json:"text"`
	Tenant   string `json:"tenant,omitempty"`
	// Tolerant makes every parse of this session run under two-tier error
	// recovery: syntax errors are quarantined as diagnostics instead of
	// failing the parse.
	Tolerant bool `json:"tolerant,omitempty"`
}

type diagnosticJSON struct {
	Offset   int      `json:"offset"`
	Length   int      `json:"length"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Expected []string `json:"expected,omitempty"`
	Region   string   `json:"region,omitempty"`
}

// outcomeJSON is the wire form of one parse outcome. Parse-level failures
// (syntax errors, budget trips) are data, not HTTP errors: the request
// itself succeeded.
type outcomeJSON struct {
	Clean        bool             `json:"clean"`
	Isolated     bool             `json:"isolated,omitempty"`
	ErrorRegions int              `json:"error_regions,omitempty"`
	Degraded     bool             `json:"degraded,omitempty"`
	BudgetTrip   bool             `json:"budget_trip,omitempty"`
	Error        string           `json:"error,omitempty"`
	Diagnostics  []diagnosticJSON `json:"diagnostics,omitempty"`
	ParseMicros  int64            `json:"parse_micros"`
	TextLen      int              `json:"text_len"`
}

type sessionJSON struct {
	ID       string      `json:"id"`
	Language string      `json:"language"`
	Tenant   string      `json:"tenant,omitempty"`
	Tolerant bool        `json:"tolerant,omitempty"`
	Outcome  outcomeJSON `json:"outcome"`
}

type editsRequestJSON struct {
	Edits []editJSON `json:"edits"`
}

type subtreeJSON struct {
	Symbol  string `json:"symbol"`
	Kind    string `json:"kind"`
	Offset  int    `json:"offset"`
	Length  int    `json:"length"`
	Outline string `json:"outline,omitempty"`
}

type batchFileJSON struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

type batchRequestJSON struct {
	Language string          `json:"language"`
	Tolerant bool            `json:"tolerant,omitempty"`
	Files    []batchFileJSON `json:"files"`
}

type batchResultJSON struct {
	Name        string           `json:"name"`
	OK          bool             `json:"ok"`
	Error       string           `json:"error,omitempty"`
	Degraded    bool             `json:"degraded,omitempty"`
	BudgetTrips int              `json:"budget_trips,omitempty"`
	Diagnostics []diagnosticJSON `json:"diagnostics,omitempty"`
	Micros      int64            `json:"micros"`
}

type batchResponseJSON struct {
	Files      []batchResultJSON `json:"files"`
	Failed     int               `json:"failed"`
	WallMicros int64             `json:"wall_micros"`
}

// ---- helpers -------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// shedJSON is the structured body of every load-shedding response (429 and
// 503): a machine-readable code and the retry hint the Retry-After header
// carries, in milliseconds so clients can back off finer than a second.
type shedJSON struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}

// Shed codes, one per admission-control gate.
const (
	shedCodeQueueFull = "queue_full"
	shedCodeInflight  = "inflight_cap"
	shedCodeMemory    = "memory_pressure"
	shedCodeQuota     = "quota"
	shedCodeStalled   = "stalled"
	shedCodeDeadline  = "deadline"
	shedCodeShutdown  = "shutdown"
	// shedCodeParsePending is special: the edit batch WAS accepted —
	// journaled, durable, applied — but the reparse after it did not
	// complete. Re-sending the batch would apply it twice; converge with a
	// read (GET, subtree) or an empty edit batch instead. Every other shed
	// code means the daemon acted on nothing.
	shedCodeParsePending = "parse_pending"
)

// writeShed renders a load-shedding response: Retry-After (whole seconds,
// rounded up, per RFC 9110) plus the structured JSON body.
func writeShed(w http.ResponseWriter, status int, code string, retry time.Duration, format string, args ...any) {
	secs := int64((retry + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	writeJSON(w, status, shedJSON{
		Error:        fmt.Sprintf(format, args...),
		Code:         code,
		RetryAfterMS: retry.Milliseconds(),
	})
}

func toDiagJSON(ds []incremental.Diagnostic) []diagnosticJSON {
	out := make([]diagnosticJSON, len(ds))
	for i, d := range ds {
		out[i] = diagnosticJSON{
			Offset: d.Offset, Length: d.Length, Line: d.Line, Col: d.Col,
			Expected: d.Expected, Region: d.Region,
		}
	}
	return out
}

func kindString(k dag.Kind) string {
	switch k {
	case dag.KindTerminal:
		return "terminal"
	case dag.KindProduction:
		return "production"
	case dag.KindChoice:
		return "choice"
	case dag.KindSeq:
		return "sequence"
	case dag.KindError:
		return "error"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// runSession executes fn on sess's shard through the bounded data-plane
// queue: a full queue sheds the request (errQueueFull → 429) instead of
// piling up behind a slow parse. A panic inside fn — a poisoned parse
// state, a library bug — is contained to this one request: the shard
// goroutine survives (see shardPool.run), the session, whose state can no
// longer be trusted, is closed and unregistered, and the caller gets an
// error wrapping errShardPanic.
func (d *Daemon) runSession(ctx context.Context, sess *session, fn func()) error {
	err := d.pool.runQueued(ctx, sess.shard, fn)
	if errors.Is(err, errShardPanic) {
		d.mets.panics.Add(1)
		d.Logf("daemon: session %s poisoned, closing: %v", sess.id, err)
		d.dropSession(sess)
	}
	return err
}

// dropSession closes and unregisters a session outside the normal DELETE
// path (panic containment, aborted creates). The closed flag is flipped on
// the session's shard; if the shard is wedged the registry entry still
// goes away, so the slot is freed either way.
func (d *Daemon) dropSession(sess *session) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	d.pool.run(ctx, sess.shard, func() {
		sess.closed = true
		d.persistRemove(sess)
	})
	if _, ok := d.sessions.remove(sess.id); ok {
		d.mets.sessionsOpen.Add(-1)
		d.mets.sessionsClosed.Add(1)
		d.gov.Release(sess.shard, sess.memBytes)
	}
}

// writeShardError renders a shard-task failure: 429 + Retry-After when the
// shard's queue shed the request, 503 + Retry-After when the request's
// deadline expired (waiting in queue or mid-parse) or the watchdog killed
// a stalled parse, 500 when the task itself panicked. Panic details stay
// in the log, not the response.
func (d *Daemon) writeShardError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errShardPanic):
		httpError(w, http.StatusInternalServerError, "internal error; session closed")
	case errors.Is(err, errQueueFull):
		d.mets.shedQueueFull.Add(1)
		writeShed(w, http.StatusTooManyRequests, shedCodeQueueFull, time.Second,
			"shard queue full; retry")
	case errors.Is(err, errShardStalled):
		writeShed(w, http.StatusServiceUnavailable, shedCodeStalled, 2*time.Second,
			"parse stalled beyond stall_timeout; session closed")
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeShed(w, http.StatusServiceUnavailable, shedCodeDeadline, time.Second,
			"request deadline expired before the shard could serve it")
	case errors.Is(err, errPoolClosed):
		writeShed(w, http.StatusServiceUnavailable, shedCodeShutdown, 2*time.Second,
			"daemon shutting down")
	default:
		httpError(w, http.StatusServiceUnavailable, "shard unavailable: %v", err)
	}
}

// parseSession runs one parse of sess on its shard, updating metrics, the
// idle clock, and the session's governor account, and renders the outcome.
// The parse is registered with the stall watchdog: a parse the watchdog
// cancelled closes the session (its state can no longer be trusted to
// finish anything) and surfaces as errShardStalled. The bool reports
// whether the session was still open.
func (d *Daemon) parseSession(r *http.Request, sess *session) (outcomeJSON, bool, error) {
	var (
		oj      outcomeJSON
		open    bool
		stalled bool
	)
	err := d.runSession(r.Context(), sess, func() {
		if sess.closed {
			return
		}
		open = true
		sess.lastUsed = time.Now()
		start := time.Now()
		pctx, cancel := context.WithCancel(r.Context())
		rt := &runningTask{sessID: sess.id, started: start, cancel: cancel}
		d.watch[sess.shard].Store(rt)
		var out incremental.Outcome
		if sess.tolerant {
			out = sess.s.Do(pctx, incremental.Tolerant())
		} else {
			out = sess.s.Do(pctx)
		}
		d.watch[sess.shard].Store(nil)
		cancel()
		if rt.byWatchdog.Load() {
			// The watchdog had to kill this parse: close the session like a
			// panicked one — livelock and panic get the same containment.
			stalled = true
			sess.closed = true
			d.persistRemove(sess)
			if _, ok := d.sessions.remove(sess.id); ok {
				d.mets.sessionsOpen.Add(-1)
				d.mets.sessionsClosed.Add(1)
			}
			d.gov.Release(sess.shard, sess.memBytes)
			sess.memBytes = 0
			return
		}
		// The parse committed whatever was pending (the initial text, an
		// applied edit batch); the session is safe to park again.
		sess.pendingParse = false
		dur := time.Since(start)
		diags := sess.s.Diagnostics()
		d.mets.observeParse(&out, dur, len(diags))
		oj = outcomeJSON{
			Clean:        out.Clean,
			Isolated:     out.Isolated,
			ErrorRegions: out.ErrorRegions,
			Degraded:     out.Stats.BudgetPruned > 0,
			ParseMicros:  dur.Microseconds(),
			TextLen:      sess.s.Len(),
			Diagnostics:  toDiagJSON(diags),
		}
		if out.Err != nil {
			oj.Error = out.Err.Error()
			oj.BudgetTrip = errors.Is(out.Err, incremental.ErrBudget)
		}
		d.persistAfterParse(sess)
		d.accountParse(sess)
	})
	if err == nil && stalled {
		err = errShardStalled
	}
	return oj, open, err
}

// ---- data plane ----------------------------------------------------------

// Handler returns the data-plane HTTP handler: session lifecycle, edits,
// diagnostics, subtree queries, and one-shot batch parses. Every route
// passes through admission control first — the global in-flight cap sheds
// excess concurrency with 429 before it touches a session, and requests
// without a deadline get the config's default one, so work abandoned in a
// shard queue can be recognized and dropped.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", d.handleCreateSession)
	mux.HandleFunc("GET /sessions/{id}", d.handleGetSession)
	mux.HandleFunc("DELETE /sessions/{id}", d.handleDeleteSession)
	mux.HandleFunc("POST /sessions/{id}/edits", d.handleEdits)
	mux.HandleFunc("GET /sessions/{id}/diagnostics", d.handleDiagnostics)
	mux.HandleFunc("GET /sessions/{id}/subtree", d.handleSubtree)
	mux.HandleFunc("POST /parse", d.handleBatchParse)
	mux.HandleFunc("GET /languages", d.handleLanguages)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sn := d.snap.Load()
		cur := d.inflight.Add(1)
		defer d.inflight.Add(-1)
		if max := sn.cfg.MaxInflight; max > 0 && cur > int64(max) {
			d.mets.shedInflight.Add(1)
			writeShed(w, http.StatusTooManyRequests, shedCodeInflight, time.Second,
				"in-flight request cap (%d) reached", max)
			return
		}
		if dl := time.Duration(sn.cfg.DefaultDeadline); dl > 0 {
			if _, has := r.Context().Deadline(); !has {
				ctx, cancel := context.WithTimeout(r.Context(), dl)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		mux.ServeHTTP(w, r)
	})
}

func (d *Daemon) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	sn := d.snap.Load()
	lang, ok := sn.langs[req.Language]
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown language %q (serving %v)",
			req.Language, sn.languageNames())
		return
	}
	// Admission, cheapest gate first: above the hard watermark no new
	// session is accepted at all (the load balancer saw /healthz flip 503
	// before this starts firing).
	if d.gov.State() == govern.StateCritical {
		d.mets.shedMemory.Add(1)
		writeShed(w, http.StatusServiceUnavailable, shedCodeMemory, 2*time.Second,
			"memory hard watermark reached")
		return
	}
	ten := sn.tenant(req.Tenant)
	budget := ten.Budget
	if d.gov.OverSoft() {
		// Pressure mode: new admissions run under the degraded budget so
		// they cannot deepen the overload.
		if pb := sn.cfg.PressureBudget; pb != (incremental.Budget{}) {
			budget = pb
			d.mets.degradedAdmits.Add(1)
		}
	}
	sess := &session{
		tenant:   req.Tenant,
		langName: req.Language,
		lang:     lang,
		tolerant: req.Tolerant,
		lastUsed: time.Now(),
		// Not parkable until the first parse commits the initial text.
		pendingParse: true,
	}
	sess.s = incremental.NewSession(lang, req.Text, incremental.WithBudget(budget))
	if !d.sessions.add(sess, d.pool, sn.cfg.MaxSessions, ten.MaxSessions) {
		d.mets.sessionsDenied.Add(1)
		writeShed(w, http.StatusTooManyRequests, shedCodeQuota, 5*time.Second,
			"session quota exhausted (tenant %q)", req.Tenant)
		return
	}
	// Charge the pre-parse estimate (the source text and fixed session
	// state; the first parse settles the real figure). A refusal here is
	// the hard watermark holding as an invariant, not just a threshold.
	est := int64(len(req.Text)) + 4096
	if !d.gov.TryCharge(sess.shard, est) {
		d.sessions.remove(sess.id)
		d.mets.shedMemory.Add(1)
		writeShed(w, http.StatusServiceUnavailable, shedCodeMemory, 2*time.Second,
			"memory hard watermark reached")
		return
	}
	sess.memBytes = est
	d.mets.sessionsOpen.Add(1)
	d.mets.sessionsOpened.Add(1)

	oj, open, err := d.parseSession(r, sess)
	if err != nil {
		// The client is getting an error, so it never learns the ID and
		// can never DELETE it: drop the session now (idempotent if the
		// panic path already did) or an aborted create leaks its quota
		// slot forever.
		d.dropSession(sess)
		d.writeShardError(w, err)
		return
	}
	if !open {
		// Evicted between add and first parse — only possible with a TTL of
		// ~0; report it like any other vanished session.
		httpError(w, http.StatusNotFound, "session expired before first parse")
		return
	}
	writeJSON(w, http.StatusCreated, sessionJSON{
		ID: sess.id, Language: sess.langName, Tenant: sess.tenant,
		Tolerant: sess.tolerant, Outcome: oj,
	})
}

// lookup resolves {id} or writes a 404, transparently restoring the
// session from the persistence directory when it is not live (evicted to
// disk, or persisted by a previous process before a restart). A restore
// the memory governor refuses is a 503 shed, not a 404: the session
// exists, safely parked, and a retry after relief will revive it.
func (d *Daemon) lookup(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	sess, ok := d.sessions.get(id)
	if !ok && d.persist != nil {
		var shed bool
		sess, ok, shed = d.restoreSession(id)
		if shed {
			d.mets.shedMemory.Add(1)
			writeShed(w, http.StatusServiceUnavailable, shedCodeMemory, 2*time.Second,
				"memory hard watermark reached; session %q stays parked", id)
			return nil, false
		}
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no session %q", id)
		return nil, false
	}
	return sess, true
}

func (d *Daemon) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := d.lookup(w, r)
	if !ok {
		return
	}
	var (
		textLen int
		diags   int
		open    bool
	)
	err := d.runSession(r.Context(), sess, func() {
		if sess.closed {
			return
		}
		open = true
		sess.lastUsed = time.Now()
		textLen = sess.s.Len()
		diags = len(sess.s.Diagnostics())
	})
	if err != nil {
		d.writeShardError(w, err)
		return
	}
	if !open {
		d.writeSessionGone(w, sess)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": sess.id, "language": sess.langName, "tenant": sess.tenant,
		"tolerant": sess.tolerant, "text_len": textLen, "diagnostics": diags,
	})
}

func (d *Daemon) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := d.lookup(w, r)
	if !ok {
		return
	}
	err := d.runSession(r.Context(), sess, func() {
		if sess.closed {
			return
		}
		sess.closed = true
		d.persistRemove(sess)
		if _, removed := d.sessions.remove(sess.id); removed {
			d.mets.sessionsOpen.Add(-1)
			d.mets.sessionsClosed.Add(1)
		}
	})
	if err != nil {
		d.writeShardError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (d *Daemon) handleEdits(w http.ResponseWriter, r *http.Request) {
	sess, ok := d.lookup(w, r)
	if !ok {
		return
	}
	var req editsRequestJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var (
		open    bool
		badEdit error
	)
	err := d.runSession(r.Context(), sess, func() {
		if sess.closed {
			return
		}
		open = true
		// Validate the whole batch against the running document length
		// before touching the text: a 400 must imply no mutation, or the
		// client's view silently diverges from the server's document.
		// The comparisons are overflow-safe — a huge Offset or Remove
		// must not wrap negative and slip past the check into a panic.
		n := sess.s.Len()
		for i, e := range req.Edits {
			if e.Offset < 0 || e.Remove < 0 || e.Offset > n || e.Remove > n-e.Offset {
				badEdit = fmt.Errorf("edit %d: range [%d,+%d) outside document of %d bytes",
					i, e.Offset, e.Remove, n)
				return
			}
			n += len(e.Insert) - e.Remove
		}
		// Journal the accepted batch — appended and fsynced — before the
		// first edit is applied: any state a client sees acknowledged is
		// on disk, and a kill -9 between here and the response replays it.
		d.persistAppend(sess, req.Edits)
		for _, e := range req.Edits {
			sess.s.Edit(e.Offset, e.Remove, e.Insert)
		}
		// Applied but not yet reparsed: block parking until the parse
		// task commits (see parkSession).
		sess.pendingParse = true
	})
	if err != nil {
		d.writeShardError(w, err)
		return
	}
	if !open {
		d.writeSessionGone(w, sess)
		return
	}
	if badEdit != nil {
		httpError(w, http.StatusBadRequest, "%v", badEdit)
		return
	}
	d.mets.edits.Add(int64(len(req.Edits)))

	oj, open, err := d.parseSession(r, sess)
	if err != nil {
		// The batch is journaled and applied — only the reparse failed.
		// This must not look like the retry-safe sheds: re-sending the
		// batch would apply it twice.
		if errors.Is(err, errShardPanic) {
			httpError(w, http.StatusInternalServerError, "internal error; session closed")
			return
		}
		d.mets.shedParsePending.Add(1)
		writeShed(w, http.StatusServiceUnavailable, shedCodeParsePending, time.Second,
			"edit batch accepted and durable, but the reparse did not complete (%v); converge with a read or an empty batch, do not re-send", err)
		return
	}
	if !open {
		d.writeSessionGone(w, sess)
		return
	}
	writeJSON(w, http.StatusOK, oj)
}

// writeSessionGone renders the fate of a session that closed between
// lookup and its shard task: parked ones are retryable — the state is on
// disk and the next attempt restores it — deleted ones are a plain 404.
func (d *Daemon) writeSessionGone(w http.ResponseWriter, sess *session) {
	if sess.parked {
		d.mets.shedMemory.Add(1)
		writeShed(w, http.StatusServiceUnavailable, shedCodeMemory, time.Second,
			"session %q parked under memory pressure; retry to restore", sess.id)
		return
	}
	httpError(w, http.StatusNotFound, "no session %q", sess.id)
}

func (d *Daemon) handleDiagnostics(w http.ResponseWriter, r *http.Request) {
	sess, ok := d.lookup(w, r)
	if !ok {
		return
	}
	var (
		diags []incremental.Diagnostic
		open  bool
	)
	err := d.runSession(r.Context(), sess, func() {
		if sess.closed {
			return
		}
		open = true
		sess.lastUsed = time.Now()
		diags = sess.s.Diagnostics()
	})
	if err != nil {
		d.writeShardError(w, err)
		return
	}
	if !open {
		d.writeSessionGone(w, sess)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"diagnostics": toDiagJSON(diags)})
}

// maxOutlineBytes caps the rendered subtree outline; deep dags can render
// arbitrarily large.
const maxOutlineBytes = 64 << 10

func (d *Daemon) handleSubtree(w http.ResponseWriter, r *http.Request) {
	sess, ok := d.lookup(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	offset, err1 := strconv.Atoi(q.Get("offset"))
	length, err2 := strconv.Atoi(q.Get("length"))
	if err1 != nil || err2 != nil || offset < 0 || length < 0 {
		httpError(w, http.StatusBadRequest, "subtree needs non-negative integer offset= and length=")
		return
	}
	var (
		resp  subtreeJSON
		found bool
		open  bool
	)
	err := d.runSession(r.Context(), sess, func() {
		if sess.closed {
			return
		}
		open = true
		sess.lastUsed = time.Now()
		n := sess.s.Subtree(offset, length)
		if n == nil {
			return
		}
		off, ln, ok := sess.s.NodeSpan(n)
		if !ok {
			return
		}
		found = true
		outline := incremental.FormatDag(sess.lang, n)
		if len(outline) > maxOutlineBytes {
			outline = outline[:maxOutlineBytes] + "\n… (truncated)\n"
		}
		resp = subtreeJSON{
			Symbol:  sess.lang.SymName(n.Sym),
			Kind:    kindString(n.Kind),
			Offset:  off,
			Length:  ln,
			Outline: outline,
		}
	})
	if err != nil {
		d.writeShardError(w, err)
		return
	}
	if !open {
		d.writeSessionGone(w, sess)
		return
	}
	if !found {
		httpError(w, http.StatusNotFound, "no committed subtree covers [%d,%d) (parse first?)",
			offset, offset+length)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (d *Daemon) handleBatchParse(w http.ResponseWriter, r *http.Request) {
	var req batchRequestJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	sn := d.snap.Load()
	lang, ok := sn.langs[req.Language]
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown language %q (serving %v)",
			req.Language, sn.languageNames())
		return
	}
	if len(req.Files) == 0 {
		httpError(w, http.StatusBadRequest, "no files")
		return
	}
	d.mets.batchRequests.Add(1)
	inputs := make([]engine.Input, len(req.Files))
	for i, f := range req.Files {
		inputs[i] = engine.Input{Name: f.Name, Source: f.Source}
	}
	policy := sn.cfg.Batch
	if req.Tolerant {
		policy.Tolerant = true
	}
	batch, err := engine.ParseAll(r.Context(), lang, inputs, engine.WithPolicy(policy))
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "batch aborted: %v", err)
		return
	}
	resp := batchResponseJSON{
		Files:      make([]batchResultJSON, len(batch.Results)),
		Failed:     batch.Aggregate.Failed,
		WallMicros: batch.Aggregate.Wall.Microseconds(),
	}
	for i := range batch.Results {
		res := &batch.Results[i]
		out := batchResultJSON{
			Name:        res.Name,
			OK:          res.Err == nil,
			Degraded:    res.Degraded,
			BudgetTrips: res.BudgetTrips,
			Diagnostics: toDiagJSON(res.Diagnostics),
			Micros:      res.Duration.Microseconds(),
		}
		if res.Err != nil {
			out.Error = res.Err.Error()
		}
		if errors.Is(res.Err, incremental.ErrBudget) {
			d.mets.budgetTrips.Add(1)
		}
		resp.Files[i] = out
	}
	d.mets.batchFiles.Add(int64(batch.Aggregate.Files))
	d.mets.batchFailed.Add(int64(batch.Aggregate.Failed))
	d.mets.degraded.Add(int64(batch.Aggregate.Degraded))
	d.mets.diagnostics.Add(int64(batch.Aggregate.Diagnostics))
	writeJSON(w, http.StatusOK, resp)
}

func (d *Daemon) handleLanguages(w http.ResponseWriter, r *http.Request) {
	sn := d.snap.Load()
	writeJSON(w, http.StatusOK, map[string]any{"languages": sn.languageNames()})
}

// ---- admin plane ---------------------------------------------------------

// AdminHandler returns the admin-plane HTTP handler: health, config
// introspection, hot reload, and metrics. Bind it to loopback only.
func (d *Daemon) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /config", d.handleGetConfig)
	mux.HandleFunc("POST /config", d.handlePostConfig)
	mux.HandleFunc("POST /reload", d.handleReload)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	return mux
}

// handleHealthz is readiness-aware: "ready" below the soft watermark,
// "degraded" (still 200 — serving, but load balancers should start
// draining) under pressure, 503 "overloaded" at or above the hard
// watermark, before hard shedding starts refusing session creation.
func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sn := d.snap.Load()
	soft, hard := d.gov.Watermarks()
	body := map[string]any{
		"ok":           true,
		"state":        "ready",
		"version":      sn.version,
		"sessions":     d.sessions.len(),
		"languages":    len(sn.langs),
		"memory_bytes": d.gov.Global(),
	}
	if soft > 0 || hard > 0 {
		body["memory_soft_bytes"], body["memory_hard_bytes"] = soft, hard
	}
	switch d.gov.State() {
	case govern.StateCritical:
		body["ok"], body["state"] = false, "overloaded"
		writeJSON(w, http.StatusServiceUnavailable, body)
	case govern.StatePressure:
		body["state"] = "degraded"
		writeJSON(w, http.StatusOK, body)
	default:
		writeJSON(w, http.StatusOK, body)
	}
}

func (d *Daemon) handleGetConfig(w http.ResponseWriter, r *http.Request) {
	sn := d.snap.Load()
	writeJSON(w, http.StatusOK, map[string]any{"version": sn.version, "config": sn.cfg})
}

func (d *Daemon) handlePostConfig(w http.ResponseWriter, r *http.Request) {
	var cfg Config
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		httpError(w, http.StatusBadRequest, "bad config: %v", err)
		return
	}
	version, err := d.Reload(cfg)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "reload rejected: %v (config v%d still active)", err, version)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"version": version})
}

func (d *Daemon) handleReload(w http.ResponseWriter, r *http.Request) {
	var cfg Config
	if d.ConfigPath != "" {
		data, err := os.ReadFile(d.ConfigPath)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "reload rejected: %v", err)
			return
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			httpError(w, http.StatusUnprocessableEntity, "reload rejected: %s: %v", d.ConfigPath, err)
			return
		}
	} else {
		// No config file: re-apply the active config, which re-reads the
		// artifact directories (the operator's path for shipping new
		// languages without editing config).
		cfg, _ = d.Snapshot()
	}
	version, err := d.Reload(cfg)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "reload rejected: %v (config v%d still active)", err, version)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"version": version})
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	d.mets.write(w)
	d.writeGovernorMetrics(w)
}

// writeGovernorMetrics renders the memory governor's gauges: watermarks,
// the global account, its state, and the per-shard split.
func (d *Daemon) writeGovernorMetrics(w io.Writer) {
	soft, hard := d.gov.Watermarks()
	fmt.Fprintf(w, "# HELP iglrd_memory_bytes Accounted live session bytes.\n# TYPE iglrd_memory_bytes gauge\niglrd_memory_bytes %d\n", d.gov.Global())
	fmt.Fprintf(w, "# HELP iglrd_memory_soft_bytes Soft (pressure) watermark; 0 = unset.\n# TYPE iglrd_memory_soft_bytes gauge\niglrd_memory_soft_bytes %d\n", soft)
	fmt.Fprintf(w, "# HELP iglrd_memory_hard_bytes Hard (refusal) watermark; 0 = unset.\n# TYPE iglrd_memory_hard_bytes gauge\niglrd_memory_hard_bytes %d\n", hard)
	fmt.Fprintf(w, "# HELP iglrd_memory_state Governor state: 0 normal, 1 pressure, 2 critical.\n# TYPE iglrd_memory_state gauge\niglrd_memory_state %d\n", int(d.gov.State()))
	fmt.Fprintf(w, "# HELP iglrd_shard_memory_bytes Accounted live bytes per shard.\n# TYPE iglrd_shard_memory_bytes gauge\n")
	for i := 0; i < d.gov.Shards(); i++ {
		fmt.Fprintf(w, "iglrd_shard_memory_bytes{shard=\"%d\"} %d\n", i, d.gov.Shard(i))
	}
	fmt.Fprintf(w, "# HELP iglrd_inflight_requests Data-plane requests currently executing.\n# TYPE iglrd_inflight_requests gauge\niglrd_inflight_requests %d\n", d.inflight.Load())
}
