package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"time"

	incremental "iglr"
	"iglr/engine"
	"iglr/internal/dag"
)

// ---- wire types ----------------------------------------------------------

type errorJSON struct {
	Error string `json:"error"`
}

type editJSON struct {
	Offset int    `json:"offset"`
	Remove int    `json:"remove"`
	Insert string `json:"insert"`
}

type createSessionJSON struct {
	Language string `json:"language"`
	Text     string `json:"text"`
	Tenant   string `json:"tenant,omitempty"`
	// Tolerant makes every parse of this session run under two-tier error
	// recovery: syntax errors are quarantined as diagnostics instead of
	// failing the parse.
	Tolerant bool `json:"tolerant,omitempty"`
}

type diagnosticJSON struct {
	Offset   int      `json:"offset"`
	Length   int      `json:"length"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Expected []string `json:"expected,omitempty"`
	Region   string   `json:"region,omitempty"`
}

// outcomeJSON is the wire form of one parse outcome. Parse-level failures
// (syntax errors, budget trips) are data, not HTTP errors: the request
// itself succeeded.
type outcomeJSON struct {
	Clean        bool             `json:"clean"`
	Isolated     bool             `json:"isolated,omitempty"`
	ErrorRegions int              `json:"error_regions,omitempty"`
	Degraded     bool             `json:"degraded,omitempty"`
	BudgetTrip   bool             `json:"budget_trip,omitempty"`
	Error        string           `json:"error,omitempty"`
	Diagnostics  []diagnosticJSON `json:"diagnostics,omitempty"`
	ParseMicros  int64            `json:"parse_micros"`
	TextLen      int              `json:"text_len"`
}

type sessionJSON struct {
	ID       string      `json:"id"`
	Language string      `json:"language"`
	Tenant   string      `json:"tenant,omitempty"`
	Tolerant bool        `json:"tolerant,omitempty"`
	Outcome  outcomeJSON `json:"outcome"`
}

type editsRequestJSON struct {
	Edits []editJSON `json:"edits"`
}

type subtreeJSON struct {
	Symbol  string `json:"symbol"`
	Kind    string `json:"kind"`
	Offset  int    `json:"offset"`
	Length  int    `json:"length"`
	Outline string `json:"outline,omitempty"`
}

type batchFileJSON struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

type batchRequestJSON struct {
	Language string          `json:"language"`
	Tolerant bool            `json:"tolerant,omitempty"`
	Files    []batchFileJSON `json:"files"`
}

type batchResultJSON struct {
	Name        string           `json:"name"`
	OK          bool             `json:"ok"`
	Error       string           `json:"error,omitempty"`
	Degraded    bool             `json:"degraded,omitempty"`
	BudgetTrips int              `json:"budget_trips,omitempty"`
	Diagnostics []diagnosticJSON `json:"diagnostics,omitempty"`
	Micros      int64            `json:"micros"`
}

type batchResponseJSON struct {
	Files      []batchResultJSON `json:"files"`
	Failed     int               `json:"failed"`
	WallMicros int64             `json:"wall_micros"`
}

// ---- helpers -------------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

func toDiagJSON(ds []incremental.Diagnostic) []diagnosticJSON {
	out := make([]diagnosticJSON, len(ds))
	for i, d := range ds {
		out[i] = diagnosticJSON{
			Offset: d.Offset, Length: d.Length, Line: d.Line, Col: d.Col,
			Expected: d.Expected, Region: d.Region,
		}
	}
	return out
}

func kindString(k dag.Kind) string {
	switch k {
	case dag.KindTerminal:
		return "terminal"
	case dag.KindProduction:
		return "production"
	case dag.KindChoice:
		return "choice"
	case dag.KindSeq:
		return "sequence"
	case dag.KindError:
		return "error"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// runSession executes fn on sess's shard. A panic inside fn — a poisoned
// parse state, a library bug — is contained to this one request: the shard
// goroutine survives (see shardPool.run), the session, whose state can no
// longer be trusted, is closed and unregistered, and the caller gets an
// error wrapping errShardPanic.
func (d *Daemon) runSession(ctx context.Context, sess *session, fn func()) error {
	err := d.pool.run(ctx, sess.shard, fn)
	if errors.Is(err, errShardPanic) {
		d.mets.panics.Add(1)
		d.Logf("daemon: session %s poisoned, closing: %v", sess.id, err)
		d.dropSession(sess)
	}
	return err
}

// dropSession closes and unregisters a session outside the normal DELETE
// path (panic containment, aborted creates). The closed flag is flipped on
// the session's shard; if the shard is wedged the registry entry still
// goes away, so the slot is freed either way.
func (d *Daemon) dropSession(sess *session) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	d.pool.run(ctx, sess.shard, func() {
		sess.closed = true
		d.persistRemove(sess)
	})
	if _, ok := d.sessions.remove(sess.id); ok {
		d.mets.sessionsOpen.Add(-1)
		d.mets.sessionsClosed.Add(1)
	}
}

// writeShardError renders a shard-task failure: 503 when the request gave
// up waiting for the shard (or the pool is shutting down), 500 when the
// task itself panicked. Panic details stay in the log, not the response.
func writeShardError(w http.ResponseWriter, err error) {
	if errors.Is(err, errShardPanic) {
		httpError(w, http.StatusInternalServerError, "internal error; session closed")
		return
	}
	httpError(w, http.StatusServiceUnavailable, "shard unavailable: %v", err)
}

// parseSession runs one parse of sess on its shard, updating metrics and
// the idle clock, and renders the outcome. The bool reports whether the
// session was still open.
func (d *Daemon) parseSession(r *http.Request, sess *session) (outcomeJSON, bool, error) {
	var (
		oj   outcomeJSON
		open bool
	)
	err := d.runSession(r.Context(), sess, func() {
		if sess.closed {
			return
		}
		open = true
		sess.lastUsed = time.Now()
		start := time.Now()
		var out incremental.Outcome
		if sess.tolerant {
			out = sess.s.Do(r.Context(), incremental.Tolerant())
		} else {
			out = sess.s.Do(r.Context())
		}
		dur := time.Since(start)
		diags := sess.s.Diagnostics()
		d.mets.observeParse(&out, dur, len(diags))
		oj = outcomeJSON{
			Clean:        out.Clean,
			Isolated:     out.Isolated,
			ErrorRegions: out.ErrorRegions,
			Degraded:     out.Stats.BudgetPruned > 0,
			ParseMicros:  dur.Microseconds(),
			TextLen:      sess.s.Len(),
			Diagnostics:  toDiagJSON(diags),
		}
		if out.Err != nil {
			oj.Error = out.Err.Error()
			oj.BudgetTrip = errors.Is(out.Err, incremental.ErrBudget)
		}
		d.persistAfterParse(sess)
	})
	return oj, open, err
}

// ---- data plane ----------------------------------------------------------

// Handler returns the data-plane HTTP handler: session lifecycle, edits,
// diagnostics, subtree queries, and one-shot batch parses.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", d.handleCreateSession)
	mux.HandleFunc("GET /sessions/{id}", d.handleGetSession)
	mux.HandleFunc("DELETE /sessions/{id}", d.handleDeleteSession)
	mux.HandleFunc("POST /sessions/{id}/edits", d.handleEdits)
	mux.HandleFunc("GET /sessions/{id}/diagnostics", d.handleDiagnostics)
	mux.HandleFunc("GET /sessions/{id}/subtree", d.handleSubtree)
	mux.HandleFunc("POST /parse", d.handleBatchParse)
	mux.HandleFunc("GET /languages", d.handleLanguages)
	return mux
}

func (d *Daemon) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createSessionJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	sn := d.snap.Load()
	lang, ok := sn.langs[req.Language]
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown language %q (serving %v)",
			req.Language, sn.languageNames())
		return
	}
	ten := sn.tenant(req.Tenant)
	sess := &session{
		tenant:   req.Tenant,
		langName: req.Language,
		lang:     lang,
		tolerant: req.Tolerant,
		lastUsed: time.Now(),
	}
	sess.s = incremental.NewSession(lang, req.Text, incremental.WithBudget(ten.Budget))
	if !d.sessions.add(sess, d.pool, sn.cfg.MaxSessions, ten.MaxSessions) {
		d.mets.sessionsDenied.Add(1)
		httpError(w, http.StatusTooManyRequests, "session quota exhausted (tenant %q)", req.Tenant)
		return
	}
	d.mets.sessionsOpen.Add(1)
	d.mets.sessionsOpened.Add(1)

	oj, open, err := d.parseSession(r, sess)
	if err != nil {
		// The client is getting an error, so it never learns the ID and
		// can never DELETE it: drop the session now (idempotent if the
		// panic path already did) or an aborted create leaks its quota
		// slot forever.
		d.dropSession(sess)
		writeShardError(w, err)
		return
	}
	if !open {
		// Evicted between add and first parse — only possible with a TTL of
		// ~0; report it like any other vanished session.
		httpError(w, http.StatusNotFound, "session expired before first parse")
		return
	}
	writeJSON(w, http.StatusCreated, sessionJSON{
		ID: sess.id, Language: sess.langName, Tenant: sess.tenant,
		Tolerant: sess.tolerant, Outcome: oj,
	})
}

// lookup resolves {id} or writes a 404, transparently restoring the
// session from the persistence directory when it is not live (evicted to
// disk, or persisted by a previous process before a restart).
func (d *Daemon) lookup(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	sess, ok := d.sessions.get(id)
	if !ok && d.persist != nil {
		sess, ok = d.restoreSession(id)
	}
	if !ok {
		httpError(w, http.StatusNotFound, "no session %q", id)
		return nil, false
	}
	return sess, true
}

func (d *Daemon) handleGetSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := d.lookup(w, r)
	if !ok {
		return
	}
	var (
		textLen int
		diags   int
		open    bool
	)
	err := d.runSession(r.Context(), sess, func() {
		if sess.closed {
			return
		}
		open = true
		sess.lastUsed = time.Now()
		textLen = sess.s.Len()
		diags = len(sess.s.Diagnostics())
	})
	if err != nil {
		writeShardError(w, err)
		return
	}
	if !open {
		httpError(w, http.StatusNotFound, "no session %q", sess.id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": sess.id, "language": sess.langName, "tenant": sess.tenant,
		"tolerant": sess.tolerant, "text_len": textLen, "diagnostics": diags,
	})
}

func (d *Daemon) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	sess, ok := d.lookup(w, r)
	if !ok {
		return
	}
	err := d.runSession(r.Context(), sess, func() {
		if sess.closed {
			return
		}
		sess.closed = true
		d.persistRemove(sess)
		if _, removed := d.sessions.remove(sess.id); removed {
			d.mets.sessionsOpen.Add(-1)
			d.mets.sessionsClosed.Add(1)
		}
	})
	if err != nil {
		writeShardError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (d *Daemon) handleEdits(w http.ResponseWriter, r *http.Request) {
	sess, ok := d.lookup(w, r)
	if !ok {
		return
	}
	var req editsRequestJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	var (
		open    bool
		badEdit error
	)
	err := d.runSession(r.Context(), sess, func() {
		if sess.closed {
			return
		}
		open = true
		// Validate the whole batch against the running document length
		// before touching the text: a 400 must imply no mutation, or the
		// client's view silently diverges from the server's document.
		// The comparisons are overflow-safe — a huge Offset or Remove
		// must not wrap negative and slip past the check into a panic.
		n := sess.s.Len()
		for i, e := range req.Edits {
			if e.Offset < 0 || e.Remove < 0 || e.Offset > n || e.Remove > n-e.Offset {
				badEdit = fmt.Errorf("edit %d: range [%d,+%d) outside document of %d bytes",
					i, e.Offset, e.Remove, n)
				return
			}
			n += len(e.Insert) - e.Remove
		}
		// Journal the accepted batch — appended and fsynced — before the
		// first edit is applied: any state a client sees acknowledged is
		// on disk, and a kill -9 between here and the response replays it.
		d.persistAppend(sess, req.Edits)
		for _, e := range req.Edits {
			sess.s.Edit(e.Offset, e.Remove, e.Insert)
		}
	})
	if err != nil {
		writeShardError(w, err)
		return
	}
	if !open {
		httpError(w, http.StatusNotFound, "no session %q", sess.id)
		return
	}
	if badEdit != nil {
		httpError(w, http.StatusBadRequest, "%v", badEdit)
		return
	}
	d.mets.edits.Add(int64(len(req.Edits)))

	oj, open, err := d.parseSession(r, sess)
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "shard unavailable: %v", err)
		return
	}
	if !open {
		httpError(w, http.StatusNotFound, "no session %q", sess.id)
		return
	}
	writeJSON(w, http.StatusOK, oj)
}

func (d *Daemon) handleDiagnostics(w http.ResponseWriter, r *http.Request) {
	sess, ok := d.lookup(w, r)
	if !ok {
		return
	}
	var (
		diags []incremental.Diagnostic
		open  bool
	)
	err := d.runSession(r.Context(), sess, func() {
		if sess.closed {
			return
		}
		open = true
		sess.lastUsed = time.Now()
		diags = sess.s.Diagnostics()
	})
	if err != nil {
		writeShardError(w, err)
		return
	}
	if !open {
		httpError(w, http.StatusNotFound, "no session %q", sess.id)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"diagnostics": toDiagJSON(diags)})
}

// maxOutlineBytes caps the rendered subtree outline; deep dags can render
// arbitrarily large.
const maxOutlineBytes = 64 << 10

func (d *Daemon) handleSubtree(w http.ResponseWriter, r *http.Request) {
	sess, ok := d.lookup(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	offset, err1 := strconv.Atoi(q.Get("offset"))
	length, err2 := strconv.Atoi(q.Get("length"))
	if err1 != nil || err2 != nil || offset < 0 || length < 0 {
		httpError(w, http.StatusBadRequest, "subtree needs non-negative integer offset= and length=")
		return
	}
	var (
		resp  subtreeJSON
		found bool
		open  bool
	)
	err := d.runSession(r.Context(), sess, func() {
		if sess.closed {
			return
		}
		open = true
		sess.lastUsed = time.Now()
		n := sess.s.Subtree(offset, length)
		if n == nil {
			return
		}
		off, ln, ok := sess.s.NodeSpan(n)
		if !ok {
			return
		}
		found = true
		outline := incremental.FormatDag(sess.lang, n)
		if len(outline) > maxOutlineBytes {
			outline = outline[:maxOutlineBytes] + "\n… (truncated)\n"
		}
		resp = subtreeJSON{
			Symbol:  sess.lang.SymName(n.Sym),
			Kind:    kindString(n.Kind),
			Offset:  off,
			Length:  ln,
			Outline: outline,
		}
	})
	if err != nil {
		writeShardError(w, err)
		return
	}
	if !open {
		httpError(w, http.StatusNotFound, "no session %q", sess.id)
		return
	}
	if !found {
		httpError(w, http.StatusNotFound, "no committed subtree covers [%d,%d) (parse first?)",
			offset, offset+length)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (d *Daemon) handleBatchParse(w http.ResponseWriter, r *http.Request) {
	var req batchRequestJSON
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	sn := d.snap.Load()
	lang, ok := sn.langs[req.Language]
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown language %q (serving %v)",
			req.Language, sn.languageNames())
		return
	}
	if len(req.Files) == 0 {
		httpError(w, http.StatusBadRequest, "no files")
		return
	}
	d.mets.batchRequests.Add(1)
	inputs := make([]engine.Input, len(req.Files))
	for i, f := range req.Files {
		inputs[i] = engine.Input{Name: f.Name, Source: f.Source}
	}
	policy := sn.cfg.Batch
	if req.Tolerant {
		policy.Tolerant = true
	}
	batch, err := engine.ParseAll(r.Context(), lang, inputs, engine.WithPolicy(policy))
	if err != nil {
		httpError(w, http.StatusServiceUnavailable, "batch aborted: %v", err)
		return
	}
	resp := batchResponseJSON{
		Files:      make([]batchResultJSON, len(batch.Results)),
		Failed:     batch.Aggregate.Failed,
		WallMicros: batch.Aggregate.Wall.Microseconds(),
	}
	for i := range batch.Results {
		res := &batch.Results[i]
		out := batchResultJSON{
			Name:        res.Name,
			OK:          res.Err == nil,
			Degraded:    res.Degraded,
			BudgetTrips: res.BudgetTrips,
			Diagnostics: toDiagJSON(res.Diagnostics),
			Micros:      res.Duration.Microseconds(),
		}
		if res.Err != nil {
			out.Error = res.Err.Error()
		}
		if errors.Is(res.Err, incremental.ErrBudget) {
			d.mets.budgetTrips.Add(1)
		}
		resp.Files[i] = out
	}
	d.mets.batchFiles.Add(int64(batch.Aggregate.Files))
	d.mets.batchFailed.Add(int64(batch.Aggregate.Failed))
	d.mets.degraded.Add(int64(batch.Aggregate.Degraded))
	d.mets.diagnostics.Add(int64(batch.Aggregate.Diagnostics))
	writeJSON(w, http.StatusOK, resp)
}

func (d *Daemon) handleLanguages(w http.ResponseWriter, r *http.Request) {
	sn := d.snap.Load()
	writeJSON(w, http.StatusOK, map[string]any{"languages": sn.languageNames()})
}

// ---- admin plane ---------------------------------------------------------

// AdminHandler returns the admin-plane HTTP handler: health, config
// introspection, hot reload, and metrics. Bind it to loopback only.
func (d *Daemon) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", d.handleHealthz)
	mux.HandleFunc("GET /config", d.handleGetConfig)
	mux.HandleFunc("POST /config", d.handlePostConfig)
	mux.HandleFunc("POST /reload", d.handleReload)
	mux.HandleFunc("GET /metrics", d.handleMetrics)
	return mux
}

func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sn := d.snap.Load()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":        true,
		"version":   sn.version,
		"sessions":  d.sessions.len(),
		"languages": len(sn.langs),
	})
}

func (d *Daemon) handleGetConfig(w http.ResponseWriter, r *http.Request) {
	sn := d.snap.Load()
	writeJSON(w, http.StatusOK, map[string]any{"version": sn.version, "config": sn.cfg})
}

func (d *Daemon) handlePostConfig(w http.ResponseWriter, r *http.Request) {
	var cfg Config
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		httpError(w, http.StatusBadRequest, "bad config: %v", err)
		return
	}
	version, err := d.Reload(cfg)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "reload rejected: %v (config v%d still active)", err, version)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"version": version})
}

func (d *Daemon) handleReload(w http.ResponseWriter, r *http.Request) {
	var cfg Config
	if d.ConfigPath != "" {
		data, err := os.ReadFile(d.ConfigPath)
		if err != nil {
			httpError(w, http.StatusUnprocessableEntity, "reload rejected: %v", err)
			return
		}
		if err := json.Unmarshal(data, &cfg); err != nil {
			httpError(w, http.StatusUnprocessableEntity, "reload rejected: %s: %v", d.ConfigPath, err)
			return
		}
	} else {
		// No config file: re-apply the active config, which re-reads the
		// artifact directories (the operator's path for shipping new
		// languages without editing config).
		cfg, _ = d.Snapshot()
	}
	version, err := d.Reload(cfg)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "reload rejected: %v (config v%d still active)", err, version)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"version": version})
}

func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	d.mets.write(w)
}
