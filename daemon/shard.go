package daemon

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	incremental "iglr"
)

// errShardPanic reports that a shard task panicked. The panic is recovered
// on the shard goroutine itself, so one poisoned request can never take
// down the daemon; the caller that submitted the task sees it as an error.
var errShardPanic = errors.New("daemon: shard task panicked")

// errPoolClosed reports a task submitted after Shutdown closed the pool.
var errPoolClosed = errors.New("daemon: shard pool shut down")

// errQueueFull reports a data-plane task refused because its shard's
// bounded queue is full — the load-shedding signal (429 + Retry-After at
// the HTTP layer). Only runQueued returns it; blocking control-plane
// submissions wait instead.
var errQueueFull = errors.New("daemon: shard queue full")

// errShardStalled reports a parse the watchdog cancelled after it stalled
// beyond the configured stall threshold; the session is closed (the
// livelock extension of the panic-containment contract).
var errShardStalled = errors.New("daemon: parse stalled beyond stall_timeout; session closed")

// session is one live editing session. The incremental.Session inside is
// single-goroutine by contract, so every operation on it runs as a task on
// the owning shard's goroutine — fields below the comment are owned by
// that goroutine after publication and need no locks.
type session struct {
	id       string
	tenant   string
	langName string
	lang     *incremental.Language
	shard    int
	tolerant bool

	// Shard-goroutine-owned after the session is published.
	s        *incremental.Session
	lastUsed time.Time
	closed   bool
	// parked marks a session closed by an eviction that kept its state on
	// disk: the id stays addressable (the next touch restores it), so
	// handlers answer a parked session with a retryable shed, not a 404.
	parked bool
	// pendingParse marks state the next parse has not yet committed: a
	// fresh session before its first parse, or an applied edit batch whose
	// parse task is still queued. Such a session is never parked — its
	// snapshot would bake in work whose request may have been shed,
	// breaking the "a shed request changed nothing" retry contract.
	pendingParse bool
	// p is the session's durability state (nil until the persistence
	// layer adopts the session on its shard; always nil when persistence
	// is disabled). Shard-owned like the fields above.
	p *sessPersist
	// memBytes is the session's last accounted memory footprint, the
	// figure charged against the governor (internal/govern). Shard-owned;
	// written once before publication (creation/restore estimates).
	memBytes int64
}

// Task states. A task is born queued; exactly one of the worker (CAS
// queued→running at dequeue) and the abandoning submitter (CAS
// queued→abandoned on ctx expiry) wins the transition, so a closure whose
// submitter already returned can never run and race its response state.
const (
	taskQueued int32 = iota
	taskRunning
	taskAbandoned
)

// shardTask is one unit of work in a shard's bounded queue.
type shardTask struct {
	fn       func()
	ctx      context.Context
	enqueued time.Time
	state    atomic.Int32
	done     chan struct{}
	err      error // written before done closes; read after
}

// shardPool is the fixed set of worker goroutines sessions are routed
// over. Each shard is one goroutine draining a bounded task queue; a
// session's ID hash pins it to one shard for life, so its operations are
// totally ordered without a session lock — the paper's single-goroutine
// session contract scaled out by sharding instead of locking.
//
// The queues are the daemon's admission control: data-plane submissions
// (runQueued) shed with errQueueFull when a queue is full instead of
// piling up behind a slow parse, and the worker drops queued work whose
// request context expired while it waited (deadline-aware dequeue) — a
// client that already gave up must not cost a parse.
type shardPool struct {
	tasks []chan *shardTask
	wg    sync.WaitGroup

	// onWait observes the queue wait of each task actually run; onExpired
	// counts tasks dropped (worker side) or abandoned (submitter side)
	// because their context expired while queued. Both are set once,
	// before any submission.
	onWait    func(time.Duration)
	onExpired func()

	// mu excludes close from concurrent producers: submissions hold it
	// shared for the enqueue, close holds it exclusively to flip closed,
	// so a handler can never send on a closed task channel.
	mu     sync.RWMutex
	closed bool
}

func newShardPool(n, depth int) *shardPool {
	if depth < 1 {
		depth = 1
	}
	p := &shardPool{tasks: make([]chan *shardTask, n)}
	for i := range p.tasks {
		ch := make(chan *shardTask, depth)
		p.tasks[i] = ch
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for t := range ch {
				if !t.state.CompareAndSwap(taskQueued, taskRunning) {
					continue // abandoned; its submitter already returned
				}
				if p.onWait != nil {
					p.onWait(time.Since(t.enqueued))
				}
				if t.ctx != nil && t.ctx.Err() != nil {
					// Deadline-aware dequeue: the client is gone, so the
					// work is dropped, not parsed.
					t.err = t.ctx.Err()
					if p.onExpired != nil {
						p.onExpired()
					}
					close(t.done)
					continue
				}
				t.run()
			}
		}()
	}
	return p
}

// run executes the task's closure on the worker, recovering panics into
// t.err (see errShardPanic).
func (t *shardTask) run() {
	defer close(t.done)
	defer func() {
		if r := recover(); r != nil {
			t.err = fmt.Errorf("%w: %v\n%s", errShardPanic, r, debug.Stack())
		}
	}()
	t.fn()
}

// indexFor pins a session ID to a shard.
func (p *shardPool) indexFor(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(p.tasks)))
}

// run executes fn on shard i and waits for it to finish: the blocking
// control-plane entry point (janitor, shutdown, session drops). The
// enqueue waits for queue space; if ctx expires first — or while the task
// is still queued — the task is abandoned and run returns ctx.Err()
// without fn having run. Once the worker has started fn, run always waits
// for it: the closure owns response state, so returning early would race.
// Long parses are interrupted through the context instead: session tasks
// thread ctx into Do, which polls it.
//
// A panic inside fn is recovered on the shard goroutine and reported as an
// error wrapping errShardPanic: the shard keeps serving other sessions.
func (p *shardPool) run(ctx context.Context, i int, fn func()) error {
	return p.submit(ctx, i, fn, true)
}

// runQueued is run for the data plane: a full shard queue sheds the task
// immediately with errQueueFull instead of waiting for space, so overload
// turns into fast 429s rather than unbounded queueing.
func (p *shardPool) runQueued(ctx context.Context, i int, fn func()) error {
	return p.submit(ctx, i, fn, false)
}

func (p *shardPool) submit(ctx context.Context, i int, fn func(), block bool) error {
	t := &shardTask{fn: fn, ctx: ctx, enqueued: time.Now(), done: make(chan struct{})}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return errPoolClosed
	}
	if block {
		select {
		case p.tasks[i] <- t:
			p.mu.RUnlock()
		case <-ctx.Done():
			p.mu.RUnlock()
			return ctx.Err()
		}
	} else {
		select {
		case p.tasks[i] <- t:
			p.mu.RUnlock()
		default:
			p.mu.RUnlock()
			return errQueueFull
		}
	}
	select {
	case <-t.done:
		return t.err
	case <-ctx.Done():
		if t.state.CompareAndSwap(taskQueued, taskAbandoned) {
			if p.onExpired != nil {
				p.onExpired()
			}
			return ctx.Err()
		}
		// The worker won the dequeue race: fn is running (or just ran) and
		// its closure owns response state, so wait it out.
		<-t.done
		return t.err
	}
}

// close shuts the pool down and waits for the workers to drain. Safe
// against concurrent run calls (stragglers get errPoolClosed) and
// idempotent; it can block behind a producer wedged mid-enqueue on a busy
// shard, so callers with a deadline should apply it themselves.
func (p *shardPool) close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		for _, ch := range p.tasks {
			close(ch)
		}
	}
	p.wg.Wait()
}

// registry tracks live sessions and per-tenant open counts. It guards only
// the maps — session state is shard-owned.
type registry struct {
	mu      sync.Mutex
	byID    map[string]*session
	perTen  map[string]int
	nextSeq uint64
}

func newRegistry() *registry {
	return &registry{byID: map[string]*session{}, perTen: map[string]int{}}
}

// add admits a session under the global and tenant quotas, assigning its
// ID. It returns false when a quota is exhausted.
func (r *registry) add(sess *session, pool *shardPool, globalMax, tenantMax int) (ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if globalMax > 0 && len(r.byID) >= globalMax {
		return false
	}
	if tenantMax > 0 && r.perTen[sess.tenant] >= tenantMax {
		return false
	}
	r.nextSeq++
	sess.id = fmt.Sprintf("s%08x", r.nextSeq)
	sess.shard = pool.indexFor(sess.id)
	r.byID[sess.id] = sess
	r.perTen[sess.tenant]++
	return true
}

// restoreAdd re-registers a restored session under its original ID. It
// bypasses the session quotas — the session was admitted under quota when
// it was created, and a restart must not strand a client's acknowledged
// session behind a 429 — but still counts toward its tenant, so future
// creates see it. When the ID is already live (two requests raced the
// same restore) the existing session wins and the caller discards its
// copy.
func (r *registry) restoreAdd(sess *session) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.byID[sess.id]; ok {
		return cur, false
	}
	r.byID[sess.id] = sess
	r.perTen[sess.tenant]++
	return sess, true
}

// floorSeq raises the ID sequence to at least n, so IDs found on disk at
// startup (or restored later) are never reissued to new sessions.
func (r *registry) floorSeq(n uint64) {
	r.mu.Lock()
	if r.nextSeq < n {
		r.nextSeq = n
	}
	r.mu.Unlock()
}

func (r *registry) get(id string) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[id]
	return s, ok
}

// remove unlinks a session; the caller must also mark it closed on its
// shard goroutine. Idempotent.
func (r *registry) remove(id string) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[id]
	if !ok {
		return nil, false
	}
	delete(r.byID, id)
	if r.perTen[s.tenant] > 1 {
		r.perTen[s.tenant]--
	} else {
		delete(r.perTen, s.tenant)
	}
	return s, true
}

func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// byShard snapshots the sessions currently routed to shard i.
func (r *registry) byShard(i int) []*session {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*session
	for _, s := range r.byID {
		if s.shard == i {
			out = append(out, s)
		}
	}
	return out
}
