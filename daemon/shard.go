package daemon

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sync"
	"time"

	incremental "iglr"
)

// errShardPanic reports that a shard task panicked. The panic is recovered
// on the shard goroutine itself, so one poisoned request can never take
// down the daemon; the caller that submitted the task sees it as an error.
var errShardPanic = errors.New("daemon: shard task panicked")

// errPoolClosed reports a task submitted after Shutdown closed the pool.
var errPoolClosed = errors.New("daemon: shard pool shut down")

// session is one live editing session. The incremental.Session inside is
// single-goroutine by contract, so every operation on it runs as a task on
// the owning shard's goroutine — fields below the comment are owned by
// that goroutine after publication and need no locks.
type session struct {
	id       string
	tenant   string
	langName string
	lang     *incremental.Language
	shard    int
	tolerant bool

	// Shard-goroutine-owned after the session is published.
	s        *incremental.Session
	lastUsed time.Time
	closed   bool
	// p is the session's durability state (nil until the persistence
	// layer adopts the session on its shard; always nil when persistence
	// is disabled). Shard-owned like the fields above.
	p *sessPersist
}

// shardPool is the fixed set of worker goroutines sessions are routed
// over. Each shard is one goroutine draining a task channel; a session's
// ID hash pins it to one shard for life, so its operations are totally
// ordered without a session lock — the paper's single-goroutine session
// contract scaled out by sharding instead of locking.
type shardPool struct {
	tasks []chan func()
	wg    sync.WaitGroup

	// mu excludes close from concurrent producers: run holds it shared
	// for the enqueue, close holds it exclusively to flip closed, so a
	// handler can never send on a closed task channel.
	mu     sync.RWMutex
	closed bool
}

func newShardPool(n int) *shardPool {
	p := &shardPool{tasks: make([]chan func(), n)}
	for i := range p.tasks {
		ch := make(chan func())
		p.tasks[i] = ch
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for task := range ch {
				task()
			}
		}()
	}
	return p
}

// indexFor pins a session ID to a shard.
func (p *shardPool) indexFor(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(p.tasks)))
}

// run executes fn on shard i and waits for it to finish. The enqueue is
// abandoned if ctx is done first (the shard is wedged on a long parse);
// once enqueued, run always waits — fn's closure owns response state, so
// returning early would race. Long parses are interrupted through the
// context instead: session tasks thread ctx into Do, which polls it.
//
// A panic inside fn is recovered on the shard goroutine and reported as an
// error wrapping errShardPanic: the shard keeps serving other sessions.
func (p *shardPool) run(ctx context.Context, i int, fn func()) error {
	done := make(chan struct{})
	var panicked error
	task := func() {
		defer close(done)
		defer func() {
			if r := recover(); r != nil {
				panicked = fmt.Errorf("%w: %v\n%s", errShardPanic, r, debug.Stack())
			}
		}()
		fn()
	}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return errPoolClosed
	}
	select {
	case p.tasks[i] <- task:
		p.mu.RUnlock()
	case <-ctx.Done():
		p.mu.RUnlock()
		return ctx.Err()
	}
	<-done
	return panicked
}

// close shuts the pool down and waits for the workers to drain. Safe
// against concurrent run calls (stragglers get errPoolClosed) and
// idempotent; it can block behind a producer wedged mid-enqueue on a busy
// shard, so callers with a deadline should apply it themselves.
func (p *shardPool) close() {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		for _, ch := range p.tasks {
			close(ch)
		}
	}
	p.wg.Wait()
}

// registry tracks live sessions and per-tenant open counts. It guards only
// the maps — session state is shard-owned.
type registry struct {
	mu      sync.Mutex
	byID    map[string]*session
	perTen  map[string]int
	nextSeq uint64
}

func newRegistry() *registry {
	return &registry{byID: map[string]*session{}, perTen: map[string]int{}}
}

// add admits a session under the global and tenant quotas, assigning its
// ID. It returns false when a quota is exhausted.
func (r *registry) add(sess *session, pool *shardPool, globalMax, tenantMax int) (ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if globalMax > 0 && len(r.byID) >= globalMax {
		return false
	}
	if tenantMax > 0 && r.perTen[sess.tenant] >= tenantMax {
		return false
	}
	r.nextSeq++
	sess.id = fmt.Sprintf("s%08x", r.nextSeq)
	sess.shard = pool.indexFor(sess.id)
	r.byID[sess.id] = sess
	r.perTen[sess.tenant]++
	return true
}

// restoreAdd re-registers a restored session under its original ID. It
// bypasses the session quotas — the session was admitted under quota when
// it was created, and a restart must not strand a client's acknowledged
// session behind a 429 — but still counts toward its tenant, so future
// creates see it. When the ID is already live (two requests raced the
// same restore) the existing session wins and the caller discards its
// copy.
func (r *registry) restoreAdd(sess *session) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if cur, ok := r.byID[sess.id]; ok {
		return cur, false
	}
	r.byID[sess.id] = sess
	r.perTen[sess.tenant]++
	return sess, true
}

// floorSeq raises the ID sequence to at least n, so IDs found on disk at
// startup (or restored later) are never reissued to new sessions.
func (r *registry) floorSeq(n uint64) {
	r.mu.Lock()
	if r.nextSeq < n {
		r.nextSeq = n
	}
	r.mu.Unlock()
}

func (r *registry) get(id string) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[id]
	return s, ok
}

// remove unlinks a session; the caller must also mark it closed on its
// shard goroutine. Idempotent.
func (r *registry) remove(id string) (*session, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.byID[id]
	if !ok {
		return nil, false
	}
	delete(r.byID, id)
	if r.perTen[s.tenant] > 1 {
		r.perTen[s.tenant]--
	} else {
		delete(r.perTen, s.tenant)
	}
	return s, true
}

func (r *registry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.byID)
}

// byShard snapshots the sessions currently routed to shard i.
func (r *registry) byShard(i int) []*session {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []*session
	for _, s := range r.byID {
		if s.shard == i {
			out = append(out, s)
		}
	}
	return out
}
