package incremental

import (
	"fmt"
	"strings"

	"iglr/internal/dag"
	"iglr/internal/grammar"
)

// Diagnostic describes one quarantined syntax-error region in the
// committed tree: where it is (current byte coordinates — positions are
// remapped automatically as later edits move the region), what the parser
// would have accepted at the point of failure, and which sequence
// production isolated the damage.
type Diagnostic struct {
	// Offset and Length delimit the quarantined bytes in the current text.
	Offset, Length int
	// Line and Col locate Offset (both 1-based).
	Line, Col int
	// Expected lists, by name and sorted, the terminals the parser could
	// have accepted where it failed.
	Expected []string
	// Region names the associative-sequence nonterminal whose element
	// structure confined the damage ("" when unrecorded).
	Region string
}

// String renders the diagnostic the way an editor status line would.
func (d Diagnostic) String() string {
	msg := fmt.Sprintf("%d:%d: syntax error (%d byte(s) quarantined", d.Line, d.Col, d.Length)
	if d.Region != "" {
		msg += " in " + d.Region
	}
	msg += ")"
	if len(d.Expected) > 0 {
		max := len(d.Expected)
		ell := ""
		if max > 4 {
			max, ell = 4, ", …"
		}
		msg += ", expected " + strings.Join(d.Expected[:max], ", ") + ell
	}
	return msg
}

// Diagnostics reports the syntax-error regions quarantined in the
// committed tree, leftmost first. The list is computed from the tree
// itself, so it clears automatically when a repairing edit lets the
// region reparse cleanly, and offsets track the current text even while
// edits are pending. It is empty when the last committed tree is a clean
// parse (or before the first parse).
func (s *Session) Diagnostics() []Diagnostic {
	var out []Diagnostic
	for _, n := range dag.CollectErrors(s.doc.Root()) {
		off, length, ok := s.doc.NodeSpan(n)
		if !ok {
			// Every quarantined token has been edited away; the region will
			// be re-judged (and this entry dropped or replaced) on the next
			// parse.
			continue
		}
		line, col := s.doc.Position(off)
		d := Diagnostic{Offset: off, Length: length, Line: line, Col: col}
		if n.Err != nil {
			d.Expected = n.Err.Expected
			if n.Err.Region != grammar.InvalidSym {
				d.Region = s.lang.def.Grammar.Name(n.Err.Region)
			}
		}
		out = append(out, d)
	}
	return out
}

// ErrorNodes returns the error nodes in the committed tree, leftmost
// first — the structural counterpart of Diagnostics. The returned nodes
// are owned by the session's tree and must not be mutated.
func (s *Session) ErrorNodes() []*Node {
	return dag.CollectErrors(s.doc.Root())
}
