package incremental

import (
	"encoding/hex"
	"os"
	"path/filepath"

	"iglr/internal/langcodec"
	"iglr/internal/langs"
)

// The disk layer of the two-level language cache. Artifacts are compiled
// language files (internal/langcodec) named by the definition's content
// hash, so a stale file is simply never looked up again and any hash
// collision inside a file is caught by the artifact's own embedded hash and
// checksum. All disk failures degrade silently to recompilation: the cache
// is an accelerator, never a correctness dependency.

// defaultCompiledCacheDir resolves the per-user artifact directory; ok is
// false when the platform reports no user cache location.
func defaultCompiledCacheDir() (string, bool) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", false
	}
	return filepath.Join(base, "iglr", "compiled"), true
}

// compiledCacheDir resolves the artifact directory for d; ok is false when
// the disk layer is disabled.
func compiledCacheDir(d LanguageDef) (string, bool) {
	if d.noDiskCache {
		return "", false
	}
	if d.compiledCacheDir != "" {
		return d.compiledCacheDir, true
	}
	return defaultCompiledCacheDir()
}

func artifactPath(dir string, hash [32]byte) string {
	return filepath.Join(dir, hex.EncodeToString(hash[:])+langcodec.FileExt)
}

// loadCompiledArtifact decodes the artifact for hash from dir, or nil when
// absent or unusable. Unusable files (corrupt, version-mismatched, or
// carrying the wrong definition hash) are removed so they are not re-read
// and re-rejected on every cold start.
func loadCompiledArtifact(dir string, hash [32]byte) *langs.Language {
	path := artifactPath(dir, hash)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	l, err := langcodec.Decode(data)
	if err != nil || l.Hash != hash {
		os.Remove(path)
		return nil
	}
	return l
}

// storeCompiledArtifact writes l as an artifact in dir, best-effort: a
// temp-file-plus-rename keeps concurrent readers (and crashed writers) from
// ever observing a partial file, and any failure simply leaves the cache
// cold for the next process.
func storeCompiledArtifact(dir string, hash [32]byte, l *langs.Language) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return
	}
	f, err := os.CreateTemp(dir, "tmp-*"+langcodec.FileExt)
	if err != nil {
		return
	}
	data := langcodec.Encode(l)
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(f.Name())
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return
	}
	if err := os.Rename(f.Name(), artifactPath(dir, hash)); err != nil {
		os.Remove(f.Name())
	}
}
