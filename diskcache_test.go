// The cache invalidation matrix for the compiled-artifact disk layer:
// every way an artifact can be wrong — format-version bump, grammar edit,
// truncation, bit flips — must fall back to clean recompilation, while
// semantics changes (copy-on-write, not part of the compiled tables) must
// keep sharing one cache entry.
package incremental_test

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"strings"
	"testing"

	incremental "iglr"
	"iglr/internal/langcodec"
)

func testDef(name string) incremental.LanguageDef {
	return incremental.LanguageDef{
		Name:    name,
		Grammar: "%token x ';'\n%start L\nL : Item* ;\nItem : x ';' ;",
		Lexer: []incremental.LexRule{
			{Name: "WS", Pattern: `[ \t\n]+`, Skip: true},
			{Name: "X", Pattern: `x`},
			{Name: "SEMI", Pattern: `;`},
		},
		TokenSyms: map[string]string{"X": "x", "SEMI": "';'"},
	}
}

func artifactFiles(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*"+incremental.CompiledExt))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

func parseX(t *testing.T, l *incremental.Language) {
	t.Helper()
	s := incremental.NewSession(l, "x; x;")
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
}

// TestDiskCacheHit: a second process (simulated by dropping the memory
// layer) loads the artifact instead of recompiling, and the loaded language
// parses identically.
func TestDiskCacheHit(t *testing.T) {
	dir := t.TempDir()
	incremental.ResetLanguageCache()
	def := testDef("disk-hit")

	l, err := incremental.DefineLanguage(def, incremental.WithCompiledCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	parseX(t, l)
	st := incremental.LanguageCacheStats()
	if st.DiskMisses != 1 || st.DiskHits != 0 {
		t.Fatalf("after cold compile: disk hits/misses = %d/%d, want 0/1", st.DiskHits, st.DiskMisses)
	}
	if files := artifactFiles(t, dir); len(files) != 1 {
		t.Fatalf("artifact files = %v, want exactly one", files)
	}

	incremental.ResetLanguageCache() // simulate a fresh process
	l2, err := incremental.DefineLanguage(def, incremental.WithCompiledCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	parseX(t, l2)
	st = incremental.LanguageCacheStats()
	if st.DiskHits != 1 || st.DiskMisses != 0 {
		t.Fatalf("after warm start: disk hits/misses = %d/%d, want 1/0", st.DiskHits, st.DiskMisses)
	}
	// Same process, same def again: served by memory, disk untouched.
	if _, err := incremental.DefineLanguage(def, incremental.WithCompiledCache(dir)); err != nil {
		t.Fatal(err)
	}
	if st := incremental.LanguageCacheStats(); st.DiskHits != 1 || st.Hits != 1 {
		t.Fatalf("memory layer must serve repeats: %+v", st)
	}
}

// TestDiskCacheGrammarEdit: any definition edit changes the content hash,
// so the stale artifact is never even looked up.
func TestDiskCacheGrammarEdit(t *testing.T) {
	dir := t.TempDir()
	incremental.ResetLanguageCache()
	def := testDef("disk-edit")
	if _, err := incremental.DefineLanguage(def, incremental.WithCompiledCache(dir)); err != nil {
		t.Fatal(err)
	}

	edited := def
	edited.Grammar = strings.Replace(def.Grammar, "Item* ", "Item+ ", 1)
	incremental.ResetLanguageCache()
	l, err := incremental.DefineLanguage(edited, incremental.WithCompiledCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	parseX(t, l)
	st := incremental.LanguageCacheStats()
	if st.DiskHits != 0 || st.DiskMisses != 1 {
		t.Fatalf("edited grammar must recompile: disk hits/misses = %d/%d", st.DiskHits, st.DiskMisses)
	}
	if files := artifactFiles(t, dir); len(files) != 2 {
		t.Fatalf("artifact files = %v, want two (old + edited)", files)
	}
}

// TestDiskCacheCorruptArtifacts: truncated and bit-flipped artifact files
// recompile cleanly and are removed from the cache directory.
func TestDiskCacheCorruptArtifacts(t *testing.T) {
	corrupt := func(t *testing.T, name string, mangle func([]byte) []byte) {
		dir := t.TempDir()
		incremental.ResetLanguageCache()
		def := testDef(name)
		if _, err := incremental.DefineLanguage(def, incremental.WithCompiledCache(dir)); err != nil {
			t.Fatal(err)
		}
		files := artifactFiles(t, dir)
		if len(files) != 1 {
			t.Fatalf("artifact files = %v", files)
		}
		data, err := os.ReadFile(files[0])
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(files[0], mangle(data), 0o644); err != nil {
			t.Fatal(err)
		}

		incremental.ResetLanguageCache()
		l, err := incremental.DefineLanguage(def, incremental.WithCompiledCache(dir))
		if err != nil {
			t.Fatal(err)
		}
		parseX(t, l)
		st := incremental.LanguageCacheStats()
		if st.DiskHits != 0 || st.DiskMisses != 1 {
			t.Fatalf("corrupt artifact must recompile: disk hits/misses = %d/%d", st.DiskHits, st.DiskMisses)
		}
		// The unusable file was dropped and the recompile rewrote it.
		data2, err := os.ReadFile(files[0])
		if err != nil {
			t.Fatalf("recompile must restore the artifact: %v", err)
		}
		if _, err := langcodec.Decode(data2); err != nil {
			t.Fatalf("restored artifact must decode: %v", err)
		}
	}
	t.Run("truncated", func(t *testing.T) {
		corrupt(t, "disk-trunc", func(b []byte) []byte { return b[:len(b)/2] })
	})
	t.Run("bitflip", func(t *testing.T) {
		corrupt(t, "disk-flip", func(b []byte) []byte {
			b[len(b)/3] ^= 0x10
			return b
		})
	})
}

// TestDiskCacheVersionMismatch: an artifact from a future (or past) format
// version — intact per its checksum — recompiles silently.
func TestDiskCacheVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	incremental.ResetLanguageCache()
	def := testDef("disk-ver")
	if _, err := incremental.DefineLanguage(def, incremental.WithCompiledCache(dir)); err != nil {
		t.Fatal(err)
	}
	files := artifactFiles(t, dir)
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	// Bump the format version byte and re-seal the checksum so only the
	// version check can reject it.
	data[len(langcodec.Magic)] = langcodec.FormatVersion + 1
	body := data[:len(data)-sha256.Size]
	sum := sha256.Sum256(body)
	copy(data[len(data)-sha256.Size:], sum[:])
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	incremental.ResetLanguageCache()
	l, err := incremental.DefineLanguage(def, incremental.WithCompiledCache(dir))
	if err != nil {
		t.Fatal(err)
	}
	parseX(t, l)
	if st := incremental.LanguageCacheStats(); st.DiskHits != 0 || st.DiskMisses != 1 {
		t.Fatalf("version mismatch must recompile: %+v", st)
	}
}

// TestDiskCacheSemanticsShareEntry: WithSemantics is copy-on-write over the
// compiled tables, so definitions differing only in semantics share one
// cache entry (memory and disk).
func TestDiskCacheSemanticsShareEntry(t *testing.T) {
	dir := t.TempDir()
	incremental.ResetLanguageCache()
	def := testDef("disk-sem")
	if _, err := incremental.DefineLanguage(def, incremental.WithCompiledCache(dir)); err != nil {
		t.Fatal(err)
	}
	cfg := incremental.SemanticsConfig{
		IsScope: func(n *incremental.Node) bool { return false },
	}
	l, err := incremental.DefineLanguage(def,
		incremental.WithCompiledCache(dir), incremental.WithSemantics(cfg))
	if err != nil {
		t.Fatal(err)
	}
	parseX(t, l)
	st := incremental.LanguageCacheStats()
	if st.Entries != 1 || st.Hits != 1 {
		t.Fatalf("semantics change must share the compiled entry: %+v", st)
	}
	if files := artifactFiles(t, dir); len(files) != 1 {
		t.Fatalf("artifact files = %v, want one", files)
	}
}

// TestWithoutCompiledCache: the disk layer can be disabled independently of
// the memory layer.
func TestWithoutCompiledCache(t *testing.T) {
	dir := t.TempDir()
	incremental.ResetLanguageCache()
	def := testDef("disk-off")
	def.Name = "disk-off"
	if _, err := incremental.DefineLanguage(def,
		incremental.WithCompiledCache(dir), incremental.WithoutCompiledCache()); err != nil {
		t.Fatal(err)
	}
	if files := artifactFiles(t, dir); len(files) != 0 {
		t.Fatalf("disk layer disabled but wrote %v", files)
	}
	st := incremental.LanguageCacheStats()
	if st.Entries != 1 || st.DiskHits != 0 || st.DiskMisses != 0 {
		t.Fatalf("memory-only stats: %+v", st)
	}
}
