package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	incremental "iglr"
)

// LoadLanguages loads every compiled language artifact (*.cclang) in dir,
// keyed by language name — the deployment-side counterpart of `langc
// compile`: a service points at a directory of precompiled artifacts and
// starts serving without paying table construction for any of them.
//
// Unlike the transparent disk cache, explicit artifacts are a deployment
// input: a corrupt or version-mismatched file is an error (there is no
// source definition to recompile from), as are two artifacts claiming the
// same language name.
func LoadLanguages(dir string) (map[string]*incremental.Language, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := map[string]*incremental.Language{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), incremental.CompiledExt) {
			continue
		}
		path := filepath.Join(dir, e.Name())
		l, err := incremental.LoadCompiledFile(path)
		if err != nil {
			return nil, err
		}
		if _, dup := out[l.Name()]; dup {
			return nil, fmt.Errorf("%s: duplicate artifact for language %q", path, l.Name())
		}
		out[l.Name()] = l
	}
	return out, nil
}
