package engine

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	incremental "iglr"
)

// writeArtifacts compiles a few bundled languages into dir.
func writeArtifacts(t *testing.T, dir string, names ...string) {
	t.Helper()
	for _, name := range names {
		l, ok := incremental.BundledLanguage(name)
		if !ok {
			t.Fatalf("no bundled language %q", name)
		}
		if err := l.SaveCompiledFile(filepath.Join(dir, name+incremental.CompiledExt)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadLanguages(t *testing.T) {
	dir := t.TempDir()
	writeArtifacts(t, dir, "expr", "c-subset", "java-subset")
	// Non-artifact clutter is ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	langs, err := LoadLanguages(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(langs) != 3 {
		t.Fatalf("loaded %d languages, want 3: %v", len(langs), langs)
	}
	l, ok := langs["c-subset"]
	if !ok {
		t.Fatal("c-subset missing")
	}
	// A loaded language must drive the batch engine end to end.
	batch, err := ParseAll(context.Background(), l, []Input{
		{Name: "a.c", Source: "int a = 1;"},
		{Name: "b.c", Source: "int b = 2; { b = b + 1; }"},
	}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range batch.Results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
	}
}

func TestLoadLanguagesRejectsCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	writeArtifacts(t, dir, "expr")
	path := filepath.Join(dir, "expr"+incremental.CompiledExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLanguages(dir); err == nil {
		t.Fatal("corrupt artifact must be a deployment error, not a silent skip")
	}
}

func TestLoadLanguagesRejectsDuplicateNames(t *testing.T) {
	dir := t.TempDir()
	writeArtifacts(t, dir, "expr")
	src := filepath.Join(dir, "expr"+incremental.CompiledExt)
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "expr-copy"+incremental.CompiledExt), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadLanguages(dir)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate names must error, got %v", err)
	}
}

// The daemon points LoadLanguages at operator-supplied directories, so the
// failure paths below are its startup/reload error surface.

func TestLoadLanguagesEmptyDir(t *testing.T) {
	langs, err := LoadLanguages(t.TempDir())
	if err != nil {
		t.Fatalf("an empty artifact dir is a valid (if useless) deployment: %v", err)
	}
	if len(langs) != 0 {
		t.Fatalf("loaded %d languages from an empty dir", len(langs))
	}
}

func TestLoadLanguagesMissingDir(t *testing.T) {
	if _, err := LoadLanguages(filepath.Join(t.TempDir(), "no-such-dir")); err == nil {
		t.Fatal("a missing artifact dir must be a deployment error")
	}
}

// A corrupt artifact must fail the whole load even when valid artifacts
// surround it — a daemon must refuse to start (or reload) half-configured
// rather than silently drop a language.
func TestLoadLanguagesMixedValidAndCorrupt(t *testing.T) {
	dir := t.TempDir()
	writeArtifacts(t, dir, "expr", "c-subset", "java-subset")
	bad := filepath.Join(dir, "c-subset"+incremental.CompiledExt)
	data, err := os.ReadFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/3] ^= 0x40
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLanguages(dir); err == nil {
		t.Fatal("one corrupt artifact among valid ones must fail the load")
	} else if !strings.Contains(err.Error(), "c-subset") {
		t.Fatalf("error must name the corrupt artifact, got %v", err)
	}
}

// A truncated artifact (partial write, torn deploy) is corrupt too.
func TestLoadLanguagesTruncatedArtifact(t *testing.T) {
	dir := t.TempDir()
	writeArtifacts(t, dir, "expr")
	path := filepath.Join(dir, "expr"+incremental.CompiledExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLanguages(dir); err == nil {
		t.Fatal("truncated artifact must be a deployment error")
	}
}

// Subdirectories are not traversed: artifact dirs are flat by contract.
func TestLoadLanguagesIgnoresSubdirectories(t *testing.T) {
	dir := t.TempDir()
	writeArtifacts(t, dir, "expr")
	sub := filepath.Join(dir, "nested")
	if err := os.Mkdir(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	writeArtifacts(t, sub, "java-subset")
	langs, err := LoadLanguages(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(langs) != 1 {
		t.Fatalf("loaded %d languages, want 1 (nested dir must be ignored)", len(langs))
	}
	if _, ok := langs["expr"]; !ok {
		t.Fatal("top-level expr artifact missing")
	}
}
