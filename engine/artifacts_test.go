package engine

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	incremental "iglr"
)

// writeArtifacts compiles a few bundled languages into dir.
func writeArtifacts(t *testing.T, dir string, names ...string) {
	t.Helper()
	for _, name := range names {
		l, ok := incremental.BundledLanguage(name)
		if !ok {
			t.Fatalf("no bundled language %q", name)
		}
		if err := l.SaveCompiledFile(filepath.Join(dir, name+incremental.CompiledExt)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadLanguages(t *testing.T) {
	dir := t.TempDir()
	writeArtifacts(t, dir, "expr", "c-subset", "java-subset")
	// Non-artifact clutter is ignored.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}

	langs, err := LoadLanguages(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(langs) != 3 {
		t.Fatalf("loaded %d languages, want 3: %v", len(langs), langs)
	}
	l, ok := langs["c-subset"]
	if !ok {
		t.Fatal("c-subset missing")
	}
	// A loaded language must drive the batch engine end to end.
	batch, err := ParseAll(context.Background(), l, []Input{
		{Name: "a.c", Source: "int a = 1;"},
		{Name: "b.c", Source: "int b = 2; { b = b + 1; }"},
	}, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range batch.Results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
	}
}

func TestLoadLanguagesRejectsCorruptArtifact(t *testing.T) {
	dir := t.TempDir()
	writeArtifacts(t, dir, "expr")
	path := filepath.Join(dir, "expr"+incremental.CompiledExt)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLanguages(dir); err == nil {
		t.Fatal("corrupt artifact must be a deployment error, not a silent skip")
	}
}

func TestLoadLanguagesRejectsDuplicateNames(t *testing.T) {
	dir := t.TempDir()
	writeArtifacts(t, dir, "expr")
	src := filepath.Join(dir, "expr"+incremental.CompiledExt)
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "expr-copy"+incremental.CompiledExt), data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadLanguages(dir)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate names must error, got %v", err)
	}
}
