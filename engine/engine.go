// Package engine is a parallel corpus driver for the incremental analysis
// pipeline: it lexes, parses, and (optionally) semantically resolves many
// documents concurrently over one shared compiled language. It is the
// serving-scale counterpart to the paper's single-stream measurements —
// compiled languages are immutable (see the root package's concurrency
// model), so a bounded worker pool can fan a corpus out across cores with
// no per-worker table construction.
//
// Failures are isolated per file: a document that fails to parse — or
// whose analysis panics — produces a Result carrying the error while the
// rest of the batch completes normally. Cancelling the context stops the
// batch promptly (the parsers poll the context inside their main loops)
// and leaves no goroutines behind.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	incremental "iglr"
)

// Input is one document to analyze.
type Input struct {
	// Name labels the document in its Result (a file name, request id, …).
	Name string
	// Source is the document text.
	Source string
}

// Result is the outcome for one input.
type Result struct {
	// Name and Index identify the input (Index is its position in the
	// batch; Results are returned in input order).
	Name  string
	Index int
	// Root is the parse dag, nil when Err is non-nil.
	Root *incremental.Node
	// Err is nil on success; otherwise a *incremental.ParseError, a
	// *PanicError (the worker recovered a panic for this file), or the
	// context's error for inputs abandoned by cancellation.
	Err error
	// Stats counts the parser work for this document.
	Stats incremental.ParseStats
	// Dag measures the parse dag (AnalyzeAll only).
	Dag incremental.DagStats
	// Semantics reports the §4.2 resolution pass (AnalyzeAll over a
	// language with a semantics configuration).
	Semantics incremental.SemanticsResult
	// Bytes is len(Source); Duration is this file's wall time (summed
	// over attempts, excluding backoff sleeps).
	Bytes    int
	Duration time.Duration
	// Attempts is how many times the file was tried (1 unless a Policy
	// with Retries was set and an attempt failed retryably).
	Attempts int
	// Diagnostics lists the quarantined syntax-error regions when the
	// policy is Tolerant and the file parsed under tier-1 error isolation
	// (empty for clean parses). Root is then a valid tree with one error
	// node per diagnostic and Err is nil.
	Diagnostics []incremental.Diagnostic
	// Degraded reports that the result was produced under reduced
	// fidelity: the parse ran with the policy's DegradedBudget, and/or
	// the dag had ambiguous regions pruned by the alternatives budget.
	Degraded bool
	// BudgetTrips counts attempts of this file that ended in a
	// *incremental.BudgetError.
	BudgetTrips int
}

// PanicError is a panic recovered while analyzing one input.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: analysis panicked: %v", e.Value)
}

// Aggregate summarizes a batch.
type Aggregate struct {
	// Files counts all inputs; Failed counts those with a non-nil Err
	// (including inputs abandoned by cancellation).
	Files, Failed int
	// Bytes is the total source size of successfully analyzed inputs.
	Bytes int64
	// Stats sums the per-file parser work; MaxActiveParsers is the
	// maximum over files.
	Stats incremental.ParseStats
	// Dag sums the per-file dag measurements; MaxAlternatives is the
	// maximum over files (AnalyzeAll only).
	Dag incremental.DagStats
	// Semantics sums the per-file resolution results (AnalyzeAll only).
	Semantics incremental.SemanticsResult
	// Degraded counts files whose result was produced at reduced
	// fidelity (see Result.Degraded); BudgetTrips sums the budget
	// errors hit across all attempts of all files.
	Degraded, BudgetTrips int
	// FilesWithDiagnostics counts files that parsed only under tier-1
	// error isolation; Diagnostics sums their quarantined regions
	// (Tolerant policies only).
	FilesWithDiagnostics, Diagnostics int
	// Wall is the batch wall time, including worker startup.
	Wall time.Duration
}

// Batch is the outcome of ParseAll/AnalyzeAll: one Result per input, in
// input order, plus the aggregate.
type Batch struct {
	Results   []Result
	Aggregate Aggregate
}

// Option configures a batch run.
type Option func(*config)

type config struct {
	analyze bool
	policy  Policy
}

// WithWorkers bounds the worker pool (default runtime.GOMAXPROCS(0);
// values < 1 select the default). It is shorthand for setting
// Policy.Workers — the policy struct is the one knobs surface, so a
// service can unmarshal a whole batch configuration from JSON.
func WithWorkers(n int) Option {
	return func(c *config) { c.policy.Workers = n }
}

// Policy governs a batch run: the worker pool, per-file resource use, and
// failure handling. The zero Policy is the permissive default: default
// worker count, no budget, no timeout, one attempt. Policy marshals to
// JSON (durations as nanoseconds), so a daemon's reloadable config can
// carry one straight into the engine.
type Policy struct {
	// Workers bounds the worker pool (default runtime.GOMAXPROCS(0);
	// values < 1 select the default).
	Workers int `json:"workers,omitempty"`
	// LexWorkers sets the goroutine count for each file's initial chunked
	// lex (see incremental.WithLexWorkers; clamped to GOMAXPROCS, 0 or 1
	// lexes sequentially). Worth setting above 1 when the batch has fewer
	// big files than cores — with Workers already saturating the machine,
	// file-level parallelism is the better first knob.
	LexWorkers int `json:"lex_workers,omitempty"`
	// ParseWorkers sets the goroutine count for each file's cold chunked
	// parse (see incremental.WithParseWorkers; 0 or 1 parses
	// sequentially). Only engages on languages whose top level is an
	// associative sequence and on files past the chunker's minimum size;
	// everything else falls back to the sequential parser with
	// byte-identical trees either way. Like LexWorkers, this is the
	// file-level parallelism knob for batches with fewer big files than
	// cores.
	ParseWorkers int `json:"parse_workers,omitempty"`
	// Budget bounds every parse attempt's resources (see
	// incremental.Budget; the zero value is unlimited).
	Budget incremental.Budget `json:"budget,omitempty"`
	// FileTimeout bounds each attempt's wall time via a per-file context
	// deadline (0 = none). It composes with Budget.MaxDuration: the
	// timeout covers the whole attempt, the budget just the parse.
	FileTimeout time.Duration `json:"file_timeout_ns,omitempty"`
	// Retries is how many extra attempts a file gets after a retryable
	// failure — a budget trip, a FileTimeout expiry, or a recovered
	// panic. Batch-context cancellation is never retried.
	Retries int `json:"retries,omitempty"`
	// Backoff is slept between attempts (cancellable by the batch
	// context).
	Backoff time.Duration `json:"backoff_ns,omitempty"`
	// DegradedBudget, when non-nil, replaces Budget on retry attempts.
	// The intended shape trades fidelity for completion — e.g. a small
	// MaxAlternatives so ambiguous regions are pruned to their preferred
	// interpretation instead of exhausting the forest budget. Results
	// produced under it are marked Degraded.
	DegradedBudget *incremental.Budget `json:"degraded_budget,omitempty"`
	// Tolerant makes syntax errors non-fatal per file: the session's
	// tier-1 error isolation quarantines the damage and the Result
	// carries a valid Root plus Diagnostics instead of an Err. Files
	// whose damage cannot be bounded still fail. Budget trips, timeouts
	// and cancellation are unaffected — they stay errors (and stay
	// retryable).
	Tolerant bool `json:"tolerant,omitempty"`
}

// WithPolicy sets the batch's policy. A zero p.Workers preserves a worker
// count set by an earlier WithWorkers, so the two options compose in
// either order.
func WithPolicy(p Policy) Option {
	return func(c *config) {
		if p.Workers == 0 {
			p.Workers = c.policy.Workers
		}
		c.policy = p
	}
}

// ParseAll parses every input over the shared language with a bounded
// worker pool. It returns the per-file results (in input order) and the
// batch aggregate. The returned error is nil unless the context was
// cancelled; per-file failures are reported in their Result only.
func ParseAll(ctx context.Context, lang *incremental.Language, inputs []Input, opts ...Option) (*Batch, error) {
	return run(ctx, lang, inputs, false, opts)
}

// AnalyzeAll is ParseAll plus the rest of the pipeline per document:
// semantic disambiguation (when the language carries a semantics
// configuration) and dag space measurement.
func AnalyzeAll(ctx context.Context, lang *incremental.Language, inputs []Input, opts ...Option) (*Batch, error) {
	return run(ctx, lang, inputs, true, opts)
}

func run(ctx context.Context, lang *incremental.Language, inputs []Input, analyze bool, opts []Option) (*Batch, error) {
	cfg := config{analyze: analyze}
	for _, o := range opts {
		o(&cfg)
	}
	workers := cfg.policy.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(inputs) && len(inputs) > 0 {
		workers = len(inputs)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	start := time.Now()
	results := make([]Result, len(inputs))
	jobs := make(chan int)
	// One session pool per batch: workers recycle parser arenas, sharer
	// tables and document buffers across files instead of reallocating
	// them per file. Parse trees live in per-session arenas that are never
	// recycled, so Results stay valid after the batch returns.
	pool := incremental.NewPool(lang)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = analyzeOne(ctx, lang, pool, inputs[i], i, &cfg)
			}
		}()
	}

	// Feed jobs until done or cancelled; unfed inputs are marked with the
	// context error below.
	fed := 0
feed:
	for ; fed < len(inputs); fed++ {
		select {
		case jobs <- fed:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	for i := fed; i < len(inputs); i++ {
		results[i] = Result{Name: inputs[i].Name, Index: i, Err: ctx.Err()}
	}

	b := &Batch{Results: results}
	b.Aggregate = aggregate(results)
	b.Aggregate.Wall = time.Since(start)
	return b, ctx.Err()
}

// analyzeOne runs the pipeline for one input under the batch policy:
// each attempt is panic-isolated, retryable failures (budget trips,
// per-file timeouts, recovered panics) are retried up to Retries times —
// under DegradedBudget when one is configured — and batch cancellation
// stops the attempt loop immediately.
func analyzeOne(ctx context.Context, lang *incremental.Language, pool *incremental.Pool, in Input, idx int, cfg *config) Result {
	var (
		res      Result
		trips    int
		duration time.Duration
	)
	for attempt := 0; ; attempt++ {
		budget, degraded := cfg.policy.Budget, false
		if attempt > 0 && cfg.policy.DegradedBudget != nil {
			budget, degraded = *cfg.policy.DegradedBudget, true
		}
		res = attemptOne(ctx, lang, pool, in, idx, cfg, budget)
		res.Attempts = attempt + 1
		res.Degraded = res.Degraded || degraded
		duration += res.Duration
		if errors.Is(res.Err, incremental.ErrBudget) {
			trips++
		}
		if res.Err == nil || attempt >= cfg.policy.Retries ||
			ctx.Err() != nil || !retryable(res.Err) {
			break
		}
		if cfg.policy.Backoff > 0 {
			t := time.NewTimer(cfg.policy.Backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		}
	}
	res.Duration = duration
	res.BudgetTrips = trips
	return res
}

// retryable reports whether a failed attempt is worth repeating: resource
// exhaustion (budget, per-file deadline) and recovered panics are; syntax
// errors and batch cancellation are not.
func retryable(err error) bool {
	if errors.Is(err, incremental.ErrBudget) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var pe *PanicError
	return errors.As(err, &pe)
}

// attemptOne runs the pipeline once for one input, converting panics into
// a *PanicError so a poisoned file cannot take down the batch (or its own
// later attempts).
func attemptOne(ctx context.Context, lang *incremental.Language, pool *incremental.Pool, in Input, idx int,
	cfg *config, budget incremental.Budget) (res Result) {
	res = Result{Name: in.Name, Index: idx, Bytes: len(in.Source)}
	start := time.Now()
	defer func() {
		res.Duration = time.Since(start)
		if r := recover(); r != nil {
			// The session is deliberately NOT recycled on panic: its parser
			// may be mid-flight in an arbitrary state.
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			res = Result{
				Name: in.Name, Index: idx, Bytes: len(in.Source),
				Err: &PanicError{Value: r, Stack: buf}, Duration: time.Since(start),
			}
		}
	}()
	if cfg.policy.FileTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.policy.FileTimeout)
		defer cancel()
	}

	s := pool.NewSession(in.Source,
		incremental.WithBudget(budget),
		incremental.WithLexWorkers(cfg.policy.LexWorkers),
		incremental.WithParseWorkers(cfg.policy.ParseWorkers))
	var root *incremental.Node
	var err error
	if cfg.policy.Tolerant {
		out := s.Do(ctx, incremental.Tolerant())
		root, err = out.Root, out.Err
		if err == nil && root == nil {
			err = fmt.Errorf("engine: %s: recovery produced no tree", in.Name)
		}
		if out.Isolated {
			res.Diagnostics = s.Diagnostics()
		}
	} else {
		out := s.Do(ctx)
		root, err = out.Root, out.Err
	}
	res.Stats = s.Stats()
	res.Degraded = res.Stats.BudgetPruned > 0
	if err != nil {
		res.Err = err
		pool.Recycle(s)
		return res
	}
	res.Root = root
	if cfg.analyze {
		res.Semantics = s.Resolve()
		res.Dag = incremental.Measure(root)
	}
	pool.Recycle(s)
	return res
}

func aggregate(results []Result) Aggregate {
	var a Aggregate
	a.Files = len(results)
	for i := range results {
		r := &results[i]
		a.BudgetTrips += r.BudgetTrips
		if r.Err != nil {
			a.Failed++
			continue
		}
		if r.Degraded {
			a.Degraded++
		}
		if len(r.Diagnostics) > 0 {
			a.FilesWithDiagnostics++
			a.Diagnostics += len(r.Diagnostics)
		}
		a.Bytes += int64(r.Bytes)
		addStats(&a.Stats, r.Stats)
		addDag(&a.Dag, r.Dag)
		a.Semantics.ResolvedDecl += r.Semantics.ResolvedDecl
		a.Semantics.ResolvedStmt += r.Semantics.ResolvedStmt
		a.Semantics.Unresolved += r.Semantics.Unresolved
		a.Semantics.TypeBindings += r.Semantics.TypeBindings
		a.Semantics.OrdinaryBindings += r.Semantics.OrdinaryBindings
	}
	return a
}

func addStats(dst *incremental.ParseStats, s incremental.ParseStats) {
	dst.Shifts += s.Shifts
	dst.SubtreeShifts += s.SubtreeShifts
	dst.TerminalShifts += s.TerminalShifts
	dst.Reductions += s.Reductions
	dst.Breakdowns += s.Breakdowns
	dst.Splits += s.Splits
	dst.Rounds += s.Rounds
	dst.RetainedNodes += s.RetainedNodes
	dst.BudgetPruned += s.BudgetPruned
	if s.MaxActiveParsers > dst.MaxActiveParsers {
		dst.MaxActiveParsers = s.MaxActiveParsers
	}
}

func addDag(dst *incremental.DagStats, s incremental.DagStats) {
	dst.DagNodes += s.DagNodes
	dst.TreeNodes += s.TreeNodes
	dst.ChoiceNodes += s.ChoiceNodes
	dst.AmbiguousRegions += s.AmbiguousRegions
	dst.Terminals += s.Terminals
	dst.BudgetPruned += s.BudgetPruned
	dst.ErrorNodes += s.ErrorNodes
	if s.MaxAlternatives > dst.MaxAlternatives {
		dst.MaxAlternatives = s.MaxAlternatives
	}
}
