package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	incremental "iglr"
	"iglr/internal/corpus"
)

// testCorpus generates n small C files with ambiguous constructs.
func testCorpus(n, lines int) ([]Input, int) {
	inputs := make([]Input, n)
	totalAmb := 0
	for i := range inputs {
		src, amb := corpus.Generate(corpus.Spec{
			Name: fmt.Sprintf("file%d", i), Lines: lines, Lang: "c",
			AmbiguousPerKLoC: 20, Seed: int64(i + 1),
		})
		inputs[i] = Input{Name: fmt.Sprintf("file%d.c", i), Source: src}
		totalAmb += amb
	}
	return inputs, totalAmb
}

func TestParseAllOverSharedLanguage(t *testing.T) {
	inputs, _ := testCorpus(12, 120)
	lang := incremental.CSubset()
	b, err := ParseAll(context.Background(), lang, inputs, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if b.Aggregate.Files != 12 || b.Aggregate.Failed != 0 {
		t.Fatalf("aggregate = %+v", b.Aggregate)
	}
	for i, r := range b.Results {
		if r.Index != i || r.Name != inputs[i].Name {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
		if r.Err != nil || r.Root == nil {
			t.Fatalf("file %s failed: %v", r.Name, r.Err)
		}
		if r.Stats.TerminalShifts == 0 {
			t.Fatalf("file %s has no parse stats", r.Name)
		}
	}
	if b.Aggregate.Stats.TerminalShifts == 0 || b.Aggregate.Bytes == 0 {
		t.Fatalf("aggregate not summed: %+v", b.Aggregate)
	}
}

func TestAnalyzeAllResolvesAndMeasures(t *testing.T) {
	inputs, totalAmb := testCorpus(8, 150)
	lang := incremental.CSubset()
	b, err := AnalyzeAll(context.Background(), lang, inputs, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if b.Aggregate.Failed != 0 {
		t.Fatalf("aggregate = %+v", b.Aggregate)
	}
	if b.Aggregate.Semantics.ResolvedDecl != totalAmb {
		t.Fatalf("resolved %d of %d ambiguous constructs", b.Aggregate.Semantics.ResolvedDecl, totalAmb)
	}
	// Resolution marks the losing interpretations, so the regions no longer
	// count as ambiguous — but their choice nodes remain in the dag.
	if b.Aggregate.Dag.DagNodes == 0 || b.Aggregate.Dag.ChoiceNodes == 0 {
		t.Fatalf("dag stats not aggregated: %+v", b.Aggregate.Dag)
	}
}

// TestPerFileErrorIsolation: a file with a syntax error fails alone; the
// rest of the batch completes.
func TestPerFileErrorIsolation(t *testing.T) {
	inputs, _ := testCorpus(6, 80)
	inputs[3] = Input{Name: "broken.c", Source: "int a; !!! int b;"}
	lang := incremental.CSubset()
	b, err := ParseAll(context.Background(), lang, inputs, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if b.Aggregate.Failed != 1 {
		t.Fatalf("failed = %d, want 1", b.Aggregate.Failed)
	}
	var pe *incremental.ParseError
	if !errors.As(b.Results[3].Err, &pe) {
		t.Fatalf("broken.c error = %v, want *ParseError", b.Results[3].Err)
	}
	for i, r := range b.Results {
		if i != 3 && (r.Err != nil || r.Root == nil) {
			t.Fatalf("healthy file %s failed: %v", r.Name, r.Err)
		}
	}
}

// TestPanicIsolation: a panicking semantic hook poisons only its own file.
func TestPanicIsolation(t *testing.T) {
	lang, err := incremental.DefineGrammar(
		"%token x ';'\n%start L\nL : Item* ;\nItem : x ';' ;",
		incremental.WithName("panicky"),
		incremental.WithLexer(
			incremental.LexRule{Name: "WS", Pattern: `[ \t\n]+`, Skip: true},
			incremental.LexRule{Name: "X", Pattern: `x`},
			incremental.LexRule{Name: "SEMI", Pattern: `;`},
		),
		incremental.WithTokenSyms(map[string]string{"X": "x", "SEMI": "';'"}),
		incremental.WithSemantics(incremental.SemanticsConfig{
			IsScope: func(n *incremental.Node) bool {
				if strings.Contains(n.Yield(), "x;x;x;") {
					panic("hook exploded")
				}
				return false
			},
			TypedefName:          func(n *incremental.Node) (string, bool) { return "", false },
			DeclaredName:         func(n *incremental.Node) (string, bool) { return "", false },
			IsDeclInterpretation: func(n *incremental.Node) bool { return false },
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	inputs := []Input{
		{Name: "ok1", Source: "x; x;"},
		{Name: "boom", Source: "x; x; x;"},
		{Name: "ok2", Source: "x;"},
	}
	b, err := AnalyzeAll(context.Background(), lang, inputs, WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	var pe *PanicError
	if !errors.As(b.Results[1].Err, &pe) {
		t.Fatalf("boom error = %v, want *PanicError", b.Results[1].Err)
	}
	if pe.Value != "hook exploded" || len(pe.Stack) == 0 {
		t.Fatalf("panic not captured: %+v", pe)
	}
	if b.Results[0].Err != nil || b.Results[2].Err != nil {
		t.Fatalf("healthy files failed: %v %v", b.Results[0].Err, b.Results[2].Err)
	}
	if b.Aggregate.Failed != 1 {
		t.Fatalf("failed = %d, want 1", b.Aggregate.Failed)
	}
}

// TestCancellationStopsBatchWithoutLeaks: cancelling mid-batch returns the
// context error, marks unprocessed inputs, and leaves no goroutines.
func TestCancellationStopsBatchWithoutLeaks(t *testing.T) {
	before := runtime.NumGoroutine()

	inputs, _ := testCorpus(16, 4000)
	lang := incremental.CSubset()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	b, err := ParseAll(ctx, lang, inputs, WithWorkers(4))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	if b == nil || len(b.Results) != len(inputs) {
		t.Fatal("cancelled batch must still return all result slots")
	}
	cancelled := 0
	for _, r := range b.Results {
		if errors.Is(r.Err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no input observed the cancellation — batch ran to completion too fast to test")
	}

	// Workers exit promptly; allow the runtime a moment to reap them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, n)
	}
}

func TestEmptyBatch(t *testing.T) {
	b, err := ParseAll(context.Background(), incremental.CSubset(), nil)
	if err != nil || len(b.Results) != 0 || b.Aggregate.Files != 0 {
		t.Fatalf("empty batch: %+v err=%v", b, err)
	}
}

// TestTolerantPolicyKeepsBrokenFiles: under Policy.Tolerant a syntactically
// broken file still yields a Root — the damage quarantined under error
// nodes and reported as Diagnostics — while healthy files are untouched and
// files isolation cannot bound keep surfacing their parse error.
func TestTolerantPolicyKeepsBrokenFiles(t *testing.T) {
	inputs := []Input{
		{Name: "ok1.c", Source: "int a; a = 1;"},
		{Name: "broken.c", Source: "int a; int (; int b;"},
		{Name: "ok2.c", Source: "int z;"},
	}
	lang := incremental.CSubset()
	b, err := AnalyzeAll(context.Background(), lang, inputs,
		WithWorkers(2), WithPolicy(Policy{Tolerant: true}))
	if err != nil {
		t.Fatal(err)
	}
	if b.Aggregate.Failed != 0 {
		t.Fatalf("tolerant batch reported failures: %+v", b.Aggregate)
	}
	for _, r := range b.Results {
		if r.Err != nil || r.Root == nil {
			t.Fatalf("file %s: err=%v root=%v", r.Name, r.Err, r.Root)
		}
	}
	if n := len(b.Results[1].Diagnostics); n < 1 {
		t.Fatalf("broken.c diagnostics = %d, want >= 1", n)
	}
	if len(b.Results[0].Diagnostics) != 0 || len(b.Results[2].Diagnostics) != 0 {
		t.Fatal("healthy files must not carry diagnostics")
	}
	if b.Aggregate.FilesWithDiagnostics != 1 || b.Aggregate.Diagnostics < 1 {
		t.Fatalf("aggregate diagnostics: %+v", b.Aggregate)
	}
	if b.Aggregate.Dag.ErrorNodes < 1 {
		t.Fatalf("aggregate error nodes = %d", b.Aggregate.Dag.ErrorNodes)
	}
}
