package engine

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	incremental "iglr"
	"iglr/internal/corpus"
)

// TestLexWorkersDifferential: a batch parsed with parallel per-file lexing
// commits trees byte-identical to the sequential batch — the engine-level
// spelling of the chunked-vs-sequential oracle.
func TestLexWorkersDifferential(t *testing.T) {
	// ScanParallel clamps to GOMAXPROCS; raise it so single-CPU machines
	// still exercise real chunk stitching.
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	lang := incremental.CSubset()
	// Files must clear the lexer's per-chunk minimum to actually chunk.
	inputs := make([]Input, 4)
	for i := range inputs {
		src, _ := corpus.Generate(corpus.Spec{
			Name: fmt.Sprintf("big%d", i), Lines: 6000, Lang: "c",
			AmbiguousPerKLoC: 10, Seed: int64(i + 1),
		})
		if len(src) < 64<<10 {
			t.Fatalf("generated file too small to chunk: %d bytes", len(src))
		}
		inputs[i] = Input{Name: fmt.Sprintf("big%d.c", i), Source: src}
	}

	seq, err := ParseAll(context.Background(), lang, inputs, WithPolicy(Policy{Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParseAll(context.Background(), lang, inputs, WithPolicy(Policy{Workers: 2, LexWorkers: 4}))
	if err != nil {
		t.Fatal(err)
	}
	for i := range inputs {
		a, b := seq.Results[i], par.Results[i]
		if (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("%s: sequential err %v, parallel err %v", inputs[i].Name, a.Err, b.Err)
		}
		if a.Err != nil {
			continue
		}
		if incremental.FormatDag(lang, a.Root) != incremental.FormatDag(lang, b.Root) {
			t.Fatalf("%s: parallel-lex tree diverges from sequential", inputs[i].Name)
		}
	}
}
