package engine

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	incremental "iglr"
	"iglr/internal/faultinject"
)

func pathologicalInput(t *testing.T) Input {
	t.Helper()
	b, err := os.ReadFile("../testdata/pathological_expr.txt")
	if err != nil {
		t.Fatal(err)
	}
	return Input{Name: "pathological.expr", Source: strings.TrimSpace(string(b))}
}

// The policy's headline flow: the strict budget trips on a pathological
// file, the retry runs under the degraded budget, and the file completes
// at reduced fidelity instead of failing.
func TestPolicyDegradedRetryCompletesPathologicalFile(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	inputs := []Input{
		{Name: "ok.expr", Source: "1+2*3"},
		pathologicalInput(t),
	}
	degraded := incremental.Budget{MaxAlternatives: 1}
	b, err := AnalyzeAll(context.Background(), lang, inputs,
		WithWorkers(2),
		WithPolicy(Policy{
			Budget:         incremental.Budget{MaxGSSLinks: 64},
			Retries:        1,
			DegradedBudget: &degraded,
		}))
	if err != nil {
		t.Fatal(err)
	}
	ok, bad := b.Results[0], b.Results[1]
	if ok.Err != nil || ok.Attempts != 1 || ok.Degraded || ok.BudgetTrips != 0 {
		t.Fatalf("healthy file: %+v", ok)
	}
	if bad.Err != nil {
		t.Fatalf("pathological file should complete degraded: %v", bad.Err)
	}
	if bad.Attempts != 2 || !bad.Degraded || bad.BudgetTrips != 1 {
		t.Fatalf("attempts=%d degraded=%v trips=%d", bad.Attempts, bad.Degraded, bad.BudgetTrips)
	}
	if bad.Stats.BudgetPruned == 0 {
		t.Fatal("the degraded parse must have pruned")
	}
	if b.Aggregate.Failed != 0 || b.Aggregate.Degraded != 1 || b.Aggregate.BudgetTrips != 1 {
		t.Fatalf("aggregate = %+v", b.Aggregate)
	}
	// AnalyzeAll measured the degraded dag: the pruned regions show up in
	// the aggregated space statistics.
	if bad.Dag.BudgetPruned == 0 || b.Aggregate.Dag.BudgetPruned == 0 {
		t.Fatalf("pruned regions missing from dag stats: file=%+v agg=%+v", bad.Dag, b.Aggregate.Dag)
	}
}

// Without a degraded budget the retries rerun the same losing parse; the
// file fails with the budget error and every trip is counted.
func TestPolicyBudgetExhaustionFailsFile(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	b, err := ParseAll(context.Background(), lang, []Input{pathologicalInput(t)},
		WithPolicy(Policy{Budget: incremental.Budget{MaxGSSNodes: 16}, Retries: 2}))
	if err != nil {
		t.Fatal(err)
	}
	r := b.Results[0]
	if !errors.Is(r.Err, incremental.ErrBudget) {
		t.Fatalf("err = %v, want a budget trip", r.Err)
	}
	if r.Attempts != 3 || r.BudgetTrips != 3 {
		t.Fatalf("attempts=%d trips=%d, want 3/3", r.Attempts, r.BudgetTrips)
	}
	if b.Aggregate.Failed != 1 || b.Aggregate.BudgetTrips != 3 || b.Aggregate.Degraded != 0 {
		t.Fatalf("aggregate = %+v", b.Aggregate)
	}
}

// Syntax errors are deterministic: retrying them is pointless and the
// policy must not.
func TestPolicyDoesNotRetrySyntaxErrors(t *testing.T) {
	lang := incremental.CSubset()
	b, err := ParseAll(context.Background(), lang,
		[]Input{{Name: "broken.c", Source: "int a; !!!"}},
		WithPolicy(Policy{Retries: 3, Backoff: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	r := b.Results[0]
	if r.Err == nil || r.Attempts != 1 {
		t.Fatalf("attempts=%d err=%v, want one failed attempt", r.Attempts, r.Err)
	}
}

// FileTimeout bounds each attempt with a per-file deadline, and expiries
// are retryable.
func TestPolicyFileTimeout(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	b, err := ParseAll(context.Background(), lang, []Input{pathologicalInput(t)},
		WithPolicy(Policy{FileTimeout: time.Nanosecond, Retries: 1}))
	if err != nil {
		t.Fatal(err)
	}
	r := b.Results[0]
	if !errors.Is(r.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", r.Err)
	}
	if r.Attempts != 2 {
		t.Fatalf("attempts = %d, want the expiry retried once", r.Attempts)
	}
}

// A transient panic (injected once, mid-reduction) is recovered, retried,
// and the file completes on the clean attempt.
func TestPolicyRetriesRecoveredPanic(t *testing.T) {
	faultinject.Activate(faultinject.NewPlan(faultinject.Trigger{
		Point: faultinject.Reduce, Do: faultinject.ActPanic}))
	defer faultinject.Deactivate()

	lang := incremental.CSubset()
	b, err := ParseAll(context.Background(), lang,
		[]Input{{Name: "flaky.c", Source: "int a; a = 1;"}},
		WithPolicy(Policy{Retries: 1}))
	if err != nil {
		t.Fatal(err)
	}
	r := b.Results[0]
	if r.Err != nil || r.Root == nil {
		t.Fatalf("file should complete on retry: %v", r.Err)
	}
	if r.Attempts != 2 {
		t.Fatalf("attempts = %d, want 2", r.Attempts)
	}
}

// Satellite: panic isolation across pipeline stages. Content-matched
// triggers follow a token unique to one file, so exactly that file fails —
// deterministically, regardless of worker scheduling — at the lexing and
// reducing stages.
func TestPolicyPanicIsolationAcrossStages(t *testing.T) {
	lang := incremental.CSubset()
	inputs := []Input{
		{Name: "a.c", Source: "int a; a = 1;"},
		{Name: "boom.c", Source: "int kaboom; kaboom = 1;"},
		{Name: "b.c", Source: "int b; b = 2;"},
	}
	for _, stage := range []faultinject.Point{faultinject.LexTerminal, faultinject.Reduce} {
		t.Run(stage.String(), func(t *testing.T) {
			faultinject.Activate(faultinject.NewPlan(faultinject.Trigger{
				Point: stage, Match: "kaboom", Every: 1, Do: faultinject.ActPanic}))
			defer faultinject.Deactivate()

			b, err := AnalyzeAll(context.Background(), lang, inputs, WithWorkers(3))
			if err != nil {
				t.Fatal(err)
			}
			var pe *PanicError
			if !errors.As(b.Results[1].Err, &pe) {
				t.Fatalf("boom.c err = %v, want *PanicError", b.Results[1].Err)
			}
			if fp, ok := pe.Value.(*faultinject.Panic); !ok || fp.Point != stage {
				t.Fatalf("recovered %v, want the injected %v panic", pe.Value, stage)
			}
			if len(pe.Stack) == 0 {
				t.Fatal("panic result should carry the stack")
			}
			for _, i := range []int{0, 2} {
				if r := b.Results[i]; r.Err != nil || r.Root == nil {
					t.Fatalf("healthy %s failed: %v", r.Name, r.Err)
				}
			}
			if b.Aggregate.Failed != 1 {
				t.Fatalf("failed = %d", b.Aggregate.Failed)
			}
			if b.Aggregate.Dag.DagNodes == 0 {
				t.Fatal("healthy files' analysis missing from aggregates")
			}
		})
	}
}

// Policy is the one knobs struct a daemon config marshals into the
// engine: the worker count folds in, JSON round-trips losslessly, and
// WithWorkers/WithPolicy compose in either order.
func TestPolicyIsTheOneKnobsStruct(t *testing.T) {
	degraded := incremental.Budget{MaxAlternatives: 2}
	p := Policy{
		Workers:        3,
		LexWorkers:     2,
		Budget:         incremental.Budget{MaxGSSLinks: 1024, MaxDuration: 50 * time.Millisecond},
		FileTimeout:    time.Second,
		Retries:        2,
		Backoff:        5 * time.Millisecond,
		DegradedBudget: &degraded,
		Tolerant:       true,
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var back Policy
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, back) {
		t.Fatalf("Policy JSON round-trip lost data:\nin:  %+v\nout: %+v", p, back)
	}

	// The daemon-side spelling: a config file sets workers inside the
	// policy, nothing else needed.
	var fromJSON Policy
	if err := json.Unmarshal([]byte(`{"workers":2,"tolerant":true,"budget":{"max_gss_links":64}}`), &fromJSON); err != nil {
		t.Fatal(err)
	}
	if fromJSON.Workers != 2 || !fromJSON.Tolerant || fromJSON.Budget.MaxGSSLinks != 64 {
		t.Fatalf("unmarshal = %+v", fromJSON)
	}

	// Option composition: either order yields workers=4 + tolerant.
	for _, opts := range [][]Option{
		{WithWorkers(4), WithPolicy(Policy{Tolerant: true})},
		{WithPolicy(Policy{Tolerant: true}), WithWorkers(4)},
	} {
		var c config
		for _, o := range opts {
			o(&c)
		}
		if c.policy.Workers != 4 || !c.policy.Tolerant {
			t.Fatalf("composed policy = %+v", c.policy)
		}
	}
	// An explicit Policy.Workers wins over an earlier WithWorkers.
	var c config
	WithWorkers(4)(&c)
	WithPolicy(Policy{Workers: 8})(&c)
	if c.policy.Workers != 8 {
		t.Fatalf("explicit Policy.Workers overridden: %+v", c.policy)
	}
}
