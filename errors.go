package incremental

import (
	"errors"
	"fmt"

	"iglr/internal/grammar"
	"iglr/internal/langs"
)

// ErrInvalidDefinition is matched by every *DefinitionError via errors.Is,
// for callers who only care that a definition was rejected, not why.
var ErrInvalidDefinition = errors.New("incremental: invalid language definition")

// DefinitionError reports a language definition that failed to compile. It
// wraps the underlying stage error, so errors.As can reach the structured
// detail (e.g. a *grammar* stage error carries the 1-based source line of
// the grammar DSL problem).
type DefinitionError struct {
	// Language is the definition's Name, when set.
	Language string
	// Stage identifies the pipeline stage that rejected the definition:
	// "grammar", "lexer", "table", "tokens" (token→terminal mapping), or
	// "internal" (a recovered construction panic).
	Stage string
	// Production renders the offending production ("Decl → TYPEDEF Type ID"),
	// when the failure concerns a specific production.
	Production string
	// Line is the 1-based grammar-source line of the problem, 0 if unknown.
	Line int
	// Err is the underlying cause.
	Err error
}

func (e *DefinitionError) Error() string {
	msg := "incremental: invalid language definition"
	if e.Language != "" {
		msg += " " + fmt.Sprintf("%q", e.Language)
	}
	if e.Stage != "" {
		msg += " (" + e.Stage + " stage)"
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying stage error.
func (e *DefinitionError) Unwrap() error { return e.Err }

// Is reports a match against ErrInvalidDefinition.
func (e *DefinitionError) Is(target error) bool { return target == ErrInvalidDefinition }

// newDefinitionError wraps a build failure, lifting the stage and any
// production/line detail out of the internal error chain.
func newDefinitionError(langName string, err error) *DefinitionError {
	de := &DefinitionError{Language: langName, Err: err}
	var be *langs.BuildError
	if errors.As(err, &be) {
		de.Stage = be.Stage
	}
	var ge *grammar.Error
	if errors.As(err, &ge) {
		de.Production = ge.Production
		de.Line = ge.Line
		if de.Stage == "" {
			de.Stage = "grammar"
		}
	}
	return de
}

// ParseError wraps a parser error with its text position.
type ParseError struct {
	// Line and Col are 1-based; Offset is the byte offset of the
	// offending token.
	Line, Col, Offset int
	// Expected lists acceptable terminals at the error point (IGLR only).
	Expected []string
	Inner    error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("%d:%d: %v", e.Line, e.Col, e.Inner)
}

// Unwrap exposes the underlying parser error.
func (e *ParseError) Unwrap() error { return e.Inner }
