// editsession simulates an interactive editing session over a generated
// C-like program: a sequence of keystroke-level edits, each followed by an
// incremental reparse. It prints the work each reparse performed —
// demonstrating that reconstruction effort tracks the edit, not the
// program size — and finishes with an error/recovery episode.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	incremental "iglr"
	"iglr/internal/corpus"
)

func main() {
	spec := corpus.Spec{
		Name:             "session-demo",
		Lines:            4000,
		Lang:             "c",
		AmbiguousPerKLoC: 5,
		Seed:             42,
	}
	src, nAmb := corpus.Generate(spec)
	lang := incremental.CSubset()
	ctx := context.Background()
	s := incremental.NewSession(lang, src)

	first0 := s.Do(ctx)
	if first0.Err != nil {
		log.Fatal(first0.Err)
	}
	st := incremental.Measure(first0.Root)
	fmt.Printf("program: %d lines, %d tokens, %d dag nodes, %d ambiguous constructs\n",
		spec.Lines, st.Terminals, st.DagNodes, nAmb)
	first := s.Stats()
	fmt.Printf("initial parse: %d terminal shifts, %d reductions\n\n",
		first.TerminalShifts, first.Reductions)

	// Simulated session: rename a variable occurrence, extend a literal,
	// insert a statement, delete one — at scattered positions.
	type step struct {
		desc string
		find string
		rem  int
		ins  string
	}
	steps := []step{
		{"rename a variable use", "v4 =", 2, "vv"},
		{"widen a literal", "= 1;", 1, "1000"},
		{"insert a statement", "}\n{", 0, " int fresh = 7; "},
		{"touch a distant block", "v9 =", 2, "zz"},
	}
	for _, stp := range steps {
		text := s.Text()
		off := strings.Index(text, stp.find)
		if off < 0 {
			continue
		}
		off++ // inside the match
		s.Edit(off, stp.rem, stp.ins)
		if out := s.Do(ctx); out.Err != nil {
			log.Fatalf("%s: %v", stp.desc, out.Err)
		}
		ps := s.Stats()
		fmt.Printf("%-26s relexed %3d token(s); reparse: %3d terminals, %3d subtrees, %4d reductions\n",
			stp.desc+":", s.Relexed(), ps.TerminalShifts, ps.SubtreeShifts, ps.Reductions)
	}

	fmt.Printf("\n(each reparse touched a handful of tokens out of %d — the rest was reused)\n", st.Terminals)

	// Error episode: two edits, one of which breaks the parse. Tier-1
	// isolation keeps BOTH — the user's text is never reverted; the broken
	// span is quarantined under an error node and reported as a diagnostic
	// while the rest of the program stays incrementally parsed (§1, §4.3).
	fmt.Println("\nerror episode: one good edit, one that breaks the syntax")
	good := strings.Index(s.Text(), "int w")
	s.Edit(good+4, 1, "renamed_w")
	bad := strings.LastIndex(s.Text(), "= ")
	s.Edit(bad, 2, ")) ")
	brokenLen := len(s.Text())
	out := s.Do(ctx, incremental.Tolerant())
	if out.Err != nil {
		log.Fatal(out.Err)
	}
	fmt.Printf("recovery: %d edit(s) incorporated, isolated=%v, %d quarantined region(s)\n",
		len(out.Incorporated), out.Isolated, out.ErrorRegions)
	if len(s.Text()) == brokenLen && strings.Contains(s.Text(), "renamed_w") {
		fmt.Println("both edits kept: the text was not rolled back")
	}
	for _, d := range s.Diagnostics() {
		fmt.Printf("diagnostic: %s\n", d)
	}

	// Repairing the broken span clears the quarantine: the next parse has
	// no error nodes and the tree converges to a from-scratch parse.
	s.Edit(bad, 3, "= ") // isolation kept the text, so the offset still holds
	if repaired := s.Do(ctx); repaired.Err != nil {
		log.Fatal(repaired.Err)
	}
	fmt.Printf("after repair: %d diagnostic(s), %d error node(s) — converged\n",
		len(s.Diagnostics()), len(s.ErrorNodes()))
}
