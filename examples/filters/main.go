// filters demonstrates disambiguation staging (paper §4): the same
// ambiguous expression grammar handled three ways —
//
//  1. statically, with yacc-style precedence filters compiled into the
//     parse table (no non-determinism at parse time);
//  2. dynamically, with the raw ambiguous grammar and a post-parse
//     operator filter that *discards* losing interpretations;
//  3. semantically, on the C++ subset, where typedef bindings select an
//     interpretation *reversibly*.
//
// It prints the retained-forest sizes that motivate the paper's advice to
// filter as early as possible.
package main

import (
	"context"
	"fmt"
	"log"

	incremental "iglr"
)

func main() {
	ctx := context.Background()
	src := "a+b*c-d*e+f"
	ops := incremental.Operators{Prec: map[string]int{"+": 1, "-": 1, "*": 2, "/": 2}}

	// 1. Static filtering: precedence resolved at table-construction time.
	static := incremental.ExprLanguage()
	s1 := incremental.NewSession(static, src)
	o1 := s1.Do(ctx)
	if o1.Err != nil {
		log.Fatal(o1.Err)
	}
	t1 := o1.Root
	fmt.Printf("static  : %2d parse(s), %3d dag nodes, %d conflicts in the table\n",
		incremental.CountParses(t1), incremental.Measure(t1).DagNodes, static.Conflicts())

	// 2. Dynamic filtering: the GLR parser retains every grouping, a
	// structural filter picks afterwards.
	dynamic := incremental.AmbiguousExprLanguage()
	s2 := incremental.NewSession(dynamic, src)
	o2 := s2.Do(ctx)
	if o2.Err != nil {
		log.Fatal(o2.Err)
	}
	t2 := o2.Root
	before := incremental.CountParses(t2)
	nodesBefore := incremental.Measure(t2).DagNodes
	filtered, discarded := incremental.ApplyFilter(t2, ops.Filter())
	fmt.Printf("dynamic : %2d parse(s) and %3d nodes before filtering; %d interpretations discarded → %d node(s)\n",
		before, nodesBefore, discarded, incremental.Measure(filtered).DagNodes)

	// 3. Semantic filtering: reversible selection by binding information.
	cpp := incremental.CPPSubset()
	s3 := incremental.NewSession(cpp, "typedef int a; a(b); c(d);")
	o3 := s3.Do(ctx)
	if o3.Err != nil {
		log.Fatal(o3.Err)
	}
	t3 := o3.Root
	res := s3.Resolve()
	fmt.Printf("semantic: %d region(s) → declaration, %d unresolved (retained for future edits)\n",
		res.ResolvedDecl, res.Unresolved)
	_ = t3

	// The "prefer declaration" rule of C++ (§4.1) as a *syntactic* filter:
	// no semantic information, losing readings discarded outright.
	s4 := incremental.NewSession(cpp, "a(b); c(d);")
	o4 := s4.Do(ctx)
	if o4.Err != nil {
		log.Fatal(o4.Err)
	}
	t4 := o4.Root
	preferDecl := incremental.Prefer(func(n *incremental.Node) bool {
		return !n.IsTerminal() && len(n.Kids) > 0 &&
			cpp.SymName(n.Kids[0].Sym) == "Decl"
	})
	t4f, dropped := incremental.ApplyFilter(t4, preferDecl)
	fmt.Printf("prefer-decl rule: discarded %d expression reading(s); ambiguous now: %v\n",
		dropped, t4f.Ambiguous())
}
