// lookahead demonstrates dynamic lookahead tracking (paper Figures 5 and
// 7): an unambiguous LR(2) grammar parsed with LALR(1) tables. The GLR
// parser forks where one token of lookahead is not enough, discards the
// losing parser when the decisive terminal arrives, and records which dag
// nodes were built under uncertainty (the MultiState equivalence class) so
// the incremental parser knows to reconstruct them.
package main

import (
	"context"
	"fmt"
	"log"

	incremental "iglr"
)

func main() {
	lang := incremental.LR2Language()
	fmt.Println("grammar (Figure 7):  A → B c | D e ;  B → U z ;  D → V z ;  U → x ;  V → x")
	fmt.Printf("the table has %d conflict(s): on input x, lookahead z cannot decide U vs V\n\n",
		lang.Conflicts())

	ctx := context.Background()
	s := incremental.NewSession(lang, "x z c",
		incremental.WithTrace(func(f string, args ...any) { fmt.Printf("  "+f+"\n", args...) }))
	out := s.Do(ctx)
	if out.Err != nil {
		log.Fatal(out.Err)
	}
	tree := out.Root
	s.Trace(nil)

	fmt.Printf("\n\"x z c\": %d parse (unambiguous), max %d simultaneous parsers\n",
		incremental.CountParses(tree), s.Stats().MaxActiveParsers)

	fmt.Println("\nrecorded states (MultiState = built while parsers were split):")
	tree.Walk(func(n *incremental.Node) {
		if n.IsTerminal() || n.Prod < 0 {
			return
		}
		kind := fmt.Sprintf("deterministic state %d", n.State)
		if n.State < 0 {
			kind = "MultiState — reconstruct on reuse"
		}
		fmt.Printf("  %-2s  %s\n", lang.SymName(n.Sym), kind)
	})

	// Edit the decisive terminal: c → e. The nodes marked MultiState are
	// exactly the ones the incremental parser refuses to reuse, so the
	// region reparses and the D/V interpretation wins this time.
	fmt.Println("\nedit: c → e, then reparse incrementally")
	s.Edit(4, 1, "e")
	out = s.Do(ctx)
	if out.Err != nil {
		log.Fatal(out.Err)
	}
	tree = out.Root
	fmt.Println("new structure:")
	fmt.Print(incremental.FormatDag(lang, tree))
}
