// Quickstart: define a small language, parse a document, edit it, and
// reparse incrementally. Demonstrates the core public API — language
// definition from a yacc-like grammar with regex tokens, sessions, and the
// reuse statistics that show incrementality at work.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	incremental "iglr"
)

func main() {
	// A tiny configuration language: "key = value;" entries. The Entry*
	// form declares an associative sequence (the dag may rebalance it).
	lang, err := incremental.DefineLanguage(incremental.LanguageDef{
		Name: "config",
		Grammar: `
%token KEY NUM STR '=' ';'
%start File
File  : Entry* ;
Entry : KEY '=' Value ';' ;
Value : NUM | STR ;
`,
		Lexer: []incremental.LexRule{
			{Name: "WS", Pattern: `[ \t\n]+`, Skip: true},
			{Name: "COMMENT", Pattern: `#[^\n]*`, Skip: true},
			{Name: "KEY", Pattern: `[a-z][a-z0-9_.]*`},
			{Name: "NUM", Pattern: `[0-9]+`},
			{Name: "STR", Pattern: `"([^"\\]|\\.)*"`},
			{Name: "EQ", Pattern: `=`},
			{Name: "SEMI", Pattern: `;`},
		},
		TokenSyms: map[string]string{
			"KEY": "KEY", "NUM": "NUM", "STR": "STR", "EQ": "'='", "SEMI": "';'",
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	src := `# server configuration
port = 8080;
host = "example.org";
retries = 3;
timeout = 30;
`
	ctx := context.Background()
	s := incremental.NewSession(lang, src)
	out := s.Do(ctx)
	if out.Err != nil {
		log.Fatal(out.Err)
	}
	tree := out.Root
	fmt.Printf("initial parse: %d entries, %d dag nodes\n",
		countEntries(lang, tree), incremental.Measure(tree).DagNodes)
	fmt.Printf("  %d terminal shifts (everything lexed fresh)\n\n", s.Stats().TerminalShifts)

	// Edit: change the port number. Only the affected tokens are relexed
	// and only the affected structure is reparsed; everything else is
	// reused by shifting whole subtrees.
	fmt.Println(`editing "8080" -> "9090" ...`)
	off := 30 // offset of 8080
	s.Edit(off, 4, "9090")
	out = s.Do(ctx)
	if out.Err != nil {
		log.Fatal(out.Err)
	}
	st := s.Stats()
	fmt.Printf("incremental reparse: relexed %d token(s), shifted %d terminal(s) and %d whole subtree(s)\n",
		s.Relexed(), st.TerminalShifts, st.SubtreeShifts)

	// A syntax error keeps the previous tree; a tolerant reparse
	// quarantines the broken span (or, failing that, reverts the offending
	// edit and flags it as unincorporated — §4.3).
	fmt.Println("\nbreaking the file (deleting the first '='), then recovering ...")
	eq := strings.Index(s.Text(), "=")
	s.Edit(eq, 1, "")
	if failed := s.Do(ctx); failed.Err != nil {
		fmt.Println("  parse failed as expected:", failed.Err)
	}
	rec := s.Do(ctx, incremental.Tolerant())
	fmt.Printf("  recovery: isolated=%v, %d edit(s) reverted, document consistent again: %v\n",
		rec.Isolated, len(rec.Unincorporated), rec.Err == nil)
}

func countEntries(lang *incremental.Language, tree *incremental.Node) int {
	entry := lang.Sym("Entry")
	n := 0
	tree.Walk(func(node *incremental.Node) {
		if node.Sym == entry && !node.IsTerminal() && node.Prod >= 0 {
			n++
		}
	})
	return n
}
