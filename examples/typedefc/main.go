// typedefc walks through the paper's running example (Figures 1, 3 and 8):
// the C/C++ statement `a(b);` is a declaration or a function call depending
// on whether `a` names a type. The GLR parser records both interpretations
// in the abstract parse dag; semantic analysis gathers typedef bindings and
// filters the wrong reading — reversibly, so editing the typedef flips the
// interpretation without reparsing the use sites.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	incremental "iglr"
)

func main() {
	lang := incremental.CPPSubset()

	src := `typedef int a;
a(b);
c(d);
i = 1;
j = 2;
`
	fmt.Println("source (the paper's Figure 1):")
	fmt.Print(indent(src))

	ctx := context.Background()
	s := incremental.NewSession(lang, src)
	out := s.Do(ctx)
	if out.Err != nil {
		log.Fatal(out.Err)
	}
	tree := out.Root
	st := incremental.Measure(tree)
	fmt.Printf("\nafter context-free analysis: %d ambiguous region(s), %d interpretations total\n",
		st.AmbiguousRegions, incremental.CountParses(tree))
	fmt.Printf("explicit ambiguity costs %d extra node(s) (%.1f%% here; ~0.5%% on real programs)\n",
		st.DagNodes-st.TreeNodes, st.SpaceOverheadPercent())

	// Semantic disambiguation (Figure 8): typedefs are gathered into
	// binding contours, namespaces are propagated, filters select.
	res := s.Resolve()
	fmt.Printf("\nsemantic pass: %d region(s) → declaration, %d → call, %d unresolved\n",
		res.ResolvedDecl, res.ResolvedStmt, res.Unresolved)
	fmt.Println("  a(b);  declares b   (a is a typedef name)")
	fmt.Println("  c(d);  calls c      (c is not declared — actually unresolved, retained)")

	// Declare c as a variable: its call site resolves.
	fmt.Println("\nedit: declare c with `int c;` at the top")
	s.Edit(0, 0, "int c; ")
	if out := s.Do(ctx); out.Err != nil {
		log.Fatal(out.Err)
	}
	res = s.Resolve()
	fmt.Printf("  now: %d declaration(s), %d call(s), %d unresolved\n",
		res.ResolvedDecl, res.ResolvedStmt, res.Unresolved)

	// Remove the typedef: the interpretation of a(b) flips from
	// declaration to error (a undeclared) — the filtered alternative was
	// retained exactly for this (§4.2: semantic filters are reversible).
	fmt.Println("\nedit: replace `typedef int a;` with `int a;`")
	fmt.Printf("  use sites depending on 'a': %d (located from the binding index, no tree search)\n",
		len(s.UseSites("a")))
	text := s.Text()
	off := strings.Index(text, "typedef int a;")
	s.Edit(off, len("typedef int a;"), "int a;")
	if out := s.Do(ctx); out.Err != nil {
		log.Fatal(out.Err)
	}
	res2, flips := s.ResolveTracked()
	fmt.Printf("  now: %d declaration(s), %d call(s); %d region(s) re-interpreted\n",
		res2.ResolvedDecl, res2.ResolvedStmt, len(flips))

	stats := s.Stats()
	fmt.Printf("\n(the last reparse shifted %d whole subtree(s) and only %d terminal(s))\n",
		stats.SubtreeShifts, stats.TerminalShifts)
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ") + "\n"
}
