package incremental_test

import (
	"testing"

	incremental "iglr"
	"iglr/internal/faultinject"
)

// The convergence suite: the recovery package's "always converge"
// guarantee, extended from user syntax errors to infrastructure faults.
// For every injection point we force a fault during a reparse and prove
// (a) the committed tree is exactly the pre-fault tree — same root, same
// rendering — and (b) once the fault clears, the same pending edit
// reparses to the correct result. Faults may surface as errors or as
// panics; either way nothing corrupts committed state.

// faultSession builds a committed baseline over the ambiguous expression
// grammar and returns the session plus the committed root and rendering.
func faultSession(t *testing.T) (*incremental.Session, *incremental.Node, string) {
	t.Helper()
	lang := incremental.AmbiguousExprLanguage()
	s := incremental.NewSession(lang, "1+2*3")
	root, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	return s, root, incremental.FormatDag(lang, root)
}

// parseRecovering runs one parse, converting an injected panic into an
// error so the suite can treat every fault uniformly.
func parseRecovering(s *incremental.Session) (err error) {
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			if err, ok = r.(*faultinject.Panic); !ok {
				panic(r) // a real bug: do not mask it
			}
		}
	}()
	_, err = s.Parse()
	return err
}

func TestFaultConvergenceAcrossParsePoints(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	cases := []struct {
		name string
		plan *faultinject.Plan
	}{
		{"round-cancel", faultinject.NewPlan(faultinject.Trigger{
			Point: faultinject.ParseRound, Do: faultinject.ActCancel})},
		{"round-panic", faultinject.NewPlan(faultinject.Trigger{
			Point: faultinject.ParseRound, Do: faultinject.ActPanic})},
		{"reduce-panic-first", faultinject.NewPlan(faultinject.Trigger{
			Point: faultinject.Reduce, Do: faultinject.ActPanic})},
		{"reduce-panic-later", faultinject.NewPlan(faultinject.Trigger{
			Point: faultinject.Reduce, After: 5, Do: faultinject.ActPanic})},
		{"arena-budget", faultinject.NewPlan(faultinject.Trigger{
			Point: faultinject.ArenaAlloc, Do: faultinject.ActBudget})},
		{"arena-budget-later", faultinject.NewPlan(faultinject.Trigger{
			Point: faultinject.ArenaAlloc, After: 3, Do: faultinject.ActBudget})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, root, before := faultSession(t)
			s.Edit(s.Len(), 0, "-4")

			faultinject.Activate(tc.plan)
			err := parseRecovering(s)
			faultinject.Deactivate()
			if err == nil {
				t.Fatal("the injected fault must abort the reparse")
			}

			if s.Tree() != root {
				t.Fatal("fault changed the committed root")
			}
			if got := incremental.FormatDag(lang, s.Tree()); got != before {
				t.Fatalf("fault corrupted the committed tree:\n%s", got)
			}

			// Fault cleared: the pending edit parses on retry.
			tree, err := s.Parse()
			if err != nil {
				t.Fatalf("post-fault reparse failed: %v", err)
			}
			if tree.Yield() != "1+2*3-4" {
				t.Fatalf("post-fault yield = %q", tree.Yield())
			}
		})
	}
}

// Randomized fault timing: cancellation injected at a seed-derived round
// count, across many seeds. Any round is a safe point to die at.
func TestFaultConvergenceRandomizedRounds(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	for seed := int64(0); seed < 20; seed++ {
		s, root, before := faultSession(t)
		s.Edit(s.Len(), 0, "+9*8-7")

		faultinject.Activate(faultinject.NewRandomPlan(seed, faultinject.ParseRound, faultinject.ActCancel, 6))
		err := parseRecovering(s)
		fired := faultinject.Fired(faultinject.ParseRound) > 0
		faultinject.Deactivate()

		if fired {
			if err == nil {
				t.Fatalf("seed %d: fired but parse succeeded", seed)
			}
			if s.Tree() != root || incremental.FormatDag(lang, s.Tree()) != before {
				t.Fatalf("seed %d: fault corrupted committed state", seed)
			}
			if _, err := s.Parse(); err != nil {
				t.Fatalf("seed %d: post-fault reparse failed: %v", seed, err)
			}
		} else if err != nil {
			// Countdown outlived the parse: it must have just succeeded.
			t.Fatalf("seed %d: no fault fired yet parse failed: %v", seed, err)
		}
		if got := s.Tree().Yield(); got != "1+2*3+9*8-7" {
			t.Fatalf("seed %d: converged yield = %q", seed, got)
		}
	}
}

// A lexical fault corrupts a token *in the document*, so plain retry
// cannot converge — but history-based recovery does: the poisoned edit is
// reverted and reported, and the document text is restored.
func TestFaultConvergenceLexErrorViaRecovery(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	s, root, before := faultSession(t)

	// Every: 1 makes the corruption persistent while the plan is active:
	// recovery's replay probe relexes the region and must hit it again.
	faultinject.Activate(faultinject.NewPlan(faultinject.Trigger{
		Point: faultinject.LexTerminal, Match: "777", Every: 1, Do: faultinject.ActError}))
	s.Edit(s.Len(), 0, "+777")
	out := s.ParseWithRecovery()
	faultinject.Deactivate()

	if out.Clean {
		t.Fatal("the corrupted token must fail the first probe")
	}
	if len(out.Unincorporated) != 1 {
		t.Fatalf("unincorporated = %d, want the poisoned edit", len(out.Unincorporated))
	}
	if s.Tree() != root || incremental.FormatDag(lang, s.Tree()) != before {
		t.Fatal("recovery must preserve the committed tree")
	}
	if s.Text() != "1+2*3" {
		t.Fatalf("recovery must restore the text, got %q", s.Text())
	}

	// Fault cleared: re-applying the same edit now succeeds.
	s.Edit(s.Len(), 0, "+777")
	tree, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Yield() != "1+2*3+777" {
		t.Fatalf("yield = %q", tree.Yield())
	}
}

// A panic inside semantic resolution must not disturb the committed dag;
// the pass can simply be re-run once the fault clears.
func TestFaultConvergenceResolvePanic(t *testing.T) {
	lang := incremental.CPPSubset()
	s := incremental.NewSession(lang, "typedef int a; a(b); c(d);")
	root, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	before := incremental.FormatDag(lang, root)

	faultinject.Activate(faultinject.NewPlan(faultinject.Trigger{
		Point: faultinject.Resolve, Do: faultinject.ActPanic}))
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("expected the injected resolve panic")
			} else if _, ok := r.(*faultinject.Panic); !ok {
				panic(r)
			}
		}()
		s.Resolve()
	}()
	faultinject.Deactivate()

	if s.Tree() != root || incremental.FormatDag(lang, s.Tree()) != before {
		t.Fatal("resolve panic corrupted the committed dag")
	}
	res := s.Resolve()
	if res.ResolvedDecl+res.ResolvedStmt == 0 {
		t.Fatal("post-fault resolve should disambiguate the typedef uses")
	}
}
