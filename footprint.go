package incremental

// sessionOverhead is a flat per-session estimate covering the Session,
// Document, and parser structs themselves plus small fixed allocations the
// per-field accounting below does not itemize.
const sessionOverhead = 4 << 10

// MemoryFootprint estimates the session's resident bytes: document text,
// token stream, dag arena, and the warm parser scratch retained between
// edits. The daemon's memory governor (internal/govern) accounts this
// figure per shard and globally against its watermarks, so it is an
// intentionally inclusive estimate — everything the session keeps
// reachable — rather than an exact heap measurement.
func (s *Session) MemoryFootprint() int64 {
	n := int64(sessionOverhead)
	if s.doc != nil {
		n += s.doc.Footprint()
	}
	if s.parser != nil {
		n += s.parser.Footprint()
	}
	if s.det != nil {
		n += s.det.Footprint()
	}
	if s.spareDet != nil && s.spareDet != s.det {
		n += s.spareDet.Footprint()
	}
	return n
}
