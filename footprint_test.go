package incremental_test

import (
	"strings"
	"testing"

	incremental "iglr"
)

// TestMemoryFootprint pins the governor's input signal: positive for any
// live session, monotone in document size, and growing when edits extend
// the text.
func TestMemoryFootprint(t *testing.T) {
	lang := incremental.ExprLanguage()

	small := incremental.NewSession(lang, "a+b")
	if _, err := small.Parse(); err != nil {
		t.Fatal(err)
	}
	big := incremental.NewSession(lang, strings.Repeat("a+b", 2000))
	if _, err := big.Parse(); err != nil {
		t.Fatal(err)
	}

	fs, fb := small.MemoryFootprint(), big.MemoryFootprint()
	if fs <= 0 || fb <= 0 {
		t.Fatalf("footprints must be positive: small=%d big=%d", fs, fb)
	}
	if fb <= fs {
		t.Fatalf("500x larger document did not grow the footprint: small=%d big=%d", fs, fb)
	}

	before := small.MemoryFootprint()
	small.Edit(0, 0, strings.Repeat("x+", 1000))
	if _, err := small.Parse(); err != nil {
		t.Fatal(err)
	}
	after := small.MemoryFootprint()
	if after <= before {
		t.Fatalf("2KB insert did not grow the footprint: before=%d after=%d", before, after)
	}
}
