package incremental_test

import (
	"testing"

	incremental "iglr"
)

// FuzzErrorIsolationConverges drives the tentpole convergence contract with
// arbitrary edits: whenever tier-1 isolation engages, the user's text is
// preserved byte for byte and diagnostics point at real damage; undoing the
// edit must then reparse cleanly into a tree byte-identical to a
// from-scratch batch parse of the same text. When isolation cannot engage,
// the tier-2 contract holds instead: the bad edit is reverted.
func FuzzErrorIsolationConverges(f *testing.F) {
	f.Add("int a; int b; int c;", 11, 1, "(")
	f.Add("int a; { int b; } int c;", 13, 1, ")")
	f.Add("int a; int b;", 4, 1, "))")
	f.Add("int x;", 0, 0, "( ")
	f.Add("int a; a = 1; int b;", 9, 2, ")) ((")
	lang := incremental.CSubset()
	f.Fuzz(func(t *testing.T, src string, off, rem int, ins string) {
		if len(src) > 200 || len(ins) > 50 {
			t.Skip()
		}
		for _, r := range src + ins {
			if r > 0x7f {
				t.Skip() // the csub lexer is ASCII
			}
		}
		s := incremental.NewSession(lang, src)
		if _, err := s.Parse(); err != nil {
			t.Skip() // only valid baselines exercise isolation
		}

		// Clamp the edit into range (Edit panics out of range by contract).
		if off < 0 {
			off = -off
		}
		off %= len(src) + 1
		if rem < 0 {
			rem = -rem
		}
		rem %= len(src) - off + 1
		removed := src[off : off+rem]
		broken := src[:off] + ins + src[off+rem:]

		s.Edit(off, rem, ins)
		out := s.ParseWithRecovery()
		if out.Err != nil {
			t.Fatalf("recovery errored with a committed baseline: %v", out.Err)
		}
		if out.Clean {
			t.Skip() // the edit did not actually break the text
		}
		if !out.Isolated {
			// Tier-2 replay: the bad edit must have been reverted.
			if s.Text() != src {
				t.Fatalf("tier-2 left text %q, want baseline %q", s.Text(), src)
			}
			return
		}

		// Tier-1 isolation: text preserved, damage quarantined and reported.
		if s.Text() != broken {
			t.Fatalf("isolation changed the text: %q, want %q", s.Text(), broken)
		}
		if out.ErrorRegions < 1 || len(s.ErrorNodes()) < 1 {
			t.Fatalf("isolated without error nodes: %+v", out)
		}
		if len(s.Diagnostics()) < 1 {
			t.Fatal("isolated without diagnostics")
		}

		// Convergence: undoing the edit reparses to the batch-parse tree.
		s.Edit(off, len(ins), removed)
		root, err := s.Parse()
		if err != nil {
			t.Fatalf("repaired text %q does not reparse: %v", src, err)
		}
		if s.Text() != src {
			t.Fatalf("repaired text = %q, want %q", s.Text(), src)
		}
		if len(s.Diagnostics()) != 0 || len(s.ErrorNodes()) != 0 {
			t.Fatalf("quarantine survived the repair: %v", s.Diagnostics())
		}
		fresh, err := incremental.NewSession(lang, src).Parse()
		if err != nil {
			t.Fatal(err)
		}
		if got, want := incremental.FormatDag(lang, root), incremental.FormatDag(lang, fresh); got != want {
			t.Fatalf("repaired tree differs from batch parse:\n-- incremental --\n%s\n-- batch --\n%s", got, want)
		}
	})
}
