module iglr

go 1.22
