// Package incremental (import path "iglr") is the public API of a
// reproduction of Wagner & Graham, "Incremental Analysis of Real
// Programming Languages" (PLDI 1997). It provides:
//
//   - language definition from a yacc-like grammar and regex token rules,
//     with conflicts retained for generalized LR parsing;
//   - batch and incremental GLR parsing into abstract parse dags, which
//     represent unresolved syntactic ambiguity explicitly;
//   - disambiguation at every stage: static table filters (precedence,
//     associativity, prefer-shift), dynamic syntactic filters, and
//     semantic filters driven by typedef/namespace analysis;
//   - self-versioning documents with incremental lexing, history-based
//     error recovery, and balanced sequence storage.
//
// The typical flow is:
//
//	lang, _ := incremental.DefineLanguage(def)
//	s := incremental.NewSession(lang, source)
//	tree, _ := s.Parse()
//	s.Edit(offset, removed, inserted)
//	tree, _ = s.Parse() // incremental: reuses unmodified subtrees
package incremental

import (
	"context"
	"errors"

	"iglr/internal/dag"
	"iglr/internal/detparse"
	"iglr/internal/disambig"
	"iglr/internal/document"
	"iglr/internal/grammar"
	"iglr/internal/guard"
	"iglr/internal/iglr"
	"iglr/internal/langs"
	"iglr/internal/langs/cppsub"
	"iglr/internal/langs/csub"
	"iglr/internal/langs/expr"
	"iglr/internal/langs/javasub"
	"iglr/internal/langs/lispsub"
	"iglr/internal/langs/lr2"
	"iglr/internal/langs/mod2sub"
	"iglr/internal/langs/scannerless"
	"iglr/internal/lexer"
	"iglr/internal/lr"
	"iglr/internal/recovery"
	"iglr/internal/semantics"
)

// Concurrency model: a compiled *Language is immutable and safe to share
// between any number of goroutines; Sessions (and the documents and parse
// dags they own) are single-goroutine. See DESIGN.md, "Concurrency model",
// and the engine package for a parallel multi-document driver.

// Core re-exported types. Aliases keep the internal packages' methods and
// let the pieces interoperate without copying.
type (
	// Node is an abstract-parse-dag node: a terminal, a production
	// instance, a symbol (choice) node holding alternative
	// interpretations, or a balanced-sequence node.
	Node = dag.Node
	// DagStats summarizes dag size versus the embedded disambiguated tree.
	DagStats = dag.Stats
	// ParseStats counts parser work (shifts, reductions, breakdowns, ...).
	ParseStats = iglr.Stats
	// Sym identifies a grammar symbol.
	Sym = grammar.Sym
	// LexRule defines one token kind by regular expression.
	LexRule = lexer.Rule
	// SemanticsConfig adapts semantic disambiguation to a language.
	SemanticsConfig = semantics.Config
	// SemanticsResult reports one resolution pass.
	SemanticsResult = semantics.Result
	// Reinterpreted records an ambiguous region whose interpretation
	// flipped between semantic passes (§4.2).
	Reinterpreted = semantics.ReinterpretedRegion
	// Filter is a dynamic syntactic disambiguation filter.
	Filter = disambig.Filter
	// RecoveryOutcome reports a history-based error-recovery run.
	RecoveryOutcome = recovery.Outcome
	// AppliedEdit is a recorded, revertible document edit.
	AppliedEdit = document.AppliedEdit
	// TableMethod selects the LR table construction algorithm.
	TableMethod = lr.Method
	// Budget bounds the resources a single parse may consume (GSS nodes
	// and links, dag arena nodes, interpretations per ambiguous region,
	// wall-clock time). The zero value is unlimited. Configure it per
	// session with WithBudget; see DESIGN.md, "Failure model & resource
	// budgets".
	Budget = guard.Budget
	// BudgetError reports the resource whose budget a parse exceeded. The
	// failed parse leaves the session's committed tree intact. Every
	// BudgetError matches ErrBudget via errors.Is.
	BudgetError = guard.BudgetError
)

// ErrBudget is matched by every *BudgetError via errors.Is, for callers
// who only care that a resource budget tripped, not which one.
var ErrBudget = guard.ErrBudget

// Table construction methods.
const (
	LALR = lr.LALR
	SLR  = lr.SLR
	LR1  = lr.LR1
)

// Measure computes space statistics for a dag — the paper's Table 1 /
// Figure 4 metric.
func Measure(root *Node) DagStats { return dag.Measure(root) }

// CountParses returns the number of distinct parse trees a dag encodes.
func CountParses(root *Node) int { return iglr.CountParses(root) }

// FormatDag renders a dag as an indented outline.
func FormatDag(l *Language, n *Node) string { return dag.Format(l.def.Grammar, n) }

// ApplyFilter rewrites a dag with a dynamic syntactic filter, discarding
// losing interpretations (§4.1). It returns the new root and the number of
// interpretations discarded.
func ApplyFilter(root *Node, f Filter) (*Node, int) { return disambig.Apply(root, f) }

// Prefer builds a filter keeping interpretations that satisfy pred.
func Prefer(pred func(*Node) bool) Filter { return disambig.Prefer(pred) }

// Operators applies precedence/associativity dynamically to expression
// dags parsed with a raw ambiguous grammar.
type Operators = disambig.Operators

// LanguageDef defines a language from sources. A def can be filled in
// directly or assembled with functional Options (see DefineLanguage); both
// spellings are equivalent.
type LanguageDef struct {
	Name string
	// Grammar is a yacc-like grammar (see internal/grammar.Parse for the
	// syntax, including X* / X+ associative sequences).
	Grammar string
	// Lexer lists the token rules; earlier rules win ties.
	Lexer []LexRule
	// TokenSyms maps lexer rule names to grammar terminal names.
	TokenSyms map[string]string
	// Keywords maps identifier lexemes to keyword terminal names;
	// IdentRule names the identifier rule they are recognized under.
	Keywords  map[string]string
	IdentRule string
	// Method selects the table algorithm (default LALR, as in the paper).
	Method TableMethod
	// PreferShift resolves remaining shift/reduce conflicts statically.
	PreferShift bool
	// NoPrecedence disables precedence/associativity resolution.
	NoPrecedence bool
	// Semantics, when non-nil, is attached to the compiled language as its
	// semantic-disambiguation configuration (§4.2).
	Semantics *SemanticsConfig

	// noCache bypasses the compiled-language cache (set via WithoutCache).
	noCache bool
	// compiledCacheDir overrides the disk-artifact cache directory (set via
	// WithCompiledCache); empty means the per-user default.
	compiledCacheDir string
	// noDiskCache disables the disk-artifact layer only (set via
	// WithoutCompiledCache); the memory layer still applies.
	noDiskCache bool
}

// Language is a compiled language definition. It is immutable: every
// method is read-only and WithSemantics returns a new value, so one
// *Language may be shared by any number of concurrent Sessions (and by
// the engine package's parallel drivers).
type Language struct {
	def *langs.Language
	sem *SemanticsConfig
}

// DefineLanguage compiles a language definition, after applying any
// options to (a copy of) d.
//
// Compiled languages are cached by definition content: a second call with
// an identical definition returns the already-built tables instead of
// rebuilding them, so high-traffic services may call DefineLanguage per
// request without paying LR construction each time. WithoutCache opts out;
// LanguageCacheStats observes the cache.
func DefineLanguage(d LanguageDef, opts ...Option) (*Language, error) {
	for _, o := range opts {
		o(&d)
	}
	def, err := compileDef(d)
	if err != nil {
		return nil, err
	}
	l := &Language{def: def}
	if d.Semantics != nil {
		cfg := *d.Semantics
		l.sem = &cfg
	}
	return l, nil
}

// WithSemantics returns a copy of l with the semantic-disambiguation
// configuration attached. The receiver is not modified — languages are
// immutable so they can be shared across concurrent sessions.
func (l *Language) WithSemantics(cfg SemanticsConfig) *Language {
	out := *l
	out.sem = &cfg
	return &out
}

// Name returns the language name.
func (l *Language) Name() string { return l.def.Name }

// Conflicts returns the number of unresolved parse-table conflicts (GLR
// fork points).
func (l *Language) Conflicts() int { return len(l.def.Table.Conflicts()) }

// Deterministic reports whether the table is conflict-free.
func (l *Language) Deterministic() bool { return l.def.Table.Deterministic() }

// Sym resolves a grammar symbol by name (panics on unknown names).
func (l *Language) Sym(name string) Sym { return l.def.Sym(name) }

// SymName returns the display name of a symbol.
func (l *Language) SymName(s Sym) string { return l.def.Grammar.Name(s) }

// Bundled languages.

// ExprLanguage returns an arithmetic expression language disambiguated by
// static precedence filters.
func ExprLanguage() *Language { return &Language{def: expr.Lang()} }

// AmbiguousExprLanguage returns the raw ambiguous expression grammar; use
// Operators filters to disambiguate dynamically.
func AmbiguousExprLanguage() *Language { return &Language{def: expr.AmbiguousLang()} }

// CSubset returns a C subset with the Figure 1 typedef ambiguities,
// semantic disambiguation preconfigured.
func CSubset() *Language {
	l := csub.Lang()
	cfg := langs.CStyleSemantics(l)
	return &Language{def: l, sem: &cfg}
}

// CPPSubset returns a C++ subset (the paper's running example), semantic
// disambiguation preconfigured and the dangling else resolved by a static
// prefer-shift filter.
func CPPSubset() *Language {
	l := cppsub.Lang()
	cfg := langs.CStyleSemantics(l)
	return &Language{def: l, sem: &cfg}
}

// LR2Language returns the paper's Figure 7 LR(2) grammar.
func LR2Language() *Language { return &Language{def: lr2.Lang()} }

// JavaSubset returns a Java subset whose array-declaration syntax needs
// LR(2)-style forking (`T[] x;` vs `a[i] = v;`), with precedence and
// prefer-shift static filters handling the rest.
func JavaSubset() *Language { return &Language{def: javasub.Lang()} }

// LispSubset returns an s-expression language — nested associative
// sequences throughout, the extreme case for balanced storage (§3.4).
func LispSubset() *Language { return &Language{def: lispsub.Lang()} }

// Modula2Subset returns a conflict-free Modula-2 subset (the first
// Ensemble language), suitable for both the deterministic and the GLR
// incremental parsers.
func Modula2Subset() *Language { return &Language{def: mod2sub.Lang()} }

// ScannerlessLanguage returns a character-level (scannerless) GLR language
// in which identifiers/numbers are associative character sequences and the
// keyword/identifier prefix problem is carried as GLR non-determinism.
func ScannerlessLanguage() *Language { return &Language{def: scannerless.Lang()} }

// Session couples a document with an incremental parser. A Session (and
// the document and parse dags it owns) belongs to one goroutine; create
// one Session per concurrent document over a shared *Language.
type Session struct {
	lang     *Language
	doc      *document.Document
	parser   *iglr.Parser
	det      *detparse.Parser // non-nil when UseDeterministic succeeded
	resolver *semantics.Resolver
	stats    ParseStats // snapshot of the most recent IGLR parse
	budget   Budget

	// docOpts collects batch construction options (parallel lex workers,
	// donated buffers); consumed once when NewSession builds the document.
	docOpts document.Options
	// parseWorkers is the goroutine count for the cold (first) parse: when
	// >1 and the language's top level is an associative sequence, the token
	// stream is chunked at element boundaries and the chunks are parsed in
	// parallel (see WithParseWorkers).
	parseWorkers int
	// spareDet is a recycled deterministic parser donated by a Pool,
	// activated only if the caller asks via UseDeterministic.
	spareDet *detparse.Parser
}

// SessionOption configures a Session at creation time.
type SessionOption func(*Session)

// WithBudget bounds every parse the session runs (see Budget). A tripped
// budget aborts that parse with a *BudgetError — except the ambiguity
// budget, which degrades: the region is pruned to its statically preferred
// interpretation and the parse continues (BudgetPruned in Stats counts
// prunes; DagStats.BudgetPruned locates them).
func WithBudget(b Budget) SessionOption {
	return func(s *Session) { s.SetBudget(b) }
}

// WithLexWorkers sets the goroutine count for the initial lex of the
// session's source: large inputs are speculatively lexed in chunks and
// stitched (see DESIGN.md, "Parallel lexing & arena pooling"). The count
// is clamped to GOMAXPROCS; 0 or 1 lexes sequentially. Incremental relex
// after edits is always sequential — edits damage O(1) tokens.
func WithLexWorkers(n int) SessionOption {
	return func(s *Session) { s.docOpts.LexWorkers = n }
}

// WithParseWorkers sets the goroutine count for the cold (first) parse of
// the session's source. When the language's top level is an associative
// sequence (§3.4), the token stream is split at proven element boundaries
// and the pieces are parsed concurrently, then spliced — the resulting tree
// is byte-identical to a sequential parse, and any input where a safe split
// cannot be established falls back to the sequential path automatically.
// The count is clamped to GOMAXPROCS; 0 or 1 parses sequentially.
// Incremental reparses after edits are always sequential — they are already
// proportional to the damage, not the document.
func WithParseWorkers(n int) SessionOption {
	return func(s *Session) { s.parseWorkers = n }
}

// NewSession creates an editing session over source.
func NewSession(lang *Language, source string, opts ...SessionOption) *Session {
	// The document is built last: options may set batch construction
	// parameters (WithLexWorkers, pool-donated buffers) that must be in
	// place before the initial lex, while the parser exists first so
	// options like WithBudget and WithTrace can configure it.
	s := &Session{
		lang:   lang,
		parser: iglr.New(lang.def.Table),
	}
	for _, o := range opts {
		o(s)
	}
	s.doc = lang.def.NewDocumentOpts(source, s.docOpts)
	return s
}

// SetBudget replaces the session's resource budget. It applies from the
// next parse; the zero Budget removes all limits.
func (s *Session) SetBudget(b Budget) {
	s.budget = b
	s.parser.Budget = b
	if s.det != nil {
		s.det.Budget = b
	}
}

// BudgetLimits returns the session's current resource budget.
func (s *Session) BudgetLimits() Budget { return s.budget }

// UseDeterministic switches the session to the deterministic incremental
// parser (§3.2 baseline). It fails if the language's table has conflicts.
func (s *Session) UseDeterministic() error {
	if s.spareDet != nil {
		// A pool donated an already-built parser for this same table.
		s.det, s.spareDet = s.spareDet, nil
		s.det.Budget = s.budget
		return nil
	}
	p, err := detparse.New(s.lang.def.Table)
	if err != nil {
		return err
	}
	p.Budget = s.budget
	s.det = p
	return nil
}

// Text returns the current document text.
func (s *Session) Text() string { return s.doc.Text() }

// Len returns the document length in bytes.
func (s *Session) Len() int { return s.doc.Len() }

// Tree returns the last committed parse dag (nil before the first Parse).
func (s *Session) Tree() *Node { return s.doc.Root() }

// Edit applies a text modification. Any number of edits may be batched
// before the next Parse.
func (s *Session) Edit(offset, removed int, inserted string) {
	s.doc.Replace(offset, removed, inserted)
}

// Parse (re)parses the document incrementally, committing on success. The
// previous tree is retained on failure; the returned error carries the
// line/column of the offending token (as a *ParseError).
//
// Deprecated: use Do, the context-first session API. Parse is equivalent
// to Do(nil) with Root/Err unpacked.
func (s *Session) Parse() (*Node, error) {
	return s.ParseContext(nil)
}

// ParseContext is Parse with cooperative cancellation: the parser polls
// ctx periodically and abandons the parse with an error satisfying
// errors.Is(err, ctx.Err()) once the context is done. The document and its
// committed tree are left exactly as before the call, so a cancelled parse
// can simply be retried. A nil ctx disables the checks.
//
// Deprecated: use Do, the context-first session API. ParseContext is
// equivalent to Do(ctx) with Root/Err unpacked.
func (s *Session) ParseContext(ctx context.Context) (*Node, error) {
	out := s.Do(ctx)
	return out.Root, out.Err
}

// isDetSyntax reports whether err is a deterministic-parser syntax error.
// Kept out of parseOnce's hot path: the errors.As target escapes, and the
// zero-allocation clean-reparse guarantee must hold.
func isDetSyntax(err error) bool {
	var de *detparse.SyntaxError
	return errors.As(err, &de)
}

// locate attaches position information to a parser error.
func (s *Session) locate(err error) error {
	se, ok := err.(*iglr.SyntaxError)
	if !ok {
		return err
	}
	off := s.doc.SignificantTokenOffset(se.TokenIndex)
	line, col := s.doc.Position(off)
	return &ParseError{Line: line, Col: col, Offset: off, Expected: se.Expected, Inner: err}
}

func (s *Session) parseOnce(ctx context.Context) (*Node, error) {
	// A cold parse (nothing committed yet) consumes exactly the significant
	// terminals plus EOF, so it can skip the incremental stream machinery:
	// the deterministic parser runs its batch kernel, and the GLR parser may
	// chunk the input across parseWorkers goroutines.
	cold := s.doc.Root() == nil
	if s.det != nil {
		var root *Node
		var err error
		if cold {
			root, err = s.det.ParseBatch(ctx, s.doc.Terminals(), s.doc.EOFNode(), s.doc.Arena())
		} else {
			root, err = s.det.ParseContext(ctx, s.doc.Stream())
		}
		if err == nil || !isDetSyntax(err) {
			return root, err
		}
		// Syntax error under the deterministic parser: hand the document to
		// the GLR parser, whose failure carries the same detail but is the
		// one the error-isolation machinery consumes. Infrastructure
		// failures (budget, cancellation) are not re-run.
	}
	if cold && s.parseWorkers > 1 && s.budget.Unlimited() && s.parser.Trace == nil {
		root, stats, ok, err := iglr.ParseChunked(ctx, s.lang.def.Table,
			s.doc.Terminals(), s.doc.EOFNode(), s.doc.Arena(), s.parseWorkers)
		if err != nil {
			return nil, err
		}
		if ok {
			s.stats = stats
			return root, nil
		}
		// No safe chunking for this input; parse sequentially below.
	}
	root, err := s.parser.ParseContext(ctx, s.doc.Stream())
	s.stats = s.parser.Stats
	return root, err
}

// ParseWithRecovery parses with two-tier error recovery. Tier 1 (§4.3
// extended): a syntax error never reverts the user's text — the damage is
// confined to the smallest enclosing sequence region, the skipped tokens
// are kept verbatim under error nodes in the committed tree, and
// Diagnostics reports them. Tier 2, only when isolation cannot bound the
// damage: the paper's history-sensitive replay, where failing edits are
// reverted and reported as unincorporated. Infrastructure failures
// (ErrBudget, cancellation) abort with pending edits intact and trigger
// neither tier.
//
// Deprecated: use Do with the Tolerant option, which reports the same
// result as an Outcome.
func (s *Session) ParseWithRecovery() RecoveryOutcome {
	return s.ParseWithRecoveryContext(nil)
}

// ParseWithRecoveryContext is ParseWithRecovery with cooperative
// cancellation (see ParseContext).
//
// Deprecated: use Do with the Tolerant option, which reports the same
// result as an Outcome.
func (s *Session) ParseWithRecoveryContext(ctx context.Context) RecoveryOutcome {
	out := s.Do(ctx, Tolerant())
	return RecoveryOutcome{
		Root:           out.Root,
		Incorporated:   out.Incorporated,
		Unincorporated: out.Unincorporated,
		Clean:          out.Clean,
		Isolated:       out.Isolated,
		ErrorRegions:   out.ErrorRegions,
		Err:            out.Err,
	}
}

// Resolve runs semantic disambiguation (§4.2) over the committed tree with
// the language's configuration. Filter attributes on losing alternatives
// are recomputed; the dag itself is unchanged, so decisions reverse
// automatically when bindings change.
func (s *Session) Resolve() SemanticsResult {
	res, _ := s.ResolveTracked()
	return res
}

// ResolveTracked is Resolve plus the §4.2 re-interpretation report: the
// ambiguous regions whose reading flipped since the previous pass (e.g.
// after a typedef was removed), located via the resolver's use-site index
// rather than a tree search.
func (s *Session) ResolveTracked() (SemanticsResult, []Reinterpreted) {
	if s.lang.sem == nil || s.doc.Root() == nil {
		return SemanticsResult{}, nil
	}
	if s.resolver == nil {
		s.resolver = semantics.NewResolver(*s.lang.sem)
	}
	return s.resolver.Resolve(s.doc.Root())
}

// UseSites returns the ambiguous regions whose interpretation depends on
// the given identifier, as of the last Resolve.
func (s *Session) UseSites(name string) []*Node {
	if s.resolver == nil {
		return nil
	}
	return s.resolver.UseSites(name)
}

// Stats returns the work counters of the most recent IGLR parse. The
// counters are snapshotted when a parse finishes (successfully or not), so
// the value is stable even if another parse is later started.
func (s *Session) Stats() ParseStats { return s.stats }

// LexErrors returns the number of lexically invalid tokens currently in
// the document.
func (s *Session) LexErrors() int { return s.doc.LexErrorCount }

// Relexed returns the token count rescanned by the most recent edit.
func (s *Session) Relexed() int { return s.doc.LastRelexed }

// Trace installs a parser trace callback (the Appendix B facility);
// pass nil to disable.
//
// Trace writes the parser's callback field unsynchronized, so it must be
// called from the goroutine that runs the session's parses — never after
// the session has been handed to another goroutine (e.g. a daemon worker
// shard) that may be parsing concurrently. To trace a session that will be
// handed off, install the callback at construction with WithTrace.
func (s *Session) Trace(f func(format string, args ...any)) { s.parser.Trace = f }

// WithTrace installs a parser trace callback at construction time — the
// race-safe spelling of Session.Trace for sessions that are created on one
// goroutine and then handed to another (a worker shard, an engine pool):
// the callback is in place before the session is published, so no
// goroutine ever observes it being written. The callback itself must be
// safe for whatever goroutine runs the parses.
func WithTrace(f func(format string, args ...any)) SessionOption {
	return func(s *Session) { s.parser.Trace = f }
}
