package incremental_test

import (
	"fmt"
	"strings"
	"testing"

	incremental "iglr"
)

func TestQuickstartExprSession(t *testing.T) {
	lang := incremental.ExprLanguage()
	s := incremental.NewSession(lang, "1 + 2 * x")
	tree, err := s.Parse()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if tree.Yield() != "1+2*x" {
		t.Fatalf("yield = %q", tree.Yield())
	}
	if incremental.CountParses(tree) != 1 {
		t.Fatal("static filters should fully disambiguate")
	}

	s.Edit(4, 1, "3")
	tree, err = s.Parse()
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if tree.Yield() != "1+3*x" {
		t.Fatalf("yield = %q", tree.Yield())
	}
}

func TestCPPSubsetTypedefFlow(t *testing.T) {
	lang := incremental.CPPSubset()
	s := incremental.NewSession(lang, "typedef int a; a(b); c(d);")
	tree, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if !tree.Ambiguous() {
		t.Fatal("expected retained ambiguity before semantics")
	}
	res := s.Resolve()
	if res.ResolvedDecl != 1 || res.Unresolved != 1 {
		t.Fatalf("resolution = %+v", res)
	}

	// Declare c: its call site resolves on the next pass.
	s.Edit(0, 0, "int c; ")
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	res = s.Resolve()
	if res.ResolvedDecl != 1 || res.ResolvedStmt != 1 || res.Unresolved != 0 {
		t.Fatalf("after declaring c: %+v", res)
	}
}

func TestSessionRecovery(t *testing.T) {
	lang := incremental.CSubset()
	s := incremental.NewSession(lang, "int a; int b;")
	if out := s.ParseWithRecovery(); out.Err != nil || !out.Clean {
		t.Fatalf("initial: %+v", out)
	}
	s.Edit(4, 1, "x")  // good
	s.Edit(11, 1, "(") // bad
	out := s.ParseWithRecovery()
	if out.Err != nil || !out.Isolated || out.ErrorRegions == 0 {
		t.Fatalf("recovery outcome: %+v", out)
	}
	// Tier-1 isolation never reverts the user's text: the bad edit stays,
	// quarantined under an error node and reported as a diagnostic.
	if s.Text() != "int x; int (;" {
		t.Fatalf("text = %q", s.Text())
	}
	if ds := s.Diagnostics(); len(ds) == 0 {
		t.Fatalf("no diagnostics for the quarantined region")
	}
	// Repairing the text clears the quarantine and converges.
	s.Edit(11, 1, "b")
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}
	if s.Text() != "int x; int b;" {
		t.Fatalf("repaired text = %q", s.Text())
	}
	if ds := s.Diagnostics(); len(ds) != 0 {
		t.Fatalf("diagnostics after repair: %v", ds)
	}
}

func TestUseDeterministic(t *testing.T) {
	s := incremental.NewSession(incremental.ExprLanguage(), "a + b")
	if err := s.UseDeterministic(); err != nil {
		t.Fatalf("expr language is deterministic: %v", err)
	}
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}

	amb := incremental.NewSession(incremental.CSubset(), "int a;")
	if err := amb.UseDeterministic(); err == nil {
		t.Fatal("C subset has conflicts; deterministic parser must refuse")
	}
}

func TestDefineLanguage(t *testing.T) {
	lang, err := incremental.DefineLanguage(incremental.LanguageDef{
		Name:    "lists",
		Grammar: "%token x ';'\n%start L\nL : Item* ;\nItem : x ';' ;",
		Lexer: []incremental.LexRule{
			{Name: "WS", Pattern: `[ \t\n]+`, Skip: true},
			{Name: "X", Pattern: `x`},
			{Name: "SEMI", Pattern: `;`},
		},
		TokenSyms: map[string]string{"X": "x", "SEMI": "';'"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lang.Deterministic() {
		t.Fatal("list language should be deterministic")
	}
	s := incremental.NewSession(lang, "x; x; x;")
	tree, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if tree.Yield() != "x;x;x;" {
		t.Fatalf("yield = %q", tree.Yield())
	}

	if _, err := incremental.DefineLanguage(incremental.LanguageDef{
		Name:    "broken",
		Grammar: "%start S\nS : Undefined ;",
		Lexer:   []incremental.LexRule{{Name: "X", Pattern: "x"}},
	}); err == nil {
		t.Fatal("invalid grammar must be rejected")
	}
}

func TestDynamicOperatorsThroughFacade(t *testing.T) {
	lang := incremental.AmbiguousExprLanguage()
	s := incremental.NewSession(lang, "a+b*c")
	tree, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	if incremental.CountParses(tree) != 2 {
		t.Fatalf("parses = %d", incremental.CountParses(tree))
	}
	ops := incremental.Operators{Prec: map[string]int{"+": 1, "-": 1, "*": 2, "/": 2}}
	filtered, discarded := incremental.ApplyFilter(tree, ops.Filter())
	if discarded != 1 || incremental.CountParses(filtered) != 1 {
		t.Fatalf("discarded=%d parses=%d", discarded, incremental.CountParses(filtered))
	}
}

// TestAppendixBTrace replays the paper's Appendix B scenario: in
// `a(b); c(d);` the semicolon after the first ambiguous item is deleted
// and re-inserted; reparsing discards the non-deterministic structure,
// reads the region as terminals, splits on the reduce/reduce conflict, and
// merges the two parsers back into one Item symbol node.
func TestAppendixBTrace(t *testing.T) {
	lang := incremental.CPPSubset()
	s := incremental.NewSession(lang, "a(b); c(d);")
	if _, err := s.Parse(); err != nil {
		t.Fatal(err)
	}

	s.Edit(4, 1, "")  // delete ';'
	s.Edit(4, 0, ";") // re-insert it
	var lines []string
	s.Trace(func(f string, args ...any) {
		lines = append(lines, fmt.Sprintf(f, args...))
	})
	tree, err := s.Parse()
	if err != nil {
		t.Fatal(err)
	}
	s.Trace(nil)
	trace := strings.Join(lines, "\n")

	// The ambiguous region is re-read as terminal symbols by >1 parser.
	if !strings.Contains(trace, "2 parser(s)") {
		t.Fatalf("expected a parser split in the trace:\n%s", trace)
	}
	// Context sharing: the two interpretations merge into one symbol node.
	if !strings.Contains(trace, "M: merge interpretation for Item") {
		t.Fatalf("expected an Item merge in the trace:\n%s", trace)
	}
	if !tree.Ambiguous() {
		t.Fatal("both interpretations must be present after reparse")
	}
	st := incremental.Measure(tree)
	if st.AmbiguousRegions != 2 {
		t.Fatalf("ambiguous regions = %d, want 2", st.AmbiguousRegions)
	}
	if s.Stats().MaxActiveParsers < 2 {
		t.Fatalf("stats = %+v", s.Stats())
	}
}
