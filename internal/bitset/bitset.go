// Package bitset provides a compact, fixed-capacity bit set used by the
// grammar analyses and LR table construction.
package bitset

import (
	"math/bits"
	"strconv"
	"strings"
)

// Set is a bit set over the integers [0, capacity). The zero value is an
// empty set of capacity zero; use New to create a set with room for n bits.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity for n bits.
func New(n int) Set {
	return Set{words: make([]uint64, (n+63)/64)}
}

// Clone returns a copy of s.
func (s Set) Clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{words: w}
}

// Add inserts i into the set. It panics if i is out of range.
func (s Set) Add(i int) {
	s.words[i/64] |= 1 << uint(i%64)
}

// Remove deletes i from the set.
func (s Set) Remove(i int) {
	s.words[i/64] &^= 1 << uint(i%64)
}

// Has reports whether i is in the set.
func (s Set) Has(i int) bool {
	w := i / 64
	if w >= len(s.words) {
		return false
	}
	return s.words[w]&(1<<uint(i%64)) != 0
}

// Union adds every element of t to s, reporting whether s changed.
func (s Set) Union(t Set) bool {
	changed := false
	for i, w := range t.words {
		if i >= len(s.words) {
			break
		}
		nw := s.words[i] | w
		if nw != s.words[i] {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Intersects reports whether s and t share any element.
func (s Set) Intersects(t Set) bool {
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and t contain exactly the same elements.
func (s Set) Equal(t Set) bool {
	n := len(s.words)
	if len(t.words) > n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(t.words) {
			b = t.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Len returns the number of elements in the set.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements.
func (s Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// ForEach calls f for each element in ascending order.
func (s Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*64 + b)
			w &= w - 1
		}
	}
}

// Elems returns the elements in ascending order.
func (s Set) Elems() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// String renders the set as "{1 5 9}".
func (s Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		b.WriteString(strconv.Itoa(i))
	})
	b.WriteByte('}')
	return b.String()
}
