package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	s := New(200)
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("new set should be empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		s.Add(i)
	}
	if s.Len() != 8 {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, i := range []int{0, 63, 64, 199} {
		if !s.Has(i) {
			t.Fatalf("missing %d", i)
		}
	}
	if s.Has(2) || s.Has(100) {
		t.Fatal("spurious members")
	}
	s.Remove(64)
	if s.Has(64) || s.Len() != 7 {
		t.Fatal("remove failed")
	}
	if s.Has(100000) {
		t.Fatal("out-of-capacity Has should be false")
	}
}

func TestUnionAndEqual(t *testing.T) {
	a, b := New(100), New(100)
	a.Add(3)
	a.Add(50)
	b.Add(50)
	b.Add(99)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal")
	}
	changed := a.Union(b)
	if !changed {
		t.Fatal("union should change a")
	}
	for _, i := range []int{3, 50, 99} {
		if !a.Has(i) {
			t.Fatalf("union missing %d", i)
		}
	}
	if a.Union(b) {
		t.Fatal("second union should be a no-op")
	}
	c := a.Clone()
	if !c.Equal(a) {
		t.Fatal("clone not equal")
	}
	c.Add(7)
	if a.Has(7) {
		t.Fatal("clone aliases original")
	}
}

func TestIntersects(t *testing.T) {
	a, b := New(128), New(128)
	a.Add(10)
	b.Add(11)
	if a.Intersects(b) {
		t.Fatal("disjoint sets intersect")
	}
	b.Add(10)
	if !a.Intersects(b) {
		t.Fatal("intersection missed")
	}
}

func TestElemsOrderedAndString(t *testing.T) {
	s := New(70)
	for _, i := range []int{69, 1, 33} {
		s.Add(i)
	}
	e := s.Elems()
	if len(e) != 3 || e[0] != 1 || e[1] != 33 || e[2] != 69 {
		t.Fatalf("Elems = %v", e)
	}
	if s.String() != "{1 33 69}" {
		t.Fatalf("String = %q", s.String())
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("clear failed")
	}
}

func TestQuickAgainstMap(t *testing.T) {
	// Property: Set behaves like map[int]bool under random ops.
	f := func(ops []uint16) bool {
		s := New(256)
		m := map[int]bool{}
		for _, op := range ops {
			i := int(op % 256)
			switch (op / 256) % 3 {
			case 0:
				s.Add(i)
				m[i] = true
			case 1:
				s.Remove(i)
				delete(m, i)
			case 2:
				if s.Has(i) != m[i] {
					return false
				}
			}
		}
		if s.Len() != len(m) {
			return false
		}
		for i := range m {
			if !s.Has(i) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestForEachAbortsNever(t *testing.T) {
	s := New(64)
	s.Add(5)
	s.Add(6)
	count := 0
	s.ForEach(func(i int) { count++ })
	if count != 2 {
		t.Fatalf("ForEach visited %d", count)
	}
}
