// Package corpus generates synthetic C/C++-subset programs and editing
// scripts for the paper's evaluation. The SPEC95 sources, gcc, ghostscript,
// ensemble and the other Table 1 programs are not redistributable, so the
// benchmarks substitute generated translation units with the same line
// counts and a controlled density of syntactically ambiguous constructs
// (the typedef problem of Figure 1). The measurement pipeline — parse with
// the real IGLR parser, compare dag size against the disambiguated tree —
// is the paper's; only the input text is synthetic.
package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Spec describes one synthetic program.
type Spec struct {
	// Name labels the program (Table 1 row).
	Name string
	// Lines is the approximate line count (one statement per line).
	Lines int
	// Lang is "c" or "c++" — selects csub or cppsub syntax.
	Lang string
	// AmbiguousPerKLoC is the density of ambiguous declaration/expression
	// constructs per thousand lines.
	AmbiguousPerKLoC float64
	// PaperOverheadPct is Table 1's reported space overhead (for the
	// report only; not used in generation).
	PaperOverheadPct float64
	// Seed makes generation deterministic.
	Seed int64
}

// Table1Specs reproduces the paper's Table 1 program list. Ambiguity
// densities are set proportional to the paper's measured space overheads
// (%ov column), which is the observable the density controls.
func Table1Specs() []Spec {
	rows := []struct {
		name  string
		lines int
		lang  string
		ov    float64
	}{
		// SPEC95 programs plus the paper's additional subjects; line
		// counts are Table 1's, and the %ov column values are assigned to
		// rows as best the scanned table allows (see EXPERIMENTS.md).
		{"compress", 1934, "c", 0.21},
		{"gcc", 205093, "c", 0.10},
		{"go", 29246, "c", 0.00},
		{"ijpeg", 31211, "c", 0.02},
		{"m88ksim", 19915, "c", 0.02},
		{"perl", 26871, "c", 0.01},
		{"vortex", 67202, "c", 0.00},
		{"xlisp", 7597, "c", 0.02},
		{"emacs-19.3", 159921, "c", 0.47},
		{"ensemble", 294204, "c++", 0.26},
		{"idl-1.3", 29715, "c++", 0.10},
		{"ghostscript-3.33", 128368, "c", 0.52},
		{"tcl-7.3", 26738, "c", 0.31},
	}
	out := make([]Spec, len(rows))
	for i, r := range rows {
		out[i] = Spec{
			Name:  r.name,
			Lines: r.lines,
			Lang:  r.lang,
			// Density chosen so the measured overhead tracks the paper's
			// column: one ambiguous construct contributes ~5 extra nodes
			// against ~9 tree nodes per line.
			AmbiguousPerKLoC: r.ov * 18,
			PaperOverheadPct: r.ov,
			Seed:             int64(i + 1),
		}
	}
	return out
}

// Generate produces the program text for a spec, along with the number of
// ambiguous constructs emitted. Each ambiguous construct is of the form
// `tN(xM);` where tN was typedef'd earlier — semantically resolvable, like
// the gcc measurements in the paper (all resolved by typedef analysis).
func Generate(s Spec) (src string, ambiguous int) {
	rng := rand.New(rand.NewSource(s.Seed))
	var b strings.Builder
	b.Grow(s.Lines * 24)

	// A pool of typedef'd names declared up front, as headers would.
	nTypes := 8
	for i := 0; i < nTypes; i++ {
		fmt.Fprintf(&b, "typedef int t%d;\n", i)
	}
	lines := nTypes
	nextVar := 0
	ambTarget := int(float64(s.Lines) * s.AmbiguousPerKLoC / 1000)

	// Real translation units are block structured: a top-level sequence of
	// function-body-like blocks, with the ambiguous constructs inside them.
	// This is what makes ambiguity *localized* (paper §2.1): an edit
	// exposes at most the regions of its own block, while other blocks are
	// reused whole.
	const blockLines = 14
	totalBlocks := (s.Lines - nTypes) / (blockLines + 2)
	if totalBlocks < 1 {
		totalBlocks = 1
	}
	ambEveryBlock := 0
	if ambTarget > 0 {
		ambEveryBlock = totalBlocks / ambTarget
		if ambEveryBlock == 0 {
			ambEveryBlock = 1
		}
	}

	for blk := 0; blk < totalBlocks && lines < s.Lines; blk++ {
		b.WriteString("{\n")
		lines++
		stmts := blockLines
		ambHere := 0
		if ambEveryBlock > 0 && blk%ambEveryBlock == 0 && ambiguous < ambTarget {
			ambHere = 1
		}
		for i := 0; i < stmts; i++ {
			if ambHere > 0 && i == stmts/2 {
				// The Figure 1 construct: a declaration that reads like a
				// function call.
				fmt.Fprintf(&b, "  t%d(amb%d);\n", rng.Intn(nTypes), ambiguous)
				ambiguous++
				ambHere = 0
				lines++
				continue
			}
			switch {
			case rng.Intn(3) == 0 || nextVar < 2:
				fmt.Fprintf(&b, "  int v%d = %d;\n", nextVar, rng.Intn(1000))
				nextVar++
			case s.Lang == "c++" && rng.Intn(5) == 0:
				fmt.Fprintf(&b, "  if (v%d) { v%d = %d; }\n",
					rng.Intn(nextVar), rng.Intn(nextVar), rng.Intn(9))
			case rng.Intn(2) == 0:
				fmt.Fprintf(&b, "  v%d = v%d + %d;\n",
					rng.Intn(nextVar), rng.Intn(nextVar), rng.Intn(100))
			default:
				fmt.Fprintf(&b, "  int w%d;\n", nextVar)
				nextVar++
			}
			lines++
		}
		b.WriteString("}\n")
		lines++
	}
	// Top up with plain global declarations to hit the line target.
	for lines < s.Lines {
		fmt.Fprintf(&b, "int g%d;\n", lines)
		lines++
	}
	return b.String(), ambiguous
}

// Edit is a text edit in a script.
type Edit struct {
	Offset   int
	Removed  int
	Inserted string
}

// SelfCancellingEdits builds the §5 incremental workload: n random
// single-token modifications, each followed by its inverse, so the
// document returns to its original state after every pair. The offsets
// index identifier occurrences in src.
func SelfCancellingEdits(src string, n int, seed int64) [][2]Edit {
	rng := rand.New(rand.NewSource(seed))
	// Collect identifier token positions (cheaply: 'v' runs).
	var spots []int
	for i := 0; i+1 < len(src); i++ {
		if (src[i] == 'v' || src[i] == 'w') && src[i+1] >= '0' && src[i+1] <= '9' &&
			(i == 0 || !isWord(src[i-1])) {
			spots = append(spots, i)
		}
	}
	if len(spots) == 0 {
		return nil
	}
	out := make([][2]Edit, 0, n)
	for i := 0; i < n; i++ {
		p := spots[rng.Intn(len(spots))]
		out = append(out, [2]Edit{
			{Offset: p, Removed: 1, Inserted: "q"},
			{Offset: p, Removed: 1, Inserted: string(src[p])},
		})
	}
	return out
}

func isWord(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}
