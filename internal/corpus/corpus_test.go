package corpus_test

import (
	"strings"
	"testing"

	"iglr/internal/corpus"
	"iglr/internal/dag"
	"iglr/internal/iglr"
	"iglr/internal/langs"
	"iglr/internal/langs/cppsub"
	"iglr/internal/langs/csub"
	"iglr/internal/semantics"
)

func langFor(spec corpus.Spec) *langs.Language {
	if spec.Lang == "c++" {
		return cppsub.Lang()
	}
	return csub.Lang()
}

func TestGenerateParsesCleanly(t *testing.T) {
	for _, spec := range []corpus.Spec{
		{Name: "tiny-c", Lines: 200, Lang: "c", AmbiguousPerKLoC: 10, Seed: 1},
		{Name: "tiny-cpp", Lines: 200, Lang: "c++", AmbiguousPerKLoC: 10, Seed: 2},
		{Name: "no-amb", Lines: 300, Lang: "c", AmbiguousPerKLoC: 0, Seed: 3},
	} {
		t.Run(spec.Name, func(t *testing.T) {
			src, amb := corpus.Generate(spec)
			l := langFor(spec)
			d := l.NewDocument(src)
			if d.LexErrorCount != 0 {
				t.Fatalf("lex errors in generated source")
			}
			p := iglr.New(l.Table)
			root, err := p.Parse(d.Stream())
			if err != nil {
				t.Fatalf("generated program does not parse: %v", err)
			}
			st := dag.Measure(root)
			if st.AmbiguousRegions != amb {
				t.Fatalf("ambiguous regions = %d, generator says %d", st.AmbiguousRegions, amb)
			}
			// All ambiguities are typedef-resolvable.
			res := semantics.Resolve(root, langs.CStyleSemantics(l))
			if res.ResolvedDecl != amb || res.Unresolved != 0 {
				t.Fatalf("resolution = %+v, want %d decls", res, amb)
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	s := corpus.Spec{Name: "d", Lines: 150, Lang: "c", AmbiguousPerKLoC: 20, Seed: 9}
	a, _ := corpus.Generate(s)
	b, _ := corpus.Generate(s)
	if a != b {
		t.Fatal("generation must be deterministic per seed")
	}
}

func TestLineCounts(t *testing.T) {
	s := corpus.Spec{Name: "lc", Lines: 1000, Lang: "c", AmbiguousPerKLoC: 5, Seed: 4}
	src, _ := corpus.Generate(s)
	lines := strings.Count(src, "\n")
	if lines < 950 || lines > 1100 {
		t.Fatalf("lines = %d, want ≈1000", lines)
	}
}

func TestSelfCancellingEdits(t *testing.T) {
	s := corpus.Spec{Name: "e", Lines: 300, Lang: "c", AmbiguousPerKLoC: 5, Seed: 5}
	src, _ := corpus.Generate(s)
	pairs := corpus.SelfCancellingEdits(src, 50, 6)
	if len(pairs) != 50 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	l := csub.Lang()
	d := l.NewDocument(src)
	p := iglr.New(l.Table)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)
	for i, pair := range pairs[:10] {
		for _, e := range pair[:] {
			d.Replace(e.Offset, e.Removed, e.Inserted)
			r, err := p.Parse(d.Stream())
			if err != nil {
				t.Fatalf("pair %d: %v (text %q...)", i, err, d.Text()[:50])
			}
			d.Commit(r)
		}
	}
	if d.Text() != src {
		t.Fatal("self-cancelling edits must restore the original text")
	}
}

func TestTable1Specs(t *testing.T) {
	specs := corpus.Table1Specs()
	if len(specs) != 13 {
		t.Fatalf("specs = %d, want 13 (Table 1 rows)", len(specs))
	}
	totalCpp := 0
	for _, s := range specs {
		if s.Lines <= 0 {
			t.Fatalf("%s: bad line count", s.Name)
		}
		if s.Lang == "c++" {
			totalCpp++
		}
	}
	if totalCpp != 2 {
		t.Fatalf("C++ programs = %d, want 2 (ensemble, idl)", totalCpp)
	}
}
