package dag

import (
	"iglr/internal/faultinject"
	"iglr/internal/grammar"
	"iglr/internal/guard"
)

// Arena is the per-document node allocator. Nodes are bump-allocated from
// chunks, which batches what used to be one heap allocation per node into
// one per arenaChunk nodes, and every node receives a dense int32 ID at
// creation. The IDs are what make Scratch possible: traversals index
// slice-backed scratch tables by ID instead of hashing pointers.
//
// An arena only grows — nodes escape into the committed tree, so memory is
// never recycled; the GC reclaims whole chunks once no node in them is
// reachable. All nodes reachable from one dag must come from a single arena
// (IDs from different arenas collide in Scratch), which is why every
// operation that creates nodes takes the arena owning its input.
//
// An Arena is not safe for concurrent use; documents are single-writer.
type Arena struct {
	cur []Node
	n   int32
	// limit, when positive, is the exclusive allocation cap: alloc panics
	// with a *guard.BudgetError once n reaches it. The parsers arm it for
	// the duration of one parse (start count + budget) and disarm it on
	// exit, so document maintenance outside a parse is never capped.
	limit int32
	// kidsBuf is the current chunk of the kid-slice bump allocator (Kids):
	// production nodes own a capacity-capped subslice of it, so one heap
	// allocation per kidsChunk pointers replaces one per reduction.
	kidsBuf []*Node
}

// arenaChunk is the nodes-per-chunk batch size: large enough to amortize
// allocation to noise, small enough that a nearly-empty tail chunk wastes
// little memory (~28KB at current Node size).
const arenaChunk = 256

// NewArena creates an empty arena.
func NewArena() *Arena { return &Arena{} }

// NewArenaAt creates an empty arena whose first node receives ID firstID.
// The chunked batch parser gives each worker arena the host document's
// current ID watermark, so worker-built nodes never collide with the
// document's terminals; after splicing, the fragments are renumbered densely
// and the host arena advanced past them (AdvanceTo).
func NewArenaAt(firstID int) *Arena { return &Arena{n: int32(firstID)} }

// AdvanceTo raises the arena's next-ID watermark to at least next. Callers
// that adopt externally built (and renumbered) nodes into this arena's dag
// use it to keep future IDs unique and the ID space dense.
func (a *Arena) AdvanceTo(next int) {
	if int32(next) > a.n {
		a.n = int32(next)
	}
}

// kidsChunk is the pointer count per kid-slice chunk: big enough to make
// the amortized per-reduction allocation cost vanish, small enough that a
// mostly-unused tail chunk is noise.
const kidsChunk = 4096

// Kids bump-allocates an n-pointer kid slice for a node under construction.
// The result has capacity exactly n (a full slice expression), so a later
// append on the node's Kids copies out instead of scribbling over the
// neighboring node's children. Like node storage, a chunk is reclaimed by
// the GC once every node holding a piece of it is unreachable.
func (a *Arena) Kids(n int) []*Node {
	if cap(a.kidsBuf)-len(a.kidsBuf) < n {
		c := kidsChunk
		if n > c {
			c = n
		}
		a.kidsBuf = make([]*Node, 0, c)
	}
	i := len(a.kidsBuf)
	a.kidsBuf = a.kidsBuf[:i+n]
	return a.kidsBuf[i : i+n : i+n]
}

// NumNodes returns the number of nodes ever allocated — also the exclusive
// upper bound of the IDs in use, which Scratch uses to size its tables.
func (a *Arena) NumNodes() int { return int(a.n) }

// SetLimit arms (or, with max <= 0, disarms) the allocation cap. The cap
// is absolute: callers arm it as NumNodes() + perParseBudget.
func (a *Arena) SetLimit(max int) {
	if max <= 0 {
		a.limit = 0
		return
	}
	a.limit = int32(max)
}

func (a *Arena) alloc() *Node {
	if a.limit > 0 && a.n >= a.limit {
		panic(&guard.BudgetError{Resource: guard.ResArenaNodes, Limit: int64(a.limit), Used: int64(a.n) + 1})
	}
	if faultinject.Enabled() && faultinject.Fire(faultinject.ArenaAlloc, "") == faultinject.ActBudget {
		panic(&guard.BudgetError{Resource: guard.ResArenaNodes, Limit: int64(a.n), Used: int64(a.n) + 1})
	}
	if len(a.cur) == cap(a.cur) {
		a.cur = make([]Node, 0, arenaChunk)
	}
	// Reslice instead of append(a.cur, Node{}): the chunk is already zeroed
	// by make, so materializing and copying a zero Node would be pure waste.
	a.cur = a.cur[:len(a.cur)+1]
	n := &a.cur[len(a.cur)-1]
	n.ID = a.n
	a.n++
	return n
}

// Terminal creates a token leaf.
func (a *Arena) Terminal(sym grammar.Sym, text string) *Node {
	n := a.alloc()
	n.Kind, n.Sym, n.Prod, n.State, n.Text = KindTerminal, sym, -1, NoState, text
	n.LeftmostTerm, n.RightmostTerm, n.TermCount = n, n, 1
	return n
}

// Production creates a production-instance node. The node takes ownership
// of kids.
func (a *Arena) Production(sym grammar.Sym, prod int, state int, kids []*Node) *Node {
	n := a.alloc()
	n.Kind, n.Sym, n.Prod, n.State, n.Kids = KindProduction, sym, int32(prod), int32(state), kids
	n.computeCover()
	return n
}

// Choice creates a symbol node whose interpretations are alts. Choice nodes
// are multi-state by definition (§3.3).
func (a *Arena) Choice(sym grammar.Sym, alts ...*Node) *Node {
	n := a.alloc()
	n.Kind, n.Sym, n.Prod, n.State, n.Kids = KindChoice, sym, -1, MultiState, alts
	n.computeCover()
	return n
}

// Seq creates a balanced-sequence internal node (§3.4).
func (a *Arena) Seq(sym grammar.Sym, kids []*Node) *Node {
	n := a.alloc()
	n.Kind, n.Sym, n.Prod, n.State, n.Kids = KindSeq, sym, -1, NoState, kids
	n.computeCover()
	for _, k := range kids {
		n.SeqCount += seqCountOf(k)
	}
	return n
}

// Error creates an isolated syntax-error region over the quarantined
// terminal nodes kids (kept verbatim, in text order). The node carries
// NoState so incremental reparses break it down instead of reusing it.
func (a *Arena) Error(kids []*Node, det *ErrorDetail) *Node {
	n := a.alloc()
	n.Kind, n.Sym, n.Prod, n.State, n.Kids = KindError, grammar.ErrorSym, -1, NoState, kids
	n.Err = det
	n.computeCover()
	return n
}

// Clone allocates a shallow copy of n with a fresh identity (new ID). The
// Kids slice is shared with the original; callers that rewire children must
// replace it.
func (a *Arena) Clone(n *Node) *Node {
	c := a.alloc()
	id := c.ID
	*c = *n
	c.ID = id
	return c
}
