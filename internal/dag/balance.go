package dag

import (
	"iglr/internal/grammar"
)

// Associative sequences (§3.4): grammars express repetition with generated
// left-recursive productions (X+ → X | X+ X), which parse deterministically
// but produce linked-list-shaped trees — incremental algorithms over them
// degenerate to linear time. Because sequence productions are marked
// associative, the dag is free to store their yields as balanced binary
// trees of KindSeq nodes, restoring the O(lg N) node-access bound the
// incremental analysis requires.

// maxImbalance is the scapegoat-style rebalancing threshold: a KindSeq node
// is rebuilt when one side exceeds this multiple of the other.
const maxImbalance = 3

// seqLeafLimit is the number of elements kept in one KindSeq node before it
// splits; small fan-out keeps depth logarithmic while avoiding a node per
// element.
const seqLeafLimit = 8

// IsSequenceRoot reports whether n is structure belonging to the sequence
// nonterminal sym: either a generated left-recursive production node or a
// balanced KindSeq node.
func IsSequenceRoot(g *grammar.Grammar, n *Node) bool {
	if n.Kind == KindSeq {
		return true
	}
	if n.Kind != KindProduction {
		return false
	}
	return g.Symbol(n.Sym).IsSequence()
}

// SeqElements flattens sequence structure (left-recursive chains, balanced
// KindSeq nodes, or a mix) into the ordered element list. Non-sequence
// nodes yield themselves.
func SeqElements(g *grammar.Grammar, n *Node) []*Node {
	var out []*Node
	var flatten func(m *Node)
	flatten = func(m *Node) {
		switch {
		case m.Kind == KindSeq:
			for _, k := range m.Kids {
				flatten(k)
			}
		case m.Kind == KindProduction && g.Symbol(m.Sym).IsSequence():
			for _, k := range m.Kids {
				// Children that are themselves sequence structure of the
				// same family (X+ inside X+ or X*) flatten recursively;
				// element children are appended.
				if k.Kind == KindSeq ||
					(k.Kind != KindTerminal && g.Symbol(k.Sym).IsSequence()) {
					flatten(k)
				} else {
					out = append(out, k)
				}
			}
		default:
			out = append(out, m)
		}
	}
	flatten(n)
	return out
}

// BuildSeq constructs a balanced sequence for sym over elems, allocating
// from a. For zero elements it returns an empty KindSeq node.
func BuildSeq(a *Arena, sym grammar.Sym, elems []*Node) *Node {
	n := buildSeq(a, sym, elems)
	if n == nil {
		return a.Seq(sym, nil)
	}
	return n
}

func buildSeq(a *Arena, sym grammar.Sym, elems []*Node) *Node {
	switch {
	case len(elems) == 0:
		return nil
	case len(elems) <= seqLeafLimit:
		kids := make([]*Node, len(elems))
		copy(kids, elems)
		return a.Seq(sym, kids)
	default:
		mid := len(elems) / 2
		return a.Seq(sym, []*Node{buildSeq(a, sym, elems[:mid]), buildSeq(a, sym, elems[mid:])})
	}
}

// Rebalance rewrites, in place, every associative-sequence region reachable
// from root into balanced form: each production node whose LHS is a
// sequence nonterminal and that heads a left-recursive chain is replaced by
// a KindSeq tree over the chain's elements. It returns the new root (the
// root itself may be replaced when it is sequence structure).
func Rebalance(a *Arena, g *grammar.Grammar, root *Node) *Node {
	seen := AcquireScratch()
	defer ReleaseScratch(seen)
	var rb func(n *Node) *Node
	rb = func(n *Node) *Node {
		if r, ok := seen.Ref(n); ok {
			return r
		}
		seen.SetRef(n, n) // provisional, protects against cycles
		var out *Node
		if n.Kind == KindProduction && g.Symbol(n.Sym).IsSequence() {
			elems := SeqElements(g, n)
			for i, e := range elems {
				elems[i] = rb(e)
			}
			out = BuildSeq(a, n.Sym, elems)
		} else {
			for i, k := range n.Kids {
				n.Kids[i] = rb(k)
			}
			out = n
		}
		seen.SetRef(n, out)
		return out
	}
	return rb(root)
}

// SeqLen returns the number of elements in balanced sequence structure.
func SeqLen(n *Node) int {
	if n.Kind != KindSeq {
		return 1
	}
	total := 0
	for _, k := range n.Kids {
		total += SeqLen(k)
	}
	return total
}

// SeqDepth returns the height of balanced sequence structure (diagnostic).
func SeqDepth(n *Node) int {
	if n.Kind != KindSeq {
		return 0
	}
	max := 0
	for _, k := range n.Kids {
		if d := SeqDepth(k); d > max {
			max = d
		}
	}
	return max + 1
}

// SeqEditor performs O(lg n) amortized persistent edits on a balanced
// sequence: the spine from root to the touched element is path-copied, so
// the previous version remains intact (self-versioning document model).
// Element counts are carried in the nodes (SeqCount), so indexing costs
// O(1) per level with no auxiliary state.
type SeqEditor struct {
	a   *Arena
	sym grammar.Sym
}

// NewSeqEditor creates an editor for sequences of the given nonterminal;
// path-copied spine nodes are allocated from a.
func NewSeqEditor(a *Arena, sym grammar.Sym) *SeqEditor {
	return &SeqEditor{a: a, sym: sym}
}

func (ed *SeqEditor) size(n *Node) int { return int(seqCountOf(n)) }

// Get returns element i of the sequence.
func (ed *SeqEditor) Get(root *Node, i int) *Node {
	for root.Kind == KindSeq {
		for _, k := range root.Kids {
			sz := ed.size(k)
			if i < sz {
				root = k
				goto next
			}
			i -= sz
		}
		return nil
	next:
	}
	if i != 0 {
		return nil
	}
	return root
}

// Replace returns a new root with element i replaced by e.
func (ed *SeqEditor) Replace(root *Node, i int, e *Node) *Node {
	return ed.splice(root, i, 1, []*Node{e})
}

// Insert returns a new root with e inserted before element i.
func (ed *SeqEditor) Insert(root *Node, i int, e *Node) *Node {
	return ed.splice(root, i, 0, []*Node{e})
}

// Delete returns a new root with element i removed.
func (ed *SeqEditor) Delete(root *Node, i int) *Node {
	return ed.splice(root, i, 1, nil)
}

// splice replaces elements [i, i+removed) with repl, path-copying the
// spine. Subtrees that become badly imbalanced along the spine are rebuilt.
func (ed *SeqEditor) splice(root *Node, i, removed int, repl []*Node) *Node {
	if root.Kind != KindSeq {
		// Single element (or chain head): flatten trivially.
		elems := []*Node{root}
		elems = spliceSlice(elems, i, removed, repl)
		return BuildSeq(ed.a, ed.sym, elems)
	}
	total := ed.size(root)
	if i < 0 || i+removed > total {
		panic("dag: sequence splice out of range")
	}
	out := ed.spliceNode(root, i, removed, repl)
	if out == nil {
		return ed.a.Seq(ed.sym, nil)
	}
	return out
}

func (ed *SeqEditor) spliceNode(n *Node, i, removed int, repl []*Node) *Node {
	if n.Kind != KindSeq {
		// Leaf element: i==0 and removed∈{0,1}.
		var elems []*Node
		if removed == 0 {
			if i == 0 {
				elems = append(append([]*Node{}, repl...), n)
			} else {
				elems = append([]*Node{n}, repl...)
			}
		} else {
			elems = repl
		}
		return buildSeq(ed.a, ed.sym, elems)
	}
	// Small subtrees are rebuilt wholesale; this bounds constant factors
	// without affecting the logarithmic spine length.
	sz := ed.size(n)
	if sz <= 2*seqLeafLimit {
		elems := SeqElementsFlat(n)
		elems = spliceSlice(elems, i, removed, repl)
		return buildSeq(ed.a, ed.sym, elems)
	}
	kids := make([]*Node, 0, len(n.Kids))
	pos := 0
	changed := false
	replUsed := repl == nil
	for idx, k := range n.Kids {
		ksz := ed.size(k)
		lo, hi := pos, pos+ksz
		pos = hi
		// Portion of the removed range [i, i+removed) inside this child.
		remLo, remHi := max(i, lo), min(i+removed, hi)
		kidRemoved := remHi - remLo
		if kidRemoved < 0 {
			kidRemoved = 0
		}
		// The replacement is attached where the edit begins: the child
		// containing position i (the last child accepts i == total for
		// appends).
		var kidRepl []*Node
		if !replUsed && i >= lo && (i < hi || (idx == len(n.Kids)-1 && i == hi)) {
			kidRepl = repl
			replUsed = true
		}
		if kidRemoved == 0 && kidRepl == nil {
			kids = append(kids, k)
			continue
		}
		nk := ed.spliceNode(k, max(i, lo)-lo, kidRemoved, kidRepl)
		if nk != nil {
			kids = append(kids, nk)
		}
		changed = true
	}
	if !changed {
		return n
	}
	if len(kids) == 0 {
		return nil
	}
	out := ed.a.Seq(ed.sym, kids)
	return ed.maybeRebuild(out)
}

// maybeRebuild rebuilds a KindSeq node whose children are badly imbalanced.
func (ed *SeqEditor) maybeRebuild(n *Node) *Node {
	if len(n.Kids) == 2 {
		a, b := ed.size(n.Kids[0]), ed.size(n.Kids[1])
		if a > maxImbalance*b+seqLeafLimit || b > maxImbalance*a+seqLeafLimit {
			return buildSeq(ed.a, ed.sym, SeqElementsFlat(n))
		}
	}
	if len(n.Kids) > seqLeafLimit {
		return buildSeq(ed.a, ed.sym, SeqElementsFlat(n))
	}
	return n
}

// SeqElementsFlat flattens pure KindSeq structure (no grammar needed).
func SeqElementsFlat(n *Node) []*Node {
	var out []*Node
	var rec func(m *Node)
	rec = func(m *Node) {
		if m.Kind == KindSeq {
			for _, k := range m.Kids {
				rec(k)
			}
			return
		}
		out = append(out, m)
	}
	rec(n)
	return out
}

func spliceSlice(elems []*Node, i, removed int, repl []*Node) []*Node {
	out := make([]*Node, 0, len(elems)-removed+len(repl))
	out = append(out, elems[:i]...)
	out = append(out, repl...)
	out = append(out, elems[i+removed:]...)
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
