package dag

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"iglr/internal/grammar"
)

// testArena allocates every test's nodes; one arena keeps IDs unique
// across helpers without threading it through each call.
var testArena = NewArena()

func term(text string) *Node { return testArena.Terminal(5, text) }

func TestChoiceBasics(t *testing.T) {
	a := testArena.Production(2, 1, 7, []*Node{term("x")})
	b := testArena.Production(2, 2, 7, []*Node{term("x")})
	c := testArena.Choice(2, a)
	c.AddChoice(b)
	if !c.IsChoice() || c.Arity() != 2 {
		t.Fatalf("choice node malformed: %v", c)
	}
	if c.State != MultiState {
		t.Fatalf("choice node state = %d, want MultiState", c.State)
	}
	if c.Selected() != nil {
		t.Fatalf("ambiguous choice should have no selection")
	}
	b.Filtered = true
	if c.Selected() != a {
		t.Fatalf("filtering should select the surviving alternative")
	}
	if c.Ambiguous() {
		t.Fatalf("filtered choice should not count as ambiguous")
	}
	b.Filtered = false
	if !c.Ambiguous() {
		t.Fatalf("unfiltered choice should be ambiguous")
	}
}

func TestYieldAndTerminals(t *testing.T) {
	x, y := term("foo"), term("bar")
	p := testArena.Production(3, 1, NoState, []*Node{x, y})
	if p.Yield() != "foobar" {
		t.Fatalf("yield = %q", p.Yield())
	}
	alt := testArena.Production(3, 2, NoState, []*Node{x, y})
	ch := testArena.Choice(3, p, alt)
	if ch.Yield() != "foobar" {
		t.Fatalf("choice yield = %q", ch.Yield())
	}
	terms := ch.Terminals(nil)
	if len(terms) != 2 || terms[0] != x || terms[1] != y {
		t.Fatalf("terminals = %v", terms)
	}
}

func TestMeasure(t *testing.T) {
	// Two interpretations sharing their terminals (the paper's Figure 3
	// shape): dag = choice + 2 productions + shared terminals.
	x, y := term("a"), term("b")
	declInterp := testArena.Production(2, 1, NoState, []*Node{x, y})
	callInterp := testArena.Production(2, 2, NoState, []*Node{x, y})
	ch := testArena.Choice(2, declInterp, callInterp)
	root := testArena.Production(1, 0, NoState, []*Node{ch})

	s := Measure(root)
	// Unique nodes: root, choice, 2 interps, 2 terminals = 6.
	if s.DagNodes != 6 {
		t.Fatalf("DagNodes = %d, want 6", s.DagNodes)
	}
	// Embedded tree: root, one interp, 2 terminals = 4.
	if s.TreeNodes != 4 {
		t.Fatalf("TreeNodes = %d, want 4", s.TreeNodes)
	}
	if s.ChoiceNodes != 1 || s.AmbiguousRegions != 1 || s.MaxAlternatives != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SpaceOverheadPercent() <= 0 {
		t.Fatalf("overhead should be positive: %v", s.SpaceOverheadPercent())
	}
	if s.Terminals != 2 {
		t.Fatalf("terminals = %d", s.Terminals)
	}
}

func TestUnshareEpsilon(t *testing.T) {
	// A shared null-yield subtree under two parents must be duplicated.
	eps := testArena.Production(4, 9, NoState, nil) // ε production instance
	p1 := testArena.Production(2, 1, NoState, []*Node{term("a"), eps})
	p2 := testArena.Production(2, 2, NoState, []*Node{term("b"), eps})
	root := testArena.Production(1, 0, NoState, []*Node{p1, p2})

	shared := SharedNullYields(root)
	if len(shared) != 1 || shared[0] != eps {
		t.Fatalf("SharedNullYields = %v, want [eps]", shared)
	}
	dups := UnshareEpsilon(testArena, root)
	if dups != 1 {
		t.Fatalf("dups = %d, want 1", dups)
	}
	if p1.Kids[1] == p2.Kids[1] {
		t.Fatalf("epsilon structure still shared after unsharing")
	}
	if len(SharedNullYields(root)) != 0 {
		t.Fatalf("sharing should be gone")
	}
	// Non-null sharing must be left intact.
	sharedTerm := term("x")
	q1 := testArena.Production(2, 1, NoState, []*Node{sharedTerm})
	q2 := testArena.Production(2, 2, NoState, []*Node{sharedTerm})
	root2 := testArena.Choice(2, q1, q2)
	UnshareEpsilon(testArena, root2)
	if q1.Kids[0] != q2.Kids[0] {
		t.Fatalf("non-null sharing should be preserved")
	}
}

func seqGrammar(t testing.TB) *grammar.Grammar {
	g, err := grammar.Parse(`
%token x ';'
%start Block
Block : Stmt* ;
Stmt : x ';' ;
`)
	if err != nil {
		t.Fatalf("grammar: %v", err)
	}
	return g
}

// chainOf builds the left-recursive parse structure the parser produces for
// n statements.
func chainOf(t testing.TB, g *grammar.Grammar, n int) *Node {
	stmtSym := g.Lookup("Stmt")
	plus := g.Lookup("Stmt+")
	var plusProds []*grammar.Production
	for _, p := range g.ProductionsFor(plus) {
		plusProds = append(plusProds, p)
	}
	if len(plusProds) != 2 {
		t.Fatalf("expected 2 productions for Stmt+")
	}
	single, rec := plusProds[0], plusProds[1]
	if len(single.RHS) != 1 {
		single, rec = rec, single
	}
	stmt := func(i int) *Node {
		return testArena.Production(stmtSym, g.ProductionsFor(stmtSym)[0].ID, NoState,
			[]*Node{testArena.Terminal(g.Lookup("x"), fmt.Sprintf("x%d", i)), testArena.Terminal(g.Lookup("';'"), ";")})
	}
	root := testArena.Production(plus, single.ID, NoState, []*Node{stmt(0)})
	for i := 1; i < n; i++ {
		root = testArena.Production(plus, rec.ID, NoState, []*Node{root, stmt(i)})
	}
	return root
}

func TestRebalance(t *testing.T) {
	g := seqGrammar(t)
	n := 1000
	chain := chainOf(t, g, n)
	bal := Rebalance(testArena, g, chain)
	if got := SeqLen(bal); got != n {
		t.Fatalf("SeqLen = %d, want %d", got, n)
	}
	if d := SeqDepth(bal); d > 14 {
		t.Fatalf("depth %d too large for %d elements", d, n)
	}
	elems := SeqElementsFlat(bal)
	if len(elems) != n {
		t.Fatalf("elements = %d", len(elems))
	}
	// Order preserved.
	for i, e := range elems {
		want := fmt.Sprintf("x%d;", i)
		if e.Yield() != want {
			t.Fatalf("element %d yield = %q, want %q", i, e.Yield(), want)
		}
	}
}

func TestSeqEditorOps(t *testing.T) {
	g := seqGrammar(t)
	sym := g.Lookup("Stmt+")
	ed := NewSeqEditor(testArena, sym)
	root := Rebalance(testArena, g, chainOf(t, g, 50))

	// Replace.
	repl := term("REPL")
	root2 := ed.Replace(root, 10, repl)
	if ed.Get(root2, 10) != repl {
		t.Fatalf("Replace failed")
	}
	if ed.Get(root, 10) == repl {
		t.Fatalf("Replace mutated the old version (must be persistent)")
	}
	if SeqLen(root2) != 50 {
		t.Fatalf("length changed on replace: %d", SeqLen(root2))
	}

	// Insert.
	ins := term("INS")
	root3 := ed.Insert(root2, 0, ins)
	if SeqLen(root3) != 51 || ed.Get(root3, 0) != ins {
		t.Fatalf("Insert at 0 failed")
	}
	root4 := ed.Insert(root3, 51, term("END"))
	if SeqLen(root4) != 52 || ed.Get(root4, 51).Text != "END" {
		t.Fatalf("append failed: len=%d", SeqLen(root4))
	}

	// Delete.
	root5 := ed.Delete(root4, 0)
	if SeqLen(root5) != 51 || ed.Get(root5, 0) == ins {
		t.Fatalf("Delete failed")
	}
}

func TestSeqEditorRandomAgainstSlice(t *testing.T) {
	g := seqGrammar(t)
	sym := g.Lookup("Stmt+")
	ed := NewSeqEditor(testArena, sym)
	rng := rand.New(rand.NewSource(7))

	var model []string
	root := testArena.Seq(sym, nil)
	for i := 0; i < 20; i++ {
		e := term(fmt.Sprintf("e%d", i))
		model = append(model, e.Text)
		root = ed.Insert(root, len(model)-1, e)
	}
	for step := 0; step < 2000; step++ {
		op := rng.Intn(3)
		switch {
		case op == 0 || len(model) == 0: // insert
			i := rng.Intn(len(model) + 1)
			e := term(fmt.Sprintf("n%d", step))
			root = ed.Insert(root, i, e)
			model = append(model[:i:i], append([]string{e.Text}, model[i:]...)...)
		case op == 1: // delete
			i := rng.Intn(len(model))
			root = ed.Delete(root, i)
			model = append(model[:i:i], model[i+1:]...)
		default: // replace
			i := rng.Intn(len(model))
			e := term(fmt.Sprintf("r%d", step))
			root = ed.Replace(root, i, e)
			model = append(append(model[:i:i], e.Text), model[i+1:]...)
		}
		if SeqLen(root) != len(model) {
			t.Fatalf("step %d: len %d, model %d", step, SeqLen(root), len(model))
		}
		if step%97 == 0 {
			elems := SeqElementsFlat(root)
			for i, e := range elems {
				if e.Text != model[i] {
					t.Fatalf("step %d: element %d = %q, want %q", step, i, e.Text, model[i])
				}
			}
			// Depth stays logarithmic-ish.
			if d, n := SeqDepth(root), len(model); n > 16 && d > 4*log2(n) {
				t.Fatalf("step %d: depth %d too large for %d elements", step, d, n)
			}
		}
	}
}

func log2(n int) int {
	d := 0
	for n > 1 {
		n /= 2
		d++
	}
	return d
}

func TestSeqDepthLogarithmicProperty(t *testing.T) {
	g := seqGrammar(t)
	f := func(k uint8) bool {
		n := int(k)%2000 + 1
		bal := Rebalance(testArena, g, chainOf(t, g, n))
		return SeqDepth(bal) <= 2*log2(n)+4 && SeqLen(bal) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFormat(t *testing.T) {
	g := seqGrammar(t)
	root := Rebalance(testArena, g, chainOf(t, g, 3))
	s := Format(g, root)
	if s == "" {
		t.Fatal("empty format")
	}
}

func TestWalkVisitsSharedOnce(t *testing.T) {
	shared := term("s")
	p1 := testArena.Production(2, 1, NoState, []*Node{shared})
	p2 := testArena.Production(2, 2, NoState, []*Node{shared})
	root := testArena.Choice(2, p1, p2)
	count := 0
	root.Walk(func(n *Node) { count++ })
	if count != 4 {
		t.Fatalf("walk visited %d nodes, want 4", count)
	}
}
