package dag

// UnshareEpsilon implements the paper's §3.5 post-pass: GLR parsing (and
// Rekers-style merging) can over-share subtrees with a null yield, which
// prevents semantic attributes from being uniquely assigned to ε-production
// instances. This pass duplicates any null-yield subtree that is reachable
// through more than one parent edge, so each instance is unique. It returns
// the number of subtrees duplicated. Copies are allocated from a, which
// must be the arena owning root.
//
// Sharing of non-null subtrees (true ambiguity sharing) is left untouched.
// The walk prunes at already-committed subtrees: their interiors were
// unshared when they were first built, and incremental reuse never rewires
// them, so only freshly built structure needs inspection — this keeps the
// pass proportional to the reparsed region.
func UnshareEpsilon(a *Arena, root *Node) int {
	seenNull := AcquireScratch()
	visited := AcquireScratch()
	defer ReleaseScratch(seenNull)
	defer ReleaseScratch(visited)
	dups := 0
	var visit func(n *Node)
	visit = func(n *Node) {
		if !visited.Visit(n) {
			return
		}
		for i, k := range n.Kids {
			if k.TermCount == 0 && !k.IsTerminal() {
				if !seenNull.Visit(k) {
					n.Kids[i] = deepCopy(a, k)
					dups++
					continue // the fresh copy is uniquely owned; no revisit needed
				}
			}
			if !k.Committed {
				visit(n.Kids[i])
			}
		}
	}
	visit(root)
	return dups
}

// isNullYield reports whether the subtree yields the empty string.
func isNullYield(n *Node) bool { return !n.IsTerminal() && n.TermCount == 0 }

// deepCopy clones a (null-yield) subtree, giving every node fresh identity.
func deepCopy(a *Arena, n *Node) *Node {
	c := a.Clone(n)
	if len(n.Kids) > 0 {
		c.Kids = make([]*Node, len(n.Kids))
		for i, k := range n.Kids {
			c.Kids[i] = deepCopy(a, k)
		}
	}
	return c
}

// SharedNullYields returns the null-yield subtrees reachable through more
// than one parent edge — the over-sharing UnshareEpsilon repairs. Useful
// for tests and diagnostics.
func SharedNullYields(root *Node) []*Node {
	visited := AcquireScratch()
	refs := AcquireScratch()
	defer ReleaseScratch(visited)
	defer ReleaseScratch(refs)
	var out []*Node
	// Count parent edges: each node's child list is scanned exactly once,
	// and a null-yield child is reported when its count first reaches two.
	var countEdges func(n *Node)
	countEdges = func(n *Node) {
		if !visited.Visit(n) {
			return
		}
		for _, k := range n.Kids {
			if isNullYield(k) {
				c, _ := refs.Value(k)
				refs.SetValue(k, c+1)
				if c+1 == 2 {
					out = append(out, k)
				}
			}
			countEdges(k)
		}
	}
	countEdges(root)
	return out
}
