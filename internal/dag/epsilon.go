package dag

// UnshareEpsilon implements the paper's §3.5 post-pass: GLR parsing (and
// Rekers-style merging) can over-share subtrees with a null yield, which
// prevents semantic attributes from being uniquely assigned to ε-production
// instances. This pass duplicates any null-yield subtree that is reachable
// through more than one parent edge, so each instance is unique. It returns
// the number of subtrees duplicated.
//
// Sharing of non-null subtrees (true ambiguity sharing) is left untouched.
// The walk prunes at already-committed subtrees: their interiors were
// unshared when they were first built, and incremental reuse never rewires
// them, so only freshly built structure needs inspection — this keeps the
// pass proportional to the reparsed region.
func UnshareEpsilon(root *Node) int {
	seenNull := map[*Node]bool{}
	visited := map[*Node]bool{}
	dups := 0
	var visit func(n *Node)
	visit = func(n *Node) {
		if visited[n] {
			return
		}
		visited[n] = true
		for i, k := range n.Kids {
			if k.TermCount == 0 && !k.IsTerminal() {
				if seenNull[k] {
					n.Kids[i] = deepCopy(k)
					dups++
					continue // the fresh copy is uniquely owned; no revisit needed
				}
				seenNull[k] = true
			}
			if !k.Committed {
				visit(n.Kids[i])
			}
		}
	}
	visit(root)
	return dups
}

// isNullYield reports whether the subtree yields the empty string.
func isNullYield(n *Node) bool { return !n.IsTerminal() && n.TermCount == 0 }

// deepCopy clones a (null-yield) subtree, giving every node fresh identity.
func deepCopy(n *Node) *Node {
	c := *n
	if len(n.Kids) > 0 {
		c.Kids = make([]*Node, len(n.Kids))
		for i, k := range n.Kids {
			c.Kids[i] = deepCopy(k)
		}
	}
	return &c
}

// SharedNullYields returns the null-yield subtrees reachable through more
// than one parent edge — the over-sharing UnshareEpsilon repairs. Useful
// for tests and diagnostics.
func SharedNullYields(root *Node) []*Node {
	refs := map[*Node]int{}
	visited := map[*Node]bool{}
	// Count parent edges: each node's child list is scanned exactly once.
	var countEdges func(n *Node)
	countEdges = func(n *Node) {
		if visited[n] {
			return
		}
		visited[n] = true
		for _, k := range n.Kids {
			if isNullYield(k) {
				refs[k]++
			}
			countEdges(k)
		}
	}
	countEdges(root)
	var out []*Node
	for n, c := range refs {
		if c > 1 {
			out = append(out, n)
		}
	}
	return out
}
