package dag

import "unsafe"

// nodeFootprint is the estimated resident cost of one arena node: the Node
// struct itself plus one amortized kid-slice pointer slot (terminals own
// none, productions a few; one slot per node matches observed averages).
const nodeFootprint = int64(unsafe.Sizeof(Node{})) + 8

// Footprint estimates the arena's resident bytes. It is intentionally an
// ever-allocated figure (IDs are never recycled and committed nodes keep
// their chunks reachable), which makes it the right input for the memory
// governor: it moves monotonically with parse work and never under-counts
// what the GC could still be holding.
func (a *Arena) Footprint() int64 {
	return int64(a.n)*nodeFootprint + int64(cap(a.kidsBuf))*8
}
