// Package dag implements the abstract parse dag of Wagner & Graham (PLDI
// 1997, §2): a parse-tree-like representation in which a region may have
// multiple interpretations. Deterministic regions are conventional
// production nodes; ambiguity introduces symbol (choice) nodes whose
// children are the alternative interpretations of a common yield. The
// package also provides the balanced representation of associative
// sequences (§3.4), the epsilon-unsharing post-pass (§3.5), and the space
// accounting used by the paper's evaluation (Table 1, Figure 4).
package dag

import (
	"fmt"
	"strings"

	"iglr/internal/grammar"
)

// Parse states recorded in nodes (§3.3).
const (
	// NoState marks nodes that have not been assigned a parse state —
	// terminals before shifting, choice nodes (multi-state by definition),
	// and freshly built structure.
	NoState = -1
	// MultiState is the equivalence class representing "constructed while
	// multiple parsers were active": dynamic lookahead was consumed, so the
	// incremental parser must decompose rather than reuse (§3.3).
	MultiState = -2
)

// Kind discriminates dag node varieties.
type Kind uint8

// Node kinds.
const (
	// KindTerminal is a token leaf.
	KindTerminal Kind = iota
	// KindProduction is an instance of a grammar production (a "rule
	// node"): Sym is the LHS phylum, Prod the production.
	KindProduction
	// KindChoice is a symbol node representing only a phylum; its children
	// are the alternative interpretations of their common yield.
	KindChoice
	// KindSeq is an internal node of a balanced associative sequence: Sym
	// is the sequence nonterminal; its children are elements and/or other
	// KindSeq nodes. Created by rebalancing, not by the parser.
	KindSeq
	// KindError is an isolated syntax-error region: its children are the
	// quarantined terminals, kept verbatim so the document's text is never
	// reverted by error handling. Error nodes are created by the tier-1
	// isolating reparse (internal/isolate), never by the parser itself; like
	// BudgetPruned regions they mark structure that is usable but carries no
	// grammatical interpretation. Their state is NoState, so incremental
	// reparses always break them down and re-offer the quarantined tokens —
	// which is how a region converges back to ordinary structure once the
	// text is repaired.
	KindError
)

// Node is one abstract-parse-dag node. Nodes are compared by pointer
// identity; structural sharing is what makes the representation a dag.
// Nodes are created through an Arena, which assigns the ID.
//
// Field order is deliberate: the one-byte kind and flags pack into a single
// word, the int32s fill the next two, and the pointer-bearing fields close
// the struct — 104 bytes total. Node memory is the dominant allocation of a
// cold batch parse (roughly one node per input byte on C-like corpora), so
// every field byte is zeroed, written, and GC-scanned millions of times per
// corpus file; keep the struct tight when adding fields.
type Node struct {
	Kind Kind
	// Filtered marks an interpretation rejected by a semantic filter. The
	// node is retained (semantic filtering is reversible, §4.2) but
	// ignored by pipeline stages that read the embedded tree.
	Filtered bool
	// Changed marks terminals removed or modified since the last parse;
	// the document layer maintains it.
	Changed bool
	// NestedChange marks interior nodes whose yield contains an edit since
	// the last parse.
	NestedChange bool
	// RightChanged marks a terminal whose following token was edited — the
	// right-context invalidation of §3.2.
	RightChanged bool
	// Committed marks nodes that belong to a committed (parsed) tree;
	// used to distinguish reused structure from freshly built structure.
	Committed bool
	// BudgetPruned marks a choice node whose interpretations were cut to
	// the statically preferred one because the region exceeded the
	// ambiguity budget (guard.Budget.MaxAlternatives). The tree is usable
	// but no longer encodes the full forest for this region — analyses
	// that rely on the §5 bounded-ambiguity claims should treat the region
	// as disambiguated by policy, not by evidence.
	BudgetPruned bool
	// ID is the dense per-arena node number, assigned at allocation. It
	// never changes and is unique within the node's arena; Scratch tables
	// index by it.
	ID int32
	// Sym is the symbol this node represents: the terminal for leaves, the
	// production LHS for production nodes, the phylum for choice nodes.
	Sym grammar.Sym
	// Prod is the production instance for KindProduction nodes; -1
	// otherwise.
	Prod int32
	// State is the deterministic parse state recorded when the node was
	// shifted (state-matching, §3.2), or NoState / MultiState.
	State int32

	// Incremental bookkeeping (§3.2–3.3). The paper notes that recording
	// the leftmost terminal descendant in every node trades space for the
	// ability to locate reuse candidates without traversal; we also record
	// the rightmost terminal (for the right-context check) and the
	// terminal count (to advance the input cursor past a shifted subtree).

	// TermCount is the number of terminal leaves in the subtree.
	TermCount int32
	// SeqCount is the number of sequence elements under a KindSeq node
	// (1 for any other node); it makes balanced-sequence indexing O(1)
	// per level.
	SeqCount int32
	// Kids are the children: RHS instances for production nodes,
	// alternatives for choice nodes, elements/subsequences for KindSeq.
	Kids []*Node
	// Text is the lexeme (terminals only).
	Text string
	// Parent is the node's parent in the last committed tree. Shared nodes
	// (ambiguous regions) record one representative parent; any parent
	// chain reaches the root, which is all change propagation needs.
	Parent *Node
	// LeftmostTerm/RightmostTerm delimit the node's terminal yield; nil
	// for null-yield subtrees.
	LeftmostTerm, RightmostTerm *Node
	// Err carries the failure detail of a KindError node (nil otherwise).
	Err *ErrorDetail
}

// ErrorDetail records why a KindError region failed to parse — the raw
// material of the session's Diagnostics API. Positions are not stored: they
// are recomputed from the error node's terminal cover on demand, which is
// what keeps diagnostics correctly remapped across later edits.
type ErrorDetail struct {
	// Expected lists, by grammar name (sorted), the terminals the parser
	// could have accepted at the failure point.
	Expected []string
	// Region is the sequence nonterminal whose element structure isolated
	// the damage, or grammar.InvalidSym when the region was bounded without
	// a sequence host (e.g. a batch panic-mode quarantine).
	Region grammar.Sym
}

// computeCover fills the terminal-yield bookkeeping from the children.
func (n *Node) computeCover() {
	n.TermCount = 0
	n.LeftmostTerm, n.RightmostTerm = nil, nil
	kids := n.Kids
	if n.Kind == KindChoice && len(kids) > 0 {
		kids = kids[:1] // all interpretations share one yield
	}
	for _, k := range kids {
		n.TermCount += k.TermCount
		if n.LeftmostTerm == nil {
			n.LeftmostTerm = k.LeftmostTerm
		}
		if k.RightmostTerm != nil {
			n.RightmostTerm = k.RightmostTerm
		}
	}
}

// RecomputeCover refreshes the terminal-yield bookkeeping (leftmost and
// rightmost terminal, terminal count) from the current children. Splicing
// passes that rewire Kids in place — e.g. the chunked batch parser replacing
// a stub with the preceding chunk's sequence chain — call it bottom-up over
// the rewired spine.
func (n *Node) RecomputeCover() { n.computeCover() }

// PropagateChange sets NestedChange on every ancestor of n (stopping at the
// first already-marked ancestor, which makes repeated marking cheap).
func (n *Node) PropagateChange() {
	for a := n.Parent; a != nil && !a.NestedChange; a = a.Parent {
		a.NestedChange = true
	}
}

func seqCountOf(n *Node) int32 {
	if n.Kind == KindSeq {
		return n.SeqCount
	}
	return 1
}

// IsTerminal reports whether n is a token leaf.
func (n *Node) IsTerminal() bool { return n.Kind == KindTerminal }

// IsChoice reports whether n is a symbol (choice) node.
func (n *Node) IsChoice() bool { return n.Kind == KindChoice }

// Arity returns the child count.
func (n *Node) Arity() int { return len(n.Kids) }

// AddChoice appends an interpretation to a choice node.
func (n *Node) AddChoice(alt *Node) {
	if n.Kind != KindChoice {
		panic("dag: AddChoice on non-choice node")
	}
	n.Kids = append(n.Kids, alt)
}

// Selected returns the surviving interpretation of a choice node: the
// unique unfiltered child, or nil if zero or several remain. For non-choice
// nodes it returns n itself.
func (n *Node) Selected() *Node {
	if n.Kind != KindChoice {
		return n
	}
	var sel *Node
	for _, k := range n.Kids {
		if k.Filtered {
			continue
		}
		if sel != nil {
			return nil
		}
		sel = k
	}
	return sel
}

// Ambiguous reports whether the subtree rooted at n contains a choice node
// with more than one unfiltered interpretation.
func (n *Node) Ambiguous() bool {
	s := AcquireScratch()
	defer ReleaseScratch(s)
	found := false
	n.walk(s, func(m *Node) bool {
		if m.Kind == KindChoice {
			alive := 0
			for _, k := range m.Kids {
				if !k.Filtered {
					alive++
				}
			}
			if alive > 1 {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

// walk visits every node reachable from n once (it is a dag), aborting when
// f returns false.
func (n *Node) walk(seen *Scratch, f func(*Node) bool) bool {
	if !seen.Visit(n) {
		return true
	}
	if !f(n) {
		return false
	}
	for _, k := range n.Kids {
		if !k.walk(seen, f) {
			return false
		}
	}
	return true
}

// Walk visits every node reachable from n exactly once, in preorder.
func (n *Node) Walk(f func(*Node)) {
	s := AcquireScratch()
	defer ReleaseScratch(s)
	n.walk(s, func(m *Node) bool { f(m); return true })
}

// Yield returns the concatenated terminal text of the subtree, following
// the first unfiltered interpretation at each choice node.
func (n *Node) Yield() string {
	var b strings.Builder
	n.yield(&b)
	return b.String()
}

func (n *Node) yield(b *strings.Builder) {
	switch n.Kind {
	case KindTerminal:
		b.WriteString(n.Text)
	case KindChoice:
		for _, k := range n.Kids {
			if !k.Filtered {
				k.yield(b)
				return
			}
		}
		if len(n.Kids) > 0 {
			n.Kids[0].yield(b)
		}
	default:
		for _, k := range n.Kids {
			k.yield(b)
		}
	}
}

// Terminals appends the terminal leaves of n (first interpretation at
// choices) to out and returns it.
func (n *Node) Terminals(out []*Node) []*Node {
	switch n.Kind {
	case KindTerminal:
		return append(out, n)
	case KindChoice:
		for _, k := range n.Kids {
			if !k.Filtered {
				return k.Terminals(out)
			}
		}
		if len(n.Kids) > 0 {
			return n.Kids[0].Terminals(out)
		}
		return out
	default:
		for _, k := range n.Kids {
			out = k.Terminals(out)
		}
		return out
	}
}

// String renders a compact one-line description.
func (n *Node) String() string {
	switch n.Kind {
	case KindTerminal:
		return fmt.Sprintf("t(%d,%q)", n.Sym, n.Text)
	case KindChoice:
		return fmt.Sprintf("choice(%d,×%d)", n.Sym, len(n.Kids))
	case KindSeq:
		return fmt.Sprintf("seq(%d,×%d)", n.Sym, len(n.Kids))
	case KindError:
		return fmt.Sprintf("error(×%d)", len(n.Kids))
	default:
		return fmt.Sprintf("p%d(%d)", n.Prod, n.Sym)
	}
}

// IsError reports whether n is an isolated syntax-error region.
func (n *Node) IsError() bool { return n.Kind == KindError }

// CollectErrors returns the KindError nodes reachable from root, leftmost
// first (preorder). A nil root yields nil.
func CollectErrors(root *Node) []*Node {
	if root == nil {
		return nil
	}
	var out []*Node
	root.Walk(func(n *Node) {
		if n.Kind == KindError {
			out = append(out, n)
		}
	})
	return out
}

// Format renders the subtree as an indented outline using grammar names.
func Format(g *grammar.Grammar, n *Node) string {
	var b strings.Builder
	format(g, n, 0, &b)
	return b.String()
}

func format(g *grammar.Grammar, n *Node, depth int, b *strings.Builder) {
	b.WriteString(strings.Repeat("  ", depth))
	switch n.Kind {
	case KindTerminal:
		fmt.Fprintf(b, "%s %q", g.Name(n.Sym), n.Text)
	case KindChoice:
		fmt.Fprintf(b, "%s «choice of %d»", g.Name(n.Sym), len(n.Kids))
	case KindSeq:
		fmt.Fprintf(b, "%s «seq %d»", g.Name(n.Sym), len(n.Kids))
	case KindError:
		fmt.Fprintf(b, "ERROR «%d token(s)»", n.TermCount)
	default:
		fmt.Fprintf(b, "%s := %s", g.Name(n.Sym), g.ProductionString(g.Production(int(n.Prod))))
	}
	if n.Filtered {
		b.WriteString("  [filtered]")
	}
	b.WriteByte('\n')
	for _, k := range n.Kids {
		format(g, k, depth+1, b)
	}
}
