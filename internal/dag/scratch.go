package dag

import "sync"

// Scratch is the per-traversal scratch table that replaces map[*Node]
// bookkeeping on hot paths: visited sets, integer memos and node maps are
// all slices indexed by the arena-assigned node ID, with validity decided
// by an epoch stamp. Acquiring a scratch bumps the epoch, which invalidates
// every previous entry in O(1) — no clearing, no rehashing, and the backing
// slices are recycled through a pool across traversals.
//
// A Scratch provides one logical table: the stamp array is shared between
// Visit, SetValue and SetRef, so an algorithm needing two independent
// tables (say a visited set and a reference count) acquires two scratches.
//
// All nodes passed to one Scratch must come from the same Arena; IDs from
// different arenas alias.
type Scratch struct {
	epoch  uint32
	stamps []uint32
	vals   []int
	refs   []*Node
}

var scratchPool = sync.Pool{New: func() any { return &Scratch{} }}

// AcquireScratch returns a scratch table with every entry invalid. Pair
// with ReleaseScratch.
func AcquireScratch() *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.epoch++
	if s.epoch == 0 {
		// Epoch wrapped: stale stamps from 2^32 traversals ago could alias.
		for i := range s.stamps {
			s.stamps[i] = 0
		}
		s.epoch = 1
	}
	return s
}

// ReleaseScratch recycles s. The caller must not use s afterwards.
func ReleaseScratch(s *Scratch) {
	// Entries referencing nodes would pin arbitrary dags in the pool; only
	// the refs array holds pointers, and only stamped slots were written.
	// Dropping them individually would defeat the O(1) clear, so release
	// the whole array when it was used at all.
	if s.refs != nil {
		s.refs = nil
	}
	scratchPool.Put(s)
}

// slot returns the table index for n, growing the backing arrays on demand
// (fresh slots carry stamp 0, which is never a live epoch).
func (s *Scratch) slot(n *Node) int {
	id := int(n.ID)
	if id >= len(s.stamps) {
		s.grow(id)
	}
	return id
}

func (s *Scratch) grow(id int) {
	size := id + 1
	if size < 2*len(s.stamps) {
		size = 2 * len(s.stamps)
	}
	stamps := make([]uint32, size)
	copy(stamps, s.stamps)
	s.stamps = stamps
	vals := make([]int, size)
	copy(vals, s.vals)
	s.vals = vals
	if s.refs != nil {
		refs := make([]*Node, size)
		copy(refs, s.refs)
		s.refs = refs
	}
}

// Visit marks n visited; it reports true the first time n is seen.
func (s *Scratch) Visit(n *Node) bool {
	i := s.slot(n)
	if s.stamps[i] == s.epoch {
		return false
	}
	s.stamps[i] = s.epoch
	return true
}

// Seen reports whether n was marked (by Visit, SetValue or SetRef).
func (s *Scratch) Seen(n *Node) bool {
	id := int(n.ID)
	return id < len(s.stamps) && s.stamps[id] == s.epoch
}

// Value returns the integer stored for n, if any.
func (s *Scratch) Value(n *Node) (int, bool) {
	id := int(n.ID)
	if id >= len(s.stamps) || s.stamps[id] != s.epoch {
		return 0, false
	}
	return s.vals[id], true
}

// SetValue stores an integer for n (marking it seen).
func (s *Scratch) SetValue(n *Node, v int) {
	i := s.slot(n)
	s.stamps[i] = s.epoch
	s.vals[i] = v
}

// Ref returns the node stored for n, if any.
func (s *Scratch) Ref(n *Node) (*Node, bool) {
	id := int(n.ID)
	if id >= len(s.stamps) || s.stamps[id] != s.epoch || s.refs == nil {
		return nil, false
	}
	return s.refs[id], true
}

// SetRef stores a node for n (marking it seen).
func (s *Scratch) SetRef(n *Node, m *Node) {
	i := s.slot(n)
	if s.refs == nil {
		s.refs = make([]*Node, len(s.stamps))
	}
	s.stamps[i] = s.epoch
	s.refs[i] = m
}
