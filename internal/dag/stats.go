package dag

import "fmt"

// Stats summarizes the space consumption of an abstract parse dag, the
// measurement behind Table 1 and Figure 4 of the paper: the dag's size is
// compared against the fully disambiguated parse tree a batch compiler
// would build (one interpretation per ambiguous region, no choice nodes).
type Stats struct {
	// DagNodes is the number of unique nodes reachable from the root,
	// including every interpretation and all choice nodes.
	DagNodes int
	// TreeNodes is the size of the embedded parse tree: one interpretation
	// selected at each choice node, choice nodes themselves not counted.
	TreeNodes int
	// ChoiceNodes is the number of symbol (choice) nodes.
	ChoiceNodes int
	// AmbiguousRegions is the number of choice nodes with >1 unfiltered
	// interpretation.
	AmbiguousRegions int
	// MaxAlternatives is the widest choice node.
	MaxAlternatives int
	// Terminals counts token leaves.
	Terminals int
	// BudgetPruned counts choice nodes whose alternatives were pruned by
	// the ambiguity budget — regions where the dag no longer encodes the
	// full forest (see dag.Node.BudgetPruned).
	BudgetPruned int
	// ErrorNodes counts isolated syntax-error regions (KindError) — spans
	// of quarantined tokens held verbatim with no grammatical
	// interpretation.
	ErrorNodes int
}

// SpaceOverheadPercent returns the percentage increase of the dag over the
// disambiguated tree — the paper's headline space metric (≈0.0–0.5% for
// real programs).
func (s Stats) SpaceOverheadPercent() float64 {
	if s.TreeNodes == 0 {
		return 0
	}
	return 100 * float64(s.DagNodes-s.TreeNodes) / float64(s.TreeNodes)
}

func (s Stats) String() string {
	return fmt.Sprintf("dag=%d tree=%d choices=%d ambiguous=%d overhead=%.3f%%",
		s.DagNodes, s.TreeNodes, s.ChoiceNodes, s.AmbiguousRegions, s.SpaceOverheadPercent())
}

// Measure computes Stats for the dag rooted at root.
func Measure(root *Node) Stats {
	var s Stats
	root.Walk(func(n *Node) {
		s.DagNodes++
		switch n.Kind {
		case KindTerminal:
			s.Terminals++
		case KindChoice:
			s.ChoiceNodes++
			alive := 0
			for _, k := range n.Kids {
				if !k.Filtered {
					alive++
				}
			}
			if alive > 1 {
				s.AmbiguousRegions++
			}
			if len(n.Kids) > s.MaxAlternatives {
				s.MaxAlternatives = len(n.Kids)
			}
		case KindError:
			s.ErrorNodes++
		}
		if n.BudgetPruned {
			s.BudgetPruned++
		}
	})
	memo := AcquireScratch()
	s.TreeNodes = treeSize(root, memo)
	ReleaseScratch(memo)
	return s
}

// treeSize counts the embedded-tree nodes under n: at choice nodes only the
// preferred interpretation is followed and the choice node itself is free
// (it is "logically identified with its single remaining child", §4.2).
// Shared subtrees are counted each time they appear, as they would in a
// real tree.
func treeSize(n *Node, memo *Scratch) int {
	if sz, ok := memo.Value(n); ok {
		return sz
	}
	var sz int
	switch n.Kind {
	case KindChoice:
		pick := n.Kids[0]
		for _, k := range n.Kids {
			if !k.Filtered {
				pick = k
				break
			}
		}
		sz = treeSize(pick, memo)
	default:
		sz = 1
		for _, k := range n.Kids {
			sz += treeSize(k, memo)
		}
	}
	memo.SetValue(n, sz)
	return sz
}
