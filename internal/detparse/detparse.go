// Package detparse implements a deterministic incremental parser based on
// state-matching (Jalili & Gallier [8]; paper §3.2) — the baseline against
// which §5 compares the IGLR parser. It requires a conflict-free LR table
// and uses a single linear parse stack instead of a GSS, but shares the
// same input-stream abstraction (reused subtrees plus fresh terminals) and
// the same state-matching reuse discipline.
package detparse

import (
	"context"
	"fmt"
	"slices"

	"iglr/internal/dag"
	"iglr/internal/grammar"
	"iglr/internal/guard"
	"iglr/internal/lr"
)

// Stream is the parser input; document.Stream satisfies it. Arena returns
// the arena owning the stream's nodes; the parser allocates the structure
// it builds from it.
type Stream interface {
	La() *dag.Node
	Pop()
	Breakdown()
	Arena() *dag.Arena
}

// Stats counts parser work for the §5 comparisons.
type Stats struct {
	Shifts         int
	SubtreeShifts  int
	TerminalShifts int
	Reductions     int
	Breakdowns     int
}

// Parser is a deterministic incremental LR parser. It may be reused across
// parses — the parse stack persists and is rewound, so a steady-state
// incremental reparse allocates nothing — but is not safe for concurrent
// use.
type Parser struct {
	table *lr.Table
	g     *grammar.Grammar
	Stats Stats

	// Budget bounds one parse's resources (see guard.Budget). Only the
	// arena and deadline budgets apply — a deterministic parser has no
	// GSS and produces no ambiguity. Tripping one aborts the parse with a
	// *guard.BudgetError; the committed tree is untouched.
	Budget guard.Budget

	arena  *dag.Arena
	stack  []entry
	tokens int
	gauge  guard.Gauge

	// Split stacks reused by the batch kernel (kernel.go) across parses.
	kstates []int32
	knodes  []*dag.Node
}

// expected renders the acceptable-terminal set of a state by name, sorted.
// Only error paths call it, so the allocations here never touch the hot loop.
func (p *Parser) expected(state int) []string {
	syms := p.table.ExpectedTerminals(state)
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = p.g.Name(s)
	}
	slices.Sort(out)
	return out
}

// New creates a parser; the table must be deterministic.
func New(table *lr.Table) (*Parser, error) {
	if !table.Deterministic() {
		return nil, fmt.Errorf("detparse: table has %d conflicts; a deterministic parser cannot use it", len(table.Conflicts()))
	}
	return &Parser{table: table, g: table.Grammar()}, nil
}

// MustNew is New but panics on error.
func MustNew(table *lr.Table) *Parser {
	p, err := New(table)
	if err != nil {
		panic(err)
	}
	return p
}

// SyntaxError reports a failed parse. It carries the same positional and
// expected-token detail as the IGLR parser's error, so sessions can route
// either parser's failure into the error-isolation machinery.
type SyntaxError struct {
	Sym     grammar.Sym
	SymName string
	Text    string
	// TokenIndex is the number of terminals consumed before the error.
	TokenIndex int
	// Expected lists the terminals acceptable in the failure state, by
	// name, sorted.
	Expected []string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at %s %q (token %d)", e.SymName, e.Text, e.TokenIndex)
}

type entry struct {
	state int
	node  *dag.Node
}

// Parse consumes the stream and returns the parse-tree root.
func (p *Parser) Parse(stream Stream) (*dag.Node, error) {
	return p.ParseContext(nil, stream)
}

// checkEvery is the number of main-loop iterations between context polls
// (matching the IGLR parser's cadence).
const checkEvery = 64

// ParseContext is Parse with cooperative cancellation: the loop polls ctx
// every checkEvery iterations and returns ctx.Err() once the context is
// done. A nil ctx disables the checks.
func (p *Parser) ParseContext(ctx context.Context, stream Stream) (root *dag.Node, err error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	p.Stats = Stats{}
	p.arena = stream.Arena()
	p.gauge.Reset(p.Budget)
	if p.Budget.MaxArenaNodes > 0 {
		p.arena.SetLimit(p.arena.NumNodes() + p.Budget.MaxArenaNodes)
	}
	defer func() {
		p.arena.SetLimit(0)
		if r := recover(); r != nil {
			root, err = nil, guard.Recovered(r)
		}
	}()
	p.stack = append(p.stack[:0], entry{state: p.table.StartState()})
	p.tokens = 0

	for rounds := 0; ; rounds++ {
		if rounds%checkEvery == checkEvery-1 {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			p.gauge.CheckDeadline()
		}
		la := stream.La()
		top := p.stack[len(p.stack)-1].state
		if la == nil {
			return nil, &SyntaxError{Sym: grammar.EOF, SymName: "$",
				TokenIndex: p.tokens, Expected: p.expected(top)}
		}

		if !la.IsTerminal() {
			// Subtree lookahead: state-matching reuse, precomputed
			// nonterminal reductions, or breakdown (§3.2).
			if !la.Changed && !la.IsChoice() && la.State >= 0 {
				if gt := p.table.Goto(top, la.Sym); gt >= 0 && gt == int(la.State) {
					p.stack = append(p.stack, entry{state: gt, node: la})
					p.Stats.Shifts++
					p.Stats.SubtreeShifts++
					p.tokens += int(la.TermCount)
					stream.Pop()
					continue
				}
				if act, n := p.table.OneNontermAction(top, la.Sym); n == 1 && act.Kind == lr.Reduce {
					p.reduce(int(act.Target))
					continue
				}
			}
			p.Stats.Breakdowns++
			stream.Breakdown()
			continue
		}

		act, n := p.table.OneAction(top, la.Sym)
		if n == 0 {
			return nil, &SyntaxError{Sym: la.Sym, SymName: p.g.Name(la.Sym), Text: la.Text,
				TokenIndex: p.tokens, Expected: p.expected(top)}
		}
		switch act.Kind {
		case lr.Shift:
			la.State = int32(act.Target)
			la.Changed = false
			p.stack = append(p.stack, entry{state: int(act.Target), node: la})
			p.Stats.Shifts++
			p.Stats.TerminalShifts++
			if la.Sym != grammar.EOF {
				p.tokens++
			}
			stream.Pop()
		case lr.Reduce:
			p.reduce(int(act.Target))
		case lr.Accept:
			if la.Sym != grammar.EOF {
				return nil, &SyntaxError{Sym: la.Sym, SymName: p.g.Name(la.Sym), Text: la.Text,
					TokenIndex: p.tokens, Expected: p.expected(top)}
			}
			return p.stack[len(p.stack)-1].node, nil
		}
	}
}

// reduce pops the handle and pushes the new nonterminal node, recording the
// goto state in it for future state-matching reuse.
func (p *Parser) reduce(rule int) {
	p.Stats.Reductions++
	prod := p.g.Production(rule)
	n := prod.Arity()
	kids := p.arena.Kids(n)
	for i := 0; i < n; i++ {
		kids[i] = p.stack[len(p.stack)-n+i].node
	}
	p.stack = p.stack[:len(p.stack)-n]
	top := p.stack[len(p.stack)-1].state
	gt := p.table.Goto(top, prod.LHS)
	node := p.arena.Production(prod.LHS, rule, gt, kids)
	p.stack = append(p.stack, entry{state: gt, node: node})
}
