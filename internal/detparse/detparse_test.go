package detparse

import (
	"fmt"
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/document"
	"iglr/internal/grammar"
	"iglr/internal/iglr"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

type lang struct {
	g    *grammar.Grammar
	spec *lexer.Spec
	tbl  *lr.Table
	m    map[int]grammar.Sym
}

func newLang(t testing.TB) *lang {
	t.Helper()
	g, err := grammar.Parse(`
%token ID NUM '=' ';' '+'
%start Prog
Prog : Stmt* ;
Stmt : ID '=' Expr ';' ;
Expr : Expr '+' Term | Term ;
Term : ID | NUM ;
`)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := lexer.NewSpec([]lexer.Rule{
		{Name: "WS", Pattern: `[ \t\n]+`, Skip: true},
		{Name: "ID", Pattern: `[a-zA-Z_][a-zA-Z0-9_]*`},
		{Name: "NUM", Pattern: `[0-9]+`},
		{Name: "EQ", Pattern: `=`},
		{Name: "SEMI", Pattern: `;`},
		{Name: "PLUS", Pattern: `\+`},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := lr.Build(g, lr.Options{Method: lr.LALR})
	if err != nil {
		t.Fatal(err)
	}
	m := map[int]grammar.Sym{
		spec.RuleIndex("ID"):   g.Lookup("ID"),
		spec.RuleIndex("NUM"):  g.Lookup("NUM"),
		spec.RuleIndex("EQ"):   g.Lookup("'='"),
		spec.RuleIndex("SEMI"): g.Lookup("';'"),
		spec.RuleIndex("PLUS"): g.Lookup("'+'"),
	}
	return &lang{g: g, spec: spec, tbl: tbl, m: m}
}

func (l *lang) doc(src string) *document.Document {
	return document.New(l.spec, l.g, func(r int, s string) grammar.Sym { return l.m[r] }, src)
}

func TestBatchParse(t *testing.T) {
	l := newLang(t)
	d := l.doc("x = 1; y = x + 2;")
	p := MustNew(l.tbl)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if root.Yield() != "x=1;y=x+2;" {
		t.Fatalf("yield = %q", root.Yield())
	}
	if p.Stats.TerminalShifts != 10 {
		t.Fatalf("stats = %+v", p.Stats)
	}
}

func TestRejectsConflictedTable(t *testing.T) {
	g, err := grammar.Parse("%token x\n%start S\nS : S S | x ;")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := lr.Build(g, lr.Options{Method: lr.LALR})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(tbl); err == nil {
		t.Fatal("conflicted table should be rejected")
	}
}

func TestIncrementalReuse(t *testing.T) {
	l := newLang(t)
	d := l.doc("a = 1; b = 2; c = 3; e = 4; f = 5;")
	p := MustNew(l.tbl)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)

	d.Replace(25, 1, "9")
	p2 := MustNew(l.tbl)
	root2, err := p2.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root2)
	if !strings.Contains(root2.Yield(), "e=9;") {
		t.Fatalf("yield = %q", root2.Yield())
	}
	if p2.Stats.SubtreeShifts == 0 {
		t.Fatalf("no subtree reuse: %+v", p2.Stats)
	}
	if p2.Stats.TerminalShifts > 6 {
		t.Fatalf("too many terminal shifts: %+v", p2.Stats)
	}
}

func TestSyntaxError(t *testing.T) {
	l := newLang(t)
	d := l.doc("x = ;")
	p := MustNew(l.tbl)
	if _, err := p.Parse(d.Stream()); err == nil {
		t.Fatal("expected syntax error")
	}
}

// TestAgreesWithIGLR checks the §5 claim that, on deterministic grammars,
// the two parsers produce identical structure, batch and incrementally.
func TestAgreesWithIGLR(t *testing.T) {
	l := newLang(t)
	var sb strings.Builder
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&sb, "v%d = v%d + %d; ", i, i, i)
	}
	src := sb.String()

	dDet, dGLR := l.doc(src), l.doc(src)
	det := MustNew(l.tbl)
	glr := iglr.New(l.tbl)

	rootD, err := det.Parse(dDet.Stream())
	if err != nil {
		t.Fatal(err)
	}
	rootG, err := glr.Parse(dGLR.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if !equalStructure(rootD, rootG) {
		t.Fatal("batch structures differ")
	}
	dDet.Commit(rootD)
	dGLR.Commit(rootG)

	for _, edit := range []struct {
		off, rem int
		ins      string
	}{
		{4, 2, "99"},
		{100, 1, "x"},
		{len(src) - 1, 0, "z = 0; "},
	} {
		dDet.Replace(edit.off, edit.rem, edit.ins)
		dGLR.Replace(edit.off, edit.rem, edit.ins)
		rootD, err = det.Parse(dDet.Stream())
		if err != nil {
			t.Fatalf("det: %v", err)
		}
		rootG, err = glr.Parse(dGLR.Stream())
		if err != nil {
			t.Fatalf("glr: %v", err)
		}
		if !equalStructure(rootD, rootG) {
			t.Fatalf("incremental structures differ after edit %+v", edit)
		}
		dDet.Commit(rootD)
		dGLR.Commit(rootG)
	}
}

func equalStructure(a, b *dag.Node) bool {
	if a.Kind != b.Kind || a.Sym != b.Sym || a.Prod != b.Prod {
		return false
	}
	if a.Kind == dag.KindTerminal {
		return a.Text == b.Text
	}
	if len(a.Kids) != len(b.Kids) {
		return false
	}
	for i := range a.Kids {
		if !equalStructure(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	return true
}
