package detparse

import "unsafe"

// Footprint estimates the parser's retained scratch bytes: the entry stack
// and the batch kernel's split stacks, all reused across parses.
func (p *Parser) Footprint() int64 {
	n := int64(cap(p.stack)) * int64(unsafe.Sizeof(entry{}))
	n += int64(cap(p.kstates)) * 4
	n += int64(cap(p.knodes)) * 8
	return n
}
