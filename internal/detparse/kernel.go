package detparse

import (
	"context"

	"iglr/internal/dag"
	"iglr/internal/grammar"
	"iglr/internal/guard"
	"iglr/internal/lr"
)

// ParseBatch is the cold-parse kernel: it consumes the packed terminal slice
// directly, with none of the machinery a reparse needs. The incremental
// ParseContext pays, per token, for an interface dispatch into the stream,
// a subtree-vs-terminal branch, and a breakdown branch; a cold parse never
// takes any of them, because a fresh document's stream yields exactly the
// significant terminals followed by EOF. The kernel also splits the parse
// stack into an int32 state stack and a parallel node stack (halving the
// bytes the shift/reduce loop touches per entry) and collapses precomputed
// reduction cascades via lr.FusedChain into a single action lookup.
//
// Semantics are identical to ParseContext over a cold stream — same node
// sequence and fields, same errors, same Stats, same budget behavior — which
// the differential tests pin down. Sessions route cold deterministic parses
// here and keep ParseContext for everything else.
func (p *Parser) ParseBatch(ctx context.Context, terms []*dag.Node, eof *dag.Node, arena *dag.Arena) (root *dag.Node, err error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	p.Stats = Stats{}
	p.arena = arena
	p.gauge.Reset(p.Budget)
	if p.Budget.MaxArenaNodes > 0 {
		arena.SetLimit(arena.NumNodes() + p.Budget.MaxArenaNodes)
	}
	defer func() {
		arena.SetLimit(0)
		if r := recover(); r != nil {
			root, err = nil, guard.Recovered(r)
		}
	}()
	states := append(p.kstates[:0], int32(p.table.StartState()))
	nodes := append(p.knodes[:0], nil)
	defer func() { p.kstates, p.knodes = states[:0], nodes[:0] }()
	p.tokens = 0

	pos := 0
	la := eof
	if len(terms) > 0 {
		la = terms[0]
	}
	for rounds := 0; ; rounds++ {
		if rounds%checkEvery == checkEvery-1 {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			p.gauge.CheckDeadline()
		}
		top := int(states[len(states)-1])
		if la == nil {
			// The eof sentinel itself was shifted; a cold stream would now
			// yield nil, and ParseContext reports exhaustion the same way.
			return nil, &SyntaxError{Sym: grammar.EOF, SymName: "$",
				TokenIndex: p.tokens, Expected: p.expected(top)}
		}

		if chain := p.table.FusedChain(top, la.Sym); chain != nil {
			for _, step := range chain {
				prod := p.g.Production(int(step.Rule))
				n := prod.Arity()
				kids := p.arena.Kids(n)
				for i := 0; i < n; i++ {
					kids[i] = nodes[len(nodes)-n+i]
				}
				states = states[:len(states)-n]
				nodes = nodes[:len(nodes)-n]
				node := p.arena.Production(prod.LHS, int(step.Rule), int(step.Goto), kids)
				states = append(states, step.Goto)
				nodes = append(nodes, node)
			}
			p.Stats.Reductions += len(chain)
			continue
		}

		act, n := p.table.OneAction(top, la.Sym)
		if n == 0 {
			return nil, &SyntaxError{Sym: la.Sym, SymName: p.g.Name(la.Sym), Text: la.Text,
				TokenIndex: p.tokens, Expected: p.expected(top)}
		}
		switch act.Kind {
		case lr.Shift:
			la.State = int32(act.Target)
			la.Changed = false
			states = append(states, act.Target)
			nodes = append(nodes, la)
			p.Stats.Shifts++
			p.Stats.TerminalShifts++
			if la.Sym != grammar.EOF {
				p.tokens++
			}
			pos++
			switch {
			case pos < len(terms):
				la = terms[pos]
			case pos == len(terms):
				la = eof
			default:
				la = nil
			}
		case lr.Reduce:
			prod := p.g.Production(int(act.Target))
			k := prod.Arity()
			kids := p.arena.Kids(k)
			for i := 0; i < k; i++ {
				kids[i] = nodes[len(nodes)-k+i]
			}
			states = states[:len(states)-k]
			nodes = nodes[:len(nodes)-k]
			gt := p.table.Goto(int(states[len(states)-1]), prod.LHS)
			node := p.arena.Production(prod.LHS, int(act.Target), gt, kids)
			states = append(states, int32(gt))
			nodes = append(nodes, node)
			p.Stats.Reductions++
		case lr.Accept:
			if la.Sym != grammar.EOF {
				return nil, &SyntaxError{Sym: la.Sym, SymName: p.g.Name(la.Sym), Text: la.Text,
					TokenIndex: p.tokens, Expected: p.expected(top)}
			}
			return nodes[len(nodes)-1], nil
		}
	}
}
