package detparse

import (
	"fmt"
	"strings"
	"testing"

	"iglr/internal/dag"
)

// TestKernelMatchesStreamParse pins the kernel's contract: over a cold
// document, ParseBatch and ParseContext build identical structure and
// identical stats.
func TestKernelMatchesStreamParse(t *testing.T) {
	l := newLang(t)
	var sb strings.Builder
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&sb, "v%d = v%d + %d; ", i, i, i)
	}
	src := sb.String()

	dStream, dBatch := l.doc(src), l.doc(src)
	ps, pb := MustNew(l.tbl), MustNew(l.tbl)

	rootS, err := ps.Parse(dStream.Stream())
	if err != nil {
		t.Fatal(err)
	}
	rootB, err := pb.ParseBatch(nil, dBatch.Terminals(), dBatch.EOFNode(), dBatch.Arena())
	if err != nil {
		t.Fatal(err)
	}
	if !equalStructure(rootS, rootB) {
		t.Fatal("kernel structure differs from stream parse")
	}
	if ps.Stats != pb.Stats {
		t.Fatalf("stats differ: stream %+v, kernel %+v", ps.Stats, pb.Stats)
	}
	// The committed batch tree must serve incremental reparses like any
	// other: edit and reparse through the normal stream path.
	dBatch.Commit(rootB)
	dBatch.Replace(5, 2, "7")
	root2, err := pb.Parse(dBatch.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if pb.Stats.SubtreeShifts == 0 {
		t.Fatalf("no subtree reuse after batch commit: %+v", pb.Stats)
	}
	if !strings.Contains(root2.Yield(), "v0=7+0") {
		t.Fatalf("yield = %q", root2.Yield()[:40])
	}
}

// TestKernelSyntaxError checks error parity with the stream path.
func TestKernelSyntaxError(t *testing.T) {
	l := newLang(t)
	for _, src := range []string{"x = ;", "x = 1", "= 1;", ""} {
		dStream, dBatch := l.doc(src), l.doc(src)
		ps, pb := MustNew(l.tbl), MustNew(l.tbl)
		_, errS := ps.Parse(dStream.Stream())
		_, errB := pb.ParseBatch(nil, dBatch.Terminals(), dBatch.EOFNode(), dBatch.Arena())
		if (errS == nil) != (errB == nil) {
			t.Fatalf("%q: stream err %v, kernel err %v", src, errS, errB)
		}
		if errS != nil && errS.Error() != errB.Error() {
			t.Fatalf("%q: error text differs:\n  stream: %v\n  kernel: %v", src, errS, errB)
		}
	}
}

// TestKernelAllocs guards the satellite fix: reductions draw kid slices from
// the arena's bump allocator, so a cold batch parse allocates O(nodes/chunk)
// slices, not one per reduction.
func TestKernelAllocs(t *testing.T) {
	l := newLang(t)
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "v%d = v%d + %d; ", i, i, i)
	}
	d := l.doc(sb.String())
	terms := d.Terminals()
	eof := d.EOFNode()
	p := MustNew(l.tbl)

	allocs := testing.AllocsPerRun(10, func() {
		arena := dag.NewArenaAt(d.Arena().NumNodes())
		if _, err := p.ParseBatch(nil, terms, eof, arena); err != nil {
			t.Fatal(err)
		}
	})
	// ~1400 nodes and ~2000 kid pointers per parse: chunked allocation puts
	// the per-parse count in the tens. 80 leaves headroom for chunk-size
	// tuning while still failing loudly on any per-reduction allocation
	// (which would cost ~1000 here).
	if allocs > 80 {
		t.Fatalf("cold batch parse allocates too much: %.0f allocs/run", allocs)
	}
}
