package detparse

// Scrub drops the dag pointers retained in the parser's recycled stack so
// a pooled parser doesn't pin the last parse's tree or arena. Capacities
// are preserved.
func (p *Parser) Scrub() {
	clear(p.stack[:cap(p.stack)])
	p.stack = p.stack[:0]
	p.arena = nil
}
