// Package disambig implements dynamic syntactic disambiguation filters
// (§4.1): post-parse passes over the abstract parse dag that select among
// interpretations using structural rules — "prefer a declaration to an
// expression" (the C++ rule), operator precedence and associativity applied
// dynamically, or arbitrary user predicates. Unlike semantic filters
// (§4.2), syntactic filters *discard* the losing interpretations: the
// decision depends only on local structure, so no future edit outside the
// region can reverse it without reparsing the region anyway.
package disambig

import (
	"iglr/internal/dag"
)

// Filter inspects a choice node and returns the surviving children. An
// empty or nil result leaves the choice untouched.
type Filter func(choice *dag.Node) []*dag.Node

// Apply rewrites the dag with f, physically removing discarded
// interpretations and collapsing single-interpretation choice nodes. It
// returns the (possibly new) root and the number of interpretations
// discarded.
func Apply(root *dag.Node, f Filter) (*dag.Node, int) {
	discarded := 0
	memo := dag.AcquireScratch()
	defer dag.ReleaseScratch(memo)
	var rewrite func(n *dag.Node) *dag.Node
	rewrite = func(n *dag.Node) *dag.Node {
		if r, ok := memo.Ref(n); ok {
			return r
		}
		memo.SetRef(n, n) // provisional
		out := n
		if n.Kind == dag.KindChoice {
			survivors := f(n)
			if len(survivors) > 0 && len(survivors) < len(n.Kids) {
				discarded += len(n.Kids) - len(survivors)
				n.Kids = survivors
			}
			for i, k := range n.Kids {
				n.Kids[i] = rewrite(k)
			}
			if len(n.Kids) == 1 {
				out = n.Kids[0]
			}
		} else {
			for i, k := range n.Kids {
				n.Kids[i] = rewrite(k)
			}
		}
		memo.SetRef(n, out)
		return out
	}
	return rewrite(root), discarded
}

// Prefer builds a filter that keeps the children satisfying pred whenever
// at least one child does — e.g. the C++ "prefer a declaration to an
// expression" rule with a declaration-reading predicate.
func Prefer(pred func(*dag.Node) bool) Filter {
	return func(choice *dag.Node) []*dag.Node {
		var keep []*dag.Node
		for _, k := range choice.Kids {
			if pred(k) {
				keep = append(keep, k)
			}
		}
		return keep
	}
}

// Operators applies operator precedence and associativity dynamically to
// expression dags parsed with a raw ambiguous grammar: among the
// interpretations of a region, the survivor is the one whose top operator
// binds loosest (it is applied last), with associativity breaking ties.
// This reproduces the yacc static filters of §4.1 as a dynamic filter —
// the staging comparison of the two is one of the paper's design points.
type Operators struct {
	// Prec maps operator lexemes to binding strength (higher = tighter).
	Prec map[string]int
	// RightAssoc marks right-associative operators (default left).
	RightAssoc map[string]bool
}

// Filter returns the dynamic operator filter.
func (o Operators) Filter() Filter {
	return func(choice *dag.Node) []*dag.Node {
		best := []*dag.Node(nil)
		bestPrec, bestLeft := 0, 0
		for _, k := range choice.Kids {
			op, left := topOperator(k)
			if op == "" {
				continue
			}
			p, ok := o.Prec[op]
			if !ok {
				continue
			}
			leftScore := left
			if o.RightAssoc[op] {
				leftScore = -left
			}
			switch {
			case best == nil || p < bestPrec || (p == bestPrec && leftScore > bestLeft):
				best = []*dag.Node{k}
				bestPrec, bestLeft = p, leftScore
			case p == bestPrec && leftScore == bestLeft:
				best = append(best, k)
			}
		}
		return best
	}
}

// topOperator returns the top-level operator lexeme of a binary-operator
// production node and the terminal count of its left operand; "" when the
// node is not a binary operator application.
func topOperator(n *dag.Node) (string, int) {
	if n.Kind != dag.KindProduction || len(n.Kids) != 3 {
		return "", 0
	}
	op := n.Kids[1]
	if !op.IsTerminal() {
		return "", 0
	}
	return op.Text, int(n.Kids[0].TermCount)
}
