package disambig_test

import (
	"fmt"
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/disambig"
	"iglr/internal/iglr"
	"iglr/internal/langs"
	"iglr/internal/langs/cppsub"
	"iglr/internal/langs/expr"
)

func parse(t *testing.T, l *langs.Language, src string) *dag.Node {
	t.Helper()
	d := l.NewDocument(src)
	p := iglr.New(l.Table)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return root
}

// parenthesize renders an expression dag with full grouping, following the
// first interpretation at each choice.
func parenthesize(n *dag.Node) string {
	switch n.Kind {
	case dag.KindTerminal:
		return n.Text
	case dag.KindChoice:
		return parenthesize(n.Kids[0])
	default:
		if op, _ := topOp(n); op != "" {
			return "(" + parenthesize(n.Kids[0]) + op + parenthesize(n.Kids[2]) + ")"
		}
		var b strings.Builder
		for _, k := range n.Kids {
			b.WriteString(parenthesize(k))
		}
		return b.String()
	}
}

func topOp(n *dag.Node) (string, int) {
	if len(n.Kids) == 3 && n.Kids[1].IsTerminal() {
		t := n.Kids[1].Text
		if strings.ContainsAny(t, "+-*/") && len(t) == 1 {
			return t, 0
		}
	}
	return "", 0
}

var ops = disambig.Operators{
	Prec: map[string]int{"+": 1, "-": 1, "*": 2, "/": 2},
}

func TestDynamicOperatorFilterMatchesStaticFilters(t *testing.T) {
	amb := expr.AmbiguousLang()
	static := expr.Lang()
	cases := []string{
		"a+b*c",
		"a*b+c",
		"a+b+c",
		"a-b-c",
		"a*b*c",
		"a+b*c-d/e",
		"(a+b)*c",
		"a",
		"a+b*(c-d)-e/f+g",
	}
	for _, src := range cases {
		root := parse(t, amb, src)
		filtered, _ := disambig.Apply(root, ops.Filter())
		if filtered.Ambiguous() {
			t.Fatalf("%q: still ambiguous after dynamic filtering", src)
		}
		want := parse(t, static, src)
		got, wantStr := parenthesize(filtered), parenthesize(want)
		if got != wantStr {
			t.Fatalf("%q: dynamic %s vs static %s", src, got, wantStr)
		}
	}
}

func TestDiscardCounts(t *testing.T) {
	amb := expr.AmbiguousLang()
	root := parse(t, amb, "a+b+c+d")
	before := iglr.CountParses(root)
	if before < 5 {
		t.Fatalf("expected rich forest, got %d parses", before)
	}
	filtered, discarded := disambig.Apply(root, ops.Filter())
	if discarded == 0 {
		t.Fatal("no interpretations discarded")
	}
	if iglr.CountParses(filtered) != 1 {
		t.Fatalf("parses after filter = %d", iglr.CountParses(filtered))
	}
}

func TestPreferDeclaration(t *testing.T) {
	// The C++ static rule "prefer a declaration to an expression" (§4.1),
	// applied as a dynamic structural filter: every a(b); region resolves
	// to the declaration reading with no semantic information at all.
	l := cppsub.Lang()
	cfg := langs.CStyleSemantics(l)
	root := parse(t, l, "a(b); c(d);")
	if !root.Ambiguous() {
		t.Fatal("expected ambiguity")
	}
	filtered, discarded := disambig.Apply(root, disambig.Prefer(cfg.IsDeclInterpretation))
	if discarded != 2 {
		t.Fatalf("discarded = %d, want 2", discarded)
	}
	if filtered.Ambiguous() {
		t.Fatal("still ambiguous")
	}
	// All surviving Items are declarations.
	decls := 0
	filtered.Walk(func(n *dag.Node) {
		if cfg.IsDeclInterpretation(n) {
			decls++
		}
	})
	if decls != 2 {
		t.Fatalf("declaration items = %d, want 2", decls)
	}
}

func TestFilterLeavesUnmatchedChoicesAlone(t *testing.T) {
	l := cppsub.Lang()
	root := parse(t, l, "a(b);")
	never := disambig.Prefer(func(n *dag.Node) bool { return false })
	filtered, discarded := disambig.Apply(root, never)
	if discarded != 0 {
		t.Fatalf("discarded = %d", discarded)
	}
	if !filtered.Ambiguous() {
		t.Fatal("choice should be untouched")
	}
}

func TestNestedAmbiguityFiltering(t *testing.T) {
	amb := expr.AmbiguousLang()
	// Deeply nested ambiguity: every region must be resolved.
	var sb strings.Builder
	sb.WriteString("x0")
	for i := 1; i < 12; i++ {
		fmt.Fprintf(&sb, "+x%d*y%d", i, i)
	}
	root := parse(t, amb, sb.String())
	filtered, _ := disambig.Apply(root, ops.Filter())
	if filtered.Ambiguous() {
		t.Fatal("nested ambiguity survived filtering")
	}
	if iglr.CountParses(filtered) != 1 {
		t.Fatalf("parses = %d", iglr.CountParses(filtered))
	}
}
