// Package document implements the self-versioning document that hosts
// incremental analysis (Wagner & Graham [26]): an editable text buffer, an
// incrementally maintained token stream whose terminals are parse-dag
// leaves, and the previously committed parse tree. Edits mark the affected
// structure (terminal modification, nested-change and right-context bits);
// the document then produces the incremental parser's input stream — the
// paper's Figure 6 decomposition of the old tree into reusable subtrees and
// fresh terminals.
package document

import (
	"fmt"

	"iglr/internal/dag"
	"iglr/internal/faultinject"
	"iglr/internal/grammar"
	"iglr/internal/lexer"
	"iglr/internal/text"
)

// TokenMapper converts a lexer rule match into a grammar terminal.
type TokenMapper func(rule int, text string) grammar.Sym

// Document couples text, tokens and tree.
type Document struct {
	spec   *lexer.Spec
	g      *grammar.Grammar
	mapTok TokenMapper

	buf   *text.Buffer
	toks  []lexer.Token
	nodes []*dag.Node // parallel to toks; nil for skip tokens

	root *dag.Node // last committed parse root; nil before first parse

	// arena allocates every dag node of this document — terminals, parser
	// structure, rebalanced sequences. One arena per document keeps node
	// IDs unique across the whole tree, which the slice-backed traversal
	// scratch tables depend on.
	arena *dag.Arena

	// Persistent parse-input state, reused across reparses so a keystroke
	// edit allocates O(damage): the one EOF terminal, the significant-
	// terminal buffer behind Terminals, the Stream object itself, and the
	// spare node buffer replace() ping-pongs with.
	eof        *dag.Node
	terms      []*dag.Node
	termsValid bool
	stream     Stream
	spareNodes []*dag.Node

	// marked collects nodes whose change bits must be cleared at commit.
	marked []*dag.Node

	// pending records the edits applied since the last commit, with the
	// removed text captured so they can be reverted — the history that
	// §4.3's non-correcting error recovery replays.
	pending []AppliedEdit

	// LastRelexed is the token count rescanned by the latest edit.
	LastRelexed int
	// LexErrorCount tracks current error tokens.
	LexErrorCount int
}

// Options tunes document construction for the batch path. The zero value
// is the default sequential behavior.
type Options struct {
	// LexWorkers sets the goroutine count for the initial chunked lex of
	// large inputs (see lexer.ScanParallel). 0 or 1 lexes sequentially.
	LexWorkers int
	// Toks, Nodes, Spare and Terms donate storage from a retired document
	// (see ReleaseBuffers) so a batch run over many files stops paying the
	// token/node array allocations per file.
	Toks  []lexer.Token
	Nodes []*dag.Node
	Spare []*dag.Node
	Terms []*dag.Node
}

// New creates a document over the initial text, lexing it in full.
func New(spec *lexer.Spec, g *grammar.Grammar, mapTok TokenMapper, initial string) *Document {
	return NewInArena(dag.NewArena(), spec, g, mapTok, initial)
}

// NewInArena is New but allocates the document's nodes from an existing
// arena. Several documents may share one arena when their trees are
// composed into a single dag (e.g. statements reparsed in scratch
// documents and spliced into a host sequence) — node IDs stay unique
// across the combined structure.
func NewInArena(a *dag.Arena, spec *lexer.Spec, g *grammar.Grammar, mapTok TokenMapper, initial string) *Document {
	return NewInArenaOpts(a, spec, g, mapTok, initial, Options{})
}

// NewOpts is New with batch options.
func NewOpts(spec *lexer.Spec, g *grammar.Grammar, mapTok TokenMapper, initial string, opts Options) *Document {
	return NewInArenaOpts(dag.NewArena(), spec, g, mapTok, initial, opts)
}

// NewInArenaOpts is NewInArena with batch options: a parallel initial lex
// and donated buffer storage.
func NewInArenaOpts(a *dag.Arena, spec *lexer.Spec, g *grammar.Grammar, mapTok TokenMapper, initial string, opts Options) *Document {
	d := &Document{
		spec: spec, g: g, mapTok: mapTok, buf: text.NewBuffer(initial), arena: a,
		spareNodes: opts.Spare[:0], terms: opts.Terms[:0],
	}
	d.eof = d.arena.Terminal(grammar.EOF, "")
	d.toks = spec.ScanParallelInto(initial, opts.LexWorkers, opts.Toks)
	nodes := opts.Nodes[:0]
	for _, t := range d.toks {
		nodes = append(nodes, d.newTerminal(t))
	}
	d.nodes = nodes
	d.recountErrors()
	return d
}

// ReleaseBuffers strips the document's large reusable arrays — token
// stream, node array, spare and terminal buffers — for donation to a
// future document via Options. Every element is cleared first so recycled
// storage pins neither retired dag nodes nor the old text. The document
// must not be used afterwards.
func (d *Document) ReleaseBuffers() (toks []lexer.Token, nodes, spare, terms []*dag.Node) {
	toks, nodes, spare, terms = d.toks, d.nodes, d.spareNodes, d.terms
	d.toks, d.nodes, d.spareNodes, d.terms = nil, nil, nil, nil
	clear(toks[:cap(toks)])
	clear(nodes[:cap(nodes)])
	clear(spare[:cap(spare)])
	clear(terms[:cap(terms)])
	return toks[:0], nodes[:0], spare[:0], terms[:0]
}

// newTerminal builds a fresh (uncommitted, changed) terminal node for tok,
// or nil for skip tokens.
func (d *Document) newTerminal(tok lexer.Token) *dag.Node {
	if tok.Skip {
		return nil
	}
	var sym grammar.Sym
	if tok.Type == lexer.ErrorType {
		sym = grammar.ErrorSym
	} else {
		sym = d.mapTok(tok.Type, tok.Text)
	}
	if faultinject.Enabled() {
		switch faultinject.Fire(faultinject.LexTerminal, tok.Text) {
		case faultinject.ActError:
			// Injected lexical fault: the token comes out as an error
			// terminal, exactly as if the DFA had rejected it.
			sym = grammar.ErrorSym
		case faultinject.ActPanic:
			panic(&faultinject.Panic{Point: faultinject.LexTerminal, Detail: tok.Text})
		}
	}
	n := d.arena.Terminal(sym, tok.Text)
	n.Changed = true
	return n
}

// Arena returns the arena owning every node of this document's dag. Passes
// that create nodes over the tree (rebalancing, sequence edits) must
// allocate from it.
func (d *Document) Arena() *dag.Arena { return d.arena }

// EOFNode returns the document's EOF sentinel terminal — the node the
// stream yields after the last significant terminal. Batch parse paths
// that bypass the stream (the deterministic kernel, chunked parsing) need
// it to mirror the stream's token sequence exactly.
func (d *Document) EOFNode() *dag.Node { return d.eof }

// Text returns the current text.
func (d *Document) Text() string { return d.buf.String() }

// Len returns the text length in bytes.
func (d *Document) Len() int { return d.buf.Len() }

// Version returns the text version.
func (d *Document) Version() int { return d.buf.Version() }

// Root returns the last committed parse root (nil before the first parse).
func (d *Document) Root() *dag.Node { return d.root }

// Grammar returns the document's grammar.
func (d *Document) Grammar() *grammar.Grammar { return d.g }

// Tokens returns the current full token stream (including skip tokens).
func (d *Document) Tokens() []lexer.Token { return d.toks }

// Terminals returns the significant terminal nodes in order. The slice is
// owned by the document and valid until the next edit; callers that need
// it across edits must copy.
func (d *Document) Terminals() []*dag.Node {
	if !d.termsValid {
		d.terms = d.terms[:0]
		for _, n := range d.nodes {
			if n != nil {
				d.terms = append(d.terms, n)
			}
		}
		d.termsValid = true
	}
	return d.terms
}

func (d *Document) recountErrors() {
	d.LexErrorCount = 0
	for _, t := range d.toks {
		if t.Type == lexer.ErrorType {
			d.LexErrorCount++
		}
	}
}

// AppliedEdit is one recorded edit with enough information to invert it.
type AppliedEdit struct {
	Offset   int
	Removed  string
	Inserted string
}

// PendingEdits returns the edits applied since the last commit, oldest
// first.
func (d *Document) PendingEdits() []AppliedEdit {
	return append([]AppliedEdit(nil), d.pending...)
}

// RevertPending undoes every edit since the last commit (newest first),
// restoring the text of the committed tree.
func (d *Document) RevertPending() {
	for len(d.pending) > 0 {
		e := d.pending[len(d.pending)-1]
		d.replace(e.Offset, len(e.Inserted), e.Removed, false)
		d.pending = d.pending[:len(d.pending)-1]
	}
}

// Replace applies a text edit: the buffer is updated, the affected region
// is relexed incrementally, and the previous tree is marked — modified
// terminals and their ancestor spines (nested changes), plus the
// right-context bit on the terminal preceding the damage (§3.2).
func (d *Document) Replace(offset, removed int, inserted string) {
	d.replace(offset, removed, inserted, true)
}

func (d *Document) replace(offset, removed int, inserted string, record bool) {
	// Overflow-safe: a huge removed count must not wrap offset+removed
	// negative and slip past the check into a buffer panic with a
	// misleading message.
	if offset < 0 || removed < 0 || offset > d.buf.Len() || removed > d.buf.Len()-offset {
		panic(fmt.Sprintf("document: edit @%d -%d out of range (len %d)", offset, removed, d.buf.Len()))
	}
	if record {
		d.pending = append(d.pending, AppliedEdit{
			Offset:   offset,
			Removed:  d.buf.Slice(offset, offset+removed),
			Inserted: inserted,
		})
	}
	d.buf.Replace(offset, removed, inserted)
	newText := d.buf.String()

	oldToks := d.toks
	oldNodes := d.nodes
	e := lexer.Edit{Offset: offset, Removed: removed, Inserted: inserted}
	newToks, first, relexed := d.spec.Relex(oldToks, newText, e)
	d.LastRelexed = relexed

	tailLen := len(newToks) - first - relexed
	oldResync := len(oldToks) - tailLen

	// Token re-alignment: relexing invalidates neighbors whose lookahead
	// windows touch the edit even when they rescan to identical tokens
	// (and pure-whitespace edits rescan only skip tokens). Matching
	// prefix/suffix tokens of the rescanned region keep their old terminal
	// nodes, which is what lets the parser reuse the surrounding structure.
	sameTok := func(a, b lexer.Token) bool {
		return a.Type == b.Type && a.Text == b.Text && a.Skip == b.Skip
	}
	newLen, oldLen := relexed, oldResync-first
	p := 0
	for p < newLen && p < oldLen && sameTok(newToks[first+p], oldToks[first+p]) {
		p++
	}
	s := 0
	for s < newLen-p && s < oldLen-p &&
		sameTok(newToks[first+newLen-1-s], oldToks[first+oldLen-1-s]) {
		s++
	}
	first += p
	relexed = newLen - p - s
	oldResync -= s

	// Splice the node array in step with the token array, building into the
	// spare buffer (the buffers ping-pong between edits, so a steady-state
	// edit reallocates neither).
	nodes := d.spareNodes[:0]
	nodes = append(nodes, oldNodes[:first]...)
	for i := first; i < first+relexed; i++ {
		nodes = append(nodes, d.newTerminal(newToks[i]))
	}
	nodes = append(nodes, oldNodes[oldResync:oldResync+s]...)
	nodes = append(nodes, oldNodes[oldResync+s:]...)
	d.spareNodes = oldNodes

	// Pure-whitespace/comment edits change no terminal: the previous tree
	// is untouched and fully reusable.
	significantRemoved := false
	for i := first; i < oldResync; i++ {
		if oldNodes[i] != nil {
			significantRemoved = true
			break
		}
	}
	significantInserted := false
	for i := first; i < first+relexed; i++ {
		if nodes[i] != nil {
			significantInserted = true
			break
		}
	}

	if significantRemoved || significantInserted {
		// Mark removed terminals and their spines in the old tree.
		for i := first; i < oldResync; i++ {
			if n := oldNodes[i]; n != nil && n.Committed {
				n.Changed = true
				d.marked = append(d.marked, n)
				d.propagate(n)
			}
		}
		// Mark the right-context bit on the last significant terminal
		// before the damage — subtrees ending there saw a different
		// following token — and propagate a nested change from it so that
		// subtrees spanning the modification point are invalidated even
		// when no significant terminal was removed (e.g. an identifier
		// typed into whitespace).
		markedNeighbor := false
		for i := first - 1; i >= 0; i-- {
			if n := oldNodes[i]; n != nil {
				if n.Committed {
					n.RightChanged = true
					d.marked = append(d.marked, n)
					d.propagate(n)
					markedNeighbor = true
				}
				break
			}
		}
		if !markedNeighbor {
			// Damage at the very start: invalidate via the following
			// significant old terminal instead.
			for i := oldResync; i < len(oldToks); i++ {
				if n := oldNodes[i]; n != nil {
					if n.Committed {
						d.propagate(n)
					}
					break
				}
			}
		}
	}

	d.toks = newToks
	d.nodes = nodes
	d.termsValid = false
	d.recountErrors()
}

// propagate sets NestedChange up the parent spine, recording what was
// marked so Commit can clear it.
func (d *Document) propagate(n *dag.Node) {
	for a := n.Parent; a != nil && !a.NestedChange; a = a.Parent {
		a.NestedChange = true
		d.marked = append(d.marked, a)
	}
}

// Commit installs a freshly parsed root: parent pointers are set for new
// structure (reused subtrees keep theirs), change bits are cleared, and the
// document's terminals become the committed tree's leaves.
func (d *Document) Commit(root *dag.Node) {
	for _, n := range d.marked {
		n.Changed = false
		n.NestedChange = false
		n.RightChanged = false
	}
	d.marked = d.marked[:0]

	root.Parent = nil
	commitWalk(root)
	d.root = root
	d.pending = d.pending[:0]
}

// commitWalk descends through freshly built structure, setting parent
// pointers and the committed bit. Interiors of reused (already committed)
// subtrees are untouched — their parents are still correct — which keeps
// the commit proportional to the amount of new structure.
func commitWalk(n *dag.Node) {
	fresh := !n.Committed
	n.Committed = true
	n.Changed = false
	n.NestedChange = false
	n.RightChanged = false
	if !fresh {
		return
	}
	for _, k := range n.Kids {
		k.Parent = n
		commitWalk(k)
	}
}

// Stream returns the incremental parser input for the current document
// state: fresh terminals at modification sites and maximal reusable
// subtrees of the previous tree elsewhere. The Stream object is owned by
// the document and rewound on every call — at most one may be in use at a
// time (documents are single-writer anyway).
func (d *Document) Stream() *Stream {
	d.stream.reset(d)
	return &d.stream
}

// SignificantTokenOffset returns the byte offset of the i-th significant
// (non-skip) token, or the text length when i is past the last token —
// used to map the parser's token-indexed errors to text positions.
func (d *Document) SignificantTokenOffset(i int) int {
	n := 0
	for ti, tok := range d.toks {
		if d.nodes[ti] == nil {
			continue
		}
		if n == i {
			return tok.Offset
		}
		n++
	}
	return d.buf.Len()
}

// NodeSpan returns the byte span [off, off+length) covering the part of
// n's terminal yield still present in the current token stream. It reports
// ok=false when none of n's terminals remain (the node is fully stale).
// Because the span is recomputed from the live token stream on every call,
// it automatically tracks edits elsewhere in the document.
func (d *Document) NodeSpan(n *dag.Node) (off, length int, ok bool) {
	want := make(map[*dag.Node]bool)
	for _, t := range n.Terminals(nil) {
		want[t] = true
	}
	if len(want) == 0 {
		return 0, 0, false
	}
	start, end := -1, -1
	for ti, node := range d.nodes {
		if node == nil || !want[node] {
			continue
		}
		if start < 0 || d.toks[ti].Offset < start {
			start = d.toks[ti].Offset
		}
		if e := d.toks[ti].Offset + len(d.toks[ti].Text); e > end {
			end = e
		}
	}
	if start < 0 {
		return 0, 0, false
	}
	return start, end - start, true
}

// Position converts a byte offset to a 1-based (line, column) pair.
// Columns count bytes within the line.
func (d *Document) Position(offset int) (line, col int) {
	if offset > d.buf.Len() {
		offset = d.buf.Len()
	}
	line, col = 1, 1
	for i := 0; i < offset; i++ {
		if d.buf.ByteAt(i) == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}
