package document

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/grammar"
	"iglr/internal/iglr"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// testLang is a small assignment-statement language used throughout.
type testLang struct {
	g    *grammar.Grammar
	spec *lexer.Spec
	tbl  *lr.Table
	m    map[int]grammar.Sym
}

func newTestLang(t testing.TB) *testLang {
	t.Helper()
	g, err := grammar.Parse(`
%token ID NUM '=' ';' '+' '(' ')'
%start Prog
Prog : Stmt* ;
Stmt : ID '=' Expr ';' ;
Expr : Expr '+' Term | Term ;
Term : ID | NUM | '(' Expr ')' ;
`)
	if err != nil {
		t.Fatalf("grammar: %v", err)
	}
	spec, err := lexer.NewSpec([]lexer.Rule{
		{Name: "WS", Pattern: `[ \t\n]+`, Skip: true},
		{Name: "COMMENT", Pattern: `//[^\n]*`, Skip: true},
		{Name: "ID", Pattern: `[a-zA-Z_][a-zA-Z0-9_]*`},
		{Name: "NUM", Pattern: `[0-9]+`},
		{Name: "EQ", Pattern: `=`},
		{Name: "SEMI", Pattern: `;`},
		{Name: "PLUS", Pattern: `\+`},
		{Name: "LP", Pattern: `\(`},
		{Name: "RP", Pattern: `\)`},
	})
	if err != nil {
		t.Fatalf("lexer: %v", err)
	}
	tbl, err := lr.Build(g, lr.Options{Method: lr.LALR})
	if err != nil {
		t.Fatalf("table: %v", err)
	}
	if !tbl.Deterministic() {
		t.Fatalf("test language should be deterministic:\n%s", tbl.DescribeConflicts())
	}
	m := map[int]grammar.Sym{
		spec.RuleIndex("ID"):   g.Lookup("ID"),
		spec.RuleIndex("NUM"):  g.Lookup("NUM"),
		spec.RuleIndex("EQ"):   g.Lookup("'='"),
		spec.RuleIndex("SEMI"): g.Lookup("';'"),
		spec.RuleIndex("PLUS"): g.Lookup("'+'"),
		spec.RuleIndex("LP"):   g.Lookup("'('"),
		spec.RuleIndex("RP"):   g.Lookup("')'"),
	}
	return &testLang{g: g, spec: spec, tbl: tbl, m: m}
}

func (l *testLang) mapper(rule int, text string) grammar.Sym { return l.m[rule] }

func (l *testLang) doc(src string) *Document {
	return New(l.spec, l.g, l.mapper, src)
}

// parseAndCommit runs an incremental parse over the document and commits.
func parseAndCommit(t testing.TB, l *testLang, d *Document) (*dag.Node, iglr.Stats) {
	t.Helper()
	p := iglr.New(l.tbl)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatalf("parse of %q: %v", d.Text(), err)
	}
	d.Commit(root)
	return root, p.Stats
}

// batchParse parses text from scratch through a fresh document.
func batchParse(t testing.TB, l *testLang, src string) *dag.Node {
	t.Helper()
	d := l.doc(src)
	p := iglr.New(l.tbl)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatalf("batch parse of %q: %v", src, err)
	}
	return root
}

// equalStructure compares parse structure, ignoring parse states and node
// identity.
func equalStructure(a, b *dag.Node) bool {
	if a.Kind != b.Kind || a.Sym != b.Sym || a.Prod != b.Prod {
		return false
	}
	if a.Kind == dag.KindTerminal {
		return a.Text == b.Text
	}
	if len(a.Kids) != len(b.Kids) {
		return false
	}
	for i := range a.Kids {
		if !equalStructure(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	return true
}

func checkAgainstBatch(t *testing.T, l *testLang, d *Document, root *dag.Node) {
	t.Helper()
	want := batchParse(t, l, d.Text())
	if !equalStructure(root, want) {
		t.Fatalf("incremental parse differs from batch for %q:\nincremental:\n%swant:\n%s",
			d.Text(), dag.Format(l.g, root), dag.Format(l.g, want))
	}
}

func TestInitialParse(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("x = 1; y = x + 2;")
	root, stats := parseAndCommit(t, l, d)
	if root.Yield() != "x=1;y=x+2;" {
		t.Fatalf("yield = %q", root.Yield())
	}
	if stats.SubtreeShifts != 0 {
		t.Fatalf("first parse should shift no subtrees, got %d", stats.SubtreeShifts)
	}
	if d.Root() != root {
		t.Fatalf("root not committed")
	}
}

func TestIncrementalTokenEdit(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("x = 1; y = 2; z = 3;")
	parseAndCommit(t, l, d)

	// Rename the identifier y.
	d.Replace(7, 1, "w")
	if d.Text() != "x = 1; w = 2; z = 3;" {
		t.Fatalf("text = %q", d.Text())
	}
	root, stats := parseAndCommit(t, l, d)
	checkAgainstBatch(t, l, d, root)
	if stats.SubtreeShifts == 0 {
		t.Fatalf("expected subtree reuse, stats = %+v", stats)
	}
	if stats.TerminalShifts > 6 {
		t.Fatalf("too many terminal shifts for a one-token edit: %+v", stats)
	}
}

func TestWhitespaceOnlyEdit(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("x = 1; y = 2;")
	parseAndCommit(t, l, d)
	d.Replace(6, 0, "   ")
	root, stats := parseAndCommit(t, l, d)
	checkAgainstBatch(t, l, d, root)
	// The whole previous tree is reusable: one subtree shift plus EOF.
	if stats.SubtreeShifts < 1 || stats.TerminalShifts > 1 {
		t.Fatalf("whitespace edit should reuse everything: %+v", stats)
	}
}

func TestCommentEdit(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("x = 1; // note\ny = 2;")
	parseAndCommit(t, l, d)
	d.Replace(10, 4, "remark")
	root, _ := parseAndCommit(t, l, d)
	checkAgainstBatch(t, l, d, root)
}

func TestInsertionIntoWhitespace(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("x = 1;   y = 2;")
	parseAndCommit(t, l, d)
	// Insert a whole statement into the gap.
	d.Replace(7, 0, "q = 9; ")
	root, _ := parseAndCommit(t, l, d)
	checkAgainstBatch(t, l, d, root)
	if !strings.Contains(root.Yield(), "q=9;") {
		t.Fatalf("inserted statement missing: %q", root.Yield())
	}
}

func TestDeleteStatement(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("a = 1; b = 2; c = 3;")
	parseAndCommit(t, l, d)
	d.Replace(7, 7, "")
	root, _ := parseAndCommit(t, l, d)
	checkAgainstBatch(t, l, d, root)
	if root.Yield() != "a=1;c=3;" {
		t.Fatalf("yield = %q", root.Yield())
	}
}

func TestAppendAtEnd(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("a = 1;")
	parseAndCommit(t, l, d)
	d.Replace(6, 0, " b = 2;")
	root, _ := parseAndCommit(t, l, d)
	checkAgainstBatch(t, l, d, root)
}

func TestEditAtStart(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("a = 1; b = 2;")
	parseAndCommit(t, l, d)
	d.Replace(0, 0, "q = 7; ")
	root, _ := parseAndCommit(t, l, d)
	checkAgainstBatch(t, l, d, root)
}

func TestSyntaxErrorThenFix(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("a = 1; b = 2;")
	parseAndCommit(t, l, d)
	oldRoot := d.Root()

	// Delete the '=' of the second statement: syntax error.
	d.Replace(9, 1, "")
	p := iglr.New(l.tbl)
	if _, err := p.Parse(d.Stream()); err == nil {
		t.Fatalf("expected syntax error for %q", d.Text())
	}
	if d.Root() != oldRoot {
		t.Fatalf("failed parse must not replace the committed tree")
	}

	// Fix it.
	d.Replace(9, 0, "=")
	root, _ := parseAndCommit(t, l, d)
	checkAgainstBatch(t, l, d, root)
}

func TestLexicalError(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("a = 1; @ b = 2;")
	if d.LexErrorCount != 1 {
		t.Fatalf("LexErrorCount = %d", d.LexErrorCount)
	}
	p := iglr.New(l.tbl)
	if _, err := p.Parse(d.Stream()); err == nil {
		t.Fatal("expected parse failure at lexical error token")
	}
	// Removing the bad character makes it parse.
	d.Replace(7, 2, "")
	if d.LexErrorCount != 0 {
		t.Fatalf("LexErrorCount = %d after fix", d.LexErrorCount)
	}
	root, _ := parseAndCommit(t, l, d)
	checkAgainstBatch(t, l, d, root)
}

func TestMultipleEditsBetweenParses(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("a = 1; b = 2; c = 3; d = 4;")
	parseAndCommit(t, l, d)
	d.Replace(4, 1, "10")  // a = 10
	d.Replace(12, 1, "20") // b = 20
	d.Replace(0, 1, "aa")  // rename a
	root, _ := parseAndCommit(t, l, d)
	checkAgainstBatch(t, l, d, root)
	if !strings.HasPrefix(root.Yield(), "aa=10;") {
		t.Fatalf("yield = %q", root.Yield())
	}
}

func TestReuseEfficiencyLargeProgram(t *testing.T) {
	l := newTestLang(t)
	var sb strings.Builder
	n := 500
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "v%d = %d + x%d; ", i, i, i)
	}
	d := l.doc(sb.String())
	_, first := parseAndCommit(t, l, d)
	if first.TerminalShifts < 4*n {
		t.Fatalf("first parse stats look wrong: %+v", first)
	}

	// Single-token edit in the middle.
	off := strings.Index(d.Text(), "v250 =")
	d.Replace(off+len("v250 = "), 3, "999")
	root, stats := parseAndCommit(t, l, d)
	checkAgainstBatch(t, l, d, root)
	if stats.TerminalShifts > 10 {
		t.Fatalf("incremental parse relexed too much: %+v", stats)
	}
	// The prefix must arrive as one chain shift; the suffix of a
	// left-recursive sequence is shifted one statement at a time (the
	// linear-tail behavior §3.4's balanced sequences address), so the
	// subtree-shift count is about half the statement count.
	if stats.SubtreeShifts > n/2+10 {
		t.Fatalf("subtree shifts %d exceed the expected ~n/2 for n=%d", stats.SubtreeShifts, n)
	}
	if stats.Rounds > n {
		t.Fatalf("rounds %d should be well below token count", stats.Rounds)
	}
}

func TestRandomizedIncrementalEqualsBatch(t *testing.T) {
	l := newTestLang(t)
	rng := rand.New(rand.NewSource(123))
	src := "alpha = 1; beta = alpha + 2; gamma = (beta + 3) + 4;"
	d := l.doc(src)
	parseAndCommit(t, l, d)

	pieces := []string{"x", "7", " ", ";", "=", "+", "(", ")", "q = 5; ", "// c\n"}
	parses, reverts := 0, 0
	for step := 0; step < 400; step++ {
		txt := d.Text()
		off := rng.Intn(len(txt) + 1)
		rem := 0
		if off < len(txt) {
			rem = rng.Intn(minInt(len(txt)-off, 5))
		}
		ins := ""
		if rng.Intn(3) > 0 {
			ins = pieces[rng.Intn(len(pieces))]
		}
		removedText := txt[off : off+rem]
		d.Replace(off, rem, ins)

		p := iglr.New(l.tbl)
		root, err := p.Parse(d.Stream())
		refDoc := l.doc(d.Text())
		pRef := iglr.New(l.tbl)
		want, wantErr := pRef.Parse(refDoc.Stream())
		if (err == nil) != (wantErr == nil) {
			t.Fatalf("step %d: incremental err=%v batch err=%v text=%q", step, err, wantErr, d.Text())
		}
		if err == nil {
			if !equalStructure(root, want) {
				t.Fatalf("step %d: structure mismatch for %q:\nincremental:\n%sbatch:\n%s",
					step, d.Text(), dag.Format(l.g, root), dag.Format(l.g, want))
			}
			d.Commit(root)
			parses++
			continue
		}
		// Syntax error: revert (a self-cancelling modification, §5) and
		// check the reverted document still parses and matches batch.
		d.Replace(off, len(ins), removedText)
		reverts++
		p2 := iglr.New(l.tbl)
		root2, err2 := p2.Parse(d.Stream())
		if err2 != nil {
			t.Fatalf("step %d: reverted text %q fails to parse: %v", step, d.Text(), err2)
		}
		want2 := batchParse(t, l, d.Text())
		if !equalStructure(root2, want2) {
			t.Fatalf("step %d: reverted structure mismatch for %q", step, d.Text())
		}
		d.Commit(root2)
	}
	if parses < 30 || reverts < 30 {
		t.Fatalf("unbalanced coverage: %d parses, %d reverts", parses, reverts)
	}
}

func TestTerminalsMatchTokens(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("a = 1; b = 2;")
	terms := d.Terminals()
	if len(terms) != 8 {
		t.Fatalf("terminals = %d, want 8", len(terms))
	}
	d.Replace(0, 1, "zz")
	terms = d.Terminals()
	if terms[0].Text != "zz" {
		t.Fatalf("first terminal = %q", terms[0].Text)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
