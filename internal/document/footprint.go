package document

import (
	"unsafe"

	"iglr/internal/lexer"
)

// Footprint estimates the document's resident bytes: text buffer, token
// stream, the per-token node map and terminal caches, the node arena, and
// the pending-edit history with its captured text. The figure feeds the
// daemon's memory governor, so it errs toward counting everything the
// document keeps reachable rather than toward precision.
func (d *Document) Footprint() int64 {
	n := d.buf.Footprint()
	n += int64(cap(d.toks)) * int64(unsafe.Sizeof(lexer.Token{}))
	n += int64(cap(d.nodes)+cap(d.terms)+cap(d.spareNodes)+cap(d.marked)) * 8
	n += d.arena.Footprint()
	for i := range d.pending {
		n += int64(len(d.pending[i].Removed) + len(d.pending[i].Inserted))
	}
	return n
}
