package document

import (
	"math/rand"
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/iglr"
)

// Structural invariants of the self-versioning document, checked across
// random editing sessions:
//
//  1. the significant terminals concatenate to the text minus skip tokens;
//  2. after a commit, every terminal's parent chain reaches the root;
//  3. every committed node's terminal cover (LeftmostTerm/RightmostTerm/
//     TermCount) is consistent with its subtree;
//  4. no change bits remain set after a commit.

func checkInvariants(t *testing.T, l *testLang, d *Document) {
	t.Helper()

	// (1) terminals tile the significant text.
	var sb strings.Builder
	for _, tok := range d.Tokens() {
		if !tok.Skip && tok.Type >= 0 {
			sb.WriteString(tok.Text)
		}
	}
	var tb strings.Builder
	for _, n := range d.Terminals() {
		tb.WriteString(n.Text)
	}
	if sb.String() != tb.String() {
		t.Fatalf("terminal nodes diverge from tokens:\n%q\nvs\n%q", tb.String(), sb.String())
	}

	root := d.Root()
	if root == nil {
		return
	}

	// (2) parent chains reach the root.
	for _, term := range d.Terminals() {
		seen := 0
		n := term
		for n != root {
			if n.Parent == nil {
				t.Fatalf("terminal %q: parent chain broken at %v", term.Text, n)
			}
			n = n.Parent
			if seen++; seen > 10000 {
				t.Fatalf("terminal %q: parent cycle", term.Text)
			}
		}
	}

	// (3) cover consistency and (4) clean bits.
	root.Walk(func(n *dag.Node) {
		if n.NestedChange || n.Changed || n.RightChanged {
			t.Fatalf("change bit set after commit: %v", n)
		}
		if n.IsTerminal() {
			return
		}
		terms := n.Terminals(nil)
		if int(n.TermCount) != len(terms) {
			t.Fatalf("TermCount %d != %d for %v", n.TermCount, len(terms), n)
		}
		if len(terms) == 0 {
			if n.LeftmostTerm != nil || n.RightmostTerm != nil {
				t.Fatalf("null-yield node with cover: %v", n)
			}
			return
		}
		if n.LeftmostTerm != terms[0] || n.RightmostTerm != terms[len(terms)-1] {
			t.Fatalf("cover mismatch for %v", n)
		}
	})
}

func TestInvariantsUnderRandomEditing(t *testing.T) {
	l := newTestLang(t)
	rng := rand.New(rand.NewSource(2024))
	d := l.doc("start = 1; finish = start + 2;")
	parseAndCommit(t, l, d)
	checkInvariants(t, l, d)

	pieces := []string{"x", "12", " ", "; ", "= 0", "+ y", "(z)", "w = 3; "}
	for step := 0; step < 250; step++ {
		txt := d.Text()
		off := rng.Intn(len(txt) + 1)
		rem := 0
		if off < len(txt) {
			rem = rng.Intn(minInt(len(txt)-off, 4))
		}
		removed := txt[off : off+rem]
		ins := pieces[rng.Intn(len(pieces))]
		d.Replace(off, rem, ins)

		p := iglr.New(l.tbl)
		root, err := p.Parse(d.Stream())
		if err != nil {
			// Revert to stay parseable; invariants hold for the committed
			// tree regardless.
			d.Replace(off, len(ins), removed)
			root2, err2 := p.Parse(d.Stream())
			if err2 != nil {
				t.Fatalf("step %d: revert failed: %v (text %q)", step, err2, d.Text())
			}
			d.Commit(root2)
		} else {
			d.Commit(root)
		}
		checkInvariants(t, l, d)
	}
}

func TestPendingEditsLifecycle(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("a = 1; b = 2; c = 3;")
	parseAndCommit(t, l, d)
	if len(d.PendingEdits()) != 0 {
		t.Fatal("no pending edits expected after commit")
	}
	d.Replace(4, 1, "9")
	d.Replace(0, 1, "q")
	pend := d.PendingEdits()
	if len(pend) != 2 || pend[0].Removed != "1" || pend[1].Inserted != "q" {
		t.Fatalf("pending = %+v", pend)
	}
	d.RevertPending()
	if d.Text() != "a = 1; b = 2; c = 3;" {
		t.Fatalf("revert: %q", d.Text())
	}
	if len(d.PendingEdits()) != 0 {
		t.Fatal("pending should be empty after revert")
	}
	// The tree is reusable again: the touched tokens are relexed (revert
	// does not resurrect their old terminal nodes) but the untouched
	// statements come back as whole subtrees.
	p := iglr.New(l.tbl)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.SubtreeShifts == 0 {
		t.Fatalf("expected subtree reuse after revert: %+v", p.Stats)
	}
	if p.Stats.TerminalShifts > 6 {
		t.Fatalf("revert should keep the damage local: %+v", p.Stats)
	}
	d.Commit(root)
	checkInvariants(t, l, d)
}

func TestWholeTreeReuseAfterNoop(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("a = 1; b = 2;")
	parseAndCommit(t, l, d)
	// No edits at all: the stream offers the root and EOF.
	p := iglr.New(l.tbl)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats.SubtreeShifts != 1 || p.Stats.TerminalShifts != 0 {
		t.Fatalf("no-op reparse should shift exactly the root: %+v", p.Stats)
	}
	if root != d.Root() {
		// The root may be re-wrapped by reductions above the reused
		// subtree; both shapes are acceptable as long as structure holds.
		if root.Yield() != d.Root().Yield() {
			t.Fatal("no-op reparse changed the yield")
		}
	}
}

func TestStreamSubtreeOffers(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("a = 1; b = 2; c = 3;")
	parseAndCommit(t, l, d)
	d.Replace(11, 1, "9") // edit inside the middle statement
	s := d.Stream()
	offers := 0
	for {
		n := s.La()
		if n == nil {
			break
		}
		offers++
		s.Pop()
	}
	if s.SubtreeOffers == 0 {
		t.Fatal("expected maximal-subtree offers")
	}
	if offers > 12 {
		t.Fatalf("stream offered %d items for a one-token edit", offers)
	}
}
