package document

import (
	"iglr/internal/dag"
)

// Region is a half-open range [Lo, Hi) of significant-terminal indices —
// the unit in which the error-isolation layer quarantines damage.
type Region struct{ Lo, Hi int }

// Len returns the number of terminals the region covers.
func (r Region) Len() int { return r.Hi - r.Lo }

// Contains reports whether terminal index i falls inside the region.
func (r Region) Contains(i int) bool { return i >= r.Lo && i < r.Hi }

// MaskedStream is a parser input that yields the document's significant
// terminals one at a time, skipping every index covered by a quarantine
// region. Unlike the ordinary Stream it never offers whole subtrees — the
// masked token sequence differs from the committed tree's yield, so
// position-based subtree reuse does not apply; bottom-up node retention in
// the parser still reuses unchanged structure away from the regions.
type MaskedStream struct {
	d       *Document
	terms   []*dag.Node
	regions []Region // sorted by Lo, disjoint
	k       int      // next candidate terminal index
	ri      int      // first region not yet passed
	eofSent bool
}

// MaskedStream returns a parser input over the document's current terminals
// with the given regions (sorted, disjoint, in terminal indices) masked
// out. The stream is freshly allocated — isolation runs are off the
// zero-alloc hot path by construction.
func (d *Document) MaskedStream(regions []Region) *MaskedStream {
	return &MaskedStream{d: d, terms: d.Terminals(), regions: regions}
}

// Arena returns the document's node arena.
func (s *MaskedStream) Arena() *dag.Arena { return s.d.arena }

// skip advances k past any masked region it has entered.
func (s *MaskedStream) skip() {
	for s.ri < len(s.regions) {
		r := s.regions[s.ri]
		if s.k < r.Lo {
			return
		}
		if s.k < r.Hi {
			s.k = r.Hi
		}
		s.ri++
	}
}

// La returns the current lookahead terminal (or the EOF node, then nil).
func (s *MaskedStream) La() *dag.Node {
	s.skip()
	if s.k >= len(s.terms) {
		if s.eofSent {
			return nil
		}
		return s.d.eof
	}
	return s.terms[s.k]
}

// Pop advances past the current terminal.
func (s *MaskedStream) Pop() {
	if n := s.La(); n == s.d.eof {
		s.eofSent = true
		return
	} else if n == nil {
		return
	}
	s.k++
}

// Breakdown panics: the stream only ever yields terminals, so a correct
// parser never requests a breakdown.
func (s *MaskedStream) Breakdown() {
	panic("document: breakdown on a masked terminal stream")
}

// CurIndex returns the document-terminal index of the current lookahead
// (len(terms) at EOF) — how a parse failure on the masked stream is mapped
// back to document coordinates.
func (s *MaskedStream) CurIndex() int {
	s.skip()
	return s.k
}
