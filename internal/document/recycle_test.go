package document

import (
	"strings"
	"testing"
)

// TestReleaseBuffersRoundTrip: buffers released from one document seed the
// next with zero divergence in tokens/terminals, storage actually reused,
// and no stale pointers retained.
func TestReleaseBuffersRoundTrip(t *testing.T) {
	l := newTestLang(t)

	srcA := strings.Repeat("alpha = 12 + beta;\n", 50)
	srcB := strings.Repeat("gamma = 9;\n", 30)

	d1 := New(l.spec, l.g, l.mapper, srcA)
	nToks := len(d1.Tokens())
	toks, nodes, spare, terms := d1.ReleaseBuffers()
	if len(toks) != 0 || len(nodes) != 0 {
		t.Fatal("released buffers not length-reset")
	}
	if cap(toks) < nToks {
		t.Fatalf("released token capacity %d < %d", cap(toks), nToks)
	}
	for _, n := range nodes[:cap(nodes)] {
		if n != nil {
			t.Fatal("released node storage still pins a dag node")
		}
	}
	for _, tok := range toks[:cap(toks)] {
		if tok.Text != "" {
			t.Fatal("released token storage still pins the old text")
		}
	}

	d2 := NewOpts(l.spec, l.g, l.mapper, srcB, Options{
		Toks: toks, Nodes: nodes, Spare: spare, Terms: terms,
	})
	fresh := New(l.spec, l.g, l.mapper, srcB)
	gotToks, wantToks := d2.Tokens(), fresh.Tokens()
	if len(gotToks) != len(wantToks) {
		t.Fatalf("recycled doc: %d tokens, fresh %d", len(gotToks), len(wantToks))
	}
	for i := range wantToks {
		if gotToks[i] != wantToks[i] {
			t.Fatalf("token %d: recycled %+v, fresh %+v", i, gotToks[i], wantToks[i])
		}
	}
	if len(d2.Terminals()) != len(fresh.Terminals()) {
		t.Fatal("terminal count diverges")
	}
	if &gotToks[0] != &toks[:1][0] {
		t.Fatal("donated token storage was not reused")
	}

	// The recycled document must still edit correctly.
	d2.Replace(0, 5, "delta")
	if got := d2.Text(); !strings.HasPrefix(got, "delta = 9;") {
		t.Fatalf("edit on recycled doc: %q", got[:12])
	}
}

// TestNewOptsParallelLex: a document built with LexWorkers > 1 has the
// same tokens and terminals as a sequentially lexed one.
func TestNewOptsParallelLex(t *testing.T) {
	l := newTestLang(t)
	src := strings.Repeat("a = 1 + (b + 2); // c\n", 3000) // > minChunkBytes
	seq := New(l.spec, l.g, l.mapper, src)
	par := NewOpts(l.spec, l.g, l.mapper, src, Options{LexWorkers: 4})
	if len(par.Tokens()) != len(seq.Tokens()) {
		t.Fatalf("parallel %d tokens, sequential %d", len(par.Tokens()), len(seq.Tokens()))
	}
	for i, tok := range seq.Tokens() {
		if par.Tokens()[i] != tok {
			t.Fatalf("token %d diverges", i)
		}
	}
	if len(par.Terminals()) != len(seq.Terminals()) {
		t.Fatal("terminal count diverges")
	}
}
