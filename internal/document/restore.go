package document

import (
	"fmt"

	"iglr/internal/dag"
	"iglr/internal/grammar"
	"iglr/internal/lexer"
	"iglr/internal/text"
)

// CommittedState extracts the persistable state of the document: the text
// and token stream as of the last commit, plus the edits applied since. The
// committed view is what a snapshot stores — pending edits are re-applied
// through Replace on restore, which regenerates the change marks (and the
// fresh uncommitted terminals) exactly as the live document produced them.
//
// With no pending edits the returned slices alias the document's own
// storage; callers must consume them before the next edit. With pending
// edits the committed text is reconstructed by inverting the edit log
// (newest first) on a copy — the document itself is never mutated — and the
// committed token stream is recovered by a batch scan of that text, which
// equals the incrementally maintained stream the document held at commit
// time (relex ≡ batch scan is a tested invariant).
func (d *Document) CommittedState() (committed string, toks []lexer.Token, pending []AppliedEdit, err error) {
	pending = d.PendingEdits()
	if len(pending) == 0 {
		return d.buf.String(), d.toks, pending, nil
	}
	cur := []byte(d.buf.String())
	for i := len(pending) - 1; i >= 0; i-- {
		e := pending[i]
		if e.Offset < 0 || e.Offset > len(cur) || len(e.Inserted) > len(cur)-e.Offset {
			return "", nil, nil, fmt.Errorf("document: pending edit %d out of range inverting to committed text", i)
		}
		next := make([]byte, 0, len(cur)-len(e.Inserted)+len(e.Removed))
		next = append(next, cur[:e.Offset]...)
		next = append(next, e.Removed...)
		next = append(next, cur[e.Offset+len(e.Inserted):]...)
		cur = next
	}
	committed = string(cur)
	return committed, d.spec.Scan(committed), pending, nil
}

// Restore rebuilds a document around decoded snapshot state: the committed
// text, its token stream, and the terminal nodes (parallel to toks, nil at
// skip tokens) already allocated in arena by the snapshot decoder. The
// caller is expected to follow with Commit(root) for the decoded tree and
// ReplayEdit for each recorded pending edit, in order — that sequence takes
// the document through the same state transitions the original lived
// through, so the restored twin is byte-identical.
func Restore(spec *lexer.Spec, g *grammar.Grammar, mapTok TokenMapper, arena *dag.Arena, committed string, toks []lexer.Token, nodes []*dag.Node) *Document {
	d := &Document{
		spec: spec, g: g, mapTok: mapTok,
		buf: text.NewBuffer(committed), arena: arena,
		toks: toks, nodes: nodes,
	}
	d.eof = d.arena.Terminal(grammar.EOF, "")
	d.recountErrors()
	return d
}

// ReplayEdit re-applies a recorded edit to the document, verifying first
// that the text it claims to remove is actually there — the content check
// that turns a corrupted or misordered edit log into an error instead of a
// silently divergent document.
func (d *Document) ReplayEdit(e AppliedEdit) error {
	if e.Offset < 0 || e.Offset > d.buf.Len() || len(e.Removed) > d.buf.Len()-e.Offset {
		return fmt.Errorf("document: replayed edit @%d out of range (len %d)", e.Offset, d.buf.Len())
	}
	if got := d.buf.Slice(e.Offset, e.Offset+len(e.Removed)); got != e.Removed {
		return fmt.Errorf("document: replayed edit @%d removes %q but text has %q", e.Offset, e.Removed, got)
	}
	d.Replace(e.Offset, len(e.Removed), e.Inserted)
	return nil
}
