package document

import (
	"testing"

	"iglr/internal/dag"
	"iglr/internal/iglr"
)

// Bottom-up node retention ([25], §3.3): when an exposed region is
// re-reduced from exactly its old constituents, the old production node is
// reused, so node identity — and anything hung off it, like semantic
// attributes — survives the reparse.
func TestNodeRetentionPreservesIdentity(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("a = 1; b = 2;")
	parseAndCommit(t, l, d)

	// Find the Stmt node for "a = 1;".
	g := l.g
	var stmtA *dag.Node
	d.Root().Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && g.Name(n.Sym) == "Stmt" && n.Yield() == "a=1;" {
			stmtA = n
		}
	})
	if stmtA == nil {
		t.Fatal("Stmt(a) not found")
	}

	// Edit the *following* statement's first token: Stmt(a)'s right
	// context changes, so it is decomposed and re-reduced — from identical
	// children.
	d.Replace(7, 1, "c")
	p := iglr.New(l.tbl)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)
	if p.Stats.RetainedNodes == 0 {
		t.Fatalf("expected node retention, stats %+v", p.Stats)
	}

	var stmtA2 *dag.Node
	root.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && g.Name(n.Sym) == "Stmt" && n.Yield() == "a=1;" {
			stmtA2 = n
		}
	})
	if stmtA2 != stmtA {
		t.Fatal("Stmt(a) lost its identity across the reparse")
	}
}

func TestRetentionDoesNotCrossContent(t *testing.T) {
	l := newTestLang(t)
	d := l.doc("a = 1; b = 2;")
	parseAndCommit(t, l, d)

	var stmtA *dag.Node
	d.Root().Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && l.g.Name(n.Sym) == "Stmt" && n.Yield() == "a=1;" {
			stmtA = n
		}
	})

	// Change *inside* the statement: its children differ, so a fresh node
	// must be built (no false retention).
	d.Replace(4, 1, "7")
	p := iglr.New(l.tbl)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)

	var stmtA2 *dag.Node
	root.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && l.g.Name(n.Sym) == "Stmt" && n.Yield() == "a=7;" {
			stmtA2 = n
		}
	})
	if stmtA2 == nil {
		t.Fatal("edited statement missing")
	}
	if stmtA2 == stmtA {
		t.Fatal("node wrongly retained across a content change")
	}
}

func TestRetentionKeepsFilterAttributes(t *testing.T) {
	// The practical payoff: a Filtered mark (a semantic attribute) set on
	// a node survives reparses triggered by neighboring edits.
	l := newTestLang(t)
	d := l.doc("a = 1; b = 2; c = 3;")
	parseAndCommit(t, l, d)

	var target *dag.Node
	d.Root().Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && l.g.Name(n.Sym) == "Stmt" && n.Yield() == "a=1;" {
			target = n
		}
	})
	target.Filtered = true // stand-in for an arbitrary annotation

	d.Replace(7, 1, "q") // edit statement b
	p := iglr.New(l.tbl)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)

	found := false
	root.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && l.g.Name(n.Sym) == "Stmt" && n.Yield() == "a=1;" {
			found = n.Filtered
		}
	})
	if !found {
		t.Fatal("annotation lost: node was rebuilt instead of retained")
	}
}
