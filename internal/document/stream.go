package document

import (
	"iglr/internal/dag"
)

// Stream is the incremental parser's input (conceptually the subtree reuse
// stack of §3.2, Figure 6): a left-to-right traversal of the current token
// sequence in which maximal unmodified subtrees of the previous tree stand
// in for their terminal runs. It implements the iglr parser's Stream
// interface structurally.
//
// A subtree A is offered at cursor position k when
//   - A belongs to the committed tree and its leftmost terminal is the
//     clean terminal at k (so A's yield starts exactly here),
//   - A contains no nested changes (its terminal run is intact), and
//   - the right-context bit of A's rightmost terminal is clear (the token
//     following A is the same one A's construction saw, §3.2).
//
// Fresh terminals at modification sites are yielded directly. Breakdown
// exposes the children of the current subtree (left_breakdown); null-yield
// children are dropped — the parser rebuilds ε structure, which keeps
// ε-reuse from leaking stale right context.
type Stream struct {
	d       *Document
	terms   []*dag.Node
	k       int // index of the next uncovered terminal in terms
	pending []*dag.Node
	eof     *dag.Node
	eofSent bool

	// SubtreeOffers counts maximal-subtree offerings (diagnostics).
	SubtreeOffers int
}

// reset rewinds the stream for a fresh traversal of d's current state.
// The pending stack keeps its capacity, the document's terminal buffer and
// EOF node are shared, so rewinding allocates nothing.
func (s *Stream) reset(d *Document) {
	s.d = d
	s.terms = nil
	s.k = 0
	s.pending = s.pending[:0]
	s.eof = d.eof
	s.eofSent = false
	s.SubtreeOffers = 0
}

// Arena returns the document's node arena (the iglr / detparse Stream
// interfaces' arena hook).
func (s *Stream) Arena() *dag.Arena { return s.d.arena }

// La returns the current lookahead subtree (computing it lazily).
func (s *Stream) La() *dag.Node {
	if len(s.pending) > 0 {
		return s.pending[len(s.pending)-1]
	}
	if s.terms == nil {
		s.terms = s.d.Terminals()
	}
	if s.k >= len(s.terms) {
		if s.eofSent {
			return nil
		}
		s.pending = append(s.pending, s.eof)
		return s.eof
	}
	t := s.terms[s.k]
	best := t
	if t.Committed && !t.Changed {
		for a := t.Parent; a != nil && a.Committed && a.LeftmostTerm == t && !a.NestedChange; a = a.Parent {
			r := a.RightmostTerm
			if r == nil || r.RightChanged {
				break
			}
			best = a
		}
	}
	if best != t {
		s.SubtreeOffers++
	}
	s.pending = append(s.pending, best)
	return best
}

// Pop advances past the current subtree.
func (s *Stream) Pop() {
	n := s.La()
	if n == nil {
		return
	}
	s.pending = s.pending[:len(s.pending)-1]
	if n == s.eof {
		s.eofSent = true
		return
	}
	s.k += int(n.TermCount)
}

// Breakdown replaces the current subtree by its children. Children with a
// null yield are dropped (the parser re-derives ε structure); for a choice
// node the first live interpretation is exposed.
func (s *Stream) Breakdown() {
	n := s.La()
	if n == nil {
		return
	}
	if n.IsTerminal() {
		panic("document: breakdown of a terminal")
	}
	s.pending = s.pending[:len(s.pending)-1]
	if n.IsChoice() {
		alt := n.Kids[0]
		for _, k := range n.Kids {
			if !k.Filtered {
				alt = k
				break
			}
		}
		if alt.TermCount > 0 {
			s.pending = append(s.pending, alt)
		}
		return
	}
	for i := len(n.Kids) - 1; i >= 0; i-- {
		if k := n.Kids[i]; k.TermCount > 0 {
			s.pending = append(s.pending, k)
		}
	}
}
