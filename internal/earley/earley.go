// Package earley implements Earley's general context-free recognition and
// parse-counting algorithm (Earley 1970, the paper's reference [2]). It
// serves two purposes: a trusted oracle for cross-validating the GLR
// parser on arbitrary grammars (acceptance and ambiguity counts must
// agree), and the baseline for the classic GLR-vs-Earley speed comparison
// the paper cites (footnote 4: Tomita and Rekers both found grammars close
// to LR(1) in practice, where GLR parsing is linear and Earley pays its
// general-case overhead).
package earley

import (
	"iglr/internal/grammar"
)

// item is an Earley item: a dotted production with the origin position.
type item struct {
	prod   int
	dot    int
	origin int
}

// stateSet is one Earley chart column with a membership index.
type stateSet struct {
	items []item
	index map[item]struct{}
}

func newStateSet() *stateSet {
	return &stateSet{index: map[item]struct{}{}}
}

func (s *stateSet) add(it item) bool {
	if _, ok := s.index[it]; ok {
		return false
	}
	s.index[it] = struct{}{}
	s.items = append(s.items, it)
	return true
}

// Parser is an Earley recognizer for a grammar.
type Parser struct {
	g *grammar.Grammar
	// Stats from the last run.
	Items int // total chart items — Earley's work measure
}

// New creates an Earley parser.
func New(g *grammar.Grammar) *Parser { return &Parser{g: g} }

// Recognize reports whether the terminal sequence (without EOF) is in the
// language.
func (p *Parser) Recognize(input []grammar.Sym) bool {
	chart := p.buildChart(input)
	last := chart[len(input)]
	for _, it := range last.items {
		if it.prod == 0 && it.dot == 1 && it.origin == 0 {
			return true
		}
	}
	return false
}

// buildChart runs the recognizer, returning the chart.
func (p *Parser) buildChart(input []grammar.Sym) []*stateSet {
	g := p.g
	n := len(input)
	chart := make([]*stateSet, n+1)
	for i := range chart {
		chart[i] = newStateSet()
	}
	chart[0].add(item{prod: 0, dot: 0, origin: 0})
	p.Items = 0

	for i := 0; i <= n; i++ {
		set := chart[i]
		for k := 0; k < len(set.items); k++ {
			it := set.items[k]
			prod := g.Production(it.prod)
			if it.dot < len(prod.RHS) {
				sym := prod.RHS[it.dot]
				if g.IsTerminal(sym) {
					// Scanner.
					if i < n && input[i] == sym {
						chart[i+1].add(item{prod: it.prod, dot: it.dot + 1, origin: it.origin})
					}
				} else {
					// Predictor.
					for _, q := range g.ProductionsFor(sym) {
						set.add(item{prod: q.ID, dot: 0, origin: i})
					}
					// Nullable completion (Aycock–Horspool fix for ε).
					if g.Nullable(sym) {
						set.add(item{prod: it.prod, dot: it.dot + 1, origin: it.origin})
					}
				}
			} else {
				// Completer.
				lhs := prod.LHS
				for _, parent := range chart[it.origin].items {
					pp := g.Production(parent.prod)
					if parent.dot < len(pp.RHS) && pp.RHS[parent.dot] == lhs {
						set.add(item{prod: parent.prod, dot: parent.dot + 1, origin: parent.origin})
					}
				}
			}
		}
		p.Items += len(set.items)
	}
	return chart
}

// CountParses returns the number of distinct parse trees for the input,
// capped at Cap, computed by dynamic programming over derivation spans —
// independent of the GLR parser's forest representation, so it serves as a
// second opinion. Defined for non-cyclic grammars (no A ⇒+ A).
func (p *Parser) CountParses(input []grammar.Sym) int {
	if !p.Recognize(input) {
		return 0
	}
	g := p.g
	n := len(input)

	// countSym[sym][i][j]: derivations of input[i:j] from sym.
	type key struct {
		sym  grammar.Sym
		i, j int
	}
	memo := map[key]int{}
	onStack := map[key]bool{}

	var countSym func(sym grammar.Sym, i, j int) int
	var countSeq func(rhs []grammar.Sym, i, j int) int

	countSym = func(sym grammar.Sym, i, j int) int {
		if g.IsTerminal(sym) {
			if j == i+1 && input[i] == sym {
				return 1
			}
			return 0
		}
		k := key{sym, i, j}
		if v, ok := memo[k]; ok {
			return v
		}
		if onStack[k] {
			// A derivation of this span through itself adds no *finite*
			// trees. (For cyclic grammars — A ⇒+ A — the tree count is
			// infinite and this undercounts; the GLR side cannot represent
			// those forests either, so CountParses is specified for
			// non-cyclic grammars, like the paper's representation.)
			return 0
		}
		onStack[k] = true
		total := 0
		for _, prod := range g.ProductionsFor(sym) {
			total += countSeq(prod.RHS, i, j)
			if total > Cap {
				total = Cap
				break
			}
		}
		onStack[k] = false
		memo[k] = total
		return total
	}

	countSeq = func(rhs []grammar.Sym, i, j int) int {
		if len(rhs) == 0 {
			if i == j {
				return 1
			}
			return 0
		}
		if len(rhs) == 1 {
			return countSym(rhs[0], i, j)
		}
		total := 0
		// Split point for the first symbol.
		for m := i; m <= j; m++ {
			first := countSym(rhs[0], i, m)
			if first == 0 {
				continue
			}
			rest := countSeq(rhs[1:], m, j)
			if rest == 0 {
				continue
			}
			total += first * rest
			if total > Cap {
				return Cap
			}
		}
		return total
	}

	return countSym(g.Start(), 0, n)
}

// Cap bounds CountParses results (mirrors the GLR side's cap).
const Cap = 1 << 30
