package earley_test

import (
	"math/rand"
	"testing"

	"iglr/internal/earley"
	"iglr/internal/grammar"
	"iglr/internal/iglr"
	"iglr/internal/lr"
)

func mk(t testing.TB, src string) (*grammar.Grammar, *earley.Parser, *iglr.Parser) {
	t.Helper()
	g, err := grammar.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := lr.Build(g, lr.Options{Method: lr.LALR})
	if err != nil {
		t.Fatal(err)
	}
	return g, earley.New(g), iglr.New(tbl)
}

func syms(t testing.TB, g *grammar.Grammar, names ...string) []grammar.Sym {
	t.Helper()
	out := make([]grammar.Sym, len(names))
	for i, n := range names {
		out[i] = g.Lookup(n)
		if out[i] == grammar.InvalidSym {
			t.Fatalf("unknown %q", n)
		}
	}
	return out
}

func TestRecognizeBasics(t *testing.T) {
	g, e, _ := mk(t, `
%token a b
%start S
S : a S b | ;
`)
	cases := []struct {
		in []string
		ok bool
	}{
		{nil, true},
		{[]string{"a", "b"}, true},
		{[]string{"a", "a", "b", "b"}, true},
		{[]string{"a", "b", "b"}, false},
		{[]string{"b", "a"}, false},
		{[]string{"a"}, false},
	}
	for _, c := range cases {
		if got := e.Recognize(syms(t, g, c.in...)); got != c.ok {
			t.Errorf("Recognize(%v) = %v, want %v", c.in, got, c.ok)
		}
	}
}

func TestCountCatalan(t *testing.T) {
	g, e, _ := mk(t, `
%token x
%start S
S : S S | x ;
`)
	want := []int{1, 1, 2, 5, 14, 42, 132}
	for n := 1; n <= 7; n++ {
		input := make([]grammar.Sym, n)
		for i := range input {
			input[i] = g.Lookup("x")
		}
		if got := e.CountParses(input); got != want[n-1] {
			t.Fatalf("CountParses(%d x) = %d, want %d", n, got, want[n-1])
		}
	}
}

func TestEpsilonHeavyGrammar(t *testing.T) {
	g, e, _ := mk(t, `
%token a
%start S
S : A A a ;
A : | a ;
`)
	// "a": A=ε A=ε a → 1 way; "aa": (a,ε),(ε,a) → 2; "aaa": (a,a) → 1.
	for _, c := range []struct {
		n, want int
	}{{1, 1}, {2, 2}, {3, 1}, {4, 0}, {0, 0}} {
		input := make([]grammar.Sym, c.n)
		for i := range input {
			input[i] = g.Lookup("a")
		}
		if got := e.CountParses(input); got != c.want {
			t.Fatalf("CountParses(%d a's) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestCrossValidateGLR is the oracle property: on random inputs over
// assorted grammars, Earley and the GLR parser agree on acceptance and on
// the number of parse trees.
func TestCrossValidateGLR(t *testing.T) {
	grammars := []struct {
		name, src string
		alphabet  []string
	}{
		{"catalan", "%token x\n%start S\nS : S S | x ;", []string{"x"}},
		{"expr", "%token id '+' '*'\n%start E\nE : E '+' E | E '*' E | id ;", []string{"id", "'+'", "'*'"}},
		{"matched", "%token a b\n%start S\nS : a S b | a b | S S ;", []string{"a", "b"}},
		{"lr2", "%token x z c e\n%start A\nA : B c | D e ;\nB : U z ;\nD : V z ;\nU : x ;\nV : x ;", []string{"x", "z", "c", "e"}},
		{"epsilon", "%token a b\n%start S\nS : A B ;\nA : a | ;\nB : b | ;", []string{"a", "b"}},
	}
	rng := rand.New(rand.NewSource(77))
	for _, gr := range grammars {
		t.Run(gr.name, func(t *testing.T) {
			g, e, glr := mk(t, gr.src)
			al := syms(t, g, gr.alphabet...)
			for iter := 0; iter < 120; iter++ {
				n := rng.Intn(9)
				input := make([]grammar.Sym, n)
				for i := range input {
					input[i] = al[rng.Intn(len(al))]
				}
				wantAccept := e.Recognize(input)
				root, err := glr.ParseSyms(input)
				gotAccept := err == nil
				if wantAccept != gotAccept {
					t.Fatalf("%v: earley=%v glr err=%v", names(g, input), wantAccept, err)
				}
				if !wantAccept {
					continue
				}
				wantCount := e.CountParses(input)
				gotCount := iglr.CountParses(root)
				if wantCount != gotCount {
					t.Fatalf("%v: earley count %d, glr count %d", names(g, input), wantCount, gotCount)
				}
			}
		})
	}
}

func names(g *grammar.Grammar, input []grammar.Sym) []string {
	out := make([]string, len(input))
	for i, s := range input {
		out[i] = g.Name(s)
	}
	return out
}

func TestWorkGrowsQuadraticallyOnAmbiguous(t *testing.T) {
	// The classic comparison (paper footnote 4): on near-LR grammars GLR
	// is linear while Earley's chart grows superlinearly on ambiguous
	// ones. Sanity-check the Items counter is populated and grows.
	g, e, _ := mk(t, "%token x\n%start S\nS : S S | x ;")
	x := g.Lookup("x")
	in8 := make([]grammar.Sym, 8)
	in32 := make([]grammar.Sym, 32)
	for i := range in8 {
		in8[i] = x
	}
	for i := range in32 {
		in32[i] = x
	}
	e.Recognize(in8)
	w8 := e.Items
	e.Recognize(in32)
	w32 := e.Items
	if w8 <= 0 || w32 <= w8*4 {
		t.Fatalf("chart work should grow superlinearly: %d → %d", w8, w32)
	}
}
