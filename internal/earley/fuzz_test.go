package earley_test

import (
	"testing"

	"iglr/internal/earley"
	"iglr/internal/grammar"
	"iglr/internal/iglr"
	"iglr/internal/langs"
	"iglr/internal/langs/csub"
	"iglr/internal/langs/expr"
	"iglr/internal/lexer"
)

// The Earley side bounds the input sizes: Recognize is fine into the tens
// of tokens, but CountParses is O(n³) with a map-backed memo and an
// ambiguous 25-token expression can pin a fuzz worker for seconds. Compare
// acceptance up to maxAcceptTokens and forest counts only up to
// maxCountTokens.
const (
	maxAcceptTokens = 48
	maxCountTokens  = 16
)

// lexOracle tokenizes src for l. ok is false when src does not lex cleanly
// (unmatched characters or tokens outside the grammar's terminal set) —
// those inputs exercise the lexer, not the parsers.
func lexOracle(l *langs.Language, src string) (syms []grammar.Sym, in []iglr.TerminalInput, ok bool) {
	for _, tok := range l.Spec.Scan(src) {
		if tok.Skip {
			continue
		}
		if tok.Type == lexer.ErrorType {
			return nil, nil, false
		}
		s := l.Map(tok.Type, tok.Text)
		if s == grammar.ErrorSym {
			return nil, nil, false
		}
		syms = append(syms, s)
		in = append(in, iglr.TerminalInput{Sym: s, Text: tok.Text})
	}
	return syms, in, len(syms) <= maxAcceptTokens
}

// FuzzParseOracle cross-checks the IGLR parser against the Earley oracle on
// fuzzed program text: both must agree on acceptance, and on accepted
// inputs the GLR forest's parse count must equal Earley's span-DP count.
// This is the correctness guard for the memory-layout refactor (arena node
// identity, dense tables, reused GSS structures): any divergence in the
// built forest shows up as a count mismatch.
func FuzzParseOracle(f *testing.F) {
	seeds := []struct {
		lang byte
		src  string
	}{
		{0, "a+b*c"},
		{0, "1+(2*3)/x-y"},
		{0, "((a))"},
		{0, "a+b+c+d+e"},
		{0, "a+*b"},
		{0, ")("},
		{1, "int x;"},
		{1, "typedef int T; T y;"},
		{1, "T * y;"},
		{1, "int f(int a, int b) { return a + b; }"},
		{1, "x = (y + 1);"},
		{1, "{ ; }"},
	}
	for _, s := range seeds {
		f.Add(s.lang, s.src)
	}

	exprLang := expr.AmbiguousLang()
	csubLang := csub.Lang()
	exprOracle := earley.New(exprLang.Grammar)
	csubOracle := earley.New(csubLang.Grammar)
	exprGLR := iglr.New(exprLang.Table)
	csubGLR := iglr.New(csubLang.Table)

	f.Fuzz(func(t *testing.T, lang byte, src string) {
		l, e, p := exprLang, exprOracle, exprGLR
		if lang%2 == 1 {
			l, e, p = csubLang, csubOracle, csubGLR
		}
		syms, in, ok := lexOracle(l, src)
		if !ok {
			return
		}
		wantAccept := e.Recognize(syms)
		root, err := p.ParseTerminals(in)
		if gotAccept := err == nil; gotAccept != wantAccept {
			t.Fatalf("%s %q: earley accept=%v, iglr err=%v", l.Name, src, wantAccept, err)
		}
		if !wantAccept || len(syms) > maxCountTokens {
			return
		}
		wantCount := e.CountParses(syms)
		gotCount := iglr.CountParses(root)
		if wantCount >= earley.Cap || gotCount >= iglr.Cap {
			return // both saturated their caps; exact comparison undefined
		}
		if wantCount != gotCount {
			t.Fatalf("%s %q: earley count %d, iglr count %d", l.Name, src, wantCount, gotCount)
		}
	})
}
