package experiments

import (
	"fmt"
	"strings"
	"time"

	"iglr/internal/iglr"
	"iglr/internal/langs"
	"iglr/internal/langs/cppsub"
	"iglr/internal/lr"
)

// §3.3 design choice: "LALR(1) tables are used to drive the parser: not
// only are they significantly smaller than LR(1) tables, but they also
// yield faster parsing speeds in non-deterministic regions [Lankhorst] and
// improved incremental reuse in deterministic regions (due to the merging
// of states with like cores)." This ablation builds the C++-subset tables
// both ways and measures all three observables.

// AblationResult compares LALR(1) and canonical LR(1) as IGLR drivers.
type AblationResult struct {
	LALRStates, LR1States       int
	LALRCells, LR1Cells         int // occupied action+goto entries
	LALRBytes, LR1Bytes         int // dense encoding's resident footprint
	LALRBatchNs, LR1BatchNs     float64
	LALRIncShifts, LR1IncShifts float64 // avg shifts per incremental reparse
	LALRIncNs, LR1IncNs         float64
}

// RunAblation measures the table-method comparison on the C++ subset over
// a program of the given line count with nEdits self-cancelling edits.
func RunAblation(lines, nEdits int) (AblationResult, error) {
	var res AblationResult

	// Build both table flavors for the same grammar/lexer.
	mk := func(method lr.Method) (*langs.Language, error) {
		b := &langs.Builder{
			Name:      fmt.Sprintf("cpp-%v", method),
			GramSrc:   cppsub.GrammarSrc,
			LexRules:  cppsub.LexRules(),
			IdentRule: "ID",
			Keywords:  cppsub.Keywords(),
			TokenSyms: cppsub.TokenSyms(),
			Options:   lr.Options{Method: method, PreferShift: true},
		}
		return buildLang(b)
	}
	lalr, err := mk(lr.LALR)
	if err != nil {
		return res, err
	}
	lr1, err := mk(lr.LR1)
	if err != nil {
		return res, err
	}
	res.LALRStates, res.LR1States = lalr.Table.NumStates(), lr1.Table.NumStates()
	a, g := lalr.Table.TableSize()
	res.LALRCells = a + g
	a, g = lr1.Table.TableSize()
	res.LR1Cells = a + g
	res.LALRBytes = lalr.Table.Footprint()
	res.LR1Bytes = lr1.Table.Footprint()

	// Workload: a C++-subset program with ambiguous regions to exercise
	// the non-deterministic paths under both tables.
	var sb strings.Builder
	sb.WriteString("typedef int t0;\n")
	for i := 0; sb.Len() < lines*16; i++ {
		fmt.Fprintf(&sb, "{ int v%d = %d; t0(amb%d); v%d = v%d + 1; }\n", i, i, i, i, i)
	}
	src := sb.String()

	measure := func(l *langs.Language) (batchNs, incNs, incShifts float64, err error) {
		d := l.NewDocument(src)
		p := iglr.New(l.Table)
		start := time.Now()
		root, err := p.Parse(d.Stream())
		if err != nil {
			return 0, 0, 0, err
		}
		batchNs = float64(time.Since(start).Nanoseconds())
		d.Commit(root)

		edits := editSites(src, nEdits)
		shifts := 0
		start = time.Now()
		count := 0
		for _, off := range edits {
			for _, repl := range []string{"9", src[off : off+1]} {
				d.Replace(off, 1, repl)
				root, err := p.Parse(d.Stream())
				if err != nil {
					return 0, 0, 0, err
				}
				shifts += p.Stats.Shifts
				d.Commit(root)
				count++
			}
		}
		incNs = float64(time.Since(start).Nanoseconds()) / float64(count)
		incShifts = float64(shifts) / float64(count)
		return batchNs, incNs, incShifts, nil
	}

	if res.LALRBatchNs, res.LALRIncNs, res.LALRIncShifts, err = measure(lalr); err != nil {
		return res, err
	}
	if res.LR1BatchNs, res.LR1IncNs, res.LR1IncShifts, err = measure(lr1); err != nil {
		return res, err
	}
	return res, nil
}

// editSites picks digit positions spread across the text.
func editSites(src string, n int) []int {
	var sites []int
	step := len(src) / (n + 1)
	for i := 1; i <= n; i++ {
		off := i * step
		for off < len(src) && (src[off] < '0' || src[off] > '9') {
			off++
		}
		if off < len(src) {
			sites = append(sites, off)
		}
	}
	return sites
}

// buildLang runs a Builder, returning the staged build error on failure.
func buildLang(b *langs.Builder) (*langs.Language, error) {
	return b.Build()
}

// FormatAblation renders the comparison.
func FormatAblation(r AblationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %12s %12s\n", "", "LALR(1)", "LR(1)")
	fmt.Fprintf(&b, "%-22s %12d %12d\n", "states", r.LALRStates, r.LR1States)
	fmt.Fprintf(&b, "%-22s %12d %12d\n", "table cells", r.LALRCells, r.LR1Cells)
	fmt.Fprintf(&b, "%-22s %12d %12d\n", "resident bytes", r.LALRBytes, r.LR1Bytes)
	fmt.Fprintf(&b, "%-22s %12.2f %12.2f\n", "batch parse (ms)", r.LALRBatchNs/1e6, r.LR1BatchNs/1e6)
	fmt.Fprintf(&b, "%-22s %12.0f %12.0f\n", "incremental (µs/re)", r.LALRIncNs/1e3, r.LR1IncNs/1e3)
	fmt.Fprintf(&b, "%-22s %12.1f %12.1f\n", "shifts per reparse", r.LALRIncShifts, r.LR1IncShifts)
	return b.String()
}
