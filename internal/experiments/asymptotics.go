package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"iglr/internal/dag"
	"iglr/internal/grammar"
	"iglr/internal/iglr"
	"iglr/internal/langs"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// §3.4: incremental behavior requires logarithmic node access. Repetitive
// structure expressed left-recursively makes parse trees linked lists, so
// incremental algorithms over them degenerate to linear time. Storing
// associative sequences as balanced binary trees restores O(t + s·lg N).
//
// The experiment measures both representations: per-edit reparse cost over
// a flat sequence of N statements, with the edit inside a single element.
//
//   - list: the committed tree keeps the generated left-recursive chain;
//     a full incremental IGLR reparse must re-shift every element after
//     the edit and re-run the chain reductions — Θ(N).
//   - balanced: the committed sequence is rebalanced (dag.Rebalance); the
//     edit reparses only the modified element (with a statement-level
//     parser) and splices it into the balanced sequence by path copying —
//     O(lg N).

// stmtLang parses a single statement (the element-level parser of the
// balanced fast path); it shares the surface syntax of DetLang.
var stmtLang = &langs.Builder{
	Name: "det-single-statement",
	GramSrc: `
%token ID NUM '=' ';' '+' '(' ')' INT
%start Stmt
Stmt : ID '=' Expr ';' ;
Expr : Expr '+' Term | Term ;
Term : ID | NUM | '(' Expr ')' ;
`,
	LexRules: []lexer.Rule{
		{Name: "WS", Pattern: `[ \t\n\r]+`, Skip: true},
		{Name: "ID", Pattern: `[a-zA-Z_][a-zA-Z0-9_]*`},
		{Name: "NUM", Pattern: `[0-9]+`},
		{Name: "EQ", Pattern: `=`},
		{Name: "SEMI", Pattern: `;`},
		{Name: "PLUS", Pattern: `\+`},
		{Name: "LP", Pattern: `\(`},
		{Name: "RP", Pattern: `\)`},
	},
	TokenSyms: map[string]string{
		"ID": "ID", "NUM": "NUM", "EQ": "'='", "SEMI": "';'", "PLUS": "'+'",
		"LP": "'('", "RP": "')'",
	},
	Options: lr.Options{Method: lr.LALR},
}

// seqLang is the whole-document language for the sequence experiment: a
// flat statement sequence.
var seqLang = &langs.Builder{
	Name: "det-stmt-sequence",
	GramSrc: `
%token ID NUM '=' ';' '+' '(' ')' INT
%start Prog
Prog : Stmt* ;
Stmt : ID '=' Expr ';' ;
Expr : Expr '+' Term | Term ;
Term : ID | NUM | '(' Expr ')' ;
`,
	LexRules:  stmtLang.LexRules,
	TokenSyms: stmtLang.TokenSyms,
	Options:   lr.Options{Method: lr.LALR},
}

func seqProgram(n int) string {
	var b strings.Builder
	b.Grow(n * 16)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "v%d = v%d + %d;\n", i, i, i%97)
	}
	return b.String()
}

// BalancedSeq is an editable balanced-sequence view of a parsed statement
// list: edits inside one element reparse only that element and splice it
// by path copying — the document-level realization of §3.4's balanced
// sequence representation.
type BalancedSeq struct {
	arena   *dag.Arena // shared by the sequence and all element reparses
	seqSym  grammar.Sym
	ed      *dag.SeqEditor
	root    *dag.Node // the balanced sequence
	stmtP   *iglr.Parser
	stmtDef *langs.Language
}

// NewBalancedSeq parses src (a statement sequence) and rebalances it.
func NewBalancedSeq(src string) (*BalancedSeq, error) {
	ul := seqLang.Lang()
	d := ul.NewDocument(src)
	p := iglr.New(ul.Table)
	root, err := p.Parse(d.Stream())
	if err != nil {
		return nil, err
	}
	g := ul.Grammar
	bal := dag.Rebalance(d.Arena(), g, root)
	// Locate the balanced sequence node (child of Prog).
	var seq *dag.Node
	bal.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindSeq && seq == nil {
			seq = n
		}
	})
	if seq == nil {
		return nil, fmt.Errorf("no sequence structure found")
	}
	sl := stmtLang.Lang()
	return &BalancedSeq{
		arena:   d.Arena(),
		seqSym:  seq.Sym,
		ed:      dag.NewSeqEditor(d.Arena(), seq.Sym),
		root:    seq,
		stmtP:   iglr.New(sl.Table),
		stmtDef: sl,
	}, nil
}

// Len returns the element count.
func (s *BalancedSeq) Len() int { return dag.SeqLen(s.root) }

// Depth returns the balanced-tree height.
func (s *BalancedSeq) Depth() int { return dag.SeqDepth(s.root) }

// Element returns statement i.
func (s *BalancedSeq) Element(i int) *dag.Node { return s.ed.Get(s.root, i) }

// ReplaceElement reparses newText as a single statement and splices it in
// place of element i. Cost: O(|newText| + lg N).
func (s *BalancedSeq) ReplaceElement(i int, newText string) error {
	// The element tree is spliced into the host sequence, so it must come
	// from the host arena — node IDs index shared scratch tables.
	d := s.stmtDef.NewDocumentInArena(s.arena, newText)
	node, err := s.stmtP.Parse(d.Stream())
	if err != nil {
		return err
	}
	s.root = s.ed.Replace(s.root, i, node)
	return nil
}

// Yield concatenates the sequence text (diagnostic; O(N)).
func (s *BalancedSeq) Yield() string {
	var b strings.Builder
	for _, e := range dag.SeqElementsFlat(s.root) {
		b.WriteString(e.Yield())
	}
	return b.String()
}

// AsymptoticsPoint is one measured size in the §3.4 experiment.
type AsymptoticsPoint struct {
	Statements int
	// List representation: full incremental IGLR reparse per edit.
	ListNsPerEdit     float64
	ListShiftsPerEdit float64
	// Balanced representation: element reparse + path-copy splice.
	BalancedNsPerEdit float64
	BalancedDepth     int
}

// RunAsymptotics measures both representations across sizes.
func RunAsymptotics(sizes []int, editsPer int) ([]AsymptoticsPoint, error) {
	var out []AsymptoticsPoint
	for _, n := range sizes {
		pt := AsymptoticsPoint{Statements: n}
		src := seqProgram(n)
		rng := rand.New(rand.NewSource(int64(n)))

		// List representation: IGLR incremental reparse of the document.
		ul := seqLang.Lang()
		d := ul.NewDocument(src)
		p := iglr.New(ul.Table)
		root, err := p.Parse(d.Stream())
		if err != nil {
			return nil, err
		}
		d.Commit(root)
		totalShifts := 0
		start := time.Now()
		for e := 0; e < editsPer; e++ {
			// Replace the numeric literal of a random statement.
			i := rng.Intn(n)
			off := strings.Index(src, fmt.Sprintf("v%d = v%d + ", i, i))
			off += len(fmt.Sprintf("v%d = v%d + ", i, i))
			d.Replace(off, 1, "8")
			root, err := p.Parse(d.Stream())
			if err != nil {
				return nil, err
			}
			totalShifts += p.Stats.Shifts
			d.Commit(root)
			d.Replace(off, 1, fmt.Sprintf("%d", (i%97)/10)) // restore-ish (single digit)
			root, err = p.Parse(d.Stream())
			if err != nil {
				return nil, err
			}
			totalShifts += p.Stats.Shifts
			d.Commit(root)
		}
		el := time.Since(start)
		pt.ListNsPerEdit = float64(el.Nanoseconds()) / float64(2*editsPer)
		pt.ListShiftsPerEdit = float64(totalShifts) / float64(2*editsPer)

		// Balanced representation.
		bs, err := NewBalancedSeq(src)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		for e := 0; e < 2*editsPer; e++ {
			i := rng.Intn(n)
			if err := bs.ReplaceElement(i, fmt.Sprintf("v%d = v%d + 8;", i, i)); err != nil {
				return nil, err
			}
		}
		el = time.Since(start)
		pt.BalancedNsPerEdit = float64(el.Nanoseconds()) / float64(2*editsPer)
		pt.BalancedDepth = bs.Depth()
		out = append(out, pt)
	}
	return out, nil
}

// FormatAsymptotics renders the series.
func FormatAsymptotics(pts []AsymptoticsPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %16s %16s %16s %6s\n",
		"stmts", "list ns/edit", "list shifts", "balanced ns", "depth")
	for _, p := range pts {
		fmt.Fprintf(&b, "%10d %16.0f %16.1f %16.0f %6d\n",
			p.Statements, p.ListNsPerEdit, p.ListShiftsPerEdit, p.BalancedNsPerEdit, p.BalancedDepth)
	}
	return b.String()
}
