package experiments

import (
	"fmt"
	"strings"
	"time"

	"iglr/internal/earley"
	"iglr/internal/grammar"
	"iglr/internal/iglr"
)

// Footnote 4 of the paper: Tomita [22] and Rekers [20] compared batch GLR
// parsing against Earley's algorithm on natural- and programming-language
// grammars and concluded that practical grammars are close to LR(1), where
// GLR parsing is linear despite its exponential worst case. This
// experiment reproduces that comparison on the deterministic statement
// grammar: GLR cost per token stays flat with input size while Earley's
// chart work per token grows.

// EarleyPoint is one input size in the comparison.
type EarleyPoint struct {
	Tokens         int
	GLRNsPerTok    float64
	EarleyNsPerTok float64
	// EarleyItemsPerTok is Earley's chart-work measure.
	EarleyItemsPerTok float64
	Speedup           float64
}

// RunEarleyComparison measures both parsers over growing programs.
func RunEarleyComparison(sizes []int) ([]EarleyPoint, error) {
	l := DetLang()
	e := earley.New(l.Grammar)

	var out []EarleyPoint
	for _, n := range sizes {
		src := detProgram(n)
		d := l.NewDocument(src)
		terms := d.Terminals()
		input := make([]grammar.Sym, len(terms))
		for i, t := range terms {
			input[i] = t.Sym
		}
		pt := EarleyPoint{Tokens: len(input)}

		const reps = 3
		glrBest := time.Duration(1 << 62)
		for r := 0; r < reps; r++ {
			dd := l.NewDocument(src)
			p := iglr.New(l.Table)
			start := time.Now()
			if _, err := p.Parse(dd.Stream()); err != nil {
				return nil, err
			}
			if el := time.Since(start); el < glrBest {
				glrBest = el
			}
		}
		pt.GLRNsPerTok = float64(glrBest.Nanoseconds()) / float64(len(input))

		earleyBest := time.Duration(1 << 62)
		for r := 0; r < reps; r++ {
			start := time.Now()
			if !e.Recognize(input) {
				return nil, fmt.Errorf("earley rejected a valid program")
			}
			if el := time.Since(start); el < earleyBest {
				earleyBest = el
			}
		}
		pt.EarleyNsPerTok = float64(earleyBest.Nanoseconds()) / float64(len(input))
		pt.EarleyItemsPerTok = float64(e.Items) / float64(len(input))
		pt.Speedup = pt.EarleyNsPerTok / pt.GLRNsPerTok
		out = append(out, pt)
	}
	return out, nil
}

// FormatEarleyComparison renders the series.
func FormatEarleyComparison(pts []EarleyPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%10s %14s %16s %14s %10s\n",
		"tokens", "GLR ns/tok", "Earley ns/tok", "items/tok", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%10d %14.0f %16.0f %14.1f %10.1fx\n",
			p.Tokens, p.GLRNsPerTok, p.EarleyNsPerTok, p.EarleyItemsPerTok, p.Speedup)
	}
	return b.String()
}
