package experiments

import (
	"strings"
	"testing"
)

func TestTable1Scaled(t *testing.T) {
	rows, err := Table1(0.02) // 2% of paper sizes keeps the test fast
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Unresolved != 0 {
			t.Fatalf("%s: %d unresolved ambiguities; generator promises typedef-resolvable ones", r.Name, r.Unresolved)
		}
		if r.ResolvedDecl != r.Ambiguous {
			t.Fatalf("%s: resolved %d of %d", r.Name, r.ResolvedDecl, r.Ambiguous)
		}
		// The paper's headline: explicit ambiguity costs well under ~1.2%.
		if r.MeasuredPct > 1.3 {
			t.Fatalf("%s: overhead %.3f%% out of the paper's range", r.Name, r.MeasuredPct)
		}
	}
	s := FormatTable1(rows)
	if !strings.Contains(s, "gcc") {
		t.Fatalf("format:\n%s", s)
	}
}

func TestTable1OverheadTracksDensity(t *testing.T) {
	rows, err := Table1(0.02)
	if err != nil {
		t.Fatal(err)
	}
	// Programs with a zero paper column should measure (near) zero, and
	// the densest (ghostscript 0.52) should measure the most among C
	// programs of its size class.
	var zero, dense float64
	for _, r := range rows {
		switch r.Name {
		case "go":
			zero = r.MeasuredPct
		case "ghostscript-3.33":
			dense = r.MeasuredPct
		}
	}
	if zero != 0 {
		t.Fatalf("go should have zero ambiguity overhead, got %f", zero)
	}
	if dense <= zero {
		t.Fatalf("ghostscript (%.3f) should exceed go (%.3f)", dense, zero)
	}
}

func TestFigure4Small(t *testing.T) {
	res, err := Figure4(40, 300)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range res.Bins {
		total += b.Files
	}
	if total != 40 {
		t.Fatalf("binned files = %d", total)
	}
	if res.Bins[0].Files == 0 {
		t.Fatal("expected a mass of unambiguous files in the first bin (gcc's shape)")
	}
	if res.MeanPct > 1.2 {
		t.Fatalf("mean %.3f%% out of range", res.MeanPct)
	}
	if FormatFigure4(res) == "" {
		t.Fatal("empty format")
	}
}

func TestSection5BatchShape(t *testing.T) {
	// The paper's shape: IGLR batch cost is close to deterministic (1.25x
	// in their system) — allow generous slack for a noisy test machine,
	// and take the best of a few samples: the suite runs packages in
	// parallel, and a single scheduler stall skews one wall-clock ratio.
	var last float64
	for attempt := 0; attempt < 3; attempt++ {
		r, err := RunSection5Batch(2500, 4)
		if err != nil {
			t.Fatal(err)
		}
		if r.Tokens == 0 || r.DetNsPerTok <= 0 || r.IGLRNsPerTok <= 0 {
			t.Fatalf("result = %+v", r)
		}
		if r.Ratio <= 3.5 && r.Ratio >= 0.4 {
			return
		}
		last = r.Ratio
	}
	t.Fatalf("IGLR/det ratio %.2f wildly off in every sample", last)
}

func TestSection5IncrementalShape(t *testing.T) {
	r, err := RunSection5Incremental(600, 12)
	if err != nil {
		t.Fatal(err)
	}
	// Shape: reparse work is far below the program size. Wall-clock ratios
	// at this scale are microseconds and a single GC pause swamps them, so
	// the time bound is only a sanity ceiling; cmd/paperbench measures the
	// ratio at a scale where it is stable (~1.2-1.3).
	if r.Ratio > 10 || r.Ratio <= 0 {
		t.Fatalf("incremental ratio %.2f", r.Ratio)
	}
	if r.IGLRShiftsPerRe > float64(r.Statements) {
		t.Fatalf("shifts per reparse %.0f not sublinear", r.IGLRShiftsPerRe)
	}
}

func TestSection5Space(t *testing.T) {
	r, err := RunSection5Space(400)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeCountRatio != 1.0 {
		t.Fatalf("node parity broken: %+v", r)
	}
	if r.StatePct <= 0 || r.StatePct > 30 {
		t.Fatalf("state share %.1f%%", r.StatePct)
	}
}

func TestSection5Ambiguity(t *testing.T) {
	r, err := RunSection5Ambiguity(1500, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The paper: well under 1% additional reconstruction time. Wall time
	// is too noisy at test scale, so assert on the deterministic parser
	// work counters: the edits land outside the ambiguous regions, so the
	// extra work should be a few percent at most.
	if r.WorkOverheadPct > 25 {
		t.Fatalf("ambiguity work overhead %.1f%% is not small: %+v", r.WorkOverheadPct, r)
	}
	if r.Ambiguous == 0 {
		t.Fatal("no ambiguous constructs generated")
	}
}

func TestAsymptoticsShape(t *testing.T) {
	pts, err := RunAsymptotics([]int{200, 800, 3200}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatal("points missing")
	}
	// List work grows linearly with N…
	growth := pts[2].ListShiftsPerEdit / pts[0].ListShiftsPerEdit
	if growth < 4 {
		t.Fatalf("list shifts should grow ~16x over a 16x size range, got %.1fx", growth)
	}
	// …while the balanced depth grows logarithmically.
	if pts[2].BalancedDepth > 4*pts[0].BalancedDepth {
		t.Fatalf("balanced depth not logarithmic: %d vs %d",
			pts[2].BalancedDepth, pts[0].BalancedDepth)
	}
	if FormatAsymptotics(pts) == "" {
		t.Fatal("empty format")
	}
}

func TestBalancedSeqEditing(t *testing.T) {
	bs, err := NewBalancedSeq(seqProgram(100))
	if err != nil {
		t.Fatal(err)
	}
	if bs.Len() != 100 {
		t.Fatalf("len = %d", bs.Len())
	}
	if err := bs.ReplaceElement(50, "v50 = v50 + 777;"); err != nil {
		t.Fatal(err)
	}
	if got := bs.Element(50).Yield(); got != "v50=v50+777;" {
		t.Fatalf("element 50 = %q", got)
	}
	if bs.Element(49).Yield() != "v49=v49+49;" {
		t.Fatalf("neighbor disturbed: %q", bs.Element(49).Yield())
	}
	if err := bs.ReplaceElement(0, "x = ;"); err == nil {
		t.Fatal("invalid element text must fail to parse")
	}
}

func TestFilterStagingShape(t *testing.T) {
	pts, err := RunFilterStaging([]int{4, 8, 16}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.DynamicNodes <= p.StaticNodes {
			t.Fatalf("k=%d: dynamic dag (%d) should exceed static (%d)",
				p.Operands, p.DynamicNodes, p.StaticNodes)
		}
	}
	// Dynamic node growth must be superlinear (quadratic-ish) while
	// static stays linear.
	dynGrowth := float64(pts[2].DynamicNodes) / float64(pts[0].DynamicNodes)
	statGrowth := float64(pts[2].StaticNodes) / float64(pts[0].StaticNodes)
	if dynGrowth < 1.5*statGrowth {
		t.Fatalf("dynamic growth %.1fx should outpace static %.1fx", dynGrowth, statGrowth)
	}
	if FormatFilterStaging(pts) == "" {
		t.Fatal("empty format")
	}
}

func TestAblationShape(t *testing.T) {
	r, err := RunAblation(800, 6)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claims: LR(1) tables are much larger…
	if r.LR1States <= r.LALRStates || r.LR1Cells <= r.LALRCells {
		t.Fatalf("LR(1) should be larger: %+v", r)
	}
	// …while both drive the same parses; incremental work is comparable
	// (LALR no worse than a small factor).
	if r.LALRIncShifts > 2*r.LR1IncShifts+10 {
		t.Fatalf("LALR incremental reuse should not be worse: %+v", r)
	}
}

func TestEarleyComparisonShape(t *testing.T) {
	pts, err := RunEarleyComparison([]int{1000, 4000})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.Speedup < 1 {
			t.Fatalf("GLR should beat Earley on a deterministic grammar: %+v", p)
		}
	}
	if FormatEarleyComparison(pts) == "" {
		t.Fatal("empty format")
	}
}

func TestFigure7Experiment(t *testing.T) {
	r, err := RunFigure7()
	if err != nil {
		t.Fatal(err)
	}
	if r.Parses != 1 || r.MaxParsers < 2 {
		t.Fatalf("result = %+v", r)
	}
	found := false
	for _, n := range r.MultiStateNodes {
		if n == "B" || n == "U" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected B/U among multi-state nodes: %v", r.MultiStateNodes)
	}
	if FormatFigure7(r) == "" {
		t.Fatal("empty format")
	}
}
