package experiments

import (
	"fmt"
	"strings"

	"iglr/internal/corpus"
)

// Figure4Bin is one histogram bucket of the per-file ambiguity
// distribution (paper Figure 4: gcc source files grouped by their space
// increase over a parse tree).
type Figure4Bin struct {
	LoPct, HiPct float64
	Files        int
}

// Figure4Result is the measured distribution.
type Figure4Result struct {
	Bins     []Figure4Bin
	Files    int
	MeanPct  float64
	MaxPct   float64
	ZeroAmbi int // files with no ambiguity at all
}

// Figure4 reproduces the per-file histogram: a gcc-sized corpus is
// generated as nFiles source files with a skewed ambiguity-density
// distribution (most files have little or no ambiguity, a few are
// header-heavy), each file is parsed and measured, and the space
// overheads are binned exactly as the paper's x-axis (0–1.2%, 0.1 steps).
func Figure4(nFiles int, linesPerFile int) (Figure4Result, error) {
	res := Figure4Result{Files: nFiles}
	const binW = 0.1
	nbins := 13
	res.Bins = make([]Figure4Bin, nbins)
	for i := range res.Bins {
		res.Bins[i] = Figure4Bin{LoPct: float64(i) * binW, HiPct: float64(i+1) * binW}
	}
	sum := 0.0
	for f := 0; f < nFiles; f++ {
		// Skewed density: file rank decides how ambiguity-prone it is
		// (most gcc files have none; a long tail reaches ~1.2%).
		density := 0.0
		switch {
		case f%2 == 0: // half the files: none
		case f%7 == 1:
			density = 22 // heavy tail
		case f%3 == 1:
			density = 9
		default:
			density = 3
		}
		spec := corpus.Spec{
			Name:             fmt.Sprintf("gcc-file-%d", f),
			Lines:            linesPerFile,
			Lang:             "c",
			AmbiguousPerKLoC: density,
			Seed:             int64(1000 + f),
		}
		row, err := MeasureProgram(spec)
		if err != nil {
			return res, err
		}
		pct := row.MeasuredPct
		sum += pct
		if pct > res.MaxPct {
			res.MaxPct = pct
		}
		if row.Ambiguous == 0 {
			res.ZeroAmbi++
		}
		bin := int(pct / binW)
		if bin >= nbins {
			bin = nbins - 1
		}
		res.Bins[bin].Files++
	}
	res.MeanPct = sum / float64(nFiles)
	return res, nil
}

// FormatFigure4 renders the histogram as rows of "lo–hi%: count".
func FormatFigure4(r Figure4Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "files=%d mean=%.3f%% max=%.3f%% unambiguous=%d\n",
		r.Files, r.MeanPct, r.MaxPct, r.ZeroAmbi)
	for _, bin := range r.Bins {
		bar := strings.Repeat("#", bin.Files)
		fmt.Fprintf(&b, "%4.1f–%4.1f%% %4d %s\n", bin.LoPct, bin.HiPct, bin.Files, bar)
	}
	return b.String()
}
