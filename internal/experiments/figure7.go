package experiments

import (
	"fmt"
	"strings"

	"iglr/internal/dag"
	"iglr/internal/iglr"
	"iglr/internal/langs/lr2"
)

// Figure7Result reports the dynamic-lookahead experiment (paper Figures 5
// and 7): the LR(2) grammar parsed with LALR(1) tables by forking, with
// the extra-lookahead nodes recorded in the MultiState equivalence class.
type Figure7Result struct {
	Input           string
	Parses          int
	MaxParsers      int
	MultiStateNodes []string
	DetNodes        []string
	// ReuseAfterEdit: after changing the decisive terminal (c→e), how many
	// terminals the incremental reparse shifted (the non-deterministic
	// region is reconstructed atomically).
	ReuseAfterEdit iglr.Stats
}

// RunFigure7 parses "x z c", inspects the recorded states, then flips the
// final terminal to "e" and reparses incrementally.
func RunFigure7() (Figure7Result, error) {
	l := lr2.Lang()
	d := l.NewDocument("x z c")
	p := iglr.New(l.Table)
	root, err := p.Parse(d.Stream())
	if err != nil {
		return Figure7Result{}, err
	}
	d.Commit(root)
	res := Figure7Result{
		Input:      "x z c",
		Parses:     iglr.CountParses(root),
		MaxParsers: p.Stats.MaxActiveParsers,
	}
	root.Walk(func(n *dag.Node) {
		if n.Kind != dag.KindProduction {
			return
		}
		name := l.Grammar.Name(n.Sym)
		if n.State == dag.MultiState {
			res.MultiStateNodes = append(res.MultiStateNodes, name)
		} else {
			res.DetNodes = append(res.DetNodes, name)
		}
	})

	// Flip c → e: the region that consumed dynamic lookahead must be
	// reconstructed (its nodes are in the MultiState class), and the
	// parse now selects the D/V interpretation.
	d.Replace(4, 1, "e")
	root2, err := p.Parse(d.Stream())
	if err != nil {
		return res, err
	}
	d.Commit(root2)
	res.ReuseAfterEdit = p.Stats
	hasD := false
	root2.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && l.Grammar.Name(n.Sym) == "D" {
			hasD = true
		}
	})
	if !hasD {
		return res, fmt.Errorf("reparse did not select the D interpretation")
	}
	return res, nil
}

// FormatFigure7 renders the result.
func FormatFigure7(r Figure7Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "input %q: %d parse(s), %d simultaneous parsers\n",
		r.Input, r.Parses, r.MaxParsers)
	fmt.Fprintf(&b, "multi-state (extra lookahead) nodes: %s\n", strings.Join(r.MultiStateNodes, " "))
	fmt.Fprintf(&b, "deterministic nodes: %s\n", strings.Join(r.DetNodes, " "))
	fmt.Fprintf(&b, "after c→e edit: %d terminal shifts, %d subtree shifts\n",
		r.ReuseAfterEdit.TerminalShifts, r.ReuseAfterEdit.SubtreeShifts)
	return b.String()
}
