package experiments

import (
	"fmt"
	"strings"
	"time"

	"iglr/internal/dag"
	"iglr/internal/disambig"
	"iglr/internal/iglr"
	"iglr/internal/langs/expr"
)

// §4.1: encoding as much filtering as possible at language-specification
// time decreases both representation size and analysis time. Batch GLR
// environments that filter dynamically pay quadratic space per expression;
// static precedence filters make the same expressions deterministic.
//
// The experiment parses k-operand expressions both ways and reports dag
// size and parse time: static stays linear in k, dynamic grows
// quadratically before filtering.

// FilterStagingPoint is one expression size.
type FilterStagingPoint struct {
	Operands     int
	StaticNodes  int
	DynamicNodes int
	StaticNs     float64
	DynamicNs    float64
	// ParsesBeforeFilter is the retained-forest size (capped).
	ParsesBeforeFilter int
	// NodesAfterFilter is the dynamic dag after operator filtering.
	NodesAfterFilter int
}

// RunFilterStaging measures the staging comparison for each k.
func RunFilterStaging(ks []int, reps int) ([]FilterStagingPoint, error) {
	static := expr.Lang()
	dynamic := expr.AmbiguousLang()
	ops := disambig.Operators{Prec: map[string]int{"+": 1, "-": 1, "*": 2, "/": 2}}

	var out []FilterStagingPoint
	for _, k := range ks {
		var sb strings.Builder
		sb.WriteString("x0")
		for i := 1; i < k; i++ {
			op := "+"
			if i%2 == 1 {
				op = "*"
			}
			fmt.Fprintf(&sb, "%sx%d", op, i)
		}
		src := sb.String()
		pt := FilterStagingPoint{Operands: k}

		best := time.Duration(1 << 62)
		for r := 0; r < reps; r++ {
			d := static.NewDocument(src)
			p := iglr.New(static.Table)
			start := time.Now()
			root, err := p.Parse(d.Stream())
			if err != nil {
				return nil, err
			}
			if el := time.Since(start); el < best {
				best = el
			}
			pt.StaticNodes = dag.Measure(root).DagNodes
		}
		pt.StaticNs = float64(best.Nanoseconds())

		best = time.Duration(1 << 62)
		for r := 0; r < reps; r++ {
			d := dynamic.NewDocument(src)
			p := iglr.New(dynamic.Table)
			start := time.Now()
			root, err := p.Parse(d.Stream())
			if err != nil {
				return nil, err
			}
			if el := time.Since(start); el < best {
				best = el
			}
			pt.DynamicNodes = dag.Measure(root).DagNodes
			pt.ParsesBeforeFilter = iglr.CountParses(root)
			filtered, _ := disambig.Apply(root, ops.Filter())
			pt.NodesAfterFilter = dag.Measure(filtered).DagNodes
		}
		pt.DynamicNs = float64(best.Nanoseconds())
		out = append(out, pt)
	}
	return out, nil
}

// FormatFilterStaging renders the series.
func FormatFilterStaging(pts []FilterStagingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%8s %12s %12s %10s %12s %12s %12s\n",
		"operands", "static nodes", "dyn nodes", "forest", "static ns", "dyn ns", "filtered")
	for _, p := range pts {
		fmt.Fprintf(&b, "%8d %12d %12d %10d %12.0f %12.0f %12d\n",
			p.Operands, p.StaticNodes, p.DynamicNodes, p.ParsesBeforeFilter,
			p.StaticNs, p.DynamicNs, p.NodesAfterFilter)
	}
	return b.String()
}
