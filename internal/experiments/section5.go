package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"iglr/internal/corpus"
	"iglr/internal/dag"
	"iglr/internal/detparse"
	"iglr/internal/document"
	"iglr/internal/iglr"
	"iglr/internal/langs"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// detLang is a deterministic statement language used for the §5
// comparisons (the paper removed the typedef ambiguity artificially to
// compare the parsers on identical deterministic input).
var detLang = &langs.Builder{
	Name: "det-statements",
	GramSrc: `
%token ID NUM '=' ';' '+' '(' ')' '{' '}' INT
%start Prog
Prog : Item* ;
Item : Stmt | Block | Decl ;
Block : '{' Item* '}' ;
Decl : INT ID ';' | INT ID '=' Expr ';' ;
Stmt : ID '=' Expr ';' ;
Expr : Expr '+' Term | Term ;
Term : ID | NUM | '(' Expr ')' ;
`,
	LexRules: []lexer.Rule{
		{Name: "WS", Pattern: `[ \t\n\r]+`, Skip: true},
		{Name: "COMMENT", Pattern: `//[^\n]*`, Skip: true},
		{Name: "ID", Pattern: `[a-zA-Z_][a-zA-Z0-9_]*`},
		{Name: "NUM", Pattern: `[0-9]+`},
		{Name: "EQ", Pattern: `=`},
		{Name: "SEMI", Pattern: `;`},
		{Name: "PLUS", Pattern: `\+`},
		{Name: "LP", Pattern: `\(`},
		{Name: "RP", Pattern: `\)`},
		{Name: "LB", Pattern: `\{`},
		{Name: "RB", Pattern: `\}`},
	},
	IdentRule: "ID",
	Keywords:  map[string]string{"int": "INT"},
	TokenSyms: map[string]string{
		"ID": "ID", "NUM": "NUM", "EQ": "'='", "SEMI": "';'", "PLUS": "'+'",
		"LP": "'('", "RP": "')'", "LB": "'{'", "RB": "'}'",
	},
	Options: lr.Options{Method: lr.LALR},
}

// DetLang exposes the deterministic comparison language.
func DetLang() *langs.Language { return detLang.Lang() }

// detProgram emits a deterministic block-structured program with about n
// statements. Block structure matters for the incremental comparisons:
// like real C code, an edit inside one block leaves the other blocks
// reusable whole.
func detProgram(n int) string {
	var b strings.Builder
	b.Grow(n * 20)
	b.WriteString("int v0 = 0;\n")
	const blockLen = 12
	for i := 1; i < n; i++ {
		if i%blockLen == 1 {
			b.WriteString("{\n")
		}
		switch i % 4 {
		case 0:
			fmt.Fprintf(&b, "int v%d = %d;\n", i, i)
		case 1:
			fmt.Fprintf(&b, "v%d = v%d + %d;\n", i-1, i-1, i)
		case 2:
			fmt.Fprintf(&b, "v%d = (v%d + v%d) + %d;\n", i-1, i-1, i-1, i)
		default:
			fmt.Fprintf(&b, "int w%d;\n", i)
		}
		if i%blockLen == 0 || i == n-1 {
			b.WriteString("}\n")
		}
	}
	return b.String()
}

// Section5Batch compares batch parse cost of the deterministic
// state-matching parser and the IGLR parser on identical deterministic
// input. The paper reports 12% vs 15% of total analysis time spent in
// parsing per se; the reproducible observable is the per-token cost ratio
// IGLR/deterministic, expected a little above 1.
type Section5Batch struct {
	Tokens        int
	DetNsPerTok   float64
	IGLRNsPerTok  float64
	Ratio         float64
	LexNsPerTok   float64 // the non-parsing share of the pipeline
	DetShare      float64 // parse share of (lex+parse), deterministic
	IGLRShare     float64 // parse share of (lex+parse), IGLR
	PaperDetShare float64
	PaperGLRShare float64
}

// RunSection5Batch measures the batch comparison over a program with n
// statements, repeating reps times and keeping the best (least-noise) run.
func RunSection5Batch(n, reps int) (Section5Batch, error) {
	l := DetLang()
	src := detProgram(n)

	var out Section5Batch
	out.PaperDetShare, out.PaperGLRShare = 0.12, 0.15

	lexBest := time.Duration(1 << 62)
	for r := 0; r < reps; r++ {
		start := time.Now()
		toks := l.Spec.Scan(src)
		el := time.Since(start)
		if el < lexBest {
			lexBest = el
		}
		out.Tokens = len(toks)
	}

	detBest := time.Duration(1 << 62)
	for r := 0; r < reps; r++ {
		d := l.NewDocument(src)
		p, err := detparse.New(l.Table)
		if err != nil {
			return out, err
		}
		start := time.Now()
		if _, err := p.Parse(d.Stream()); err != nil {
			return out, err
		}
		if el := time.Since(start); el < detBest {
			detBest = el
		}
	}

	iglrBest := time.Duration(1 << 62)
	for r := 0; r < reps; r++ {
		d := l.NewDocument(src)
		p := iglr.New(l.Table)
		start := time.Now()
		if _, err := p.Parse(d.Stream()); err != nil {
			return out, err
		}
		if el := time.Since(start); el < iglrBest {
			iglrBest = el
		}
	}

	tokens := float64(out.Tokens)
	out.LexNsPerTok = float64(lexBest.Nanoseconds()) / tokens
	out.DetNsPerTok = float64(detBest.Nanoseconds()) / tokens
	out.IGLRNsPerTok = float64(iglrBest.Nanoseconds()) / tokens
	out.Ratio = out.IGLRNsPerTok / out.DetNsPerTok
	out.DetShare = out.DetNsPerTok / (out.DetNsPerTok + out.LexNsPerTok)
	out.IGLRShare = out.IGLRNsPerTok / (out.IGLRNsPerTok + out.LexNsPerTok)
	return out, nil
}

// Section5Incremental compares incremental reparse cost after
// self-cancelling single-token modifications — the paper's incremental
// test, where "the difference in running times for the two parsers was
// undetectable".
type Section5Incremental struct {
	Statements  int
	Edits       int
	DetNsPerRe  float64
	IGLRNsPerRe float64
	Ratio       float64
	// IGLRShiftsPerRe is the average shift count per reparse — the
	// sublinear work measure.
	IGLRShiftsPerRe float64
}

// RunSection5Incremental runs nEdits self-cancelling edit pairs over a
// program with n statements under both parsers.
func RunSection5Incremental(n, nEdits int) (Section5Incremental, error) {
	l := DetLang()
	src := detProgram(n)
	pairs := corpus.SelfCancellingEdits(src, nEdits, 7)
	out := Section5Incremental{Statements: n, Edits: len(pairs) * 2}

	run := func(parse func(d *document.Document) error, d *document.Document) (time.Duration, error) {
		var total time.Duration
		for _, pair := range pairs {
			for _, e := range pair {
				d.Replace(e.Offset, e.Removed, e.Inserted)
				start := time.Now()
				if err := parse(d); err != nil {
					return 0, err
				}
				total += time.Since(start)
			}
		}
		return total, nil
	}

	// Deterministic parser.
	dDet := l.NewDocument(src)
	det, err := detparse.New(l.Table)
	if err != nil {
		return out, err
	}
	commitDet := func(d *document.Document) error {
		root, err := det.Parse(d.Stream())
		if err != nil {
			return err
		}
		d.Commit(root)
		return nil
	}
	if err := commitDet(dDet); err != nil {
		return out, err
	}
	detTotal, err := run(commitDet, dDet)
	if err != nil {
		return out, err
	}

	// IGLR parser.
	dGLR := l.NewDocument(src)
	glr := iglr.New(l.Table)
	shifts := 0
	commitGLR := func(d *document.Document) error {
		root, err := glr.Parse(d.Stream())
		if err != nil {
			return err
		}
		shifts += glr.Stats.Shifts
		d.Commit(root)
		return nil
	}
	if err := commitGLR(dGLR); err != nil {
		return out, err
	}
	shifts = 0
	glrTotal, err := run(commitGLR, dGLR)
	if err != nil {
		return out, err
	}

	re := float64(out.Edits)
	out.DetNsPerRe = float64(detTotal.Nanoseconds()) / re
	out.IGLRNsPerRe = float64(glrTotal.Nanoseconds()) / re
	out.Ratio = out.IGLRNsPerRe / out.DetNsPerRe
	out.IGLRShiftsPerRe = float64(shifts) / re
	return out, nil
}

// Section5Space reports the per-node storage comparison: the paper
// measures ~5% extra space for the explicit parse states that
// state-matching requires, relative to a sentential-form parser's nodes.
type Section5Space struct {
	NodeBytes      uintptr
	StateBytes     uintptr
	StatePct       float64
	PaperPct       float64
	DagNodes       int
	DetNodes       int
	NodeCountRatio float64
}

// RunSection5Space measures node-count parity between the parsers on
// deterministic input and the state-field share of node storage.
func RunSection5Space(n int) (Section5Space, error) {
	l := DetLang()
	src := detProgram(n)

	d1 := l.NewDocument(src)
	p1 := iglr.New(l.Table)
	root1, err := p1.Parse(d1.Stream())
	if err != nil {
		return Section5Space{}, err
	}
	d2 := l.NewDocument(src)
	p2, err := detparse.New(l.Table)
	if err != nil {
		return Section5Space{}, err
	}
	root2, err := p2.Parse(d2.Stream())
	if err != nil {
		return Section5Space{}, err
	}

	nodeT := reflect.TypeOf(dag.Node{})
	stateF, _ := nodeT.FieldByName("State")
	out := Section5Space{
		NodeBytes:  nodeT.Size(),
		StateBytes: stateF.Type.Size(),
		PaperPct:   5.0,
		DagNodes:   dag.Measure(root1).DagNodes,
		DetNodes:   dag.Measure(root2).DagNodes,
	}
	out.StatePct = 100 * float64(out.StateBytes) / float64(out.NodeBytes)
	out.NodeCountRatio = float64(out.DagNodes) / float64(out.DetNodes)
	return out, nil
}

// Section5Ambiguity measures the incremental cost of carrying ambiguous
// regions: identical edit scripts over a program with ambiguous constructs
// and the same program with none. The paper reports well under 1% extra
// reconstruction time.
type Section5Ambiguity struct {
	Lines        int
	Ambiguous    int
	PlainNsPerRe float64
	AmbNsPerRe   float64
	OverheadPct  float64
	// Work counters (shifts+reductions+breakdowns per reparse) — the
	// deterministic observable, free of timer noise.
	PlainWorkPerRe  float64
	AmbWorkPerRe    float64
	WorkOverheadPct float64
}

// RunSection5Ambiguity runs the comparison at the given size with nEdits
// self-cancelling pairs applied outside the ambiguous regions.
func RunSection5Ambiguity(lines, nEdits int) (Section5Ambiguity, error) {
	run := func(density float64, seed int64) (ns, work float64, amb int, err error) {
		spec := corpus.Spec{Name: "amb", Lines: lines, Lang: "c",
			AmbiguousPerKLoC: density, Seed: seed}
		src, amb := corpus.Generate(spec)
		l := LangFor(spec)
		d := l.NewDocument(src)
		p := iglr.New(l.Table)
		root, err := p.Parse(d.Stream())
		if err != nil {
			return 0, 0, 0, err
		}
		d.Commit(root)
		pairs := corpus.SelfCancellingEdits(src, nEdits, 11)
		start := time.Now()
		count, totalWork := 0, 0
		for _, pair := range pairs {
			for _, e := range pair {
				d.Replace(e.Offset, e.Removed, e.Inserted)
				root, err := p.Parse(d.Stream())
				if err != nil {
					return 0, 0, 0, err
				}
				totalWork += p.Stats.Shifts + p.Stats.Reductions + p.Stats.Breakdowns
				d.Commit(root)
				count++
			}
		}
		ns = float64(time.Since(start).Nanoseconds()) / float64(count)
		work = float64(totalWork) / float64(count)
		return ns, work, amb, nil
	}

	// Same seed: identical programs except the ambiguous constructs.
	plainNs, plainWork, _, err := run(0, 21)
	if err != nil {
		return Section5Ambiguity{}, err
	}
	ambNs, ambWork, amb, err := run(20, 21)
	if err != nil {
		return Section5Ambiguity{}, err
	}
	return Section5Ambiguity{
		Lines:           lines,
		Ambiguous:       amb,
		PlainNsPerRe:    plainNs,
		AmbNsPerRe:      ambNs,
		OverheadPct:     100 * (ambNs - plainNs) / plainNs,
		PlainWorkPerRe:  plainWork,
		AmbWorkPerRe:    ambWork,
		WorkOverheadPct: 100 * (ambWork - plainWork) / plainWork,
	}, nil
}
