// Package experiments implements the paper's evaluation: every table and
// figure has a runner here, shared by the paperbench CLI and the root
// benchmark suite. Absolute numbers differ from a 1997 workstation; the
// runners report the paper's observable (ratios, distributions, orderings)
// next to the measured value.
package experiments

import (
	"fmt"
	"strings"

	"iglr/internal/corpus"
	"iglr/internal/dag"
	"iglr/internal/iglr"
	"iglr/internal/langs"
	"iglr/internal/langs/cppsub"
	"iglr/internal/langs/csub"
	"iglr/internal/semantics"
)

// LangFor selects the subset language for a corpus spec.
func LangFor(spec corpus.Spec) *langs.Language {
	if spec.Lang == "c++" {
		return cppsub.Lang()
	}
	return csub.Lang()
}

// Table1Row is one measured program (paper Table 1).
type Table1Row struct {
	Name      string
	Lines     int
	Lang      string
	Ambiguous int
	Dag       dag.Stats
	// MeasuredPct is the dag-over-tree space increase.
	MeasuredPct float64
	// PaperPct is Table 1's %ov column.
	PaperPct float64
	// ResolvedDecl counts typedef-resolved regions (all of them, as in
	// the paper's gcc measurement).
	ResolvedDecl int
	Unresolved   int
}

// Table1 generates each Table 1 program at scale (1.0 = the paper's line
// counts), parses it with the IGLR parser, measures the explicit-ambiguity
// space overhead, and resolves the ambiguities semantically.
func Table1(scale float64) ([]Table1Row, error) {
	var rows []Table1Row
	for _, spec := range corpus.Table1Specs() {
		spec.Lines = int(float64(spec.Lines) * scale)
		if spec.Lines < 60 {
			spec.Lines = 60
		}
		row, err := MeasureProgram(spec)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// MeasureProgram generates and measures a single corpus program.
func MeasureProgram(spec corpus.Spec) (Table1Row, error) {
	src, amb := corpus.Generate(spec)
	l := LangFor(spec)
	d := l.NewDocument(src)
	p := iglr.New(l.Table)
	root, err := p.Parse(d.Stream())
	if err != nil {
		return Table1Row{}, err
	}
	st := dag.Measure(root)
	res := semantics.Resolve(root, langs.CStyleSemantics(l))
	return Table1Row{
		Name:         spec.Name,
		Lines:        spec.Lines,
		Lang:         spec.Lang,
		Ambiguous:    amb,
		Dag:          st,
		MeasuredPct:  st.SpaceOverheadPercent(),
		PaperPct:     spec.PaperOverheadPct,
		ResolvedDecl: res.ResolvedDecl,
		Unresolved:   res.Unresolved,
	}, nil
}

// FormatTable1 renders the rows as a table comparable to the paper's.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %9s %-4s %6s %10s %10s %10s\n",
		"Program", "Lines", "Lang", "Ambig", "Dag nodes", "%ov meas.", "%ov paper")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %9d %-4s %6d %10d %10.3f %10.2f\n",
			r.Name, r.Lines, r.Lang, r.Ambiguous, r.Dag.DagNodes, r.MeasuredPct, r.PaperPct)
	}
	return b.String()
}
