// Package faultinject provides deterministic, seed-driven failure points
// for the incremental analysis pipeline. Production code carries a handful
// of injection sites (lexer token creation, dag arena allocation, parser
// rounds, mid-reduction); each site is a single atomic load when no plan is
// active, so the hooks cost nothing in normal operation and are exercised
// only by tests.
//
// A Plan maps injection points to triggers. A trigger can match on the
// site's detail string (e.g. a token's text — which makes faults follow
// *content*, deterministic even under a parallel engine batch) and/or fire
// on the N-th matching hit (deterministic for single-goroutine sessions).
// The action says what the site does: return an error token, panic, report
// cancellation, or panic with a budget error (a forced allocation-cap hit).
//
// The convergence suite in this package's tests proves the system's core
// robustness guarantee: after *any* injected fault the session's committed
// tree is byte-identical to the pre-fault tree, and the next clean edit
// reparses correctly — the recovery package's "always converge" property
// extended from user syntax errors to infrastructure faults.
package faultinject

import (
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point identifies an injection site in the pipeline.
type Point uint8

// Injection points, one per instrumented pipeline stage.
const (
	// LexTerminal fires in document.newTerminal for every significant
	// token; detail is the token's text. ActError corrupts the token into
	// a lexical error.
	LexTerminal Point = iota
	// ArenaAlloc fires in dag.Arena's allocator; detail is empty.
	// ActBudget simulates an allocation-cap hit.
	ArenaAlloc
	// ParseRound fires at the top of each IGLR parse round; detail is the
	// lookahead's text. ActCancel simulates cancellation mid-parse.
	ParseRound
	// Reduce fires inside the IGLR reducer, mid-reduction; detail is the
	// lookahead's text.
	Reduce
	// Resolve fires at the start of a semantic resolution pass; detail is
	// empty.
	Resolve
	// PersistAppend fires before a write-ahead journal append in the
	// daemon's persistence layer; detail is the session ID. ActError fails
	// the append (persistence degrades; the session stays live).
	PersistAppend
	// PersistSync fires before an fsync of a journal or snapshot file;
	// detail is the session ID or target path. ActError fails the sync.
	PersistSync
	// PersistSnapshot fires before a session snapshot is captured; detail
	// is the session ID. ActError fails the snapshot.
	PersistSnapshot
	numPoints
)

func (p Point) String() string {
	switch p {
	case LexTerminal:
		return "lex-terminal"
	case ArenaAlloc:
		return "arena-alloc"
	case ParseRound:
		return "parse-round"
	case Reduce:
		return "reduce"
	case Resolve:
		return "resolve"
	case PersistAppend:
		return "persist-append"
	case PersistSync:
		return "persist-sync"
	case PersistSnapshot:
		return "persist-snapshot"
	default:
		return "unknown"
	}
}

// Action is what an injection site does when its trigger fires.
type Action uint8

// Actions. ActNone means "do nothing" (trigger did not fire).
const (
	ActNone Action = iota
	// ActError makes the site produce its domain error: LexTerminal emits
	// an error token (a lexical fault).
	ActError
	// ActPanic makes the site panic with a *Panic value.
	ActPanic
	// ActCancel makes the site behave as if its context were cancelled.
	ActCancel
	// ActBudget makes the site panic with a *guard.BudgetError — a forced
	// resource-cap hit on the existing abort path.
	ActBudget
	// ActDelay makes the site sleep for the trigger's Sleep duration before
	// continuing normally. Delay-aware sites call FireTimed; sites that only
	// call Fire treat ActDelay as ActNone (they cannot honor it). Slow
	// persist I/O and stalled parse rounds — the overload chaos harness's
	// raw material — are built from this.
	ActDelay
)

// Panic is the value injected panics carry, so tests (and recover sites)
// can tell an injected panic from a real bug.
type Panic struct {
	Point  Point
	Detail string
}

func (p *Panic) Error() string {
	return "faultinject: injected panic at " + p.Point.String() + " " + p.Detail
}

// Trigger arms one injection point.
type Trigger struct {
	// Point is the site this trigger arms.
	Point Point
	// Match, when non-empty, restricts firing to hits whose detail
	// contains it (substring). Content-addressed faults are deterministic
	// regardless of scheduling.
	Match string
	// After skips that many matching hits before the first firing
	// (0 = fire on the first matching hit).
	After int
	// Every re-fires on every further matching hit when > 0; otherwise
	// the trigger fires exactly once.
	Every int
	// Do is the action the site takes when the trigger fires.
	Do Action
	// Sleep is how long an ActDelay firing stalls the site. Ignored for
	// other actions.
	Sleep time.Duration
}

// Plan is an installed set of triggers. Plans are immutable once activated;
// per-trigger counters use atomics so concurrent sessions (the engine's
// worker pool) may hit sites in parallel under -race.
type Plan struct {
	triggers [numPoints][]*armedAtomic
}

type armedAtomic struct {
	t     Trigger
	hits  atomic.Int64
	fired atomic.Int64
}

// NewPlan builds a plan from triggers.
func NewPlan(triggers ...Trigger) *Plan {
	p := &Plan{}
	for _, t := range triggers {
		if t.Point >= numPoints {
			continue
		}
		p.triggers[t.Point] = append(p.triggers[t.Point], &armedAtomic{t: t})
	}
	return p
}

// NewRandomPlan derives a single-trigger plan from a seed: it arms point
// with action do after a pseudo-random number of hits in [0, maxAfter).
// The same seed always produces the same plan — randomized fault timing
// with reproducible failures.
func NewRandomPlan(seed int64, point Point, do Action, maxAfter int) *Plan {
	rng := rand.New(rand.NewSource(seed))
	after := 0
	if maxAfter > 0 {
		after = rng.Intn(maxAfter)
	}
	return NewPlan(Trigger{Point: point, After: after, Do: do})
}

var (
	mu      sync.Mutex
	enabled atomic.Bool
	active  atomic.Pointer[Plan]
)

// Activate installs a plan. Sites start consulting it immediately; call
// Deactivate (usually via defer) to disarm. Activating a new plan replaces
// the previous one.
func Activate(p *Plan) {
	mu.Lock()
	defer mu.Unlock()
	active.Store(p)
	enabled.Store(p != nil)
}

// Deactivate disarms all injection points.
func Deactivate() { Activate(nil) }

// Enabled reports whether any plan is active. Sites use it as the
// zero-cost guard before assembling detail strings.
func Enabled() bool { return enabled.Load() }

// Fire consults the active plan for point. It returns the action to take —
// ActNone when no plan is active or no trigger fires. Callers should guard
// with Enabled() so the detail string is only built when a plan is live.
// A firing ActDelay trigger is reported as ActNone — a site that cannot
// stall must not misread the delay as an error; use FireTimed at sites
// that can.
func Fire(point Point, detail string) Action {
	act, _ := FireTimed(point, detail)
	if act == ActDelay {
		return ActNone
	}
	return act
}

// FireTimed is Fire for delay-aware sites: along with the action it returns
// the stall duration an ActDelay trigger asks for. The site is responsible
// for sleeping — FireTimed itself never blocks.
func FireTimed(point Point, detail string) (Action, time.Duration) {
	p := active.Load()
	if p == nil {
		return ActNone, 0
	}
	for _, a := range p.triggers[point] {
		if a.t.Match != "" && !strings.Contains(detail, a.t.Match) {
			continue
		}
		hit := a.hits.Add(1) - 1 // 0-based index of this matching hit
		if hit < int64(a.t.After) {
			continue
		}
		if a.t.Every > 0 {
			if (hit-int64(a.t.After))%int64(a.t.Every) == 0 {
				a.fired.Add(1)
				return a.t.Do, a.t.Sleep
			}
			continue
		}
		if a.fired.CompareAndSwap(0, 1) {
			return a.t.Do, a.t.Sleep
		}
	}
	return ActNone, 0
}

// Fired reports how many times any trigger on point has fired under the
// active plan (0 when no plan is active).
func Fired(point Point) int {
	p := active.Load()
	if p == nil {
		return 0
	}
	n := 0
	for _, a := range p.triggers[point] {
		n += int(a.fired.Load())
	}
	return n
}
