package faultinject

import (
	"sync"
	"testing"
)

func TestDisabledByDefault(t *testing.T) {
	Deactivate()
	if Enabled() {
		t.Fatal("no plan active, Enabled must be false")
	}
	if act := Fire(LexTerminal, "anything"); act != ActNone {
		t.Fatalf("Fire with no plan = %v, want ActNone", act)
	}
	if Fired(LexTerminal) != 0 {
		t.Fatal("no plan, Fired must be 0")
	}
}

func TestContentMatchedTrigger(t *testing.T) {
	Activate(NewPlan(Trigger{Point: LexTerminal, Match: "BOOM", Do: ActError}))
	defer Deactivate()

	if act := Fire(LexTerminal, "harmless"); act != ActNone {
		t.Fatalf("non-matching detail fired: %v", act)
	}
	if act := Fire(LexTerminal, "xxBOOMxx"); act != ActError {
		t.Fatalf("substring match should fire ActError, got %v", act)
	}
	// Fire-once: the same trigger does not fire again.
	if act := Fire(LexTerminal, "BOOM"); act != ActNone {
		t.Fatalf("single-shot trigger re-fired: %v", act)
	}
	if Fired(LexTerminal) != 1 {
		t.Fatalf("Fired = %d, want 1", Fired(LexTerminal))
	}
}

func TestAfterSkipsHits(t *testing.T) {
	Activate(NewPlan(Trigger{Point: Reduce, After: 2, Do: ActPanic}))
	defer Deactivate()

	if Fire(Reduce, "") != ActNone || Fire(Reduce, "") != ActNone {
		t.Fatal("the first two hits must be skipped with After=2")
	}
	if Fire(Reduce, "") != ActPanic {
		t.Fatal("the third hit must fire")
	}
	if Fire(Reduce, "") != ActNone {
		t.Fatal("single-shot trigger must not re-fire")
	}
}

func TestEveryRefires(t *testing.T) {
	Activate(NewPlan(Trigger{Point: ArenaAlloc, After: 1, Every: 3, Do: ActBudget}))
	defer Deactivate()

	var got []Action
	for i := 0; i < 8; i++ {
		got = append(got, Fire(ArenaAlloc, ""))
	}
	want := []Action{ActNone, ActBudget, ActNone, ActNone, ActBudget, ActNone, ActNone, ActBudget}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hit %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
	if Fired(ArenaAlloc) != 3 {
		t.Fatalf("Fired = %d, want 3", Fired(ArenaAlloc))
	}
}

func TestPointsAreIndependent(t *testing.T) {
	Activate(NewPlan(
		Trigger{Point: LexTerminal, Do: ActError},
		Trigger{Point: Resolve, Do: ActPanic},
	))
	defer Deactivate()

	if Fire(Resolve, "") != ActPanic {
		t.Fatal("Resolve trigger should fire")
	}
	if Fire(LexTerminal, "") != ActError {
		t.Fatal("LexTerminal trigger should fire independently")
	}
}

func TestRandomPlanIsDeterministic(t *testing.T) {
	countdown := func(seed int64) int {
		Activate(NewRandomPlan(seed, ParseRound, ActCancel, 50))
		defer Deactivate()
		for i := 0; ; i++ {
			if Fire(ParseRound, "") == ActCancel {
				return i
			}
			if i > 100 {
				t.Fatalf("seed %d never fired within maxAfter", seed)
			}
		}
	}
	a, b := countdown(42), countdown(42)
	if a != b {
		t.Fatalf("same seed fired at hit %d then %d", a, b)
	}
}

func TestConcurrentFireIsRaceFree(t *testing.T) {
	// Exercised under -race by `make check`: many goroutines hammer one
	// armed point; exactly one Fire observes the single-shot action.
	Activate(NewPlan(Trigger{Point: Reduce, After: 100, Do: ActPanic}))
	defer Deactivate()

	var wg sync.WaitGroup
	fired := make([]int, 8)
	for w := 0; w < len(fired); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if Fire(Reduce, "") == ActPanic {
					fired[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range fired {
		total += n
	}
	if total != 1 {
		t.Fatalf("single-shot trigger fired %d times across goroutines", total)
	}
}

func TestPanicErrorText(t *testing.T) {
	p := &Panic{Point: Reduce, Detail: "tok"}
	if p.Error() != "faultinject: injected panic at reduce tok" {
		t.Fatalf("got %q", p.Error())
	}
	if numPoints != 8 {
		t.Fatalf("update Point.String when adding points (have %d)", numPoints)
	}
	for p := Point(0); p < numPoints; p++ {
		if p.String() == "unknown" {
			t.Fatalf("point %d has no String case", p)
		}
	}
	if (Point(99)).String() != "unknown" {
		t.Fatal("out-of-range points should stringify as unknown")
	}
}
