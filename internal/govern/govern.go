// Package govern is the process-wide resource governor behind the parse
// service's overload protection. Where guard bounds what one parse may
// consume, govern bounds what the whole fleet of live sessions may hold:
// every session's resident bytes (text buffer, token stream, dag arena,
// GSS storage — the quantities the guard.Gauge counters meter per parse)
// are accounted per shard and globally against two watermarks.
//
//   - Below the soft watermark the service runs normally.
//   - At or above the soft watermark it is under Pressure: the daemon's
//     janitor switches to idle-first snapshot-to-disk eviction and newly
//     admitted parses run under degraded budgets.
//   - The hard watermark is a ceiling the accounting can never pass:
//     growth is admitted with TryCharge, a CAS that refuses any charge
//     that would push the global figure above the hard watermark, so the
//     invariant "accounted bytes <= hard" holds at every instant, not just
//     between janitor sweeps. Refused charges surface as 503s (session
//     creation, restore) or forced evictions (a parse that outgrew the
//     remaining headroom parks its session to disk).
//
// The accounting is an estimate of resident bytes (see the Footprint
// methods it is fed from), not an OS RSS measurement: it moves
// synchronously with session lifecycle events, which is what admission
// control needs — kernel-reported memory lags eviction and double-counts
// allocator slack.
package govern

import "sync/atomic"

// State is the governor's pressure classification.
type State int32

const (
	// StateNormal: below the soft watermark (or no watermarks configured).
	StateNormal State = iota
	// StatePressure: at or above the soft watermark but below the hard
	// one. Degrade: evict idle sessions to disk, shrink new parse budgets.
	StatePressure
	// StateCritical: at or above the hard watermark. Refuse new work that
	// would add memory.
	StateCritical
)

func (s State) String() string {
	switch s {
	case StatePressure:
		return "pressure"
	case StateCritical:
		return "critical"
	default:
		return "normal"
	}
}

// Governor tracks live session bytes per shard and globally against soft
// and hard watermarks. All methods are safe for concurrent use; charges
// are plain atomics except TryCharge, which is a CAS loop so the global
// account can never exceed the hard watermark.
type Governor struct {
	soft, hard atomic.Int64
	global     atomic.Int64
	shards     []atomic.Int64
}

// New creates a governor accounting over n shards with no watermarks
// (unlimited). Set them with SetWatermarks.
func New(n int) *Governor {
	if n < 1 {
		n = 1
	}
	return &Governor{shards: make([]atomic.Int64, n)}
}

// SetWatermarks installs the soft and hard watermarks in bytes; zero
// disables that watermark. Watermarks are hot-reloadable: a lowered hard
// watermark does not evict anything by itself, but every further TryCharge
// is refused until the fleet shrinks below it.
func (g *Governor) SetWatermarks(soft, hard int64) {
	g.soft.Store(soft)
	g.hard.Store(hard)
}

// Watermarks returns the active soft and hard watermarks.
func (g *Governor) Watermarks() (soft, hard int64) {
	return g.soft.Load(), g.hard.Load()
}

// Global returns the globally accounted live bytes.
func (g *Governor) Global() int64 { return g.global.Load() }

// Shard returns shard i's accounted live bytes.
func (g *Governor) Shard(i int) int64 {
	if i < 0 || i >= len(g.shards) {
		return 0
	}
	return g.shards[i].Load()
}

// Shards returns the number of shard accounts.
func (g *Governor) Shards() int { return len(g.shards) }

// State classifies the current global account against the watermarks.
func (g *Governor) State() State {
	n := g.global.Load()
	if hard := g.hard.Load(); hard > 0 && n >= hard {
		return StateCritical
	}
	if soft := g.soft.Load(); soft > 0 && n >= soft {
		return StatePressure
	}
	return StateNormal
}

// OverSoft reports whether the global account is at or above the soft
// watermark (false when no soft watermark is set).
func (g *Governor) OverSoft() bool {
	soft := g.soft.Load()
	return soft > 0 && g.global.Load() >= soft
}

// Release returns bytes to shard i's and the global account. Releases are
// never refused.
func (g *Governor) Release(i int, bytes int64) {
	if bytes <= 0 {
		return
	}
	g.adjust(i, -bytes)
}

// Adjust applies a signed delta to shard i's and the global account with
// no watermark check. Use it only for corrections that must not be
// refused (shrinking a session's account, rebalancing after a re-measure);
// growth that should respect the hard watermark goes through TryCharge.
func (g *Governor) Adjust(i int, delta int64) { g.adjust(i, delta) }

func (g *Governor) adjust(i int, delta int64) {
	if i >= 0 && i < len(g.shards) {
		g.shards[i].Add(delta)
	}
	if n := g.global.Add(delta); n < 0 {
		// Accounting is release-before-charge in a few windows (a parked
		// session re-admitted); clamp rather than let transient negatives
		// confuse the watermark comparisons.
		g.global.CompareAndSwap(n, 0)
	}
}

// TryCharge attempts to add bytes to shard i's and the global account,
// refusing (and charging nothing) if the addition would push the global
// account above the hard watermark. With no hard watermark every charge
// succeeds. The CAS makes the hard watermark an invariant: two shards
// racing their last headroom cannot jointly overshoot it.
func (g *Governor) TryCharge(i int, bytes int64) bool {
	if bytes < 0 {
		g.adjust(i, bytes)
		return true
	}
	hard := g.hard.Load()
	for {
		cur := g.global.Load()
		next := cur + bytes
		if hard > 0 && next > hard {
			return false
		}
		if g.global.CompareAndSwap(cur, next) {
			if i >= 0 && i < len(g.shards) {
				g.shards[i].Add(bytes)
			}
			return true
		}
	}
}

// Headroom returns how many bytes remain under the hard watermark
// (a negative value means the account is over it); ok is false when no
// hard watermark is set.
func (g *Governor) Headroom() (bytes int64, ok bool) {
	hard := g.hard.Load()
	if hard <= 0 {
		return 0, false
	}
	return hard - g.global.Load(), true
}
