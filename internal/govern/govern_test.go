package govern

import (
	"sync"
	"testing"
)

func TestStates(t *testing.T) {
	g := New(2)
	if got := g.State(); got != StateNormal {
		t.Fatalf("empty governor state = %v, want normal", got)
	}
	g.SetWatermarks(100, 200)
	if !g.TryCharge(0, 99) {
		t.Fatal("charge under soft refused")
	}
	if got := g.State(); got != StateNormal {
		t.Fatalf("state at 99/100 = %v, want normal", got)
	}
	if !g.TryCharge(1, 1) {
		t.Fatal("charge to soft refused")
	}
	if got := g.State(); got != StatePressure {
		t.Fatalf("state at soft = %v, want pressure", got)
	}
	if !g.OverSoft() {
		t.Fatal("OverSoft false at the soft watermark")
	}
	if !g.TryCharge(0, 100) {
		t.Fatal("charge to hard refused (hard is inclusive headroom)")
	}
	if got := g.State(); got != StateCritical {
		t.Fatalf("state at hard = %v, want critical", got)
	}
	if g.TryCharge(0, 1) {
		t.Fatal("charge above hard admitted")
	}
	if got := g.Global(); got != 200 {
		t.Fatalf("global = %d, want 200", got)
	}
	g.Release(0, 150)
	if got := g.State(); got != StateNormal {
		t.Fatalf("state after release = %v, want normal", got)
	}
	if got, want := g.Shard(0), int64(49); got != want {
		t.Fatalf("shard 0 = %d, want %d", got, want)
	}
	if got, want := g.Shard(1), int64(1); got != want {
		t.Fatalf("shard 1 = %d, want %d", got, want)
	}
}

// TestHardWatermarkNeverExceeded is the admission invariant: concurrent
// TryCharge racing the last headroom must never jointly push the global
// account above the hard watermark.
func TestHardWatermarkNeverExceeded(t *testing.T) {
	const hard = 10_000
	g := New(8)
	g.SetWatermarks(hard/2, hard)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if g.TryCharge(w, 7) {
					if n := g.Global(); n > hard {
						t.Errorf("global %d exceeded hard %d", n, hard)
						return
					}
					if i%3 == 0 {
						g.Release(w, 7)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := g.Global(); n > hard {
		t.Fatalf("final global %d exceeded hard %d", n, hard)
	}
}

func TestAdjustClampsNegative(t *testing.T) {
	g := New(1)
	g.Adjust(0, -50)
	if n := g.Global(); n != 0 {
		t.Fatalf("global after over-release = %d, want clamped 0", n)
	}
}

func TestHeadroom(t *testing.T) {
	g := New(1)
	if _, ok := g.Headroom(); ok {
		t.Fatal("headroom reported with no hard watermark")
	}
	g.SetWatermarks(0, 100)
	g.TryCharge(0, 30)
	if h, ok := g.Headroom(); !ok || h != 70 {
		t.Fatalf("headroom = %d,%v, want 70,true", h, ok)
	}
}

func TestWatermarkReload(t *testing.T) {
	g := New(1)
	g.SetWatermarks(0, 100)
	if !g.TryCharge(0, 90) {
		t.Fatal("charge refused under hard")
	}
	// A lowered hard watermark refuses growth but evicts nothing itself.
	g.SetWatermarks(0, 50)
	if g.TryCharge(0, 1) {
		t.Fatal("charge admitted above the lowered hard watermark")
	}
	if g.Global() != 90 {
		t.Fatalf("lowering the watermark changed the account: %d", g.Global())
	}
	if g.State() != StateCritical {
		t.Fatalf("state = %v, want critical above lowered hard", g.State())
	}
}
