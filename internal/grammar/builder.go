package grammar

import (
	"fmt"
	"sort"
)

// Builder assembles a Grammar incrementally. Symbols may be referenced by
// name before they are classified; Build resolves everything, synthesizes
// sequence nonterminals, and runs the grammar analyses.
type Builder struct {
	symbols []Symbol
	byName  map[string]Sym
	prods   []*Production

	precLevel int
	start     string
	seqCache  map[seqKey]Sym
	errs      []error
}

type seqKey struct {
	elem     Sym
	sep      Sym // InvalidSym when no separator
	allowNil bool
}

// NewBuilder returns an empty Builder with the reserved symbols installed.
func NewBuilder() *Builder {
	b := &Builder{
		byName:   make(map[string]Sym),
		seqCache: make(map[seqKey]Sym),
	}
	b.symbols = append(b.symbols,
		Symbol{Name: "$", Terminal: true, SeqElem: InvalidSym},
		Symbol{Name: "S'", Terminal: false, SeqElem: InvalidSym},
		Symbol{Name: "#error", Terminal: true, SeqElem: InvalidSym},
	)
	b.byName["$"] = EOF
	b.byName["S'"] = AugStart
	b.byName["#error"] = ErrorSym
	return b
}

func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
}

// intern returns the Sym for name, creating an unclassified entry when the
// name is new. Newly created symbols default to nonterminal; Terminal and
// the precedence declarations reclassify them.
func (b *Builder) intern(name string) Sym {
	if s, ok := b.byName[name]; ok {
		return s
	}
	s := Sym(len(b.symbols))
	b.symbols = append(b.symbols, Symbol{Name: name, SeqElem: InvalidSym})
	b.byName[name] = s
	return s
}

// Terminal declares name as a terminal symbol and returns it.
func (b *Builder) Terminal(name string) Sym {
	s := b.intern(name)
	b.symbols[s].Terminal = true
	return s
}

// Terminals declares several terminal symbols.
func (b *Builder) Terminals(names ...string) {
	for _, n := range names {
		b.Terminal(n)
	}
}

// declPrec declares a new precedence level for the given terminals.
func (b *Builder) declPrec(assoc Assoc, names []string) {
	b.precLevel++
	for _, n := range names {
		s := b.Terminal(n)
		b.symbols[s].Prec = b.precLevel
		b.symbols[s].Assoc = assoc
	}
}

// Left declares a left-associative precedence level (like yacc %left).
// Later calls bind tighter.
func (b *Builder) Left(names ...string) { b.declPrec(AssocLeft, names) }

// Right declares a right-associative precedence level (%right).
func (b *Builder) Right(names ...string) { b.declPrec(AssocRight, names) }

// Nonassoc declares a non-associative precedence level (%nonassoc).
func (b *Builder) Nonassoc(names ...string) { b.declPrec(AssocNonassoc, names) }

// Rule adds a production lhs → rhs and returns its production ID.
// RHS element names of the form "X*" and "X+" denote associative sequences
// (zero-or-more / one-or-more of X) and synthesize a sequence nonterminal.
func (b *Builder) Rule(lhs string, rhs ...string) int {
	return b.RuleWithPrec(lhs, "", rhs...)
}

// RuleWithPrec adds a production with an explicit %prec terminal. An empty
// precName means "derive precedence from the rightmost terminal".
func (b *Builder) RuleWithPrec(lhs, precName string, rhs ...string) int {
	l := b.intern(lhs)
	rs := make([]Sym, 0, len(rhs))
	for _, name := range rhs {
		rs = append(rs, b.rhsSymbol(name))
	}
	p := &Production{ID: len(b.prods), LHS: l, RHS: rs, precSym: InvalidSym}
	if precName != "" {
		p.precSym = b.intern(precName)
	}
	b.prods = append(b.prods, p)
	return p.ID
}

// rhsSymbol resolves one RHS name, handling sequence suffixes. Quoted names
// ('+' or "while") are implicitly terminals.
func (b *Builder) rhsSymbol(name string) Sym {
	if n := len(name); n > 1 && name[0] != '\'' && name[0] != '"' {
		switch name[n-1] {
		case '*':
			return b.Sequence(name[:n-1], true)
		case '+':
			return b.Sequence(name[:n-1], false)
		}
	}
	if name != "" && (name[0] == '\'' || name[0] == '"') {
		return b.Terminal(name)
	}
	return b.intern(name)
}

// Sequence returns (creating if needed) the associative sequence nonterminal
// for elem. When allowEmpty is true the sequence may be empty (X*),
// otherwise it requires at least one element (X+). The generated productions
// are left-recursive for parsing; the dag layer stores their yields in
// balanced form because the productions are marked Seq.
func (b *Builder) Sequence(elem string, allowEmpty bool) Sym {
	e := b.intern(elem)
	key := seqKey{elem: e, sep: InvalidSym, allowNil: allowEmpty}
	if s, ok := b.seqCache[key]; ok {
		return s
	}
	suffix := "+"
	if allowEmpty {
		suffix = "*"
	}
	name := elem + suffix
	s := b.intern(name)
	b.symbols[s].SeqElem = e
	b.symbols[s].Generated = true
	b.seqCache[key] = s
	if allowEmpty {
		// X* → ε | X+  keeps the expansion unambiguous (X* → ε | X | X* X
		// would derive a single X two ways).
		plus := b.Sequence(elem, false)
		b.addSeqProd(s, nil)
		b.addSeqProd(s, []Sym{plus})
	} else {
		b.addSeqProd(s, []Sym{e})    // X+ → X
		b.addSeqProd(s, []Sym{s, e}) // X+ → X+ X
	}
	return s
}

func (b *Builder) addSeqProd(lhs Sym, rhs []Sym) {
	b.prods = append(b.prods, &Production{ID: len(b.prods), LHS: lhs, RHS: rhs, Seq: true})
}

// Start declares the start symbol by name.
func (b *Builder) Start(name string) { b.start = name }

// Build finalizes the grammar: installs the augmented production, resolves
// precedences, computes analyses, and validates structure.
func (b *Builder) Build() (*Grammar, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	if b.start == "" {
		return nil, &Error{Msg: "no start symbol declared"}
	}
	start, ok := b.byName[b.start]
	if !ok {
		return nil, &Error{Symbol: b.start, Msg: fmt.Sprintf("start symbol %q not defined", b.start)}
	}
	// Classify: anything that appears as a LHS is a nonterminal; everything
	// else referenced only on RHS must have been declared terminal.
	isLHS := make(map[Sym]bool)
	for _, p := range b.prods {
		isLHS[p.LHS] = true
	}
	for _, p := range b.prods {
		if b.symbols[p.LHS].Terminal {
			return nil, &Error{
				Symbol:     b.symbols[p.LHS].Name,
				Production: b.renderProduction(p),
				Msg:        fmt.Sprintf("terminal %s used as a production left-hand side", b.symbols[p.LHS].Name),
			}
		}
		for _, s := range p.RHS {
			if !b.symbols[s].Terminal && !isLHS[s] {
				return nil, &Error{
					Symbol:     b.symbols[s].Name,
					Production: b.renderProduction(p),
					Msg:        fmt.Sprintf("symbol %s is used but never defined (declare it %%token or give it a production)", b.symbols[s].Name),
				}
			}
		}
	}
	if b.symbols[start].Terminal {
		return nil, &Error{Symbol: b.start, Msg: fmt.Sprintf("start symbol %s is a terminal", b.start)}
	}

	g := &Grammar{
		symbols: make([]Symbol, len(b.symbols)),
		byName:  make(map[string]Sym, len(b.byName)),
		start:   start,
	}
	copy(g.symbols, b.symbols)
	for k, v := range b.byName {
		g.byName[k] = v
	}

	// Production 0: AugStart → start.
	aug := &Production{ID: 0, LHS: AugStart, RHS: []Sym{start}}
	g.prods = append(g.prods, aug)
	for _, p := range b.prods {
		q := &Production{
			ID:    len(g.prods),
			LHS:   p.LHS,
			RHS:   append([]Sym(nil), p.RHS...),
			Seq:   p.Seq,
			Label: p.Label,
		}
		// Precedence: explicit %prec wins, else rightmost terminal.
		if p.precSym > 0 {
			ps := g.symbols[p.precSym]
			q.Prec, q.Assoc = ps.Prec, ps.Assoc
		} else {
			for i := len(q.RHS) - 1; i >= 0; i-- {
				if sym := g.symbols[q.RHS[i]]; sym.Terminal {
					q.Prec, q.Assoc = sym.Prec, sym.Assoc
					break
				}
			}
		}
		g.prods = append(g.prods, q)
	}

	g.prodsByLHS = make([][]*Production, len(g.symbols))
	for _, p := range g.prods {
		g.prodsByLHS[p.LHS] = append(g.prodsByLHS[p.LHS], p)
	}
	for i, s := range g.symbols {
		if s.Terminal {
			g.numTerminals++
		} else if len(g.prodsByLHS[i]) == 0 && Sym(i) != AugStart {
			return nil, &Error{Symbol: s.Name, Msg: fmt.Sprintf("nonterminal %s has no productions", s.Name)}
		}
	}
	g.computeAnalyses()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// SymbolNames returns the declared symbol names sorted, for diagnostics.
func (b *Builder) SymbolNames() []string {
	out := make([]string, 0, len(b.byName))
	for n := range b.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
