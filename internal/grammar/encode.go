package grammar

import (
	"encoding/binary"
	"fmt"
)

// Binary serialization of grammars, used for compiled language artifacts
// (the paper's Ensemble system compiles language descriptions off-line and
// loads them into the running environment; iglrc -o does the same).

const grammarMagic = "IGGR"
const grammarVersion = 1

// AppendBinary serializes g to buf.
func (g *Grammar) AppendBinary(buf []byte) []byte {
	buf = append(buf, grammarMagic...)
	buf = appendUvarint(buf, grammarVersion)
	buf = appendUvarint(buf, uint64(len(g.symbols)))
	for _, s := range g.symbols {
		buf = appendString(buf, s.Name)
		flags := byte(0)
		if s.Terminal {
			flags |= 1
		}
		if s.Generated {
			flags |= 2
		}
		buf = append(buf, flags, byte(s.Assoc))
		buf = appendUvarint(buf, uint64(s.Prec))
		buf = appendVarint(buf, int64(s.SeqElem))
	}
	buf = appendVarint(buf, int64(g.start))
	buf = appendUvarint(buf, uint64(len(g.prods)))
	for _, p := range g.prods {
		buf = appendVarint(buf, int64(p.LHS))
		buf = appendUvarint(buf, uint64(len(p.RHS)))
		for _, s := range p.RHS {
			buf = appendVarint(buf, int64(s))
		}
		buf = appendUvarint(buf, uint64(p.Prec))
		flags := byte(p.Assoc)
		if p.Seq {
			flags |= 0x80
		}
		buf = append(buf, flags)
		buf = appendString(buf, p.Label)
	}
	return buf
}

// DecodeBinary reconstructs a grammar serialized by AppendBinary, returning
// the remaining bytes.
func DecodeBinary(data []byte) (*Grammar, []byte, error) {
	r := &reader{data: data}
	if string(r.bytes(4)) != grammarMagic {
		return nil, nil, fmt.Errorf("grammar: bad magic")
	}
	if v := r.uvarint(); v != grammarVersion {
		return nil, nil, fmt.Errorf("grammar: unsupported version %d", v)
	}
	nSyms := int(r.uvarint())
	g := &Grammar{
		symbols: make([]Symbol, 0, nSyms),
		byName:  make(map[string]Sym, nSyms),
	}
	for i := 0; i < nSyms; i++ {
		name := r.str()
		flags := r.byte()
		assoc := Assoc(r.byte())
		prec := int(r.uvarint())
		seqElem := Sym(r.varint())
		g.symbols = append(g.symbols, Symbol{
			Name:      name,
			Terminal:  flags&1 != 0,
			Generated: flags&2 != 0,
			Assoc:     assoc,
			Prec:      prec,
			SeqElem:   seqElem,
		})
		g.byName[name] = Sym(i)
		if flags&1 != 0 {
			g.numTerminals++
		}
	}
	g.start = Sym(r.varint())
	nProds := int(r.uvarint())
	g.prods = make([]*Production, 0, nProds)
	for i := 0; i < nProds; i++ {
		p := &Production{ID: i, precSym: InvalidSym}
		p.LHS = Sym(r.varint())
		n := int(r.uvarint())
		p.RHS = make([]Sym, n)
		for j := 0; j < n; j++ {
			p.RHS[j] = Sym(r.varint())
		}
		p.Prec = int(r.uvarint())
		flags := r.byte()
		p.Assoc = Assoc(flags &^ 0x80)
		p.Seq = flags&0x80 != 0
		p.Label = r.str()
		g.prods = append(g.prods, p)
	}
	if r.err != nil {
		return nil, nil, fmt.Errorf("grammar: truncated data: %w", r.err)
	}
	// Rebuild derived state.
	g.prodsByLHS = make([][]*Production, len(g.symbols))
	for _, p := range g.prods {
		if int(p.LHS) >= len(g.symbols) {
			return nil, nil, fmt.Errorf("grammar: production %d has invalid LHS", p.ID)
		}
		g.prodsByLHS[p.LHS] = append(g.prodsByLHS[p.LHS], p)
	}
	g.computeAnalyses()
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	return g, r.data, nil
}

// Encoding helpers shared with the lr package.

func appendUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = appendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

type reader struct {
	data []byte
	err  error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("unexpected end of data")
	}
}

func (r *reader) bytes(n int) []byte {
	if len(r.data) < n {
		r.fail()
		return make([]byte, n)
	}
	out := r.data[:n]
	r.data = r.data[n:]
	return out
}

func (r *reader) byte() byte { return r.bytes(1)[0] }

func (r *reader) uvarint() uint64 {
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *reader) varint() int64 {
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *reader) str() string {
	n := int(r.uvarint())
	if n > len(r.data) {
		r.fail()
		return ""
	}
	return string(r.bytes(n))
}
