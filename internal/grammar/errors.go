package grammar

import (
	"fmt"
	"strings"
)

// Error describes a rejected grammar definition. Line is the 1-based
// source line when the DSL parser detected the problem (0 otherwise);
// Symbol names the offending symbol and Production renders the offending
// production when the problem concerns one.
type Error struct {
	Line       int
	Symbol     string
	Production string
	Msg        string
}

func (e *Error) Error() string {
	var b strings.Builder
	b.WriteString("grammar")
	if e.Line > 0 {
		fmt.Fprintf(&b, ":%d", e.Line)
	}
	b.WriteString(": ")
	b.WriteString(e.Msg)
	if e.Production != "" {
		fmt.Fprintf(&b, " (in %s)", e.Production)
	}
	return b.String()
}

// renderProduction renders a production with the builder's symbol table
// (used in errors raised before the Grammar exists).
func (b *Builder) renderProduction(p *Production) string {
	var sb strings.Builder
	sb.WriteString(b.symbols[p.LHS].Name)
	sb.WriteString(" →")
	if len(p.RHS) == 0 {
		sb.WriteString(" ε")
	}
	for _, s := range p.RHS {
		sb.WriteByte(' ')
		sb.WriteString(b.symbols[s].Name)
	}
	return sb.String()
}
