package grammar

import (
	"strings"
	"testing"
)

const exprSrc = `
// Ambiguous expression grammar with yacc-style static disambiguation.
%token ID NUM
%left '+' '-'
%left '*' '/'
%right UMINUS
%start Expr

Expr : Expr '+' Expr
     | Expr '-' Expr
     | Expr '*' Expr
     | Expr '/' Expr
     | '-' Expr %prec UMINUS
     | '(' Expr ')'
     | ID
     | NUM
     ;
`

func mustParse(t *testing.T, src string) *Grammar {
	t.Helper()
	g, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return g
}

func TestParseExprGrammar(t *testing.T) {
	g := mustParse(t, exprSrc)
	if g.NumProductions() != 9 { // 8 + augmented
		t.Fatalf("NumProductions = %d, want 9", g.NumProductions())
	}
	if got := g.Name(g.Start()); got != "Expr" {
		t.Fatalf("start = %s, want Expr", got)
	}
	plus := g.Lookup("'+'")
	if plus == InvalidSym || !g.IsTerminal(plus) {
		t.Fatalf("'+' not a terminal")
	}
	times := g.Lookup("'*'")
	if g.Symbol(plus).Prec >= g.Symbol(times).Prec {
		t.Fatalf("'*' should bind tighter than '+': %d vs %d", g.Symbol(times).Prec, g.Symbol(plus).Prec)
	}
	if g.Symbol(plus).Assoc != AssocLeft {
		t.Fatalf("'+' assoc = %v, want left", g.Symbol(plus).Assoc)
	}
}

func TestPrecOverride(t *testing.T) {
	g := mustParse(t, exprSrc)
	var unary *Production
	minus := g.Lookup("'-'")
	for _, p := range g.Productions() {
		if len(p.RHS) == 2 && p.RHS[0] == minus {
			unary = p
		}
	}
	if unary == nil {
		t.Fatalf("unary minus production not found")
	}
	um := g.Lookup("UMINUS")
	if unary.Prec != g.Symbol(um).Prec {
		t.Fatalf("unary production prec = %d, want UMINUS prec %d", unary.Prec, g.Symbol(um).Prec)
	}
}

func TestNullableFirstFollow(t *testing.T) {
	g := mustParse(t, `
%token a b c
%start S
S : A B c ;
A : a | ;
B : b | ;
`)
	A, B, S := g.Lookup("A"), g.Lookup("B"), g.Lookup("S")
	a, b, c := g.Lookup("a"), g.Lookup("b"), g.Lookup("c")
	if !g.Nullable(A) || !g.Nullable(B) {
		t.Fatalf("A and B should be nullable")
	}
	if g.Nullable(S) {
		t.Fatalf("S should not be nullable")
	}
	// FIRST(S) = {a, b, c}
	fs := g.First(S)
	for _, tm := range []Sym{a, b, c} {
		if !fs.Has(tm) {
			t.Fatalf("FIRST(S) missing %s: %s", g.Name(tm), fs.Format(g))
		}
	}
	// FOLLOW(A) = {b, c}; FOLLOW(B) = {c}
	if fa := g.Follow(A); !fa.Has(b) || !fa.Has(c) || fa.Has(a) {
		t.Fatalf("FOLLOW(A) = %s, want {b c}", fa.Format(g))
	}
	if fb := g.Follow(B); !fb.Has(c) || fb.Has(b) {
		t.Fatalf("FOLLOW(B) = %s, want {c}", fb.Format(g))
	}
	// FOLLOW(S) = {$}
	if !g.Follow(S).Has(EOF) {
		t.Fatalf("FOLLOW(S) should contain EOF")
	}
}

func TestSequenceExpansion(t *testing.T) {
	g := mustParse(t, `
%token x ';'
%start Block
Block : Stmt* ;
Stmt  : x ';' ;
`)
	seq := g.Lookup("Stmt*")
	if seq == InvalidSym {
		t.Fatalf("sequence nonterminal Stmt* not created")
	}
	info := g.Symbol(seq)
	if !info.IsSequence() || info.SeqElem != g.Lookup("Stmt") {
		t.Fatalf("Stmt* not marked as sequence of Stmt")
	}
	if !g.Nullable(seq) {
		t.Fatalf("Stmt* should be nullable")
	}
	for _, p := range g.ProductionsFor(seq) {
		if !p.Seq {
			t.Fatalf("production %s not marked Seq", g.ProductionString(p))
		}
	}
	if n := len(g.ProductionsFor(seq)); n != 2 {
		t.Fatalf("Stmt* has %d productions, want 2 (ε, Stmt+)", n)
	}
	plus := g.Lookup("Stmt+")
	if plus == InvalidSym || !g.Symbol(plus).IsSequence() {
		t.Fatalf("Stmt+ helper sequence missing")
	}
	if n := len(g.ProductionsFor(plus)); n != 2 {
		t.Fatalf("Stmt+ has %d productions, want 2 (Stmt, Stmt+ Stmt)", n)
	}
}

func TestPlusSequence(t *testing.T) {
	g := mustParse(t, `
%token x
%start S
S : Item+ ;
Item : x ;
`)
	seq := g.Lookup("Item+")
	if seq == InvalidSym {
		t.Fatalf("Item+ not created")
	}
	if g.Nullable(seq) {
		t.Fatalf("Item+ must not be nullable")
	}
	if len(g.ProductionsFor(seq)) != 2 {
		t.Fatalf("Item+ should have 2 productions")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no start", "%token a\nS : a ;", "no start symbol"},
		{"undefined", "%start S\nS : Q ;", "never defined"},
		{"terminal lhs", "%token a\n%start S\nS : a ;\na : S ;", "left-hand side"},
		{"unterminated rule", "%start S\nS : ", "unterminated"},
		{"missing semi", "%token a b\n%start S\nS : a\nT : b ;", "missing ';'"},
		{"seq lhs", "%token a\n%start S\nS* : a ;", "left-hand side"},
		{"unreachable", "%token a b\n%start S\nS : a ;\nT : b ;", "unreachable"},
		{"unproductive", "%token a\n%start S\nS : a | T ;\nT : T a ;", "unproductive"},
		{"bad char", "%start S\nS : @ ;", "unexpected character"},
		{"start terminal", "%token a\n%start a\nS : a ;", "terminal"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestQuotedSymbols(t *testing.T) {
	g := mustParse(t, `
%start S
S : "while" '(' S ')' | "x" ;
`)
	for _, name := range []string{`"while"`, `'('`, `')'`, `"x"`} {
		s := g.Lookup(name)
		if s == InvalidSym || !g.IsTerminal(s) {
			t.Fatalf("%s should be an implicit terminal", name)
		}
	}
}

func TestCommentsAndDirectiveFlow(t *testing.T) {
	// A %token directive followed directly by a rule (no blank separation).
	g := mustParse(t, `
# hash comment
/* block
   comment */
%token a
%start S
S : a ; // trailing comment
`)
	if g.Lookup("a") == InvalidSym {
		t.Fatalf("token a missing")
	}
}

func TestGrammarString(t *testing.T) {
	g := mustParse(t, "%token a\n%start S\nS : a | ;")
	s := g.String()
	if !strings.Contains(s, "S' → S") {
		t.Fatalf("missing augmented production in:\n%s", s)
	}
	if !strings.Contains(s, "S → ε") {
		t.Fatalf("missing epsilon rendering in:\n%s", s)
	}
}

func TestFirstOfSeq(t *testing.T) {
	g := mustParse(t, `
%token a b
%start S
S : A b ;
A : a | ;
`)
	out := NewTermSet(g.NumSymbols())
	nullable := g.FirstOfSeq([]Sym{g.Lookup("A"), g.Lookup("b")}, out)
	if nullable {
		t.Fatalf("A b should not be nullable")
	}
	if !out.Has(g.Lookup("a")) || !out.Has(g.Lookup("b")) {
		t.Fatalf("FIRST(A b) = %s, want {a b}", out.Format(g))
	}
}

func TestBuilderDirect(t *testing.T) {
	b := NewBuilder()
	b.Terminals("id", "'('", "')'")
	b.Rule("Call", "id", "'('", "Arg*", "')'")
	b.Rule("Arg", "id")
	b.Start("Call")
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.Lookup("Arg*") == InvalidSym {
		t.Fatalf("Arg* missing")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
