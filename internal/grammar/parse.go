package grammar

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a yacc-like grammar description and builds the grammar.
//
// Syntax:
//
//	%token NAME ...          declare terminals
//	%left  SYM ...           precedence level, left associative
//	%right SYM ...           precedence level, right associative
//	%nonassoc SYM ...        precedence level, non-associative
//	%start NAME              start symbol
//
//	Lhs : A 'lit' B          productions; alternatives with '|';
//	    | C %prec SYM        optional %prec override;
//	    |                    empty alternative = epsilon;
//	    ;                    terminated by ';'
//
// A right-hand-side name may carry a sequence suffix: X* (zero or more X)
// or X+ (one or more X); these synthesize associative sequence nonterminals
// whose structure the parse dag may rebalance (paper §3.4). Quoted names
// ('+' or "while") are implicitly declared terminals. Comments run from
// "//" or "#" to end of line, or between "/*" and "*/".
func Parse(src string) (*Grammar, error) {
	p := &dslParser{b: NewBuilder(), src: src, line: 1}
	if err := p.run(); err != nil {
		return nil, err
	}
	return p.b.Build()
}

// MustParse is Parse but panics on error; intended for static grammar
// definitions in language packages and tests.
func MustParse(src string) *Grammar {
	g, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return g
}

type dslParser struct {
	b       *Builder
	src     string
	pos     int
	line    int
	tok     string // current token; "" at EOF
	pending []string
}

// unread pushes tok back so the next call to next returns it, and restores
// cur as the current token.
func (p *dslParser) unread(cur string) {
	p.pending = append(p.pending, p.tok)
	p.tok = cur
}

func (p *dslParser) errf(format string, args ...any) error {
	return &Error{Line: p.line, Msg: fmt.Sprintf(format, args...)}
}

// next advances to the next token. Token kinds: "%token"-style directives,
// identifiers (possibly with * or + suffix), quoted literals, and the
// punctuation ":", "|", ";".
func (p *dslParser) next() error {
	if n := len(p.pending); n > 0 {
		p.tok = p.pending[n-1]
		p.pending = p.pending[:n-1]
		return nil
	}
	src := p.src
	for p.pos < len(src) {
		c := src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '/' && p.pos+1 < len(src) && src[p.pos+1] == '/',
			c == '#':
			for p.pos < len(src) && src[p.pos] != '\n' {
				p.pos++
			}
		case c == '/' && p.pos+1 < len(src) && src[p.pos+1] == '*':
			end := strings.Index(src[p.pos+2:], "*/")
			if end < 0 {
				return p.errf("unterminated comment")
			}
			p.line += strings.Count(src[p.pos:p.pos+2+end+2], "\n")
			p.pos += 2 + end + 2
		default:
			goto scan
		}
	}
	p.tok = ""
	return nil

scan:
	start := p.pos
	c := src[p.pos]
	switch {
	case c == ':' || c == '|' || c == ';':
		p.pos++
		p.tok = string(c)
	case c == '\'' || c == '"':
		quote := c
		p.pos++
		for p.pos < len(src) && src[p.pos] != quote {
			if src[p.pos] == '\\' {
				p.pos++
			}
			if p.pos < len(src) && src[p.pos] == '\n' {
				return p.errf("newline in quoted symbol")
			}
			p.pos++
		}
		if p.pos >= len(src) {
			return p.errf("unterminated quoted symbol")
		}
		p.pos++
		p.tok = src[start:p.pos]
	case c == '%':
		p.pos++
		for p.pos < len(src) && isIdentChar(rune(src[p.pos])) {
			p.pos++
		}
		p.tok = src[start:p.pos]
	case isIdentStart(rune(c)):
		for p.pos < len(src) && isIdentChar(rune(src[p.pos])) {
			p.pos++
		}
		// Optional sequence suffix.
		if p.pos < len(src) && (src[p.pos] == '*' || src[p.pos] == '+') {
			p.pos++
		}
		p.tok = src[start:p.pos]
	default:
		return p.errf("unexpected character %q", string(c))
	}
	return nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentChar(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (p *dslParser) run() error {
	if err := p.next(); err != nil {
		return err
	}
	for p.tok != "" {
		switch p.tok {
		case "%token":
			if err := p.directive(func(names []string) { p.b.Terminals(names...) }); err != nil {
				return err
			}
		case "%left":
			if err := p.directive(func(names []string) { p.b.Left(names...) }); err != nil {
				return err
			}
		case "%right":
			if err := p.directive(func(names []string) { p.b.Right(names...) }); err != nil {
				return err
			}
		case "%nonassoc":
			if err := p.directive(func(names []string) { p.b.Nonassoc(names...) }); err != nil {
				return err
			}
		case "%start":
			if err := p.next(); err != nil {
				return err
			}
			if p.tok == "" || isPunct(p.tok) || strings.HasPrefix(p.tok, "%") {
				return p.errf("%%start requires a symbol name")
			}
			p.b.Start(p.tok)
			if err := p.next(); err != nil {
				return err
			}
		default:
			if isPunct(p.tok) || strings.HasPrefix(p.tok, "%") {
				return p.errf("unexpected %q at top level", p.tok)
			}
			if err := p.rule(); err != nil {
				return err
			}
		}
	}
	return nil
}

func isPunct(tok string) bool { return tok == ":" || tok == "|" || tok == ";" }

// directive collects symbol names until the next directive, punctuation, or
// a name followed by ":" (start of a rule).
func (p *dslParser) directive(apply func([]string)) error {
	if err := p.next(); err != nil {
		return err
	}
	var names []string
	for p.tok != "" && !isPunct(p.tok) && !strings.HasPrefix(p.tok, "%") {
		name := p.tok
		if err := p.next(); err != nil {
			return err
		}
		if p.tok == ":" {
			// name is actually the LHS of the first rule: push the ':' back
			// and stop the directive just before it.
			p.unread(name)
			break
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		return p.errf("directive requires at least one symbol")
	}
	apply(names)
	return nil
}

// rule parses "Lhs : alt | alt ... ;".
func (p *dslParser) rule() error {
	lhs := p.tok
	if strings.HasSuffix(lhs, "*") || strings.HasSuffix(lhs, "+") {
		return p.errf("sequence suffix not allowed on left-hand side %q", lhs)
	}
	if err := p.next(); err != nil {
		return err
	}
	if p.tok != ":" {
		return p.errf("expected ':' after rule name %q, got %q", lhs, p.tok)
	}
	if err := p.next(); err != nil {
		return err
	}
	for {
		var rhs []string
		prec := ""
		for p.tok != "" && !isPunct(p.tok) {
			if p.tok == "%prec" {
				if err := p.next(); err != nil {
					return err
				}
				if p.tok == "" || isPunct(p.tok) {
					return p.errf("%%prec requires a symbol")
				}
				prec = p.tok
				if err := p.next(); err != nil {
					return err
				}
				continue
			}
			if strings.HasPrefix(p.tok, "%") {
				return p.errf("unexpected directive %q inside rule", p.tok)
			}
			rhs = append(rhs, p.tok)
			if err := p.next(); err != nil {
				return err
			}
		}
		p.b.RuleWithPrec(lhs, prec, rhs...)
		switch p.tok {
		case "|":
			if err := p.next(); err != nil {
				return err
			}
		case ";":
			return p.next()
		case ":":
			return p.errf("missing ';' before new rule")
		default:
			return p.errf("unterminated rule %q (missing ';')", lhs)
		}
	}
}
