// Package grammar models context-free grammars extended with associative
// sequence notation (regular right parts), as used by the incremental GLR
// parser of Wagner & Graham (PLDI 1997). It provides a programmatic builder,
// a yacc-like textual grammar language, and the standard grammar analyses
// (nullable, FIRST, FOLLOW) required for LR table construction.
package grammar

import "fmt"

// Sym identifies a grammar symbol. Symbols are dense small integers indexing
// the grammar's symbol table. The first symbols are reserved:
//
//	EOF      — the end-of-input terminal ("$")
//	AugStart — the augmented start nonterminal (S' → start EOF)
type Sym int32

// Reserved symbols present in every grammar.
const (
	// EOF is the end-of-input terminal.
	EOF Sym = 0
	// AugStart is the augmented start symbol; production 0 is always
	// AugStart → start.
	AugStart Sym = 1
	// ErrorSym is a terminal reserved for lexically invalid tokens. No
	// production may use it, so the parser reports a syntax error when one
	// is reached — the paper's "errors are detected in the usual fashion".
	ErrorSym Sym = 2
	// NumReserved is the count of reserved symbols.
	NumReserved = 3
)

// InvalidSym is returned by lookups that fail.
const InvalidSym Sym = -1

// Assoc is the associativity of a terminal or production, used for static
// disambiguation of shift/reduce conflicts (the yacc-style filters of §4.1).
type Assoc uint8

// Associativity values.
const (
	AssocNone Assoc = iota // no declared associativity
	AssocLeft
	AssocRight
	AssocNonassoc
)

func (a Assoc) String() string {
	switch a {
	case AssocLeft:
		return "left"
	case AssocRight:
		return "right"
	case AssocNonassoc:
		return "nonassoc"
	default:
		return "none"
	}
}

// Symbol is an entry in the grammar's symbol table.
type Symbol struct {
	Name     string
	Terminal bool
	// Prec is the precedence level (>0 if declared; higher binds tighter).
	Prec int
	// Assoc is the declared associativity (terminals only).
	Assoc Assoc
	// SeqElem is the element symbol if this nonterminal was generated for a
	// sequence form (X* or X+); InvalidSym otherwise. Sequence nonterminals
	// are associative: their parse structure may be rebalanced freely.
	SeqElem Sym
	// Generated reports whether the symbol was synthesized by the builder
	// (sequence expansion) rather than written by the user.
	Generated bool
}

func (s Symbol) String() string { return s.Name }

// IsSequence reports whether the symbol is a generated associative-sequence
// nonterminal.
func (s Symbol) IsSequence() bool { return s.SeqElem != InvalidSym }

func fmtSym(g *Grammar, s Sym) string {
	if g == nil {
		return fmt.Sprintf("sym(%d)", s)
	}
	return g.Name(s)
}
