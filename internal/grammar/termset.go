package grammar

import (
	"strings"

	"iglr/internal/bitset"
)

// TermSet is a set of terminal symbols, backed by a bit set indexed by Sym.
type TermSet struct {
	bits bitset.Set
}

// NewTermSet returns an empty terminal set sized for a grammar with n
// symbols.
func NewTermSet(n int) TermSet { return TermSet{bits: bitset.New(n)} }

// Add inserts terminal t.
func (s TermSet) Add(t Sym) { s.bits.Add(int(t)) }

// Has reports whether terminal t is in the set.
func (s TermSet) Has(t Sym) bool { return s.bits.Has(int(t)) }

// Len returns the number of terminals in the set.
func (s TermSet) Len() int { return s.bits.Len() }

// Empty reports whether the set is empty.
func (s TermSet) Empty() bool { return s.bits.Empty() }

// Clone returns an independent copy.
func (s TermSet) Clone() TermSet { return TermSet{bits: s.bits.Clone()} }

// Equal reports element-wise equality.
func (s TermSet) Equal(t TermSet) bool { return s.bits.Equal(t.bits) }

// Elems returns the terminals in ascending order.
func (s TermSet) Elems() []Sym {
	ints := s.bits.Elems()
	out := make([]Sym, len(ints))
	for i, v := range ints {
		out[i] = Sym(v)
	}
	return out
}

// ForEach calls f for each terminal in ascending order.
func (s TermSet) ForEach(f func(Sym)) {
	s.bits.ForEach(func(i int) { f(Sym(i)) })
}

func (s TermSet) union(t TermSet) bool { return s.bits.Union(t.bits) }

// UnionWith adds every element of t to s, reporting whether s changed.
func (s TermSet) UnionWith(t TermSet) bool { return s.union(t) }

// Format renders the set with symbol names from g.
func (s TermSet) Format(g *Grammar) string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(t Sym) {
		if !first {
			b.WriteByte(' ')
		}
		first = false
		b.WriteString(g.Name(t))
	})
	b.WriteByte('}')
	return b.String()
}

// computeAnalyses fills in nullable, FIRST and FOLLOW for g.
func (g *Grammar) computeAnalyses() {
	n := len(g.symbols)
	g.nullable = make([]bool, n)
	g.first = make([]TermSet, n)
	g.follow = make([]TermSet, n)
	for i := range g.first {
		g.first[i] = NewTermSet(n)
		g.follow[i] = NewTermSet(n)
		if g.symbols[i].Terminal {
			g.first[i].Add(Sym(i))
		}
	}
	// Nullable: fixed point.
	for changed := true; changed; {
		changed = false
		for _, p := range g.prods {
			if g.nullable[p.LHS] {
				continue
			}
			if g.NullableSeq(p.RHS) {
				g.nullable[p.LHS] = true
				changed = true
			}
		}
	}
	// FIRST: fixed point.
	for changed := true; changed; {
		changed = false
		for _, p := range g.prods {
			f := g.first[p.LHS]
			for _, s := range p.RHS {
				if f.union(g.first[s]) {
					changed = true
				}
				if !g.nullable[s] {
					break
				}
			}
		}
	}
	// FOLLOW: EOF follows the start symbol; fixed point.
	g.follow[g.start].Add(EOF)
	g.follow[AugStart].Add(EOF)
	for changed := true; changed; {
		changed = false
		for _, p := range g.prods {
			for i, s := range p.RHS {
				if g.symbols[s].Terminal {
					continue
				}
				rest := p.RHS[i+1:]
				fs := g.follow[s]
				nullableRest := true
				for _, r := range rest {
					if fs.union(g.first[r]) {
						changed = true
					}
					if !g.nullable[r] {
						nullableRest = false
						break
					}
				}
				if nullableRest {
					if fs.union(g.follow[p.LHS]) {
						changed = true
					}
				}
			}
		}
	}
}
