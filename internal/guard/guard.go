// Package guard defines the resource budgets that bound every parse. The
// paper's empirical claim (§5) is that ambiguity in real programs is local
// and bounded; guard is what *enforces* a bound when the input is hostile
// or broken — a GLR-family parser degrades super-linearly on pathological
// input, so a production service must be able to cap the graph-structured
// stack, the dag arena, the per-region interpretation count, and wall-clock
// time, and abort (or degrade) a round that exceeds them.
//
// The mechanism is deliberately cheap: a Gauge is a handful of integer
// counters bumped on the allocation paths that already exist. Exceeding a
// budget panics with a typed *BudgetError; the parse entry points recover
// it and surface it as an ordinary error, leaving the last committed tree
// intact (only Commit publishes a root, so an aborted round is invisible).
// The ambiguity budget is the exception: the IGLR parser degrades instead
// of aborting, pruning the offending region to its statically preferred
// interpretation (see dag.Node.BudgetPruned).
package guard

import (
	"errors"
	"fmt"
	"time"
)

// Budget bounds the resources one parse may consume. The zero value is
// unlimited; each field is independent and a zero field disables that
// check. Budget marshals to JSON (MaxDuration as nanoseconds) so
// service configs can carry per-tenant quotas directly.
type Budget struct {
	// MaxGSSNodes caps graph-structured-stack nodes per parse. The GSS
	// grows with non-determinism, not input size, so this bounds fork
	// explosion from conflicted tables on adversarial input.
	MaxGSSNodes int `json:"max_gss_nodes,omitempty"`
	// MaxGSSLinks caps GSS links (edges) per parse — the quantity that
	// actually grows super-linearly in pathological GLR regions.
	MaxGSSLinks int `json:"max_gss_links,omitempty"`
	// MaxArenaNodes caps dag-arena node allocations per parse (measured as
	// growth over the arena's size when the parse began, so a long editing
	// session is not charged for its committed history).
	MaxArenaNodes int `json:"max_arena_nodes,omitempty"`
	// MaxAlternatives caps the interpretations retained per ambiguous
	// region (choice node). Because parse counts multiply through nested
	// regions, bounding the per-region fan-out bounds the forest. Unlike
	// the other budgets this one does not abort: the IGLR parser prunes
	// the region to its statically preferred alternative, marks the node
	// BudgetPruned, and continues.
	MaxAlternatives int `json:"max_alternatives,omitempty"`
	// MaxDuration caps a single parse's wall-clock time. Unlike context
	// cancellation (which is external), the deadline travels with the
	// budget so per-file policies need no timer plumbing.
	MaxDuration time.Duration `json:"max_duration_ns,omitempty"`
}

// Unlimited reports whether every check is disabled (the zero Budget).
func (b Budget) Unlimited() bool {
	return b.MaxGSSNodes <= 0 && b.MaxGSSLinks <= 0 && b.MaxArenaNodes <= 0 &&
		b.MaxAlternatives <= 0 && b.MaxDuration <= 0
}

// Resource names the budget dimension that tripped.
type Resource string

// Budgeted resources.
const (
	ResGSSNodes     Resource = "gss-nodes"
	ResGSSLinks     Resource = "gss-links"
	ResArenaNodes   Resource = "dag-nodes"
	ResAlternatives Resource = "alternatives"
	ResDeadline     Resource = "deadline"
)

// ErrBudget is matched by every *BudgetError via errors.Is, for callers
// who only care that a resource budget tripped, not which one.
var ErrBudget = errors.New("guard: resource budget exceeded")

// BudgetError reports which resource tripped and by how much. The parse
// that trips aborts; the document's last committed tree is untouched.
type BudgetError struct {
	// Resource is the dimension that tripped.
	Resource Resource
	// Limit is the configured bound; Used is the consumption that tripped
	// it. For ResDeadline both are nanoseconds.
	Limit, Used int64
}

func (e *BudgetError) Error() string {
	if e.Resource == ResDeadline {
		return fmt.Sprintf("guard: parse exceeded deadline %v (ran %v)",
			time.Duration(e.Limit), time.Duration(e.Used))
	}
	return fmt.Sprintf("guard: parse exceeded %s budget %d (used %d)", e.Resource, e.Limit, e.Used)
}

// Is reports a match against ErrBudget.
func (e *BudgetError) Is(target error) bool { return target == ErrBudget }

// Gauge tracks one parse's consumption against a Budget. It is embedded in
// a parser and Reset at every parse; the Add/Check methods are integer
// bumps and compares, cheap enough for the per-allocation paths. Methods
// panic with *BudgetError on a trip — the parser's entry point recovers it
// (see Recovered) and returns it as the parse error.
type Gauge struct {
	b        Budget
	gssNodes int
	gssLinks int
	deadline time.Time // zero when no MaxDuration is set
	started  time.Time
}

// Reset arms the gauge for a new parse under b.
func (g *Gauge) Reset(b Budget) {
	g.b = b
	g.gssNodes, g.gssLinks = 0, 0
	g.deadline = time.Time{}
	if b.MaxDuration > 0 {
		g.started = time.Now()
		g.deadline = g.started.Add(b.MaxDuration)
	}
}

// Budget returns the budget the gauge was armed with.
func (g *Gauge) Budget() Budget { return g.b }

// AddGSSNode charges one GSS node.
func (g *Gauge) AddGSSNode() {
	g.gssNodes++
	if g.b.MaxGSSNodes > 0 && g.gssNodes > g.b.MaxGSSNodes {
		panic(&BudgetError{Resource: ResGSSNodes, Limit: int64(g.b.MaxGSSNodes), Used: int64(g.gssNodes)})
	}
}

// AddGSSLink charges one GSS link.
func (g *Gauge) AddGSSLink() {
	g.gssLinks++
	if g.b.MaxGSSLinks > 0 && g.gssLinks > g.b.MaxGSSLinks {
		panic(&BudgetError{Resource: ResGSSLinks, Limit: int64(g.b.MaxGSSLinks), Used: int64(g.gssLinks)})
	}
}

// CheckDeadline trips when the parse has run past MaxDuration. Call it
// sparsely (it reads the clock): the parsers poll it on the same cadence
// as context cancellation.
func (g *Gauge) CheckDeadline() {
	if g.deadline.IsZero() {
		return
	}
	if now := time.Now(); now.After(g.deadline) {
		panic(&BudgetError{
			Resource: ResDeadline,
			Limit:    int64(g.b.MaxDuration),
			Used:     int64(now.Sub(g.started)),
		})
	}
}

// Recovered inspects a recovered panic value: a *BudgetError is returned
// for the parser to surface as the parse error; anything else (a real
// bug, or an injected fault) is re-panicked so it is not masked.
func Recovered(r any) *BudgetError {
	if be, ok := r.(*BudgetError); ok {
		return be
	}
	panic(r)
}
