package guard

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestZeroBudgetIsUnlimited(t *testing.T) {
	var b Budget
	if !b.Unlimited() {
		t.Fatal("zero Budget must be unlimited")
	}
	if (Budget{MaxGSSNodes: 1}).Unlimited() {
		t.Fatal("a set field must not read as unlimited")
	}

	var g Gauge
	g.Reset(b)
	for i := 0; i < 10000; i++ {
		g.AddGSSNode()
		g.AddGSSLink()
	}
	g.CheckDeadline() // no deadline armed: must not trip
}

// capture runs f and returns the *BudgetError it panics with (nil when f
// returns normally).
func capture(f func()) (be *BudgetError) {
	defer func() {
		if r := recover(); r != nil {
			be = r.(*BudgetError)
		}
	}()
	f()
	return nil
}

func TestGSSNodeBudgetTrips(t *testing.T) {
	var g Gauge
	g.Reset(Budget{MaxGSSNodes: 3})
	g.AddGSSNode()
	g.AddGSSNode()
	g.AddGSSNode()
	be := capture(func() { g.AddGSSNode() })
	if be == nil {
		t.Fatal("fourth node must trip a MaxGSSNodes=3 budget")
	}
	if be.Resource != ResGSSNodes || be.Limit != 3 || be.Used != 4 {
		t.Fatalf("got %+v", be)
	}
	if !errors.Is(be, ErrBudget) {
		t.Fatal("every BudgetError must match ErrBudget")
	}
}

func TestGSSLinkBudgetTrips(t *testing.T) {
	var g Gauge
	g.Reset(Budget{MaxGSSLinks: 1})
	g.AddGSSLink()
	be := capture(func() { g.AddGSSLink() })
	if be == nil || be.Resource != ResGSSLinks {
		t.Fatalf("got %+v", be)
	}
	// Nodes are not limited by a link budget.
	for i := 0; i < 100; i++ {
		g.AddGSSNode()
	}
}

func TestResetRearms(t *testing.T) {
	var g Gauge
	g.Reset(Budget{MaxGSSNodes: 1})
	g.AddGSSNode()
	g.Reset(Budget{MaxGSSNodes: 1})
	g.AddGSSNode() // fresh parse: count starts over
	if be := capture(func() { g.AddGSSNode() }); be == nil {
		t.Fatal("second node after re-arm must trip")
	}
}

func TestDeadlineTrips(t *testing.T) {
	var g Gauge
	g.Reset(Budget{MaxDuration: time.Nanosecond})
	time.Sleep(time.Millisecond)
	be := capture(func() { g.CheckDeadline() })
	if be == nil || be.Resource != ResDeadline {
		t.Fatalf("got %+v", be)
	}
	if be.Used < int64(time.Millisecond) {
		t.Fatalf("Used should report elapsed time, got %v", time.Duration(be.Used))
	}
	if !strings.Contains(be.Error(), "deadline") {
		t.Fatalf("deadline error text: %q", be.Error())
	}
}

func TestErrorText(t *testing.T) {
	be := &BudgetError{Resource: ResArenaNodes, Limit: 10, Used: 11}
	msg := be.Error()
	if !strings.Contains(msg, string(ResArenaNodes)) || !strings.Contains(msg, "10") {
		t.Fatalf("error text %q should name the resource and limit", msg)
	}
}

func TestRecoveredPassesBudgetErrors(t *testing.T) {
	want := &BudgetError{Resource: ResGSSNodes, Limit: 1, Used: 2}
	if got := Recovered(want); got != want {
		t.Fatalf("got %v", got)
	}
}

func TestRecoveredRepanicsOtherValues(t *testing.T) {
	defer func() {
		if r := recover(); r != "a real bug" {
			t.Fatalf("recovered %v, want the original panic value", r)
		}
	}()
	Recovered("a real bug")
	t.Fatal("Recovered must re-panic non-budget values")
}
