package iglr

import (
	"iglr/internal/dag"
	"iglr/internal/grammar"
)

// ParseTerminals batch-parses a terminal sequence (no subtree reuse) — the
// behavior of a conventional GLR parser (§3.1). The input must not include
// EOF; it is appended automatically.
func (p *Parser) ParseTerminals(input []TerminalInput) (*dag.Node, error) {
	a := dag.NewArena()
	return p.Parse(NewStream(a, TerminalNodes(a, input)))
}

// ParseSyms batch-parses a bare symbol sequence, using symbol names as
// lexeme text. Convenience for tests and examples.
func (p *Parser) ParseSyms(syms []grammar.Sym) (*dag.Node, error) {
	in := make([]TerminalInput, len(syms))
	for i, s := range syms {
		in[i] = TerminalInput{Sym: s, Text: p.g.Name(s)}
	}
	return p.ParseTerminals(in)
}

// CountParses returns the number of distinct parse trees the dag encodes —
// the size of the collapsed parse forest. Filtered interpretations are
// skipped. Shared subtrees are counted through, so the result can be
// exponential in dag size; counts are capped at Cap to avoid overflow.
func CountParses(root *dag.Node) int {
	memo := dag.AcquireScratch()
	defer dag.ReleaseScratch(memo)
	return countParses(root, memo)
}

// Cap bounds CountParses results.
const Cap = 1 << 30

func countParses(n *dag.Node, memo *dag.Scratch) int {
	if v, ok := memo.Value(n); ok {
		return v
	}
	var total int
	switch n.Kind {
	case dag.KindTerminal:
		total = 1
	case dag.KindChoice:
		for _, k := range n.Kids {
			if k.Filtered {
				continue
			}
			total += countParses(k, memo)
			if total > Cap {
				total = Cap
				break
			}
		}
		if total == 0 && len(n.Kids) > 0 { // all filtered: count them anyway
			for _, k := range n.Kids {
				total += countParses(k, memo)
			}
		}
	default:
		total = 1
		for _, k := range n.Kids {
			total *= countParses(k, memo)
			if total > Cap {
				total = Cap
				break
			}
		}
	}
	memo.SetValue(n, total)
	return total
}
