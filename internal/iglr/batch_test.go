package iglr

import (
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/grammar"
	"iglr/internal/lr"
)

func mk(t testing.TB, src string, opts lr.Options) *Parser {
	t.Helper()
	g, err := grammar.Parse(src)
	if err != nil {
		t.Fatalf("grammar: %v", err)
	}
	tbl, err := lr.Build(g, opts)
	if err != nil {
		t.Fatalf("table: %v", err)
	}
	return New(tbl)
}

func symsOf(t testing.TB, g *grammar.Grammar, names ...string) []grammar.Sym {
	t.Helper()
	out := make([]grammar.Sym, len(names))
	for i, n := range names {
		s := g.Lookup(n)
		if s == grammar.InvalidSym {
			t.Fatalf("unknown symbol %q", n)
		}
		out[i] = s
	}
	return out
}

func TestBatchDeterministicExpr(t *testing.T) {
	p := mk(t, `
%token ID
%left '+'
%left '*'
%start E
E : E '+' E | E '*' E | ID ;
`, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	root, err := p.ParseSyms(symsOf(t, g, "ID", "'+'", "ID", "'*'", "ID"))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if root.Sym != g.Lookup("E") {
		t.Fatalf("root symbol = %s", g.Name(root.Sym))
	}
	if root.Ambiguous() {
		t.Fatalf("precedence-resolved parse should be unambiguous:\n%s", dag.Format(g, root))
	}
	if n := CountParses(root); n != 1 {
		t.Fatalf("CountParses = %d, want 1", n)
	}
	// Left associativity + precedence: (ID + (ID*ID)).
	if root.Prod == -1 {
		t.Fatalf("root should be a production node")
	}
	plus := g.Lookup("'+'")
	if root.Kids[1].Sym != plus {
		t.Fatalf("top-level operator should be '+':\n%s", dag.Format(g, root))
	}
}

func TestBatchAmbiguousCounts(t *testing.T) {
	p := mk(t, `
%token x
%start S
S : S S | x ;
`, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	x := g.Lookup("x")
	// Catalan numbers: 1, 1, 2, 5, 14, 42 parses for 1..6 x's.
	want := []int{1, 1, 2, 5, 14, 42}
	for n := 1; n <= 6; n++ {
		input := make([]grammar.Sym, n)
		for i := range input {
			input[i] = x
		}
		root, err := p.ParseSyms(input)
		if err != nil {
			t.Fatalf("parse %d x's: %v", n, err)
		}
		if got := CountParses(root); got != want[n-1] {
			t.Fatalf("CountParses(%d) = %d, want %d", n, got, want[n-1])
		}
		if n >= 3 && !root.Ambiguous() {
			t.Fatalf("expected ambiguity for %d x's", n)
		}
	}
}

func TestBatchAmbiguousExprStats(t *testing.T) {
	p := mk(t, `
%token ID '+'
%start E
E : E '+' E | ID ;
`, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	root, err := p.ParseSyms(symsOf(t, g, "ID", "'+'", "ID", "'+'", "ID"))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := CountParses(root); got != 2 {
		t.Fatalf("CountParses = %d, want 2", got)
	}
	s := dag.Measure(root)
	if s.ChoiceNodes == 0 || s.AmbiguousRegions == 0 {
		t.Fatalf("expected choice nodes: %+v", s)
	}
	// Terminals must be shared between interpretations, not duplicated.
	if s.Terminals != 5 {
		t.Fatalf("terminals = %d, want 5 (shared)", s.Terminals)
	}
}

const figure7Src = `
%token x z c e
%start A
A : B c | D e ;
B : U z ;
D : V z ;
U : x ;
V : x ;
`

func TestFigure7DynamicLookahead(t *testing.T) {
	// The paper's Figure 7: LR(2) but unambiguous. A GLR parser with
	// LALR(1) tables forks on the U→x / V→x decision and collapses after
	// reading the decisive terminal; the loser is discarded.
	p := mk(t, figure7Src, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	for _, tc := range []struct {
		input []string
		bsym  string // the nonterminal built while parsers were split
	}{
		{[]string{"x", "z", "c"}, "B"},
		{[]string{"x", "z", "e"}, "D"},
	} {
		root, err := p.ParseSyms(symsOf(t, g, tc.input...))
		if err != nil {
			t.Fatalf("parse %v: %v", tc.input, err)
		}
		if root.Ambiguous() {
			t.Fatalf("figure 7 grammar is unambiguous; got:\n%s", dag.Format(g, root))
		}
		if n := CountParses(root); n != 1 {
			t.Fatalf("CountParses = %d, want 1", n)
		}
		if p.Stats.MaxActiveParsers < 2 {
			t.Fatalf("expected a parser split, max active = %d", p.Stats.MaxActiveParsers)
		}
		// Nodes reduced while >1 parser active record MultiState (the
		// dynamic-lookahead equivalence class): U/V and B/D.
		var multi, det []string
		root.Walk(func(n *dag.Node) {
			if n.Kind != dag.KindProduction {
				return
			}
			name := g.Name(n.Sym)
			if n.State == dag.MultiState {
				multi = append(multi, name)
			} else {
				det = append(det, name)
			}
		})
		joined := strings.Join(multi, " ")
		if !strings.Contains(joined, tc.bsym) {
			t.Fatalf("expected %s among MultiState nodes, got %v (det %v)", tc.bsym, multi, det)
		}
		// A is reduced after the collapse: deterministic state.
		foundA := false
		for _, d := range det {
			if d == "A" {
				foundA = true
			}
		}
		if !foundA {
			t.Fatalf("A should have a deterministic state; multi=%v det=%v", multi, det)
		}
	}
}

func TestBatchEpsilonUnsharing(t *testing.T) {
	p := mk(t, `
%token a b
%start S
S : A X B X ;
A : a ;
B : b ;
X : ;
`, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	root, err := p.ParseSyms(symsOf(t, g, "a", "b"))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if shared := dag.SharedNullYields(root); len(shared) != 0 {
		t.Fatalf("epsilon structure still shared after parse: %d nodes", len(shared))
	}
	// Both X instances exist and are distinct.
	var xs []*dag.Node
	root.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && g.Name(n.Sym) == "X" {
			xs = append(xs, n)
		}
	})
	if len(xs) != 2 {
		t.Fatalf("X instances = %d, want 2", len(xs))
	}
}

func TestBatchSyntaxError(t *testing.T) {
	p := mk(t, `
%token a b
%start S
S : a b ;
`, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	_, err := p.ParseSyms(symsOf(t, g, "a", "a"))
	if err == nil {
		t.Fatal("expected syntax error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.SymName != "a" || se.TokenIndex != 1 {
		t.Fatalf("error = %+v", se)
	}
	// Incomplete input.
	_, err = p.ParseSyms(symsOf(t, g, "a"))
	if err == nil {
		t.Fatal("expected error for incomplete input")
	}
}

func TestBatchEmptyInput(t *testing.T) {
	p := mk(t, `
%token a
%start S
S : a | ;
`, lr.Options{Method: lr.LALR})
	root, err := p.ParseTerminals(nil)
	if err != nil {
		t.Fatalf("empty parse: %v", err)
	}
	if root.Yield() != "" {
		t.Fatalf("yield = %q", root.Yield())
	}
}

func TestBatchSequenceGrammar(t *testing.T) {
	p := mk(t, `
%token x ';'
%start Block
Block : Stmt* ;
Stmt : x ';' ;
`, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	var input []grammar.Sym
	for i := 0; i < 20; i++ {
		input = append(input, g.Lookup("x"), g.Lookup("';'"))
	}
	root, err := p.ParseSyms(input)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	bal := dag.Rebalance(p.arena, g, root)
	var seqRoot *dag.Node
	bal.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindSeq && seqRoot == nil {
			seqRoot = n
		}
	})
	if seqRoot == nil {
		t.Fatalf("no balanced sequence structure after Rebalance")
	}
	if got := dag.SeqLen(seqRoot); got != 20 {
		t.Fatalf("SeqLen = %d, want 20", got)
	}
}

func TestBatchNestedAmbiguity(t *testing.T) {
	// PP-attachment-style ambiguity with nesting: sharing must keep the
	// dag polynomial while the forest is exponential.
	p := mk(t, `
%token x
%start S
S : S S | x ;
`, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	n := 14
	input := make([]grammar.Sym, n)
	for i := range input {
		input[i] = g.Lookup("x")
	}
	root, err := p.ParseSyms(input)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	st := dag.Measure(root)
	if st.DagNodes > 3000 {
		t.Fatalf("dag nodes = %d; sharing is broken", st.DagNodes)
	}
	if c := CountParses(root); c != 742900 { // Catalan(13)
		t.Fatalf("CountParses = %d, want 742900", c)
	}
}

func TestStatsPopulated(t *testing.T) {
	p := mk(t, figure7Src, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	if _, err := p.ParseSyms(symsOf(t, g, "x", "z", "c")); err != nil {
		t.Fatal(err)
	}
	s := p.Stats
	if s.TerminalShifts != 3 || s.Reductions == 0 || s.Rounds == 0 {
		t.Fatalf("stats = %+v", s)
	}
}
