package iglr

import (
	"iglr/internal/dag"
	"iglr/internal/faultinject"
	"iglr/internal/lr"
)

// Burst mode: a linear-stack fast path through deterministic input regions.
//
// When exactly one parser is active the GSS is a chain and every round of
// parseNextSymbol degenerates to "run the unique reduce cascade, then shift"
// — but still pays for the worklist, the active/forActor/forShifter
// bookkeeping, a GSS node + link per step, and the per-round resets. Burst
// replays that degenerate case on two flat slices (an int32 state stack and
// a parallel dag-node stack) grown on top of the single active GSS node,
// and falls back to the round engine the moment anything non-degenerate
// shows up.
//
// The contract is byte-identity with the round engine, and it is enforced
// structurally: for each lookahead the cascade is first *simulated* on
// states alone, and nodes are committed only if the simulation reaches a
// clean shift. Every other outcome — a conflicted or empty table cell, an
// accept, a dead goto, a reduction that would reach the lookahead's round
// baseline or an earlier goto of the same cascade (where the round engine
// would merge into an existing active parser), or a walk through a GSS node
// with other than one link — exits with *nothing* committed for that
// lookahead, so the round engine re-derives it from scratch and takes its
// own path. Committed work is exactly the work the round engine would have
// done, in the same order, with the same stats and gauge charges; only the
// GSS nodes for popped intermediate states are never materialized (they are
// unobservable — the round engine's equivalents die inert in the active
// list and are recycled at the next parse).
type burstStep struct {
	rule int32
	gt   int32
	pops int32
}

// burstEligible reports whether the fast path may run for lookahead la:
// a lone unambiguous parser, a terminal lookahead, and none of the
// facilities that hook individual round steps (tracing, fault injection).
func (p *Parser) burstEligible(la *dag.Node) bool {
	return !p.NoBurst && len(p.active) == 1 && !p.multiple &&
		la.IsTerminal() && p.Trace == nil && !faultinject.Enabled()
}

// burst consumes terminals until the input stops being degenerate, then
// rebuilds the GSS chain for whatever is on the linear stack and hands
// control back to the round engine (which the caller must invoke next —
// burst guarantees no progress on the lookahead it exits on).
func (p *Parser) burst() error {
	base := p.active[0]
	states := append(p.bStates[:0], int32(base.state))
	nodes := append(p.bNodes[:0], nil)
	// roundBase is the state of the parser a fresh round would start from —
	// the findActive baseline the simulation checks gotos against.
	roundBase := base.state
	polls := 0

	defer func() {
		// Materialize the burst-built stack entries as a GSS chain under the
		// round engine's single active parser. No gauge charges here: each
		// entry was charged when it was committed.
		cur := base
		for i := 1; i < len(states); i++ {
			n := p.gssNodes.get(int(states[i]))
			n.link0 = gssLink{head: cur, node: nodes[i]}
			n.nlinks = 1
			cur = n
		}
		p.active = append(p.active[:0], cur)
		p.bStates, p.bNodes = states[:0], nodes[:0]
	}()

	for {
		la := p.stream.La()
		if la == nil || !la.IsTerminal() {
			return nil
		}

		// --- Simulate la's cascade on states only. ---
		steps := p.bSteps[:0]
		pushed := p.bSim[:0]
		simBase := base
		simDepth := len(states) // linear entries still standing
		target := int32(-1)     // shift target once the cascade resolves
		for {
			polls++
			if polls%checkEvery == 0 {
				if p.ctx != nil {
					if err := p.ctx.Err(); err != nil {
						return err
					}
				}
				p.gauge.CheckDeadline()
			}
			var top int32
			switch {
			case len(pushed) > 0:
				top = pushed[len(pushed)-1]
			case simDepth > 1:
				top = states[simDepth-1]
			default:
				top = int32(simBase.state)
			}
			act, n := p.table.OneAction(int(top), la.Sym)
			if n != 1 || act.Kind == lr.Accept {
				p.bSteps, p.bSim = steps[:0], pushed[:0]
				return nil
			}
			if act.Kind == lr.Shift {
				target = act.Target
				break
			}
			prod := p.g.Production(int(act.Target))
			k := prod.Arity()
			if t := min(k, len(pushed)); t > 0 {
				pushed = pushed[:len(pushed)-t]
				k -= t
			}
			if t := min(k, simDepth-1); t > 0 {
				simDepth -= t
				k -= t
			}
			for ; k > 0; k-- {
				if simBase.nlinks != 1 {
					p.bSteps, p.bSim = steps[:0], pushed[:0]
					return nil
				}
				simBase = simBase.link0.head
			}
			var under int32
			switch {
			case len(pushed) > 0:
				under = pushed[len(pushed)-1]
			case simDepth > 1:
				under = states[simDepth-1]
			default:
				under = int32(simBase.state)
			}
			gt := p.table.Goto(int(under), prod.LHS)
			if gt < 0 || gt == roundBase {
				p.bSteps, p.bSim = steps[:0], pushed[:0]
				return nil
			}
			for _, s := range steps {
				if int(s.gt) == gt {
					// A second parser in state gt: the round engine would
					// merge interpretations instead of stacking.
					p.bSteps, p.bSim = steps[:0], pushed[:0]
					return nil
				}
			}
			steps = append(steps, burstStep{rule: act.Target, gt: int32(gt), pops: int32(prod.Arity())})
			pushed = append(pushed, int32(gt))
		}
		p.bSteps, p.bSim = steps, pushed[:0]

		// --- Commit: the cascade is degenerate, build it for real. ---
		for _, step := range steps {
			p.Stats.Reductions++
			k := int(step.pops)
			var kids []*dag.Node
			if avail := len(nodes) - 1; k <= avail {
				kids = nodes[len(nodes)-k:]
				states = states[:len(states)-k]
				nodes = nodes[:len(nodes)-k]
			} else {
				j := k - avail
				if cap(p.kidsBuf) < k {
					p.kidsBuf = make([]*dag.Node, k)
				}
				kids = p.kidsBuf[:k]
				copy(kids[j:], nodes[1:])
				cur := base
				for i := j - 1; i >= 0; i-- {
					kids[i] = cur.link0.node
					cur = cur.link0.head
				}
				base = cur
				states = append(states[:0], int32(base.state))
				nodes = nodes[:1]
			}
			if p.stubNode != nil && len(kids) > 0 && kids[0] == p.stubNode {
				prod := p.g.Production(int(step.rule))
				if !prod.Seq || prod.LHS != p.stubSym {
					panic(chunkAbort{})
				}
			}
			p.noteNullKids(kids)
			var node *dag.Node
			if old := retained(int(step.rule), kids); old != nil {
				old.State = step.gt
				node = old
				p.Stats.RetainedNodes++
			} else {
				owned := p.arena.Kids(len(kids))
				copy(owned, kids)
				node = p.arena.Production(p.g.Production(int(step.rule)).LHS, int(step.rule), int(step.gt), owned)
			}
			p.gauge.AddGSSNode()
			p.gauge.AddGSSLink()
			states = append(states, step.gt)
			nodes = append(nodes, node)
		}

		// Shift la, exactly as the shifter would for one parser.
		la.State = int32(target)
		la.Changed = false
		p.Stats.Rounds++
		p.Stats.Shifts++
		p.Stats.TerminalShifts++
		if p.Stats.MaxActiveParsers < 1 {
			p.Stats.MaxActiveParsers = 1
		}
		p.tokens++
		p.gauge.AddGSSNode()
		p.gauge.AddGSSLink()
		states = append(states, target)
		nodes = append(nodes, la)
		roundBase = int(target)
		p.stream.Pop()
	}
}
