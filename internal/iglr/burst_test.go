package iglr

import (
	"fmt"
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/grammar"
	"iglr/internal/lr"
)

// burstGrammars covers the spectrum the fast path must be transparent
// across: fully deterministic, locally ambiguous, and pathological.
var burstGrammars = []struct {
	name string
	src  string
	gen  func(g *grammar.Grammar, n int) []grammar.Sym
}{
	{
		name: "deterministic-stmts",
		src: `
%token ID NUM '=' ';' '+'
%start Prog
Prog : Stmt* ;
Stmt : ID '=' Expr ';' ;
Expr : Expr '+' Term | Term ;
Term : ID | NUM ;
`,
		gen: func(g *grammar.Grammar, n int) []grammar.Sym {
			id, num, eq, semi, plus := g.Lookup("ID"), g.Lookup("NUM"), g.Lookup("'='"), g.Lookup("';'"), g.Lookup("'+'")
			var out []grammar.Sym
			for i := 0; i < n; i++ {
				out = append(out, id, eq, num, plus, id, semi)
			}
			return out
		},
	},
	{
		name: "ambiguous-expr",
		src: `
%token ID '+' ';'
%start Prog
Prog : Stmt* ;
Stmt : Expr ';' ;
Expr : Expr '+' Expr | ID ;
`,
		gen: func(g *grammar.Grammar, n int) []grammar.Sym {
			id, plus, semi := g.Lookup("ID"), g.Lookup("'+'"), g.Lookup("';'")
			var out []grammar.Sym
			for i := 0; i < n; i++ {
				out = append(out, id, plus, id, plus, id, semi)
			}
			return out
		},
	},
	{
		name: "catalan",
		src: `
%token x
%start S
S : S S | x ;
`,
		gen: func(g *grammar.Grammar, n int) []grammar.Sym {
			x := g.Lookup("x")
			out := make([]grammar.Sym, n%7+1)
			for i := range out {
				out[i] = x
			}
			return out
		},
	},
}

// TestBurstMatchesRounds holds the round engine up as the oracle: with and
// without the fast path, structure and stats must be identical.
func TestBurstMatchesRounds(t *testing.T) {
	for _, bg := range burstGrammars {
		t.Run(bg.name, func(t *testing.T) {
			g, err := grammar.Parse(bg.src)
			if err != nil {
				t.Fatal(err)
			}
			tbl, err := lr.Build(g, lr.Options{Method: lr.LALR})
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range []int{1, 3, 17, 120} {
				input := bg.gen(g, n)
				fast, slow := New(tbl), New(tbl)
				slow.NoBurst = true
				rootF, errF := fast.ParseSyms(input)
				rootS, errS := slow.ParseSyms(input)
				if (errF == nil) != (errS == nil) {
					t.Fatalf("n=%d: burst err %v, rounds err %v", n, errF, errS)
				}
				if errF != nil {
					continue
				}
				if got, want := dag.Format(g, rootF), dag.Format(g, rootS); got != want {
					t.Fatalf("n=%d: burst tree differs from rounds tree", n)
				}
				if fast.Stats != slow.Stats {
					t.Fatalf("n=%d: stats differ:\n  burst:  %+v\n  rounds: %+v", n, fast.Stats, slow.Stats)
				}
			}
		})
	}
}

// TestBurstErrorParity: syntax errors (position, expected set) must be
// identical with and without the fast path.
func TestBurstErrorParity(t *testing.T) {
	g, err := grammar.Parse(`
%token ID NUM '=' ';'
%start Prog
Prog : Stmt* ;
Stmt : ID '=' NUM ';' ;
`)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := lr.Build(g, lr.Options{Method: lr.LALR})
	if err != nil {
		t.Fatal(err)
	}
	id, num, eq, semi := g.Lookup("ID"), g.Lookup("NUM"), g.Lookup("'='"), g.Lookup("';'")
	cases := [][]grammar.Sym{
		{id, eq, num},                          // truncated
		{id, eq, eq, num, semi},                // bad token mid-statement
		{id, eq, num, semi, id, id},            // error after a clean prefix
		{num},                                  // wrong first token
		{id, eq, num, semi, id, eq, num, semi}, // no error at all
	}
	for i, input := range cases {
		fast, slow := New(tbl), New(tbl)
		slow.NoBurst = true
		_, errF := fast.ParseSyms(input)
		_, errS := slow.ParseSyms(input)
		switch {
		case (errF == nil) != (errS == nil):
			t.Fatalf("case %d: burst err %v, rounds err %v", i, errF, errS)
		case errF != nil && errF.Error() != errS.Error():
			t.Fatalf("case %d: error text differs:\n  burst:  %v\n  rounds: %v", i, errF, errS)
		}
		if fast.Stats != slow.Stats {
			t.Fatalf("case %d: stats differ:\n  burst:  %+v\n  rounds: %+v", i, fast.Stats, slow.Stats)
		}
	}
}

// TestBurstLongDeterministicRun sanity-checks that the fast path stays
// byte-identical over input long enough to cross every internal buffer
// boundary (kids chunks, GSS arena chunks, poll intervals).
func TestBurstLongDeterministicRun(t *testing.T) {
	g, err := grammar.Parse(`
%token ID NUM '=' ';' '+'
%start Prog
Prog : Stmt* ;
Stmt : ID '=' Expr ';' ;
Expr : Expr '+' Term | Term ;
Term : ID | NUM ;
`)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := lr.Build(g, lr.Options{Method: lr.LALR})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	id, num, eq, semi, plus := g.Lookup("ID"), g.Lookup("NUM"), g.Lookup("'='"), g.Lookup("';'"), g.Lookup("'+'")
	var input []grammar.Sym
	// 1200 statements crosses every buffer boundary; much deeper and the
	// Format oracle (quadratic in chain depth from indentation) dominates
	// the test's runtime.
	for i := 0; i < 1200; i++ {
		input = append(input, id, eq, num)
		for j := 0; j < i%5; j++ {
			input = append(input, plus, id)
		}
		input = append(input, semi)
	}
	_ = sb
	fast, slow := New(tbl), New(tbl)
	slow.NoBurst = true
	rootF, err := fast.ParseSyms(input)
	if err != nil {
		t.Fatal(err)
	}
	rootS, err := slow.ParseSyms(input)
	if err != nil {
		t.Fatal(err)
	}
	if dag.Format(g, rootF) != dag.Format(g, rootS) {
		t.Fatal("burst tree differs on long input")
	}
	if fast.Stats != slow.Stats {
		t.Fatalf("stats differ:\n  burst:  %+v\n  rounds: %+v", fast.Stats, slow.Stats)
	}
	if fmt.Sprint(fast.Stats) == "" {
		t.Fatal("unreachable")
	}
}
