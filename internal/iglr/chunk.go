package iglr

import (
	"context"
	"sync"

	"iglr/internal/dag"
	"iglr/internal/faultinject"
	"iglr/internal/grammar"
	"iglr/internal/lr"
)

// Chunked parallel parsing over the top-level associative sequence (§3.4).
//
// Every bundled language has the shape `Start : Elem*` (or Elem+): the tree
// is a left-recursive chain of sequence productions over independent
// elements. That chain is a seam for parallelism. The token stream is cut
// at positions a cheap prescan believes to be element boundaries (after a
// terminal in LAST(Elem), at bracket depth zero — the cut operates on
// already-lexed tokens, so delimiters inside string or comment *text* are
// structurally invisible and multi-byte runes cannot straddle a seam).
// Each chunk is parsed concurrently by an ordinary Parser into its own
// arena: worker 0 from the real start state, worker w>0 from a two-node
// GSS [start, seqState] whose link carries a stub standing in for the
// not-yet-known chain of everything to its left. After its last token each
// worker *replays* the pending reductions using the first token of the next
// chunk as lookahead and must end in exactly [start, chain@seqState] — the
// configuration the next worker assumed. The fragments are then spliced
// (the stub of chunk w is replaced by the chain of chunk w-1, covers
// recomputed up the left spine), node IDs are renumbered densely into the
// document arena's ID space, and the final reductions to the start symbol
// run sequentially on the caller's goroutine.
//
// The fallback contract: anything the scheme cannot prove is handed back —
// ParseChunked returns ok=false and the caller parses sequentially. That
// covers unqualified grammars, unbalanced or uncuttable inputs, a boundary
// that turns out not to end an element (the replay cannot reach the
// handoff shape), a reduction that would consume the stub other than as
// the left operand of a chain production, ambiguity touching the chain
// spine, or a worker syntax error (the sequential parse may still succeed,
// and if not, it owns error reporting). Until the splice commits, the
// document arena is untouched, so falling back is free of side effects.
// Chunked success is byte-identical to the sequential parse: each worker
// runs the same table from the same configuration the sequential parser
// would reach, and the handoff shape is verified, not assumed.

// chunkAbort unwinds a worker that detected a condition requiring the
// sequential fallback.
type chunkAbort struct{}

// chunkPlan is the per-table analysis enabling chunked parsing.
type chunkPlan struct {
	chainSym grammar.Sym // the X+ chain nonterminal
	elemSym  grammar.Sym // X
	seqState int         // Goto(start state, chainSym)
	isLast   []bool      // by Sym: terminal may end an element
	bracket  []int8      // by Sym: +1 open, -1 close, 0 neither
}

// planChunks analyzes the table's grammar; nil when the top level is not a
// §3.4 sequence the chunker can use.
func planChunks(t *lr.Table) *chunkPlan {
	g := t.Grammar()
	sprods := g.ProductionsFor(g.Start())
	if len(sprods) != 1 || sprods[0].Arity() != 1 {
		return nil
	}
	top := sprods[0].RHS[0]
	if g.IsTerminal(top) || !g.Symbol(top).IsSequence() {
		return nil
	}
	chain := top
	if lp := g.ProductionsFor(top); len(lp) == 2 && (lp[0].IsEpsilon() || lp[1].IsEpsilon()) {
		// X*: the chain is the X+ behind its non-ε production.
		chain = grammar.InvalidSym
		for _, p := range lp {
			if !p.IsEpsilon() && p.Arity() == 1 && !g.IsTerminal(p.RHS[0]) {
				chain = p.RHS[0]
			}
		}
		if chain == grammar.InvalidSym || !g.Symbol(chain).IsSequence() {
			return nil
		}
	}
	elem := g.Symbol(chain).SeqElem
	// The chain must be exactly the generated left-recursive pair
	// X+ → X | X+ X, so a worker's stub is consumed by one chain reduction.
	cp := g.ProductionsFor(chain)
	if len(cp) != 2 {
		return nil
	}
	okSingle, okPair := false, false
	for _, p := range cp {
		switch {
		case p.Seq && p.Arity() == 1 && p.RHS[0] == elem:
			okSingle = true
		case p.Seq && p.Arity() == 2 && p.RHS[0] == chain && p.RHS[1] == elem:
			okPair = true
		}
	}
	if !okSingle || !okPair {
		return nil
	}
	seqState := t.Goto(t.StartState(), chain)
	if seqState < 0 {
		return nil
	}

	plan := &chunkPlan{
		chainSym: chain,
		elemSym:  elem,
		seqState: seqState,
		isLast:   lastTerminals(g, elem),
		bracket:  bracketMap(g),
	}
	any := false
	for _, b := range plan.isLast {
		if b {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	return plan
}

// lastTerminals computes LAST(elem): the terminals that can end an element,
// by the usual fixpoint (walking each RHS right to left through nullable
// suffixes).
func lastTerminals(g *grammar.Grammar, elem grammar.Sym) []bool {
	n := g.NumSymbols()
	last := make([][]bool, n)
	row := func(s grammar.Sym) []bool {
		if last[s] == nil {
			last[s] = make([]bool, n)
		}
		return last[s]
	}
	for changed := true; changed; {
		changed = false
		for _, p := range g.Productions() {
			dst := row(p.LHS)
			for i := len(p.RHS) - 1; i >= 0; i-- {
				s := p.RHS[i]
				if g.IsTerminal(s) {
					if !dst[s] {
						dst[s] = true
						changed = true
					}
					break
				}
				for t, ok := range row(s) {
					if ok && !dst[t] {
						dst[t] = true
						changed = true
					}
				}
				if !g.Nullable(s) {
					break
				}
			}
		}
	}
	if g.IsTerminal(elem) {
		r := make([]bool, n)
		r[elem] = true
		return r
	}
	return row(elem)
}

// bracketMap classifies terminals by their literal name: (, [, { open a
// nesting level; ), ], } close one. The prescan only cuts at depth zero, so
// an element-final terminal inside any bracketed region never becomes a
// seam candidate.
func bracketMap(g *grammar.Grammar) []int8 {
	out := make([]int8, g.NumSymbols())
	for _, s := range g.Terminals() {
		name := g.Name(s)
		if len(name) == 3 && (name[0] == '\'' || name[0] == '"') && name[2] == name[0] {
			name = name[1:2]
		}
		if len(name) != 1 {
			continue
		}
		switch name[0] {
		case '(', '[', '{':
			out[s] = 1
		case ')', ']', '}':
			out[s] = -1
		}
	}
	return out
}

// cutPoints selects up to nchunks-1 boundaries (indices into terms where a
// new chunk starts), aiming at equal-sized chunks. Returns nil when the
// stream is unbalanced or offers no usable seams.
func (plan *chunkPlan) cutPoints(terms []*dag.Node, nchunks int) []int {
	if nchunks < 2 || len(terms) < 2 {
		return nil
	}
	target := len(terms) / nchunks
	if target < 1 {
		return nil
	}
	var cuts []int
	depth := 0
	next := target
	for i, t := range terms {
		switch plan.bracket[t.Sym] {
		case 1:
			depth++
		case -1:
			depth--
			if depth < 0 {
				return nil
			}
		}
		if depth == 0 && plan.isLast[t.Sym] && i+1 >= next && i+1 < len(terms) {
			cuts = append(cuts, i+1)
			if len(cuts) == nchunks-1 {
				break
			}
			next = i + 1 + target
		}
	}
	return cuts
}

// chunkStream feeds one worker its token range; the boundary token is
// readable as the next chunk's first terminal but never served here, so a
// worker cannot shift past its seam.
type chunkStream struct {
	arena  *dag.Arena
	terms  []*dag.Node
	i, end int
}

func (cs *chunkStream) La() *dag.Node {
	if cs.i >= cs.end {
		return nil
	}
	return cs.terms[cs.i]
}

func (cs *chunkStream) Pop() {
	if cs.i < cs.end {
		cs.i++
	}
}

func (cs *chunkStream) Breakdown() { panic("iglr: breakdown of a terminal chunk stream") }

func (cs *chunkStream) Arena() *dag.Arena { return cs.arena }

// chunkOut is one worker's result.
type chunkOut struct {
	top       *dag.Node  // the chain node at seqState after replay
	stub      *dag.Node  // the placeholder (nil for worker 0)
	arena     *dag.Arena // worker-private arena, first ID = T
	stats      Stats
	anyNondet  bool
	sawNullKid bool
	ok         bool
	err        error
}

// runChunk parses terms[lo:hi] on a fresh parser, then replays the pending
// reductions under boundary (the first terminal of the next chunk, or the
// document EOF for the last chunk) down to the handoff shape.
func runChunk(ctx context.Context, table *lr.Table, plan *chunkPlan, terms []*dag.Node, lo, hi int, boundary *dag.Node, baseID int) (out chunkOut) {
	defer func() {
		if r := recover(); r != nil {
			if _, isAbort := r.(chunkAbort); isAbort {
				out = chunkOut{ok: false}
				return
			}
			panic(r)
		}
	}()
	arena := dag.NewArenaAt(baseID)
	p := New(table)
	p.ctx = ctx
	cs := &chunkStream{arena: arena, terms: terms, i: lo, end: hi}
	p.stream = cs
	p.arena = arena
	p.gauge.Reset(p.Budget)
	p.Stats = Stats{}
	p.sh.reset()
	p.gssNodes.reset()
	p.gssLinks.reset()
	p.accepting = nil
	p.multiple = false
	p.anyNondet = false
	p.sawNullKid = false
	p.tokens = 0

	bottom := p.newGSSNode(table.StartState())
	if lo == 0 {
		p.active = append(p.active[:0], bottom)
	} else {
		stub := arena.Production(plan.chainSym, -1, plan.seqState, nil)
		head := p.newGSSNode(plan.seqState)
		p.addLink(head, bottom, stub)
		p.active = append(p.active[:0], head)
		p.stubNode, p.stubSym = stub, plan.chainSym
		out.stub = stub
	}

	for {
		la := cs.La()
		if la == nil {
			break
		}
		if p.burstEligible(la) {
			if err := p.burst(); err != nil {
				return chunkOut{err: err}
			}
			if cs.La() == nil {
				break
			}
		}
		if err := p.parseNextSymbol(); err != nil {
			if _, isSyntax := err.(*SyntaxError); isSyntax {
				// The sequential parse may still succeed (e.g. a mis-cut
				// boundary); hand the whole input back.
				return chunkOut{ok: false}
			}
			return chunkOut{err: err}
		}
		if p.accepting != nil {
			return chunkOut{ok: false}
		}
	}

	top, ok := p.replayToHandoff(plan, boundary, bottom)
	if !ok {
		return chunkOut{ok: false}
	}
	out.top = top
	out.arena = arena
	out.stats = p.Stats
	out.anyNondet = p.anyNondet
	out.sawNullKid = p.sawNullKid
	out.ok = true
	return out
}

// replayToHandoff runs the reductions still pending at the chunk seam,
// using boundary as the lookahead, until the stack is exactly
// [start, chain@seqState] — the configuration the next worker started
// from. Every other outcome means the cut was not an element boundary.
func (p *Parser) replayToHandoff(plan *chunkPlan, boundary *dag.Node, bottom *gssNode) (*dag.Node, bool) {
	if p.accepting != nil || len(p.active) != 1 || p.multiple {
		return nil, false
	}
	// Materialize the (necessarily linear) stack, top first.
	states := p.bStates[:0]
	nodes := p.bNodes[:0]
	for cur := p.active[0]; cur != bottom; {
		if cur.nlinks != 1 {
			return nil, false
		}
		states = append(states, int32(cur.state))
		nodes = append(nodes, cur.link0.node)
		cur = cur.link0.head
	}
	// Reverse into bottom-first order.
	for i, j := 0, len(states)-1; i < j; i, j = i+1, j-1 {
		states[i], states[j] = states[j], states[i]
		nodes[i], nodes[j] = nodes[j], nodes[i]
	}
	defer func() { p.bStates, p.bNodes = states[:0], nodes[:0] }()

	limit := 2*len(states) + 64
	for iter := 0; ; iter++ {
		if len(states) == 1 && int(states[0]) == plan.seqState && nodes[0].Sym == plan.chainSym {
			return nodes[0], true
		}
		if iter >= limit || len(states) == 0 {
			return nil, false
		}
		act, n := p.table.OneAction(int(states[len(states)-1]), boundary.Sym)
		if n != 1 || act.Kind != lr.Reduce {
			return nil, false
		}
		prod := p.g.Production(int(act.Target))
		k := prod.Arity()
		if k > len(states) {
			return nil, false
		}
		kids := nodes[len(nodes)-k:]
		if p.stubNode != nil && len(kids) > 0 && kids[0] == p.stubNode &&
			(!prod.Seq || prod.LHS != p.stubSym) {
			return nil, false
		}
		under := p.table.StartState()
		if k < len(states) {
			under = int(states[len(states)-1-k])
		}
		gt := p.table.Goto(under, prod.LHS)
		if gt < 0 {
			return nil, false
		}
		p.Stats.Reductions++
		p.noteNullKids(kids)
		owned := p.arena.Kids(k)
		copy(owned, kids)
		node := p.arena.Production(prod.LHS, int(act.Target), gt, owned)
		states = append(states[:len(states)-k], int32(gt))
		nodes = append(nodes[:len(nodes)-k], node)
	}
}

// renumberFragment assigns dense IDs base, base+1, ... to the worker-built
// nodes reachable from top (document terminals and the stub are skipped),
// returning the count. seen and the traversal stack are caller-provided
// scratch; the traversal is iterative because the chain spine is as deep as
// the chunk has elements.
func renumberFragment(top, stub *dag.Node, firstID, arenaEnd, base int, stack, list []*dag.Node) (int, []*dag.Node, []*dag.Node) {
	seen := make([]bool, arenaEnd-firstID)
	list = list[:0]
	stack = append(stack[:0], top)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == stub || int(n.ID) < firstID {
			continue
		}
		idx := int(n.ID) - firstID
		if seen[idx] {
			continue
		}
		seen[idx] = true
		list = append(list, n)
		for _, k := range n.Kids {
			stack = append(stack, k)
		}
	}
	for i, n := range list {
		n.ID = int32(base + i)
	}
	return len(list), stack, list
}

// spliceFragment replaces fragment w's stub with the chain built by the
// fragments to its left, recomputing covers up the left spine. The spine
// must be pure deterministic chain structure; anything else (a choice node
// from ambiguity reaching the top level) aborts the splice.
func spliceFragment(g *grammar.Grammar, plan *chunkPlan, top, stub, left *dag.Node) bool {
	var spine []*dag.Node
	for cur := top; ; cur = cur.Kids[0] {
		if cur.Kind != dag.KindProduction || cur.Sym != plan.chainSym ||
			!g.Production(int(cur.Prod)).Seq || len(cur.Kids) == 0 {
			return false
		}
		spine = append(spine, cur)
		if cur.Kids[0] == stub {
			break
		}
	}
	spine[len(spine)-1].Kids[0] = left
	for i := len(spine) - 1; i >= 0; i-- {
		spine[i].RecomputeCover()
	}
	return true
}

// chunkMinTokens is the smallest stream worth cutting: below this the
// coordination overhead swamps any parallel win.
const chunkMinTokens = 2048

// maxChunkWorkers caps the fan-out: chunks are sized ~tokens/workers, and
// far beyond the core count extra chunks only add splice and replay
// overhead. The cap is deliberately not GOMAXPROCS — oversubscribed
// goroutines still make progress (and keep the path testable on small
// machines); the caller picks the count that matches its hardware.
const maxChunkWorkers = 64

// ParseChunked parses a cold token stream with workers goroutines over the
// top-level sequence seam. On ok=true the returned root is byte-identical
// to what the sequential parser would build over the same terminals, the
// document arena has adopted the fragment nodes (IDs dense and unique), and
// stats aggregates all workers. ok=false means the input or grammar did not
// qualify and NOTHING was changed — the caller must parse sequentially.
// A non-nil error is real (cancellation) regardless of ok.
func ParseChunked(ctx context.Context, table *lr.Table, terms []*dag.Node, eof *dag.Node, docArena *dag.Arena, workers int) (*dag.Node, Stats, bool, error) {
	if workers > maxChunkWorkers {
		workers = maxChunkWorkers
	}
	if workers < 2 || len(terms) < chunkMinTokens || faultinject.Enabled() {
		return nil, Stats{}, false, nil
	}
	plan := planChunks(table)
	if plan == nil {
		return nil, Stats{}, false, nil
	}
	cuts := plan.cutPoints(terms, workers)
	if len(cuts) == 0 {
		return nil, Stats{}, false, nil
	}

	T := docArena.NumNodes()
	bounds := append(append([]int{0}, cuts...), len(terms))
	outs := make([]chunkOut, len(bounds)-1)
	var wg sync.WaitGroup
	for w := 0; w < len(outs); w++ {
		lo, hi := bounds[w], bounds[w+1]
		boundary := eof
		if hi < len(terms) {
			boundary = terms[hi]
		}
		wg.Add(1)
		go func(w, lo, hi int, boundary *dag.Node) {
			defer wg.Done()
			outs[w] = runChunk(ctx, table, plan, terms, lo, hi, boundary, T)
		}(w, lo, hi, boundary)
	}
	wg.Wait()

	var stats Stats
	stats.ChunkWorkers = len(outs)
	anyNondet, sawNullKid := false, false
	for _, o := range outs {
		if o.err != nil {
			return nil, Stats{}, false, o.err
		}
		if !o.ok {
			return nil, Stats{}, false, nil
		}
		stats.Shifts += o.stats.Shifts
		stats.SubtreeShifts += o.stats.SubtreeShifts
		stats.TerminalShifts += o.stats.TerminalShifts
		stats.Reductions += o.stats.Reductions
		stats.Breakdowns += o.stats.Breakdowns
		stats.Splits += o.stats.Splits
		stats.Rounds += o.stats.Rounds
		stats.RetainedNodes += o.stats.RetainedNodes
		stats.BudgetPruned += o.stats.BudgetPruned
		if o.stats.MaxActiveParsers > stats.MaxActiveParsers {
			stats.MaxActiveParsers = o.stats.MaxActiveParsers
		}
		anyNondet = anyNondet || o.anyNondet
		sawNullKid = sawNullKid || o.sawNullKid
	}

	// Renumber each fragment into a dense shared ID space (before splicing,
	// while fragments are still disjoint), then wire them together.
	base := T
	var stack, list []*dag.Node
	var count int
	for w := range outs {
		count, stack, list = renumberFragment(outs[w].top, outs[w].stub, T, outs[w].arena.NumNodes(), base, stack, list)
		base += count
	}
	g := table.Grammar()
	for w := 1; w < len(outs); w++ {
		if !spliceFragment(g, plan, outs[w].top, outs[w].stub, outs[w-1].top) {
			return nil, Stats{}, false, nil
		}
	}
	docArena.AdvanceTo(base)

	// Final reductions to the start symbol, on the document arena.
	root, tailReds, ok := replayTail(table, plan, outs[len(outs)-1].top, eof, docArena)
	if !ok {
		return nil, Stats{}, false, nil
	}
	stats.Reductions += tailReds
	// Same gate as the sequential epilogue: the walk only matters when a
	// worker both used nondeterministic machinery and attached a null-yield
	// subtree somewhere (splice-built chain edges are always non-null — every
	// element contains at least its cut terminal).
	if anyNondet && sawNullKid {
		dag.UnshareEpsilon(docArena, root)
	}
	return root, stats, true, nil
}

// replayTail reduces [start, chain@seqState] under EOF to the accepted
// start-symbol node — the tail every chunk handed off to.
func replayTail(table *lr.Table, plan *chunkPlan, chain, eof *dag.Node, arena *dag.Arena) (*dag.Node, int, bool) {
	g := table.Grammar()
	states := []int32{int32(table.StartState()), int32(plan.seqState)}
	nodes := []*dag.Node{nil, chain}
	reds := 0
	for iter := 0; iter < 64; iter++ {
		act, n := table.OneAction(int(states[len(states)-1]), eof.Sym)
		if n != 1 {
			return nil, 0, false
		}
		switch act.Kind {
		case lr.Accept:
			return nodes[len(nodes)-1], reds, true
		case lr.Reduce:
			prod := g.Production(int(act.Target))
			k := prod.Arity()
			if k > len(states)-1 {
				return nil, 0, false
			}
			kids := arena.Kids(k)
			copy(kids, nodes[len(nodes)-k:])
			states = states[:len(states)-k]
			nodes = nodes[:len(nodes)-k]
			gt := table.Goto(int(states[len(states)-1]), prod.LHS)
			if gt < 0 {
				return nil, 0, false
			}
			node := arena.Production(prod.LHS, int(act.Target), gt, kids)
			states = append(states, int32(gt))
			nodes = append(nodes, node)
			reds++
		default:
			return nil, 0, false
		}
	}
	return nil, 0, false
}
