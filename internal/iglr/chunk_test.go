package iglr

import (
	"fmt"
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/document"
	"iglr/internal/grammar"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// chunkLang is a statement-list language with brackets and (optionally)
// ambiguous expressions — the shape chunked parsing targets.
type chunkLang struct {
	g    *grammar.Grammar
	spec *lexer.Spec
	tbl  *lr.Table
	m    map[int]grammar.Sym
}

func newChunkLang(t testing.TB, ambiguous bool) *chunkLang {
	t.Helper()
	expr := "Expr : Expr '+' Term | Term ;\nTerm : ID | NUM | '(' Expr ')' | '{' Stmt* '}' ;"
	if ambiguous {
		expr = "Expr : Expr '+' Expr | ID | NUM | '(' Expr ')' | '{' Stmt* '}' ;"
	}
	g, err := grammar.Parse(`
%token ID NUM '=' ';' '+' '(' ')' '{' '}'
%start Prog
Prog : Stmt* ;
Stmt : ID '=' Expr ';' ;
` + expr + "\n")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := lexer.NewSpec([]lexer.Rule{
		{Name: "WS", Pattern: `[ \t\n]+`, Skip: true},
		{Name: "ID", Pattern: `[a-zA-Z_][a-zA-Z0-9_]*`},
		{Name: "NUM", Pattern: `[0-9]+`},
		{Name: "EQ", Pattern: `=`},
		{Name: "SEMI", Pattern: `;`},
		{Name: "PLUS", Pattern: `\+`},
		{Name: "LP", Pattern: `\(`},
		{Name: "RP", Pattern: `\)`},
		{Name: "LB", Pattern: `\{`},
		{Name: "RB", Pattern: `\}`},
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := lr.Build(g, lr.Options{Method: lr.LALR})
	if err != nil {
		t.Fatal(err)
	}
	m := map[int]grammar.Sym{
		spec.RuleIndex("ID"):   g.Lookup("ID"),
		spec.RuleIndex("NUM"):  g.Lookup("NUM"),
		spec.RuleIndex("EQ"):   g.Lookup("'='"),
		spec.RuleIndex("SEMI"): g.Lookup("';'"),
		spec.RuleIndex("PLUS"): g.Lookup("'+'"),
		spec.RuleIndex("LP"):   g.Lookup("'('"),
		spec.RuleIndex("RP"):   g.Lookup("')'"),
		spec.RuleIndex("LB"):   g.Lookup("'{'"),
		spec.RuleIndex("RB"):   g.Lookup("'}'"),
	}
	return &chunkLang{g: g, spec: spec, tbl: tbl, m: m}
}

func (l *chunkLang) doc(src string) *document.Document {
	return document.New(l.spec, l.g, func(r int, s string) grammar.Sym { return l.m[r] }, src)
}

// chunkSource builds a program big enough to chunk, salted with nested
// brackets so the prescan has depth to track.
func chunkSource(stmts int) string {
	var sb strings.Builder
	for i := 0; i < stmts; i++ {
		switch i % 4 {
		case 0:
			fmt.Fprintf(&sb, "v%d = v%d + %d;\n", i, i, i)
		case 1:
			fmt.Fprintf(&sb, "v%d = (v%d + (%d + x));\n", i, i, i)
		case 2:
			fmt.Fprintf(&sb, "v%d = { a = 1; b = (2 + c); };\n", i)
		default:
			fmt.Fprintf(&sb, "v%d = %d;\n", i, i)
		}
	}
	return sb.String()
}

func (l *chunkLang) parseSequential(t *testing.T, src string) *dag.Node {
	t.Helper()
	d := l.doc(src)
	p := New(l.tbl)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func (l *chunkLang) parseChunked(t *testing.T, src string, workers int) (*dag.Node, Stats, bool) {
	t.Helper()
	d := l.doc(src)
	root, stats, ok, err := ParseChunked(nil, l.tbl, d.Terminals(), d.EOFNode(), d.Arena(), workers)
	if err != nil {
		t.Fatal(err)
	}
	return root, stats, ok
}

// TestChunkedMatchesSequential is the core differential: for a qualifying
// input the chunked parse must engage and build a byte-identical tree.
func TestChunkedMatchesSequential(t *testing.T) {
	for _, amb := range []bool{false, true} {
		name := "deterministic"
		if amb {
			name = "ambiguous"
		}
		t.Run(name, func(t *testing.T) {
			l := newChunkLang(t, amb)
			src := chunkSource(500)
			want := dag.Format(l.g, l.parseSequential(t, src))
			for _, workers := range []int{2, 3, 4, 8} {
				root, stats, ok := l.parseChunked(t, src, workers)
				if !ok {
					t.Fatalf("workers=%d: chunked parse did not engage", workers)
				}
				if got := dag.Format(l.g, root); got != want {
					t.Fatalf("workers=%d: chunked tree differs from sequential", workers)
				}
				if stats.TerminalShifts == 0 || stats.Reductions == 0 {
					t.Fatalf("workers=%d: implausible stats %+v", workers, stats)
				}
			}
		})
	}
}

// TestChunkedRespectsBrackets: every element boundary inside brackets must
// be ignored, so a program that is one giant bracketed statement cannot be
// cut and falls back (ok=false) without touching the arena.
func TestChunkedRespectsBrackets(t *testing.T) {
	l := newChunkLang(t, false)
	var sb strings.Builder
	sb.WriteString("top = {\n")
	for i := 0; i < 600; i++ {
		fmt.Fprintf(&sb, "v%d = v%d + %d;\n", i, i, i)
	}
	sb.WriteString("};\n")
	src := sb.String()

	d := l.doc(src)
	before := d.Arena().NumNodes()
	root, _, ok, err := ParseChunked(nil, l.tbl, d.Terminals(), d.EOFNode(), d.Arena(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok || root != nil {
		t.Fatal("single bracketed statement must not be chunkable")
	}
	if d.Arena().NumNodes() != before {
		t.Fatalf("fallback leaked %d nodes into the document arena", d.Arena().NumNodes()-before)
	}
	// The sequential fallback must still parse it.
	p := New(l.tbl)
	if _, err := p.Parse(d.Stream()); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedSmallInputFallsBack: below the minimum token count the chunked
// path must decline.
func TestChunkedSmallInputFallsBack(t *testing.T) {
	l := newChunkLang(t, false)
	d := l.doc("a = 1; b = 2;")
	_, _, ok, err := ParseChunked(nil, l.tbl, d.Terminals(), d.EOFNode(), d.Arena(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("tiny input must not be chunked")
	}
}

// TestChunkedNonSequenceGrammar: a grammar whose top level is not an
// associative sequence has no seam; planChunks must reject it.
func TestChunkedNonSequenceGrammar(t *testing.T) {
	g, err := grammar.Parse(`
%token ID '+'
%start E
E : E '+' ID | ID ;
`)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := lr.Build(g, lr.Options{Method: lr.LALR})
	if err != nil {
		t.Fatal(err)
	}
	if planChunks(tbl) != nil {
		t.Fatal("non-sequence top level must not produce a chunk plan")
	}
}

// TestChunkPlan pins the plan analysis on the test language: the chain is
// the generated Stmt+, the seam terminals include ';' and '}', and the
// bracket classification covers all three pairs.
func TestChunkPlan(t *testing.T) {
	l := newChunkLang(t, false)
	plan := planChunks(l.tbl)
	if plan == nil {
		t.Fatal("statement-list grammar must be chunkable")
	}
	if !l.g.Symbol(plan.chainSym).IsSequence() {
		t.Fatalf("chain %s is not a sequence symbol", l.g.Name(plan.chainSym))
	}
	if plan.seqState < 0 {
		t.Fatal("no goto for the chain from the start state")
	}
	if !plan.isLast[l.g.Lookup("';'")] {
		t.Fatal("';' must be in LAST(Stmt)")
	}
	if plan.isLast[l.g.Lookup("'='")] {
		t.Fatal("'=' cannot end a statement")
	}
	for name, want := range map[string]int8{
		"'('": 1, "')'": -1, "'{'": 1, "'}'": -1, "';'": 0, "ID": 0,
	} {
		if got := plan.bracket[l.g.Lookup(name)]; got != want {
			t.Fatalf("bracket[%s] = %d, want %d", name, got, want)
		}
	}
}

// TestCutPointsBalanced: cuts land only at depth zero, after seam terminals,
// and never produce an empty chunk.
func TestCutPointsBalanced(t *testing.T) {
	l := newChunkLang(t, false)
	plan := planChunks(l.tbl)
	d := l.doc(chunkSource(400))
	terms := d.Terminals()
	cuts := plan.cutPoints(terms, 4)
	if len(cuts) == 0 {
		t.Fatal("no cuts on a qualifying input")
	}
	semi, rb := l.g.Lookup("';'"), l.g.Lookup("'}'")
	prev := 0
	for _, c := range cuts {
		if c <= prev || c >= len(terms) {
			t.Fatalf("cut %d out of range (prev %d, len %d)", c, prev, len(terms))
		}
		if s := terms[c-1].Sym; s != semi && s != rb {
			t.Fatalf("cut %d follows %s, want a LAST(Stmt) terminal", c, l.g.Name(s))
		}
		depth := 0
		for _, n := range terms[prev:c] {
			depth += int(plan.bracket[n.Sym])
		}
		if depth != 0 {
			t.Fatalf("chunk ending at %d is bracket-unbalanced (depth %d)", c, depth)
		}
		prev = c
	}
}

// TestChunkedIDsDense: after a successful chunked parse the adopted nodes
// must have unique IDs below the arena watermark — the Scratch contract.
func TestChunkedIDsDense(t *testing.T) {
	l := newChunkLang(t, false)
	d := l.doc(chunkSource(500))
	root, _, ok, err := ParseChunked(nil, l.tbl, d.Terminals(), d.EOFNode(), d.Arena(), 4)
	if err != nil || !ok {
		t.Fatalf("chunked parse: ok=%v err=%v", ok, err)
	}
	n := d.Arena().NumNodes()
	seen := make([]bool, n)
	var walk func(nd *dag.Node)
	var dup, oob int
	walk = func(nd *dag.Node) {
		if int(nd.ID) >= n || nd.ID < 0 {
			oob++
			return
		}
		if seen[nd.ID] {
			return
		}
		seen[nd.ID] = true
		for _, k := range nd.Kids {
			walk(k)
		}
	}
	walk(root)
	if oob != 0 {
		t.Fatalf("%d nodes with IDs outside [0,%d)", oob, n)
	}
	// Re-walk counting distinct visits vs total edges would be circular;
	// instead verify no two distinct nodes share an ID by walking again
	// with a node-pointer table.
	byID := make(map[int32]*dag.Node)
	var walk2 func(nd *dag.Node)
	walk2 = func(nd *dag.Node) {
		if prev, ok := byID[nd.ID]; ok {
			if prev != nd {
				dup++
			}
			return
		}
		byID[nd.ID] = nd
		for _, k := range nd.Kids {
			walk2(k)
		}
	}
	walk2(root)
	if dup != 0 {
		t.Fatalf("%d duplicate IDs in the spliced tree", dup)
	}
}
