package iglr

import "unsafe"

// Footprint estimates the parser's retained scratch bytes: the recycled
// GSS node/link chunks and the reusable round/burst buffers. This is the
// session-resident cost of keeping a warm parser around between edits
// (the arenas rewind but never shrink), not the transient cost of one
// parse — exactly what the memory governor accounts per session.
func (p *Parser) Footprint() int64 {
	n := int64(len(p.gssNodes.chunks)) * gssChunk * int64(unsafe.Sizeof(gssNode{}))
	n += int64(len(p.gssLinks.chunks)) * gssChunk * int64(unsafe.Sizeof(gssLink{}))
	n += int64(cap(p.kidsBuf)+cap(p.bNodes)+cap(p.active)+cap(p.forActor)) * 8
	n += int64(cap(p.forShifter)) * int64(unsafe.Sizeof(shiftPair{}))
	n += int64(cap(p.bStates)+cap(p.bSim)) * 4
	n += int64(cap(p.bSteps)) * int64(unsafe.Sizeof(burstStep{}))
	return n
}
