package iglr

import (
	"testing"

	"iglr/internal/dag"
	"iglr/internal/grammar"
	"iglr/internal/lr"
)

// Harder GLR workloads: grammars with ε inside non-determinism, deep
// lookahead requirements, dense ambiguity, and right-context traps.

func TestLR3Grammar(t *testing.T) {
	// Needs three tokens of lookahead: the x/y decision is revealed only
	// by the final terminal.
	p := mk(t, `
%token a z w c d
%start S
S : X c | Y d ;
X : a Pad ;
Y : a Pad ;
Pad : z w ;
`, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	for _, tc := range []struct {
		last string
		want string
	}{{"c", "X"}, {"d", "Y"}} {
		root, err := p.ParseSyms(symsOf(t, g, "a", "z", "w", tc.last))
		if err != nil {
			t.Fatalf("%s: %v", tc.last, err)
		}
		if CountParses(root) != 1 {
			t.Fatalf("%s: ambiguous", tc.last)
		}
		found := false
		root.Walk(func(n *dag.Node) {
			if n.Kind == dag.KindProduction && g.Name(n.Sym) == tc.want {
				found = true
			}
		})
		if !found {
			t.Fatalf("expected %s in tree", tc.want)
		}
	}
	// Wrong continuation is a syntax error, not a crash.
	if _, err := p.ParseSyms(symsOf(t, g, "a", "z", "w")); err == nil {
		t.Fatal("truncated input should fail")
	}
}

func TestEpsilonInsideAmbiguity(t *testing.T) {
	// Both interpretations contain ε-subtrees; after parsing, every
	// ε instance must be unshared (§3.5).
	p := mk(t, `
%token a b
%start S
S : A X b | B X b ;
A : a ;
B : a ;
X : ;
`, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	root, err := p.ParseSyms(symsOf(t, g, "a", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if CountParses(root) != 2 {
		t.Fatalf("parses = %d, want 2", CountParses(root))
	}
	if shared := dag.SharedNullYields(root); len(shared) != 0 {
		t.Fatalf("ε-structure still shared: %d nodes", len(shared))
	}
	// Each interpretation owns its own X instance.
	xCount := 0
	root.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && g.Name(n.Sym) == "X" {
			xCount++
		}
	})
	if xCount != 2 {
		t.Fatalf("X instances = %d, want 2", xCount)
	}
}

func TestTripleAmbiguity(t *testing.T) {
	// Three interpretations of the same yield through distinct rules.
	p := mk(t, `
%token a
%start S
S : A | B | C ;
A : a a ;
B : a a ;
C : a a ;
`, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	root, err := p.ParseSyms(symsOf(t, g, "a", "a"))
	if err != nil {
		t.Fatal(err)
	}
	if got := CountParses(root); got != 3 {
		t.Fatalf("parses = %d, want 3", got)
	}
	st := dag.Measure(root)
	if st.MaxAlternatives != 3 {
		t.Fatalf("widest choice = %d, want 3", st.MaxAlternatives)
	}
	// All three interpretations share the same two terminal instances.
	if st.Terminals != 2 {
		t.Fatalf("terminals = %d, want 2 (shared)", st.Terminals)
	}
}

func TestNestedForkCollapseFork(t *testing.T) {
	// Two LR(2) regions in sequence: fork, collapse, fork again.
	p := mk(t, `
%token x z c e ';'
%start S
S : A ';' A ;
A : B c | D e ;
B : U z ;
D : V z ;
U : x ;
V : x ;
`, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	root, err := p.ParseSyms(symsOf(t, g, "x", "z", "c", "';'", "x", "z", "e"))
	if err != nil {
		t.Fatal(err)
	}
	if CountParses(root) != 1 {
		t.Fatal("should be unambiguous")
	}
	if p.Stats.Splits < 2 {
		t.Fatalf("expected two split episodes, stats %+v", p.Stats)
	}
	// First region resolved to B, second to D.
	var seq []string
	root.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction {
			name := g.Name(n.Sym)
			if name == "B" || name == "D" {
				seq = append(seq, name)
			}
		}
	})
	if len(seq) != 2 || seq[0] == seq[1] {
		t.Fatalf("regions = %v", seq)
	}
}

func TestRightContextInvalidation(t *testing.T) {
	// The A-vs-C trap: `a` reduces differently depending on the FOLLOWING
	// terminal, so changing that terminal must invalidate the reduction
	// even though the subtree's own yield is untouched (§3.2 right-context
	// check).
	g, err := grammar.Parse(`
%token a b c
%start S
S : A b | C c ;
A : a ;
C : a ;
`)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := lr.Build(g, lr.Options{Method: lr.LALR})
	if err != nil {
		t.Fatal(err)
	}
	p := New(tbl)
	root, err := p.ParseSyms([]grammar.Sym{g.Lookup("a"), g.Lookup("b")})
	if err != nil {
		t.Fatal(err)
	}
	hasA := false
	root.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && g.Name(n.Sym) == "A" {
			hasA = true
		}
	})
	if !hasA {
		t.Fatal("first parse should contain A")
	}
	// (The incremental variant of this trap is covered by the document
	// tests; here we confirm batch GLR handles both readings.)
	root2, err := p.ParseSyms([]grammar.Sym{g.Lookup("a"), g.Lookup("c")})
	if err != nil {
		t.Fatal(err)
	}
	hasC := false
	root2.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && g.Name(n.Sym) == "C" {
			hasC = true
		}
	})
	if !hasC {
		t.Fatal("second parse should contain C")
	}
}

func TestDeepAmbiguitySharingBounds(t *testing.T) {
	// 30 tokens of S→SS|x: the forest is astronomically large, the dag
	// polynomial; parse time must stay sane and counting must cap.
	p := mk(t, `
%token x
%start S
S : S S | x ;
`, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	input := make([]grammar.Sym, 30)
	for i := range input {
		input[i] = g.Lookup("x")
	}
	root, err := p.ParseSyms(input)
	if err != nil {
		t.Fatal(err)
	}
	if CountParses(root) != Cap {
		t.Fatalf("count should cap at %d", Cap)
	}
	st := dag.Measure(root)
	if st.DagNodes > 40000 {
		t.Fatalf("dag nodes = %d; sharing insufficient", st.DagNodes)
	}
}

func TestParserReuseAcrossParses(t *testing.T) {
	// One Parser value must be safely reusable for many parses.
	p := mk(t, `
%token a b
%start S
S : a S b | ;
`, lr.Options{Method: lr.LALR})
	g := p.Grammar()
	for depth := 0; depth < 30; depth++ {
		var input []grammar.Sym
		for i := 0; i < depth; i++ {
			input = append(input, g.Lookup("a"))
		}
		for i := 0; i < depth; i++ {
			input = append(input, g.Lookup("b"))
		}
		if _, err := p.ParseSyms(input); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
	}
}
