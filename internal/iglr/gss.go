package iglr

import "iglr/internal/dag"

// gssNode is one vertex of the graph-structured parse stack: an automaton
// state reached by one or more parsers. The GSS is transient — it exists
// only while parsing, unlike the persistent GSS of Ferro & Dion that the
// paper argues against (§3.3). The first link is stored inline: outside
// non-deterministic regions every node has exactly one.
type gssNode struct {
	state  int
	link0  gssLink
	extra  []*gssLink
	nlinks int
	// processed marks nodes whose actor turn already ran this round
	// (do_limited_reductions re-scans only those).
	processed bool
}

// gssLink is a GSS edge. head is the predecessor (earlier, closer to the
// bottom of the stack); node is the dag subtree spanning the edge.
type gssLink struct {
	head *gssNode
	node *dag.Node
}

func (n *gssNode) numLinks() int { return n.nlinks }

func (n *gssNode) linkAt(i int) *gssLink {
	if i == 0 {
		return &n.link0
	}
	return n.extra[i-1]
}

// directLink returns the link from n to head, if any.
func (n *gssNode) directLink(head *gssNode) *gssLink {
	for i := 0; i < n.nlinks; i++ {
		if l := n.linkAt(i); l.head == head {
			return l
		}
	}
	return nil
}

// gssChunk is the nodes (or links) per arena chunk.
const gssChunk = 256

// gssNodeArena recycles gssNode storage across parses: chunks are allocated
// once and reset() rewinds the cursor, so a steady-state incremental round
// creates no garbage. Chunks are never moved, so node pointers stay stable
// for the lifetime of one parse — paths() and directLink compare them.
// Recycled nodes keep their extra slice's capacity.
type gssNodeArena struct {
	chunks [][]gssNode
	ci, ni int
}

func (a *gssNodeArena) reset() { a.ci, a.ni = 0, 0 }

func (a *gssNodeArena) get(state int) *gssNode {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]gssNode, gssChunk))
	}
	n := &a.chunks[a.ci][a.ni]
	a.ni++
	if a.ni == gssChunk {
		a.ci++
		a.ni = 0
	}
	*n = gssNode{state: state, extra: n.extra[:0]}
	return n
}

// gssLinkArena recycles the non-inline gssLink allocations the same way.
// Link pointer identity matters within a parse (the `via` restriction of
// do_limited_reductions), never across parses.
type gssLinkArena struct {
	chunks [][]gssLink
	ci, ni int
}

func (a *gssLinkArena) reset() { a.ci, a.ni = 0, 0 }

func (a *gssLinkArena) get(head *gssNode, node *dag.Node) *gssLink {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]gssLink, gssChunk))
	}
	l := &a.chunks[a.ci][a.ni]
	a.ni++
	if a.ni == gssChunk {
		a.ci++
		a.ni = 0
	}
	*l = gssLink{head: head, node: node}
	return l
}

// gssPath is a reduction path: the traversed links, ordered from the top of
// the stack toward the bottom (left-to-right reversal yields the RHS kids).
type gssPath struct {
	links []*gssLink
	tail  *gssNode // the node reached after traversing links
}

// paths enumerates every path of exactly length links starting at n. When
// via is non-nil, only paths traversing that link are yielded
// (do_limited_reductions).
func paths(n *gssNode, length int, via *gssLink, f func(gssPath)) {
	var walk func(cur *gssNode, depth int, usedVia bool, acc []*gssLink)
	walk = func(cur *gssNode, depth int, usedVia bool, acc []*gssLink) {
		if depth == length {
			if via == nil || usedVia {
				f(gssPath{links: append([]*gssLink(nil), acc...), tail: cur})
			}
			return
		}
		// Snapshot the link count: links added while this enumeration runs
		// (reducer → do_limited_reductions re-entrancy) are handled by
		// their own limited re-scan, not picked up mid-walk.
		n0 := cur.nlinks
		for i := 0; i < n0; i++ {
			l := cur.linkAt(i)
			walk(l.head, depth+1, usedVia || l == via, append(acc, l))
		}
	}
	walk(n, 0, false, nil)
}

// kids extracts the dag nodes along the path in left-to-right (RHS) order.
func (p gssPath) kids() []*dag.Node {
	out := make([]*dag.Node, len(p.links))
	for i, l := range p.links {
		out[len(p.links)-1-i] = l.node
	}
	return out
}
