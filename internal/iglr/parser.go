package iglr

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"iglr/internal/dag"
	"iglr/internal/faultinject"
	"iglr/internal/grammar"
	"iglr/internal/guard"
	"iglr/internal/lr"
)

// SyntaxError reports a failed parse: no active parser could act on the
// lookahead.
type SyntaxError struct {
	// Sym and Text describe the offending lookahead.
	Sym  grammar.Sym
	Text string
	// SymName is the grammar name of Sym.
	SymName string
	// TokenIndex is the number of terminals consumed before the error.
	TokenIndex int
	// Expected lists the terminals any active parser could have accepted
	// instead, by name, sorted.
	Expected []string
}

func (e *SyntaxError) Error() string {
	msg := fmt.Sprintf("syntax error at %s %q (token %d)", e.SymName, e.Text, e.TokenIndex)
	if len(e.Expected) > 0 {
		max := len(e.Expected)
		ell := ""
		if max > 6 {
			max, ell = 6, ", …"
		}
		msg += ", expected " + strings.Join(e.Expected[:max], ", ") + ell
	}
	return msg
}

// Stats counts parser work, used by the §5 and §3.4 experiments.
type Stats struct {
	Shifts           int // shift operations (terminals and subtrees)
	SubtreeShifts    int // whole-subtree shifts via state matching
	TerminalShifts   int // terminal shifts
	Reductions       int
	Breakdowns       int // left_breakdown invocations
	Splits           int // rounds in which >1 parser was active
	MaxActiveParsers int
	Rounds           int // parse_next_symbol invocations
	RetainedNodes    int // old nodes reused by bottom-up node retention [25]
	BudgetPruned     int // ambiguous regions pruned by the ambiguity budget
	ChunkWorkers     int // chunks a successful parallel cold parse used (0: sequential)
}

// retained implements bottom-up node reuse: if every child was reused from
// the committed tree and they still share their old parent, which applied
// the same production over exactly these children, that parent node is the
// reduction's result. Node identity (and with it any annotations or
// semantic attributes) survives the reparse.
func retained(rule int, kids []*dag.Node) *dag.Node {
	if len(kids) == 0 {
		return nil // ε instances are always rebuilt (§3.5)
	}
	old := kids[0].Parent
	if old == nil || !old.Committed || old.Kind != dag.KindProduction ||
		int(old.Prod) != rule || len(old.Kids) != len(kids) {
		return nil
	}
	for i, k := range kids {
		if old.Kids[i] != k {
			return nil
		}
	}
	return old
}

// Parser is an incremental GLR parser for a fixed table. A Parser may be
// reused across parses; it is not safe for concurrent use.
type Parser struct {
	table *lr.Table
	g     *grammar.Grammar

	// Trace, when non-nil, receives a line per parser action — the
	// Appendix B trace facility.
	Trace func(format string, args ...any)

	// Stats accumulates counters for the most recent parse.
	Stats Stats

	// Budget bounds the resources one parse may consume (see guard.Budget).
	// The zero value is unlimited. Tripping any budget except the ambiguity
	// cap aborts the parse with a *guard.BudgetError, leaving the document's
	// committed tree intact; exceeding MaxAlternatives degrades instead,
	// pruning the region to its statically preferred interpretation and
	// marking the node BudgetPruned.
	Budget guard.Budget

	ctx        context.Context // nil outside ParseContext
	stream     Stream
	arena      *dag.Arena // the current stream's arena
	active     []*gssNode
	forActor   []*gssNode
	forShifter []shiftPair
	multiple   bool
	anyNondet  bool // any round used non-deterministic machinery
	sawNullKid bool // any fresh node gained a null-yield child or alternative
	accepting  *gssNode
	sh         *share
	tokens     int

	// NoBurst disables the linear-stack fast path (burst.go), forcing every
	// symbol through the round engine. The two paths are byte-identical by
	// contract; the flag exists so differential tests can hold the round
	// engine up as the oracle.
	NoBurst bool

	// stubNode/stubSym are set only on chunk-worker parsers (chunk.go): the
	// placeholder standing in for the unparsed left context. Any reduction
	// that consumes the stub other than as the left operand of a
	// deterministic chain production would bake the missing context into an
	// unspliceable shape, so it aborts the worker (sequential fallback).
	stubNode *dag.Node
	stubSym  grammar.Sym

	// Recycled storage: the GSS node/link arenas rewind at each Parse and
	// the reduction-kids buffer is reused across rounds, so a steady-state
	// incremental round allocates nothing.
	gssNodes gssNodeArena
	gssLinks gssLinkArena
	kidsBuf  []*dag.Node

	// Burst-mode scratch (burst.go), reused across parses.
	bStates []int32
	bNodes  []*dag.Node
	bSteps  []burstStep
	bSim    []int32

	// gauge meters the current parse against Budget.
	gauge guard.Gauge
}

func (p *Parser) newGSSNode(state int) *gssNode {
	p.gauge.AddGSSNode()
	return p.gssNodes.get(state)
}

// addLink appends a link from n back to head, spanning node. The first
// link sits inline in n; overflow links come from the recycled link arena.
func (p *Parser) addLink(n, head *gssNode, node *dag.Node) *gssLink {
	p.gauge.AddGSSLink()
	if n.nlinks == 0 {
		n.link0 = gssLink{head: head, node: node}
		n.nlinks = 1
		return &n.link0
	}
	l := p.gssLinks.get(head, node)
	n.extra = append(n.extra, l)
	n.nlinks++
	return l
}

type shiftPair struct {
	from   *gssNode
	target int
}

// New creates a parser over the given table.
func New(table *lr.Table) *Parser {
	return &Parser{table: table, g: table.Grammar(), sh: newShare()}
}

// Grammar returns the parser's grammar.
func (p *Parser) Grammar() *grammar.Grammar { return p.g }

// Table returns the parse table.
func (p *Parser) Table() *lr.Table { return p.table }

func (p *Parser) tracef(format string, args ...any) {
	if p.Trace != nil {
		p.Trace(format, args...)
	}
}

// Parse consumes the stream and returns the abstract parse dag root (the
// node for the user start symbol). The stream must end with an EOF
// terminal. On error the previous tree (if the stream reuses one) remains
// intact.
func (p *Parser) Parse(stream Stream) (*dag.Node, error) {
	return p.ParseContext(nil, stream)
}

// checkEvery is how many parse rounds pass between context checks: frequent
// enough that cancellation latency stays far below any human-visible delay,
// sparse enough that the check never shows up in a profile.
const checkEvery = 64

// ParseContext is Parse with cooperative cancellation: the main loop polls
// ctx every checkEvery rounds and abandons the parse with ctx.Err() once
// the context is done. The parser is left reusable; the document's
// committed tree is untouched (only Commit publishes a root). A nil ctx
// disables the checks.
//
// The parser's Budget is enforced for the duration of the call: a tripped
// resource budget aborts the parse with a *guard.BudgetError (again leaving
// the committed tree intact), while a tripped ambiguity budget degrades the
// offending region in place (Stats.BudgetPruned counts the prunes).
func (p *Parser) ParseContext(ctx context.Context, stream Stream) (root *dag.Node, err error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	p.ctx = ctx
	p.stream = stream
	p.arena = stream.Arena()
	p.gauge.Reset(p.Budget)
	if p.Budget.MaxArenaNodes > 0 {
		p.arena.SetLimit(p.arena.NumNodes() + p.Budget.MaxArenaNodes)
	}
	defer func() {
		p.arena.SetLimit(0)
		if r := recover(); r != nil {
			// A budget trip unwinds from an allocation path as a typed
			// panic; surface it as the parse error. Anything else is a
			// real bug (or an injected fault) and keeps propagating.
			root, err = nil, guard.Recovered(r)
		}
	}()
	p.Stats = Stats{}
	p.sh.reset()
	p.gssNodes.reset()
	p.gssLinks.reset()
	p.active = append(p.active[:0], p.newGSSNode(p.table.StartState()))
	p.accepting = nil
	p.multiple = false
	p.anyNondet = false
	p.sawNullKid = false
	p.tokens = 0

	for p.accepting == nil {
		la := p.stream.La()
		if la == nil {
			return nil, &SyntaxError{Sym: grammar.EOF, SymName: "$", Text: "", TokenIndex: p.tokens}
		}
		if p.burstEligible(la) {
			// The fast path consumes the degenerate prefix, then exits on a
			// lookahead it committed nothing for; the round below handles
			// that lookahead, which also guarantees progress.
			if err := p.burst(); err != nil {
				return nil, err
			}
			if p.stream.La() == nil {
				return nil, &SyntaxError{Sym: grammar.EOF, SymName: "$", Text: "", TokenIndex: p.tokens}
			}
		}
		if err := p.parseNextSymbol(); err != nil {
			return nil, err
		}
	}

	root = p.acceptedRoot()
	// Epsilon over-sharing can only arise from the sharing tables, which
	// deterministic rounds bypass entirely (§3.5) — and only when some
	// fresh node took a null-yield child or alternative (duplicating a
	// null subtree requires a second parent edge to it, and every such
	// edge trips sawNullKid where it is created). Grammars whose ε
	// productions never fire skip the whole-tree walk.
	if p.anyNondet && p.sawNullKid {
		dag.UnshareEpsilon(p.arena, root)
	}
	return root, nil
}

// noteNullKids flags the parse as needing the §3.5 ε-unshare pass when any
// child being attached to a fresh node has a null yield. Every parent edge
// a node ever gains passes through here (reducer, burst commit) or through
// the explicit alternative-merge checks, so a parse that never trips the
// flag provably has no multiply-parented null subtree.
func (p *Parser) noteNullKids(kids []*dag.Node) {
	if p.sawNullKid {
		return
	}
	for _, k := range kids {
		if k.TermCount == 0 && !k.IsTerminal() {
			p.sawNullKid = true
			return
		}
	}
}

// acceptedRoot extracts the start-symbol node from the accepting parser.
func (p *Parser) acceptedRoot() *dag.Node {
	acc := p.accepting
	root := acc.linkAt(0).node
	// Multiple top-level interpretations that never converged in the GSS
	// are merged explicitly.
	for i := 1; i < acc.numLinks(); i++ {
		alt := acc.linkAt(i).node
		if alt.TermCount == 0 {
			p.sawNullKid = true // null subtree becomes an alternative edge
		}
		root = p.enforceAltCap(addInterpretation(p.arena, root, alt))
	}
	return root
}

// enforceAltCap applies the ambiguity budget to a freshly merged region:
// when a choice node exceeds Budget.MaxAlternatives interpretations, the
// region is pruned to the single statically preferred alternative and
// marked BudgetPruned — graceful degradation instead of failure, so
// adversarial input yields a usable, flagged tree. The node keeps its
// identity (GSS links and parents still see it), it simply stops
// accumulating alternatives; because parse counts multiply through nested
// regions, cutting the fan-out here is what stops super-linear forest
// growth upstream.
func (p *Parser) enforceAltCap(n *dag.Node) *dag.Node {
	max := p.Budget.MaxAlternatives
	if max <= 0 || !n.IsChoice() || len(n.Kids) <= max {
		return n
	}
	best := n.Kids[0]
	for _, k := range n.Kids[1:] {
		if p.preferAlt(k, best) {
			best = k
		}
	}
	n.Kids = append(n.Kids[:0], best)
	n.BudgetPruned = true
	p.Stats.BudgetPruned++
	if p.Trace != nil {
		p.tracef("P: ambiguity budget pruned %s to 1 alternative", p.g.Name(n.Sym))
	}
	return n
}

// preferAlt reports whether alternative a is statically preferred over b,
// reusing the order of the §4.1 static filters: higher declared production
// precedence wins (precedence/associativity resolution), then the earlier
// declared production (yacc's prefer-earlier-rule, which is also what
// prefer-shift converges to for the idioms it targets). Non-production
// alternatives never displace a production.
func (p *Parser) preferAlt(a, b *dag.Node) bool {
	if a.Kind != dag.KindProduction {
		return false
	}
	if b.Kind != dag.KindProduction {
		return true
	}
	pa, pb := p.g.Production(int(a.Prod)), p.g.Production(int(b.Prod))
	if pa.Prec != pb.Prec {
		return pa.Prec > pb.Prec
	}
	return a.Prod < b.Prod
}

// parseNextSymbol performs one reduce/shift round (Appendix A).
func (p *Parser) parseNextSymbol() error {
	p.Stats.Rounds++
	if p.Stats.Rounds%checkEvery == 0 {
		if p.ctx != nil {
			if err := p.ctx.Err(); err != nil {
				return err
			}
		}
		p.gauge.CheckDeadline()
	}
	if faultinject.Enabled() {
		if err := p.injectRound(); err != nil {
			return err
		}
	}
	p.forActor = append(p.forActor[:0], p.active...)
	p.forShifter = p.forShifter[:0]
	for _, a := range p.active {
		a.processed = false
	}
	p.sh.reset()

	if n := len(p.active); n > p.Stats.MaxActiveParsers {
		p.Stats.MaxActiveParsers = n
	}
	if len(p.active) > 1 {
		p.Stats.Splits++
	}

	// The worklist loop is the round's inner engine: with massive local
	// ambiguity a single lookahead can queue unbounded reduction work, so
	// cancellation and the deadline are also polled here — otherwise one
	// pathological token could stall cancellation for the whole region.
	for steps := 0; len(p.forActor) > 0; steps++ {
		if steps%checkEvery == checkEvery-1 {
			if p.ctx != nil {
				if err := p.ctx.Err(); err != nil {
					return err
				}
			}
			p.gauge.CheckDeadline()
		}
		a := p.forActor[len(p.forActor)-1]
		p.forActor = p.forActor[:len(p.forActor)-1]
		a.processed = true
		p.actor(a)
	}

	if p.accepting != nil {
		return nil
	}
	if len(p.forShifter) == 0 {
		la := p.stream.La()
		return &SyntaxError{
			Sym: la.Sym, SymName: p.g.Name(la.Sym), Text: laText(la), TokenIndex: p.tokens,
			Expected: p.expectedTerminals(),
		}
	}
	p.shifter()
	p.stream.Pop()
	return nil
}

// injectRound consults the fault-injection plan at the top of a parse
// round (Point ParseRound). Only called when a plan is active.
func (p *Parser) injectRound() error {
	detail := ""
	if la := p.stream.La(); la != nil {
		detail = laText(la)
	}
	switch act, sleep := faultinject.FireTimed(faultinject.ParseRound, detail); act {
	case faultinject.ActCancel:
		return context.Canceled
	case faultinject.ActPanic:
		panic(&faultinject.Panic{Point: faultinject.ParseRound, Detail: detail})
	case faultinject.ActDelay:
		// A stalled parse round: sleep in context-sized slices so the
		// watchdog's cancellation still unwedges the shard mid-stall.
		deadline := time.Now().Add(sleep)
		for time.Now().Before(deadline) {
			if p.ctx != nil && p.ctx.Err() != nil {
				return p.ctx.Err()
			}
			rest := time.Until(deadline)
			if rest > time.Millisecond {
				rest = time.Millisecond
			}
			time.Sleep(rest)
		}
	}
	return nil
}

// injectReduce consults the fault-injection plan mid-reduction (Point
// Reduce). Only called when a plan is active.
func (p *Parser) injectReduce() {
	detail := ""
	if la := p.stream.La(); la != nil {
		detail = laText(la)
	}
	if faultinject.Fire(faultinject.Reduce, detail) == faultinject.ActPanic {
		panic(&faultinject.Panic{Point: faultinject.Reduce, Detail: detail})
	}
}

// expectedTerminals collects, over the parsers active when the error was
// detected, every terminal with a defined action — the "expected one of"
// set for diagnostics (the per-state sets come from the table's
// ExpectedTerminals extraction).
func (p *Parser) expectedTerminals() []string {
	seen := map[grammar.Sym]bool{}
	for _, a := range p.active {
		for _, term := range p.table.ExpectedTerminals(a.state) {
			seen[term] = true
		}
	}
	out := make([]string, 0, len(seen))
	for term := range seen {
		out = append(out, p.g.Name(term))
	}
	sort.Strings(out)
	return out
}

func laText(n *dag.Node) string {
	if n.IsTerminal() {
		return n.Text
	}
	y := n.Yield()
	if len(y) > 24 {
		y = y[:24] + "…"
	}
	return y
}

// actor processes one parser (Appendix A actor): it normalizes the
// lookahead (breaking down subtrees the parser cannot act upon), attempts a
// whole-subtree shift via state matching, and otherwise executes the table
// actions for the lookahead.
func (p *Parser) actor(a *gssNode) {
	for {
		la := p.stream.La()
		if la == nil {
			return
		}
		if !la.IsTerminal() {
			// Whole-subtree shift (state matching, §3.2/§3.3): valid only
			// for a lone parser in a conflict-free state, with a clean
			// deterministically-built subtree whose recorded state equals
			// today's goto target.
			if p.soleParser(a) && p.reusable(la) {
				if gt := p.table.Goto(a.state, la.Sym); gt >= 0 && gt == int(la.State) && !p.table.HasConflict(a.state) {
					p.tracef("S: %s (subtree, %d tokens) -> state %d", p.g.Name(la.Sym), countTerms(la), gt)
					p.forShifter = append(p.forShifter, shiftPair{from: a, target: gt})
					return
				}
				// Precomputed nonterminal reductions (§3.2): act without
				// locating the next terminal when every terminal in
				// FIRST(la) agrees on a single reduction. The single-word
				// fast path reads one dense table cell.
				if act, n := p.table.OneNontermAction(a.state, la.Sym); n == 1 && act.Kind == lr.Reduce {
					if p.Trace != nil {
						p.tracef("R: %s (via FIRST(%s))", p.prodName(int(act.Target)), p.g.Name(la.Sym))
					}
					p.doReductions(a, int(act.Target))
					return
				}
			}
			// Otherwise the subtree cannot participate directly: expose
			// its constituents (left_breakdown) and retry.
			p.Stats.Breakdowns++
			p.stream.Breakdown()
			continue
		}

		// Deterministic fast path: the packed cell resolves a unique action
		// in a single table word.
		if act, n := p.table.OneAction(a.state, la.Sym); n == 1 {
			p.applyAction(a, act, la)
			return
		} else if n == 0 {
			return
		}
		p.multiple = true
		for _, act := range p.table.Actions(a.state, la.Sym) {
			p.applyAction(a, act, la)
		}
		return
	}
}

// applyAction executes one table action for parser a on lookahead la.
func (p *Parser) applyAction(a *gssNode, act lr.Action, la *dag.Node) {
	switch act.Kind {
	case lr.Accept:
		if la.Sym == grammar.EOF {
			p.tracef("A: accept")
			p.accepting = a
		}
	case lr.Reduce:
		if p.Trace != nil {
			p.tracef("R: %s", p.prodName(int(act.Target)))
		}
		p.doReductions(a, int(act.Target))
	case lr.Shift:
		p.forShifter = append(p.forShifter, shiftPair{from: a, target: int(act.Target)})
	}
}

func (p *Parser) prodName(rule int) string {
	return p.g.ProductionString(p.g.Production(rule))
}

// soleParser reports whether a is the only parser that can still act this
// round: nothing else is queued for the actor or the shifter and no
// conflict has been seen. Parsers that already finished their reductions
// remain in the GSS (active list) but are inert, so they do not count —
// this is what lets a chain of reductions keep shifting whole subtrees.
func (p *Parser) soleParser(a *gssNode) bool {
	return len(p.forActor) == 0 && len(p.forShifter) == 0 && !p.multiple
}

// reusable reports whether a subtree may be considered for state-matching
// reuse: structurally clean and built in a deterministic state. MultiState
// subtrees consumed dynamic lookahead and must be reconstructed (§3.3);
// choice nodes are multi-state by definition.
func (p *Parser) reusable(n *dag.Node) bool {
	return !n.Changed && !n.IsChoice() && n.State >= 0
}

func countTerms(n *dag.Node) int { return int(n.TermCount) }

// doReductions enumerates reduction paths from a (Appendix A
// do_reductions). The common deterministic case — a unique path — avoids
// the general enumerator's copies.
func (p *Parser) doReductions(a *gssNode, rule int) {
	arity := p.g.Production(rule).Arity()
	cur := a
	// kids is a reusable buffer: reducer only reads it, copying into a
	// fresh slice iff it builds a new node. No other doReductions frame can
	// be live here (reducer re-enters only through doLimitedReductions,
	// whose paths carry their own slices).
	if cap(p.kidsBuf) < arity {
		p.kidsBuf = make([]*dag.Node, arity)
	}
	kids := p.kidsBuf[:arity]
	for i := arity - 1; i >= 0; i-- {
		if cur.numLinks() != 1 {
			paths(a, arity, nil, func(path gssPath) {
				p.reducer(path.tail, rule, path.kids())
			})
			return
		}
		l := &cur.link0
		kids[i] = l.node
		cur = l.head
	}
	p.reducer(cur, rule, kids)
}

// doLimitedReductions re-runs reductions for an already-processed parser,
// restricted to paths through the freshly added link (Appendix A
// do_limited_reductions).
func (p *Parser) doLimitedReductions(a *gssNode, rule int, via *gssLink) {
	arity := p.g.Production(rule).Arity()
	paths(a, arity, via, func(path gssPath) {
		p.reducer(path.tail, rule, path.kids())
	})
}

// reducer performs one reduction (Appendix A reducer): builds (or shares)
// the dag node, merges interpretations, and extends the GSS.
func (p *Parser) reducer(q *gssNode, rule int, kids []*dag.Node) {
	p.Stats.Reductions++
	if faultinject.Enabled() {
		p.injectReduce()
	}
	lhs := p.g.Production(rule).LHS
	if p.stubNode != nil && len(kids) > 0 && kids[0] == p.stubNode &&
		(p.multiple || !p.g.Production(rule).Seq || lhs != p.stubSym) {
		panic(chunkAbort{})
	}
	state := p.table.Goto(q.state, lhs)
	if state < 0 {
		// No goto: this reduction path is invalid in context (possible in
		// non-deterministic regions); the would-be parser dies.
		return
	}
	p.noteNullKids(kids)
	// The multipleStates flag (§3.3) — set on conflicted table cells and
	// maintained by the shifter — decides whether this node is stamped
	// with a deterministic state or the MultiState equivalence class. In
	// deterministic rounds no two derivations can coincide, so the
	// sharing tables are bypassed and the node is built directly — or,
	// better, *retained*: when the previous tree contains the identical
	// production instance (same rule over the same children), that node is
	// reused, preserving its identity for annotations and semantic
	// attributes (bottom-up node reuse, the paper's reference [25]).
	var node *dag.Node
	if p.multiple {
		p.anyNondet = true
		node = p.sh.getNode(p.arena, p.g, rule, kids, state, true)
	} else if old := retained(rule, kids); old != nil {
		old.State = int32(state)
		node = old
		p.Stats.RetainedNodes++
	} else {
		// kids may be the shared reduction buffer; the node needs its own,
		// bump-allocated so a reduce-heavy parse is one allocation per
		// kidsChunk pointers rather than one per reduction.
		owned := p.arena.Kids(len(kids))
		copy(owned, kids)
		node = p.arena.Production(p.g.Production(rule).LHS, rule, state, owned)
	}

	if existing := p.findActive(state); existing != nil {
		if l := existing.directLink(q); l != nil {
			// Second interpretation of the same region: merge into the
			// link's node (ambiguity packing).
			if p.Trace != nil {
				p.tracef("M: merge interpretation for %s", p.g.Name(lhs))
			}
			if node.TermCount == 0 {
				p.sawNullKid = true // null subtree becomes an alternative edge
			}
			l.node = p.enforceAltCap(addInterpretation(p.arena, l.node, node))
			return
		}
		n := node
		if p.multiple {
			n = p.enforceAltCap(p.sh.mergeInterpretation(p.arena, node))
		}
		l := p.addLink(existing, q, n)
		// Parsers already processed this round may now have new reduction
		// paths through l.
		for _, m := range p.active {
			if !m.processed {
				continue // still in forActor; its own actor call sees l
			}
			for _, act := range p.reduceActions(m.state) {
				p.doLimitedReductions(m, int(act.Target), l)
			}
		}
		return
	}

	n := node
	if p.multiple {
		if node.TermCount == 0 {
			p.sawNullKid = true // symbol-table merge may alias the null subtree
		}
		n = p.enforceAltCap(p.sh.mergeInterpretation(p.arena, node))
	}
	np := p.newGSSNode(state)
	p.addLink(np, q, n)
	p.active = append(p.active, np)
	p.forActor = append(p.forActor, np)
}

// reduceActions returns the reduce actions available to a parser in state
// for the current lookahead. Only terminal lookaheads participate — by the
// time several parsers interact, the round's lookahead has been broken down
// to a terminal (§3.3: only terminals are read while multiple parsers are
// active).
func (p *Parser) reduceActions(state int) []lr.Action {
	la := p.stream.La()
	if la == nil || !la.IsTerminal() {
		return nil
	}
	var out []lr.Action
	for _, act := range p.table.Actions(state, la.Sym) {
		if act.Kind == lr.Reduce {
			out = append(out, act)
		}
	}
	return out
}

func (p *Parser) findActive(state int) *gssNode {
	for _, a := range p.active {
		if a.state == state {
			return a
		}
	}
	return nil
}

// shifter shifts the lookahead into every parser that requested it
// (Appendix A shifter). All parsers shift the same node — in ambiguous
// regions the terminals are thereby shared among interpretations.
func (p *Parser) shifter() {
	la := p.stream.La()
	p.active = p.active[:0]
	p.multiple = len(p.forShifter) > 1
	p.Stats.Shifts++
	if la.IsTerminal() {
		p.Stats.TerminalShifts++
		p.tokens++
	} else {
		p.Stats.SubtreeShifts++
		p.tokens += countTerms(la)
	}

	// Record the parse state in the shifted node (state matching): the
	// deterministic target when one parser shifts, the non-deterministic
	// equivalence class otherwise.
	if p.multiple {
		la.State = dag.MultiState
	} else {
		la.State = int32(p.forShifter[0].target)
	}
	la.Changed = false

	for _, sp := range p.forShifter {
		if q := p.findActive(sp.target); q != nil {
			p.addLink(q, sp.from, la)
		} else {
			n := p.newGSSNode(sp.target)
			p.addLink(n, sp.from, la)
			p.active = append(p.active, n)
		}
	}
	if p.Trace != nil && la.IsTerminal() {
		p.tracef("S: %s %q (%d parser(s))", p.g.Name(la.Sym), la.Text, len(p.forShifter))
	}
}
