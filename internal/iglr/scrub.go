package iglr

// Scrub drops every dag/stream pointer retained in the parser's recycled
// storage — GSS arena chunks, the sharer tables, scratch buffers — so a
// parser parked in a pool pins neither the last parse's tree nor its
// document. Chunk, slice and map capacities are preserved: a scrubbed
// parser re-parses as allocation-free as a warm one.
func (p *Parser) Scrub() {
	for _, chunk := range p.gssNodes.chunks {
		for i := range chunk {
			n := &chunk[i]
			// extra's backing array holds *gssLink beyond the live length;
			// clear through the capacity so no path to a dag node survives.
			clear(n.extra[:cap(n.extra)])
			*n = gssNode{extra: n.extra[:0]}
		}
	}
	for _, chunk := range p.gssLinks.chunks {
		clear(chunk)
	}
	clear(p.kidsBuf[:cap(p.kidsBuf)])
	clear(p.active[:cap(p.active)])
	clear(p.forActor[:cap(p.forActor)])
	clear(p.forShifter[:cap(p.forShifter)])
	p.active, p.forActor, p.forShifter = p.active[:0], p.forActor[:0], p.forShifter[:0]
	clear(p.sh.nodes)
	clear(p.sh.symbols)
	p.sh.dirty = false
	p.accepting = nil
	p.stream = nil
	p.arena = nil
	p.ctx = nil
	p.Trace = nil
}
