package iglr

import (
	"iglr/internal/dag"
	"iglr/internal/grammar"
)

// Sharing (§3.5). Production-node instances are hash-consed per input
// position: identical (rule, kids) requests return the same node, which is
// what makes the representation a dag (subtree sharing). Context sharing —
// multiple interpretations of one yield — merges nodes with the same symbol
// and cover into a choice node. Both tables are cleared at each shift, as
// in Appendix A: all reductions between two shifts occur at a single input
// position, so covers are comparable.

// nodeKey identifies a production instance: the rule plus the arena IDs of
// the children. Node IDs are stable and dense, so no per-parse interning
// table is needed.
type nodeKey struct {
	rule int32
	kids string // concatenated child IDs, 4 bytes little-endian each
}

// coverKey identifies a yield region by the IDs of its first and last
// terminal instances (cover, Appendix A). Null-yield nodes have no
// extremes (-1); within one shift round they all sit at the same input
// position, so merging them by symbol alone is sound.
type coverKey struct {
	sym    grammar.Sym
	lo, hi int32
}

func coverID(n *dag.Node) int32 {
	if n == nil {
		return -1
	}
	return n.ID
}

// share holds the per-round sharing state. The maps persist across rounds
// and across parses (only their entries are cleared, keeping the buckets
// warm); deterministic rounds never touch them at all.
type share struct {
	nodes   map[nodeKey]*dag.Node
	symbols map[coverKey]*dag.Node
	keyBuf  []byte
	dirty   bool
}

func newShare() *share {
	return &share{
		nodes:   map[nodeKey]*dag.Node{},
		symbols: map[coverKey]*dag.Node{},
	}
}

// reset clears the per-round tables (called at every shift).
func (s *share) reset() {
	if !s.dirty {
		return
	}
	clear(s.nodes)
	clear(s.symbols)
	s.dirty = false
}

// getNode returns the (shared) production-instance node for rule over kids
// (Appendix A get_node). state is the goto target the creating parser will
// enter; nodes built while several parsers are active are stamped with the
// MultiState equivalence class instead (§3.3). kids may be a transient
// buffer — it is copied only when a new node is built.
func (s *share) getNode(a *dag.Arena, g *grammar.Grammar, rule int, kids []*dag.Node, state int, multi bool) *dag.Node {
	s.dirty = true
	key := nodeKey{rule: int32(rule), kids: s.kidsKey(kids)}
	if n, ok := s.nodes[key]; ok {
		if multi || n.State != int32(state) {
			n.State = dag.MultiState
		}
		return n
	}
	st := state
	if multi {
		st = dag.MultiState
	}
	owned := a.Kids(len(kids))
	copy(owned, kids)
	n := a.Production(g.Production(rule).LHS, rule, st, owned)
	s.nodes[key] = n
	return n
}

func (s *share) kidsKey(kids []*dag.Node) string {
	b := s.keyBuf[:0]
	for _, k := range kids {
		id := uint32(k.ID)
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	s.keyBuf = b
	return string(b)
}

// mergeInterpretation implements get_symbolnode/add_choice: if another node
// with the same symbol and cover exists this round, the new interpretation
// is merged into a choice node (created lazily by promoting the existing
// node in place, preserving every outstanding reference to it — the paper's
// proxy-replacement, footnote 10). It returns the node to link into the GSS.
func (s *share) mergeInterpretation(a *dag.Arena, n *dag.Node) *dag.Node {
	s.dirty = true
	key := coverKey{sym: n.Sym, lo: coverID(n.LeftmostTerm), hi: coverID(n.RightmostTerm)}
	existing, ok := s.symbols[key]
	if !ok {
		s.symbols[key] = n
		return n
	}
	if existing == n {
		return existing
	}
	merged := addInterpretation(a, existing, n)
	s.symbols[key] = merged
	return merged
}

// addInterpretation merges alt into target, promoting target to a choice
// node in place if necessary. Returns the choice node (== target).
func addInterpretation(a *dag.Arena, target, alt *dag.Node) *dag.Node {
	if target == alt {
		return target
	}
	if target.IsChoice() {
		for _, k := range target.Kids {
			if k == alt {
				return target
			}
		}
		target.AddChoice(alt)
		return target
	}
	// Promote in place: copy the current contents to a fresh node, then
	// rewrite target as a choice over {copy, alt}. References held by GSS
	// links or already-built parents stay valid — they now see the choice.
	first := a.Clone(target)
	target.Kind = dag.KindChoice
	target.Prod = -1
	target.State = dag.MultiState
	target.Text = ""
	target.Kids = []*dag.Node{first, alt}
	return target
}
