package iglr

import (
	"iglr/internal/dag"
	"iglr/internal/grammar"
)

// Sharing (§3.5). Production-node instances are hash-consed per input
// position: identical (rule, kids) requests return the same node, which is
// what makes the representation a dag (subtree sharing). Context sharing —
// multiple interpretations of one yield — merges nodes with the same symbol
// and cover into a choice node. Both tables are cleared at each shift, as
// in Appendix A: all reductions between two shifts occur at a single input
// position, so covers are comparable.

// nodeKey identifies a production instance: the rule plus child identities
// (interned per-parse, since pointers are not directly hashable to bytes).
type nodeKey struct {
	rule int
	kids string // concatenated interned child ids
}

// coverKey identifies a yield region by its first and last terminal
// instances (cover, Appendix A). Null-yield nodes have nil extremes; within
// one shift round they all sit at the same input position, so merging them
// by symbol alone is sound.
type coverKey struct {
	sym    grammar.Sym
	lo, hi *dag.Node
}

// share holds the per-round sharing state.
type share struct {
	nodes   map[nodeKey]*dag.Node
	symbols map[coverKey]*dag.Node
	ids     map[*dag.Node]uint64
	nextID  uint64
	dirty   bool
}

func newShare() *share {
	return &share{
		nodes:   map[nodeKey]*dag.Node{},
		symbols: map[coverKey]*dag.Node{},
		ids:     map[*dag.Node]uint64{},
	}
}

// reset clears the per-round tables (called at every shift).
func (s *share) reset() {
	if !s.dirty {
		return
	}
	clearMap(s.nodes)
	clearMap(s.symbols)
	s.dirty = false
}

func clearMap[K comparable, V any](m map[K]V) {
	for k := range m {
		delete(m, k)
	}
}

func (s *share) id(n *dag.Node) uint64 {
	if v, ok := s.ids[n]; ok {
		return v
	}
	s.nextID++
	s.ids[n] = s.nextID
	return s.nextID
}

// getNode returns the (shared) production-instance node for rule over kids
// (Appendix A get_node). state is the goto target the creating parser will
// enter; nodes built while several parsers are active are stamped with the
// MultiState equivalence class instead (§3.3).
func (s *share) getNode(g *grammar.Grammar, rule int, kids []*dag.Node, state int, multi bool) *dag.Node {
	s.dirty = true
	key := nodeKey{rule: rule, kids: s.kidsKey(kids)}
	if n, ok := s.nodes[key]; ok {
		if multi || n.State != state {
			n.State = dag.MultiState
		}
		return n
	}
	st := state
	if multi {
		st = dag.MultiState
	}
	n := dag.NewProduction(g.Production(rule).LHS, rule, st, kids)
	s.nodes[key] = n
	return n
}

func (s *share) kidsKey(kids []*dag.Node) string {
	b := make([]byte, 0, len(kids)*8)
	for _, k := range kids {
		p := s.id(k)
		b = append(b, byte(p), byte(p>>8), byte(p>>16), byte(p>>24),
			byte(p>>32), byte(p>>40), byte(p>>48), byte(p>>56))
	}
	return string(b)
}

// mergeInterpretation implements get_symbolnode/add_choice: if another node
// with the same symbol and cover exists this round, the new interpretation
// is merged into a choice node (created lazily by promoting the existing
// node in place, preserving every outstanding reference to it — the paper's
// proxy-replacement, footnote 10). It returns the node to link into the GSS.
func (s *share) mergeInterpretation(n *dag.Node) *dag.Node {
	s.dirty = true
	key := coverKey{sym: n.Sym, lo: n.LeftmostTerm, hi: n.RightmostTerm}
	existing, ok := s.symbols[key]
	if !ok {
		s.symbols[key] = n
		return n
	}
	if existing == n {
		return existing
	}
	merged := addInterpretation(existing, n)
	s.symbols[key] = merged
	return merged
}

// addInterpretation merges alt into target, promoting target to a choice
// node in place if necessary. Returns the choice node (== target).
func addInterpretation(target, alt *dag.Node) *dag.Node {
	if target == alt {
		return target
	}
	if target.IsChoice() {
		for _, k := range target.Kids {
			if k == alt {
				return target
			}
		}
		target.AddChoice(alt)
		return target
	}
	// Promote in place: copy the current contents to a fresh node, then
	// rewrite target as a choice over {copy, alt}. References held by GSS
	// links or already-built parents stay valid — they now see the choice.
	cp := *target
	first := &cp
	target.Kind = dag.KindChoice
	target.Prod = -1
	target.State = dag.MultiState
	target.Text = ""
	target.Kids = []*dag.Node{first, alt}
	return target
}
