// Package iglr implements the incremental GLR parser of Wagner & Graham
// (PLDI 1997, §3.3 and Appendix A). The parser accepts a mixed input stream
// of terminal tokens and reusable subtrees from the previous parse,
// combining Tomita-style generalized LR parsing (graph-structured stack,
// breadth-first forking) with state-matching subtree reuse. It records
// dynamic-lookahead use in dag nodes via the MultiState equivalence class,
// and produces abstract parse dags with Rekers-corrected sharing and
// unshared epsilon structure.
package iglr

import (
	"iglr/internal/dag"
	"iglr/internal/grammar"
)

// Stream is the parser's input: a sequence of subtrees (terminals are
// single-node subtrees). It corresponds to the conceptual "subtree reuse
// stack" of §3.2 — produced by a traversal of the previous version of the
// tree — plus freshly lexed terminals at modification sites.
type Stream interface {
	// La returns the current lookahead subtree, or nil when exhausted.
	// The final subtree must be an EOF terminal (grammar.EOF).
	La() *dag.Node
	// Pop advances past the current subtree (pop_lookahead).
	Pop()
	// Breakdown replaces the current subtree with its constituent children
	// (left_breakdown): the first child becomes the lookahead and the rest
	// are pushed. Empty subtrees are skipped entirely. For a choice node,
	// the first unfiltered interpretation's children are exposed (its
	// terminal yield is shared by every interpretation). Breakdown of a
	// terminal panics.
	Breakdown()
	// Arena returns the arena owning the stream's nodes; the parser
	// allocates every node it builds from it, keeping the whole dag under
	// one ID space.
	Arena() *dag.Arena
}

// sliceStream is a Stream over an explicit node sequence with a breakdown
// stack. It serves batch parsing (all terminals) and tests; the incremental
// document stream lives in the document package.
type sliceStream struct {
	arena   *dag.Arena
	pending []*dag.Node // reversed: next lookahead at the end
}

// NewStream builds a Stream over the given subtrees, which must all be
// allocated from a. The caller must include a trailing EOF terminal.
func NewStream(a *dag.Arena, nodes []*dag.Node) Stream {
	s := &sliceStream{arena: a, pending: make([]*dag.Node, 0, len(nodes))}
	for i := len(nodes) - 1; i >= 0; i-- {
		s.pending = append(s.pending, nodes[i])
	}
	return s
}

func (s *sliceStream) Arena() *dag.Arena { return s.arena }

func (s *sliceStream) La() *dag.Node {
	if len(s.pending) == 0 {
		return nil
	}
	return s.pending[len(s.pending)-1]
}

func (s *sliceStream) Pop() {
	if len(s.pending) > 0 {
		s.pending = s.pending[:len(s.pending)-1]
	}
}

func (s *sliceStream) Breakdown() {
	n := s.La()
	if n == nil {
		return
	}
	if n.IsTerminal() {
		panic("iglr: breakdown of a terminal")
	}
	s.pending = s.pending[:len(s.pending)-1]
	kids := n.Kids
	if n.IsChoice() {
		kids = nil
		for _, k := range n.Kids {
			if !k.Filtered {
				kids = []*dag.Node{k}
				break
			}
		}
		if kids == nil && len(n.Kids) > 0 {
			kids = []*dag.Node{n.Kids[0]}
		}
	}
	for i := len(kids) - 1; i >= 0; i-- {
		s.pending = append(s.pending, kids[i])
	}
}

// TerminalNodes converts (sym, text) pairs plus a trailing EOF into
// terminal dag nodes allocated from a, the batch parser's input.
func TerminalNodes(a *dag.Arena, pairs []TerminalInput) []*dag.Node {
	out := make([]*dag.Node, 0, len(pairs)+1)
	for _, p := range pairs {
		out = append(out, a.Terminal(p.Sym, p.Text))
	}
	out = append(out, a.Terminal(grammar.EOF, ""))
	return out
}

// TerminalInput is one (symbol, lexeme) input pair for batch parsing.
type TerminalInput struct {
	Sym  grammar.Sym
	Text string
}
