// Package isolate implements tier-1, text-preserving error recovery: when
// a reparse fails, the damage is confined to the smallest enclosing
// sequence/statement region instead of reverting the user's edits. The
// quarantined tokens are kept verbatim under an explicit error node
// (dag.KindError) spliced into an otherwise ordinary parse of the remaining
// text, so the rest of the tree stays valid and incrementally maintained —
// the paper's observation that errors "may persist indefinitely in
// erroneous programs" (§1, §4.3) made structural: unresolved syntax is a
// first-class, locally-confined representation state.
//
// The isolation loop alternates two moves until it converges:
//
//  1. Parse the document through a masked stream that skips the current
//     quarantine regions. A failure extends the regions — by the whole
//     enclosing sequence element when the failing token still belongs to
//     committed structure, by the bare token otherwise.
//  2. On success, splice an error node per region into the fresh tree at
//     the nearest enclosing associative-sequence boundary (the extended-CFG
//     sequence structure of internal/grammar). A region that does not end
//     on an element boundary is expanded to the enclosing element and the
//     loop re-runs.
//
// Isolation gives up (callers then fall back to tier-2 history replay)
// when the regions would swallow the whole token stream, when no sequence
// structure bounds the gap, or after a fixed number of attempts.
// Infrastructure failures — budget trips, context cancellation — are never
// treated as syntax damage; they propagate unchanged.
package isolate

import (
	"context"
	"errors"
	"sort"

	"iglr/internal/dag"
	"iglr/internal/document"
	"iglr/internal/grammar"
	"iglr/internal/iglr"
)

// ErrUnbounded reports that error isolation could not confine the damage
// (e.g. the whole file is garbage, or the grammar offers no sequence
// structure around the failure). Callers fall back to tier-2 edit replay.
var ErrUnbounded = errors.New("isolate: damage cannot be bounded")

// maxAttempts bounds the masked-parse iterations of one isolation run. It
// must comfortably exceed maxRegions: discovering each disjoint damage
// region costs at least one masked attempt, plus a few more for region
// growth and splice-driven expansion.
const maxAttempts = 64

// maxRegions bounds how many disjoint quarantine regions one run may
// accumulate before the file is treated as unboundable.
const maxRegions = 32

// Result reports a successful tier-1 isolating reparse. The root has not
// been committed; the caller owns that decision.
type Result struct {
	// Root is the spliced tree: a valid parse of the unquarantined text
	// with one KindError node per region.
	Root *dag.Node
	// Errors holds the spliced error nodes, leftmost first.
	Errors []*dag.Node
	// Regions are the final quarantine regions in terminal indices.
	Regions []document.Region
	// Attempts counts the masked parses the run needed.
	Attempts int
}

// region is a quarantine range plus the failure detail that created it.
type region struct {
	lo, hi   int
	expected []string
}

// Reparse runs tier-1 isolation over the document's current state using
// the given parser (whose Budget applies to every masked attempt). On
// success the returned Result's Root contains at least one error node and
// the document's text is untouched. A nil ctx disables cancellation polls.
func Reparse(ctx context.Context, d *document.Document, p *iglr.Parser) (Result, error) {
	terms := d.Terminals()
	if len(terms) == 0 {
		return Result{}, ErrUnbounded
	}
	g := d.Grammar()
	idx := make(map[*dag.Node]int, len(terms))
	for i, t := range terms {
		idx[t] = i
	}
	s := &splicer{a: d.Arena(), g: g, idx: idx}

	var regions []region
	creep := 0
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		root, err := p.ParseContext(ctx, d.MaskedStream(mask(regions)))
		if err == nil {
			res, expand, serr := s.spliceAll(root, terms, regions)
			if serr != nil {
				return Result{}, serr
			}
			if expand == nil {
				res.Attempts = attempt
				return res, nil
			}
			regions = merge(regions, region{lo: expand.lo, hi: expand.hi})
			if unbounded(regions, len(terms)) {
				return Result{}, ErrUnbounded
			}
			continue
		}
		var se *iglr.SyntaxError
		if !errors.As(err, &se) {
			// Budget trip, cancellation, or an injected fault: the text is
			// not known to be wrong — the parse was aborted.
			return Result{}, err
		}
		anchor := curIndex(se, regions, terms)
		if anchor >= len(terms) {
			anchor = len(terms) - 1
		}
		// A failure at EOF clamps onto the last terminal, which may already
		// be quarantined; anchor on the nearest unmasked terminal instead.
		for i := len(regions) - 1; i >= 0; i-- {
			if r := regions[i]; anchor >= r.lo && anchor < r.hi {
				anchor = r.lo - 1
			}
		}
		if anchor < 0 {
			return Result{}, ErrUnbounded
		}
		// A failure bordering an existing region usually means the
		// quarantine cut a construct in half (e.g. a list header left
		// dangling before a masked non-empty sequence). Escalating the
		// region to the next enclosing sequence element re-aligns it with
		// the grammar instead of creeping across healthy neighbors.
		if adj := adjacentRegion(regions, anchor); adj >= 0 {
			if lo, hi, ok := escalate(g, idx, terms, regions[adj]); ok {
				regions = merge(regions, region{lo: lo, hi: hi})
				if unbounded(regions, len(terms)) {
					return Result{}, ErrUnbounded
				}
				continue
			}
		}
		next := failureRegion(g, idx, terms[anchor], anchor)
		// Panic-mode fallback: when the failure point has no committed
		// element structure and creeps forward token by token just past an
		// existing region, grow that region backward exponentially so a
		// batch parse of a broken file still finds a synchronization point.
		if next.expectedFromToken && adjacentBefore(regions, next.lo) {
			creep++
			back := 1 << creep
			if back > 64 {
				back = 64
			}
			next.lo -= back
			if next.lo < 0 {
				next.lo = 0
			}
		} else {
			creep = 0
		}
		next.expected = se.Expected
		regions = merge(regions, next.region)
		if unbounded(regions, len(terms)) {
			return Result{}, ErrUnbounded
		}
	}
	return Result{}, ErrUnbounded
}

// curIndex maps the parser's masked-stream token count back to a document
// terminal index: the k-th unmasked terminal, skipping quarantined spans.
func curIndex(se *iglr.SyntaxError, regions []region, terms []*dag.Node) int {
	k := 0
	consumed := se.TokenIndex
	for _, r := range regions {
		if r.lo > k+consumed {
			break
		}
		consumed -= r.lo - k // unmasked terminals before this region
		k = r.hi
	}
	k += consumed
	if k > len(terms) {
		k = len(terms)
	}
	return k
}

// failed captures one new quarantine range and whether it came from bare
// tokens (no committed element structure to lean on).
type failed struct {
	region
	expectedFromToken bool
}

// failureRegion chooses the quarantine range for a failure anchored on the
// document terminal t at index anchor: the whole enclosing sequence element
// when the terminal still belongs to committed structure, the bare token
// otherwise.
func failureRegion(g *grammar.Grammar, idx map[*dag.Node]int, t *dag.Node, anchor int) failed {
	if lo, hi, ok := elementSpan(g, idx, t); ok {
		if anchor < lo {
			lo = anchor
		}
		if anchor >= hi {
			hi = anchor + 1
		}
		return failed{region: region{lo: lo, hi: hi}}
	}
	return failed{region: region{lo: anchor, hi: anchor + 1}, expectedFromToken: true}
}

// elementSpan climbs from terminal t to the smallest committed ancestor
// that is an element of an associative sequence and returns its span in
// current terminal indices. Deleted boundary terminals shrink the span to
// the surviving ones.
func elementSpan(g *grammar.Grammar, idx map[*dag.Node]int, t *dag.Node) (lo, hi int, ok bool) {
	for n := t; n != nil; n = n.Parent {
		p := n.Parent
		if p == nil || !n.Committed {
			return 0, 0, false
		}
		if isSeqStruct(g, p) && !isSeqStruct(g, n) {
			return presentSpan(idx, n)
		}
	}
	return 0, 0, false
}

// presentSpan computes the [lo, hi) terminal-index span of n's yield over
// the terminals still present in the document.
func presentSpan(idx map[*dag.Node]int, n *dag.Node) (lo, hi int, ok bool) {
	lo, hi = -1, -1
	for _, t := range n.Terminals(nil) {
		i, present := idx[t]
		if !present {
			continue
		}
		if lo < 0 || i < lo {
			lo = i
		}
		if i >= hi {
			hi = i + 1
		}
	}
	if lo < 0 {
		return 0, 0, false
	}
	return lo, hi, true
}

// isSeqStruct reports whether n is associative-sequence structure: a
// balanced KindSeq node or a generated left-recursive chain production.
func isSeqStruct(g *grammar.Grammar, n *dag.Node) bool {
	if n.Kind == dag.KindSeq {
		return true
	}
	return n.Kind == dag.KindProduction && g.Symbol(n.Sym).IsSequence()
}

// mask renders the region set in the document layer's form.
func mask(regions []region) []document.Region {
	out := make([]document.Region, len(regions))
	for i, r := range regions {
		out[i] = document.Region{Lo: r.lo, Hi: r.hi}
	}
	return out
}

// merge inserts nr into the sorted, disjoint region list, coalescing
// overlapping or adjacent ranges. Failure details of the earliest merged
// region win (the first failure in a span is the one worth reporting).
func merge(regions []region, nr region) []region {
	out := regions[:0:0]
	placed := false
	for _, r := range regions {
		switch {
		case r.hi < nr.lo: // strictly before (not even adjacent)
			out = append(out, r)
		case nr.hi < r.lo: // strictly after
			if !placed {
				out = append(out, nr)
				placed = true
			}
			out = append(out, r)
		default: // overlap or adjacency: coalesce into nr and keep scanning
			if r.lo < nr.lo {
				nr.lo = r.lo
			}
			if r.hi > nr.hi {
				nr.hi = r.hi
			}
			if len(r.expected) > 0 {
				nr.expected = r.expected
			}
		}
	}
	if !placed {
		out = append(out, nr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lo < out[j].lo })
	return out
}

// adjacentBefore reports whether some region ends exactly where lo begins.
func adjacentBefore(regions []region, lo int) bool {
	for _, r := range regions {
		if r.hi == lo {
			return true
		}
	}
	return false
}

// adjacentRegion returns the index of a region bordering the failure
// anchor on either side, or -1.
func adjacentRegion(regions []region, anchor int) int {
	for i, r := range regions {
		if r.hi == anchor || r.lo == anchor+1 {
			return i
		}
	}
	return -1
}

// escalate widens region r to the next enclosing committed sequence
// element that strictly extends it, climbing from the quarantined
// terminals. It returns ok=false when no such element exists (then the
// caller falls back to token-level growth).
func escalate(g *grammar.Grammar, idx map[*dag.Node]int, terms []*dag.Node, r region) (lo, hi int, ok bool) {
	for i := r.hi - 1; i >= r.lo; i-- {
		for n := terms[i]; n != nil && n.Committed; n = n.Parent {
			p := n.Parent
			if p == nil {
				break
			}
			if !isSeqStruct(g, p) || isSeqStruct(g, n) {
				continue
			}
			elo, ehi, present := presentSpan(idx, n)
			if !present || (elo >= r.lo && ehi <= r.hi) {
				continue // no extension yet: keep climbing
			}
			if elo > r.lo {
				elo = r.lo
			}
			if ehi < r.hi {
				ehi = r.hi
			}
			return elo, ehi, true
		}
	}
	return 0, 0, false
}

// unbounded reports whether the region set should abort isolation: the
// quarantine would swallow every terminal, or fragments past the cap.
func unbounded(regions []region, n int) bool {
	if len(regions) > maxRegions {
		return true
	}
	covered := 0
	for _, r := range regions {
		covered += r.hi - r.lo
	}
	return covered >= n
}
