package isolate_test

import (
	"errors"
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/document"
	"iglr/internal/guard"
	"iglr/internal/iglr"
	"iglr/internal/isolate"
	"iglr/internal/langs/csub"
)

// commit parses the document from scratch and commits the result, giving
// isolation a committed tree to lean on.
func commit(t *testing.T, d *document.Document, p *iglr.Parser) {
	t.Helper()
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatalf("baseline parse: %v", err)
	}
	d.Commit(root)
}

func TestIsolateMiddleStatement(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a; int b; int c;")
	p := iglr.New(l.Table)
	commit(t, d, p)

	d.Replace(11, 1, "(") // int b; -> int (;
	if _, err := p.Parse(d.Stream()); err == nil {
		t.Fatal("the broken text must not parse")
	}

	res, err := isolate.Reparse(nil, d, p)
	if err != nil {
		t.Fatalf("Reparse: %v", err)
	}
	if len(res.Errors) != 1 {
		t.Fatalf("error nodes = %d, want 1", len(res.Errors))
	}
	if got := dag.CollectErrors(res.Root); len(got) != 1 || got[0] != res.Errors[0] {
		t.Fatalf("CollectErrors disagrees with Result.Errors: %v vs %v", got, res.Errors)
	}
	if d.Text() != "int a; int (; int c;" {
		t.Fatalf("isolation modified the text: %q", d.Text())
	}
	// The quarantined tokens are kept verbatim under the error node.
	e := res.Errors[0]
	var toks []string
	for _, k := range e.Kids {
		toks = append(toks, k.Text)
	}
	if got := strings.Join(toks, " "); got != "int ( ;" {
		t.Fatalf("quarantined tokens = %q, want %q", got, "int ( ;")
	}
	if e.Err == nil || len(e.Err.Expected) == 0 {
		t.Fatalf("error detail missing expected-token set: %+v", e.Err)
	}
	if e.Err.Region < 0 {
		t.Fatalf("error detail missing isolating region: %+v", e.Err)
	}
	d.Commit(res.Root)

	// Repairing the statement converges to the batch parse, byte for byte.
	d.Replace(11, 1, "b")
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatalf("repaired parse: %v", err)
	}
	d.Commit(root)
	fresh, err := iglr.New(l.Table).Parse(l.NewDocument(d.Text()).Stream())
	if err != nil {
		t.Fatalf("batch parse: %v", err)
	}
	if got, want := dag.Format(l.Grammar, root), dag.Format(l.Grammar, fresh); got != want {
		t.Fatalf("repaired tree differs from batch parse:\n-- incremental --\n%s\n-- batch --\n%s", got, want)
	}
}

func TestIsolateNestedBlockStatement(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a; { int b; } int c;")
	p := iglr.New(l.Table)
	commit(t, d, p)

	d.Replace(13, 1, ")") // inner: int b; -> int );
	res, err := isolate.Reparse(nil, d, p)
	if err != nil {
		t.Fatalf("Reparse: %v", err)
	}
	if len(res.Errors) != 1 {
		t.Fatalf("error nodes = %d, want 1", len(res.Errors))
	}
	if d.Text() != "int a; { int ); } int c;" {
		t.Fatalf("text = %q", d.Text())
	}
	// Damage confined inside the block: the braces and both outer
	// statements survive outside the quarantine.
	if tc := int(res.Errors[0].TermCount); tc > 3 {
		t.Fatalf("quarantine spans %d tokens; the inner statement has 3", tc)
	}
	d.Commit(res.Root)

	d.Replace(13, 1, "b")
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatalf("repaired parse: %v", err)
	}
	fresh, err := iglr.New(l.Table).Parse(l.NewDocument(d.Text()).Stream())
	if err != nil {
		t.Fatal(err)
	}
	if dag.Format(l.Grammar, root) != dag.Format(l.Grammar, fresh) {
		t.Fatal("repaired tree differs from batch parse")
	}
}

func TestIsolateWithoutCommittedTree(t *testing.T) {
	// Batch case: no committed structure to name elements, so isolation
	// falls back to token regions plus the panic-mode leftward creep.
	l := csub.Lang()
	d := l.NewDocument("int a; int (; int c;")
	p := iglr.New(l.Table)

	res, err := isolate.Reparse(nil, d, p)
	if err != nil {
		t.Fatalf("Reparse: %v", err)
	}
	if len(res.Errors) == 0 {
		t.Fatal("no error nodes")
	}
	if d.Text() != "int a; int (; int c;" {
		t.Fatalf("text = %q", d.Text())
	}
	// The undamaged statements survive outside the quarantine.
	total := 0
	for _, r := range res.Regions {
		total += r.Len()
	}
	if total >= len(d.Terminals()) {
		t.Fatalf("quarantine swallowed all %d terminals", total)
	}
}

func TestIsolateWholeFileGarbageUnbounded(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a;")
	p := iglr.New(l.Table)
	commit(t, d, p)

	d.Replace(0, 6, ") ) ) )")
	_, err := isolate.Reparse(nil, d, p)
	if !errors.Is(err, isolate.ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
	if d.Text() != ") ) ) )" {
		t.Fatalf("isolation must not touch the text even when it gives up: %q", d.Text())
	}
}

func TestBudgetErrorPropagates(t *testing.T) {
	l := csub.Lang()
	d := l.NewDocument("int a; int b; int c;")
	p := iglr.New(l.Table)
	commit(t, d, p)

	d.Replace(11, 1, "(")
	p.Budget = guard.Budget{MaxArenaNodes: 1}
	_, err := isolate.Reparse(nil, d, p)
	if !errors.Is(err, guard.ErrBudget) {
		t.Fatalf("err = %v, want a budget error", err)
	}
	if errors.Is(err, isolate.ErrUnbounded) {
		t.Fatal("a budget trip must not be classified as unbounded damage")
	}
}

func TestMultipleRegions(t *testing.T) {
	l := csub.Lang()
	var sb strings.Builder
	for i := 0; i < 8; i++ {
		sb.WriteString("int v; ")
	}
	d := l.NewDocument(sb.String())
	p := iglr.New(l.Table)
	commit(t, d, p)

	// Break statements 2 and 5 independently.
	d.Replace(2*7+4, 1, "(")
	d.Replace(5*7+4, 1, ")")
	res, err := isolate.Reparse(nil, d, p)
	if err != nil {
		t.Fatalf("Reparse: %v", err)
	}
	if len(res.Errors) != 2 {
		t.Fatalf("error nodes = %d, want 2", len(res.Errors))
	}
	if strings.Count(dag.Format(l.Grammar, res.Root), "ERROR") != 2 {
		t.Fatalf("format does not show both quarantines:\n%s", dag.Format(l.Grammar, res.Root))
	}
}
