package isolate

import (
	"iglr/internal/dag"
	"iglr/internal/document"
	"iglr/internal/grammar"
)

// splicer inserts error nodes into a masked-parse tree at associative-
// sequence boundaries, path-copying the spine with fresh NoState nodes so
// committed structure is never mutated in place.
type splicer struct {
	a   *dag.Arena
	g   *grammar.Grammar
	idx map[*dag.Node]int // document terminal -> index
}

// expandReq asks the isolation loop to absorb the document-terminal span
// [lo, hi): the quarantine gap fell strictly inside a sequence element, so
// the whole element must join the region before splicing can succeed.
type expandReq struct{ lo, hi int }

// spliceAll inserts one error node per region into root, left to right.
// Splicing ascending keeps every region's gap position equal to its Lo in
// the evolving tree's terminal coordinates: all terminals before an
// unspliced region are present (earlier regions were just re-inserted) and
// masked spans only occur at or after the gap. A non-nil expandReq means
// the loop must retry with a bigger region; ErrUnbounded means no sequence
// structure can host some region at all.
func (s *splicer) spliceAll(root *dag.Node, terms []*dag.Node, regions []region) (Result, *expandReq, error) {
	res := Result{Root: root}
	for _, r := range regions {
		det := &dag.ErrorDetail{Expected: r.expected, Region: grammar.InvalidSym}
		kids := make([]*dag.Node, r.hi-r.lo)
		copy(kids, terms[r.lo:r.hi])
		errNode := s.a.Error(kids, det)
		nr, req := s.insert(res.Root, 0, r.lo, errNode, det)
		if req != nil {
			return Result{}, req, nil
		}
		if nr == nil {
			return Result{}, nil, ErrUnbounded
		}
		res.Root = nr
		res.Errors = append(res.Errors, errNode)
		res.Regions = append(res.Regions, document.Region{Lo: r.lo, Hi: r.hi})
	}
	return res, nil, nil
}

// insert places errNode at terminal position m within the subtree n (whose
// yield starts at position off), returning a fresh replacement for n, or
// (nil, nil) when no sequence structure under n can host the gap, or an
// expansion request when the gap sits strictly inside a sequence element
// with no deeper host.
func (s *splicer) insert(n *dag.Node, off, m int, errNode *dag.Node, det *dag.ErrorDetail) (*dag.Node, *expandReq) {
	if isSeqStruct(s.g, n) {
		return s.insertSeq(n, off, m, errNode, det)
	}
	switch n.Kind {
	case dag.KindTerminal, dag.KindError:
		return nil, nil
	case dag.KindChoice:
		// Splicing through a choice would corrupt the sibling alternatives,
		// which share the yield; let an enclosing sequence absorb it.
		return nil, nil
	}
	c := off
	prevIdx := -1
	for i, k := range n.Kids {
		tc := int(k.TermCount)
		if tc == 0 {
			// An empty sequence sitting exactly at the gap (e.g. the item
			// list of an empty block, or an empty declaration section) hosts
			// the error node alone; the sequence may sit a level down when a
			// plain production wraps the generated chain.
			if c == m {
				nk, req := s.insert(k, c, m, errNode, det)
				if req != nil {
					return nil, req
				}
				if nk != nil {
					return s.withKid(n, i, nk), nil
				}
			}
			continue
		}
		if m == c {
			// Boundary: try the kid starting here, then the kid ending here.
			nk, req := s.insert(k, c, m, errNode, det)
			if req != nil {
				return nil, req
			}
			if nk != nil {
				return s.withKid(n, i, nk), nil
			}
			if prevIdx >= 0 {
				pk := n.Kids[prevIdx]
				nk, req = s.insert(pk, c-int(pk.TermCount), m, errNode, det)
				if req != nil {
					return nil, req
				}
				if nk != nil {
					return s.withKid(n, prevIdx, nk), nil
				}
			}
			return nil, nil
		}
		if m > c && m < c+tc {
			nk, req := s.insert(k, c, m, errNode, det)
			if req != nil {
				return nil, req
			}
			if nk != nil {
				return s.withKid(n, i, nk), nil
			}
			return nil, nil
		}
		c += tc
		prevIdx = i
	}
	if m == c && prevIdx >= 0 {
		// Gap at the very end of n's yield: only the last kid can host it.
		pk := n.Kids[prevIdx]
		nk, req := s.insert(pk, c-int(pk.TermCount), m, errNode, det)
		if req != nil {
			return nil, req
		}
		if nk != nil {
			return s.withKid(n, prevIdx, nk), nil
		}
	}
	return nil, nil
}

// insertSeq handles a node that is itself sequence structure: a gap at an
// element boundary hosts the error node as an extra element; a gap strictly
// inside an element first tries a deeper host, then requests that the whole
// element be absorbed into the region.
func (s *splicer) insertSeq(n *dag.Node, off, m int, errNode *dag.Node, det *dag.ErrorDetail) (*dag.Node, *expandReq) {
	elems := dag.SeqElements(s.g, n)
	c := off
	for j, e := range elems {
		tc := int(e.TermCount)
		if m == c {
			det.Region = n.Sym
			return dag.BuildSeq(s.a, n.Sym, insertAt(elems, j, errNode)), nil
		}
		if m < c+tc {
			nk, req := s.insert(e, c, m, errNode, det)
			if req != nil {
				return nil, req
			}
			if nk != nil {
				ne := make([]*dag.Node, len(elems))
				copy(ne, elems)
				ne[j] = nk
				return dag.BuildSeq(s.a, n.Sym, ne), nil
			}
			lo, hi, ok := presentSpan(s.idx, e)
			if !ok {
				return nil, nil
			}
			return nil, &expandReq{lo: lo, hi: hi}
		}
		c += tc
	}
	if m == c {
		det.Region = n.Sym
		return dag.BuildSeq(s.a, n.Sym, insertAt(elems, len(elems), errNode)), nil
	}
	return nil, nil
}

// insertAt returns a copy of elems with extra inserted at position j.
func insertAt(elems []*dag.Node, j int, extra *dag.Node) []*dag.Node {
	out := make([]*dag.Node, 0, len(elems)+1)
	out = append(out, elems[:j]...)
	out = append(out, extra)
	out = append(out, elems[j:]...)
	return out
}

// withKid path-copies production node n with kid i replaced. The copy gets
// NoState so a later reparse breaks it down instead of reusing it whole —
// the convergence path back to a batch-identical tree.
func (s *splicer) withKid(n *dag.Node, i int, nk *dag.Node) *dag.Node {
	kids := make([]*dag.Node, len(n.Kids))
	copy(kids, n.Kids)
	kids[i] = nk
	return s.a.Production(n.Sym, int(n.Prod), dag.NoState, kids)
}
