package langcodec

import (
	"strings"
	"testing"

	"iglr/internal/langreg"
)

// BenchmarkLanguageLoadCold measures full language construction — grammar
// parsing, LR table construction, lexer subset construction + minimization —
// per bundled language. This is the startup cost the compiled-artifact path
// exists to avoid.
func BenchmarkLanguageLoadCold(b *testing.B) {
	for _, e := range langreg.All() {
		b.Run(e.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := e.Fresh().Build(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLanguageLoadCached measures decoding a compiled artifact back
// into a ready-to-parse language — the warm-start path.
func BenchmarkLanguageLoadCached(b *testing.B) {
	for _, e := range langreg.All() {
		b.Run(e.Name, func(b *testing.B) {
			data := Encode(e.Lang())
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Decode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEncode measures producing an artifact (the `langc compile` /
// cache-store side).
func BenchmarkEncode(b *testing.B) {
	for _, e := range langreg.All() {
		b.Run(e.Name, func(b *testing.B) {
			l := e.Lang()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Encode(l)
			}
		})
	}
}

// BenchmarkLexerThroughput measures the scan hot loop in MB/s over realistic
// program text using each bundled language's compiled lexer.
func BenchmarkLexerThroughput(b *testing.B) {
	for _, e := range langreg.All() {
		if len(e.Samples) == 0 {
			continue
		}
		b.Run(e.Name, func(b *testing.B) {
			l := e.Lang()
			src := strings.Repeat(strings.Join(e.Samples, "\n")+"\n", 256)
			b.SetBytes(int64(len(src)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Spec.Scan(src)
			}
		})
	}
}
