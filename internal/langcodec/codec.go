// Package langcodec serializes compiled languages as versioned, content-
// hashed binary artifacts (.cclang files). An artifact carries everything a
// process needs to parse — the grammar with its precomputed analyses, the
// packed dense LR tables, the minimized equivalence-class-compressed lexer
// DFA, and the token→terminal mapping — so decoding reconstructs a ready-
// to-parse Language without LR construction or subset construction.
//
// Layout:
//
//	magic "CCLG" | uvarint format version | 32-byte definition hash |
//	payload (name, grammar, compiled table, lexer spec, token map) |
//	32-byte SHA-256 checksum over every preceding byte
//
// The definition hash (langs.HashDef) invalidates artifacts whose source
// definition changed in any way; the format version invalidates artifacts
// written by an incompatible codec; the trailing checksum rejects truncated
// or bit-flipped files before any section decoder runs. Consumers treat all
// three failures as "artifact absent" and recompile.
package langcodec

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"iglr/internal/grammar"
	"iglr/internal/langs"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// Magic identifies compiled language artifact files.
const Magic = "CCLG"

// FormatVersion is bumped whenever any embedded section format changes;
// older artifacts then silently recompile.
const FormatVersion = 1

// FileExt is the conventional artifact file extension.
const FileExt = ".cclang"

// Sentinel decode failures. Both mean "recompile from source"; they are
// distinguished so tools (langc verify, cache stats) can report why.
var (
	// ErrCorrupt reports a truncated, bit-flipped, or non-artifact file.
	ErrCorrupt = errors.New("langcodec: corrupt artifact")
	// ErrVersion reports an artifact written by an incompatible format
	// version.
	ErrVersion = errors.New("langcodec: artifact format version mismatch")
)

// Encode serializes l as a compiled language artifact.
func Encode(l *langs.Language) []byte {
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, Magic...)
	buf = binary.AppendUvarint(buf, FormatVersion)
	buf = append(buf, l.Hash[:]...)

	buf = binary.AppendUvarint(buf, uint64(len(l.Name)))
	buf = append(buf, l.Name...)
	buf = l.Grammar.AppendBinary(buf)
	buf = l.Table.AppendCompiled(buf)
	buf = l.Spec.AppendBinary(buf)
	buf = appendTokenMap(buf, l.Tokens)

	sum := sha256.Sum256(buf)
	return append(buf, sum[:]...)
}

func appendTokenMap(buf []byte, tm langs.TokenMap) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(tm.RuleSyms)))
	for _, s := range tm.RuleSyms {
		buf = binary.AppendVarint(buf, int64(s))
	}
	keys := make([]string, 0, len(tm.Keywords))
	for k := range tm.Keywords {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendVarint(buf, int64(tm.Keywords[k]))
	}
	return binary.AppendVarint(buf, int64(tm.IdentRule))
}

// Decode reconstructs a Language from an artifact produced by Encode. The
// checksum is verified before anything else, so no section decoder ever
// sees corrupted bytes; a version mismatch is reported as ErrVersion after
// the checksum proves the file intact.
func Decode(data []byte) (*langs.Language, error) {
	if len(data) < len(Magic)+sha256.Size+1 {
		return nil, ErrCorrupt
	}
	body, trailer := data[:len(data)-sha256.Size], data[len(data)-sha256.Size:]
	if sum := sha256.Sum256(body); string(sum[:]) != string(trailer) {
		return nil, ErrCorrupt
	}
	if string(body[:len(Magic)]) != Magic {
		return nil, ErrCorrupt
	}
	body = body[len(Magic):]
	v, n := binary.Uvarint(body)
	if n <= 0 {
		return nil, ErrCorrupt
	}
	if v != FormatVersion {
		return nil, ErrVersion
	}
	body = body[n:]
	if len(body) < sha256.Size {
		return nil, ErrCorrupt
	}
	var hash [32]byte
	copy(hash[:], body)
	body = body[sha256.Size:]

	nameLen, n := binary.Uvarint(body)
	if n <= 0 || nameLen > uint64(len(body)-n) {
		return nil, fmt.Errorf("%w: bad name", ErrCorrupt)
	}
	name := string(body[n : n+int(nameLen)])
	body = body[n+int(nameLen):]

	g, rest, err := grammar.DecodeBinary(body)
	if err != nil {
		return nil, fmt.Errorf("%w: grammar: %v", ErrCorrupt, err)
	}
	tbl, rest, err := lr.DecodeCompiled(g, rest)
	if err != nil {
		return nil, fmt.Errorf("%w: table: %v", ErrCorrupt, err)
	}
	spec, rest, err := lexer.DecodeSpec(rest)
	if err != nil {
		return nil, fmt.Errorf("%w: lexer: %v", ErrCorrupt, err)
	}
	tm, rest, err := decodeTokenMap(rest, g, spec)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(rest))
	}
	return &langs.Language{
		Name:    name,
		Grammar: g,
		Spec:    spec,
		Table:   tbl,
		Map:     tm.Mapper(),
		Tokens:  tm,
		Hash:    hash,
	}, nil
}

func decodeTokenMap(data []byte, g *grammar.Grammar, spec *lexer.Spec) (langs.TokenMap, []byte, error) {
	var tm langs.TokenMap
	fail := func(what string) (langs.TokenMap, []byte, error) {
		return tm, nil, fmt.Errorf("%w: token map: %s", ErrCorrupt, what)
	}
	nRules, n := binary.Uvarint(data)
	if n <= 0 || int(nRules) != spec.NumRules() {
		return fail("rule count mismatch")
	}
	data = data[n:]
	tm.RuleSyms = make([]grammar.Sym, nRules)
	for i := range tm.RuleSyms {
		v, n := binary.Varint(data)
		if n <= 0 || !validMapSym(g, grammar.Sym(v)) {
			return fail("rule symbol out of range")
		}
		tm.RuleSyms[i] = grammar.Sym(v)
		data = data[n:]
	}
	nKw, n := binary.Uvarint(data)
	if n <= 0 || nKw > uint64(len(data)) {
		return fail("keyword count")
	}
	data = data[n:]
	tm.Keywords = make(map[string]grammar.Sym, nKw)
	for i := uint64(0); i < nKw; i++ {
		kl, n := binary.Uvarint(data)
		if n <= 0 || kl > uint64(len(data)-n) {
			return fail("keyword text")
		}
		k := string(data[n : n+int(kl)])
		data = data[n+int(kl):]
		v, n := binary.Varint(data)
		s := grammar.Sym(v)
		if n <= 0 || s == grammar.InvalidSym || !validMapSym(g, s) {
			return fail("keyword symbol out of range")
		}
		tm.Keywords[k] = s
		data = data[n:]
	}
	v, n := binary.Varint(data)
	if n <= 0 || v < -1 || v >= int64(nRules) {
		return fail("ident rule out of range")
	}
	tm.IdentRule = int(v)
	return tm, data[n:], nil
}

// validMapSym accepts InvalidSym (an unmapped rule) or any symbol of g.
func validMapSym(g *grammar.Grammar, s grammar.Sym) bool {
	return s == grammar.InvalidSym || (s >= 0 && int(s) < g.NumSymbols())
}
