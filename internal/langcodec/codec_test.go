package langcodec_test

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"reflect"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/iglr"
	"iglr/internal/langcodec"
	"iglr/internal/langreg"
	"iglr/internal/langs"
	"iglr/internal/lr"
)

var methods = []lr.Method{lr.SLR, lr.LALR, lr.LR1}

// TestRoundTripDifferential is the codec acceptance test: for every bundled
// language under every table-construction method, the decoded artifact must
// re-encode byte-identically (proving the packed tables, lexer DFA, and
// token map survived unchanged) and must parse the sample corpus with
// identical trees and identical parser work counters.
func TestRoundTripDifferential(t *testing.T) {
	for _, e := range langreg.All() {
		for _, m := range methods {
			t.Run(e.Name+"/"+m.String(), func(t *testing.T) {
				b := e.Fresh()
				b.Options.Method = m
				fresh, err := b.Build()
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				enc := langcodec.Encode(fresh)
				dec, err := langcodec.Decode(enc)
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if dec.Name != fresh.Name || dec.Hash != fresh.Hash {
					t.Fatalf("identity mismatch: %q/%x vs %q/%x",
						dec.Name, dec.Hash, fresh.Name, fresh.Hash)
				}
				enc2 := langcodec.Encode(dec)
				if !bytes.Equal(enc, enc2) {
					t.Fatalf("re-encoded artifact differs (%d vs %d bytes)", len(enc), len(enc2))
				}
				if got, want := dec.Table.NumStates(), fresh.Table.NumStates(); got != want {
					t.Fatalf("states: %d vs %d", got, want)
				}
				if got, want := dec.Table.Footprint(), fresh.Table.Footprint(); got != want {
					t.Fatalf("footprint: %d vs %d", got, want)
				}
				if len(dec.Table.Conflicts()) != len(fresh.Table.Conflicts()) {
					t.Fatalf("conflicts: %d vs %d",
						len(dec.Table.Conflicts()), len(fresh.Table.Conflicts()))
				}
				for _, src := range e.Samples {
					compareParse(t, fresh, dec, src)
				}
			})
		}
	}
}

// compareParse parses src through both languages and requires identical
// token streams, identical trees (or identical errors), and identical work
// counters.
func compareParse(t *testing.T, fresh, dec *langs.Language, src string) {
	t.Helper()
	ft := fresh.Spec.Scan(src)
	dt := dec.Spec.Scan(src)
	if !reflect.DeepEqual(ft, dt) {
		t.Fatalf("token streams differ for %q:\n%v\nvs\n%v", src, ft, dt)
	}
	fp, dp := iglr.New(fresh.Table), iglr.New(dec.Table)
	fdoc, ddoc := fresh.NewDocument(src), dec.NewDocument(src)
	froot, ferr := fp.Parse(fdoc.Stream())
	droot, derr := dp.Parse(ddoc.Stream())
	if (ferr == nil) != (derr == nil) {
		t.Fatalf("parse error mismatch for %q: %v vs %v", src, ferr, derr)
	}
	if ferr != nil {
		if ferr.Error() != derr.Error() {
			t.Fatalf("error text mismatch for %q: %v vs %v", src, ferr, derr)
		}
		return
	}
	if f, d := dag.Format(fresh.Grammar, froot), dag.Format(dec.Grammar, droot); f != d {
		t.Fatalf("trees differ for %q:\n%s\nvs\n%s", src, f, d)
	}
	if !reflect.DeepEqual(fp.Stats, dp.Stats) {
		t.Fatalf("parser stats differ for %q:\n%+v\nvs\n%+v", src, fp.Stats, dp.Stats)
	}
}

func encodedExpr(t testing.TB) []byte {
	t.Helper()
	e, ok := langreg.Find("expr")
	if !ok {
		t.Fatal("expr not registered")
	}
	l, err := e.Fresh().Build()
	if err != nil {
		t.Fatal(err)
	}
	return langcodec.Encode(l)
}

// reseal recomputes the trailing checksum after a deliberate body mutation,
// so tests reach the validation *behind* the integrity check.
func reseal(data []byte) []byte {
	body := data[:len(data)-sha256.Size]
	sum := sha256.Sum256(body)
	return append(append([]byte(nil), body...), sum[:]...)
}

func TestDecodeRejectsVersionMismatch(t *testing.T) {
	enc := encodedExpr(t)
	// The format version is the single uvarint byte right after the magic.
	bumped := append([]byte(nil), enc...)
	bumped[len(langcodec.Magic)] = langcodec.FormatVersion + 1
	if _, err := langcodec.Decode(bumped); !errors.Is(err, langcodec.ErrCorrupt) {
		t.Fatalf("version bump without resealing must fail the checksum, got %v", err)
	}
	if _, err := langcodec.Decode(reseal(bumped)); !errors.Is(err, langcodec.ErrVersion) {
		t.Fatalf("want ErrVersion, got %v", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	enc := encodedExpr(t)
	for _, n := range []int{0, 1, len(langcodec.Magic), len(enc) / 2, len(enc) - 1} {
		if _, err := langcodec.Decode(enc[:n]); !errors.Is(err, langcodec.ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: want ErrCorrupt, got %v", n, err)
		}
	}
}

func TestDecodeRejectsBitFlips(t *testing.T) {
	enc := encodedExpr(t)
	for _, pos := range []int{0, len(langcodec.Magic), len(enc) / 3, len(enc) / 2, len(enc) - 1} {
		flipped := append([]byte(nil), enc...)
		flipped[pos] ^= 0x40
		if _, err := langcodec.Decode(flipped); err == nil {
			t.Fatalf("bit flip at %d accepted", pos)
		}
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	enc := encodedExpr(t)
	if _, err := langcodec.Decode(append(append([]byte(nil), enc...), 0xEE)); !errors.Is(err, langcodec.ErrCorrupt) {
		t.Fatalf("want ErrCorrupt for trailing bytes, got %v", err)
	}
}

// FuzzLangCodecRoundTrip throws arbitrary bytes at the decoder (it must
// never panic) and requires that anything it accepts re-encodes to the
// identical artifact — the codec has exactly one representation per
// language.
func FuzzLangCodecRoundTrip(f *testing.F) {
	for _, e := range langreg.All() {
		l, err := e.Fresh().Build()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(langcodec.Encode(l))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := langcodec.Decode(data)
		if err != nil {
			return
		}
		enc := langcodec.Encode(l)
		if !bytes.Equal(enc, data) {
			t.Fatalf("accepted artifact is not canonical: %d vs %d bytes", len(enc), len(data))
		}
		l2, err := langcodec.Decode(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if l2.Name != l.Name || l2.Hash != l.Hash {
			t.Fatal("re-decode changed identity")
		}
	})
}
