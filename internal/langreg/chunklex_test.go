package langreg_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"iglr/internal/langreg"
)

// forceParallel raises GOMAXPROCS for the test so ScanParallel's
// GOMAXPROCS clamp doesn't reduce it to the sequential path on single-CPU
// machines — the differential must exercise real chunk stitching here.
func forceParallel(t *testing.T) {
	t.Helper()
	prev := runtime.GOMAXPROCS(8)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestChunkedLexAllLanguages is the cross-language differential oracle for
// parallel lexing: for every bundled language, ScanParallel over a corpus
// large enough to actually chunk must reproduce Scan token-for-token.
// (Tiny-chunk seam torture lives next to the lexer; this guards the real
// specs — real comment/string/keyword rules — at realistic sizes.)
func TestChunkedLexAllLanguages(t *testing.T) {
	forceParallel(t)
	for _, e := range langreg.All() {
		t.Run(e.Name, func(t *testing.T) {
			var sb strings.Builder
			for sb.Len() < 192<<10 {
				for _, s := range e.Samples {
					sb.WriteString(s)
					sb.WriteByte('\n')
				}
			}
			text := sb.String()
			spec := e.Lang().Spec
			want := spec.Scan(text)
			if len(want) == 0 {
				t.Fatal("corpus lexed to zero tokens")
			}
			for _, workers := range []int{2, 4, 8} {
				got := spec.ScanParallel(text, workers)
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d tokens, want %d", workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("workers=%d token %d: %+v, want %+v", workers, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestChunkedLexTilesText: the parallel stream must tile the input exactly
// (no gaps, no overlaps) for every bundled language.
func TestChunkedLexTilesText(t *testing.T) {
	forceParallel(t)
	for _, e := range langreg.All() {
		var sb strings.Builder
		for sb.Len() < 96<<10 {
			sb.WriteString(strings.Join(e.Samples, "\n"))
			sb.WriteByte('\n')
		}
		text := sb.String()
		toks := e.Lang().Spec.ScanParallel(text, 4)
		pos := 0
		for i, tok := range toks {
			if tok.Offset != pos {
				t.Fatalf("%s: token %d starts at %d, want %d", e.Name, i, tok.Offset, pos)
			}
			if tok.Text != text[tok.Offset:tok.End()] {
				t.Fatalf("%s: token %d text does not alias input", e.Name, i)
			}
			pos = tok.End()
		}
		if pos != len(text) {
			t.Fatalf("%s: stream ends at %d, text length %d", e.Name, pos, len(text))
		}
	}
}

// BenchmarkScanParallel tracks end-to-end chunked lex throughput.
func BenchmarkScanParallel(b *testing.B) {
	e, _ := langreg.Find("java-subset")
	var sb strings.Builder
	for sb.Len() < 1<<20 {
		sb.WriteString(strings.Join(e.Samples, "\n"))
		sb.WriteByte('\n')
	}
	text := sb.String()
	spec := e.Lang().Spec
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			buf := spec.ScanParallel(text, workers)
			b.SetBytes(int64(len(text)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = spec.ScanParallelInto(text, workers, buf)
			}
		})
	}
}
