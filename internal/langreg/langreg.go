// Package langreg is the registry of bundled languages. It exists so the
// artifact tooling (cmd/langc, cmd/paperbench, the codec differential tests)
// can enumerate every bundled definition — both the shared built instance
// and a fresh builder for recompiling under different table options — without
// each tool hard-coding the list. It lives below the public package so both
// the root package and the commands can import it.
package langreg

import (
	"iglr/internal/langs"
	"iglr/internal/langs/cppsub"
	"iglr/internal/langs/csub"
	"iglr/internal/langs/expr"
	"iglr/internal/langs/javasub"
	"iglr/internal/langs/lispsub"
	"iglr/internal/langs/lr2"
	"iglr/internal/langs/mod2sub"
	"iglr/internal/langs/scannerless"
)

// Entry describes one bundled language.
type Entry struct {
	Name string
	// Fresh returns a new, un-built builder for the definition, so callers
	// can override table options (e.g. recompile as SLR or LR(1)) without
	// touching the shared instance.
	Fresh func() *langs.Builder
	// Lang returns the shared built instance (panics on build failure —
	// bundled definitions are static and tested).
	Lang func() *langs.Language
	// Samples are small representative programs used by differential tests
	// and benchmarks.
	Samples []string
}

// All returns every bundled language, name-sorted.
func All() []Entry {
	return []Entry{
		{
			Name: "c-subset", Fresh: csub.NewBuilder, Lang: csub.Lang,
			Samples: []string{
				"typedef int T; T x; x = f(x, 1) + 2; return x + 1;",
				"int a = 1; { a * b; c = a + 2; } /* note */",
			},
		},
		{
			Name: "cpp-subset", Fresh: cppsub.NewBuilder, Lang: cppsub.Lang,
			Samples: []string{
				"typedef int T; T(x); if (x) return 1; else return 2;",
				"int a = 3; while (a) { a = a + 1; } // done",
			},
		},
		{
			Name: "expr", Fresh: expr.NewBuilder, Lang: expr.Lang,
			Samples: []string{
				"a + b * (c - 42) / -d",
				"1 + 2 + 3 * x",
			},
		},
		{
			Name: "expr-ambiguous", Fresh: expr.NewAmbiguousBuilder, Lang: expr.AmbiguousLang,
			Samples: []string{
				"a + b * c",
				"(x + 1) / 2 - y",
			},
		},
		{
			Name: "java-subset", Fresh: javasub.NewBuilder, Lang: javasub.Lang,
			Samples: []string{
				`public class A { int f(int n) { if (n < 2) return n; return f(n - 1) + f(n - 2); } }`,
				`class B { static void main() { int[] a = new int[8]; a[0] = 1; } }`,
			},
		},
		{
			Name: "lisp-subset", Fresh: lispsub.NewBuilder, Lang: lispsub.Lang,
			Samples: []string{
				`(define (sq x) (* x x)) ; squares`,
				`(cons 1 '(2 3 "four"))`,
			},
		},
		{
			Name: "lr2-figure7", Fresh: lr2.NewBuilder, Lang: lr2.Lang,
			Samples: []string{"x z c", "x z e"},
		},
		{
			Name: "modula2-subset", Fresh: mod2sub.NewBuilder, Lang: mod2sub.Lang,
			Samples: []string{
				`MODULE M; VAR x: INTEGER; BEGIN x := 1; IF x = 1 THEN x := 2 END END M.`,
			},
		},
		{
			Name: "scannerless", Fresh: scannerless.NewBuilder, Lang: scannerless.Lang,
			Samples: []string{
				"if(a+1)x=2;",
				"abc=de+45;",
			},
		},
	}
}

// Find returns the entry for name, or false.
func Find(name string) (Entry, bool) {
	for _, e := range All() {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}
