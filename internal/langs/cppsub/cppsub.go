// Package cppsub defines a C++ subset exhibiting the paper's running
// example (Figures 1, 3, 8 and Appendix B): the statement `a(b);` is a
// variable declaration when `a` names a type (`type_id ( decl_id )`) and a
// function call otherwise (`func_id ( arglist )`). The distinction is not
// context-free; the GLR parser records both interpretations in the
// abstract parse dag and semantic analysis selects one (§4.2).
//
// The dangling-else ambiguity is resolved statically with the prefer-shift
// filter (§4.1), demonstrating filter staging within one language.
package cppsub

import (
	"iglr/internal/langs"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// GrammarSrc is exported for the grammar-compiler CLI and documentation.
const GrammarSrc = `
// C++ subset with the declaration/expression ambiguity.
%token ID NUM TYPEDEF INT IF ELSE WHILE RETURN ';' '(' ')' '{' '}' '=' '+' ','
%start Unit

Unit  : Item* ;

Item  : Stmt ';'
      | Decl ';'
      | Block
      | IF '(' Expr ')' Item
      | IF '(' Expr ')' Item ELSE Item
      | WHILE '(' Expr ')' Item
      | RETURN Expr ';'
      ;

Block : '{' Item* '}' ;

Decl     : TypeSpec InitDecl
         | TYPEDEF TypeSpec ID
         ;
TypeSpec : INT | TypeId ;
TypeId   : ID ;
InitDecl : Declarator
         | Declarator '=' Expr
         ;
Declarator : DeclId
           | '(' Declarator ')'
           | Declarator '(' ')'
           ;
DeclId : ID ;

Stmt : Expr
     | ID '=' Expr
     ;
Expr : Expr '+' Prim | Prim ;
Prim : ID | NUM | Call | '(' Expr ')' ;
Call : FuncId '(' Args ')' ;
FuncId : ID ;
Args : ArgList | ;
ArgList : Expr | ArgList ',' Expr ;
`

// LexRules returns the lexical specification (exported so experiments can
// rebuild the language under different table methods).
func LexRules() []lexer.Rule { return append([]lexer.Rule(nil), def.LexRules...) }

// Keywords returns the keyword map.
func Keywords() map[string]string {
	out := map[string]string{}
	for k, v := range def.Keywords {
		out[k] = v
	}
	return out
}

// TokenSyms returns the lexer-rule → terminal mapping.
func TokenSyms() map[string]string {
	out := map[string]string{}
	for k, v := range def.TokenSyms {
		out[k] = v
	}
	return out
}

// NewBuilder returns a fresh, un-built copy of the language definition.
func NewBuilder() *langs.Builder {
	return &langs.Builder{
		Name:    "cpp-subset",
		GramSrc: GrammarSrc,
		LexRules: []lexer.Rule{
			{Name: "WS", Pattern: `[ \t\n\r]+`, Skip: true},
			{Name: "COMMENT", Pattern: `/\*([^*]|\*+[^*/])*\*+/`, Skip: true},
			{Name: "LINECOMMENT", Pattern: `//[^\n]*`, Skip: true},
			{Name: "ID", Pattern: `[a-zA-Z_][a-zA-Z0-9_]*`},
			{Name: "NUM", Pattern: `[0-9]+`},
			{Name: "SEMI", Pattern: `;`},
			{Name: "LP", Pattern: `\(`},
			{Name: "RP", Pattern: `\)`},
			{Name: "LB", Pattern: `\{`},
			{Name: "RB", Pattern: `\}`},
			{Name: "EQ", Pattern: `=`},
			{Name: "PLUS", Pattern: `\+`},
			{Name: "COMMA", Pattern: `,`},
		},
		IdentRule: "ID",
		Keywords: map[string]string{
			"typedef": "TYPEDEF",
			"int":     "INT",
			"if":      "IF",
			"else":    "ELSE",
			"while":   "WHILE",
			"return":  "RETURN",
		},
		TokenSyms: map[string]string{
			"ID": "ID", "NUM": "NUM", "SEMI": "';'",
			"LP": "'('", "RP": "')'", "LB": "'{'", "RB": "'}'",
			"EQ": "'='", "PLUS": "'+'", "COMMA": "','",
		},
		// Prefer-shift statically resolves the dangling else; the
		// declaration/expression reduce/reduce conflicts remain for GLR.
		Options: lr.Options{Method: lr.LALR, PreferShift: true},
	}
}

var def = NewBuilder()

// Lang returns the C++-subset language definition.
func Lang() *langs.Language { return def.Lang() }
