package langs_test

import (
	"testing"

	"iglr/internal/dag"
	"iglr/internal/detparse"
	"iglr/internal/document"
	"iglr/internal/iglr"
	"iglr/internal/langs"
	"iglr/internal/langs/cppsub"
	"iglr/internal/langs/csub"
	"iglr/internal/langs/expr"
	"iglr/internal/langs/javasub"
	"iglr/internal/langs/lispsub"
	"iglr/internal/langs/lr2"
	"iglr/internal/langs/mod2sub"
	"iglr/internal/langs/scannerless"
	"iglr/internal/lr"
)

// TestParsersAgreeAcrossLanguagesAndMethods is the three-way differential
// pinning the batch kernel's transparency: for every bundled language and
// every table construction method, the IGLR parser (burst on and off) and —
// when the table is deterministic — the incremental deterministic parser and
// its batch kernel must produce byte-identical FormatDag output.
func TestParsersAgreeAcrossLanguagesAndMethods(t *testing.T) {
	cases := []struct {
		name string
		bld  func() *langs.Builder
		src  string
	}{
		{"expr", expr.NewBuilder, "1 + 2 * x + (y * 3)"},
		{"csub", csub.NewBuilder, "typedef int t; t(a); int b; b = b + 1; { int c; c = b; }"},
		{"cppsub", cppsub.NewBuilder, "typedef int a; a(b); c(q); int z; z = q + 1;"},
		{"javasub", javasub.NewBuilder, "class A { int[] xs; void m() { xs[0] = 1; } }"},
		{"lispsub", lispsub.NewBuilder, "(define (f x) (* x x)) (f 3) '(a b \"s\")"},
		{"mod2sub", mod2sub.NewBuilder, "MODULE M;\nVAR x : INTEGER;\nBEGIN\n  x := 1\nEND M.\n"},
		{"scannerless", scannerless.NewBuilder, "if(cond)x=1;"},
		{"lr2", lr2.NewBuilder, "x z c"},
	}
	methods := []lr.Method{lr.SLR, lr.LALR, lr.LR1}
	for _, c := range cases {
		for _, m := range methods {
			t.Run(c.name+"/"+m.String(), func(t *testing.T) {
				b := c.bld()
				b.Options.Method = m
				var l *langs.Language
				func() {
					defer func() {
						if r := recover(); r != nil {
							// Some grammars only build under some methods
							// (e.g. SLR conflicts the builder rejects).
							l = nil
						}
					}()
					l = b.Lang()
				}()
				if l == nil {
					t.Skipf("%s does not build with %s", c.name, m)
				}

				parse := func(noBurst bool) (*dag.Node, *document.Document) {
					d := l.NewDocument(c.src)
					p := iglr.New(l.Table)
					p.NoBurst = noBurst
					root, err := p.Parse(d.Stream())
					if err != nil {
						t.Fatalf("iglr(noBurst=%v): %v", noBurst, err)
					}
					return root, d
				}
				rootBurst, _ := parse(false)
				rootRounds, _ := parse(true)
				want := dag.Format(l.Grammar, rootRounds)
				if got := dag.Format(l.Grammar, rootBurst); got != want {
					t.Fatal("burst and round-engine trees differ")
				}

				if !l.Table.Deterministic() {
					return
				}
				dp, err := detparse.New(l.Table)
				if err != nil {
					t.Fatal(err)
				}
				dDet := l.NewDocument(c.src)
				rootDet, err := dp.Parse(dDet.Stream())
				if err != nil {
					t.Fatalf("detparse: %v", err)
				}
				if got := dag.Format(l.Grammar, rootDet); got != want {
					t.Fatal("detparse tree differs from IGLR")
				}
				dBatch := l.NewDocument(c.src)
				rootKernel, err := dp.ParseBatch(nil, dBatch.Terminals(), dBatch.EOFNode(), dBatch.Arena())
				if err != nil {
					t.Fatalf("kernel: %v", err)
				}
				if got := dag.Format(l.Grammar, rootKernel); got != want {
					t.Fatal("batch kernel tree differs from IGLR")
				}
			})
		}
	}
}
