// Package csub defines a C subset exhibiting the typedef ambiguity of the
// paper's Figure 1 in both classic shapes: `a(b);` (declaration of b with
// parenthesized declarator vs. call of a) and `a * b;` (declaration of
// pointer b vs. multiplication expression). Both require semantic
// disambiguation via typedef binding information.
package csub

import (
	"iglr/internal/langs"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// GrammarSrc is exported for the grammar-compiler CLI and documentation.
const GrammarSrc = `
// C subset with declaration/expression ambiguities.
%token ID NUM TYPEDEF INT RETURN ';' '(' ')' '{' '}' '=' '+' '*' ','
%start Unit

Unit  : Item* ;
Item  : Stmt ';'
      | Decl ';'
      | Block
      | RETURN Expr ';'
      ;
Block : '{' Item* '}' ;

Decl     : TypeSpec InitDecl
         | TYPEDEF TypeSpec ID
         ;
TypeSpec : INT | TypeId ;
TypeId   : ID ;
InitDecl : Declarator
         | Declarator '=' Expr
         ;
Declarator : DeclId
           | '*' Declarator
           | '(' Declarator ')'
           ;
DeclId : ID ;

Stmt : Expr
     | ID '=' Expr
     ;
Expr : Expr '+' Term | Term ;
Term : Term '*' Prim | Prim ;
Prim : ID | NUM | Call | '(' Expr ')' ;
Call : FuncId '(' Args ')' ;
FuncId : ID ;
Args : ArgList | ;
ArgList : Expr | ArgList ',' Expr ;
`

// NewBuilder returns a fresh, un-built copy of the language definition.
func NewBuilder() *langs.Builder {
	return &langs.Builder{
		Name:    "c-subset",
		GramSrc: GrammarSrc,
		LexRules: []lexer.Rule{
			{Name: "WS", Pattern: `[ \t\n\r]+`, Skip: true},
			{Name: "COMMENT", Pattern: `/\*([^*]|\*+[^*/])*\*+/`, Skip: true},
			{Name: "LINECOMMENT", Pattern: `//[^\n]*`, Skip: true},
			{Name: "ID", Pattern: `[a-zA-Z_][a-zA-Z0-9_]*`},
			{Name: "NUM", Pattern: `[0-9]+`},
			{Name: "SEMI", Pattern: `;`},
			{Name: "LP", Pattern: `\(`},
			{Name: "RP", Pattern: `\)`},
			{Name: "LB", Pattern: `\{`},
			{Name: "RB", Pattern: `\}`},
			{Name: "EQ", Pattern: `=`},
			{Name: "PLUS", Pattern: `\+`},
			{Name: "STAR", Pattern: `\*`},
			{Name: "COMMA", Pattern: `,`},
		},
		IdentRule: "ID",
		Keywords: map[string]string{
			"typedef": "TYPEDEF",
			"int":     "INT",
			"return":  "RETURN",
		},
		TokenSyms: map[string]string{
			"ID": "ID", "NUM": "NUM", "SEMI": "';'",
			"LP": "'('", "RP": "')'", "LB": "'{'", "RB": "'}'",
			"EQ": "'='", "PLUS": "'+'", "STAR": "'*'", "COMMA": "','",
		},
		Options: lr.Options{Method: lr.LALR},
	}
}

var def = NewBuilder()

// Lang returns the C-subset language definition.
func Lang() *langs.Language { return def.Lang() }
