// Package expr defines a small arithmetic expression language in two
// flavors: one whose ambiguous grammar is fully resolved by yacc-style
// static filters (precedence/associativity, §4.1), and one with the raw
// ambiguous grammar, which exercises GLR forking and dynamic filtering.
package expr

import (
	"iglr/internal/langs"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

const gramSrc = `
%token ID NUM
%left '+' '-'
%left '*' '/'
%right UMINUS
%start Expr
Expr : Expr '+' Expr
     | Expr '-' Expr
     | Expr '*' Expr
     | Expr '/' Expr
     | '-' Expr %prec UMINUS
     | '(' Expr ')'
     | ID
     | NUM
     ;
`

const ambigSrc = `
%token ID NUM '+' '-' '*' '/' '(' ')'
%start Expr
Expr : Expr '+' Expr
     | Expr '-' Expr
     | Expr '*' Expr
     | Expr '/' Expr
     | '(' Expr ')'
     | ID
     | NUM
     ;
`

func rules() []lexer.Rule {
	return []lexer.Rule{
		{Name: "WS", Pattern: `[ \t\n\r]+`, Skip: true},
		{Name: "ID", Pattern: `[a-zA-Z_][a-zA-Z0-9_]*`},
		{Name: "NUM", Pattern: `[0-9]+`},
		{Name: "PLUS", Pattern: `\+`},
		{Name: "MINUS", Pattern: `-`},
		{Name: "STAR", Pattern: `\*`},
		{Name: "SLASH", Pattern: `/`},
		{Name: "LP", Pattern: `\(`},
		{Name: "RP", Pattern: `\)`},
	}
}

func tokenSyms() map[string]string {
	return map[string]string{
		"ID": "ID", "NUM": "NUM",
		"PLUS": "'+'", "MINUS": "'-'", "STAR": "'*'", "SLASH": "'/'",
		"LP": "'('", "RP": "')'",
	}
}

// NewBuilder returns a fresh, un-built definition of the disambiguated
// expression language (for recompiling with different table options).
func NewBuilder() *langs.Builder {
	return &langs.Builder{
		Name:      "expr",
		GramSrc:   gramSrc,
		LexRules:  rules(),
		Options:   lr.Options{Method: lr.LALR},
		TokenSyms: tokenSyms(),
	}
}

// NewAmbiguousBuilder returns a fresh, un-built definition of the raw
// ambiguous expression language.
func NewAmbiguousBuilder() *langs.Builder {
	return &langs.Builder{
		Name:      "expr-ambiguous",
		GramSrc:   ambigSrc,
		LexRules:  rules(),
		Options:   lr.Options{Method: lr.LALR},
		TokenSyms: tokenSyms(),
	}
}

var def = NewBuilder()

var ambigDef = NewAmbiguousBuilder()

// Lang returns the statically disambiguated expression language.
func Lang() *langs.Language { return def.Lang() }

// AmbiguousLang returns the raw ambiguous expression language; its parse
// dags retain every grouping until a dynamic filter selects one.
func AmbiguousLang() *langs.Language { return ambigDef.Lang() }
