package javasub_test

import (
	"math/rand"
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/iglr"
	"iglr/internal/langs/javasub"
)

// TestFuzzIncrementalEqualsBatch hammers the full pipeline on Java source:
// random edits, incremental reparse, structural comparison against a fresh
// batch parse. Failing edits are reverted (and the revert must parse).
func TestFuzzIncrementalEqualsBatch(t *testing.T) {
	l := javasub.Lang()
	rng := rand.New(rand.NewSource(31337))
	d := l.NewDocument(bigClass(8))
	p := iglr.New(l.Table)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)

	pieces := []string{
		"x", "42", " ", ";", "=", "+", "(", ")", "{", "}", "[", "]",
		"int q; ", "if (x) y = 1; ", "m(a, b)", "\"str\"", "// c\n", "new T(1)",
	}
	parses, reverts := 0, 0
	for step := 0; step < 250; step++ {
		txt := d.Text()
		off := rng.Intn(len(txt) + 1)
		rem := 0
		if off < len(txt) {
			rem = rng.Intn(minI(len(txt)-off, 6))
		}
		removed := txt[off : off+rem]
		ins := ""
		if rng.Intn(4) > 0 {
			ins = pieces[rng.Intn(len(pieces))]
		}
		d.Replace(off, rem, ins)

		root, err := p.Parse(d.Stream())
		if err != nil {
			d.Replace(off, len(ins), removed)
			root2, err2 := p.Parse(d.Stream())
			if err2 != nil {
				t.Fatalf("step %d: revert does not parse: %v", step, err2)
			}
			d.Commit(root2)
			reverts++
			continue
		}
		// Compare against batch.
		dRef := l.NewDocument(d.Text())
		want, errRef := iglr.New(l.Table).Parse(dRef.Stream())
		if errRef != nil {
			t.Fatalf("step %d: incremental accepted what batch rejects: %v", step, errRef)
		}
		if !structEqual(root, want) {
			t.Fatalf("step %d: structure mismatch for:\n%s", step, d.Text())
		}
		d.Commit(root)
		parses++
	}
	if parses < 40 || reverts < 40 {
		t.Fatalf("coverage too thin: %d parses, %d reverts", parses, reverts)
	}
}

func structEqual(a, b *dag.Node) bool {
	if a.Kind != b.Kind || a.Sym != b.Sym || a.Prod != b.Prod {
		return false
	}
	if a.Kind == dag.KindTerminal {
		return a.Text == b.Text
	}
	if len(a.Kids) != len(b.Kids) {
		return false
	}
	for i := range a.Kids {
		if !structEqual(a.Kids[i], b.Kids[i]) {
			return false
		}
	}
	return true
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestUnicodeInStringsAndComments(t *testing.T) {
	l := javasub.Lang()
	p := iglr.New(l.Table)
	src := "class A { String s = \"héllo wörld → ok\"; /* コメント */ int x; }"
	d := l.NewDocument(src)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)
	if !strings.Contains(root.Yield(), "héllo") {
		t.Fatal("unicode string lost")
	}
	// Edit inside the unicode string (byte-aligned to the rune).
	off := strings.Index(d.Text(), "wörld")
	d.Replace(off, len("wörld"), "мир")
	root2, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(root2.Yield(), "мир") {
		t.Fatal("unicode edit lost")
	}
}

func TestRuneSplittingEditRecovers(t *testing.T) {
	// An edit that splits a multi-byte rune leaves invalid UTF-8; the
	// lexer must produce error tokens (not panic) and a follow-up edit
	// restoring valid text must parse again.
	l := javasub.Lang()
	p := iglr.New(l.Table)
	src := `class A { String s = "héllo"; }`
	d := l.NewDocument(src)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)

	off := strings.IndexRune(src, 'é')
	d.Replace(off, 1, "") // removes only the first byte of é
	// The document survives; parse may fail or succeed depending on how
	// the broken byte lexes, but must not panic.
	if r, err := p.Parse(d.Stream()); err == nil {
		d.Commit(r)
	}
	// Restore a clean string.
	end := strings.Index(d.Text(), `"h`)
	quote2 := strings.Index(d.Text()[end+1:], `"`) + end + 1
	d.Replace(end, quote2-end+1, `"hello"`)
	r, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatalf("restored text should parse: %v (text %q)", err, d.Text())
	}
	d.Commit(r)
}
