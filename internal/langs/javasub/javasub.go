// Package javasub defines a Java subset — the paper's Ensemble environment
// shipped a Java definition built on the same technology. The grammar is
// deliberately written in natural Java style rather than contorted for
// LR(1): the classic `T[] x;` (array-type local declaration) versus
// `a[i] = v;` (array-element assignment) prefix requires two tokens of
// lookahead after `ID [`, which the IGLR parser handles by forking, exactly
// like the paper's Figure 7. Everything else is made deterministic with
// yacc-style precedence and a prefer-shift dangling-else filter.
package javasub

import (
	"iglr/internal/langs"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// GrammarSrc is the Java-subset grammar.
const GrammarSrc = `
%token ID NUM STR CLASS PUBLIC STATIC VOID INT BOOLEAN IF ELSE WHILE FOR
%token RETURN NEW TRUE FALSE NULL THIS BREAK CONTINUE
%token OROR ANDAND EQEQ NEQ LE GE
%right '='
%left OROR
%left ANDAND
%left EQEQ NEQ
%left '<' '>' LE GE
%left '+' '-'
%left '*' '/' '%'
%right '!' UMINUS
%start Unit

Unit : ClassDecl+ ;

ClassDecl : Mods CLASS ID ClassBody ;
Mods      : Mod* ;
Mod       : PUBLIC | STATIC ;
ClassBody : '{' Member* '}' ;

Member : FieldDecl | MethodDecl ;

FieldDecl  : Mods Type ID ';'
           | Mods Type ID '=' Expr ';'
           ;
// Methods share the "Mods Type ID" prefix with fields so that a single
// token after the name (';', '=' or '(') decides deterministically.
MethodDecl : Mods Type ID '(' Params ')' Block
           | Mods VOID ID '(' Params ')' Block
           ;

Type : INT | BOOLEAN | ID | Type '[' ']' ;

Params    : ParamList | ;
ParamList : Param | ParamList ',' Param ;
Param     : Type ID ;

Block : '{' Stmt* '}' ;

Stmt : Block
     | LocalDecl ';'
     | Expr ';'
     | IF '(' Expr ')' Stmt
     | IF '(' Expr ')' Stmt ELSE Stmt
     | WHILE '(' Expr ')' Stmt
     | FOR '(' ForInit ';' ForCond ';' ForUpd ')' Stmt
     | RETURN ';'
     | RETURN Expr ';'
     | BREAK ';'
     | CONTINUE ';'
     | ';'
     ;

LocalDecl : Type ID
          | Type ID '=' Expr
          ;

ForInit : LocalDecl | Expr | ;
ForCond : Expr | ;
ForUpd  : Expr | ;

Expr : Expr '=' Expr
     | Expr OROR Expr
     | Expr ANDAND Expr
     | Expr EQEQ Expr
     | Expr NEQ Expr
     | Expr '<' Expr
     | Expr '>' Expr
     | Expr LE Expr
     | Expr GE Expr
     | Expr '+' Expr
     | Expr '-' Expr
     | Expr '*' Expr
     | Expr '/' Expr
     | Expr '%' Expr
     | '!' Expr
     | '-' Expr %prec UMINUS
     | Postfix
     ;

Postfix : Prim
        | Postfix '.' ID
        | Postfix '(' Args ')'
        | Postfix '[' Expr ']'
        ;

Prim : ID
     | NUM
     | STR
     | TRUE | FALSE | NULL | THIS
     | '(' Expr ')'
     | NEW ID '(' Args ')'
     | NEW Type '[' Expr ']'
     ;

Args    : ArgList | ;
ArgList : Expr | ArgList ',' Expr ;
`

// NewBuilder returns a fresh, un-built copy of the language definition.
func NewBuilder() *langs.Builder {
	return &langs.Builder{
		Name:    "java-subset",
		GramSrc: GrammarSrc,
		LexRules: []lexer.Rule{
			{Name: "WS", Pattern: `[ \t\n\r]+`, Skip: true},
			{Name: "COMMENT", Pattern: `/\*([^*]|\*+[^*/])*\*+/`, Skip: true},
			{Name: "LINECOMMENT", Pattern: `//[^\n]*`, Skip: true},
			{Name: "ID", Pattern: `[a-zA-Z_$][a-zA-Z0-9_$]*`},
			{Name: "NUM", Pattern: `[0-9]+(\.[0-9]+)?`},
			{Name: "STR", Pattern: `"([^"\\\n]|\\.)*"`},
			{Name: "OROR", Pattern: `\|\|`},
			{Name: "ANDAND", Pattern: `&&`},
			{Name: "EQEQ", Pattern: `==`},
			{Name: "NEQ", Pattern: `!=`},
			{Name: "LE", Pattern: `<=`},
			{Name: "GE", Pattern: `>=`},
			{Name: "EQ", Pattern: `=`},
			{Name: "LT", Pattern: `<`},
			{Name: "GT", Pattern: `>`},
			{Name: "NOT", Pattern: `!`},
			{Name: "PLUS", Pattern: `\+`},
			{Name: "MINUS", Pattern: `-`},
			{Name: "STAR", Pattern: `\*`},
			{Name: "SLASH", Pattern: `/`},
			{Name: "PCT", Pattern: `%`},
			{Name: "SEMI", Pattern: `;`},
			{Name: "COMMA", Pattern: `,`},
			{Name: "DOT", Pattern: `\.`},
			{Name: "LP", Pattern: `\(`},
			{Name: "RP", Pattern: `\)`},
			{Name: "LB", Pattern: `\{`},
			{Name: "RB", Pattern: `\}`},
			{Name: "LS", Pattern: `\[`},
			{Name: "RS", Pattern: `\]`},
		},
		IdentRule: "ID",
		Keywords: map[string]string{
			"class": "CLASS", "public": "PUBLIC", "static": "STATIC",
			"void": "VOID", "int": "INT", "boolean": "BOOLEAN",
			"if": "IF", "else": "ELSE", "while": "WHILE", "for": "FOR",
			"return": "RETURN", "new": "NEW", "true": "TRUE", "false": "FALSE",
			"null": "NULL", "this": "THIS", "break": "BREAK", "continue": "CONTINUE",
		},
		TokenSyms: map[string]string{
			"ID": "ID", "NUM": "NUM", "STR": "STR",
			"OROR": "OROR", "ANDAND": "ANDAND", "EQEQ": "EQEQ", "NEQ": "NEQ",
			"LE": "LE", "GE": "GE",
			"EQ": "'='", "LT": "'<'", "GT": "'>'", "NOT": "'!'",
			"PLUS": "'+'", "MINUS": "'-'", "STAR": "'*'", "SLASH": "'/'", "PCT": "'%'",
			"SEMI": "';'", "COMMA": "','", "DOT": "'.'",
			"LP": "'('", "RP": "')'", "LB": "'{'", "RB": "'}'", "LS": "'['", "RS": "']'",
		},
		Options: lr.Options{Method: lr.LALR, PreferShift: true},
	}
}

var def = NewBuilder()

// Lang returns the Java-subset language.
func Lang() *langs.Language { return def.Lang() }
