package javasub_test

import (
	"fmt"
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/iglr"
	"iglr/internal/langs/javasub"
)

func parse(t testing.TB, src string) (*dag.Node, iglr.Stats) {
	t.Helper()
	l := javasub.Lang()
	p := iglr.New(l.Table)
	d := l.NewDocument(src)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatalf("parse failed: %v\nsource:\n%s", err, src)
	}
	return root, p.Stats
}

func TestTableShape(t *testing.T) {
	l := javasub.Lang()
	// Exactly one conflict survives the static filters: the reduce/reduce
	// on '[' between the type reading and the expression reading of a
	// leading identifier (the `T[] x;` vs `a[i]=v;` prefix).
	if got := len(l.Table.Conflicts()); got != 1 {
		t.Fatalf("conflicts = %d, want exactly 1:\n%s", got, l.Table.DescribeConflicts())
	}
	c := l.Table.Conflicts()[0]
	if l.Grammar.Name(c.Term) != "'['" {
		t.Fatalf("conflict should be on '[', got %s", l.Grammar.Name(c.Term))
	}
	// The dangling else and the expression grammar resolve statically.
	if len(l.Table.Resolutions()) < 100 {
		t.Fatalf("expected many static resolutions, got %d", len(l.Table.Resolutions()))
	}
}

func TestValidPrograms(t *testing.T) {
	programs := []string{
		`class A { }`,
		`public class A { int x; }`,
		`class A { int x = 1 + 2 * 3; }`,
		`class A { void m() { } }`,
		`class A { static int f(int a, int b) { return a + b; } }`,
		`class A { void m() { int x = 1; x = x + 1; } }`,
		`class A { void m() { if (x > 0) y = 1; else y = 2; } }`,
		`class A { void m() { while (i < n) i = i + 1; } }`,
		`class A { void m() { for (int i = 0; i < 10; i = i + 1) sum = sum + i; } }`,
		`class A { void m() { for (;;) break; } }`,
		`class A { boolean flag = true; String s = "hi"; }`,
		`class A { void m() { obj.field.method(1, 2).other(); } }`,
		`class A { void m() { int[] z; z[0] = 1; } }`,
		`class A { void m() { int[][] grid; grid[i][j] = grid[j][i]; } }`,
		`class A { void m() { x = new Point(1, 2); a = new int[10]; } }`,
		`class A { void m() { if (a && b || !c) return; } }`,
		`class A { void m() { return x == y != z; } }`,
		`class A { void m() { ; ; ; } }`,
		`class A { } class B { } class C { }`,
		`class A { void m() { this.x = null; } }`,
		"class A { // comment\n /* block */ int x; }",
	}
	for _, src := range programs {
		root, _ := parse(t, src)
		if root.Ambiguous() {
			t.Fatalf("unexpected ambiguity for:\n%s\n%s", src, dag.Format(javasub.Lang().Grammar, root))
		}
		if iglr.CountParses(root) != 1 {
			t.Fatalf("parses != 1 for:\n%s", src)
		}
	}
}

func TestInvalidPrograms(t *testing.T) {
	l := javasub.Lang()
	for _, src := range []string{
		`class { }`,
		`class A {`,
		`class A { int; }`,
		`class A { void m() { if } }`,
		`class A { void m() { x = ; } }`,
		`class A { void m() { return return; } }`,
		`int x;`,
	} {
		p := iglr.New(l.Table)
		d := l.NewDocument(src)
		if _, err := p.Parse(d.Stream()); err == nil {
			t.Fatalf("accepted invalid program:\n%s", src)
		}
	}
}

func TestArrayDeclVsIndexForking(t *testing.T) {
	// Both readings share the `ID [` prefix; the parser must fork and the
	// survivor depends on the next token.
	root, stats := parse(t, `class A { void m() { Foo[] x; } }`)
	if stats.MaxActiveParsers < 2 {
		t.Fatalf("array-type declaration should fork: %+v", stats)
	}
	hasDecl := false
	root.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && javasub.Lang().Grammar.Name(n.Sym) == "LocalDecl" {
			hasDecl = true
		}
	})
	if !hasDecl {
		t.Fatal("should resolve to a local declaration")
	}

	root2, stats2 := parse(t, `class A { void m() { foo[1] = 2; } }`)
	if stats2.MaxActiveParsers < 2 {
		t.Fatalf("array index should fork too: %+v", stats2)
	}
	hasAssign := false
	root2.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && javasub.Lang().Grammar.Name(n.Sym) == "Postfix" && len(n.Kids) == 4 {
			hasAssign = true
		}
	})
	if !hasAssign {
		t.Fatal("should resolve to an index expression")
	}
}

func TestDanglingElseBindsToNearest(t *testing.T) {
	root, _ := parse(t, `class A { void m() { if (a) if (b) x = 1; else x = 2; } }`)
	// Prefer-shift: the else belongs to the inner if, so exactly one Stmt
	// node has the 7-child IF/ELSE shape and it contains both assignments.
	l := javasub.Lang()
	var ifElse *dag.Node
	root.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && l.Grammar.Name(n.Sym) == "Stmt" && len(n.Kids) == 7 {
			ifElse = n
		}
	})
	if ifElse == nil {
		t.Fatal("no if/else statement found")
	}
	if y := ifElse.Yield(); !strings.HasPrefix(y, "if(b)") {
		t.Fatalf("else bound to the wrong if: %q", y)
	}
}

func TestOperatorPrecedenceShape(t *testing.T) {
	root, _ := parse(t, `class A { int v = a + b * c == d && e || f; } `)
	// The top of the initializer must be ||, then &&, then ==, then +.
	l := javasub.Lang()
	var field *dag.Node
	root.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && l.Grammar.Name(n.Sym) == "FieldDecl" {
			field = n
		}
	})
	if field == nil {
		t.Fatal("no field")
	}
	expr := field.Kids[4]
	for _, wantOp := range []string{"OROR", "ANDAND", "EQEQ", "'+'"} {
		if len(expr.Kids) != 3 {
			t.Fatalf("expected binary node for %s, got %s", wantOp, l.Grammar.Name(expr.Sym))
		}
		if got := l.Grammar.Name(expr.Kids[1].Sym); got != wantOp {
			t.Fatalf("operator order: got %s, want %s", got, wantOp)
		}
		expr = expr.Kids[0]
	}
}

// bigClass generates a realistic multi-method class.
func bigClass(methods int) string {
	var sb strings.Builder
	sb.WriteString("public class Big {\n")
	sb.WriteString("  static int total;\n")
	for i := 0; i < methods; i++ {
		fmt.Fprintf(&sb, `  int method%d(int a, int b) {
    int result = 0;
    for (int i = 0; i < a; i = i + 1) {
      if (i %% 2 == 0) { result = result + i * b; }
      else { result = result - i; }
    }
    return result;
  }
`, i)
	}
	sb.WriteString("}\n")
	return sb.String()
}

func TestIncrementalEditingOnJava(t *testing.T) {
	l := javasub.Lang()
	src := bigClass(120)
	d := l.NewDocument(src)
	p := iglr.New(l.Table)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)
	full := p.Stats.TerminalShifts

	// Rename a literal deep inside one method.
	off := strings.Index(src, "method60")
	off = strings.Index(src[off:], "result + i") + off
	d.Replace(off+len("result + i"), 0, " + 7")
	root2, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root2)
	if p.Stats.TerminalShifts > 60 {
		t.Fatalf("incremental Java reparse shifted %d terminals (full parse: %d)",
			p.Stats.TerminalShifts, full)
	}
	if !strings.Contains(root2.Yield(), "result+i+7") {
		t.Fatal("edit missing from tree")
	}

	// Structure matches a batch parse of the edited text.
	dRef := l.NewDocument(d.Text())
	want, err := iglr.New(l.Table).Parse(dRef.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if dag.Measure(root2).DagNodes != dag.Measure(want).DagNodes {
		t.Fatal("incremental structure diverges from batch")
	}
}

func TestErrorRecoveryOnJava(t *testing.T) {
	l := javasub.Lang()
	d := l.NewDocument(`class A { void m() { x = 1; } }`)
	p := iglr.New(l.Table)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)
	// Breaking edit keeps the committed tree.
	d.Replace(21, 1, "(")
	if _, err := p.Parse(d.Stream()); err == nil {
		t.Fatal("expected parse error")
	}
	if d.Root() != root {
		t.Fatal("committed tree lost")
	}
}
