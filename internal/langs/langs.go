// Package langs bundles the pieces that define a language for the
// incremental analysis pipeline: grammar, lexical specification, parse
// table, and the token→terminal mapping. Subpackages provide concrete
// languages: an arithmetic expression language (expr), subsets of C (csub)
// and C++ (cppsub) exhibiting the paper's typedef ambiguity, and the LR(2)
// grammar of Figure 7 (lr2).
package langs

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"sort"
	"sync"

	"iglr/internal/dag"
	"iglr/internal/document"
	"iglr/internal/grammar"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// Language is a complete language definition. All fields are populated by
// the Builder and immutable afterwards: the grammar's analyses are
// precomputed, the parse table is never written after construction, the
// lexer DFA is read-only, and Map is a closure over frozen lookup tables.
// A *Language is therefore safe to share between any number of concurrent
// sessions/documents.
type Language struct {
	Name    string
	Grammar *grammar.Grammar
	Spec    *lexer.Spec
	Table   *lr.Table
	Map     document.TokenMapper
	// Tokens is the frozen token→terminal mapping data Map closes over; it
	// exists as data (not only as a closure) so compiled language artifacts
	// can serialize it.
	Tokens TokenMap
	// Hash is the content hash of the definition this language was compiled
	// from (HashDef); artifacts embed it so stale files self-invalidate.
	Hash [32]byte
}

// TokenMap is the token→terminal mapping in data form.
type TokenMap struct {
	// RuleSyms maps a lexer rule index to its grammar terminal, or
	// grammar.InvalidSym when the rule has no mapping.
	RuleSyms []grammar.Sym
	// Keywords maps exact lexeme text of the IdentRule to keyword terminals.
	Keywords map[string]grammar.Sym
	// IdentRule is the rule index whose lexemes consult Keywords, or -1.
	IdentRule int
}

// Mapper returns the TokenMapper closure over the frozen mapping.
func (m TokenMap) Mapper() document.TokenMapper {
	return func(rule int, text string) grammar.Sym {
		if rule == m.IdentRule {
			if s, ok := m.Keywords[text]; ok {
				return s
			}
		}
		if rule >= 0 && rule < len(m.RuleSyms) {
			if s := m.RuleSyms[rule]; s != grammar.InvalidSym {
				return s
			}
		}
		return grammar.ErrorSym
	}
}

// NewDocument creates a document over src for this language.
func (l *Language) NewDocument(src string) *document.Document {
	return document.New(l.Spec, l.Grammar, l.Map, src)
}

// NewDocumentInArena is NewDocument with the caller's node arena — for
// scratch documents whose trees get spliced into another document's dag.
func (l *Language) NewDocumentInArena(a *dag.Arena, src string) *document.Document {
	return document.NewInArena(a, l.Spec, l.Grammar, l.Map, src)
}

// NewDocumentOpts is NewDocument with batch options (parallel initial lex,
// donated buffers).
func (l *Language) NewDocumentOpts(src string, opts document.Options) *document.Document {
	return document.NewOpts(l.Spec, l.Grammar, l.Map, src, opts)
}

// Sym resolves a grammar symbol by name, panicking if missing (languages
// are static definitions, so a miss is a programming error).
func (l *Language) Sym(name string) grammar.Sym {
	s := l.Grammar.Lookup(name)
	if s == grammar.InvalidSym {
		panic("langs: unknown symbol " + name + " in " + l.Name)
	}
	return s
}

// BuildError reports which pipeline stage rejected a language definition:
// "grammar" (DSL parse or grammar analysis), "lexer" (token rule
// compilation), "table" (LR construction), or "tokens" (the token→terminal
// mapping).
type BuildError struct {
	Stage string
	Err   error
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("langs: %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the stage's underlying error.
func (e *BuildError) Unwrap() error { return e.Err }

func stageErr(stage, format string, args ...any) *BuildError {
	return &BuildError{Stage: stage, Err: fmt.Errorf(format, args...)}
}

// Builder assembles a Language from sources, caching the result.
type Builder struct {
	Name     string
	GramSrc  string
	LexRules []lexer.Rule
	Options  lr.Options
	// Keywords maps exact lexeme text of the IdentRule to keyword
	// terminals, so keywords need no dedicated lexer rules.
	Keywords  map[string]string
	IdentRule string
	TokenSyms map[string]string // lexer rule name → grammar symbol name

	once sync.Once
	lang *Language
	err  error
}

// Lang builds (once) and returns the language, panicking on error;
// intended for the static bundled-language definitions.
func (b *Builder) Lang() *Language {
	l, err := b.Build()
	if err != nil {
		panic(err)
	}
	return l
}

// Build builds (once) and returns the language. Concurrent calls are safe;
// all callers observe the same *Language or the same error (each is
// wrapped in a *BuildError identifying the failing stage).
func (b *Builder) Build() (*Language, error) {
	b.once.Do(func() { b.lang, b.err = b.build() })
	return b.lang, b.err
}

func (b *Builder) build() (*Language, error) {
	g, err := grammar.Parse(b.GramSrc)
	if err != nil {
		return nil, &BuildError{Stage: "grammar", Err: err}
	}
	spec, err := lexer.NewSpec(b.LexRules)
	if err != nil {
		return nil, &BuildError{Stage: "lexer", Err: err}
	}
	tbl, err := lr.Build(g, b.Options)
	if err != nil {
		return nil, &BuildError{Stage: "table", Err: err}
	}
	// Precompute rule→symbol mapping.
	bySymName := func(name string) (grammar.Sym, error) {
		s := g.Lookup(name)
		if s == grammar.InvalidSym {
			return s, stageErr("tokens", "token mapping references unknown symbol %s", name)
		}
		return s, nil
	}
	ruleSyms := make([]grammar.Sym, spec.NumRules())
	for i := range ruleSyms {
		ruleSyms[i] = grammar.InvalidSym
	}
	for ruleName, symName := range b.TokenSyms {
		idx := spec.RuleIndex(ruleName)
		if idx < 0 {
			return nil, stageErr("tokens", "token mapping references unknown lexer rule %s", ruleName)
		}
		s, err := bySymName(symName)
		if err != nil {
			return nil, err
		}
		ruleSyms[idx] = s
	}
	kw := map[string]grammar.Sym{}
	for text, symName := range b.Keywords {
		s, err := bySymName(symName)
		if err != nil {
			return nil, err
		}
		kw[text] = s
	}
	identIdx := -1
	if b.IdentRule != "" {
		identIdx = spec.RuleIndex(b.IdentRule)
		if identIdx < 0 {
			return nil, stageErr("tokens", "IdentRule %s not in lexer spec", b.IdentRule)
		}
	}
	tm := TokenMap{RuleSyms: ruleSyms, Keywords: kw, IdentRule: identIdx}
	return &Language{
		Name:    b.Name,
		Grammar: g,
		Spec:    spec,
		Table:   tbl,
		Map:     tm.Mapper(),
		Tokens:  tm,
		Hash:    b.Hash(),
	}, nil
}

// Hash returns the content hash of the builder's definition (HashDef over
// its fields).
func (b *Builder) Hash() [32]byte {
	return HashDef(b.Name, b.GramSrc, b.LexRules, b.TokenSyms, b.Keywords, b.IdentRule, b.Options)
}

// HashDef hashes every field that influences language compilation into a
// canonical content key: the memory cache uses it to deduplicate identical
// definitions, and compiled artifacts embed it so a stale file (any edit to
// the grammar, lexer rules, token mapping, or table options) self-invalidates.
// Map fields are serialized in sorted order; every string is length-prefixed
// so field boundaries cannot collide.
func HashDef(name, gramSrc string, rules []lexer.Rule, tokenSyms, keywords map[string]string, identRule string, opts lr.Options) [32]byte {
	h := sha256.New()
	hashStr(h, name)
	hashStr(h, gramSrc)
	hashInt(h, len(rules))
	for _, r := range rules {
		hashStr(h, r.Name)
		hashStr(h, r.Pattern)
		if r.Skip {
			h.Write([]byte{1})
		} else {
			h.Write([]byte{0})
		}
	}
	hashMap(h, tokenSyms)
	hashMap(h, keywords)
	hashStr(h, identRule)
	h.Write([]byte{byte(opts.Method)})
	flags := byte(0)
	if opts.PreferShift {
		flags |= 1
	}
	if opts.NoPrecedence {
		flags |= 2
	}
	if opts.PreferEarlierRule {
		flags |= 4
	}
	h.Write([]byte{flags})
	var sum [32]byte
	h.Sum(sum[:0])
	return sum
}

func hashStr(h hash.Hash, s string) {
	hashInt(h, len(s))
	h.Write([]byte(s))
}

func hashInt(h hash.Hash, n int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
}

func hashMap(h hash.Hash, m map[string]string) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hashInt(h, len(keys))
	for _, k := range keys {
		hashStr(h, k)
		hashStr(h, m[k])
	}
}
