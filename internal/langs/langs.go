// Package langs bundles the pieces that define a language for the
// incremental analysis pipeline: grammar, lexical specification, parse
// table, and the token→terminal mapping. Subpackages provide concrete
// languages: an arithmetic expression language (expr), subsets of C (csub)
// and C++ (cppsub) exhibiting the paper's typedef ambiguity, and the LR(2)
// grammar of Figure 7 (lr2).
package langs

import (
	"fmt"
	"sync"

	"iglr/internal/dag"
	"iglr/internal/document"
	"iglr/internal/grammar"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// Language is a complete language definition. All fields are populated by
// the Builder and immutable afterwards: the grammar's analyses are
// precomputed, the parse table is never written after construction, the
// lexer DFA is read-only, and Map is a closure over frozen lookup tables.
// A *Language is therefore safe to share between any number of concurrent
// sessions/documents.
type Language struct {
	Name    string
	Grammar *grammar.Grammar
	Spec    *lexer.Spec
	Table   *lr.Table
	Map     document.TokenMapper
}

// NewDocument creates a document over src for this language.
func (l *Language) NewDocument(src string) *document.Document {
	return document.New(l.Spec, l.Grammar, l.Map, src)
}

// NewDocumentInArena is NewDocument with the caller's node arena — for
// scratch documents whose trees get spliced into another document's dag.
func (l *Language) NewDocumentInArena(a *dag.Arena, src string) *document.Document {
	return document.NewInArena(a, l.Spec, l.Grammar, l.Map, src)
}

// Sym resolves a grammar symbol by name, panicking if missing (languages
// are static definitions, so a miss is a programming error).
func (l *Language) Sym(name string) grammar.Sym {
	s := l.Grammar.Lookup(name)
	if s == grammar.InvalidSym {
		panic("langs: unknown symbol " + name + " in " + l.Name)
	}
	return s
}

// BuildError reports which pipeline stage rejected a language definition:
// "grammar" (DSL parse or grammar analysis), "lexer" (token rule
// compilation), "table" (LR construction), or "tokens" (the token→terminal
// mapping).
type BuildError struct {
	Stage string
	Err   error
}

func (e *BuildError) Error() string {
	return fmt.Sprintf("langs: %s: %v", e.Stage, e.Err)
}

// Unwrap exposes the stage's underlying error.
func (e *BuildError) Unwrap() error { return e.Err }

func stageErr(stage, format string, args ...any) *BuildError {
	return &BuildError{Stage: stage, Err: fmt.Errorf(format, args...)}
}

// Builder assembles a Language from sources, caching the result.
type Builder struct {
	Name     string
	GramSrc  string
	LexRules []lexer.Rule
	Options  lr.Options
	// Keywords maps exact lexeme text of the IdentRule to keyword
	// terminals, so keywords need no dedicated lexer rules.
	Keywords  map[string]string
	IdentRule string
	TokenSyms map[string]string // lexer rule name → grammar symbol name

	once sync.Once
	lang *Language
	err  error
}

// Lang builds (once) and returns the language, panicking on error;
// intended for the static bundled-language definitions.
func (b *Builder) Lang() *Language {
	l, err := b.Build()
	if err != nil {
		panic(err)
	}
	return l
}

// Build builds (once) and returns the language. Concurrent calls are safe;
// all callers observe the same *Language or the same error (each is
// wrapped in a *BuildError identifying the failing stage).
func (b *Builder) Build() (*Language, error) {
	b.once.Do(func() { b.lang, b.err = b.build() })
	return b.lang, b.err
}

func (b *Builder) build() (*Language, error) {
	g, err := grammar.Parse(b.GramSrc)
	if err != nil {
		return nil, &BuildError{Stage: "grammar", Err: err}
	}
	spec, err := lexer.NewSpec(b.LexRules)
	if err != nil {
		return nil, &BuildError{Stage: "lexer", Err: err}
	}
	tbl, err := lr.Build(g, b.Options)
	if err != nil {
		return nil, &BuildError{Stage: "table", Err: err}
	}
	// Precompute rule→symbol mapping.
	bySymName := func(name string) (grammar.Sym, error) {
		s := g.Lookup(name)
		if s == grammar.InvalidSym {
			return s, stageErr("tokens", "token mapping references unknown symbol %s", name)
		}
		return s, nil
	}
	ruleSyms := make([]grammar.Sym, spec.NumRules())
	for i := range ruleSyms {
		ruleSyms[i] = grammar.InvalidSym
	}
	for ruleName, symName := range b.TokenSyms {
		idx := spec.RuleIndex(ruleName)
		if idx < 0 {
			return nil, stageErr("tokens", "token mapping references unknown lexer rule %s", ruleName)
		}
		s, err := bySymName(symName)
		if err != nil {
			return nil, err
		}
		ruleSyms[idx] = s
	}
	kw := map[string]grammar.Sym{}
	for text, symName := range b.Keywords {
		s, err := bySymName(symName)
		if err != nil {
			return nil, err
		}
		kw[text] = s
	}
	identIdx := -1
	if b.IdentRule != "" {
		identIdx = spec.RuleIndex(b.IdentRule)
		if identIdx < 0 {
			return nil, stageErr("tokens", "IdentRule %s not in lexer spec", b.IdentRule)
		}
	}
	mapper := func(rule int, text string) grammar.Sym {
		if rule == identIdx {
			if s, ok := kw[text]; ok {
				return s
			}
		}
		if s := ruleSyms[rule]; s != grammar.InvalidSym {
			return s
		}
		return grammar.ErrorSym
	}
	return &Language{Name: b.Name, Grammar: g, Spec: spec, Table: tbl, Map: mapper}, nil
}
