// Package langs bundles the pieces that define a language for the
// incremental analysis pipeline: grammar, lexical specification, parse
// table, and the token→terminal mapping. Subpackages provide concrete
// languages: an arithmetic expression language (expr), subsets of C (csub)
// and C++ (cppsub) exhibiting the paper's typedef ambiguity, and the LR(2)
// grammar of Figure 7 (lr2).
package langs

import (
	"sync"

	"iglr/internal/document"
	"iglr/internal/grammar"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// Language is a complete language definition.
type Language struct {
	Name    string
	Grammar *grammar.Grammar
	Spec    *lexer.Spec
	Table   *lr.Table
	Map     document.TokenMapper
}

// NewDocument creates a document over src for this language.
func (l *Language) NewDocument(src string) *document.Document {
	return document.New(l.Spec, l.Grammar, l.Map, src)
}

// Sym resolves a grammar symbol by name, panicking if missing (languages
// are static definitions, so a miss is a programming error).
func (l *Language) Sym(name string) grammar.Sym {
	s := l.Grammar.Lookup(name)
	if s == grammar.InvalidSym {
		panic("langs: unknown symbol " + name + " in " + l.Name)
	}
	return s
}

// Builder assembles a Language from sources, caching the result.
type Builder struct {
	Name     string
	GramSrc  string
	LexRules []lexer.Rule
	Options  lr.Options
	// Keywords maps exact lexeme text of the IdentRule to keyword
	// terminals, so keywords need no dedicated lexer rules.
	Keywords  map[string]string
	IdentRule string
	TokenSyms map[string]string // lexer rule name → grammar symbol name

	once sync.Once
	lang *Language
	err  error
}

// Lang builds (once) and returns the language.
func (b *Builder) Lang() *Language {
	b.once.Do(func() { b.lang, b.err = b.build() })
	if b.err != nil {
		panic(b.err)
	}
	return b.lang
}

func (b *Builder) build() (*Language, error) {
	g, err := grammar.Parse(b.GramSrc)
	if err != nil {
		return nil, err
	}
	spec, err := lexer.NewSpec(b.LexRules)
	if err != nil {
		return nil, err
	}
	tbl, err := lr.Build(g, b.Options)
	if err != nil {
		return nil, err
	}
	// Precompute rule→symbol mapping.
	bySymName := func(name string) grammar.Sym {
		s := g.Lookup(name)
		if s == grammar.InvalidSym {
			panic("langs: token mapping references unknown symbol " + name)
		}
		return s
	}
	ruleSyms := make([]grammar.Sym, spec.NumRules())
	for i := range ruleSyms {
		ruleSyms[i] = grammar.InvalidSym
	}
	for ruleName, symName := range b.TokenSyms {
		idx := spec.RuleIndex(ruleName)
		if idx < 0 {
			panic("langs: token mapping references unknown lexer rule " + ruleName)
		}
		ruleSyms[idx] = bySymName(symName)
	}
	kw := map[string]grammar.Sym{}
	for text, symName := range b.Keywords {
		kw[text] = bySymName(symName)
	}
	identIdx := -1
	if b.IdentRule != "" {
		identIdx = spec.RuleIndex(b.IdentRule)
		if identIdx < 0 {
			panic("langs: IdentRule " + b.IdentRule + " not in lexer spec")
		}
	}
	mapper := func(rule int, text string) grammar.Sym {
		if rule == identIdx {
			if s, ok := kw[text]; ok {
				return s
			}
		}
		if s := ruleSyms[rule]; s != grammar.InvalidSym {
			return s
		}
		return grammar.ErrorSym
	}
	return &Language{Name: b.Name, Grammar: g, Spec: spec, Table: tbl, Map: mapper}, nil
}
