package langs_test

import (
	"testing"

	"iglr/internal/dag"
	"iglr/internal/grammar"
	"iglr/internal/iglr"
	"iglr/internal/langs"
	"iglr/internal/langs/cppsub"
	"iglr/internal/langs/csub"
	"iglr/internal/langs/expr"
	"iglr/internal/langs/lr2"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

func TestBuilderPanicsOnBadDefinitions(t *testing.T) {
	cases := []struct {
		name string
		b    *langs.Builder
	}{
		{"bad grammar", &langs.Builder{
			Name:     "x",
			GramSrc:  "%start S\nS : Missing ;",
			LexRules: []lexer.Rule{{Name: "A", Pattern: "a"}},
		}},
		{"bad regex", &langs.Builder{
			Name:     "x",
			GramSrc:  "%token a\n%start S\nS : a ;",
			LexRules: []lexer.Rule{{Name: "A", Pattern: "("}},
		}},
		{"unknown token sym", &langs.Builder{
			Name:      "x",
			GramSrc:   "%token a\n%start S\nS : a ;",
			LexRules:  []lexer.Rule{{Name: "A", Pattern: "a"}},
			TokenSyms: map[string]string{"A": "nope"},
		}},
		{"unknown rule", &langs.Builder{
			Name:      "x",
			GramSrc:   "%token a\n%start S\nS : a ;",
			LexRules:  []lexer.Rule{{Name: "A", Pattern: "a"}},
			TokenSyms: map[string]string{"B": "a"},
		}},
		{"bad ident rule", &langs.Builder{
			Name:      "x",
			GramSrc:   "%token a\n%start S\nS : a ;",
			LexRules:  []lexer.Rule{{Name: "A", Pattern: "a"}},
			IdentRule: "NOPE",
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			c.b.Lang()
		})
	}
}

func TestUnmappedRuleBecomesErrorToken(t *testing.T) {
	b := &langs.Builder{
		Name:    "partial",
		GramSrc: "%token a\n%start S\nS : a ;",
		LexRules: []lexer.Rule{
			{Name: "A", Pattern: "a"},
			{Name: "Q", Pattern: "q"}, // deliberately unmapped
		},
		TokenSyms: map[string]string{"A": "a"},
	}
	l := b.Lang()
	d := l.NewDocument("q")
	if d.LexErrorCount != 0 {
		t.Fatal("q lexes fine; it maps to the error terminal at the grammar level")
	}
	p := iglr.New(l.Table)
	if _, err := p.Parse(d.Stream()); err == nil {
		t.Fatal("unmapped token must be a syntax error")
	}
}

func TestLangCaching(t *testing.T) {
	if expr.Lang() != expr.Lang() {
		t.Fatal("Lang() should cache")
	}
	if lr2.Lang().Grammar != lr2.Lang().Grammar {
		t.Fatal("grammar identity should be stable")
	}
}

func TestSymPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	expr.Lang().Sym("NoSuchSymbol")
}

func TestCSubCppSubSurfaceDifferences(t *testing.T) {
	// csub has '*' (pointers/multiplication); cppsub has while/if sugar.
	c, cpp := csub.Lang(), cppsub.Lang()
	if c.Grammar.Lookup("'*'") == grammar.InvalidSym {
		t.Fatal("csub should have '*'")
	}
	if cpp.Grammar.Lookup("WHILE") == grammar.InvalidSym {
		t.Fatal("cppsub should have WHILE")
	}
	// Both share the Item/Decl/TypeId backbone used by the semantics
	// configuration.
	for _, l := range []*langs.Language{c, cpp} {
		for _, sym := range []string{"Item", "Decl", "TypeId", "DeclId", "Block", "TYPEDEF"} {
			if l.Grammar.Lookup(sym) == grammar.InvalidSym {
				t.Fatalf("%s missing %s", l.Name, sym)
			}
		}
	}
}

func TestKeywordClassification(t *testing.T) {
	l := cppsub.Lang()
	d := l.NewDocument("typedef int x; typedefx = 1;")
	terms := d.Terminals()
	if terms[0].Sym != l.Sym("TYPEDEF") {
		t.Fatalf("first token should be the TYPEDEF keyword, got %s", l.Grammar.Name(terms[0].Sym))
	}
	// "typedefx" is an identifier, not the keyword plus junk.
	found := false
	for _, n := range terms {
		if n.Text == "typedefx" && n.Sym == l.Sym("ID") {
			found = true
		}
	}
	if !found {
		t.Fatal("typedefx should lex as one identifier")
	}
}

func TestCStyleSemanticsHooks(t *testing.T) {
	l := csub.Lang()
	cfg := langs.CStyleSemantics(l)
	d := l.NewDocument("typedef int T; int v = 1; { v = 2; }")
	p := iglr.New(l.Table)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	var typedefs, decls, scopes int
	root.Walk(func(n *dag.Node) {
		if _, ok := cfg.TypedefName(n); ok {
			typedefs++
		}
		if _, ok := cfg.DeclaredName(n); ok {
			decls++
		}
		if cfg.IsScope(n) {
			scopes++
		}
	})
	if typedefs != 1 || decls != 1 || scopes != 1 {
		t.Fatalf("typedefs=%d decls=%d scopes=%d", typedefs, decls, scopes)
	}
}

func TestExprTableMethodsBuild(t *testing.T) {
	// The bundled expr grammar builds under every method.
	g, err := grammar.Parse(`
%token ID
%left '+'
%start E
E : E '+' E | ID ;
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []lr.Method{lr.SLR, lr.LALR, lr.LR1} {
		if _, err := lr.Build(g, lr.Options{Method: m}); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}
