// Package lispsub defines a Lisp subset — Ensemble's language list includes
// one. S-expressions are an extreme case of the paper's §3.4 observation:
// the whole program is nested associative sequences, so the balanced dag
// representation applies everywhere. The grammar is deterministic; the
// interest is structural (deep nesting, long element lists, quote sugar).
package lispsub

import (
	"iglr/internal/langs"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// GrammarSrc is the s-expression grammar.
const GrammarSrc = `
%token SYMBOL NUMBER STRING '(' ')' QUOTE
%start Program

Program : Form* ;

Form : Atom
     | List
     | QUOTE Form
     ;

List : '(' Form* ')' ;

Atom : SYMBOL | NUMBER | STRING ;
`

// NewBuilder returns a fresh, un-built copy of the language definition.
func NewBuilder() *langs.Builder {
	return &langs.Builder{
		Name:    "lisp-subset",
		GramSrc: GrammarSrc,
		LexRules: []lexer.Rule{
			{Name: "WS", Pattern: `[ \t\n\r]+`, Skip: true},
			{Name: "COMMENT", Pattern: `;[^\n]*`, Skip: true},
			{Name: "NUMBER", Pattern: `-?[0-9]+(\.[0-9]+)?`},
			{Name: "STRING", Pattern: `"([^"\\]|\\.)*"`},
			{Name: "QUOTE", Pattern: `'`},
			{Name: "LP", Pattern: `\(`},
			{Name: "RP", Pattern: `\)`},
			{Name: "SYMBOL", Pattern: `[a-zA-Z+*/<>=!?._-][a-zA-Z0-9+*/<>=!?._-]*`},
		},
		TokenSyms: map[string]string{
			"SYMBOL": "SYMBOL", "NUMBER": "NUMBER", "STRING": "STRING",
			"QUOTE": "QUOTE", "LP": "'('", "RP": "')'",
		},
		Options: lr.Options{Method: lr.LALR},
	}
}

var def = NewBuilder()

// Lang returns the Lisp-subset language.
func Lang() *langs.Language { return def.Lang() }
