package lispsub_test

import (
	"fmt"
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/iglr"
	"iglr/internal/langs/lispsub"
)

func TestBasicForms(t *testing.T) {
	l := lispsub.Lang()
	if !l.Table.Deterministic() {
		t.Fatalf("lisp grammar should be deterministic:\n%s", l.Table.DescribeConflicts())
	}
	p := iglr.New(l.Table)
	for _, src := range []string{
		`42`,
		`(+ 1 2)`,
		`(define (square x) (* x x))`,
		`'(a b c)`,
		`''nested-quote`,
		`(let ((x 1) (y 2)) (+ x y)) ; comment`,
		`"a string" (another form)`,
		`()`,
		`(- -1 -2.5)`,
	} {
		d := l.NewDocument(src)
		if _, err := p.Parse(d.Stream()); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
	}
	for _, bad := range []string{`(`, `)`, `(a (b)`, `'`, `(])`} {
		d := l.NewDocument(bad)
		if _, err := p.Parse(d.Stream()); err == nil {
			t.Fatalf("%q should be rejected", bad)
		}
	}
}

func TestDeepNesting(t *testing.T) {
	l := lispsub.Lang()
	p := iglr.New(l.Table)
	depth := 300
	src := strings.Repeat("(a ", depth) + "x" + strings.Repeat(")", depth)
	d := l.NewDocument(src)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if root.Yield() != strings.ReplaceAll(src, " ", "") {
		t.Fatal("yield mismatch")
	}
}

func TestLongListIncrementalEdit(t *testing.T) {
	l := lispsub.Lang()
	p := iglr.New(l.Table)
	var sb strings.Builder
	sb.WriteString("(list")
	for i := 0; i < 800; i++ {
		fmt.Fprintf(&sb, " item%d", i)
	}
	sb.WriteString(")")
	src := sb.String()
	d := l.NewDocument(src)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)

	off := strings.Index(src, "item400")
	d.Replace(off, len("item400"), "replaced")
	root2, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root2)
	if p.Stats.TerminalShifts > 6 {
		t.Fatalf("edit in a long list relexed %d tokens", p.Stats.TerminalShifts)
	}
	if !strings.Contains(root2.Yield(), "replaced") {
		t.Fatal("edit missing")
	}

	// The element sequence is associative: rebalancing gives log depth.
	bal := dag.Rebalance(d.Arena(), l.Grammar, root2)
	var maxLen int
	bal.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindSeq {
			if sl := dag.SeqLen(n); sl > maxLen {
				maxLen = sl
			}
		}
	})
	if maxLen < 800 {
		t.Fatalf("expected an 800+-element balanced sequence, got %d", maxLen)
	}
}

func TestQuoteSugarStructure(t *testing.T) {
	l := lispsub.Lang()
	p := iglr.New(l.Table)
	d := l.NewDocument(`'(f x)`)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	// Form → QUOTE Form with the list inside.
	var quoted *dag.Node
	root.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindProduction && l.Grammar.Name(n.Sym) == "Form" && len(n.Kids) == 2 {
			quoted = n
		}
	})
	if quoted == nil {
		t.Fatal("quote form not found")
	}
	if quoted.Kids[0].Text != "'" {
		t.Fatalf("quote terminal = %q", quoted.Kids[0].Text)
	}
}
