// Package lr2 defines the paper's Figure 7 grammar: an unambiguous LR(2)
// language that a GLR parser handles with LALR(1) tables by forking on the
// U→x / V→x decision and tracking the extra lookahead dynamically (§3.3).
package lr2

import (
	"iglr/internal/langs"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// GrammarSrc is the Figure 7 grammar.
const GrammarSrc = `
%token x z c e
%start A
A : B c | D e ;
B : U z ;
D : V z ;
U : x ;
V : x ;
`

// NewBuilder returns a fresh, un-built copy of the language definition.
func NewBuilder() *langs.Builder {
	return &langs.Builder{
		Name:    "lr2-figure7",
		GramSrc: GrammarSrc,
		LexRules: []lexer.Rule{
			{Name: "WS", Pattern: `[ \t\n\r]+`, Skip: true},
			{Name: "X", Pattern: `x`},
			{Name: "Z", Pattern: `z`},
			{Name: "C", Pattern: `c`},
			{Name: "E", Pattern: `e`},
		},
		TokenSyms: map[string]string{"X": "x", "Z": "z", "C": "c", "E": "e"},
		Options:   lr.Options{Method: lr.LALR},
	}
}

var def = NewBuilder()

// Lang returns the Figure 7 language.
func Lang() *langs.Language { return def.Lang() }
