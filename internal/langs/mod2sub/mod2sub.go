// Package mod2sub defines a Modula-2 subset — the first language Ensemble
// shipped. Modula-2 was designed for one-token-lookahead parsing, so the
// grammar is cleanly LALR(1) with no conflicts at all: it exercises the
// deterministic incremental parser (§3.2) on a realistic block-structured
// language, and the keyword-rich syntax stresses the lexer's
// identifier/keyword classification.
package mod2sub

import (
	"iglr/internal/langs"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

// GrammarSrc is the Modula-2-subset grammar.
const GrammarSrc = `
%token ID NUM STR MODULE BEGIN END VAR CONST PROCEDURE IF THEN ELSIF ELSE
%token WHILE DO RETURN INTEGER BOOLEAN TRUE FALSE
%token NEQ LE GE ASSIGN
%start Module

Module : MODULE ID ';' Decls Body ID '.' ;

Decls : Decl* ;
Decl  : VAR VarDecl+
      | CONST ConstDecl+
      | ProcDecl
      ;
VarDecl   : IdList ':' Type ';' ;
ConstDecl : ID '=' Expr ';' ;
IdList    : ID | IdList ',' ID ;
Type      : INTEGER | BOOLEAN | ID ;

ProcDecl : PROCEDURE ID Formals ';' Decls Body ID ';' ;
Formals  : '(' ParamList ')' | '(' ')' | ;
ParamList : Param | ParamList ';' Param ;
Param     : IdList ':' Type ;

Body : BEGIN Stmts END ;

Stmts : StmtSeq | ;
StmtSeq : Stmt | StmtSeq ';' Stmt ;

Stmt : ID ASSIGN Expr
     | ID '(' Args ')'
     | IfStmt
     | WHILE Expr DO Stmts END
     | RETURN Expr
     | RETURN
     ;

IfStmt : IF Expr THEN Stmts Elsifs Else END ;
Elsifs : Elsif* ;
Elsif  : ELSIF Expr THEN Stmts ;
Else   : ELSE Stmts | ;

Args    : ArgList | ;
ArgList : Expr | ArgList ',' Expr ;

Expr : Simple
     | Simple '=' Simple
     | Simple NEQ Simple
     | Simple '<' Simple
     | Simple '>' Simple
     | Simple LE Simple
     | Simple GE Simple
     ;
Simple : Term | Simple '+' Term | Simple '-' Term ;
Term   : Factor | Term '*' Factor | Term '/' Factor ;
Factor : ID | NUM | STR | TRUE | FALSE
       | ID '(' Args ')'
       | '(' Expr ')'
       | '-' Factor
       ;
`

// NewBuilder returns a fresh, un-built copy of the language definition.
func NewBuilder() *langs.Builder {
	return &langs.Builder{
		Name:    "modula2-subset",
		GramSrc: GrammarSrc,
		LexRules: []lexer.Rule{
			{Name: "WS", Pattern: `[ \t\n\r]+`, Skip: true},
			{Name: "COMMENT", Pattern: `\(\*([^*]|\*+[^)*])*\*+\)`, Skip: true},
			{Name: "ID", Pattern: `[a-zA-Z][a-zA-Z0-9]*`},
			{Name: "NUM", Pattern: `[0-9]+`},
			{Name: "STR", Pattern: `"[^"\n]*"`},
			{Name: "ASSIGN", Pattern: `:=`},
			{Name: "NEQ", Pattern: `#`},
			{Name: "LE", Pattern: `<=`},
			{Name: "GE", Pattern: `>=`},
			{Name: "EQ", Pattern: `=`},
			{Name: "LT", Pattern: `<`},
			{Name: "GT", Pattern: `>`},
			{Name: "COLON", Pattern: `:`},
			{Name: "SEMI", Pattern: `;`},
			{Name: "COMMA", Pattern: `,`},
			{Name: "DOT", Pattern: `\.`},
			{Name: "PLUS", Pattern: `\+`},
			{Name: "MINUS", Pattern: `-`},
			{Name: "STAR", Pattern: `\*`},
			{Name: "SLASH", Pattern: `/`},
			{Name: "LP", Pattern: `\(`},
			{Name: "RP", Pattern: `\)`},
		},
		IdentRule: "ID",
		Keywords: map[string]string{
			"MODULE": "MODULE", "BEGIN": "BEGIN", "END": "END", "VAR": "VAR",
			"CONST": "CONST", "PROCEDURE": "PROCEDURE", "IF": "IF", "THEN": "THEN",
			"ELSIF": "ELSIF", "ELSE": "ELSE", "WHILE": "WHILE", "DO": "DO",
			"RETURN": "RETURN", "INTEGER": "INTEGER", "BOOLEAN": "BOOLEAN",
			"TRUE": "TRUE", "FALSE": "FALSE",
		},
		TokenSyms: map[string]string{
			"ID": "ID", "NUM": "NUM", "STR": "STR", "ASSIGN": "ASSIGN",
			"NEQ": "NEQ", "LE": "LE", "GE": "GE",
			"EQ": "'='", "LT": "'<'", "GT": "'>'",
			"COLON": "':'", "SEMI": "';'", "COMMA": "','", "DOT": "'.'",
			"PLUS": "'+'", "MINUS": "'-'", "STAR": "'*'", "SLASH": "'/'",
			"LP": "'('", "RP": "')'",
		},
		Options: lr.Options{Method: lr.LALR},
	}
}

var def = NewBuilder()

// Lang returns the Modula-2-subset language.
func Lang() *langs.Language { return def.Lang() }
