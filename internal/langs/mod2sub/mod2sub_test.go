package mod2sub_test

import (
	"fmt"
	"strings"
	"testing"

	"iglr/internal/detparse"
	"iglr/internal/iglr"
	"iglr/internal/langs/mod2sub"
)

const sample = `MODULE Demo;
  (* a small Modula-2 program *)
  CONST Limit = 10;
  VAR i, sum : INTEGER;
      done : BOOLEAN;

  PROCEDURE Square(x : INTEGER);
  BEGIN
    RETURN x * x
  END Square;

BEGIN
  sum := 0;
  i := 1;
  WHILE i <= Limit DO
    sum := sum + Square(i);
    i := i + 1
  END;
  IF sum > 100 THEN done := TRUE ELSIF sum = 0 THEN done := FALSE ELSE done := TRUE END
END Demo.
`

func TestDeterministicTable(t *testing.T) {
	l := mod2sub.Lang()
	if !l.Table.Deterministic() {
		t.Fatalf("Modula-2 should be conflict-free:\n%s", l.Table.DescribeConflicts())
	}
}

func TestParseSample(t *testing.T) {
	l := mod2sub.Lang()
	p := iglr.New(l.Table)
	d := l.NewDocument(sample)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatalf("sample does not parse: %v", err)
	}
	if root.Ambiguous() {
		t.Fatal("deterministic language cannot be ambiguous")
	}
}

func TestRejectsBadPrograms(t *testing.T) {
	l := mod2sub.Lang()
	p := iglr.New(l.Table)
	for _, src := range []string{
		`MODULE M; BEGIN END M`,       // missing '.'
		`MODULE M BEGIN END M.`,       // missing ';'
		`MODULE M; BEGIN x := END M.`, // missing expression
		`MODULE M; VAR : INTEGER; BEGIN END M.`,
		`BEGIN END.`,
	} {
		d := l.NewDocument(src)
		if _, err := p.Parse(d.Stream()); err == nil {
			t.Fatalf("accepted invalid program: %s", src)
		}
	}
}

func TestDeterministicIncrementalSession(t *testing.T) {
	// Modula-2 works under the deterministic state-matching parser too.
	l := mod2sub.Lang()
	det, err := detparse.New(l.Table)
	if err != nil {
		t.Fatal(err)
	}
	d := l.NewDocument(sample)
	root, err := det.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)

	off := strings.Index(sample, "Limit = 10")
	d.Replace(off+len("Limit = "), 2, "99")
	root2, err := det.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root2)
	if det.Stats.SubtreeShifts == 0 {
		t.Fatalf("expected reuse: %+v", det.Stats)
	}
	if !strings.Contains(root2.Yield(), "Limit=99") {
		t.Fatal("edit missing")
	}
}

func TestLargeModuleIncremental(t *testing.T) {
	l := mod2sub.Lang()
	var sb strings.Builder
	sb.WriteString("MODULE Big;\n  VAR x : INTEGER;\n")
	for i := 0; i < 150; i++ {
		fmt.Fprintf(&sb, "  PROCEDURE P%d(a : INTEGER);\n  BEGIN\n    x := a + %d;\n    RETURN x\n  END P%d;\n", i, i, i)
	}
	sb.WriteString("BEGIN\n  x := 0\nEND Big.\n")
	src := sb.String()

	p := iglr.New(l.Table)
	d := l.NewDocument(src)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)

	off := strings.Index(src, "a + 75")
	d.Replace(off+4, 2, "750")
	root2, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root2)
	if p.Stats.TerminalShifts > 30 {
		t.Fatalf("too much relexing: %+v", p.Stats)
	}
	if !strings.Contains(root2.Yield(), "a+750") {
		t.Fatal("edit missing")
	}
}

func TestNestedCommentsStyleLexing(t *testing.T) {
	l := mod2sub.Lang()
	p := iglr.New(l.Table)
	d := l.NewDocument("MODULE M; (* c1 (* not nested in subset *) BEGIN END M.")
	// The comment swallows up to the first *): the rest must still parse
	// or fail cleanly — either way no panic.
	_, _ = p.Parse(d.Stream())
}
