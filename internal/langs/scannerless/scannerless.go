// Package scannerless demonstrates scannerless generalized-LR parsing
// (Visser, the paper's reference [24]): lexical and context-free analysis
// folded into a single grammar over character-level terminals. The paper
// notes that "this approach can be made incremental using the techniques we
// describe" — and indeed the IGLR parser handles it unchanged: every
// character is a token, identifiers and numbers are associative character
// sequences, and the classic keyword/identifier prefix problem (`if` vs an
// identifier starting with "if") is represented as GLR non-determinism that
// context resolves.
//
// The language is a small statement language:
//
//	Stmt : 'if' '(' Expr ')' Stmt  |  Ident '=' Expr ';'  |  '{' Stmt* '}'
//	Expr : Expr '+' Prim | Prim ;  Prim : Ident | Number
//
// with identifiers and numbers spelled out character by character. No
// whitespace is permitted (layout productions are the usual scannerless
// extension; omitted to keep the demonstration focused).
package scannerless

import (
	"fmt"
	"strings"

	"iglr/internal/langs"
	"iglr/internal/lexer"
	"iglr/internal/lr"
)

const letters = "abcdefghijklmnopqrstuvwxyz"
const digits = "0123456789"

// GrammarSrc builds the character-level grammar text.
func GrammarSrc() string {
	var b strings.Builder
	b.WriteString("%start Prog\n")
	b.WriteString("Prog : Stmt+ ;\n")
	// The keyword 'if' is spelled with the same character terminals as
	// identifiers — the prefix ambiguity is real and GLR carries it.
	b.WriteString("Stmt : 'i' 'f' '(' Expr ')' Stmt | Ident '=' Expr ';' | '{' Stmt+ '}' ;\n")
	b.WriteString("Expr : Expr '+' Prim | Prim ;\n")
	b.WriteString("Prim : Ident | Number ;\n")
	b.WriteString("Ident : Letter+ ;\n")
	b.WriteString("Number : Digit+ ;\n")
	alts := make([]string, 0, len(letters))
	for _, c := range letters {
		alts = append(alts, fmt.Sprintf("'%c'", c))
	}
	fmt.Fprintf(&b, "Letter : %s ;\n", strings.Join(alts, " | "))
	alts = alts[:0]
	for _, c := range digits {
		alts = append(alts, fmt.Sprintf("'%c'", c))
	}
	fmt.Fprintf(&b, "Digit : %s ;\n", strings.Join(alts, " | "))
	return b.String()
}

func lexRules() []lexer.Rule {
	var rules []lexer.Rule
	for _, c := range letters + digits + "(){}=+;" {
		pat := string(c)
		switch c {
		case '(', ')', '{', '}', '+':
			pat = "\\" + string(c)
		}
		rules = append(rules, lexer.Rule{Name: fmt.Sprintf("C%c", c), Pattern: pat})
	}
	return rules
}

func tokenSyms() map[string]string {
	m := map[string]string{}
	for _, c := range letters + digits + "(){}=+;" {
		m[fmt.Sprintf("C%c", c)] = fmt.Sprintf("'%c'", c)
	}
	return m
}

// NewBuilder returns a fresh, un-built copy of the language definition.
func NewBuilder() *langs.Builder {
	return &langs.Builder{
		Name:      "scannerless",
		GramSrc:   GrammarSrc(),
		LexRules:  lexRules(),
		TokenSyms: tokenSyms(),
		Options:   lr.Options{Method: lr.LALR},
	}
}

var def = NewBuilder()

// Lang returns the scannerless language.
func Lang() *langs.Language { return def.Lang() }
