package scannerless_test

import (
	"strings"
	"testing"

	"iglr/internal/dag"
	"iglr/internal/iglr"
	"iglr/internal/langs/scannerless"
)

func TestScannerlessBasics(t *testing.T) {
	l := scannerless.Lang()
	if l.Table.Deterministic() {
		t.Fatal("the keyword/identifier prefix problem should leave conflicts")
	}
	p := iglr.New(l.Table)
	for _, src := range []string{
		"x=1;",
		"abc=12+34;",
		"if(x)y=2;",
		"{x=1;y=2;}",
		"if(1)if(2)x=3;",
		"ifx=1;",    // identifier starting with the keyword letters
		"iffy=ifa;", // both sides
	} {
		d := l.NewDocument(src)
		root, err := p.Parse(d.Stream())
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if root.Yield() != src {
			t.Fatalf("%q: yield %q", src, root.Yield())
		}
		if root.Ambiguous() {
			t.Fatalf("%q: should be unambiguous after context resolution", src)
		}
	}
	for _, bad := range []string{"=1;", "if(x)", "x=;", "1x=2;", "x = 1;"} {
		d := l.NewDocument(bad)
		if _, err := p.Parse(d.Stream()); err == nil {
			t.Fatalf("%q: should be rejected", bad)
		}
	}
}

func TestKeywordPrefixNeedsForking(t *testing.T) {
	l := scannerless.Lang()
	p := iglr.New(l.Table)
	// "if(a)x=1;" — while reading "if(", the parser cannot know whether it
	// is a keyword or an identifier being assigned; GLR forks.
	d := l.NewDocument("if(a)x=1;")
	if _, err := p.Parse(d.Stream()); err != nil {
		t.Fatal(err)
	}
	if p.Stats.MaxActiveParsers < 2 {
		t.Fatalf("expected forking on the keyword prefix, stats %+v", p.Stats)
	}
}

func TestScannerlessIncremental(t *testing.T) {
	l := scannerless.Lang()
	p := iglr.New(l.Table)
	// A long program; identifiers/numbers are character sequences.
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString("abcdefgh=12345678;")
	}
	src := sb.String()
	d := l.NewDocument(src)
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root)

	// Edit one digit in the middle.
	off := len(src) / 2
	for src[off] < '0' || src[off] > '9' {
		off++
	}
	d.Replace(off, 1, "9")
	root2, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	d.Commit(root2)
	if p.Stats.TerminalShifts > 25 {
		t.Fatalf("scannerless incremental reparse touched %d characters", p.Stats.TerminalShifts)
	}
	if p.Stats.SubtreeShifts == 0 {
		t.Fatal("expected subtree reuse")
	}
	// Verify against a fresh parse.
	dRef := l.NewDocument(d.Text())
	want, err := iglr.New(l.Table).Parse(dRef.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if root2.Yield() != want.Yield() {
		t.Fatal("incremental result diverges from batch")
	}
}

func TestCharacterSequencesAreAssociative(t *testing.T) {
	l := scannerless.Lang()
	p := iglr.New(l.Table)
	d := l.NewDocument("abcdefghij=1;")
	root, err := p.Parse(d.Stream())
	if err != nil {
		t.Fatal(err)
	}
	// Ident uses Letter+: the dag can rebalance the character chain.
	bal := dag.Rebalance(d.Arena(), l.Grammar, root)
	found := false
	bal.Walk(func(n *dag.Node) {
		if n.Kind == dag.KindSeq && dag.SeqLen(n) == 10 {
			found = true
		}
	})
	if !found {
		t.Fatal("expected a balanced 10-letter identifier sequence")
	}
}
