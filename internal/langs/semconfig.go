package langs

import (
	"iglr/internal/dag"
	"iglr/internal/grammar"
	"iglr/internal/semantics"
)

// CStyleSemantics builds the semantic-disambiguation configuration shared
// by the C and C++ subset languages: blocks open scopes, `typedef T name;`
// binds a type name, other declarations bind the ordinary name found in
// their declarator, and the declaration reading of an ambiguous Item is the
// child whose first constituent is a Decl.
func CStyleSemantics(l *Language) semantics.Config {
	var (
		declSym    = l.Sym("Decl")
		itemSym    = l.Sym("Item")
		blockSym   = l.Sym("Block")
		typedefKw  = l.Sym("TYPEDEF")
		declIdSym  = l.Sym("DeclId")
		production = dag.KindProduction
	)
	isTypedef := func(n *dag.Node) bool {
		return n.Kind == production && n.Sym == declSym &&
			len(n.Kids) > 0 && n.Kids[0].Sym == typedefKw
	}
	return semantics.Config{
		IsScope: func(n *dag.Node) bool {
			return n.Kind == production && n.Sym == blockSym
		},
		TypedefName: func(n *dag.Node) (string, bool) {
			if !isTypedef(n) || len(n.Kids) != 3 {
				return "", false
			}
			return n.Kids[2].Text, true
		},
		DeclaredName: func(n *dag.Node) (string, bool) {
			if n.Kind != production || n.Sym != declSym || isTypedef(n) {
				return "", false
			}
			if id := findFirst(n, declIdSym); id != nil && id.LeftmostTerm != nil {
				return id.LeftmostTerm.Text, true
			}
			return "", false
		},
		IsDeclInterpretation: func(n *dag.Node) bool {
			return n.Kind == production && n.Sym == itemSym &&
				len(n.Kids) > 0 && n.Kids[0].Sym == declSym
		},
	}
}

// findFirst locates the first node with the given symbol in document order.
func findFirst(n *dag.Node, sym grammar.Sym) *dag.Node {
	if n.Sym == sym && n.Kind != dag.KindTerminal {
		return n
	}
	for _, k := range n.Kids {
		if f := findFirst(k, sym); f != nil {
			return f
		}
	}
	return nil
}
