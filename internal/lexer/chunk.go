package lexer

import (
	"runtime"
	"strings"
	"sync"
)

// Batch-lexing fast path. Profiling the end-to-end cold path showed the
// DFA itself is ~10% of Scan's time; the rest is token-slice growth and the
// GC traffic it induces. ScanInto removes that by lexing into a pre-sized,
// reusable buffer, and ScanParallel goes wide: it speculatively lexes N
// byte-ranges on separate goroutines — each starting just after a newline
// found by a cheap prescan — and stitches the streams where adjacent chunks
// agree, relexing sequentially across the (rare) disagreeing seam.
//
// Stitching is exact, not heuristic: scanOne(text, pos) depends only on
// (text, pos) — every token starts in the DFA start state — so lexing is
// Markov at token boundaries. Chunks lex the FULL text from their
// speculative start (so Lookahead/Open see past the chunk end), and if a
// speculative token starts exactly at the verified frontier, the entire
// speculative suffix is the true stream. Newline snapping only affects the
// agreement hit rate (a boundary inside a string or block comment just
// means a short relexed seam), never correctness; and because '\n' (0x0A)
// is never a continuation byte, boundaries cannot split a UTF-8 rune.

// estBytesPerToken sizes token buffers from text length: program text with
// whitespace skip tokens averages a handful of bytes per token.
const estBytesPerToken = 4

// minChunkBytes is the smallest byte-range worth a goroutine; below
// workers×this, ScanParallel degrades to the sequential path.
const minChunkBytes = 32 << 10

// ScanInto lexes the whole text into buf's storage (length is reset, the
// array reused), growing it at most once for typical inputs via a
// size estimate. It returns the token stream, which aliases buf's array
// when capacity sufficed. ScanInto(text, nil) pre-sizes a fresh buffer.
func (s *Spec) ScanInto(text string, buf []Token) []Token {
	out := buf[:0]
	if cap(out) == 0 && len(text) > 0 {
		out = make([]Token, 0, len(text)/estBytesPerToken+8)
	}
	pos := 0
	for pos < len(text) {
		length, rule, examined, open := s.scanOne(text, pos)
		tok := Token{
			Type:      rule,
			Offset:    pos,
			Text:      text[pos : pos+length],
			Lookahead: examined - length,
			Open:      open,
		}
		if rule >= 0 {
			tok.Skip = s.rules[rule].Skip
		}
		out = append(out, tok)
		pos += length
	}
	return out
}

// ScanParallel lexes text on up to workers goroutines and returns a stream
// identical to Scan(text). workers ≤ 1, small inputs, or texts without
// newlines fall back to the sequential path.
func (s *Spec) ScanParallel(text string, workers int) []Token {
	return s.ScanParallelInto(text, workers, nil)
}

// ScanParallelInto is ScanParallel lexing into buf's storage (as ScanInto).
// The worker count is clamped to GOMAXPROCS — chunking pays a stitch copy
// that only parallel execution can buy back, so a CPU-bound scan is never
// oversubscribed — and to one chunk per minChunkBytes of input.
func (s *Spec) ScanParallelInto(text string, workers int, buf []Token) []Token {
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers > len(text)/minChunkBytes {
		workers = len(text) / minChunkBytes
	}
	if workers <= 1 {
		return s.ScanInto(text, buf)
	}
	return s.scanChunked(text, workers, buf)
}

// chunkScratch pools per-chunk speculative token buffers across parallel
// scans of the same Spec.
var chunkScratch = sync.Pool{
	New: func() any { b := make([]Token, 0, 4096); return &b },
}

// chunkStarts picks up to n speculative start offsets: offset 0, then
// roughly even cut points snapped to just after the next '\n'. Starts are
// strictly increasing; texts with too few newlines yield fewer chunks.
func chunkStarts(text string, n int) []int {
	starts := make([]int, 1, n)
	for i := 1; i < n; i++ {
		p := i * (len(text) / n)
		if last := starts[len(starts)-1]; p <= last {
			p = last + 1
		}
		if p >= len(text) {
			break
		}
		nl := strings.IndexByte(text[p:], '\n')
		if nl < 0 {
			break
		}
		p += nl + 1
		if p < len(text) && p > starts[len(starts)-1] {
			starts = append(starts, p)
		}
	}
	return starts
}

// scanChunked is the chunked implementation; split out (with an explicit
// chunk count) so tests can force many tiny chunks on small inputs.
func (s *Spec) scanChunked(text string, chunks int, buf []Token) []Token {
	starts := chunkStarts(text, chunks)
	if len(starts) == 1 {
		return s.ScanInto(text, buf)
	}

	// Speculatively lex each chunk from its start over the FULL text,
	// emitting tokens while they begin before the next chunk's start (the
	// last token of a chunk may legitimately run past it). Chunk 0 starts
	// at the true stream origin, so its tokens need no verification.
	spec := make([][]Token, len(starts))
	var wg sync.WaitGroup
	for ci := 1; ci < len(starts); ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			spec[ci] = s.lexChunk(text, starts[ci], chunkEnd(starts, ci, len(text)))
		}(ci)
	}
	spec[0] = s.lexChunk(text, 0, chunkEnd(starts, 0, len(text)))
	wg.Wait()

	// Stitch left to right. e is the verified frontier: every byte < e is
	// covered by adopted tokens. A speculative token starting exactly at e
	// is the true next token (lexing is Markov at token boundaries), and
	// then so is the chunk's whole suffix. Otherwise relex sequentially
	// from e until a fresh boundary lands on a speculative start.
	out := buf[:0]
	if cap(out) == 0 {
		out = make([]Token, 0, len(text)/estBytesPerToken+8)
	}
	e := 0
	for ci, toks := range spec {
		// Skip speculative tokens already covered by the frontier.
		j := 0
		for j < len(toks) && toks[j].Offset < e {
			j++
		}
		end := chunkEnd(starts, ci, len(text))
		for {
			if j < len(toks) && toks[j].Offset == e {
				// Agreement: adopt the rest of the chunk wholesale.
				out = append(out, toks[j:]...)
				e = out[len(out)-1].End()
				break
			}
			// Disagreeing seam (boundary fell inside a string/comment):
			// relex from the frontier until boundaries reconverge or the
			// chunk is exhausted (the next chunk then takes over).
			if e >= end || e >= len(text) {
				break
			}
			out = append(out, s.freshToken(text, e))
			e = out[len(out)-1].End()
			for j < len(toks) && toks[j].Offset < e {
				j++
			}
		}
		// Adopted tokens were copied into out (they alias only the text
		// string), so every chunk buffer can go back to the pool.
		toks = toks[:0]
		chunkScratch.Put(&toks)
	}
	// Tail: the last chunk can be exhausted with text remaining (its final
	// speculative token disagreed); finish sequentially.
	for e < len(text) {
		out = append(out, s.freshToken(text, e))
		e = out[len(out)-1].End()
	}
	return out
}

func chunkEnd(starts []int, ci, textLen int) int {
	if ci+1 < len(starts) {
		return starts[ci+1]
	}
	return textLen
}

// lexChunk speculatively lexes text from `from`, emitting every token that
// starts before `to`. Tokens see the full text, so the last one may end
// past `to` and lookahead windows are exact. The loop mirrors ScanInto
// (inline token construction — freshToken's call overhead is measurable at
// this volume), and the pooled scratch is re-sized up front so it never
// grows mid-chunk.
func (s *Spec) lexChunk(text string, from, to int) []Token {
	out := *chunkScratch.Get().(*[]Token)
	if need := (to-from)/estBytesPerToken + 8; cap(out) < need {
		out = make([]Token, 0, need)
	} else {
		out = out[:0]
	}
	pos := from
	for pos < to {
		length, rule, examined, open := s.scanOne(text, pos)
		tok := Token{
			Type:      rule,
			Offset:    pos,
			Text:      text[pos : pos+length],
			Lookahead: examined - length,
			Open:      open,
		}
		if rule >= 0 {
			tok.Skip = s.rules[rule].Skip
		}
		out = append(out, tok)
		pos += length
	}
	return out
}
