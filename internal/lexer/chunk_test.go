package lexer

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// tokensEqual compares two streams field-for-field.
func tokensEqual(t *testing.T, ctx string, got, want []Token) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d tokens, want %d", ctx, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: token %d = %+v, want %+v", ctx, i, got[i], want[i])
		}
	}
}

// adversarialTexts are inputs designed so naive chunk boundaries land
// inside multi-line constructs: block comments spanning newlines, strings,
// runs with no newlines at all, multi-byte UTF-8, and lone error bytes.
func adversarialTexts() map[string]string {
	long := strings.Repeat("x ", 500)
	return map[string]string{
		"empty":        "",
		"no_newline":   "int a = 1; int b = 2; " + long,
		"only_newline": strings.Repeat("\n", 200),
		"block_comment_spans_lines": strings.Repeat(
			"int a = 1;\n/* comment\nline two\nline three */\nint b = 2;\n", 40),
		"comment_open_at_eof": "int a = 1;\n/* never closed\nstill open\n",
		"strings_with_escapes": strings.Repeat(
			"s = \"hello \\\"world\\\"\"; t = \"line\";\n", 60),
		"multibyte_utf8": strings.Repeat(
			"α = β + γ; /* ∀x∈S — ünïcödé */\nδ = 42;\n", 50),
		"error_bytes": strings.Repeat("a = 1; § b = 2; @\n", 50),
		"line_comments": strings.Repeat(
			"x = 1; // trailing comment with if else int keywords\n", 60),
		"pathological_stars": strings.Repeat(
			"/* ** * ** */\nif (x) { y = \"*/\"; }\n", 40),
	}
}

// TestChunkedMatchesSequential forces many tiny chunks through the
// unexported entry point so seam stitching and the relex fallback are
// exercised on every adversarial shape, at every chunk count.
func TestChunkedMatchesSequential(t *testing.T) {
	s := MustSpec(cRules())
	for name, text := range adversarialTexts() {
		want := s.Scan(text)
		for _, chunks := range []int{2, 3, 4, 7, 16, 61} {
			got := s.scanChunked(text, chunks, nil)
			tokensEqual(t, fmt.Sprintf("%s/chunks=%d", name, chunks), got, want)
		}
	}
}

// TestChunkedBoundaryPlacements slides a two-chunk boundary across every
// position of a small input by lexing with chunkStarts replaced by direct
// construction — approximated here by varying chunk counts over a text
// whose newlines sit at awkward places.
func TestChunkedBoundaryPlacements(t *testing.T) {
	s := MustSpec(cRules())
	base := "a\n/*\n*/\nb\n\"s\n\"\nc\n" // newline inside comment and (error) string
	for n := 1; n <= 8; n++ {
		text := strings.Repeat(base, n)
		want := s.Scan(text)
		for chunks := 2; chunks <= len(text); chunks *= 2 {
			got := s.scanChunked(text, chunks, nil)
			tokensEqual(t, fmt.Sprintf("n=%d chunks=%d", n, chunks), got, want)
		}
	}
}

// TestScanIntoReuse: ScanInto reuses the provided buffer and matches Scan.
func TestScanIntoReuse(t *testing.T) {
	s := MustSpec(cRules())
	text := strings.Repeat("if (x == 1) { y = 2; } /* c */\n", 100)
	want := s.Scan(text)

	buf := make([]Token, 0, len(want))
	got := s.ScanInto(text, buf)
	tokensEqual(t, "ScanInto", got, want)
	if &got[0] != &buf[:1][0] {
		t.Fatal("ScanInto did not reuse the provided buffer")
	}
	// Reuse with stale contents from a different text.
	got2 := s.ScanInto("int z = 3;", got)
	tokensEqual(t, "ScanInto reuse", got2, s.Scan("int z = 3;"))

	allocs := testing.AllocsPerRun(20, func() {
		got = s.ScanInto(text, got)
	})
	if allocs != 0 {
		t.Fatalf("ScanInto with sufficient capacity allocates: %v allocs/op", allocs)
	}
}

// TestScanParallelPublic drives the public entry on an input large enough
// to clear minChunkBytes, with worker counts beyond the chunk supply.
func TestScanParallelPublic(t *testing.T) {
	s := MustSpec(cRules())
	var sb strings.Builder
	r := rand.New(rand.NewSource(7))
	lines := []string{
		"if (a == 1) { b = 2; }\n",
		"/* multi\nline\ncomment */\n",
		"s = \"str with // not a comment\";\n",
		"π = 3; // ünïcödé tail\n",
		"x@y\n", // error byte
	}
	for sb.Len() < 256<<10 {
		sb.WriteString(lines[r.Intn(len(lines))])
	}
	text := sb.String()
	want := s.Scan(text)
	for _, w := range []int{0, 1, 2, 4, 8, 64} {
		tokensEqual(t, fmt.Sprintf("workers=%d", w), s.ScanParallel(text, w), want)
	}
	// Into-variant with a recycled buffer.
	buf := make([]Token, 0, len(want))
	tokensEqual(t, "ScanParallelInto", s.ScanParallelInto(text, 4, buf), want)
}

// FuzzChunkedLex asserts chunked ≡ sequential on arbitrary inputs and
// chunk counts. Seeds bias toward chunk boundaries inside multi-byte
// UTF-8, comments, and strings.
func FuzzChunkedLex(f *testing.F) {
	f.Add("int a = 1;\n/* c */\nint b;\n", 3)
	f.Add("αβγδεζ ηθικλμ\nνξοπρς\n", 2)             // multi-byte everywhere
	f.Add("a\n\"string with \\\" escape\nb\n", 4)    // unterminated string
	f.Add("/* opens\nnever closes", 2)               // open at EOF
	f.Add("é\né\né\né\n", 5)                         // 2-byte runes around tiny chunks
	f.Add("x = 1; € y = 2; \U0001F600\nz = 3;\n", 3) // 3- and 4-byte runes
	f.Add(strings.Repeat("\xff\n", 8), 4)            // invalid UTF-8 error bytes
	s := MustSpec(cRules())
	f.Fuzz(func(t *testing.T, text string, chunks int) {
		if chunks < 2 || chunks > 64 {
			chunks = 2 + (chunks&0x7fffffff)%63
		}
		want := s.Scan(text)
		got := s.scanChunked(text, chunks, nil)
		if len(got) != len(want) {
			t.Fatalf("chunked %d tokens, sequential %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("token %d: chunked %+v, sequential %+v", i, got[i], want[i])
			}
		}
	})
}
