package lexer

import (
	"encoding/binary"
	"fmt"

	"iglr/internal/regex"
)

// Binary serialization of compiled lexical specifications for compiled
// language artifacts: the rule list (names, patterns, skip flags — needed
// for RuleIndex and skip classification) plus the minimized DFA in its
// equivalence-class-compressed form. Decoding reconstructs a ready-to-scan
// Spec without compiling a single regular expression.

const specMagic = "IGLX"
const specVersion = 1

// AppendBinary serializes s to buf.
func (s *Spec) AppendBinary(buf []byte) []byte {
	buf = append(buf, specMagic...)
	buf = binary.AppendUvarint(buf, specVersion)
	buf = binary.AppendUvarint(buf, uint64(len(s.rules)))
	for _, r := range s.rules {
		buf = appendLexString(buf, r.Name)
		buf = appendLexString(buf, r.Pattern)
		if r.Skip {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return s.dfa.AppendBinary(buf)
}

// DecodeSpec reconstructs a Spec serialized by AppendBinary, returning the
// remaining bytes. The embedded DFA's accept values are validated against
// the rule count so a corrupt artifact cannot index out of range at scan
// time.
func DecodeSpec(data []byte) (*Spec, []byte, error) {
	if len(data) < 4 || string(data[:4]) != specMagic {
		return nil, nil, fmt.Errorf("lexer: bad spec magic")
	}
	data = data[4:]
	v, n := binary.Uvarint(data)
	if n <= 0 || v != specVersion {
		return nil, nil, fmt.Errorf("lexer: unsupported spec version")
	}
	data = data[n:]
	nRules, n := binary.Uvarint(data)
	if n <= 0 || nRules == 0 || nRules > uint64(len(data)) {
		return nil, nil, fmt.Errorf("lexer: invalid rule count")
	}
	data = data[n:]
	rules := make([]Rule, nRules)
	for i := range rules {
		var err error
		if rules[i].Name, data, err = readLexString(data); err != nil {
			return nil, nil, err
		}
		if rules[i].Pattern, data, err = readLexString(data); err != nil {
			return nil, nil, err
		}
		if len(data) < 1 {
			return nil, nil, fmt.Errorf("lexer: truncated spec")
		}
		rules[i].Skip = data[0] != 0
		data = data[1:]
	}
	dfa, rest, err := regex.DecodeDFA(data)
	if err != nil {
		return nil, nil, err
	}
	for st := 0; st < dfa.NumStates(); st++ {
		if a := dfa.Accept(st); a >= int(nRules) {
			return nil, nil, fmt.Errorf("lexer: accept rule %d out of range", a)
		}
	}
	if dfa.Accept(dfa.Start()) >= 0 {
		return nil, nil, fmt.Errorf("lexer: a rule matches the empty string")
	}
	return &Spec{rules: rules, dfa: dfa}, rest, nil
}

func appendLexString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func readLexString(data []byte) (string, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 || v > uint64(len(data)-n) {
		return "", nil, fmt.Errorf("lexer: truncated string")
	}
	return string(data[n : n+int(v)]), data[n+int(v):], nil
}
