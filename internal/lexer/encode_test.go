package lexer

import (
	"bytes"
	"reflect"
	"testing"
)

// TestSpecCodecRoundTrip: decode(encode(spec)) must lex identically and
// re-encode byte-identically.
func TestSpecCodecRoundTrip(t *testing.T) {
	s := MustSpec(cRules())
	enc := s.AppendBinary(nil)
	s2, rest, err := DecodeSpec(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("decoder left %d bytes", len(rest))
	}
	if !bytes.Equal(s2.AppendBinary(nil), enc) {
		t.Fatal("re-encode is not byte-identical")
	}
	if s2.NumRules() != s.NumRules() {
		t.Fatalf("rule count %d != %d", s2.NumRules(), s.NumRules())
	}
	for i := 0; i < s.NumRules(); i++ {
		if s2.Rule(i) != s.Rule(i) {
			t.Fatalf("rule %d differs: %+v vs %+v", i, s2.Rule(i), s.Rule(i))
		}
	}
	src := `int x = 42; /* note */ if (x == 7) { y = "a\"b"; } @`
	if got, want := s2.Scan(src), s.Scan(src); !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded spec scans differently:\n%v\n%v", got, want)
	}
}

// TestSpecCodecRejectsCorruption: truncation and magic damage must error.
func TestSpecCodecRejectsCorruption(t *testing.T) {
	enc := MustSpec(cRules()).AppendBinary(nil)
	for cut := 0; cut < len(enc); cut += 1 + len(enc)/17 {
		if _, _, err := DecodeSpec(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[1] ^= 0xFF
	if _, _, err := DecodeSpec(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// TestRelexAppendAliasesOldStream pins the pure-append contract: when every
// old recognition window is closed before the edit, Relex must keep the old
// stream without copying (first == len(old), same backing array) and scan
// only the appended text.
func TestRelexAppendAliasesOldStream(t *testing.T) {
	s := MustSpec(cRules())
	oldText := "int x = 1;"
	scanned := s.Scan(oldText)
	// Give the stream spare capacity, as a long-lived editor buffer would
	// have; the early-out appends fresh tokens into it instead of copying.
	old := make([]Token, len(scanned), len(scanned)+16)
	copy(old, scanned)
	newText := oldText + " int y = 2;"
	toks, first, relexed := s.Relex(old, newText, Edit{Offset: len(oldText), Inserted: " int y = 2;"})

	if first != len(old) {
		t.Fatalf("first = %d, want %d (whole old stream kept)", first, len(old))
	}
	if &toks[0] != &old[0] {
		t.Fatal("pure append must alias the old backing array, not copy it")
	}
	if relexed == 0 || relexed != len(toks)-len(old) {
		t.Fatalf("relexed = %d, new tokens = %d", relexed, len(toks)-len(old))
	}
	if got, want := toks, s.Scan(newText); !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental result differs from full scan:\n%v\n%v", got, want)
	}
}

// TestRelexAppendMergesOpenToken: appending where the last token's window is
// open at EOF (a number that could grow) must NOT take the aliasing early
// out — the open token has to be rescanned and merged.
func TestRelexAppendMergesOpenToken(t *testing.T) {
	s := MustSpec(cRules())
	oldText := "x = 1"
	old := s.Scan(oldText)
	if !old[len(old)-1].Open {
		t.Fatalf("precondition: last token %+v should be open at EOF", old[len(old)-1])
	}
	newText := oldText + "2;"
	toks, first, _ := s.Relex(old, newText, Edit{Offset: len(oldText), Inserted: "2;"})
	if first >= len(old) {
		t.Fatalf("first = %d: open token at EOF must be invalidated by an append", first)
	}
	if got, want := toks, s.Scan(newText); !reflect.DeepEqual(got, want) {
		t.Fatalf("incremental result differs from full scan:\n%v\n%v", got, want)
	}
	joined := ""
	for _, tok := range toks {
		if tok.Type >= 0 && s.Rule(tok.Type).Name == "NUM" {
			joined = tok.Text
		}
	}
	if joined != "12" {
		t.Fatalf("appended digit did not merge: NUM lexeme %q, want \"12\"", joined)
	}
}
