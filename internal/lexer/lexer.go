// Package lexer provides batch and incremental lexing driven by
// regex-compiled DFA token specifications. Each token records how far past
// its own end the recognizer looked (its lexical lookahead); the incremental
// lexer uses this to invalidate exactly the tokens whose recognition
// examined an edited character, as required by the parse-dag invalidation
// step of Wagner & Graham's incremental parser (Appendix A,
// process_modifications_to_parse_dag).
package lexer

import (
	"fmt"
	"unicode/utf8"

	"iglr/internal/regex"
)

// ErrorType is the token type assigned to characters no rule matches.
const ErrorType = -1

// Rule defines one token kind. Earlier rules win ties (lex convention);
// longest match wins overall. Skip rules (whitespace, comments) produce no
// tokens but still participate in lookahead accounting.
type Rule struct {
	Name    string
	Pattern string
	Skip    bool
}

// Spec is a compiled lexical specification.
type Spec struct {
	rules []Rule
	dfa   *regex.DFA
}

// NewSpec compiles the rule set.
func NewSpec(rules []Rule) (*Spec, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("lexer: empty rule set")
	}
	pats := make([]string, len(rules))
	for i, r := range rules {
		pats[i] = r.Pattern
	}
	dfa, err := regex.CompileSet(pats)
	if err != nil {
		return nil, err
	}
	if dfa.Accept(dfa.Start()) >= 0 {
		return nil, fmt.Errorf("lexer: a rule matches the empty string")
	}
	return &Spec{rules: append([]Rule(nil), rules...), dfa: dfa}, nil
}

// MustSpec is NewSpec but panics on error.
func MustSpec(rules []Rule) *Spec {
	s, err := NewSpec(rules)
	if err != nil {
		panic(err)
	}
	return s
}

// NumRules returns the number of rules.
func (s *Spec) NumRules() int { return len(s.rules) }

// Rule returns rule i.
func (s *Spec) Rule(i int) Rule { return s.rules[i] }

// RuleIndex returns the index of the rule with the given name, or -1.
func (s *Spec) RuleIndex(name string) int {
	for i, r := range s.rules {
		if r.Name == name {
			return i
		}
	}
	return -1
}

// Token is one lexeme.
type Token struct {
	// Type is the rule index, or ErrorType for unmatched characters.
	Type int
	// Offset is the byte offset of the token in the current text.
	Offset int
	// Text is the lexeme.
	Text string
	// Lookahead is the number of bytes beyond the end of Text that the
	// recognizer examined while deciding this token (≥0).
	Lookahead int
	// Skip marks tokens from skip rules; they are retained in the stream
	// for exact incremental accounting but hidden from the parser.
	Skip bool
}

// End returns the byte offset one past the token text.
func (t Token) End() int { return t.Offset + len(t.Text) }

// scanOne recognizes one token at pos. It returns the matched byte length
// (≥1 even on error), the rule (or ErrorType) and the total number of bytes
// examined from pos.
func (s *Spec) scanOne(text string, pos int) (length, rule, examined int) {
	state := s.dfa.Start()
	best, bestRule := -1, ErrorType
	i := pos
	for i < len(text) {
		r, sz := utf8.DecodeRuneInString(text[i:])
		state = s.dfa.Step(state, r)
		if state == regex.Dead {
			examined = i + sz - pos // the killing rune was examined
			if best < 0 {
				// No rule matched: emit a one-rune error token, but charge
				// it everything the DFA examined (e.g. an unterminated
				// comment opener reads to end of input before failing).
				_, fsz := utf8.DecodeRuneInString(text[pos:])
				return fsz, ErrorType, examined
			}
			return best, bestRule, examined
		}
		i += sz
		if a := s.dfa.Accept(state); a >= 0 {
			best, bestRule = i-pos, a
		}
	}
	examined = len(text) - pos
	if best < 0 {
		_, fsz := utf8.DecodeRuneInString(text[pos:])
		return fsz, ErrorType, examined
	}
	return best, bestRule, examined
}

// Scan lexes the whole text, returning every token including skip tokens.
func (s *Spec) Scan(text string) []Token {
	var out []Token
	pos := 0
	for pos < len(text) {
		length, rule, examined := s.scanOne(text, pos)
		tok := Token{
			Type:      rule,
			Offset:    pos,
			Text:      text[pos : pos+length],
			Lookahead: examined - length,
		}
		if rule >= 0 {
			tok.Skip = s.rules[rule].Skip
		}
		out = append(out, tok)
		pos += length
	}
	return out
}

// Significant filters out skip tokens.
func Significant(toks []Token) []Token {
	out := make([]Token, 0, len(toks))
	for _, t := range toks {
		if !t.Skip && t.Type != ErrorType {
			out = append(out, t)
		}
	}
	return out
}

// Edit describes a single text modification: Removed bytes at Offset were
// replaced by Inserted.
type Edit struct {
	Offset   int
	Removed  int
	Inserted string
}

// Delta returns the signed change in text length.
func (e Edit) Delta() int { return len(e.Inserted) - e.Removed }

// Relex incrementally updates the token stream for a single edit. old is
// the previous token stream for oldText; newText must equal oldText with e
// applied. It returns the new stream, the index of the first token that
// differs from the old stream, and the number of freshly scanned tokens
// (the incremental work measure): tokens[:first] are the old tokens kept,
// tokens[first:first+relexed] are fresh, and the remainder is the old
// stream's tail with adjusted offsets.
func (s *Spec) Relex(old []Token, newText string, e Edit) (tokens []Token, first, relexed int) {
	lo := e.Offset
	hiOld := e.Offset + e.Removed

	// First affected token: the earliest whose examined window reaches the
	// edit. A token whose recognition stopped at end-of-input is affected
	// by an append there too — had more text existed, the recognizer would
	// have examined it — so a window ending exactly at the old text length
	// is treated as open-ended.
	oldLen := len(newText) - e.Delta()
	first = len(old)
	for i, t := range old {
		windowEnd := t.End() + t.Lookahead
		if windowEnd > lo || windowEnd == oldLen {
			first = i
			break
		}
	}

	tokens = append(tokens, old[:first]...)
	pos := 0
	if first > 0 {
		pos = old[first-1].End()
	}

	delta := e.Delta()
	// Index of the first old token that starts at or after the end of the
	// removed region and is not itself affected; candidates for resync.
	resyncFrom := first
	for resyncFrom < len(old) && old[resyncFrom].Offset < hiOld {
		resyncFrom++
	}

	for pos < len(newText) {
		// Resync check: a fresh token boundary that coincides with an
		// unaffected old token boundary lets us splice the tail.
		if pos >= lo+len(e.Inserted) {
			oldPos := pos - delta
			for resyncFrom < len(old) && old[resyncFrom].Offset < oldPos {
				resyncFrom++
			}
			if resyncFrom < len(old) && old[resyncFrom].Offset == oldPos && oldPos >= hiOld {
				for _, t := range old[resyncFrom:] {
					t.Offset += delta
					t.Text = newText[t.Offset : t.Offset+len(t.Text)]
					tokens = append(tokens, t)
				}
				return tokens, first, relexed
			}
		}
		length, rule, examined := s.scanOne(newText, pos)
		tok := Token{
			Type:      rule,
			Offset:    pos,
			Text:      newText[pos : pos+length],
			Lookahead: examined - length,
		}
		if rule >= 0 {
			tok.Skip = s.rules[rule].Skip
		}
		tokens = append(tokens, tok)
		relexed++
		pos += length
	}
	return tokens, first, relexed
}
