// Package lexer provides batch and incremental lexing driven by
// regex-compiled DFA token specifications. Each token records how far past
// its own end the recognizer looked (its lexical lookahead); the incremental
// lexer uses this to invalidate exactly the tokens whose recognition
// examined an edited character, as required by the parse-dag invalidation
// step of Wagner & Graham's incremental parser (Appendix A,
// process_modifications_to_parse_dag).
package lexer

import (
	"fmt"
	"unicode/utf8"

	"iglr/internal/regex"
)

// ErrorType is the token type assigned to characters no rule matches.
const ErrorType = -1

// Rule defines one token kind. Earlier rules win ties (lex convention);
// longest match wins overall. Skip rules (whitespace, comments) produce no
// tokens but still participate in lookahead accounting.
type Rule struct {
	Name    string
	Pattern string
	Skip    bool
}

// Spec is a compiled lexical specification.
type Spec struct {
	rules []Rule
	dfa   *regex.DFA
}

// NewSpec compiles the rule set.
func NewSpec(rules []Rule) (*Spec, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("lexer: empty rule set")
	}
	pats := make([]string, len(rules))
	for i, r := range rules {
		pats[i] = r.Pattern
	}
	dfa, err := regex.CompileSet(pats)
	if err != nil {
		return nil, err
	}
	if dfa.Accept(dfa.Start()) >= 0 {
		return nil, fmt.Errorf("lexer: a rule matches the empty string")
	}
	return &Spec{rules: append([]Rule(nil), rules...), dfa: dfa}, nil
}

// MustSpec is NewSpec but panics on error.
func MustSpec(rules []Rule) *Spec {
	s, err := NewSpec(rules)
	if err != nil {
		panic(err)
	}
	return s
}

// NumRules returns the number of rules.
func (s *Spec) NumRules() int { return len(s.rules) }

// NumStates returns the number of states in the combined token DFA.
func (s *Spec) NumStates() int { return s.dfa.NumStates() }

// NumClasses returns the number of byte equivalence classes in the DFA's
// dense transition table.
func (s *Spec) NumClasses() int { return s.dfa.NumClasses() }

// Rule returns rule i.
func (s *Spec) Rule(i int) Rule { return s.rules[i] }

// RuleIndex returns the index of the rule with the given name, or -1.
func (s *Spec) RuleIndex(name string) int {
	for i, r := range s.rules {
		if r.Name == name {
			return i
		}
	}
	return -1
}

// Token is one lexeme.
type Token struct {
	// Type is the rule index, or ErrorType for unmatched characters.
	Type int
	// Offset is the byte offset of the token in the current text.
	Offset int
	// Text is the lexeme.
	Text string
	// Lookahead is the number of bytes beyond the end of Text that the
	// recognizer examined while deciding this token (≥0).
	Lookahead int
	// Skip marks tokens from skip rules; they are retained in the stream
	// for exact incremental accounting but hidden from the parser.
	Skip bool
	// Open marks a token whose recognition stopped at end of input in a
	// DFA state that still has outgoing transitions: had more text
	// existed, the recognizer would have examined it, so the token's
	// lookahead window is open-ended at EOF. Tokens that stopped in a
	// dead or transition-free state are closed — no append can change
	// them — which is what lets Relex skip them entirely.
	Open bool
}

// End returns the byte offset one past the token text.
func (t Token) End() int { return t.Offset + len(t.Text) }

// scanOne recognizes one token at pos. It returns the matched byte length
// (≥1 even on error), the rule (or ErrorType), the total number of bytes
// examined from pos, and whether recognition stopped at end of input in a
// state that could still advance (the token's window is open at EOF).
//
// The loop is the lexing hot path: ASCII bytes — the overwhelming majority
// in program text — step the DFA through its dense equivalence-class table
// without rune decoding; only multi-byte sequences fall back to
// utf8.DecodeRuneInString and the sparse transition search.
func (s *Spec) scanOne(text string, pos int) (length, rule, examined int, open bool) {
	d := s.dfa
	state := d.Start()
	best, bestRule := -1, ErrorType
	i := pos
	for i < len(text) {
		var sz, next int
		if c := text[i]; c < utf8.RuneSelf {
			sz = 1
			next = d.StepByte(state, c)
		} else {
			var r rune
			r, sz = utf8.DecodeRuneInString(text[i:])
			next = d.Step(state, r)
		}
		if next == regex.Dead {
			examined = i + sz - pos // the killing rune was examined
			if d.Closed(state) {
				// A transition-free state cannot advance on any input, so
				// the recognizer needn't look at the next rune at all; not
				// charging it keeps the token's lookahead identical whether
				// it is followed by more text or by end of input, which is
				// what lets Relex keep such tokens across appends.
				examined = i - pos
			}
			if best < 0 {
				// No rule matched: emit a one-rune error token, but charge
				// it everything the DFA examined (e.g. an unterminated
				// comment opener reads to end of input before failing).
				_, fsz := utf8.DecodeRuneInString(text[pos:])
				return fsz, ErrorType, examined, false
			}
			return best, bestRule, examined, false
		}
		state = next
		i += sz
		if a := d.Accept(state); a >= 0 {
			best, bestRule = i-pos, a
		}
	}
	examined = len(text) - pos
	open = !d.Closed(state)
	if best < 0 {
		_, fsz := utf8.DecodeRuneInString(text[pos:])
		return fsz, ErrorType, examined, open
	}
	return best, bestRule, examined, open
}

// Scan lexes the whole text, returning every token including skip tokens.
func (s *Spec) Scan(text string) []Token {
	return s.ScanInto(text, nil)
}

// Significant filters out skip tokens.
func Significant(toks []Token) []Token {
	out := make([]Token, 0, len(toks))
	for _, t := range toks {
		if !t.Skip && t.Type != ErrorType {
			out = append(out, t)
		}
	}
	return out
}

// Edit describes a single text modification: Removed bytes at Offset were
// replaced by Inserted.
type Edit struct {
	Offset   int
	Removed  int
	Inserted string
}

// Delta returns the signed change in text length.
func (e Edit) Delta() int { return len(e.Inserted) - e.Removed }

// Relex incrementally updates the token stream for a single edit. old is
// the previous token stream for oldText; newText must equal oldText with e
// applied. It returns the new stream, the index of the first token that
// differs from the old stream, and the number of freshly scanned tokens
// (the incremental work measure): tokens[:first] are the old tokens kept,
// tokens[first:first+relexed] are fresh, and the remainder is the old
// stream's tail with adjusted offsets.
//
// Aliasing contract: when every old token is kept (first == len(old), a
// pure append at EOF past every closed recognition window) the returned
// stream aliases old's backing array instead of copying it, and fresh
// tokens may be appended into old's spare capacity. Callers must treat the
// old slice as dead once Relex returns.
func (s *Spec) Relex(old []Token, newText string, e Edit) (tokens []Token, first, relexed int) {
	lo := e.Offset
	hiOld := e.Offset + e.Removed

	// First affected token: the earliest whose examined window reaches the
	// edit. A token whose recognition stopped at end-of-input in a live
	// DFA state (Open) is affected by an append there too — had more text
	// existed, the recognizer would have examined it — so its window is
	// treated as open-ended. A token that stopped in a transition-free
	// state is closed: appends past its window cannot change it.
	oldLen := len(newText) - e.Delta()
	first = len(old)
	for i, t := range old {
		windowEnd := t.End() + t.Lookahead
		if windowEnd > lo || (t.Open && windowEnd >= oldLen) {
			first = i
			break
		}
	}

	// Early out: nothing is invalidated. Every window ends at or before
	// the edit, which forces the edit to be a pure append at EOF, so the
	// kept prefix is the entire old stream — alias it (no O(n) copy per
	// keystroke) and scan only the appended text. The resync machinery
	// has nothing to splice: no old token starts at or after the edit.
	if first == len(old) {
		tokens = old
		pos := 0
		if len(old) > 0 {
			pos = old[len(old)-1].End()
		}
		for pos < len(newText) {
			tokens = append(tokens, s.freshToken(newText, pos))
			relexed++
			pos = tokens[len(tokens)-1].End()
		}
		return tokens, first, relexed
	}

	tokens = append(tokens, old[:first]...)
	pos := 0
	if first > 0 {
		pos = old[first-1].End()
	}

	delta := e.Delta()
	// Index of the first old token that starts at or after the end of the
	// removed region and is not itself affected; candidates for resync.
	resyncFrom := first
	for resyncFrom < len(old) && old[resyncFrom].Offset < hiOld {
		resyncFrom++
	}

	for pos < len(newText) {
		// Resync check: a fresh token boundary that coincides with an
		// unaffected old token boundary lets us splice the tail.
		if pos >= lo+len(e.Inserted) {
			oldPos := pos - delta
			for resyncFrom < len(old) && old[resyncFrom].Offset < oldPos {
				resyncFrom++
			}
			if resyncFrom < len(old) && old[resyncFrom].Offset == oldPos && oldPos >= hiOld {
				for _, t := range old[resyncFrom:] {
					t.Offset += delta
					t.Text = newText[t.Offset : t.Offset+len(t.Text)]
					tokens = append(tokens, t)
				}
				return tokens, first, relexed
			}
		}
		tokens = append(tokens, s.freshToken(newText, pos))
		relexed++
		pos = tokens[len(tokens)-1].End()
	}
	return tokens, first, relexed
}

// freshToken scans one token at pos of text.
func (s *Spec) freshToken(text string, pos int) Token {
	length, rule, examined, open := s.scanOne(text, pos)
	tok := Token{
		Type:      rule,
		Offset:    pos,
		Text:      text[pos : pos+length],
		Lookahead: examined - length,
		Open:      open,
	}
	if rule >= 0 {
		tok.Skip = s.rules[rule].Skip
	}
	return tok
}
