package lexer

import (
	"math/rand"
	"strings"
	"testing"
)

// cRules is a C-like token specification used across the tests.
func cRules() []Rule {
	return []Rule{
		{Name: "WS", Pattern: `[ \t\r\n]+`, Skip: true},
		{Name: "COMMENT", Pattern: `/\*([^*]|\*+[^*/])*\*+/`, Skip: true},
		{Name: "LINECOMMENT", Pattern: `//[^\n]*`, Skip: true},
		{Name: "IF", Pattern: `if`},
		{Name: "ELSE", Pattern: `else`},
		{Name: "INT", Pattern: `int`},
		{Name: "ID", Pattern: `[A-Za-z_][A-Za-z0-9_]*`},
		{Name: "NUM", Pattern: `[0-9]+`},
		{Name: "STR", Pattern: `"([^"\\\n]|\\.)*"`},
		{Name: "EQEQ", Pattern: `==`},
		{Name: "EQ", Pattern: `=`},
		{Name: "SEMI", Pattern: `;`},
		{Name: "LP", Pattern: `\(`},
		{Name: "RP", Pattern: `\)`},
		{Name: "LB", Pattern: `\{`},
		{Name: "RB", Pattern: `\}`},
		{Name: "PLUS", Pattern: `\+`},
		{Name: "STAR", Pattern: `\*`},
		{Name: "COMMA", Pattern: `,`},
	}
}

func names(s *Spec, toks []Token) []string {
	var out []string
	for _, t := range toks {
		if t.Skip {
			continue
		}
		if t.Type == ErrorType {
			out = append(out, "ERROR")
			continue
		}
		out = append(out, s.Rule(t.Type).Name)
	}
	return out
}

func TestScanBasics(t *testing.T) {
	s := MustSpec(cRules())
	toks := s.Scan(`int x = 42; // set x`)
	got := strings.Join(names(s, toks), " ")
	want := "INT ID EQ NUM SEMI"
	if got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

func TestTokensTileText(t *testing.T) {
	s := MustSpec(cRules())
	text := "if (x == 42) { y = x + 1; } /* done */ else z = 0;"
	toks := s.Scan(text)
	pos := 0
	for _, tok := range toks {
		if tok.Offset != pos {
			t.Fatalf("gap at %d: token %q starts at %d", pos, tok.Text, tok.Offset)
		}
		pos = tok.End()
	}
	if pos != len(text) {
		t.Fatalf("tokens end at %d, text length %d", pos, len(text))
	}
}

func TestKeywordPriority(t *testing.T) {
	s := MustSpec(cRules())
	toks := Significant(s.Scan("if iffy int integer"))
	want := []string{"IF", "ID", "INT", "ID"}
	got := names(s, toks)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestErrorTokens(t *testing.T) {
	s := MustSpec(cRules())
	toks := s.Scan("x @ y")
	var errs int
	for _, tok := range toks {
		if tok.Type == ErrorType {
			errs++
			if tok.Text != "@" {
				t.Fatalf("error token text %q", tok.Text)
			}
		}
	}
	if errs != 1 {
		t.Fatalf("error tokens = %d, want 1", errs)
	}
}

func TestLookaheadRecorded(t *testing.T) {
	s := MustSpec(cRules())
	// "==" requires looking at the char after a single "=" to decide;
	// after scanning "=" the DFA keeps going and dies at 'x'.
	toks := Significant(s.Scan("= x"))
	if toks[0].Text != "=" {
		t.Fatalf("first token %q", toks[0].Text)
	}
	if toks[0].Lookahead < 1 {
		t.Fatalf("'=' should record lookahead >= 1, got %d", toks[0].Lookahead)
	}
	// A token at end of input examines nothing beyond itself.
	toks = Significant(s.Scan("abc"))
	if toks[0].Lookahead != 0 {
		t.Fatalf("EOF token lookahead = %d, want 0", toks[0].Lookahead)
	}
}

func applyEdit(text string, e Edit) string {
	return text[:e.Offset] + e.Inserted + text[e.Offset+e.Removed:]
}

func checkIncremental(t *testing.T, s *Spec, text string, e Edit) (relexed int) {
	t.Helper()
	old := s.Scan(text)
	newText := applyEdit(text, e)
	got, first, relexed := s.Relex(old, newText, e)
	_ = first
	want := s.Scan(newText)
	if len(got) != len(want) {
		t.Fatalf("edit %+v on %q:\n got %d tokens\nwant %d tokens", e, text, len(got), len(want))
	}
	for i := range got {
		if got[i].Offset != want[i].Offset || got[i].Text != want[i].Text ||
			got[i].Type != want[i].Type || got[i].Lookahead != want[i].Lookahead {
			t.Fatalf("edit %+v on %q: token %d differs:\n got %+v\nwant %+v", e, text, i, got[i], want[i])
		}
	}
	return relexed
}

func TestRelexSimpleEdits(t *testing.T) {
	s := MustSpec(cRules())
	text := "int foo = bar + 42; if (foo == 7) { bar = 0; }"
	cases := []Edit{
		{Offset: 4, Removed: 3, Inserted: "quux"},  // rename identifier
		{Offset: 0, Removed: 3, Inserted: "float"}, // replace keyword (float is an ID here)
		{Offset: 16, Removed: 2, Inserted: "137"},  // replace number
		{Offset: 18, Removed: 0, Inserted: "9"},    // extend number
		{Offset: len(text), Removed: 0, Inserted: " x = 1;"},
		{Offset: 0, Removed: 0, Inserted: "int q; "},
		{Offset: 10, Removed: 0, Inserted: ""}, // no-op
		{Offset: 5, Removed: 0, Inserted: " "}, // split identifier
		{Offset: 22, Removed: 1, Inserted: ""}, // delete char
		{Offset: 0, Removed: len(text), Inserted: "x"},
	}
	for _, e := range cases {
		checkIncremental(t, s, text, e)
	}
}

func TestRelexTouchesFewTokens(t *testing.T) {
	s := MustSpec(cRules())
	// A large program: editing one token should relex O(1) tokens.
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		sb.WriteString("int v = 1 + 2; ")
	}
	text := sb.String()
	relexed := checkIncremental(t, s, text, Edit{Offset: len(text) / 2, Removed: 1, Inserted: "x"})
	if relexed > 8 {
		t.Fatalf("relexed %d tokens for a single-character edit, want <= 8", relexed)
	}
}

func TestRelexCommentGrowth(t *testing.T) {
	s := MustSpec(cRules())
	// Deleting the '*' of a comment opener swallows following text; the
	// incremental result must match the batch rescan.
	text := "a /* c */ b = 2;"
	checkIncremental(t, s, text, Edit{Offset: 3, Removed: 1, Inserted: ""})
	// Closing an unterminated comment.
	text2 := "a /* c  b = 2;"
	checkIncremental(t, s, text2, Edit{Offset: 8, Removed: 0, Inserted: "*/"})
}

func TestRelexRandomized(t *testing.T) {
	s := MustSpec(cRules())
	rng := rand.New(rand.NewSource(42))
	alphabet := "abx01 =+;(){}/*\"\\\n\t"
	text := "int a = 1; if (a == 1) { a = a + 2; } /* c */ \"str\" x;"
	for iter := 0; iter < 500; iter++ {
		// Random edit.
		off := rng.Intn(len(text) + 1)
		maxRem := len(text) - off
		rem := 0
		if maxRem > 0 {
			rem = rng.Intn(min(maxRem, 6))
		}
		var ins strings.Builder
		for n := rng.Intn(6); n > 0; n-- {
			ins.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		e := Edit{Offset: off, Removed: rem, Inserted: ins.String()}
		checkIncremental(t, s, text, e)
		text = applyEdit(text, e)
		if len(text) > 4000 {
			text = text[:2000]
		}
		if len(text) == 0 {
			text = "int a = 1;"
		}
	}
}

func TestSpecErrors(t *testing.T) {
	if _, err := NewSpec(nil); err == nil {
		t.Fatal("empty spec should fail")
	}
	if _, err := NewSpec([]Rule{{Name: "BAD", Pattern: "("}}); err == nil {
		t.Fatal("bad pattern should fail")
	}
	if _, err := NewSpec([]Rule{{Name: "EMPTY", Pattern: "a*"}}); err == nil {
		t.Fatal("empty-string-matching rule should fail")
	}
}

func TestRuleIndex(t *testing.T) {
	s := MustSpec(cRules())
	if i := s.RuleIndex("ID"); i < 0 || s.Rule(i).Name != "ID" {
		t.Fatalf("RuleIndex(ID) = %d", i)
	}
	if s.RuleIndex("NOPE") != -1 {
		t.Fatal("RuleIndex(NOPE) should be -1")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
