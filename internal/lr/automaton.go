package lr

import (
	"sort"

	"iglr/internal/grammar"
)

// state is one LR(0) automaton state.
type state struct {
	id      int
	kernel  itemSet
	closure itemSet
	// trans maps symbol → successor state id.
	trans map[grammar.Sym]int
}

// automaton is the LR(0) characteristic finite-state machine.
type automaton struct {
	g      *grammar.Grammar
	states []*state
	index  map[string]int // kernel key → state id
}

// buildLR0 constructs the LR(0) automaton. State 0's kernel is the augmented
// item S' → ·start.
func buildLR0(g *grammar.Grammar) *automaton {
	a := &automaton{g: g, index: make(map[string]int)}
	start := itemSet{{prod: 0, dot: 0}}
	a.addState(start)
	for i := 0; i < len(a.states); i++ {
		st := a.states[i]
		// Collect transition symbols in deterministic order.
		symSet := make(map[grammar.Sym]bool)
		var syms []grammar.Sym
		for _, it := range st.closure {
			if s := nextSym(g, it); s != grammar.InvalidSym && !symSet[s] {
				symSet[s] = true
				syms = append(syms, s)
			}
		}
		sort.Slice(syms, func(x, y int) bool { return syms[x] < syms[y] })
		for _, s := range syms {
			k := gotoSet(g, st.closure, s)
			st.trans[s] = a.addState(k)
		}
	}
	return a
}

// addState interns a kernel, returning the state id.
func (a *automaton) addState(kernel itemSet) int {
	key := kernel.key()
	if id, ok := a.index[key]; ok {
		return id
	}
	st := &state{
		id:      len(a.states),
		kernel:  kernel,
		closure: closure0(a.g, kernel),
		trans:   make(map[grammar.Sym]int),
	}
	a.states = append(a.states, st)
	a.index[key] = st.id
	return st.id
}

// lr1Item is an LR(1) item: an LR(0) item plus one lookahead terminal.
// The sentinel lookahead dummyLA is used during LALR lookahead discovery.
type lr1Item struct {
	item
	la grammar.Sym
}

const dummyLA grammar.Sym = -2

// closure1 computes the LR(1) closure of a set of LR(1) items.
// For an item [A → α·Bβ, a], each production B → γ is added with lookahead
// FIRST(βa).
func closure1(g *grammar.Grammar, kernel []lr1Item) []lr1Item {
	seen := make(map[lr1Item]bool, len(kernel)*4)
	out := make([]lr1Item, 0, len(kernel)*4)
	var work []lr1Item
	for _, it := range kernel {
		if !seen[it] {
			seen[it] = true
			out = append(out, it)
			work = append(work, it)
		}
	}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		b := nextSym(g, it.item)
		if b == grammar.InvalidSym || g.IsTerminal(b) {
			continue
		}
		p := g.Production(it.prod)
		rest := p.RHS[it.dot+1:]
		// FIRST(rest ⋅ la)
		first := grammar.NewTermSet(g.NumSymbols())
		nullable := g.FirstOfSeq(rest, first)
		var las []grammar.Sym
		first.ForEach(func(t grammar.Sym) { las = append(las, t) })
		if nullable {
			las = append(las, it.la)
		}
		for _, q := range g.ProductionsFor(b) {
			for _, la := range las {
				ni := lr1Item{item: item{prod: q.ID, dot: 0}, la: la}
				if !seen[ni] {
					seen[ni] = true
					out = append(out, ni)
					work = append(work, ni)
				}
			}
		}
	}
	return out
}
