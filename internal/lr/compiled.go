package lr

import (
	"encoding/binary"
	"fmt"

	"iglr/internal/grammar"
)

// Compiled-table codec: serializes the dense packed layout directly —
// spill array, packed action cells, goto array, and the precomputed
// nonterminal-reduction cells — so decoding is pure reconstruction with no
// re-packing, no conflict re-resolution, and no FIRST-set traversal. This
// is the format embedded in compiled language artifacts (internal/langcodec);
// the older Encode/Decode pair in encode.go remains the layout-independent
// interchange format used by iglrc.

const compiledMagic = "IGTC"
const compiledVersion = 1

// maxCompiledStates bounds decoded table size against corrupt input.
const maxCompiledStates = 1 << 22

// AppendCompiled serializes the table's dense layout to buf. The grammar is
// NOT included; DecodeCompiled is handed one separately (artifacts carry the
// grammar once, not once per section).
func (t *Table) AppendCompiled(buf []byte) []byte {
	buf = append(buf, compiledMagic...)
	buf = binary.AppendUvarint(buf, compiledVersion)
	buf = append(buf, byte(t.method))
	buf = binary.AppendUvarint(buf, uint64(t.numStates))
	buf = binary.AppendUvarint(buf, uint64(t.nSyms))

	// Spill array, verbatim and in order: offsets below index into it.
	buf = binary.AppendUvarint(buf, uint64(len(t.actSpill)))
	for _, a := range t.actSpill {
		buf = append(buf, byte(a.Kind))
		buf = binary.AppendVarint(buf, int64(a.Target))
	}
	buf = appendPackedCells(buf, t.actCells)
	buf = appendPackedCells(buf, t.ntCells)

	// Gotos: sparse (index, target) pairs in ascending index order.
	occ := 0
	for _, g := range t.gotos {
		if g >= 0 {
			occ++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(occ))
	for idx, g := range t.gotos {
		if g >= 0 {
			buf = binary.AppendUvarint(buf, uint64(idx))
			buf = binary.AppendUvarint(buf, uint64(g))
		}
	}

	// Resolutions (diagnostics only, but part of byte-identity).
	buf = binary.AppendUvarint(buf, uint64(len(t.resolutions)))
	for _, r := range t.resolutions {
		buf = binary.AppendUvarint(buf, uint64(r.State))
		buf = binary.AppendVarint(buf, int64(r.Term))
		buf = append(buf, byte(r.Kept.Kind))
		buf = binary.AppendVarint(buf, int64(r.Kept.Target))
		buf = binary.AppendUvarint(buf, uint64(len(r.Dropped)))
		for _, a := range r.Dropped {
			buf = append(buf, byte(a.Kind))
			buf = binary.AppendVarint(buf, int64(a.Target))
		}
		buf = binary.AppendUvarint(buf, uint64(len(r.Rule)))
		buf = append(buf, r.Rule...)
	}
	return buf
}

// appendPackedCells writes the occupied cells of a packed cell array as
// (index, count, offset) triples; the inline action word is rebuilt from the
// spill array at decode time.
func appendPackedCells(buf []byte, cells []uint64) []byte {
	occ := 0
	for _, c := range cells {
		if c&cellCountMask != 0 {
			occ++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(occ))
	for idx, c := range cells {
		n := c & cellCountMask
		if n == 0 {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(idx))
		buf = binary.AppendUvarint(buf, n)
		buf = binary.AppendUvarint(buf, c>>cellOffShift&cellOffMask)
	}
	return buf
}

// DecodeCompiled reconstructs a table serialized by AppendCompiled against
// g, returning the remaining bytes. Conflicts and the per-state conflict
// flags are derived from the decoded cells (count > 1) in the same row-major
// order seal produces, so a decoded table is indistinguishable from a
// freshly built one. Every index, offset, and action target is validated so
// corrupt artifacts fail decoding instead of corrupting a parse.
func DecodeCompiled(g *grammar.Grammar, data []byte) (*Table, []byte, error) {
	if len(data) < 4 || string(data[:4]) != compiledMagic {
		return nil, nil, fmt.Errorf("lr: bad compiled-table magic")
	}
	d := &decoder{data: data[4:]}
	if v := d.uvarint(); d.err != nil || v != compiledVersion {
		return nil, nil, fmt.Errorf("lr: unsupported compiled-table version")
	}
	method := Method(d.byte())
	if method > LR1 {
		return nil, nil, fmt.Errorf("lr: unknown method %d", method)
	}
	numStates := int(d.uvarint())
	nSyms := int(d.uvarint())
	if d.err != nil || numStates <= 0 || numStates > maxCompiledStates {
		return nil, nil, fmt.Errorf("lr: invalid state count")
	}
	if nSyms != g.NumSymbols() {
		return nil, nil, fmt.Errorf("lr: symbol count mismatch (%d vs %d)", nSyms, g.NumSymbols())
	}

	t := &Table{
		g:             g,
		method:        method,
		numStates:     numStates,
		nSyms:         nSyms,
		gotos:         make([]int32, numStates*nSyms),
		conflictState: make([]bool, numStates),
	}
	for i := range t.gotos {
		t.gotos[i] = -1
	}

	nSpill := int(d.uvarint())
	if d.err != nil || nSpill < 0 || nSpill > len(d.data) {
		return nil, nil, fmt.Errorf("lr: invalid spill length")
	}
	t.actSpill = make([]Action, nSpill)
	for i := range t.actSpill {
		a := Action{Kind: Kind(d.byte()), Target: int32(d.varint())}
		if err := validAction(g, numStates, a); err != nil {
			return nil, nil, err
		}
		t.actSpill[i] = a
	}

	var err error
	t.actCells, err = decodePackedCells(d, t, "action")
	if err != nil {
		return nil, nil, err
	}
	t.ntCells, err = decodePackedCells(d, t, "nonterminal")
	if err != nil {
		return nil, nil, err
	}

	occ := int(d.uvarint())
	prev := -1
	for i := 0; i < occ; i++ {
		idx := int(d.uvarint())
		val := int(d.uvarint())
		if d.err != nil || idx <= prev || idx >= len(t.gotos) || val >= numStates {
			return nil, nil, fmt.Errorf("lr: invalid goto entry")
		}
		t.gotos[idx] = int32(val)
		prev = idx
	}

	nRes := int(d.uvarint())
	if d.err != nil || nRes < 0 || nRes > len(d.data) {
		return nil, nil, fmt.Errorf("lr: invalid resolution count")
	}
	for i := 0; i < nRes; i++ {
		var r Resolution
		r.State = int(d.uvarint())
		r.Term = grammar.Sym(d.varint())
		r.Kept = Action{Kind: Kind(d.byte()), Target: int32(d.varint())}
		nd := int(d.uvarint())
		if d.err != nil || nd < 0 || nd > len(d.data) {
			return nil, nil, fmt.Errorf("lr: invalid resolution")
		}
		r.Dropped = make([]Action, nd)
		for j := range r.Dropped {
			r.Dropped[j] = Action{Kind: Kind(d.byte()), Target: int32(d.varint())}
		}
		r.Rule = string(d.bytes(int(d.uvarint())))
		t.resolutions = append(t.resolutions, r)
	}
	if d.err != nil {
		return nil, nil, fmt.Errorf("lr: truncated compiled table: %w", d.err)
	}

	// Derive conflicts and per-state flags, row-major — the order seal uses.
	for state := 0; state < numStates; state++ {
		row := state * nSyms
		for sym := 0; sym < nSyms; sym++ {
			cell := t.actCells[row+sym]
			if n := cell & cellCountMask; n > 1 {
				off := cell >> cellOffShift & cellOffMask
				t.conflicts = append(t.conflicts, Conflict{
					State: state, Term: grammar.Sym(sym),
					Actions: t.actSpill[off : off+n],
				})
				t.conflictState[state] = true
			}
		}
	}
	return t, d.data, nil
}

// decodePackedCells reads a sparse (index, count, offset) cell section and
// re-packs each cell word, pulling the inline action from the spill array.
func decodePackedCells(d *decoder, t *Table, what string) ([]uint64, error) {
	cells := make([]uint64, t.numStates*t.nSyms)
	occ := int(d.uvarint())
	if d.err != nil || occ < 0 || occ > len(d.data) {
		return nil, fmt.Errorf("lr: invalid %s cell count", what)
	}
	prev := -1
	for i := 0; i < occ; i++ {
		idx := int(d.uvarint())
		cnt := int(d.uvarint())
		off := int(d.uvarint())
		if d.err != nil || idx <= prev || idx >= len(cells) ||
			cnt < 1 || cnt > cellCountMask || off < 0 || off+cnt > len(t.actSpill) {
			return nil, fmt.Errorf("lr: invalid %s cell", what)
		}
		cells[idx] = packCell(off, cnt, t.actSpill[off])
		prev = idx
	}
	return cells, nil
}

func validAction(g *grammar.Grammar, numStates int, a Action) error {
	switch a.Kind {
	case Shift:
		if a.Target < 0 || int(a.Target) >= numStates {
			return fmt.Errorf("lr: shift target out of range")
		}
	case Reduce:
		if a.Target < 0 || int(a.Target) >= g.NumProductions() {
			return fmt.Errorf("lr: reduce target out of range")
		}
	case Accept:
	default:
		return fmt.Errorf("lr: invalid action kind %d", a.Kind)
	}
	return nil
}
