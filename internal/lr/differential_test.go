package lr_test

import (
	"fmt"
	"testing"

	"iglr/internal/grammar"
	"iglr/internal/langs"
	"iglr/internal/langs/cppsub"
	"iglr/internal/langs/csub"
	"iglr/internal/langs/expr"
	"iglr/internal/langs/javasub"
	"iglr/internal/langs/lispsub"
	"iglr/internal/langs/lr2"
	"iglr/internal/langs/mod2sub"
	"iglr/internal/langs/scannerless"
	"iglr/internal/lr"
)

// bundledGrammars returns every bundled language's grammar (the languages
// the public API ships), named for subtest labels.
func bundledGrammars() map[string]*grammar.Grammar {
	out := map[string]*grammar.Grammar{}
	for name, l := range map[string]*langs.Language{
		"expr":           expr.Lang(),
		"expr-ambiguous": expr.AmbiguousLang(),
		"csub":           csub.Lang(),
		"cppsub":         cppsub.Lang(),
		"javasub":        javasub.Lang(),
		"lispsub":        lispsub.Lang(),
		"mod2sub":        mod2sub.Lang(),
		"lr2":            lr2.Lang(),
		"scannerless":    scannerless.Lang(),
	} {
		out[name] = l.Grammar
	}
	return out
}

// TestDenseEncodingDifferential proves the dense packed table is
// action-for-action identical to the legacy sparse encoding: for every
// bundled language and every table method, it captures the pre-pack
// [][]Action layout and compares each (state, symbol) cell — actions,
// gotos, and the precomputed nonterminal reductions (recomputed here from
// the raw encoding, independently of the packed implementation).
func TestDenseEncodingDifferential(t *testing.T) {
	methods := []lr.Method{lr.SLR, lr.LALR, lr.LR1}
	for name, g := range bundledGrammars() {
		for _, m := range methods {
			t.Run(fmt.Sprintf("%s/%v", name, m), func(t *testing.T) {
				var raw [][]Action
				lr.SetTestRawCapture(func(r [][]Action) {
					raw = make([][]Action, len(r))
					for i, acts := range r {
						raw[i] = append([]Action(nil), acts...)
					}
				})
				defer lr.SetTestRawCapture(nil)
				table, err := lr.Build(g, lr.Options{Method: m})
				if err != nil {
					t.Fatalf("Build(%v): %v", m, err)
				}
				if raw == nil {
					t.Fatal("capture hook never ran")
				}
				nSyms := g.NumSymbols()
				if len(raw) != table.NumStates()*nSyms {
					t.Fatalf("raw has %d cells, want %d", len(raw), table.NumStates()*nSyms)
				}
				refNT := referenceNontermActions(g, table.NumStates(), raw)
				conflicts := 0
				for state := 0; state < table.NumStates(); state++ {
					for s := 0; s < nSyms; s++ {
						sym := grammar.Sym(s)
						want := raw[state*nSyms+s]
						got := table.Actions(state, sym)
						if !equalActions(want, got) {
							t.Fatalf("cell (%d,%s): dense %v, legacy %v",
								state, g.Name(sym), got, want)
						}
						if len(want) > 1 {
							conflicts++
						}
						// The single-word fast path agrees with the slice
						// view in count and, when unique, in content.
						one, n := table.OneAction(state, sym)
						if n != len(want) {
							t.Fatalf("OneAction count at (%d,%s): %d vs %d",
								state, g.Name(sym), n, len(want))
						}
						if n == 1 && one != want[0] {
							t.Fatalf("OneAction at (%d,%s): %v vs %v",
								state, g.Name(sym), one, want[0])
						}
						if !g.IsTerminal(sym) {
							wantNT := refNT[state*nSyms+s]
							gotNT := table.NontermActions(state, sym)
							if !equalActions(wantNT, gotNT) {
								t.Fatalf("nonterm cell (%d,%s): dense %v, reference %v",
									state, g.Name(sym), gotNT, wantNT)
							}
							oneNT, nNT := table.OneNontermAction(state, sym)
							if nNT != len(wantNT) || (nNT == 1 && oneNT != wantNT[0]) {
								t.Fatalf("OneNontermAction mismatch at (%d,%s)", state, g.Name(sym))
							}
						}
					}
				}
				if conflicts != len(table.Conflicts()) {
					t.Fatalf("conflicts: dense %d, legacy %d", len(table.Conflicts()), conflicts)
				}
				// TableSize's action count equals the legacy total.
				wantActs := 0
				for _, acts := range raw {
					wantActs += len(acts)
				}
				gotActs, _ := table.TableSize()
				if gotActs != wantActs {
					t.Fatalf("TableSize actions: dense %d, legacy %d", gotActs, wantActs)
				}
			})
		}
	}
}

// Action aliases keep the capture callback signature readable.
type Action = lr.Action

// referenceNontermActions recomputes the §3.2 nonterminal-reduction
// precomputation directly from the raw sparse encoding — an independent
// oracle for the packed ntCells.
func referenceNontermActions(g *grammar.Grammar, numStates int, raw [][]Action) [][]Action {
	nSyms := g.NumSymbols()
	out := make([][]Action, numStates*nSyms)
	for state := 0; state < numStates; state++ {
		for _, nt := range g.Nonterminals() {
			if g.Nullable(nt) {
				continue
			}
			var common []Action
			ok, firstIter := true, true
			g.First(nt).ForEach(func(term grammar.Sym) {
				if !ok {
					return
				}
				acts := raw[state*nSyms+int(term)]
				if firstIter {
					common, firstIter = acts, false
					return
				}
				if !equalActions(common, acts) {
					ok = false
				}
			})
			if ok && !firstIter && len(common) > 0 {
				out[state*nSyms+int(nt)] = common
			}
		}
	}
	return out
}

func equalActions(a, b []Action) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
