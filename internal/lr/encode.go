package lr

import (
	"encoding/binary"
	"fmt"
	"io"

	"iglr/internal/grammar"
)

// Binary serialization of parse tables (with their grammar): the compiled
// language artifact that iglrc -o writes and environments load at run time,
// mirroring Ensemble's off-line language compilation.

const tableMagic = "IGTB"
const tableVersion = 1

// Encode writes the table (including its grammar) to w.
func (t *Table) Encode(w io.Writer) error {
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, tableMagic...)
	buf = binary.AppendUvarint(buf, tableVersion)
	buf = t.g.AppendBinary(buf)
	buf = append(buf, byte(t.method))
	buf = binary.AppendUvarint(buf, uint64(t.numStates))
	buf = binary.AppendUvarint(buf, uint64(t.nSyms))

	// Actions: sparse cells (decoded from the dense encoding; the wire
	// format is layout-independent).
	occupied := 0
	for _, cell := range t.actCells {
		if cell&cellCountMask != 0 {
			occupied++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(occupied))
	for idx, cell := range t.actCells {
		n := cell & cellCountMask
		if n == 0 {
			continue
		}
		off := cell >> cellOffShift & cellOffMask
		buf = binary.AppendUvarint(buf, uint64(idx))
		buf = binary.AppendUvarint(buf, n)
		for _, a := range t.actSpill[off : off+n] {
			buf = append(buf, byte(a.Kind))
			buf = binary.AppendVarint(buf, int64(a.Target))
		}
	}
	// Gotos: sparse.
	occupied = 0
	for _, g := range t.gotos {
		if g >= 0 {
			occupied++
		}
	}
	buf = binary.AppendUvarint(buf, uint64(occupied))
	for idx, g := range t.gotos {
		if g < 0 {
			continue
		}
		buf = binary.AppendUvarint(buf, uint64(idx))
		buf = binary.AppendUvarint(buf, uint64(g))
	}
	// Resolutions (diagnostics).
	buf = binary.AppendUvarint(buf, uint64(len(t.resolutions)))
	for _, r := range t.resolutions {
		buf = binary.AppendUvarint(buf, uint64(r.State))
		buf = binary.AppendVarint(buf, int64(r.Term))
		buf = append(buf, byte(r.Kept.Kind))
		buf = binary.AppendVarint(buf, int64(r.Kept.Target))
		buf = binary.AppendUvarint(buf, uint64(len(r.Dropped)))
		for _, a := range r.Dropped {
			buf = append(buf, byte(a.Kind))
			buf = binary.AppendVarint(buf, int64(a.Target))
		}
		buf = binary.AppendUvarint(buf, uint64(len(r.Rule)))
		buf = append(buf, r.Rule...)
	}
	_, err := w.Write(buf)
	return err
}

// Decode reads a table serialized by Encode, reconstructing conflicts and
// the precomputed nonterminal actions.
func Decode(data []byte) (*Table, error) {
	if len(data) < 4 || string(data[:4]) != tableMagic {
		return nil, fmt.Errorf("lr: bad table magic")
	}
	data = data[4:]
	v, n := binary.Uvarint(data)
	if n <= 0 || v != tableVersion {
		return nil, fmt.Errorf("lr: unsupported table version")
	}
	data = data[n:]

	g, rest, err := grammar.DecodeBinary(data)
	if err != nil {
		return nil, err
	}
	d := &decoder{data: rest}
	method := Method(d.byte())
	numStates := int(d.uvarint())
	nSyms := int(d.uvarint())
	if nSyms != g.NumSymbols() {
		return nil, fmt.Errorf("lr: symbol count mismatch (%d vs %d)", nSyms, g.NumSymbols())
	}

	tb := newTableBuilder(g, numStates, method, Options{})
	t := tb.t
	occ := int(d.uvarint())
	for i := 0; i < occ; i++ {
		idx := int(d.uvarint())
		cnt := int(d.uvarint())
		if idx < 0 || idx >= len(tb.actions) {
			return nil, fmt.Errorf("lr: action index out of range")
		}
		acts := make([]Action, cnt)
		for j := range acts {
			acts[j] = Action{Kind: Kind(d.byte()), Target: int32(d.varint())}
		}
		tb.actions[idx] = acts
	}
	occ = int(d.uvarint())
	for i := 0; i < occ; i++ {
		idx := int(d.uvarint())
		val := int32(d.uvarint())
		if idx < 0 || idx >= len(t.gotos) {
			return nil, fmt.Errorf("lr: goto index out of range")
		}
		t.gotos[idx] = val
	}
	nRes := int(d.uvarint())
	for i := 0; i < nRes; i++ {
		var r Resolution
		r.State = int(d.uvarint())
		r.Term = grammar.Sym(d.varint())
		r.Kept = Action{Kind: Kind(d.byte()), Target: int32(d.varint())}
		nd := int(d.uvarint())
		r.Dropped = make([]Action, nd)
		for j := range r.Dropped {
			r.Dropped[j] = Action{Kind: Kind(d.byte()), Target: int32(d.varint())}
		}
		r.Rule = string(d.bytes(int(d.uvarint())))
		t.resolutions = append(t.resolutions, r)
	}
	if d.err != nil {
		return nil, fmt.Errorf("lr: truncated table: %w", d.err)
	}

	// Pack into the dense encoding; seal also rebuilds the conflicts and
	// the nonterminal-action precomputation. Static filters were applied
	// before serialization, so no resolve pass runs here.
	return tb.seal(), nil
}

type decoder struct {
	data []byte
	err  error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("unexpected end of data")
	}
}

func (d *decoder) bytes(n int) []byte {
	if n < 0 || len(d.data) < n {
		d.fail()
		return make([]byte, maxInt(n, 0))
	}
	out := d.data[:n]
	d.data = d.data[n:]
	return out
}

func (d *decoder) byte() byte { return d.bytes(1)[0] }

func (d *decoder) uvarint() uint64 {
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *decoder) varint() int64 {
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.data = d.data[n:]
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
